// Benchmark harness: one benchmark per figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out.
//
// The figure benches report the reproduced quantity via b.ReportMetric —
// PLT in seconds, PLR in percent, traffic in KB — so `go test -bench=.`
// regenerates every row the paper plots. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package scholarcloud

import (
	"fmt"
	"testing"

	"scholarcloud/internal/blinding"
	"scholarcloud/internal/carrier"
	"scholarcloud/internal/censor"
	"scholarcloud/internal/experiments"
	"scholarcloud/internal/survey"
)

// figureWorld builds a fresh world per benchmark (construction costs
// milliseconds; isolation keeps figures independent).
func figureWorld(b *testing.B, cfg experiments.Config) *experiments.World {
	b.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 2017
	}
	w := experiments.NewWorld(cfg)
	b.Cleanup(w.Close)
	return w
}

// BenchmarkFig3Survey regenerates the survey distribution (Fig. 3) and
// reports the bypass share.
func BenchmarkFig3Survey(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		rs := survey.Generate(survey.Respondents, uint64(i+1))
		share = survey.BypassShare(rs)
	}
	b.ReportMetric(share*100, "%bypass")
}

// BenchmarkFig4Session verifies and times the session-structure probe of
// Fig. 4 for every method.
func BenchmarkFig4Session(b *testing.B) {
	w := figureWorld(b, experiments.Config{})
	for _, f := range w.Methods() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ss, err := w.MeasureSessionStructure(f)
				if err != nil {
					b.Fatal(err)
				}
				if !ss.TCP3 {
					b.Fatal("no data connection observed")
				}
			}
		})
	}
}

// BenchmarkFig5aPLT reproduces Fig. 5a: first-time and subsequent page
// load times per method.
func BenchmarkFig5aPLT(b *testing.B) {
	w := figureWorld(b, experiments.Config{})
	for _, f := range w.Methods() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			var first, sub float64
			for i := 0; i < b.N; i++ {
				r, err := w.MeasurePLT(f, 2, 6)
				if err != nil {
					b.Fatal(err)
				}
				first, sub = r.FirstTime.Mean, r.Subsequent.Mean
			}
			b.ReportMetric(first, "s/first-PLT")
			b.ReportMetric(sub, "s/subseq-PLT")
		})
	}
}

// BenchmarkFig5bRTT reproduces Fig. 5b: tunneled round-trip times.
func BenchmarkFig5bRTT(b *testing.B) {
	w := figureWorld(b, experiments.Config{})
	for _, f := range w.Methods() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			var rtt float64
			for i := 0; i < b.N; i++ {
				r, err := w.MeasureRTT(f, 12)
				if err != nil {
					b.Fatal(err)
				}
				rtt = r.RTT.Mean
			}
			b.ReportMetric(rtt*1000, "ms/RTT")
		})
	}
}

// BenchmarkFig5cPLR reproduces Fig. 5c: packet loss rate per method plus
// the uncensored baseline.
func BenchmarkFig5cPLR(b *testing.B) {
	w := figureWorld(b, experiments.Config{})
	fs := append(w.Methods(), w.DirectBaseline())
	for _, f := range fs {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			var plr float64
			for i := 0; i < b.N; i++ {
				r, err := w.MeasurePLR(f, 20)
				if err != nil {
					b.Fatal(err)
				}
				plr = r.PLR
			}
			b.ReportMetric(plr*100, "%PLR")
		})
	}
}

// BenchmarkFig6aTraffic reproduces Fig. 6a: client traffic per access.
func BenchmarkFig6aTraffic(b *testing.B) {
	w := figureWorld(b, experiments.Config{})
	fs := append([]experiments.Factory{w.DirectBaseline()}, w.Methods()...)
	for _, f := range fs {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			var kb float64
			for i := 0; i < b.N; i++ {
				r, err := w.MeasureTraffic(f, 5)
				if err != nil {
					b.Fatal(err)
				}
				kb = r.BytesPerAccess / 1024
			}
			b.ReportMetric(kb, "KB/access")
		})
	}
}

// BenchmarkFig6bcClientCost reproduces Fig. 6b/6c: the modeled client CPU
// and memory, driven by measured traffic.
func BenchmarkFig6bcClientCost(b *testing.B) {
	w := figureWorld(b, experiments.Config{})
	q := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := w.ReportFig6bc(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Scalability reproduces Fig. 7's sweep at three
// representative concurrency levels (run cmd/scholarbench -full for the
// complete eight-point sweep).
func BenchmarkFig7Scalability(b *testing.B) {
	w := figureWorld(b, experiments.Config{})
	for _, f := range w.Methods() {
		if f.Name == "tor" {
			continue // as in the paper: Tor's servers are not controllable
		}
		f := f
		for _, n := range []int{5, 60, 120} {
			n := n
			b.Run(fmt.Sprintf("%s/clients-%d", f.Name, n), func(b *testing.B) {
				var plt float64
				for i := 0; i < b.N; i++ {
					p, err := w.MeasureScalability(f, n, 1)
					if err != nil {
						b.Fatal(err)
					}
					plt = p.PLT.Mean
				}
				b.ReportMetric(plt, "s/PLT")
			})
		}
	}
}

// BenchmarkFleetScalability extends Fig. 7 beyond the paper: mean PLT at
// 120 continuously-browsing clients as the remote-proxy fleet grows. The
// legacy deployment's lone blinded carrier is the bottleneck at this
// load, so the fleet rows come in measurably lower.
func BenchmarkFleetScalability(b *testing.B) {
	const clients = 120
	for _, remotes := range []int{0, 2, 4} {
		remotes := remotes
		name := "single-remote"
		if remotes > 0 {
			name = fmt.Sprintf("fleet-%d", remotes)
		}
		b.Run(name, func(b *testing.B) {
			w := figureWorld(b, experiments.Config{FleetRemotes: remotes})
			var plt float64
			for i := 0; i < b.N; i++ {
				p, err := w.MeasureFleetScalability(clients, 1)
				if err != nil {
					b.Fatal(err)
				}
				if p.Failed > 0 {
					b.Fatalf("%d failed page loads", p.Failed)
				}
				plt = p.PLT.Mean
			}
			b.ReportMetric(plt, "s/PLT")
		})
	}
}

// BenchmarkFaultsResilience runs the acceptance scenario of the faults
// figure — a 40s 25% loss burst plus an unannounced primary-remote crash
// — with the client resilience layer off and on, reporting the page-load
// success rate each arm achieves.
func BenchmarkFaultsResilience(b *testing.B) {
	const scenario = "burst-loss+crash"
	for _, resil := range []bool{false, true} {
		resil := resil
		name := "resilience-off"
		if resil {
			name = "resilience-on"
		}
		b.Run(name, func(b *testing.B) {
			var success float64
			for i := 0; i < b.N; i++ {
				w := figureWorld(b, experiments.Config{
					FleetRemotes:  2,
					FaultScenario: scenario,
					Resilience:    resil,
				})
				r, err := w.MeasureFaults(24, 1)
				if err != nil {
					b.Fatal(err)
				}
				success = r.SuccessRate()
				w.Close()
			}
			b.ReportMetric(success*100, "%success")
		})
	}
}

// BenchmarkTransportLadder runs the acceptance scenario of the
// transports figure — the censor whitelist-blocking every protocol the
// blinded carrier's wire image can land on — against an open censor
// baseline, reporting the page-load success rate the escalation ladder
// preserves at each stage.
func BenchmarkTransportLadder(b *testing.B) {
	for _, stage := range []string{"open", "fingerprint"} {
		stage := stage
		b.Run(stage, func(b *testing.B) {
			st, ok := experiments.TransportStageByName(stage)
			if !ok {
				b.Fatalf("unknown censor stage %q", stage)
			}
			var success float64
			for i := 0; i < b.N; i++ {
				w := figureWorld(b, experiments.Config{
					Transports: carrier.Known(),
					Resilience: true,
				})
				r, err := w.MeasureTransports(st, 12, 1)
				if err != nil {
					b.Fatal(err)
				}
				success = r.SuccessRate()
				w.Close()
			}
			b.ReportMetric(success*100, "%success")
		})
	}
}

// BenchmarkAdaptiveCensor runs the censor figure's acceptance scenario —
// every border of the adaptive profile escalating to fingerprint
// blocking under its cohort's own traffic — reporting the whole-world
// page-load success rate the carrier ladder's survival tuning holds.
func BenchmarkAdaptiveCensor(b *testing.B) {
	profile, ok := censor.ProfileByName("adaptive")
	if !ok {
		b.Fatal(`unknown censor profile "adaptive"`)
	}
	var success float64
	for i := 0; i < b.N; i++ {
		w := figureWorld(b, experiments.Config{
			Censor:     &profile,
			Resilience: true,
		})
		p, err := w.MeasureCensorship(6, 4)
		if err != nil {
			b.Fatal(err)
		}
		success = p.SuccessRate()
		w.Close()
	}
	b.ReportMetric(success*100, "%success")
}

// BenchmarkShardedCache runs the shards figure's acceptance claim — a
// K-shard tier with cache peering holds border traffic at the
// single-proxy level while splitting the user base K ways — at K = 1
// and K = 4, reporting mean PLT and border kilobytes.
func BenchmarkShardedCache(b *testing.B) {
	for _, k := range []int{1, 4} {
		k := k
		b.Run(fmt.Sprintf("shards-%d", k), func(b *testing.B) {
			var plt, kb float64
			for i := 0; i < b.N; i++ {
				w := figureWorld(b, experiments.Config{
					CacheMB:            64,
					Shards:             k,
					ShardSiblingFetch:  k > 1,
					ShardRehashOnDeath: k > 1,
				})
				p, err := w.MeasureShards(16, 1)
				if err != nil {
					b.Fatal(err)
				}
				if p.Failed > 0 {
					b.Fatalf("%d failed page loads", p.Failed)
				}
				plt, kb = p.PLT.Mean, float64(p.BorderBytes)/1024
				w.Close()
			}
			b.ReportMetric(plt, "s/PLT")
			b.ReportMetric(kb, "KB/border")
		})
	}
}

// BenchmarkFlowWorld runs the scale figure's 100k-client cell — a fluid
// cohort of 100k clients plus 3 sampled packet-level clients on the
// fleet-32 cache deployment — reporting mean sampled PLT and border
// bytes per client. This is the flow-level mode's hot path: one world
// carries a population three orders of magnitude beyond what
// packet-level simulation reaches.
func BenchmarkFlowWorld(b *testing.B) {
	var plt, kb float64
	for i := 0; i < b.N; i++ {
		w := figureWorld(b, experiments.Config{FleetRemotes: 32, CacheMB: 64})
		f, ok := w.FactoryByName("scholarcloud")
		if !ok {
			b.Fatal("scholarcloud factory missing")
		}
		p, err := w.MeasureFlowScalability(f, 100_000, 2, 3)
		if err != nil {
			b.Fatal(err)
		}
		if p.Failed > 0 {
			b.Fatalf("%d failed sampled page loads", p.Failed)
		}
		plt, kb = p.PLT.Mean, p.BytesPerClient/1024
		w.Close()
	}
	b.ReportMetric(plt, "s/PLT")
	b.ReportMetric(kb, "KB/client")
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationBlinding compares ScholarCloud with and without
// message blinding: the unblinded tunnel dies to keyword filtering.
func BenchmarkAblationBlinding(b *testing.B) {
	b.Run("blinded", func(b *testing.B) {
		w := figureWorld(b, experiments.Config{})
		ok := 0
		for i := 0; i < b.N; i++ {
			r, err := w.MeasurePLT(scFactory(w), 1, 1)
			if err == nil && r.Subsequent.N > 0 {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(b.N)*100, "%success")
	})
	b.Run("no-blinding", func(b *testing.B) {
		w := figureWorld(b, experiments.Config{ScholarCloudNoBlinding: true})
		ok := 0
		for i := 0; i < b.N; i++ {
			if _, err := w.MeasurePLT(scFactory(w), 1, 1); err == nil {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(b.N)*100, "%success")
	})
}

func scFactory(w *experiments.World) experiments.Factory {
	for _, f := range w.Methods() {
		if f.Name == "scholarcloud" {
			return f
		}
	}
	panic("scholarcloud factory missing")
}

// BenchmarkAblationSSKeepAlive shows the paper's root-cause claim for
// Shadowsocks' PLT: lengthening the keep-alive removes the per-visit
// re-authentication and its latency.
func BenchmarkAblationSSKeepAlive(b *testing.B) {
	for _, ka := range []struct {
		name string
		d    int // seconds
	}{{"10s-default", 0}, {"600s", 600}} {
		ka := ka
		b.Run(ka.name, func(b *testing.B) {
			cfg := experiments.Config{}
			if ka.d > 0 {
				cfg.SSKeepAlive = 600e9
			}
			w := figureWorld(b, cfg)
			var f experiments.Factory
			for _, m := range w.Methods() {
				if m.Name == "shadowsocks" {
					f = m
				}
			}
			var sub float64
			for i := 0; i < b.N; i++ {
				r, err := w.MeasurePLT(f, 1, 4)
				if err != nil {
					b.Fatal(err)
				}
				sub = r.Subsequent.Mean
			}
			b.ReportMetric(sub, "s/subseq-PLT")
		})
	}
}

// BenchmarkAblationDomesticPenalty quantifies §1's claim that full-tunnel
// VPNs slow domestic browsing.
func BenchmarkAblationDomesticPenalty(b *testing.B) {
	w := figureWorld(b, experiments.Config{})
	var direct, viaVPN float64
	for i := 0; i < b.N; i++ {
		d, v, err := w.DomesticPenalty()
		if err != nil {
			b.Fatal(err)
		}
		direct, viaVPN = d.Seconds(), v.Seconds()
	}
	b.ReportMetric(direct, "s/direct")
	b.ReportMetric(viaVPN, "s/via-vpn")
	b.ReportMetric(viaVPN/direct, "x-penalty")
}

// --- Microbenchmarks on the primitives -------------------------------------

// BenchmarkBlindingSchemes measures codec throughput: blinding must add
// negligible CPU on the proxies.
func BenchmarkBlindingSchemes(b *testing.B) {
	buf := make([]byte, 64*1024)
	out := make([]byte, len(buf))
	for _, s := range []blinding.Scheme{
		blinding.NewByteMap([]byte("k")),
		blinding.NewXORStream([]byte("k")),
		blinding.Identity{},
	} {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			enc := s.NewEncoder()
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				enc.Apply(out, buf)
			}
		})
	}
}
