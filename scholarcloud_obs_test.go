package scholarcloud

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestMeasureMethodsCarryObs exercises every redesigned measurement
// method and checks that each result carries a per-run observability
// delta attributing activity to that measurement.
func TestMeasureMethodsCarryObs(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()

	plt, err := sim.MeasurePLT("scholarcloud", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plt.FirstTime.Mean <= plt.Subsequent.Mean {
		t.Errorf("first PLT %v not above subsequent %v", plt.FirstTime.Mean, plt.Subsequent.Mean)
	}
	if got := plt.Obs.Counter("http.visits"); got != 3 {
		t.Errorf("http.visits delta = %d, want 3", got)
	}
	if plt.Obs.Counter("core.domestic.streams") == 0 {
		t.Error("PLT run opened no tunnel streams")
	}
	if plt.Obs.Counter("gfw.verdicts.pass") == 0 {
		t.Error("PLT run recorded no GFW pass verdicts")
	}
	h, ok := plt.Obs.Histograms["http.plt_seconds"]
	if !ok || h.Count != 3 {
		t.Errorf("http.plt_seconds histogram = %+v", h)
	}

	rtt, err := sim.MeasureRTT("scholarcloud", 3)
	if err != nil {
		t.Fatal(err)
	}
	if rtt.RTT.Mean <= 0 {
		t.Errorf("RTT = %v", rtt.RTT.Mean)
	}
	if rtt.Obs.Counter("netsim.packets") == 0 {
		t.Error("RTT run moved no packets")
	}

	plr, err := sim.MeasurePLR("scholarcloud", 1)
	if err != nil {
		t.Fatal(err)
	}
	if plr.Obs.Counter("netsim.packets") == 0 {
		t.Error("PLR run moved no packets")
	}

	tr, err := sim.MeasureTraffic("scholarcloud", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BytesPerAccess <= 0 {
		t.Errorf("traffic = %v bytes/access", tr.BytesPerAccess)
	}
	if tr.Obs.Counter("http.fetches") == 0 {
		t.Error("traffic run fetched nothing")
	}

	sc, err := sim.MeasureScalability("scholarcloud", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Failed != 0 || sc.PLT.Mean <= 0 {
		t.Errorf("scalability = %+v", sc)
	}
	if got := sim.Snapshot().Counter("http.visits"); got < 3 {
		t.Errorf("cumulative http.visits = %d", got)
	}
}

// TestMeasureMethodsUnknownMethod checks the typed error on every
// redesigned path.
func TestMeasureMethodsUnknownMethod(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	calls := map[string]func() error{
		"MeasurePLT":         func() error { _, err := sim.MeasurePLT("carrier-pigeon", 1, 1); return err },
		"MeasureRTT":         func() error { _, err := sim.MeasureRTT("carrier-pigeon", 1); return err },
		"MeasurePLR":         func() error { _, err := sim.MeasurePLR("carrier-pigeon", 1); return err },
		"MeasureTraffic":     func() error { _, err := sim.MeasureTraffic("carrier-pigeon", 1); return err },
		"MeasureScalability": func() error { _, err := sim.MeasureScalability("carrier-pigeon", 1, 1); return err },
		"TracePageLoad":      func() error { _, err := sim.TracePageLoad("carrier-pigeon"); return err },
	}
	for name, call := range calls {
		var ue *UnknownMethodError
		if err := call(); !errors.As(err, &ue) || ue.Method != "carrier-pigeon" {
			t.Errorf("%s err = %v", name, err)
		}
	}
}

// TestObsFleetCounters runs a fleet-backed world through a ScholarCloud
// page load and checks the observability layer saw both the censor and
// the fleet at work. The GFW classifies the fleet's pre-dialed carriers
// at world construction, so the class counter is asserted on the
// absolute snapshot while the verdict and pick counters are asserted on
// the per-measurement delta.
func TestObsFleetCounters(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13, Fleet: &FleetOptions{Remotes: 2}})
	defer sim.Close()
	res, err := sim.MeasurePLT("scholarcloud", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.Counter("gfw.verdicts.pass") == 0 {
		t.Error("page load delta shows no GFW pass verdicts")
	}
	if res.Obs.Counter("fleet.picks") == 0 {
		t.Error("page load delta shows no fleet picks")
	}
	snap := sim.Snapshot()
	if snap.Counter("gfw.class.encrypted") == 0 {
		t.Error("no carrier flow was classified as encrypted")
	}
	if snap.Counter("fleet.streams_opened") == 0 {
		t.Error("fleet opened no streams")
	}
	if snap.Counter("fleet.healthy_endpoints") != 2 {
		t.Errorf("healthy endpoints = %d, want 2", snap.Counter("fleet.healthy_endpoints"))
	}
}

// TestFacadeTrace checks the facade's one-shot flow trace against the
// Fig. 4 session structure.
func TestFacadeTrace(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	tr, err := sim.TracePageLoad("scholarcloud")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Count("core", "stream-open"); got != 3 {
		t.Errorf("stream-open spans = %d, want 3 (TCP-2, TCP-3, TCP-4)", got)
	}
	if tr.Count("gfw", "classify") == 0 {
		t.Error("no GFW classify span")
	}
	if !strings.Contains(tr.Render("x"), "class=encrypted verdict=pass") {
		t.Error("carrier flow not classified encrypted/pass")
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error, "" = valid
	}{
		{"zero", Options{}, ""},
		{"nil fleet", Options{Fleet: nil}, ""},
		{"valid fleet", Options{Fleet: &FleetOptions{Remotes: 3, SessionsPerRemote: 2}}, ""},
		{"negative remotes", Options{Fleet: &FleetOptions{Remotes: -1}}, "Remotes is negative"},
		{"negative sessions", Options{Fleet: &FleetOptions{Remotes: 1, SessionsPerRemote: -4}}, "SessionsPerRemote is negative"},
		{"sessions without remotes", Options{Fleet: &FleetOptions{SessionsPerRemote: 2}}, "Remotes is zero"},
		{"valid cache", Options{Cache: &CacheOptions{CapacityMB: 8}}, ""},
		{"empty cache block", Options{Cache: &CacheOptions{}}, "CapacityMB must be positive"},
		{"valid faults", Options{Faults: &FaultOptions{Scenario: "loss-burst"}}, ""},
		{"valid faults with resilience", Options{Faults: &FaultOptions{Scenario: "burst-loss+crash", Resilience: true}}, ""},
		{"empty faults block", Options{Faults: &FaultOptions{}}, "Scenario is empty"},
		{"unknown fault scenario", Options{Faults: &FaultOptions{Scenario: "earthquake"}}, "unknown fault scenario"},
		{"valid transports", Options{Transports: &TransportOptions{Resilience: true}}, ""},
		{"transports explicit rungs", Options{Transports: &TransportOptions{Rungs: []string{"blinded", "dns-tunnel"}}}, ""},
		{"unknown transport rung", Options{Transports: &TransportOptions{Rungs: []string{"warp-drive"}}}, "unknown carrier transport"},
		{"duplicate transport rung", Options{Transports: &TransportOptions{Rungs: []string{"blinded", "blinded"}}}, "listed twice"},
		{"transports with fleet", Options{Transports: &TransportOptions{}, Fleet: &FleetOptions{Remotes: 2}}, "mutually exclusive"},
		{"all blocks valid", Options{
			Fleet:  &FleetOptions{Remotes: 2},
			Cache:  &CacheOptions{CapacityMB: 4},
			Faults: &FaultOptions{Scenario: "link-flap", Resilience: true},
		}, ""},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestNewSimulationPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewSimulation accepted a negative fleet size")
		}
		if !strings.Contains(r.(error).Error(), "Remotes is negative") {
			t.Errorf("panic = %v", r)
		}
	}()
	NewSimulation(Options{Fleet: &FleetOptions{Remotes: -2}})
}

// TestConflictingOptionsRejected checks NewSimulation refuses every
// self-contradictory nested-block combination with a descriptive panic —
// carrier pools without a fleet to own them, a cache block with no
// budget, a fault block naming no scenario.
func TestConflictingOptionsRejected(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the panic message
	}{
		{"sessions without remotes", Options{Fleet: &FleetOptions{SessionsPerRemote: 3}}, "Remotes is zero"},
		{"cache without capacity", Options{Cache: &CacheOptions{TTL: time.Minute}}, "CapacityMB must be positive"},
		{"faults without scenario", Options{Faults: &FaultOptions{Resilience: true}}, "Scenario is empty"},
		{"unknown fault scenario", Options{Faults: &FaultOptions{Scenario: "tsunami"}}, "unknown fault scenario"},
		{"transports with fleet", Options{Transports: &TransportOptions{}, Fleet: &FleetOptions{Remotes: 2}}, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("NewSimulation accepted %+v", tc.opts)
				}
				if !strings.Contains(r.(error).Error(), tc.want) {
					t.Errorf("panic = %v, want substring %q", r, tc.want)
				}
			}()
			NewSimulation(tc.opts)
		})
	}
}
