package scholarcloud

import (
	"errors"
	"strings"
	"testing"
)

// TestMeasureMethodsCarryObs exercises every redesigned measurement
// method and checks that each result carries a per-run observability
// delta attributing activity to that measurement.
func TestMeasureMethodsCarryObs(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()

	plt, err := sim.MeasurePLT("scholarcloud", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plt.FirstTime.Mean <= plt.Subsequent.Mean {
		t.Errorf("first PLT %v not above subsequent %v", plt.FirstTime.Mean, plt.Subsequent.Mean)
	}
	if got := plt.Obs.Counter("http.visits"); got != 3 {
		t.Errorf("http.visits delta = %d, want 3", got)
	}
	if plt.Obs.Counter("core.domestic.streams") == 0 {
		t.Error("PLT run opened no tunnel streams")
	}
	if plt.Obs.Counter("gfw.verdicts.pass") == 0 {
		t.Error("PLT run recorded no GFW pass verdicts")
	}
	h, ok := plt.Obs.Histograms["http.plt_seconds"]
	if !ok || h.Count != 3 {
		t.Errorf("http.plt_seconds histogram = %+v", h)
	}

	rtt, err := sim.MeasureRTT("scholarcloud", 3)
	if err != nil {
		t.Fatal(err)
	}
	if rtt.RTT.Mean <= 0 {
		t.Errorf("RTT = %v", rtt.RTT.Mean)
	}
	if rtt.Obs.Counter("netsim.packets") == 0 {
		t.Error("RTT run moved no packets")
	}

	plr, err := sim.MeasurePLR("scholarcloud", 1)
	if err != nil {
		t.Fatal(err)
	}
	if plr.Obs.Counter("netsim.packets") == 0 {
		t.Error("PLR run moved no packets")
	}

	tr, err := sim.MeasureTraffic("scholarcloud", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BytesPerAccess <= 0 {
		t.Errorf("traffic = %v bytes/access", tr.BytesPerAccess)
	}
	if tr.Obs.Counter("http.fetches") == 0 {
		t.Error("traffic run fetched nothing")
	}

	sc, err := sim.MeasureScalability("scholarcloud", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Failed != 0 || sc.PLT.Mean <= 0 {
		t.Errorf("scalability = %+v", sc)
	}
	if got := sim.Snapshot().Counter("http.visits"); got < 3 {
		t.Errorf("cumulative http.visits = %d", got)
	}
}

// TestMeasureMethodsUnknownMethod checks the typed error on every
// redesigned path.
func TestMeasureMethodsUnknownMethod(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	calls := map[string]func() error{
		"MeasurePLT":         func() error { _, err := sim.MeasurePLT("carrier-pigeon", 1, 1); return err },
		"MeasureRTT":         func() error { _, err := sim.MeasureRTT("carrier-pigeon", 1); return err },
		"MeasurePLR":         func() error { _, err := sim.MeasurePLR("carrier-pigeon", 1); return err },
		"MeasureTraffic":     func() error { _, err := sim.MeasureTraffic("carrier-pigeon", 1); return err },
		"MeasureScalability": func() error { _, err := sim.MeasureScalability("carrier-pigeon", 1, 1); return err },
		"TracePageLoad":      func() error { _, err := sim.TracePageLoad("carrier-pigeon"); return err },
	}
	for name, call := range calls {
		var ue *UnknownMethodError
		if err := call(); !errors.As(err, &ue) || ue.Method != "carrier-pigeon" {
			t.Errorf("%s err = %v", name, err)
		}
	}
}

// TestObsFleetCounters runs a fleet-backed world through a ScholarCloud
// page load and checks the observability layer saw both the censor and
// the fleet at work. The GFW classifies the fleet's pre-dialed carriers
// at world construction, so the class counter is asserted on the
// absolute snapshot while the verdict and pick counters are asserted on
// the per-measurement delta.
func TestObsFleetCounters(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13, Fleet: &FleetOptions{Remotes: 2}})
	defer sim.Close()
	res, err := sim.MeasurePLT("scholarcloud", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.Counter("gfw.verdicts.pass") == 0 {
		t.Error("page load delta shows no GFW pass verdicts")
	}
	if res.Obs.Counter("fleet.picks") == 0 {
		t.Error("page load delta shows no fleet picks")
	}
	snap := sim.Snapshot()
	if snap.Counter("gfw.class.encrypted") == 0 {
		t.Error("no carrier flow was classified as encrypted")
	}
	if snap.Counter("fleet.streams_opened") == 0 {
		t.Error("fleet opened no streams")
	}
	if snap.Counter("fleet.healthy_endpoints") != 2 {
		t.Errorf("healthy endpoints = %d, want 2", snap.Counter("fleet.healthy_endpoints"))
	}
}

// TestFacadeTrace checks the facade's one-shot flow trace against the
// Fig. 4 session structure.
func TestFacadeTrace(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	tr, err := sim.TracePageLoad("scholarcloud")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Count("core", "stream-open"); got != 3 {
		t.Errorf("stream-open spans = %d, want 3 (TCP-2, TCP-3, TCP-4)", got)
	}
	if tr.Count("gfw", "classify") == 0 {
		t.Error("no GFW classify span")
	}
	if !strings.Contains(tr.Render("x"), "class=encrypted verdict=pass") {
		t.Error("carrier flow not classified encrypted/pass")
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error, "" = valid
	}{
		{"zero", Options{}, ""},
		{"nil fleet", Options{Fleet: nil}, ""},
		{"valid fleet", Options{Fleet: &FleetOptions{Remotes: 3, SessionsPerRemote: 2}}, ""},
		{"flat alias", Options{FleetRemotes: 2}, ""},
		{"negative remotes", Options{Fleet: &FleetOptions{Remotes: -1}}, "Remotes is negative"},
		{"negative sessions", Options{Fleet: &FleetOptions{Remotes: 1, SessionsPerRemote: -4}}, "SessionsPerRemote is negative"},
		{"sessions without remotes", Options{Fleet: &FleetOptions{SessionsPerRemote: 2}}, "Remotes is zero"},
		{"flat sessions without remotes", Options{FleetSessionsPerRemote: 2}, "Remotes is zero"},
		{"both forms agreeing", Options{Fleet: &FleetOptions{Remotes: 1}, FleetRemotes: 1}, ""},
		{"both forms agreeing full", Options{Fleet: &FleetOptions{Remotes: 2, SessionsPerRemote: 3}, FleetRemotes: 2, FleetSessionsPerRemote: 3}, ""},
		{"flat zero with fleet", Options{Fleet: &FleetOptions{Remotes: 4}}, ""},
		{"conflicting remotes", Options{Fleet: &FleetOptions{Remotes: 2}, FleetRemotes: 5}, "conflicting fleet sizes"},
		{"conflicting sessions", Options{Fleet: &FleetOptions{Remotes: 2, SessionsPerRemote: 1}, FleetSessionsPerRemote: 4}, "conflicting carrier-pool sizes"},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestNewSimulationPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewSimulation accepted a negative fleet size")
		}
		if !strings.Contains(r.(error).Error(), "Remotes is negative") {
			t.Errorf("panic = %v", r)
		}
	}()
	NewSimulation(Options{Fleet: &FleetOptions{Remotes: -2}})
}

// TestDeprecatedFlatFleetOptions checks the flat aliases still build a
// fleet-backed world.
func TestDeprecatedFlatFleetOptions(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13, FleetRemotes: 2})
	defer sim.Close()
	if sim.World.Fleet == nil {
		t.Fatal("flat FleetRemotes did not build a fleet")
	}
}

// TestAgreeingFlatAndNestedFleetOptions checks a half-migrated config —
// nested Fleet plus flat aliases carrying the same values — still builds
// (the nested form wins; nothing to disagree about).
func TestAgreeingFlatAndNestedFleetOptions(t *testing.T) {
	sim := NewSimulation(Options{
		Seed:         13,
		Fleet:        &FleetOptions{Remotes: 2},
		FleetRemotes: 2,
	})
	defer sim.Close()
	if sim.World.Fleet == nil {
		t.Fatal("agreeing flat+nested options did not build a fleet")
	}
}

// TestConflictingFleetOptionsPanic checks NewSimulation refuses
// disagreeing nonzero flat/nested fleet fields instead of silently
// preferring one.
func TestConflictingFleetOptionsPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewSimulation accepted conflicting fleet sizes")
		}
		if !strings.Contains(r.(error).Error(), "conflicting") {
			t.Errorf("panic = %v", r)
		}
	}()
	NewSimulation(Options{Fleet: &FleetOptions{Remotes: 2}, FleetRemotes: 5})
}
