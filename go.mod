module scholarcloud

go 1.22
