// Legal avenue: the non-technical half of the paper's thesis (§2–§3).
// Two proxy services operate across the border. One registers with the
// TCA, publishes an auditable whitelist, and survives an investigation;
// the other ignores the ICP regime and is shut down by MPS/MSS — even
// though the GFW itself never flagged either.
package main

import (
	"fmt"
	"time"

	"scholarcloud"
	"scholarcloud/internal/registry"
)

func main() {
	sim := scholarcloud.NewSimulation(scholarcloud.Options{Seed: 5})
	defer sim.Close()
	w := sim.World

	fmt.Println("== the legal avenue: registration vs. takedown ==")
	fmt.Println()

	// ScholarCloud registered at world construction; inspect the record.
	reg, ok := w.Registry.Lookup("101.6.6.6")
	if !ok {
		panic("ScholarCloud is not in the MIIT database")
	}
	fmt.Printf("MIIT record %s: %q (%s), responsible person on file\n",
		reg.ICPNumber, reg.App.ServiceName, reg.App.ServiceType)
	wl, err := w.Registry.AuditWhitelist(reg.ICPNumber)
	if err != nil {
		panic(err)
	}
	fmt.Printf("auditable whitelist: %v\n", wl)
	fmt.Println()

	err = w.Run(func() error {
		// A complaint is filed against both services. MPS/MSS investigate
		// (evidence collection takes time), then act only on the
		// unregistered one.
		fmt.Println("complaints filed against both cross-border proxies...")

		if td := w.Enforcement.Report("101.6.6.6", "operates a cross-border proxy"); td != nil {
			return fmt.Errorf("registered service was taken down: %+v", td)
		}
		fmt.Println("  ScholarCloud (registered):    investigation closed, no action")

		td := w.Enforcement.Report("198.51.100.12", "operates an unregistered proxy")
		if td == nil {
			return fmt.Errorf("unregistered service escaped enforcement")
		}
		fmt.Printf("  Shadowsocks (unregistered):   TAKEN DOWN after %s investigation\n",
			24*time.Hour)
		_ = td
		return nil
	})
	if err != nil {
		panic(err)
	}

	// The takedown propagated to the GFW's IP blocklist: the Shadowsocks
	// server is now unreachable, while ScholarCloud still works.
	err = w.Run(func() error {
		ss := w.Shadowsocks(w.Client)
		defer ss.Close()
		if _, err := ss.DialHost("scholar.google.com", 443); err == nil {
			return fmt.Errorf("shadowsocks still reachable after takedown")
		}
		fmt.Println()
		fmt.Println("after enforcement:")
		fmt.Println("  shadowsocks client: connection to server blackholed")

		sc := w.ScholarCloud(w.Client)
		defer sc.Close()
		conn, err := sc.DialHost("scholar.google.com", 443)
		if err != nil {
			return fmt.Errorf("scholarcloud broken: %w", err)
		}
		conn.Close()
		fmt.Println("  scholarcloud client: still reaching Google Scholar")
		return nil
	})
	if err != nil {
		panic(err)
	}

	// The whitelist is alterable on demand — the regulator's lever.
	fmt.Println()
	fmt.Println("a regulator requests an addition to the whitelist...")
	w.Whitelist.SetDomains(append(wl, "archive.org"))
	fmt.Printf("whitelist now: %v\n", w.Whitelist.Domains())

	_ = registry.StatusRegistered // keep the import for the doc reference
}
