// Measurement study: a compact rerun of the paper's §4 comparison —
// page load time, round-trip time, and packet loss rate for all five
// access methods from a censored vantage point.
package main

import (
	"fmt"

	"scholarcloud"
	"scholarcloud/internal/metrics"
)

func main() {
	sim := scholarcloud.NewSimulation(scholarcloud.Options{Seed: 7})
	defer sim.Close()

	fmt.Println("== measurement study: five ways to reach Google Scholar from Beijing ==")
	fmt.Println()
	fmt.Printf("%-13s %-12s %-12s %-10s %-8s\n", "method", "first PLT", "subseq PLT", "RTT", "PLR")

	for _, name := range sim.MethodNames() {
		plt, err := sim.MeasurePLT(name, 2, 6)
		if err != nil {
			panic(err)
		}
		rtt, err := sim.MeasureRTT(name, 10)
		if err != nil {
			panic(err)
		}
		plr, err := sim.MeasurePLR(name, 10)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-13s %-12s %-12s %-10s %-8s\n", name,
			metrics.FormatSeconds(plt.FirstTime.Mean),
			metrics.FormatSeconds(plt.Subsequent.Mean),
			metrics.FormatSeconds(rtt.RTT.Mean),
			metrics.FormatPercent(plr.PLR))
	}

	fmt.Println()
	fmt.Println("Reading the table the way §4.3 does:")
	fmt.Println("  - Tor pays for three hops and meek polling: worst first-time PLT and PLR.")
	fmt.Println("  - Shadowsocks re-authenticates every session (10s keep-alive): slow, and")
	fmt.Println("    its server is probe-confirmed, so the GFW degrades its flows.")
	fmt.Println("  - Native VPN and OpenVPN are classified as legal VPNs and left alone.")
	fmt.Println("  - ScholarCloud matches VPN robustness with zero client software.")
}
