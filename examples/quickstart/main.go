// Quickstart: build the censored world, try to reach Google Scholar
// directly (it fails — that is the paper's motivating problem), then
// reach it through ScholarCloud with nothing but the PAC-configured
// proxy.
package main

import (
	"fmt"
	"time"

	"scholarcloud"
	"scholarcloud/internal/httpsim"
)

func main() {
	sim := scholarcloud.NewSimulation(scholarcloud.Options{Seed: 1})
	defer sim.Close()
	w := sim.World

	err := w.Run(func() error {
		fmt.Println("== quickstart: a scholar in Beijing opens scholar.google.com ==")
		fmt.Println()

		// 1. Direct access: DNS is poisoned and the IP is blackholed.
		direct := httpsim.NewBrowser(w.Direct(w.Client), w.Env.Clock)
		st := direct.Visit("http://scholar.google.com/")
		fmt.Printf("directly:           FAILED (%v)\n", st.Err)

		// 2. Through ScholarCloud: the browser's only change is the PAC
		//    file served by the domestic proxy.
		method := w.ScholarCloud(w.Client)
		defer method.Close()
		browser := httpsim.NewBrowser(method, w.Env.Clock)

		st = browser.Visit("http://scholar.google.com/")
		if st.Failed {
			return fmt.Errorf("scholarcloud visit failed: %w", st.Err)
		}
		fmt.Printf("via ScholarCloud:   loaded in %v (first visit: %d connections, %d resources)\n",
			st.PLT.Round(time.Millisecond), st.NewConns, st.Resources)

		w.Env.Clock.Sleep(60 * time.Second)
		st = browser.Visit("http://scholar.google.com/")
		if st.Failed {
			return fmt.Errorf("second visit failed: %w", st.Err)
		}
		fmt.Printf("subsequent visit:   loaded in %v (%d cache hits)\n",
			st.PLT.Round(time.Millisecond), st.CacheHits)

		fmt.Println()
		fmt.Printf("domestic proxy served %d requests; %d streams crossed the blinded tunnel\n",
			w.Domestic.Stats().Requests, w.Remote.Stats().StreamsOpened)
		return nil
	})
	if err != nil {
		panic(err)
	}
}
