// Blinding arms race: why ScholarCloud's message blinding matters, and
// how controlling both proxies makes the system agile (§3).
//
//  1. Without blinding, the inter-proxy tunnel leaks its targets to the
//     GFW's raw keyword filter — the connection is reset.
//  2. With blinding (a keyed byte-mapping), the same traffic matches no
//     protocol fingerprint and no keyword: it passes.
//  3. The operator rotates the blinding scheme at will; clients never
//     notice, because only the two proxies participate.
package main

import (
	"fmt"
	"time"

	"scholarcloud"
	"scholarcloud/internal/httpsim"
)

func visit(sim *scholarcloud.Simulation) (time.Duration, error) {
	w := sim.World
	var plt time.Duration
	err := w.Run(func() error {
		m := w.ScholarCloud(w.Client)
		defer m.Close()
		b := httpsim.NewBrowser(m, w.Env.Clock)
		st := b.Visit("http://scholar.google.com/")
		if st.Failed {
			return st.Err
		}
		plt = st.PLT
		return nil
	})
	return plt, err
}

func main() {
	fmt.Println("== the blinding arms race ==")
	fmt.Println()

	// Round 1: no blinding.
	naked := scholarcloud.NewSimulation(scholarcloud.Options{Seed: 3, NoBlinding: true})
	if _, err := visit(naked); err != nil {
		fmt.Printf("without blinding:  BLOCKED (%v)\n", err)
	} else {
		fmt.Println("without blinding:  unexpectedly survived")
	}
	fmt.Printf("                   GFW keyword resets: %d\n", naked.World.GFW.Stats().KeywordResets)
	naked.Close()

	// Round 2: byte-mapping blinding.
	blinded := scholarcloud.NewSimulation(scholarcloud.Options{Seed: 3})
	defer blinded.Close()
	plt, err := visit(blinded)
	if err != nil {
		panic(err)
	}
	fmt.Printf("with blinding:     loaded in %v\n", plt.Round(time.Millisecond))

	// Round 3: the GFW "learns something"; the operator rotates epochs —
	// a different scheme family with fresh keys, no client involvement.
	for epoch := uint64(1); epoch <= 3; epoch++ {
		blinded.RotateBlinding(epoch)
		plt, err := visit(blinded)
		if err != nil {
			panic(fmt.Sprintf("epoch %d: %v", epoch, err))
		}
		fmt.Printf("rotated epoch %d:   loaded in %v\n", epoch, plt.Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("Tor needs its relay network to upgrade and Shadowsocks needs every client")
	fmt.Println("to update; ScholarCloud changed its wire format three times in this run")
	fmt.Println("by touching only the two machines it controls.")
}
