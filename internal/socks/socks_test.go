package socks

import (
	"errors"
	"net"
	"testing"
)

// startServer runs a one-shot SOCKS server that reports the requested
// target and grants or denies.
func startServer(t *testing.T, grant bool) (net.Conn, chan string) {
	t.Helper()
	client, server := net.Pipe()
	targets := make(chan string, 1)
	go func() {
		target, err := ReadRequest(server)
		if err != nil {
			close(targets)
			return
		}
		targets <- target
		if grant {
			Grant(server)
		} else {
			Deny(server)
		}
	}()
	return client, targets
}

func TestConnectDomainTarget(t *testing.T) {
	client, targets := startServer(t, true)
	defer client.Close()
	if err := ClientConnect(client, "scholar.google.com:443"); err != nil {
		t.Fatal(err)
	}
	if got := <-targets; got != "scholar.google.com:443" {
		t.Errorf("server saw target %q", got)
	}
}

func TestConnectIPv4Target(t *testing.T) {
	client, targets := startServer(t, true)
	defer client.Close()
	if err := ClientConnect(client, "172.217.6.78:80"); err != nil {
		t.Fatal(err)
	}
	if got := <-targets; got != "172.217.6.78:80" {
		t.Errorf("server saw target %q", got)
	}
}

func TestConnectDenied(t *testing.T) {
	client, _ := startServer(t, false)
	defer client.Close()
	err := ClientConnect(client, "x.com:80")
	if !errors.Is(err, ErrGeneral) {
		t.Errorf("err = %v, want ErrGeneral", err)
	}
}

func TestConnectBadTargets(t *testing.T) {
	for _, target := range []string{"noport", "host:notanumber", "host:0", "host:70000"} {
		client, server := net.Pipe()
		go func() { ReadRequest(server) }()
		if err := ClientConnect(client, target); err == nil {
			t.Errorf("ClientConnect(%q) succeeded", target)
		}
		client.Close()
		server.Close()
	}
}

func TestServerRejectsWrongVersion(t *testing.T) {
	client, server := net.Pipe()
	errs := make(chan error, 1)
	go func() {
		_, err := ReadRequest(server)
		errs <- err
	}()
	client.Write([]byte{0x04, 0}) // SOCKS4 greeting (no methods)
	if err := <-errs; !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
	client.Close()
}

func TestEndToEndStreamAfterGrant(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		target, err := ReadRequest(server)
		if err != nil || target != "echo.example:7" {
			server.Close()
			return
		}
		Grant(server)
		buf := make([]byte, 16)
		n, _ := server.Read(buf)
		server.Write(buf[:n])
	}()
	if err := ClientConnect(client, "echo.example:7"); err != nil {
		t.Fatal(err)
	}
	client.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := client.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Errorf("echo = %q", buf)
	}
}
