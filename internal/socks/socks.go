// Package socks implements the SOCKS5 protocol (RFC 1928), CONNECT
// command only, with no-auth negotiation. Shadowsocks and Tor expose
// their client side as a local SOCKS5 proxy, which is how browsers hand
// them traffic.
package socks

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
)

// Protocol constants.
const (
	version5     = 0x05
	cmdConnect   = 0x01
	atypIPv4     = 0x01
	atypDomain   = 0x03
	replyOK      = 0x00
	replyFailure = 0x01
	replyRefused = 0x05
)

// Errors returned by the client handshake.
var (
	ErrVersion = errors.New("socks: unsupported version")
	ErrRefused = errors.New("socks: connection refused by proxy")
	ErrGeneral = errors.New("socks: general proxy failure")
)

// ClientConnect performs the client side of a SOCKS5 CONNECT for target
// ("host:port", host may be a domain name) over conn. On success the
// connection carries the end-to-end stream.
func ClientConnect(conn net.Conn, target string) error {
	host, portStr, err := splitHostPort(target)
	if err != nil {
		return err
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port <= 0 || port > 65535 {
		return fmt.Errorf("socks: bad port %q", portStr)
	}

	// Greeting: no-auth only.
	if _, err := conn.Write([]byte{version5, 1, 0x00}); err != nil {
		return err
	}
	var reply [2]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return err
	}
	if reply[0] != version5 || reply[1] != 0x00 {
		return ErrVersion
	}

	// CONNECT request.
	req := []byte{version5, cmdConnect, 0x00}
	if ip := net.ParseIP(host); ip != nil && ip.To4() != nil {
		req = append(req, atypIPv4)
		req = append(req, ip.To4()...)
	} else {
		if len(host) > 255 {
			return fmt.Errorf("socks: hostname too long")
		}
		req = append(req, atypDomain, byte(len(host)))
		req = append(req, host...)
	}
	req = binary.BigEndian.AppendUint16(req, uint16(port))
	if _, err := conn.Write(req); err != nil {
		return err
	}

	// Reply: VER REP RSV ATYP BND.ADDR BND.PORT
	var head [4]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return err
	}
	if head[0] != version5 {
		return ErrVersion
	}
	var bindLen int
	switch head[3] {
	case atypIPv4:
		bindLen = 4
	case atypDomain:
		var l [1]byte
		if _, err := io.ReadFull(conn, l[:]); err != nil {
			return err
		}
		bindLen = int(l[0])
	default:
		return fmt.Errorf("socks: unsupported bind address type %#x", head[3])
	}
	bind := make([]byte, bindLen+2)
	if _, err := io.ReadFull(conn, bind); err != nil {
		return err
	}
	switch head[1] {
	case replyOK:
		return nil
	case replyRefused:
		return ErrRefused
	default:
		return fmt.Errorf("%w (code %#x)", ErrGeneral, head[1])
	}
}

// ReadRequest performs the server side of the negotiation on conn and
// returns the requested target as "host:port". The caller must then dial
// the target and call either Grant or Deny.
func ReadRequest(conn net.Conn) (string, error) {
	var head [2]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return "", err
	}
	if head[0] != version5 {
		return "", ErrVersion
	}
	methods := make([]byte, head[1])
	if _, err := io.ReadFull(conn, methods); err != nil {
		return "", err
	}
	if _, err := conn.Write([]byte{version5, 0x00}); err != nil {
		return "", err
	}

	var req [4]byte
	if _, err := io.ReadFull(conn, req[:]); err != nil {
		return "", err
	}
	if req[0] != version5 || req[1] != cmdConnect {
		return "", fmt.Errorf("socks: unsupported command %#x", req[1])
	}
	var host string
	switch req[3] {
	case atypIPv4:
		var ip [4]byte
		if _, err := io.ReadFull(conn, ip[:]); err != nil {
			return "", err
		}
		host = net.IPv4(ip[0], ip[1], ip[2], ip[3]).String()
	case atypDomain:
		var l [1]byte
		if _, err := io.ReadFull(conn, l[:]); err != nil {
			return "", err
		}
		name := make([]byte, l[0])
		if _, err := io.ReadFull(conn, name); err != nil {
			return "", err
		}
		host = string(name)
	default:
		return "", fmt.Errorf("socks: unsupported address type %#x", req[3])
	}
	var portB [2]byte
	if _, err := io.ReadFull(conn, portB[:]); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s:%d", host, binary.BigEndian.Uint16(portB[:])), nil
}

// Grant sends a success reply; the connection then carries the stream.
func Grant(conn net.Conn) error {
	return writeReply(conn, replyOK)
}

// Deny sends a failure reply.
func Deny(conn net.Conn) error {
	return writeReply(conn, replyFailure)
}

func writeReply(conn net.Conn, code byte) error {
	_, err := conn.Write([]byte{version5, code, 0x00, atypIPv4, 0, 0, 0, 0, 0, 0})
	return err
}

func splitHostPort(target string) (string, string, error) {
	for i := len(target) - 1; i >= 0; i-- {
		if target[i] == ':' {
			return target[:i], target[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("socks: target %q missing port", target)
}
