package blinding

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"

	"scholarcloud/internal/tlssim"
)

func schemes() []Scheme {
	return []Scheme{
		NewByteMap([]byte("key-1")),
		NewXORStream([]byte("key-1")),
		Identity{},
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	for _, s := range schemes() {
		s := s
		f := func(data []byte) bool {
			enc := s.NewEncoder()
			dec := s.NewDecoder()
			wire := make([]byte, len(data))
			enc.Apply(wire, data)
			back := make([]byte, len(wire))
			dec.Apply(back, wire)
			return bytes.Equal(back, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestRoundTripSurvivesResegmentation(t *testing.T) {
	// The inter-proxy tunnel cannot control TCP segmentation, so decoding
	// in different chunk sizes than encoding must still work.
	for _, s := range schemes() {
		data := make([]byte, 10000)
		for i := range data {
			data[i] = byte(i * 31)
		}
		enc := s.NewEncoder()
		wire := make([]byte, len(data))
		enc.Apply(wire, data)

		dec := s.NewDecoder()
		var back []byte
		for off := 0; off < len(wire); {
			chunk := 1 + (off*7)%613
			if off+chunk > len(wire) {
				chunk = len(wire) - off
			}
			out := make([]byte, chunk)
			dec.Apply(out, wire[off:off+chunk])
			back = append(back, out...)
			off += chunk
		}
		if !bytes.Equal(back, data) {
			t.Errorf("%s: resegmented round trip corrupted data", s.Name())
		}
	}
}

func TestByteMapIsPermutation(t *testing.T) {
	m := NewByteMap([]byte("any key"))
	seen := make(map[byte]bool)
	enc := m.NewEncoder()
	for i := 0; i < 256; i++ {
		out := make([]byte, 1)
		enc.Apply(out, []byte{byte(i)})
		if seen[out[0]] {
			t.Fatalf("byte map not injective at %d", i)
		}
		seen[out[0]] = true
	}
}

func TestDifferentKeysGiveDifferentMappings(t *testing.T) {
	a := NewByteMap([]byte("key-a")).NewEncoder()
	b := NewByteMap([]byte("key-b")).NewEncoder()
	in := []byte("the same plaintext bytes")
	outA := make([]byte, len(in))
	outB := make([]byte, len(in))
	a.Apply(outA, in)
	b.Apply(outB, in)
	if bytes.Equal(outA, outB) {
		t.Error("different keys produced identical encodings")
	}
}

func TestBlindingDestroysTLSFingerprint(t *testing.T) {
	// The core mechanism of the paper: a TLS record header is what the
	// GFW's DPI keys on; after blinding it must no longer parse as one.
	record := []byte{0x16, 0x03, 0x03, 0x00, 0x40}
	record = append(record, bytes.Repeat([]byte{0xAB}, 0x40)...)
	if !tlssim.LooksLikeRecordHeader(record) {
		t.Fatal("test record not recognized before blinding")
	}
	for _, s := range []Scheme{NewByteMap([]byte("k")), NewXORStream([]byte("k"))} {
		enc := s.NewEncoder()
		wire := make([]byte, len(record))
		enc.Apply(wire, record)
		if tlssim.LooksLikeRecordHeader(wire) {
			t.Errorf("%s: blinded stream still fingerprints as TLS", s.Name())
		}
	}
}

func TestIdentityPreservesFingerprint(t *testing.T) {
	record := []byte{0x16, 0x03, 0x03, 0x00, 0x01, 0x00}
	enc := Identity{}.NewEncoder()
	wire := make([]byte, len(record))
	enc.Apply(wire, record)
	if !tlssim.LooksLikeRecordHeader(wire) {
		t.Error("identity scheme altered the stream")
	}
}

func TestSchemeForEpochRotation(t *testing.T) {
	secret := []byte("shared")
	s0 := SchemeForEpoch(secret, 0)
	s1 := SchemeForEpoch(secret, 1)
	s2 := SchemeForEpoch(secret, 2)
	if s0.Name() == s1.Name() {
		t.Error("adjacent epochs use the same scheme family")
	}
	// Same family at epochs 0 and 2, but different key material.
	in := []byte("probe probe probe probe")
	out0 := make([]byte, len(in))
	out2 := make([]byte, len(in))
	s0.NewEncoder().Apply(out0, in)
	s2.NewEncoder().Apply(out2, in)
	if bytes.Equal(out0, out2) {
		t.Error("epochs 0 and 2 produced identical encodings")
	}
}

func TestSchemeForEpochDeterministic(t *testing.T) {
	in := []byte("deterministic")
	a := make([]byte, len(in))
	b := make([]byte, len(in))
	SchemeForEpoch([]byte("s"), 7).NewEncoder().Apply(a, in)
	SchemeForEpoch([]byte("s"), 7).NewEncoder().Apply(b, in)
	if !bytes.Equal(a, b) {
		t.Error("same secret+epoch gave different encodings")
	}
}

func TestParseScheme(t *testing.T) {
	for _, name := range []string{"bytemap", "xorstream", "identity", "none"} {
		if _, err := ParseScheme(name, []byte("k")); err != nil {
			t.Errorf("ParseScheme(%q): %v", name, err)
		}
	}
	if _, err := ParseScheme("rot13", []byte("k")); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestWrapConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	scheme := NewByteMap([]byte("tunnel-key"))
	// a encodes writes; b decodes reads (and vice versa).
	wa := WrapConn(a, scheme)
	wb := WrapConn(b, scheme)

	msg := []byte("GET /scholar HTTP/1.1\r\n")
	go wa.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := wb.Read(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("through blinded pipe: %q", buf)
	}
}

func TestWrapConnWireBytesAreBlinded(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	scheme := NewByteMap([]byte("tunnel-key"))
	wa := WrapConn(a, scheme)

	msg := []byte("GET /scholar HTTP/1.1\r\n")
	go wa.Write(msg)
	wire := make([]byte, len(msg))
	if _, err := b.Read(wire); err != nil { // raw end: sees wire bytes
		t.Fatal(err)
	}
	if bytes.Equal(wire, msg) {
		t.Error("wire bytes identical to plaintext")
	}
	if bytes.Contains(wire, []byte("HTTP")) {
		t.Error("wire bytes leak protocol keywords")
	}
}
