package blinding

import "net"

// Conn applies a blinding scheme to a connection: writes are encoded,
// reads are decoded. Both ScholarCloud proxies wrap their inter-proxy
// connections with it.
type Conn struct {
	net.Conn
	enc Transform
	dec Transform
}

// WrapConn blinds conn with scheme. The returned connection is used in
// place of the original.
func WrapConn(conn net.Conn, scheme Scheme) *Conn {
	return &Conn{Conn: conn, enc: scheme.NewEncoder(), dec: scheme.NewDecoder()}
}

// Read implements net.Conn, decoding received bytes.
func (c *Conn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.dec.Apply(b[:n], b[:n])
	}
	return n, err
}

// Write implements net.Conn, encoding sent bytes.
func (c *Conn) Write(b []byte) (int, error) {
	// Encode into a scratch buffer so the caller's slice is untouched.
	out := make([]byte, len(b))
	c.enc.Apply(out, b)
	return c.Conn.Write(out)
}

// WriteBlocksManaged forwards the managed-write marker of the wrapped
// connection (see mux.managedWriteConn): blinding adds pure CPU work, so
// the write's blocking character is whatever the carrier's is.
func (c *Conn) WriteBlocksManaged() bool {
	mc, ok := c.Conn.(interface{ WriteBlocksManaged() bool })
	return ok && mc.WriteBlocksManaged()
}
