// Package blinding implements ScholarCloud's message blinding (§3 of the
// paper): reversible, keyed byte-level encodings applied to the already-
// encrypted stream between the domestic and remote proxies. Blinding does
// not add confidentiality — the payload underneath is already encrypted —
// it destroys the *protocol structure* that deep packet inspection
// fingerprints: after blinding, a TLS record header no longer looks like a
// TLS record header, and the stream matches no known-protocol classifier.
//
// Because ScholarCloud controls both proxies, the scheme can be rotated at
// any time without touching clients (SchemeForEpoch); this is the "agility
// against the GFW's reactions" the paper claims over Tor and Shadowsocks.
package blinding

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Transform is a stateful, direction-specific byte-stream transformation.
// Apply processes src into dst (same length); implementations may keep
// stream position state, so a Transform must be used by one direction of
// one connection only.
type Transform interface {
	Apply(dst, src []byte)
}

// Scheme produces paired encoder/decoder transforms.
type Scheme interface {
	// Name identifies the scheme ("bytemap", "xorstream", "identity").
	Name() string
	// NewEncoder returns a fresh encoding transform.
	NewEncoder() Transform
	// NewDecoder returns a fresh decoding transform.
	NewDecoder() Transform
}

// --- Byte-mapping permutation (the paper's example: f: [0,2^8) -> [0,2^8)) ---

// ByteMap is a keyed byte-substitution scheme. It is stateless per byte,
// so it survives TCP re-segmentation — a property the inter-proxy tunnel
// relies on.
type ByteMap struct {
	name    string
	forward [256]byte
	inverse [256]byte
}

// NewByteMap derives a byte permutation from key material.
func NewByteMap(key []byte) *ByteMap {
	m := &ByteMap{name: "bytemap"}
	seed := sha256.Sum256(append([]byte("scholarcloud-bytemap:"), key...))
	state := binary.BigEndian.Uint64(seed[:8])
	next := func() uint64 {
		// splitmix64 step for a deterministic, well-mixed sequence.
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range m.forward {
		m.forward[i] = byte(i)
	}
	// Fisher-Yates with the keyed PRNG.
	for i := 255; i > 0; i-- {
		j := int(next() % uint64(i+1))
		m.forward[i], m.forward[j] = m.forward[j], m.forward[i]
	}
	for i, v := range m.forward {
		m.inverse[v] = byte(i)
	}
	return m
}

// Name implements Scheme.
func (m *ByteMap) Name() string { return m.name }

// NewEncoder implements Scheme.
func (m *ByteMap) NewEncoder() Transform { return tableTransform{&m.forward} }

// NewDecoder implements Scheme.
func (m *ByteMap) NewDecoder() Transform { return tableTransform{&m.inverse} }

type tableTransform struct{ table *[256]byte }

func (t tableTransform) Apply(dst, src []byte) {
	for i, b := range src {
		dst[i] = t.table[b]
	}
}

// --- XOR keystream ---

// XORStream is a position-keyed XOR scheme: keystream blocks are
// SHA-256(key || blockIndex). Unlike ByteMap it is position-dependent, so
// the same plaintext byte maps to different wire bytes at different
// offsets, defeating frequency analysis of the mapping itself.
type XORStream struct {
	key []byte
}

// NewXORStream creates the scheme from key material.
func NewXORStream(key []byte) *XORStream {
	k := append([]byte("scholarcloud-xorstream:"), key...)
	sum := sha256.Sum256(k)
	return &XORStream{key: sum[:]}
}

// Name implements Scheme.
func (x *XORStream) Name() string { return "xorstream" }

// NewEncoder implements Scheme.
func (x *XORStream) NewEncoder() Transform { return &xorState{key: x.key} }

// NewDecoder implements Scheme. XOR is an involution, so the decoder is
// identical to the encoder.
func (x *XORStream) NewDecoder() Transform { return &xorState{key: x.key} }

type xorState struct {
	key    []byte
	offset uint64
	block  [32]byte
	have   int // bytes of block remaining
}

func (s *xorState) Apply(dst, src []byte) {
	for i := range src {
		if s.have == 0 {
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], s.offset/32)
			h := sha256.New()
			h.Write(s.key)
			h.Write(ctr[:])
			copy(s.block[:], h.Sum(nil))
			s.have = 32
		}
		dst[i] = src[i] ^ s.block[32-s.have]
		s.have--
		s.offset++
	}
}

// --- Identity (no blinding; useful as an ablation baseline) ---

// Identity passes bytes through unchanged. Benchmarks use it to show what
// happens to the inter-proxy tunnel when blinding is disabled: the GFW's
// TLS fingerprinting sees the raw records again.
type Identity struct{}

// Name implements Scheme.
func (Identity) Name() string { return "identity" }

// NewEncoder implements Scheme.
func (Identity) NewEncoder() Transform { return copyTransform{} }

// NewDecoder implements Scheme.
func (Identity) NewDecoder() Transform { return copyTransform{} }

type copyTransform struct{}

func (copyTransform) Apply(dst, src []byte) { copy(dst, src) }

// SchemeForEpoch derives the blinding scheme both proxies use during a
// rotation epoch. Even epochs use a byte map, odd epochs an XOR stream;
// every epoch has fresh key material, so a middlebox that learned one
// epoch's mapping learns nothing about the next.
func SchemeForEpoch(secret []byte, epoch uint64) Scheme {
	material := make([]byte, 0, len(secret)+9)
	material = append(material, secret...)
	material = append(material, ':')
	material = binary.BigEndian.AppendUint64(material, epoch)
	if epoch%2 == 0 {
		return NewByteMap(material)
	}
	return NewXORStream(material)
}

// ParseScheme builds a scheme from a name and key, for configuration
// files and command-line flags.
func ParseScheme(name string, key []byte) (Scheme, error) {
	switch name {
	case "bytemap":
		return NewByteMap(key), nil
	case "xorstream":
		return NewXORStream(key), nil
	case "identity", "none":
		return Identity{}, nil
	default:
		return nil, fmt.Errorf("blinding: unknown scheme %q", name)
	}
}
