// Package openvpn implements an OpenVPN-style tunnel as the paper's
// methodology configures it (§4.2): a layer-3 tunnel with a TLS control
// channel, PKI certificates and keys created by an Easy-RSA equivalent
// (internal/pki), a tls-auth pre-shared-key gate on the initial packets,
// and LZO-style compression (stdlib flate) on the data channel — the
// reason OpenVPN shows the lowest traffic overhead in Fig. 6a.
//
// The wire begins with the real OpenVPN opcode P_CONTROL_HARD_RESET_
// CLIENT_V2 (0x38), which is what the GFW's DPI fingerprints to classify
// the flow; like native VPN, the classified flow is treated as a legal
// registered VPN and left alone.
package openvpn

import (
	"bufio"
	"compress/flate"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/pki"
	"scholarcloud/internal/tlssim"
)

// Real OpenVPN opcodes (<<3 as on the wire).
const (
	opClientReset = 0x38 // P_CONTROL_HARD_RESET_CLIENT_V2
	opServerReset = 0x40 // P_CONTROL_HARD_RESET_SERVER_V2
)

const taTagSize = 16

// Errors.
var (
	ErrTLSAuth  = errors.New("openvpn: tls-auth verification failed")
	ErrPeerCert = errors.New("openvpn: peer certificate rejected")
)

// taTag computes the tls-auth HMAC over a nonce with the static key.
func taTag(taKey []byte, nonce []byte) []byte {
	mac := hmac.New(sha256.New, taKey)
	mac.Write(nonce)
	return mac.Sum(nil)[:taTagSize]
}

// flateConn applies streaming DEFLATE (the LZO stand-in) to a connection.
// A buffer between the compressor and the carrier coalesces each write's
// compressed block and sync marker into one carrier write (one TLS
// record, one packet) — like a real VPN's packet-at-a-time framing.
type flateConn struct {
	net.Conn
	mu  sync.Mutex
	buf *bufio.Writer
	w   *flate.Writer
	r   io.ReadCloser
}

func newFlateConn(conn net.Conn) (*flateConn, error) {
	buf := bufio.NewWriterSize(conn, 32*1024)
	w, err := flate.NewWriter(buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	return &flateConn{Conn: conn, buf: buf, w: w, r: flate.NewReader(conn)}, nil
}

func (c *flateConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(b); err != nil {
		return 0, err
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	if err := c.buf.Flush(); err != nil {
		return 0, err
	}
	return len(b), nil
}

func (c *flateConn) Read(b []byte) (int, error) {
	return c.r.Read(b)
}

// Client is the OpenVPN client. It implements tunnel.Method.
type Client struct {
	Env netx.Env
	// Dial opens raw connections from the client device.
	Dial func(network, address string) (net.Conn, error)
	// Server is the OpenVPN server "ip:port".
	Server string
	// ServerName is the expected certificate name of the server.
	ServerName string
	// TAKey is the tls-auth static key shared with the server.
	TAKey []byte
	// Identity is the client certificate + key issued by the CA.
	Identity *pki.Identity
	// VerifyServer validates the server certificate (from pki.CA.Verifier).
	VerifyServer func(der []byte, name string) error
	// PingInterval/PingSize model OpenVPN's --ping keepalives.
	// Zero disables.
	PingInterval time.Duration
	PingSize     int

	mu   sync.Mutex
	sess *mux.Session
}

// Name implements tunnel.Method.
func (c *Client) Name() string { return "openvpn" }

// Connect establishes the control channel (tls-auth gate, TLS handshake,
// client-certificate presentation) and the compressed data session.
func (c *Client) Connect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connectLocked()
}

func (c *Client) connectLocked() error {
	if c.sess != nil && c.sess.Err() == nil {
		return nil
	}
	conn, err := c.Dial("tcp", c.Server)
	if err != nil {
		return fmt.Errorf("openvpn: dial: %w", err)
	}

	// Hard-reset exchange with tls-auth: [opcode][nonce 16][hmac 16].
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		conn.Close()
		return err
	}
	reset := append([]byte{opClientReset}, nonce...)
	reset = append(reset, taTag(c.TAKey, nonce)...)
	if _, err := conn.Write(reset); err != nil {
		conn.Close()
		return err
	}
	reply := make([]byte, 1+16+taTagSize)
	if _, err := io.ReadFull(conn, reply); err != nil {
		conn.Close()
		return fmt.Errorf("openvpn: server reset: %w", err)
	}
	if reply[0] != opServerReset || !hmac.Equal(reply[17:], taTag(c.TAKey, reply[1:17])) {
		conn.Close()
		return ErrTLSAuth
	}

	// TLS control channel.
	tconn := tlssim.Client(conn, tlssim.Config{
		ServerName: c.ServerName,
		VerifyPeer: c.VerifyServer,
	})
	if err := tconn.Handshake(); err != nil {
		conn.Close()
		return fmt.Errorf("openvpn: control channel: %w", err)
	}

	// Present the client certificate (OpenVPN's mutual authentication).
	der := c.Identity.DER
	lenBuf := binary.BigEndian.AppendUint32(nil, uint32(len(der)))
	if _, err := tconn.Write(append(lenBuf, der...)); err != nil {
		conn.Close()
		return err
	}
	var ack [2]byte
	if _, err := io.ReadFull(tconn, ack[:]); err != nil {
		conn.Close()
		return fmt.Errorf("openvpn: certificate ack: %w", err)
	}
	if string(ack[:]) != "OK" {
		conn.Close()
		return ErrPeerCert
	}

	// Compressed data channel.
	fc, err := newFlateConn(tconn)
	if err != nil {
		conn.Close()
		return err
	}
	c.sess = mux.NewSession(fc, c.Env, nil)
	if c.PingInterval > 0 && c.PingSize > 0 {
		sess := c.sess
		c.Env.Spawn.Go(func() {
			for {
				c.Env.Clock.Sleep(c.PingInterval)
				if sess.Err() != nil {
					return
				}
				if err := sess.Ping(c.PingSize); err != nil {
					return
				}
			}
		})
	}
	return nil
}

// DialHost implements tunnel.Method.
func (c *Client) DialHost(host string, port int) (net.Conn, error) {
	c.mu.Lock()
	if err := c.connectLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	sess := c.sess
	c.mu.Unlock()
	return sess.Open([]byte(fmt.Sprintf("%s:%d", host, port)))
}

// Close implements tunnel.Method.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess != nil {
		c.sess.Close()
		c.sess = nil
	}
	return nil
}

// Server is the OpenVPN server.
type Server struct {
	Env netx.Env
	// DialHost reaches origins from the server's vantage point.
	DialHost func(host string, port int) (net.Conn, error)
	// TAKey is the tls-auth static key.
	TAKey []byte
	// Identity is the server certificate + key.
	Identity *pki.Identity
	// VerifyClient validates client certificates.
	VerifyClient func(der []byte, name string) error

	mu  sync.Mutex
	lns []net.Listener
}

// Serve accepts OpenVPN clients from ln.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.Env.Spawn.Go(func() { s.handle(conn) })
	}
}

// Close shuts down the server's listeners.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ln := range s.lns {
		ln.Close()
	}
	s.lns = nil
}

func (s *Server) handle(conn net.Conn) {
	// tls-auth gate: unauthenticated peers (and censors' probes) are
	// dropped before any TLS bytes are exchanged.
	reset := make([]byte, 1+16+taTagSize)
	if _, err := io.ReadFull(conn, reset); err != nil {
		conn.Close()
		return
	}
	if reset[0] != opClientReset || !hmac.Equal(reset[17:], taTag(s.TAKey, reset[1:17])) {
		conn.Close()
		return
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		conn.Close()
		return
	}
	reply := append([]byte{opServerReset}, nonce...)
	reply = append(reply, taTag(s.TAKey, nonce)...)
	if _, err := conn.Write(reply); err != nil {
		conn.Close()
		return
	}

	tconn := tlssim.Server(conn, tlssim.Config{Certificate: s.Identity.DER})
	var lenBuf [4]byte
	if _, err := io.ReadFull(tconn, lenBuf[:]); err != nil {
		conn.Close()
		return
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > 1<<16 {
		conn.Close()
		return
	}
	der := make([]byte, n)
	if _, err := io.ReadFull(tconn, der); err != nil {
		conn.Close()
		return
	}
	if s.VerifyClient != nil {
		if err := s.VerifyClient(der, ""); err != nil {
			tconn.Write([]byte("NO"))
			conn.Close()
			return
		}
	}
	if _, err := tconn.Write([]byte("OK")); err != nil {
		conn.Close()
		return
	}

	fc, err := newFlateConn(tconn)
	if err != nil {
		conn.Close()
		return
	}
	mux.NewSession(fc, s.Env, func(meta []byte) (net.Conn, error) {
		host, port, err := splitMeta(string(meta))
		if err != nil {
			return nil, err
		}
		return s.DialHost(host, port)
	})
}

func splitMeta(meta string) (string, int, error) {
	for i := len(meta) - 1; i >= 0; i-- {
		if meta[i] == ':' {
			port := 0
			for _, ch := range meta[i+1:] {
				if ch < '0' || ch > '9' {
					return "", 0, fmt.Errorf("openvpn: bad target %q", meta)
				}
				port = port*10 + int(ch-'0')
			}
			return meta[:i], port, nil
		}
	}
	return "", 0, fmt.Errorf("openvpn: bad target %q", meta)
}
