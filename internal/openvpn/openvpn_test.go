package openvpn

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/pki"
)

type ovpnWorld struct {
	n      *netsim.Network
	env    netx.Env
	client *netsim.Host
	server *netsim.Host
	origin *netsim.Host
	ca     *pki.CA
	srvID  *pki.Identity
	taKey  []byte
}

func newOVPNWorld(t *testing.T) *ovpnWorld {
	t.Helper()
	n := netsim.New(41)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 70 * time.Millisecond})
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}
	w := &ovpnWorld{
		n:      n,
		env:    n.Env(),
		client: n.AddHost("client", "10.0.0.2", cn, acc),
		server: n.AddHost("ovpn", "198.51.100.11", us, acc),
		origin: n.AddHost("origin", "203.0.113.10", us, acc),
		taKey:  []byte("ta-static-key"),
	}
	ca, err := pki.NewCA("test-ca", n.Clock().Now, n.Env().Rand)
	if err != nil {
		t.Fatal(err)
	}
	w.ca = ca
	w.srvID, err = ca.Issue("openvpn.example", true)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := w.origin.Listen("tcp", ":80")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() {
				defer conn.Close()
				io.Copy(conn, conn)
			})
		}
	})
	srv := &Server{
		Env: w.env,
		DialHost: func(host string, port int) (net.Conn, error) {
			return w.server.DialTCP(fmt.Sprintf("%s:%d", host, port))
		},
		TAKey:        w.taKey,
		Identity:     w.srvID,
		VerifyClient: ca.Verifier(),
	}
	sln, err := w.server.Listen("tcp", ":1194")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { srv.Serve(sln) })
	return w
}

func (w *ovpnWorld) newClient(t *testing.T) *Client {
	t.Helper()
	id, err := w.ca.Issue("client.example", false)
	if err != nil {
		t.Fatal(err)
	}
	return &Client{
		Env:          w.env,
		Dial:         w.client.Dial,
		Server:       "198.51.100.11:1194",
		ServerName:   "openvpn.example",
		TAKey:        w.taKey,
		Identity:     id,
		VerifyServer: w.ca.Verifier(),
	}
}

func (w *ovpnWorld) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	w.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestEchoThroughTunnel(t *testing.T) {
	w := newOVPNWorld(t)
	c := w.newClient(t)
	defer c.Close()
	w.run(t, func() error {
		conn, err := c.DialHost("203.0.113.10", 80)
		if err != nil {
			return err
		}
		defer conn.Close()
		msg := []byte("compressed, encrypted, routed")
		conn.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("echo = %q", got)
		}
		return nil
	})
}

func TestWrongTAKeyDroppedBeforeTLS(t *testing.T) {
	w := newOVPNWorld(t)
	c := w.newClient(t)
	c.TAKey = []byte("not-the-key")
	defer c.Close()
	w.run(t, func() error {
		err := c.Connect()
		if err == nil {
			t.Error("connect with wrong tls-auth key succeeded")
		}
		return nil
	})
}

func TestUntrustedClientCertRejected(t *testing.T) {
	w := newOVPNWorld(t)
	otherCA, err := pki.NewCA("rogue-ca", w.n.Clock().Now, nil)
	if err != nil {
		t.Fatal(err)
	}
	rogueID, err := otherCA.Issue("impostor", false)
	if err != nil {
		t.Fatal(err)
	}
	c := w.newClient(t)
	c.Identity = rogueID
	defer c.Close()
	w.run(t, func() error {
		if err := c.Connect(); !errors.Is(err, ErrPeerCert) {
			t.Errorf("connect err = %v, want ErrPeerCert", err)
		}
		return nil
	})
}

func TestServerCertVerifiedByClient(t *testing.T) {
	w := newOVPNWorld(t)
	otherCA, err := pki.NewCA("other", w.n.Clock().Now, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := w.newClient(t)
	c.VerifyServer = otherCA.Verifier() // trusts the wrong root
	defer c.Close()
	w.run(t, func() error {
		if err := c.Connect(); err == nil {
			t.Error("client accepted a server cert from an untrusted CA")
		}
		return nil
	})
}

func TestCompressionReducesWireBytes(t *testing.T) {
	w := newOVPNWorld(t)
	c := w.newClient(t)
	defer c.Close()
	w.run(t, func() error {
		if err := c.Connect(); err != nil {
			return err
		}
		conn, err := c.DialHost("203.0.113.10", 80)
		if err != nil {
			return err
		}
		defer conn.Close()
		w.client.ResetStats()
		// Highly compressible payload: wire bytes should be well below
		// the plaintext size even with TLS and framing overheads.
		payload := bytes.Repeat([]byte("scholarly "), 3000) // 30 KB
		if _, err := conn.Write(payload); err != nil {
			return err
		}
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		st := w.client.Stats()
		if st.TxBytes > int64(len(payload))/2 {
			t.Errorf("tx bytes = %d for %d plaintext; compression ineffective", st.TxBytes, len(payload))
		}
		return nil
	})
}

func TestOpcodeLeadsFirstPacket(t *testing.T) {
	w := newOVPNWorld(t)
	c := w.newClient(t)
	defer c.Close()
	var first []byte
	w.n.SetTrace(func(pkt *netsim.Packet) {
		if first == nil && len(pkt.Payload) > 0 && pkt.Src.IP == "10.0.0.2" {
			first = append([]byte(nil), pkt.Payload...)
		}
	})
	defer w.n.SetTrace(nil)
	w.run(t, func() error { return c.Connect() })
	if len(first) == 0 || first[0] != opClientReset {
		t.Errorf("first byte = %#x, want P_CONTROL_HARD_RESET_CLIENT_V2", first[:1])
	}
}

func TestGarbageProbeDroppedSilently(t *testing.T) {
	w := newOVPNWorld(t)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("198.51.100.11:1194")
		if err != nil {
			return err
		}
		defer conn.Close()
		garbage := make([]byte, 64)
		for i := range garbage {
			garbage[i] = byte(i * 7)
		}
		conn.Write(garbage)
		conn.SetReadDeadline(w.env.Clock.Now().Add(3 * time.Second))
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err == nil {
			t.Error("server answered a garbage probe")
		}
		return nil
	})
}
