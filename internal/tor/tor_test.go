package tor

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
)

type torWorld struct {
	n      *netsim.Network
	env    netx.Env
	client *netsim.Host
	front  *netsim.Host
	middle *netsim.Host
	exit   *netsim.Host
	origin *netsim.Host
}

func newTorWorld(t *testing.T) *torWorld {
	t.Helper()
	n := netsim.New(51)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	eu := n.AddZone("eu")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 70 * time.Millisecond})
	n.Connect(us, eu, netsim.LinkConfig{Delay: 30 * time.Millisecond})
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}
	w := &torWorld{
		n:      n,
		env:    n.Env(),
		client: n.AddHost("client", "10.0.0.2", cn, acc),
		front:  n.AddHost("front", "13.107.246.10", us, acc),
		middle: n.AddHost("middle", "185.220.101.5", eu, acc),
		exit:   n.AddHost("exit", "204.13.164.118", us, acc),
		origin: n.AddHost("origin", "203.0.113.10", us, acc),
	}

	// Echo origin.
	oln, err := w.origin.Listen("tcp", ":80")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := oln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() {
				defer conn.Close()
				io.Copy(conn, conn)
			})
		}
	})

	// Exit and middle relays.
	exit := &Relay{
		Env:  w.env,
		Name: "exit",
		Dial: w.exit.Dial,
		DialHost: func(host string, port int) (net.Conn, error) {
			return w.exit.DialTCP(fmt.Sprintf("%s:%d", host, port))
		},
		Cert: []byte("exit-cert"),
	}
	eln, err := w.exit.Listen("tcp", ":9001")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { exit.Serve(eln) })

	middle := &Relay{Env: w.env, Name: "middle", Dial: w.middle.Dial, Cert: []byte("mid-cert")}
	mln, err := w.middle.Listen("tcp", ":9001")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { middle.Serve(mln) })

	// Bridge behind the meek front.
	bridge := &Relay{
		Env:  w.env,
		Name: "bridge",
		Dial: w.front.Dial,
		Directory: func() []byte {
			return []byte("185.220.101.5:9001 204.13.164.118:9001")
		},
		Cert: []byte("bridge-cert"),
	}
	ms := &MeekServer{Env: w.env, Relay: bridge, Cert: []byte("front-cert")}
	fln, err := w.front.Listen("tcp", ":443")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { ms.Serve(fln) })
	return w
}

func (w *torWorld) newClient() *Client {
	return &Client{
		Env:          w.env,
		Dial:         w.client.Dial,
		FrontAddr:    "13.107.246.10:443",
		FrontDomain:  "ajax.aspnetcdn.com",
		PollInterval: 50 * time.Millisecond,
	}
}

func (w *torWorld) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	w.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestBootstrapBuildsThreeHops(t *testing.T) {
	w := newTorWorld(t)
	c := w.newClient()
	defer c.Close()
	w.run(t, func() error {
		if err := c.Bootstrap(); err != nil {
			return err
		}
		if len(c.layers) != 3 {
			t.Errorf("layers = %d, want 3", len(c.layers))
		}
		if c.CircuitBuildTime <= 500*time.Millisecond {
			t.Errorf("circuit build time = %v, implausibly fast", c.CircuitBuildTime)
		}
		return nil
	})
}

func TestStreamEchoThroughCircuit(t *testing.T) {
	w := newTorWorld(t)
	c := w.newClient()
	defer c.Close()
	w.run(t, func() error {
		conn, err := c.DialHost("203.0.113.10", 80)
		if err != nil {
			return err
		}
		defer conn.Close()
		msg := []byte("onion-routed payload")
		conn.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("echo = %q", got)
		}
		return nil
	})
}

func TestMultipleStreamsShareCircuit(t *testing.T) {
	w := newTorWorld(t)
	c := w.newClient()
	defer c.Close()
	w.run(t, func() error {
		for i := 0; i < 3; i++ {
			conn, err := c.DialHost("203.0.113.10", 80)
			if err != nil {
				return err
			}
			msg := []byte{byte('a' + i)}
			conn.Write(msg)
			buf := make([]byte, 1)
			if _, err := io.ReadFull(conn, buf); err != nil {
				return err
			}
			if buf[0] != msg[0] {
				t.Errorf("stream %d echoed %q", i, buf)
			}
			conn.Close()
		}
		return nil
	})
}

func TestLargeTransferThroughCells(t *testing.T) {
	w := newTorWorld(t)
	c := w.newClient()
	defer c.Close()
	w.run(t, func() error {
		conn, err := c.DialHost("203.0.113.10", 80)
		if err != nil {
			return err
		}
		defer conn.Close()
		payload := make([]byte, 20*1024) // ~40 cells each way
		for i := range payload {
			payload[i] = byte(i * 13)
		}
		conn.Write(payload)
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("cell-chunked transfer corrupted")
		}
		return nil
	})
}

func TestBeginToClosedPortFails(t *testing.T) {
	w := newTorWorld(t)
	c := w.newClient()
	defer c.Close()
	w.run(t, func() error {
		_, err := c.DialHost("203.0.113.10", 9999)
		if err == nil {
			t.Error("stream to closed origin port succeeded")
		}
		return nil
	})
}

func TestOnionLayeringHidesPayloadEverywhere(t *testing.T) {
	// The marker must never cross any link in cleartext: client→front is
	// TLS'd meek, inter-relay hops are onion-encrypted within TLS, and
	// only the exit→origin leg may carry plaintext.
	w := newTorWorld(t)
	c := w.newClient()
	defer c.Close()
	marker := []byte("SECRET-ONION-MARKER")
	var leaked string
	w.n.SetTrace(func(pkt *netsim.Packet) {
		if pkt.Src.IP == "204.13.164.118" || pkt.Dst.IP == "204.13.164.118" {
			if pkt.Src.IP == "203.0.113.10" || pkt.Dst.IP == "203.0.113.10" {
				return // exit→origin leg: plaintext by design
			}
		}
		if pkt.Src.IP == "203.0.113.10" || pkt.Dst.IP == "203.0.113.10" {
			return
		}
		if bytes.Contains(pkt.Payload, marker) {
			leaked = pkt.Src.IP + "->" + pkt.Dst.IP
		}
	})
	defer w.n.SetTrace(nil)
	w.run(t, func() error {
		conn, err := c.DialHost("203.0.113.10", 80)
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.Write(marker)
		buf := make([]byte, len(marker))
		_, err = io.ReadFull(conn, buf)
		return err
	})
	if leaked != "" {
		t.Errorf("marker crossed %s in cleartext", leaked)
	}
}

func TestCellRoundTripProperty(t *testing.T) {
	var buf bytes.Buffer
	c := &Cell{CircID: 42, Cmd: cmdRelay}
	copy(c.Payload[:], []byte("payload"))
	if err := writeCell(&buf, c); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != CellSize {
		t.Errorf("wire size = %d, want %d (fixed cells)", buf.Len(), CellSize)
	}
	got, err := readCell(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CircID != 42 || got.Cmd != cmdRelay || !bytes.Equal(got.Payload[:7], []byte("payload")) {
		t.Errorf("cell = %+v", got)
	}
}

func TestRelayPayloadPackParse(t *testing.T) {
	p, err := packRelay(7, relayData, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	sid, cmd, data, ok := parseRelay(&p)
	if !ok || sid != 7 || cmd != relayData || string(data) != "hello" {
		t.Errorf("parse = %d %d %q %v", sid, cmd, data, ok)
	}
	// Encrypted (non-zero recognized field) payloads are not recognized.
	p[0] = 0xAA
	if _, _, _, ok := parseRelay(&p); ok {
		t.Error("garbled payload recognized")
	}
}

func TestPackRelayRejectsOversize(t *testing.T) {
	if _, err := packRelay(1, relayData, make([]byte, MaxRelayData+1)); err == nil {
		t.Error("oversized relay data accepted")
	}
}

func TestLayerCipherSymmetry(t *testing.T) {
	a, err := newLayerCipher([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := newLayerCipher([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	var p [cellPayloadSize]byte
	copy(p[:], []byte("cleartext cell"))
	orig := p
	a.applyFwd(&p)
	if p == orig {
		t.Error("forward layer is identity")
	}
	b.applyFwd(&p) // same key stream: XOR cancels
	if p != orig {
		t.Error("matching layer ciphers did not cancel")
	}
}
