// Package tor implements a compact Tor-like onion-routing network: a
// directory service, onion relays (guard/bridge, middle, exit) speaking
// fixed-size 512-byte cells over TLS links, telescoping circuit
// construction (CREATE/EXTEND), layered AES-CTR onion encryption, stream
// multiplexing over circuits (RELAY_BEGIN/DATA/END), and the meek
// domain-fronting pluggable transport the paper's methodology uses to
// reach the bridge (§4.2).
//
// The structure mirrors real Tor closely enough that the paper's
// measurements emerge mechanically: first-time page loads pay for a
// directory fetch plus three telescoping handshakes through progressively
// longer paths (the 13–20 s first-time PLT of Fig. 5a), RTTs accumulate
// across three hops plus meek's polling cadence (Fig. 5b), and the GFW's
// meek classifier degrades the client↔bridge link (the 4.4% PLR of
// Fig. 5c).
package tor

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// CellSize is the fixed Tor cell size.
const CellSize = 512

// cell header: circID(4) cmd(1), payload fills the rest.
const cellPayloadSize = CellSize - 5

// Cell commands.
const (
	cmdCreate byte = iota + 1
	cmdCreated
	cmdExtend
	cmdExtended
	cmdRelay
	cmdDestroy
	cmdDir     // directory request (to the guard/bridge)
	cmdDirInfo // directory response
)

// Relay sub-commands, carried inside onion-encrypted relay payloads.
const (
	relayBegin byte = iota + 1
	relayConnected
	relayData
	relayEnd
	relayBeginFailed
	// relayExtend / relayExtended are defined with the relay engine; they
	// share this numbering space (6 and 7).
)

// maxRelayCmd is the highest valid relay sub-command (relayExtended).
const maxRelayCmd = 7

// relay payload layout: recognized(2)=0, streamID(2), cmd(1), len(2),
// data... The recognized field plays the role of real Tor's
// recognized+digest check: after a relay strips its onion layer, zeros
// mean the cell is for this hop.
const relayHeaderSize = 7

// MaxRelayData is the usable data bytes per relay cell.
const MaxRelayData = cellPayloadSize - relayHeaderSize

// Cell is one fixed-size cell.
type Cell struct {
	CircID  uint32
	Cmd     byte
	Payload [cellPayloadSize]byte
	// Len is the meaningful payload length for variable commands.
	Len int
}

// Directory document selectors, carried in the first payload byte of a
// cmdDir request.
const (
	dirDocConsensus   byte = 1
	dirDocDescriptors byte = 2
)

// ErrCellFormat reports a malformed cell.
var ErrCellFormat = errors.New("tor: malformed cell")

// writeCell writes one cell (always CellSize bytes on the wire).
func writeCell(w io.Writer, c *Cell) error {
	var buf [CellSize]byte
	binary.BigEndian.PutUint32(buf[0:], c.CircID)
	buf[4] = c.Cmd
	copy(buf[5:], c.Payload[:])
	_, err := w.Write(buf[:])
	return err
}

// readCell reads one cell.
func readCell(r io.Reader) (*Cell, error) {
	var buf [CellSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, err
	}
	c := &Cell{
		CircID: binary.BigEndian.Uint32(buf[0:]),
		Cmd:    buf[4],
	}
	copy(c.Payload[:], buf[5:])
	return c, nil
}

// packRelay builds a plaintext relay payload.
func packRelay(streamID uint16, cmd byte, data []byte) ([cellPayloadSize]byte, error) {
	var p [cellPayloadSize]byte
	if len(data) > MaxRelayData {
		return p, fmt.Errorf("%w: relay data %d > %d", ErrCellFormat, len(data), MaxRelayData)
	}
	// recognized = 0x0000 (already zero)
	binary.BigEndian.PutUint16(p[2:], streamID)
	p[4] = cmd
	binary.BigEndian.PutUint16(p[5:], uint16(len(data)))
	copy(p[relayHeaderSize:], data)
	return p, nil
}

// parseRelay decodes a decrypted relay payload; ok reports whether the
// cell is recognized at this hop.
func parseRelay(p *[cellPayloadSize]byte) (streamID uint16, cmd byte, data []byte, ok bool) {
	if p[0] != 0 || p[1] != 0 {
		return 0, 0, nil, false
	}
	streamID = binary.BigEndian.Uint16(p[2:])
	cmd = p[4]
	n := int(binary.BigEndian.Uint16(p[5:]))
	if cmd == 0 || cmd > maxRelayCmd || n > MaxRelayData {
		return 0, 0, nil, false
	}
	return streamID, cmd, p[relayHeaderSize : relayHeaderSize+n], true
}

// layerCipher is one hop's onion layer: independent AES-CTR streams for
// the forward (client→exit) and backward directions.
type layerCipher struct {
	fwd cipher.Stream
	bwd cipher.Stream
}

// newLayerCipher derives a hop's layer from the circuit handshake secret.
func newLayerCipher(secret []byte) (*layerCipher, error) {
	derive := func(label string) (cipher.Stream, error) {
		h := sha256.New()
		h.Write(secret)
		h.Write([]byte(label))
		sum := h.Sum(nil)
		block, err := aes.NewCipher(sum)
		if err != nil {
			return nil, err
		}
		iv := sha256.Sum256(append(sum, label...))
		return cipher.NewCTR(block, iv[:aes.BlockSize]), nil
	}
	fwd, err := derive("forward")
	if err != nil {
		return nil, err
	}
	bwd, err := derive("backward")
	if err != nil {
		return nil, err
	}
	return &layerCipher{fwd: fwd, bwd: bwd}, nil
}

func (l *layerCipher) applyFwd(p *[cellPayloadSize]byte) { l.fwd.XORKeyStream(p[:], p[:]) }
func (l *layerCipher) applyBwd(p *[cellPayloadSize]byte) { l.bwd.XORKeyStream(p[:], p[:]) }
