package tor

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"slices"
	"strings"
	"sync"
	"time"

	"scholarcloud/internal/netx"
)

// Errors returned by the client.
var (
	ErrCircuitFailed = errors.New("tor: circuit construction failed")
	ErrStreamFailed  = errors.New("tor: stream failed")
	ErrClientClosed  = errors.New("tor: client closed")
)

// inboundExpecter is implemented by transports (meek) whose polling
// should only run while data is expected.
type inboundExpecter interface {
	ExpectInbound(delta int)
}

// Client is the Tor client: it bootstraps through a meek bridge, builds a
// three-hop circuit (bridge → middle → exit), and multiplexes streams
// over it. It implements tunnel.Method.
type Client struct {
	Env netx.Env
	// Dial opens raw connections from the client device.
	Dial func(network, address string) (net.Conn, error)
	// FrontAddr/FrontDomain configure the meek transport.
	FrontAddr   string
	FrontDomain string
	// PollInterval overrides the meek default when positive.
	PollInterval time.Duration

	mu   sync.Mutex
	cond netx.Cond

	conn       net.Conn
	expect     inboundExpecter
	layers     []*layerCipher
	circID     uint32
	nextStream uint16
	streams    map[uint16]*torStream

	createdQ [][]byte
	ctrlQ    []ctrlMsg

	dirBuf  []byte // accumulating directory stream
	dirWant int    // total announced length (-1 until the first cell)
	dirDoc  []byte // completed document

	bootstrapped bool
	err          error

	// CircuitBuildTime records how long bootstrap took (exposed for the
	// measurement study: it dominates Tor's first-time PLT).
	CircuitBuildTime time.Duration
}

type ctrlMsg struct {
	cmd  byte
	data []byte
}

// Name implements tunnel.Method.
func (c *Client) Name() string { return "tor-meek" }

func (c *Client) init() {
	if c.cond == nil {
		c.cond = c.Env.Sync.NewCond(&c.mu)
		c.streams = make(map[uint16]*torStream)
		c.circID = 1
	}
}

// Bootstrap connects through meek, fetches the directory from the
// bridge, and telescopes the three-hop circuit. Called lazily by
// DialHost.
func (c *Client) Bootstrap() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bootstrapLocked()
}

func (c *Client) bootstrapLocked() error {
	c.init()
	if c.bootstrapped && c.err == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	start := c.Env.Clock.Now()

	c.mu.Unlock()
	conn, err := DialMeek(MeekClientConfig{
		Env:          c.Env,
		Dial:         c.Dial,
		FrontAddr:    c.FrontAddr,
		FrontDomain:  c.FrontDomain,
		PollInterval: c.PollInterval,
	})
	c.mu.Lock()
	if err != nil {
		c.err = err
		return err
	}
	c.conn = conn
	c.expect, _ = conn.(inboundExpecter)
	c.Env.Spawn.Go(c.readLoop)

	// Directory fetches through the bridge: the consensus names the
	// relays; the descriptor download follows, as in real Tor's
	// bootstrap (both are multi-cell streams).
	doc, err := c.fetchDirectoryLocked(dirDocConsensus)
	if err != nil {
		return c.failLocked(err)
	}
	consensus := strings.Fields(strings.TrimRight(string(doc), "\x00"))
	if len(consensus) < 2 {
		return c.failLocked(fmt.Errorf("%w: consensus %q", ErrCircuitFailed, doc))
	}
	middle, exit := consensus[0], consensus[1]
	if _, err := c.fetchDirectoryLocked(dirDocDescriptors); err != nil {
		return c.failLocked(err)
	}

	// Hop 1: CREATE with the bridge.
	if err := c.createFirstHopLocked(); err != nil {
		return c.failLocked(err)
	}
	// Hops 2 and 3: telescoping EXTENDs.
	if err := c.extendLocked(middle); err != nil {
		return c.failLocked(err)
	}
	if err := c.extendLocked(exit); err != nil {
		return c.failLocked(err)
	}

	c.bootstrapped = true
	c.CircuitBuildTime = c.Env.Clock.Now().Sub(start)
	return nil
}

// fetchDirectoryLocked requests one directory document and collects its
// cell stream.
func (c *Client) fetchDirectoryLocked(doc byte) ([]byte, error) {
	c.dirBuf = nil
	c.dirWant = -1
	c.dirDoc = nil
	var p [cellPayloadSize]byte
	p[0] = doc
	c.expectInbound(1)
	defer c.expectInbound(-1)
	if err := writeCell(c.conn, &Cell{CircID: c.circID, Cmd: cmdDir, Payload: p}); err != nil {
		return nil, err
	}
	for c.dirDoc == nil && c.err == nil {
		c.cond.Wait()
	}
	if c.err != nil {
		return nil, c.err
	}
	return c.dirDoc, nil
}

func (c *Client) expectInbound(delta int) {
	if c.expect != nil {
		c.expect.ExpectInbound(delta)
	}
}

func (c *Client) failLocked(err error) error {
	if c.err == nil {
		c.err = err
	}
	// Deterministic teardown order (see mux.Session.fail).
	ids := make([]uint16, 0, len(c.streams))
	for id := range c.streams {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		c.streams[id].fail(err)
	}
	c.cond.Broadcast()
	return c.err
}

func (c *Client) createFirstHopLocked() error {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	var p [cellPayloadSize]byte
	copy(p[:], priv.PublicKey().Bytes())
	c.expectInbound(1)
	if err := writeCell(c.conn, &Cell{CircID: c.circID, Cmd: cmdCreate, Payload: p}); err != nil {
		c.expectInbound(-1)
		return err
	}
	for len(c.createdQ) == 0 && c.err == nil {
		c.cond.Wait()
	}
	c.expectInbound(-1)
	if c.err != nil {
		return c.err
	}
	relayPub := c.createdQ[0]
	c.createdQ = c.createdQ[1:]
	return c.addLayerLocked(priv, relayPub)
}

func (c *Client) extendLocked(target string) error {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	data := append(priv.PublicKey().Bytes(), []byte(target)...)
	c.expectInbound(1)
	if err := c.sendRelayLocked(0, relayExtend, data); err != nil {
		c.expectInbound(-1)
		return err
	}
	var extended []byte
	for extended == nil && c.err == nil {
		for i, m := range c.ctrlQ {
			if m.cmd == relayExtended {
				extended = m.data
				c.ctrlQ = append(c.ctrlQ[:i], c.ctrlQ[i+1:]...)
				break
			}
		}
		if extended == nil {
			c.cond.Wait()
		}
	}
	c.expectInbound(-1)
	if c.err != nil {
		return c.err
	}
	return c.addLayerLocked(priv, extended)
}

func (c *Client) addLayerLocked(priv *ecdh.PrivateKey, relayPub []byte) error {
	pub, err := ecdh.X25519().NewPublicKey(relayPub[:32])
	if err != nil {
		return err
	}
	secret, err := priv.ECDH(pub)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(secret)
	layer, err := newLayerCipher(sum[:])
	if err != nil {
		return err
	}
	c.layers = append(c.layers, layer)
	return nil
}

// sendRelayLocked onion-wraps a relay payload (innermost layer last hop)
// and ships it.
func (c *Client) sendRelayLocked(streamID uint16, cmd byte, data []byte) error {
	p, err := packRelay(streamID, cmd, data)
	if err != nil {
		return err
	}
	for i := len(c.layers) - 1; i >= 0; i-- {
		c.layers[i].applyFwd(&p)
	}
	return writeCell(c.conn, &Cell{CircID: c.circID, Cmd: cmdRelay, Payload: p})
}

// readLoop dispatches inbound cells: control replies and stream data.
func (c *Client) readLoop() {
	for {
		cell, err := readCell(c.conn)
		if err != nil {
			c.mu.Lock()
			c.failLocked(fmt.Errorf("tor: bridge link: %w", err))
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		switch cell.Cmd {
		case cmdCreated:
			c.createdQ = append(c.createdQ, append([]byte(nil), cell.Payload[:32]...))
			c.cond.Broadcast()
		case cmdDirInfo:
			if c.dirWant < 0 {
				c.dirWant = int(binary.BigEndian.Uint32(cell.Payload[:4]))
				c.dirBuf = append(c.dirBuf, cell.Payload[4:]...)
			} else {
				c.dirBuf = append(c.dirBuf, cell.Payload[:]...)
			}
			if len(c.dirBuf) >= c.dirWant {
				c.dirDoc = c.dirBuf[:c.dirWant]
				c.cond.Broadcast()
			}
		case cmdRelay:
			for i := 0; i < len(c.layers); i++ {
				c.layers[i].applyBwd(&cell.Payload)
			}
			streamID, cmd, data, ok := parseRelay(&cell.Payload)
			if !ok {
				break
			}
			if streamID == 0 {
				c.ctrlQ = append(c.ctrlQ, ctrlMsg{cmd: cmd, data: append([]byte(nil), data...)})
				c.cond.Broadcast()
				break
			}
			if st := c.streams[streamID]; st != nil {
				st.deliver(cmd, data)
			}
		case cmdDestroy:
			c.failLocked(ErrCircuitFailed)
		}
		c.mu.Unlock()
	}
}

// DialHost implements tunnel.Method: open a stream through the circuit.
// The exit resolves names, far from the censored resolver.
func (c *Client) DialHost(host string, port int) (net.Conn, error) {
	c.mu.Lock()
	if err := c.bootstrapLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nextStream++
	sid := c.nextStream
	st := &torStream{client: c, id: sid}
	st.cond = c.Env.Sync.NewCond(&c.mu)
	c.streams[sid] = st
	c.expectInbound(1) // stream holds a poll slot until closed

	if err := c.sendRelayLocked(sid, relayBegin, []byte(fmt.Sprintf("%s:%d", host, port))); err != nil {
		delete(c.streams, sid)
		c.expectInbound(-1)
		c.mu.Unlock()
		return nil, err
	}
	for !st.connected && st.err == nil && c.err == nil {
		st.cond.Wait()
	}
	if c.err != nil || st.err != nil {
		err := c.err
		if st.err != nil {
			err = st.err
		}
		delete(c.streams, sid)
		c.expectInbound(-1)
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()
	return st, nil
}

// Close implements tunnel.Method.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.init()
	if c.conn != nil {
		writeCell(c.conn, &Cell{CircID: c.circID, Cmd: cmdDestroy})
		c.conn.Close()
	}
	return c.failLocked(ErrClientClosed)
}

// torStream is one stream over the circuit. Implements net.Conn.
type torStream struct {
	client *Client
	id     uint16
	cond   netx.Cond // bound to client.mu

	connected bool
	buf       []byte
	eof       bool
	err       error
	closed    bool
}

// deliver is called by the client's read loop with client.mu held.
func (st *torStream) deliver(cmd byte, data []byte) {
	switch cmd {
	case relayConnected:
		st.connected = true
	case relayData:
		st.buf = append(st.buf, data...)
	case relayEnd:
		st.eof = true
	case relayBeginFailed:
		st.err = fmt.Errorf("%w: %s", ErrStreamFailed, data)
	}
	st.cond.Broadcast()
}

// fail is called with client.mu held.
func (st *torStream) fail(err error) {
	if st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
}

// Read implements net.Conn.
func (st *torStream) Read(b []byte) (int, error) {
	c := st.client
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(st.buf) > 0 {
			n := copy(b, st.buf)
			st.buf = st.buf[n:]
			return n, nil
		}
		if st.err != nil {
			return 0, st.err
		}
		if st.eof {
			return 0, io.EOF
		}
		if st.closed {
			return 0, ErrStreamFailed
		}
		st.cond.Wait()
	}
}

// Write implements net.Conn.
func (st *torStream) Write(b []byte) (int, error) {
	c := st.client
	c.mu.Lock()
	defer c.mu.Unlock()
	if st.err != nil {
		return 0, st.err
	}
	if st.closed {
		return 0, ErrStreamFailed
	}
	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > MaxRelayData {
			n = MaxRelayData
		}
		if err := c.sendRelayLocked(st.id, relayData, b[:n]); err != nil {
			return total, err
		}
		b = b[n:]
		total += n
	}
	return total, nil
}

// Close implements net.Conn.
func (st *torStream) Close() error {
	c := st.client
	c.mu.Lock()
	defer c.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	delete(c.streams, st.id)
	c.expectInbound(-1)
	if c.err == nil {
		c.sendRelayLocked(st.id, relayEnd, nil)
	}
	st.cond.Broadcast()
	return nil
}

// LocalAddr implements net.Conn.
func (st *torStream) LocalAddr() net.Addr { return meekAddr{} }

// RemoteAddr implements net.Conn.
func (st *torStream) RemoteAddr() net.Addr { return meekAddr{} }

// SetDeadline implements net.Conn (not supported on circuit streams).
func (st *torStream) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn.
func (st *torStream) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn.
func (st *torStream) SetWriteDeadline(time.Time) error { return nil }
