package tor

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net"
	"slices"
	"sync"

	"scholarcloud/internal/netx"
	"scholarcloud/internal/tlssim"
)

// Extra relay sub-commands for circuit extension (real Tor's
// RELAY_EXTEND / RELAY_EXTENDED).
const (
	relayExtend   byte = 6
	relayExtended byte = 7
)

// Relay is an onion router. The same type serves as bridge (entered via
// meek), middle, and exit; roles differ only in which handlers fire.
type Relay struct {
	Env  netx.Env
	Name string
	// Dial opens raw connections from the relay's host (to other relays
	// and, for exits, to origins via DialHost).
	Dial func(network, address string) (net.Conn, error)
	// DialHost resolves and dials origin servers (exit role).
	DialHost func(host string, port int) (net.Conn, error)
	// Directory, if set, answers cmdDir requests (bridge role): it
	// returns the consensus the client uses to pick its path.
	Directory func() []byte
	// Cert is the relay's TLS certificate blob for inter-relay links.
	Cert []byte

	mu sync.Mutex
	// circuits on inbound connections, keyed per (conn, circID).
	circuits map[connCirc]*orCircuit
}

type connCirc struct {
	conn net.Conn
	id   uint32
}

// orCircuit is this relay's state for one circuit.
type orCircuit struct {
	layer *layerCipher
	// bwdMu serializes backward-layer encryption with its write: the CTR
	// keystream position must match the on-wire cell order exactly, and
	// multiple exit streams pump cells toward the client concurrently.
	bwdMu sync.Mutex

	prev       net.Conn // toward the client
	prevCircID uint32

	nextMu     sync.Mutex
	next       net.Conn // toward the next relay, nil at the path's end
	nextCircID uint32

	streamMu sync.Mutex
	streams  map[uint16]net.Conn
}

// Serve accepts inter-relay TLS connections from ln (middle/exit role).
func (r *Relay) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		tconn := tlssim.Server(conn, tlssim.Config{Certificate: r.Cert})
		r.Env.Spawn.Go(func() { r.ServeConn(tconn) })
	}
}

// ServeConn runs the cell loop on one inbound link (an inter-relay TLS
// connection, or the bridge side of a meek session).
func (r *Relay) ServeConn(conn net.Conn) {
	defer conn.Close()
	r.mu.Lock()
	if r.circuits == nil {
		r.circuits = make(map[connCirc]*orCircuit)
	}
	r.mu.Unlock()

	for {
		cell, err := readCell(conn)
		if err != nil {
			return
		}
		r.handleCell(conn, cell)
	}
}

// serveDirectory streams a directory document as a sequence of DirInfo
// cells. The first cell carries a 4-byte big-endian total length; real
// Tor clients likewise download a multi-hundred-kilobyte consensus and
// then relay descriptors before building a circuit, which is a large part
// of its first-start latency.
func (r *Relay) serveDirectory(conn net.Conn, circID uint32, doc byte) {
	payload := r.Directory()
	if doc == dirDocDescriptors {
		// Descriptor volume scales with the consensus in real Tor; a
		// fixed fraction stands in for it here.
		payload = append([]byte("descriptors\n"), make([]byte, len(payload)/4)...)
	}
	var first [cellPayloadSize]byte
	binary.BigEndian.PutUint32(first[:4], uint32(len(payload)))
	n := copy(first[4:], payload)
	if err := writeCell(conn, &Cell{CircID: circID, Cmd: cmdDirInfo, Payload: first}); err != nil {
		return
	}
	payload = payload[n:]
	for len(payload) > 0 {
		var p [cellPayloadSize]byte
		n := copy(p[:], payload)
		payload = payload[n:]
		if err := writeCell(conn, &Cell{CircID: circID, Cmd: cmdDirInfo, Payload: p}); err != nil {
			return
		}
	}
}

func (r *Relay) circuitFor(conn net.Conn, id uint32) *orCircuit {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.circuits[connCirc{conn, id}]
}

func (r *Relay) handleCell(conn net.Conn, cell *Cell) {
	switch cell.Cmd {
	case cmdCreate:
		r.handleCreate(conn, cell)
	case cmdDir:
		if r.Directory != nil {
			r.serveDirectory(conn, cell.CircID, cell.Payload[0])
		}
	case cmdRelay:
		r.handleRelay(conn, cell)
	case cmdDestroy:
		r.destroyCircuit(conn, cell.CircID)
	}
}

// handleCreate answers a circuit-creation handshake: X25519 with the
// client pub in the payload.
func (r *Relay) handleCreate(conn net.Conn, cell *Cell) {
	clientPub, err := ecdh.X25519().NewPublicKey(cell.Payload[:32])
	if err != nil {
		return
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return
	}
	secret, err := priv.ECDH(clientPub)
	if err != nil {
		return
	}
	sum := sha256.Sum256(secret)
	layer, err := newLayerCipher(sum[:])
	if err != nil {
		return
	}
	circ := &orCircuit{
		layer:      layer,
		prev:       conn,
		prevCircID: cell.CircID,
		streams:    make(map[uint16]net.Conn),
	}
	r.mu.Lock()
	r.circuits[connCirc{conn, cell.CircID}] = circ
	r.mu.Unlock()

	var p [cellPayloadSize]byte
	copy(p[:], priv.PublicKey().Bytes())
	writeCell(conn, &Cell{CircID: cell.CircID, Cmd: cmdCreated, Payload: p})
}

// handleRelay strips this hop's onion layer; a recognized cell is handled
// locally, anything else is forwarded to the next hop.
func (r *Relay) handleRelay(conn net.Conn, cell *Cell) {
	circ := r.circuitFor(conn, cell.CircID)
	if circ == nil {
		return
	}
	circ.layer.applyFwd(&cell.Payload)
	streamID, cmd, data, ok := parseRelay(&cell.Payload)
	if !ok {
		circ.nextMu.Lock()
		next, nextID := circ.next, circ.nextCircID
		circ.nextMu.Unlock()
		if next != nil {
			writeCell(next, &Cell{CircID: nextID, Cmd: cmdRelay, Payload: cell.Payload})
			return
		}
		// Garbage at the end of the path: tear down.
		r.destroyCircuit(conn, cell.CircID)
		return
	}
	switch cmd {
	case relayExtend:
		r.handleExtend(circ, data)
	case relayBegin:
		r.handleBegin(circ, streamID, string(data))
	case relayData:
		circ.streamMu.Lock()
		stream := circ.streams[streamID]
		circ.streamMu.Unlock()
		if stream != nil {
			stream.Write(data)
		}
	case relayEnd:
		circ.streamMu.Lock()
		stream := circ.streams[streamID]
		delete(circ.streams, streamID)
		circ.streamMu.Unlock()
		if stream != nil {
			stream.Close()
		}
	}
}

// sendBackward layers a cell with this hop's backward cipher and sends it
// toward the client.
func (r *Relay) sendBackward(circ *orCircuit, cmd byte, payload [cellPayloadSize]byte) {
	circ.bwdMu.Lock()
	defer circ.bwdMu.Unlock()
	circ.layer.applyBwd(&payload)
	writeCell(circ.prev, &Cell{CircID: circ.prevCircID, Cmd: cmd, Payload: payload})
}

// handleExtend telescopes the circuit one hop further: dial the named
// relay, run CREATE with the client's key share, and pump its backward
// cells through this hop's layer.
func (r *Relay) handleExtend(circ *orCircuit, data []byte) {
	if len(data) < 33 {
		return
	}
	clientPub := data[:32]
	target := string(data[32:])
	r.Env.Spawn.Go(func() {
		raw, err := r.Dial("tcp", target)
		if err != nil {
			return
		}
		next := tlssim.Client(raw, tlssim.Config{ServerName: target})
		var p [cellPayloadSize]byte
		copy(p[:], clientPub)
		nextCircID := circ.prevCircID // fresh namespace per link
		if err := writeCell(next, &Cell{CircID: nextCircID, Cmd: cmdCreate, Payload: p}); err != nil {
			next.Close()
			return
		}
		circ.nextMu.Lock()
		circ.next = next
		circ.nextCircID = nextCircID
		circ.nextMu.Unlock()
		// Backward pump: everything the next hop sends flows through our
		// layer toward the client.
		for {
			cell, err := readCell(next)
			if err != nil {
				return
			}
			switch cell.Cmd {
			case cmdCreated:
				ext, err := packRelay(0, relayExtended, cell.Payload[:32])
				if err != nil {
					return
				}
				r.sendBackward(circ, cmdRelay, ext)
			case cmdRelay:
				r.sendBackward(circ, cmdRelay, cell.Payload)
			}
		}
	})
}

// handleBegin opens an exit stream to the origin named in data
// ("host:port").
func (r *Relay) handleBegin(circ *orCircuit, streamID uint16, target string) {
	r.Env.Spawn.Go(func() {
		host, port, err := splitTarget(target)
		var upstream net.Conn
		if err == nil {
			if r.DialHost == nil {
				err = fmt.Errorf("tor: relay %s is not an exit", r.Name)
			} else {
				upstream, err = r.DialHost(host, port)
			}
		}
		if err != nil {
			p, perr := packRelay(streamID, relayBeginFailed, []byte(err.Error()))
			if perr == nil {
				r.sendBackward(circ, cmdRelay, p)
			}
			return
		}
		circ.streamMu.Lock()
		circ.streams[streamID] = upstream
		circ.streamMu.Unlock()

		p, _ := packRelay(streamID, relayConnected, nil)
		r.sendBackward(circ, cmdRelay, p)

		// Pump origin bytes back as relay data cells.
		buf := make([]byte, MaxRelayData)
		for {
			n, err := upstream.Read(buf)
			if n > 0 {
				p, perr := packRelay(streamID, relayData, buf[:n])
				if perr != nil {
					break
				}
				r.sendBackward(circ, cmdRelay, p)
			}
			if err != nil {
				break
			}
		}
		p2, _ := packRelay(streamID, relayEnd, nil)
		r.sendBackward(circ, cmdRelay, p2)
		circ.streamMu.Lock()
		delete(circ.streams, streamID)
		circ.streamMu.Unlock()
		upstream.Close()
	})
}

func (r *Relay) destroyCircuit(conn net.Conn, id uint32) {
	r.mu.Lock()
	circ := r.circuits[connCirc{conn, id}]
	delete(r.circuits, connCirc{conn, id})
	r.mu.Unlock()
	if circ == nil {
		return
	}
	circ.nextMu.Lock()
	if circ.next != nil {
		writeCell(circ.next, &Cell{CircID: circ.nextCircID, Cmd: cmdDestroy})
		circ.next.Close()
	}
	circ.nextMu.Unlock()
	circ.streamMu.Lock()
	// Deterministic teardown order (see mux.Session.fail).
	ids := make([]uint16, 0, len(circ.streams))
	for id := range circ.streams {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		circ.streams[id].Close()
	}
	circ.streams = map[uint16]net.Conn{}
	circ.streamMu.Unlock()
}

func splitTarget(target string) (string, int, error) {
	for i := len(target) - 1; i >= 0; i-- {
		if target[i] == ':' {
			port := 0
			for _, ch := range target[i+1:] {
				if ch < '0' || ch > '9' {
					return "", 0, fmt.Errorf("tor: bad target %q", target)
				}
				port = port*10 + int(ch-'0')
			}
			return target[:i], port, nil
		}
	}
	return "", 0, fmt.Errorf("tor: bad target %q", target)
}
