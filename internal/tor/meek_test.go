package tor

import (
	"bytes"
	"testing"
	"time"

	"scholarcloud/internal/netsim"
)

// meekOnlyWorld wires just a client and a meek front whose "relay" echoes
// cells (no onion machinery), to pin the transport's own behaviour.
func newMeekEchoWorld(t *testing.T) (*netsim.Network, *netsim.Host, *netsim.Host) {
	t.Helper()
	n := netsim.New(91)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 70 * time.Millisecond})
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}
	client := n.AddHost("client", "10.0.0.2", cn, acc)
	front := n.AddHost("front", "13.107.246.10", us, acc)
	return n, client, front
}

// echoRelay implements just enough of a Relay substitute: ServeConn is the
// only entry point MeekServer uses, so embed a Relay whose cell handling
// echoes DIR requests.
func startMeekEcho(t *testing.T, n *netsim.Network, front *netsim.Host) {
	t.Helper()
	relay := &Relay{
		Env:  n.Env(),
		Name: "echo-bridge",
		Dial: front.Dial,
		Directory: func() []byte {
			return []byte("consensus-bytes")
		},
		Cert: []byte("front-cert"),
	}
	ms := &MeekServer{Env: n.Env(), Relay: relay, Cert: []byte("front-cert")}
	ln, err := front.Listen("tcp", ":443")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { ms.Serve(ln) })
}

func runSim(t *testing.T, n *netsim.Network, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestMeekCarriesCells(t *testing.T) {
	n, client, front := newMeekEchoWorld(t)
	startMeekEcho(t, n, front)
	runSim(t, n, func() error {
		conn, err := DialMeek(MeekClientConfig{
			Env:          n.Env(),
			Dial:         client.Dial,
			FrontAddr:    "13.107.246.10:443",
			FrontDomain:  "ajax.aspnetcdn.com",
			PollInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.(*meekConn).ExpectInbound(1)
		defer conn.(*meekConn).ExpectInbound(-1)

		var p [cellPayloadSize]byte
		p[0] = dirDocConsensus
		if err := writeCell(conn, &Cell{CircID: 1, Cmd: cmdDir, Payload: p}); err != nil {
			return err
		}
		cell, err := readCell(conn)
		if err != nil {
			return err
		}
		if cell.Cmd != cmdDirInfo {
			t.Errorf("reply cmd = %d", cell.Cmd)
		}
		if !bytes.Contains(cell.Payload[:], []byte("consensus-bytes")) {
			t.Error("directory payload missing")
		}
		return nil
	})
}

func TestMeekIdleSessionsDoNotPoll(t *testing.T) {
	n, client, front := newMeekEchoWorld(t)
	startMeekEcho(t, n, front)
	runSim(t, n, func() error {
		conn, err := DialMeek(MeekClientConfig{
			Env:          n.Env(),
			Dial:         client.Dial,
			FrontAddr:    "13.107.246.10:443",
			FrontDomain:  "ajax.aspnetcdn.com",
			PollInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer conn.Close()
		// No ExpectInbound, no writes: an idle session must quiesce so
		// the virtual world can drain (and real sessions don't spam the
		// front).
		client.ResetStats()
		n.Scheduler().Sleep(5 * time.Second)
		// Allow stray transport ACKs from the handshake tail; an actual
		// poll is a few hundred bytes of HTTP + TLS.
		if tx := client.Stats().TxBytes; tx > 150 {
			t.Errorf("idle meek session sent %d bytes", tx)
		}
		return nil
	})
}

func TestMeekBackoffGrowsWhileWaiting(t *testing.T) {
	n, client, front := newMeekEchoWorld(t)
	startMeekEcho(t, n, front)
	runSim(t, n, func() error {
		raw, err := DialMeek(MeekClientConfig{
			Env:          n.Env(),
			Dial:         client.Dial,
			FrontAddr:    "13.107.246.10:443",
			FrontDomain:  "ajax.aspnetcdn.com",
			PollInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer raw.Close()
		m := raw.(*meekConn)
		m.ExpectInbound(1)
		defer m.ExpectInbound(-1)

		// Nothing inbound is coming; polls must back off toward the cap.
		client.ResetStats()
		n.Scheduler().Sleep(10 * time.Second)
		st := client.Stats()
		// At a constant 50ms schedule 10s would mean ~200 polls; with
		// 1.5x backoff capped at 2s it is a couple dozen.
		if st.TxPackets > 120 {
			t.Errorf("idle-waiting session sent %d packets; backoff not engaging", st.TxPackets)
		}
		if st.TxPackets == 0 {
			t.Error("no polls at all while expecting data")
		}
		return nil
	})
}

func TestMeekStreamSurvivesChunkedDelivery(t *testing.T) {
	// Cells split across poll responses must reassemble (readCell uses
	// io.ReadFull over the byte stream).
	n, client, front := newMeekEchoWorld(t)
	startMeekEcho(t, n, front)
	runSim(t, n, func() error {
		conn, err := DialMeek(MeekClientConfig{
			Env:          n.Env(),
			Dial:         client.Dial,
			FrontAddr:    "13.107.246.10:443",
			FrontDomain:  "ajax.aspnetcdn.com",
			PollInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer conn.Close()
		m := conn.(*meekConn)
		m.ExpectInbound(1)
		defer m.ExpectInbound(-1)
		// Write a cell in two halves with a pause between them; the
		// bridge must still parse exactly one DIR request.
		var p [cellPayloadSize]byte
		p[0] = dirDocConsensus
		var buf bytes.Buffer
		writeCell(&buf, &Cell{CircID: 9, Cmd: cmdDir, Payload: p})
		wire := buf.Bytes()
		if _, err := conn.Write(wire[:100]); err != nil {
			return err
		}
		n.Scheduler().Sleep(300 * time.Millisecond)
		if _, err := conn.Write(wire[100:]); err != nil {
			return err
		}
		cell, err := readCell(conn)
		if err != nil {
			return err
		}
		if cell.CircID != 9 || cell.Cmd != cmdDirInfo {
			t.Errorf("reply = circ %d cmd %d", cell.CircID, cell.Cmd)
		}
		return nil
	})
}
