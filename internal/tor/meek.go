package tor

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/tlssim"
)

// DefaultPollInterval is how often an idle meek client polls the front
// for inbound data. Real meek uses an adaptive 100ms–5s schedule; the
// floor dominates interactive traffic.
const DefaultPollInterval = 100 * time.Millisecond

// MeekClientConfig configures the client side of the meek transport.
type MeekClientConfig struct {
	Env netx.Env
	// Dial opens raw connections from the client device.
	Dial func(network, address string) (net.Conn, error)
	// FrontAddr is the CDN front's "ip:port" — the address actually
	// dialed.
	FrontAddr string
	// FrontDomain is the SNI presented (the "innocent" CDN hostname).
	// This is the paper-era meek weakness: the GFW learned the small set
	// of front domains Tor shipped and degrades flows to them.
	FrontDomain string
	// PollInterval overrides DefaultPollInterval when positive.
	PollInterval time.Duration
}

// meekConn is the client side of a meek session: a byte stream carried in
// HTTP POST bodies through a TLS connection to the front. Implements
// net.Conn for the cell layer above.
type meekConn struct {
	cfg     MeekClientConfig
	session string
	cc      *httpsim.ClientConn

	mu     sync.Mutex
	cond   netx.Cond
	in     []byte
	out    []byte
	closed bool
	err    error

	pollArmed bool
	pollDue   bool
	wantPoll  int           // open streams / pending ops that expect inbound data
	backoff   time.Duration // adaptive poll interval (grows while idle)
}

// DialMeek establishes a meek session to the bridge behind the front.
func DialMeek(cfg MeekClientConfig) (net.Conn, error) {
	raw, err := cfg.Dial("tcp", cfg.FrontAddr)
	if err != nil {
		return nil, fmt.Errorf("meek: dial front: %w", err)
	}
	tconn := tlssim.Client(raw, tlssim.Config{ServerName: cfg.FrontDomain})
	if err := tconn.Handshake(); err != nil {
		raw.Close()
		return nil, fmt.Errorf("meek: front TLS: %w", err)
	}
	var sid [8]byte
	if _, err := rand.Read(sid[:]); err != nil {
		raw.Close()
		return nil, err
	}
	m := &meekConn{
		cfg:     cfg,
		session: hex.EncodeToString(sid[:]),
		cc:      httpsim.NewClientConn(tconn),
	}
	m.cond = cfg.Env.Sync.NewCond(&m.mu)
	cfg.Env.Spawn.Go(m.pollLoop)
	return m, nil
}

func (m *meekConn) pollInterval() time.Duration {
	if m.cfg.PollInterval > 0 {
		return m.cfg.PollInterval
	}
	return DefaultPollInterval
}

// maxPollBackoff caps the adaptive idle schedule (real meek backs off to
// multi-second polls when nothing is flowing).
const maxPollBackoff = 2 * time.Second

// pollLoop ships outbound bytes as POST bodies and collects inbound bytes
// from the responses; when data is expected but none is outbound, it
// polls with empty bodies on the poll interval.
func (m *meekConn) pollLoop() {
	for {
		m.mu.Lock()
		for len(m.out) == 0 && !m.pollDue && !m.closed {
			if m.wantPoll > 0 && !m.pollArmed {
				m.pollArmed = true
				if m.backoff < m.pollInterval() {
					m.backoff = m.pollInterval()
				}
				m.cfg.Env.Clock.AfterFunc(m.backoff, func() {
					m.mu.Lock()
					m.pollArmed = false
					m.pollDue = true
					m.cond.Broadcast()
					m.mu.Unlock()
				})
			}
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			m.cc.Close()
			return
		}
		body := m.out
		m.out = nil
		m.pollDue = false
		m.mu.Unlock()

		req := &httpsim.Request{
			Method: "POST",
			Target: "/m",
			Host:   m.cfg.FrontDomain,
			Header: map[string]string{"X-Session-Id": m.session},
			Body:   body,
		}
		resp, err := m.cc.RoundTrip(req)

		m.mu.Lock()
		if err != nil {
			m.err = fmt.Errorf("meek: poll: %w", err)
			m.closed = true
			m.cond.Broadcast()
			m.mu.Unlock()
			m.cc.Close()
			return
		}
		if len(body) > 0 {
			m.backoff = m.pollInterval() // we sent data: replies are imminent
		}
		if len(resp.Body) > 0 {
			m.in = append(m.in, resp.Body...)
			m.backoff = m.pollInterval() // data flowing: poll fast
		} else if len(body) == 0 {
			// Idle empty poll: back off (meek's adaptive schedule).
			m.backoff = m.backoff * 3 / 2
			if m.backoff > maxPollBackoff {
				m.backoff = maxPollBackoff
			}
		}
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// ExpectInbound adjusts the count of consumers awaiting data; polling
// only runs while someone expects inbound bytes, so idle sessions
// quiesce.
func (m *meekConn) ExpectInbound(delta int) {
	m.mu.Lock()
	m.wantPoll += delta
	if m.wantPoll > 0 {
		m.pollDue = true
		m.backoff = m.pollInterval() // fresh expectation: poll fast again
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Read implements net.Conn.
func (m *meekConn) Read(b []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if len(m.in) > 0 {
			n := copy(b, m.in)
			m.in = m.in[n:]
			return n, nil
		}
		if m.err != nil {
			return 0, m.err
		}
		if m.closed {
			return 0, net.ErrClosed
		}
		m.cond.Wait()
	}
}

// Write implements net.Conn.
func (m *meekConn) Write(b []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, net.ErrClosed
	}
	m.out = append(m.out, b...)
	m.cond.Broadcast()
	return len(b), nil
}

// Close implements net.Conn.
func (m *meekConn) Close() error {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	return nil
}

// LocalAddr implements net.Conn.
func (m *meekConn) LocalAddr() net.Addr { return meekAddr{} }

// RemoteAddr implements net.Conn.
func (m *meekConn) RemoteAddr() net.Addr { return meekAddr{} }

// SetDeadline implements net.Conn (unsupported; polling governs timing).
func (m *meekConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn.
func (m *meekConn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn.
func (m *meekConn) SetWriteDeadline(time.Time) error { return nil }

type meekAddr struct{}

func (meekAddr) Network() string { return "meek" }
func (meekAddr) String() string  { return "meek" }

// MeekServer is the bridge-side front: an HTTPS endpoint that converts
// polled POST bodies into per-session byte streams and hands each new
// session to the bridge relay.
type MeekServer struct {
	Env netx.Env
	// Relay receives one net.Conn per meek session.
	Relay *Relay
	// Cert is the front's TLS certificate blob.
	Cert []byte

	mu       sync.Mutex
	sessions map[string]*meekServerConn
}

// Serve accepts front connections from ln.
func (s *MeekServer) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.sessions == nil {
		s.sessions = make(map[string]*meekServerConn)
	}
	s.mu.Unlock()
	srv := &httpsim.Server{
		Handler: httpsim.HandlerFunc(s.handle),
		Spawn:   s.Env.Spawn,
	}
	srv.Serve(tlssim.NewListener(ln, tlssim.Config{Certificate: s.Cert}))
}

func (s *MeekServer) handle(req *httpsim.Request, _ net.Addr) *httpsim.Response {
	sid := req.Header["X-Session-Id"]
	if sid == "" {
		return httpsim.NewResponse(400, []byte("missing session"))
	}
	s.mu.Lock()
	sc, ok := s.sessions[sid]
	if !ok {
		sc = newMeekServerConn(s.Env)
		s.sessions[sid] = sc
		s.Env.Spawn.Go(func() { s.Relay.ServeConn(sc) })
	}
	s.mu.Unlock()

	if len(req.Body) > 0 {
		sc.pushIn(req.Body)
	}
	out := sc.drainOut()
	return httpsim.NewResponse(200, out)
}

// meekServerConn is the bridge side of one meek session, fed by the HTTP
// handler. Implements net.Conn for Relay.ServeConn.
type meekServerConn struct {
	env netx.Env

	mu     sync.Mutex
	cond   netx.Cond
	in     []byte
	out    []byte
	closed bool
}

func newMeekServerConn(env netx.Env) *meekServerConn {
	sc := &meekServerConn{env: env}
	sc.cond = env.Sync.NewCond(&sc.mu)
	return sc
}

func (sc *meekServerConn) pushIn(b []byte) {
	sc.mu.Lock()
	sc.in = append(sc.in, b...)
	sc.cond.Broadcast()
	sc.mu.Unlock()
}

func (sc *meekServerConn) drainOut() []byte {
	sc.mu.Lock()
	out := sc.out
	sc.out = nil
	sc.mu.Unlock()
	return out
}

// Read implements net.Conn.
func (sc *meekServerConn) Read(b []byte) (int, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		if len(sc.in) > 0 {
			n := copy(b, sc.in)
			sc.in = sc.in[n:]
			return n, nil
		}
		if sc.closed {
			return 0, net.ErrClosed
		}
		sc.cond.Wait()
	}
}

// Write implements net.Conn: bytes wait for the client's next poll.
func (sc *meekServerConn) Write(b []byte) (int, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return 0, net.ErrClosed
	}
	sc.out = append(sc.out, b...)
	return len(b), nil
}

// Close implements net.Conn.
func (sc *meekServerConn) Close() error {
	sc.mu.Lock()
	sc.closed = true
	sc.cond.Broadcast()
	sc.mu.Unlock()
	return nil
}

// LocalAddr implements net.Conn.
func (sc *meekServerConn) LocalAddr() net.Addr { return meekAddr{} }

// RemoteAddr implements net.Conn.
func (sc *meekServerConn) RemoteAddr() net.Addr { return meekAddr{} }

// SetDeadline implements net.Conn.
func (sc *meekServerConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn.
func (sc *meekServerConn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn.
func (sc *meekServerConn) SetWriteDeadline(time.Time) error { return nil }
