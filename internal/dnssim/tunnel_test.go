package dnssim

import (
	"bytes"
	"strings"
	"testing"
)

const testTunnelDomain = "cdn-sync.example"

// TestTunnelNameRoundTrip covers the codec across payload shapes,
// including the full non-ASCII byte range.
func TestTunnelNameRoundTrip(t *testing.T) {
	full := make([]byte, 256)
	for i := range full {
		full[i] = byte(i)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"one":       {0x00},
		"ascii":     []byte("GET /scholar?q=tunnel HTTP/1.1"),
		"non-ascii": {0xFF, 0x00, 0xAB, 0x80, 0x7F, 0xFE, 0x01},
		"all-bytes": full[:MaxTunnelPayload(testTunnelDomain)],
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			qname, err := EncodeTunnelName(payload, testTunnelDomain)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if len(qname) > maxNameLen {
				t.Fatalf("name length %d exceeds %d", len(qname), maxNameLen)
			}
			for _, label := range strings.Split(qname, ".") {
				if len(label) == 0 || len(label) > maxLabelLen {
					t.Fatalf("bad label length %d in %q", len(label), qname)
				}
			}
			got, err := DecodeTunnelName(qname, testTunnelDomain)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("round trip: got %x want %x", got, payload)
			}
		})
	}
}

// TestTunnelNameMTUBoundary pins the exact-fit and one-over behavior at
// the per-query payload limit.
func TestTunnelNameMTUBoundary(t *testing.T) {
	mtu := MaxTunnelPayload(testTunnelDomain)
	if mtu < 100 {
		t.Fatalf("MTU %d implausibly small for domain %q", mtu, testTunnelDomain)
	}

	exact := bytes.Repeat([]byte{0xA5}, mtu)
	qname, err := EncodeTunnelName(exact, testTunnelDomain)
	if err != nil {
		t.Fatalf("exact-fit payload rejected: %v", err)
	}
	if len(qname) > maxNameLen {
		t.Fatalf("exact-fit name is %d chars, limit %d", len(qname), maxNameLen)
	}
	got, err := DecodeTunnelName(qname, testTunnelDomain)
	if err != nil || !bytes.Equal(got, exact) {
		t.Fatalf("exact-fit round trip failed: %v", err)
	}

	over := append(exact, 0x5A)
	if _, err := EncodeTunnelName(over, testTunnelDomain); err == nil {
		t.Fatalf("payload one over the %d-byte MTU was accepted", mtu)
	}
}

// TestTunnelNameCaseInsensitive checks the decoder survives the
// lowercasing that DNS servers and caches legally apply.
func TestTunnelNameCaseInsensitive(t *testing.T) {
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	qname, err := EncodeTunnelName(payload, testTunnelDomain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTunnelName(strings.ToUpper(qname), strings.ToUpper(testTunnelDomain))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("uppercased name failed to decode: %v", err)
	}
}

// TestTunnelNameRejectsForeign checks names outside the tunnel domain and
// corrupt label text are refused rather than misdecoded.
func TestTunnelNameRejectsForeign(t *testing.T) {
	if _, err := DecodeTunnelName("scholar.google.com", testTunnelDomain); err == nil {
		t.Fatal("foreign name decoded")
	}
	if _, err := DecodeTunnelName("not-base32-0189."+testTunnelDomain, testTunnelDomain); err == nil {
		t.Fatal("invalid base32 label decoded")
	}
}

// TestTXTRoundTrip checks the wire format carries raw TXT RDATA — the
// tunnel's downstream path — without corrupting it, alongside A records.
func TestTXTRoundTrip(t *testing.T) {
	raw := make([]byte, 1100)
	for i := range raw {
		raw[i] = byte(i * 7)
	}
	for _, n := range []int{0, 1, len(raw)} {
		m := &Message{
			ID:       77,
			Response: true,
			Question: Question{Name: "q." + testTunnelDomain, Type: TypeTXT},
			Answers: []RR{
				{Name: testTunnelDomain, Type: TypeTXT, TTL: 0, Raw: raw[:n]},
				{Name: "a.example", Type: TypeA, TTL: 30, Data: "192.0.2.7"},
			},
		}
		wire, err := m.Marshal()
		if err != nil {
			t.Fatalf("marshal with %d raw bytes: %v", n, err)
		}
		got, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("unmarshal with %d raw bytes: %v", n, err)
		}
		if !bytes.Equal(got.Answers[0].Raw, raw[:n]) {
			t.Fatalf("TXT rdata corrupted at %d bytes", n)
		}
		if got.Answers[1].Data != "192.0.2.7" {
			t.Fatalf("A record corrupted: %q", got.Answers[1].Data)
		}
	}
}
