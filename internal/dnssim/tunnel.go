// Tunnel payload codec: binary payloads packed into DNS query names. The
// DNS-tunnel carrier (internal/carrier) ships its upstream bytes as
// base32 labels under an innocuous domain, so every hop — recursive
// resolvers, the GFW's on-path inspector — sees a syntactically ordinary
// query for a name nobody blacklists.
//
// Encoding: RFC 4648 base32, lowercase, no padding (DNS names are
// case-insensitive and '=' is not a hostname character), split into
// labels of at most 63 characters, with the tunnel domain appended. The
// whole name must fit DNS's 253-character presentation limit, which is
// what bounds the per-query payload (MaxTunnelPayload).
package dnssim

import (
	"encoding/base32"
	"fmt"
	"strings"
)

// maxNameLen is the DNS presentation-format name length limit.
const maxNameLen = 253

// maxLabelLen is the DNS label length limit.
const maxLabelLen = 63

// tunnelEncoding is base32 without padding; names are lowercased on the
// wire and uppercased back before decoding.
var tunnelEncoding = base32.StdEncoding.WithPadding(base32.NoPadding)

// MaxTunnelPayload returns the largest payload EncodeTunnelName can fit
// into one query name under domain. It is negative if the domain alone
// leaves no room.
func MaxTunnelPayload(domain string) int {
	// Budget for the encoded labels: total name length minus the domain,
	// the dot joining payload to domain, and one dot per extra label.
	budget := maxNameLen - len(strings.TrimSuffix(domain, ".")) - 1
	for p := 0; ; p++ {
		enc := tunnelEncoding.EncodedLen(p + 1)
		labels := (enc + maxLabelLen - 1) / maxLabelLen
		if enc+(labels-1) > budget {
			return p
		}
	}
}

// EncodeTunnelName packs payload into a query name under domain. Empty
// payloads are legal (the tunnel's poll frames have no data). Payloads
// beyond MaxTunnelPayload(domain) are rejected.
func EncodeTunnelName(payload []byte, domain string) (string, error) {
	domain = strings.TrimSuffix(domain, ".")
	if len(payload) > MaxTunnelPayload(domain) {
		return "", fmt.Errorf("dnssim: tunnel payload %d bytes exceeds %d-byte name budget", len(payload), MaxTunnelPayload(domain))
	}
	enc := strings.ToLower(tunnelEncoding.EncodeToString(payload))
	var labels []string
	for len(enc) > maxLabelLen {
		labels = append(labels, enc[:maxLabelLen])
		enc = enc[maxLabelLen:]
	}
	if enc != "" {
		labels = append(labels, enc)
	}
	labels = append(labels, domain)
	return strings.Join(labels, "."), nil
}

// DecodeTunnelName recovers the payload from a query name produced by
// EncodeTunnelName. It fails if name is not under domain or the label
// text is not valid base32.
func DecodeTunnelName(name, domain string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	domain = strings.TrimSuffix(domain, ".")
	if !strings.EqualFold(name, domain) && !strings.HasSuffix(strings.ToLower(name), "."+strings.ToLower(domain)) {
		return nil, fmt.Errorf("dnssim: name %q not under tunnel domain %q", name, domain)
	}
	enc := strings.ReplaceAll(name[:len(name)-len(domain)], ".", "")
	if enc == "" {
		return nil, nil
	}
	payload, err := tunnelEncoding.DecodeString(strings.ToUpper(enc))
	if err != nil {
		return nil, fmt.Errorf("dnssim: bad tunnel name: %w", err)
	}
	return payload, nil
}
