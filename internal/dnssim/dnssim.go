// Package dnssim implements a compact DNS subsystem: a binary wire format
// (RFC 1035 header + question + A-record answers, without name
// compression), an authoritative UDP server, and a caching stub resolver.
//
// DNS runs over netsim's UDP datagrams, which is exactly what exposes it
// to the Great Firewall's poisoning injector: the GFW parses queries
// crossing the border, and for blacklisted names it races a forged answer
// back to the client. Like real stub resolvers, the resolver here accepts
// the first syntactically valid answer with a matching transaction ID —
// the vulnerability the paper's "DNS poisoning" censorship technique
// exploits.
package dnssim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"scholarcloud/internal/netx"
)

// TypeA is the record type the name service serves (IPv4 address).
const TypeA uint16 = 1

// TypeTXT carries opaque bytes. The zone server never answers TXT; the
// type exists for the DNS-tunnel carrier (internal/carrier), which smuggles
// mux frames downstream inside TXT RDATA.
const TypeTXT uint16 = 16

// RCode values used by the simulator.
const (
	RCodeSuccess  = 0
	RCodeNXDomain = 3
)

// Errors returned by the resolver.
var (
	// ErrNXDomain indicates the authoritative server does not know the name.
	ErrNXDomain = errors.New("dnssim: no such domain")
	// ErrTimeout indicates no answer arrived within the retry budget.
	ErrTimeout = errors.New("dnssim: query timed out")
)

// Message is a DNS message restricted to one question and A answers.
type Message struct {
	ID       uint16
	Response bool
	RCode    int
	Question Question
	Answers  []RR
}

// Question names what is being asked.
type Question struct {
	Name string
	Type uint16
}

// RR is an answer resource record. A records carry Data, an IPv4 address
// in dotted-quad form; TXT records carry Raw, opaque RDATA bytes.
type RR struct {
	Name string
	Type uint16
	TTL  uint32
	Data string
	Raw  []byte
}

// Marshal encodes the message to wire format.
func (m *Message) Marshal() ([]byte, error) {
	buf := make([]byte, 0, 64)
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.RCode) & 0xF
	binary.BigEndian.PutUint16(hdr[2:], flags)
	binary.BigEndian.PutUint16(hdr[4:], 1) // QDCOUNT
	binary.BigEndian.PutUint16(hdr[6:], uint16(len(m.Answers)))
	buf = append(buf, hdr[:]...)

	qname, err := encodeName(m.Question.Name)
	if err != nil {
		return nil, err
	}
	buf = append(buf, qname...)
	buf = binary.BigEndian.AppendUint16(buf, m.Question.Type)
	buf = binary.BigEndian.AppendUint16(buf, 1) // IN

	for _, rr := range m.Answers {
		name, err := encodeName(rr.Name)
		if err != nil {
			return nil, err
		}
		buf = append(buf, name...)
		buf = binary.BigEndian.AppendUint16(buf, rr.Type)
		buf = binary.BigEndian.AppendUint16(buf, 1) // IN
		buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
		if rr.Type == TypeTXT {
			if len(rr.Raw) > 0xFFFF {
				return nil, fmt.Errorf("dnssim: oversized TXT rdata (%d bytes)", len(rr.Raw))
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(rr.Raw)))
			buf = append(buf, rr.Raw...)
			continue
		}
		ip := net.ParseIP(rr.Data)
		if ip == nil || ip.To4() == nil {
			return nil, fmt.Errorf("dnssim: bad A record data %q", rr.Data)
		}
		buf = binary.BigEndian.AppendUint16(buf, 4)
		buf = append(buf, ip.To4()...)
	}
	return buf, nil
}

// Unmarshal decodes a wire-format message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, errors.New("dnssim: short message")
	}
	m := &Message{}
	m.ID = binary.BigEndian.Uint16(b[0:])
	flags := binary.BigEndian.Uint16(b[2:])
	m.Response = flags&(1<<15) != 0
	m.RCode = int(flags & 0xF)
	qd := binary.BigEndian.Uint16(b[4:])
	an := binary.BigEndian.Uint16(b[6:])
	if qd != 1 {
		return nil, fmt.Errorf("dnssim: unsupported QDCOUNT %d", qd)
	}
	off := 12
	name, n, err := decodeName(b, off)
	if err != nil {
		return nil, err
	}
	off += n
	if off+4 > len(b) {
		return nil, errors.New("dnssim: truncated question")
	}
	m.Question = Question{Name: name, Type: binary.BigEndian.Uint16(b[off:])}
	off += 4
	for i := 0; i < int(an); i++ {
		rname, n, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		off += n
		if off+10 > len(b) {
			return nil, errors.New("dnssim: truncated answer")
		}
		typ := binary.BigEndian.Uint16(b[off:])
		ttl := binary.BigEndian.Uint32(b[off+4:])
		rdlen := int(binary.BigEndian.Uint16(b[off+8:]))
		off += 10
		if off+rdlen > len(b) {
			return nil, errors.New("dnssim: truncated rdata")
		}
		rr := RR{Name: rname, Type: typ, TTL: ttl}
		if typ == TypeA && rdlen == 4 {
			rr.Data = net.IPv4(b[off], b[off+1], b[off+2], b[off+3]).String()
		} else if typ == TypeTXT {
			rr.Raw = append([]byte(nil), b[off:off+rdlen]...)
		}
		off += rdlen
		m.Answers = append(m.Answers, rr)
	}
	return m, nil
}

// ParseQuery decodes just enough of a wire message to extract the queried
// name, which is what a censoring middlebox needs. It returns an error
// for responses or malformed packets.
func ParseQuery(b []byte) (id uint16, name string, err error) {
	m, err := Unmarshal(b)
	if err != nil {
		return 0, "", err
	}
	if m.Response {
		return 0, "", errors.New("dnssim: not a query")
	}
	return m.ID, m.Question.Name, nil
}

func encodeName(name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return []byte{0}, nil
	}
	var buf []byte
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("dnssim: bad label in %q", name)
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

func decodeName(b []byte, off int) (string, int, error) {
	var labels []string
	n := 0
	for {
		if off+n >= len(b) {
			return "", 0, errors.New("dnssim: truncated name")
		}
		l := int(b[off+n])
		n++
		if l == 0 {
			break
		}
		if l > 63 {
			return "", 0, errors.New("dnssim: compression not supported")
		}
		if off+n+l > len(b) {
			return "", 0, errors.New("dnssim: truncated label")
		}
		labels = append(labels, string(b[off+n:off+n+l]))
		n += l
	}
	return strings.Join(labels, "."), n, nil
}

// Server is an authoritative DNS server over a net.PacketConn.
type Server struct {
	mu   sync.Mutex
	zone map[string]string // fqdn -> IPv4
	ttl  uint32
}

// NewServer creates a server with the given name→IP records.
func NewServer(records map[string]string) *Server {
	zone := make(map[string]string, len(records))
	for name, ip := range records {
		zone[normalize(name)] = ip
	}
	return &Server{zone: zone, ttl: 300}
}

// SetRecord adds or updates a record at runtime.
func (s *Server) SetRecord(name, ip string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zone[normalize(name)] = ip
}

func normalize(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// Serve answers queries on pc until pc is closed. Run it on a managed
// goroutine.
func (s *Server) Serve(pc net.PacketConn) {
	buf := make([]byte, 1500)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		query, err := Unmarshal(buf[:n])
		if err != nil || query.Response {
			continue
		}
		resp := &Message{
			ID:       query.ID,
			Response: true,
			Question: query.Question,
		}
		s.mu.Lock()
		ip, ok := s.zone[normalize(query.Question.Name)]
		s.mu.Unlock()
		if ok && query.Question.Type == TypeA {
			resp.Answers = []RR{{Name: query.Question.Name, Type: TypeA, TTL: s.ttl, Data: ip}}
		} else {
			resp.RCode = RCodeNXDomain
		}
		out, err := resp.Marshal()
		if err != nil {
			continue
		}
		pc.WriteTo(out, addr)
	}
}

// Resolver is a caching stub resolver pointed at one upstream server.
type Resolver struct {
	dialer  netx.Dialer
	clock   netx.Clock
	server  string // "ip:53"
	timeout time.Duration
	retries int

	mu     sync.Mutex
	nextID uint16
	cache  map[string]cacheEntry

	// Lookups counts queries sent upstream (cache misses), which the
	// browser model uses to attribute first-time page-load latency.
	lookups int64
}

type cacheEntry struct {
	ip      string
	expires time.Time
}

// NewResolver creates a resolver that sends queries via dialer to server.
func NewResolver(dialer netx.Dialer, clock netx.Clock, server string) *Resolver {
	return &Resolver{
		dialer:  dialer,
		clock:   clock,
		server:  server,
		timeout: 2 * time.Second,
		retries: 3,
		nextID:  1,
		cache:   make(map[string]cacheEntry),
	}
}

// UpstreamQueries reports how many lookups went to the server (i.e. were
// not answered from cache).
func (r *Resolver) UpstreamQueries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookups
}

// FlushCache drops all cached entries (a "first visit" in the paper's PLT
// methodology).
func (r *Resolver) FlushCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[string]cacheEntry)
}

// Lookup resolves name to an IPv4 address, consulting the cache first.
func (r *Resolver) Lookup(name string) (string, error) {
	key := normalize(name)
	now := r.clock.Now()

	r.mu.Lock()
	if e, ok := r.cache[key]; ok && now.Before(e.expires) {
		r.mu.Unlock()
		return e.ip, nil
	}
	r.nextID++
	id := r.nextID
	r.lookups++
	r.mu.Unlock()

	query := &Message{ID: id, Question: Question{Name: key, Type: TypeA}}
	wire, err := query.Marshal()
	if err != nil {
		return "", err
	}

	var lastErr error = ErrTimeout
	for attempt := 0; attempt < r.retries; attempt++ {
		ip, ttl, err := r.queryOnce(wire, id, key)
		if err == nil {
			r.mu.Lock()
			r.cache[key] = cacheEntry{ip: ip, expires: r.clock.Now().Add(time.Duration(ttl) * time.Second)}
			r.mu.Unlock()
			return ip, nil
		}
		if errors.Is(err, ErrNXDomain) {
			return "", err
		}
		lastErr = err
	}
	return "", lastErr
}

func (r *Resolver) queryOnce(wire []byte, id uint16, name string) (ip string, ttl uint32, err error) {
	conn, err := r.dialer.Dial("udp", r.server)
	if err != nil {
		return "", 0, err
	}
	defer conn.Close()
	if _, err := conn.Write(wire); err != nil {
		return "", 0, err
	}
	conn.SetReadDeadline(r.clock.Now().Add(r.timeout))
	buf := make([]byte, 1500)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return "", 0, ErrTimeout
		}
		resp, err := Unmarshal(buf[:n])
		if err != nil || !resp.Response || resp.ID != id {
			continue // not our answer; keep listening
		}
		if resp.RCode == RCodeNXDomain {
			return "", 0, ErrNXDomain
		}
		for _, rr := range resp.Answers {
			if rr.Type == TypeA && rr.Data != "" {
				return rr.Data, rr.TTL, nil
			}
		}
		return "", 0, fmt.Errorf("dnssim: empty answer for %q", name)
	}
}
