package dnssim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"scholarcloud/internal/netsim"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	m := &Message{
		ID:       0x1234,
		Response: true,
		Question: Question{Name: "scholar.google.com", Type: TypeA},
		Answers: []RR{
			{Name: "scholar.google.com", Type: TypeA, TTL: 300, Data: "172.217.6.78"},
		},
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || !got.Response || got.Question.Name != m.Question.Name {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if len(got.Answers) != 1 || got.Answers[0].Data != "172.217.6.78" {
		t.Errorf("answers = %+v", got.Answers)
	}
}

func TestMarshalQueryParse(t *testing.T) {
	m := &Message{ID: 77, Question: Question{Name: "www.example.com", Type: TypeA}}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	id, name, err := ParseQuery(wire)
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 || name != "www.example.com" {
		t.Errorf("ParseQuery = (%d, %q)", id, name)
	}
}

func TestParseQueryRejectsResponses(t *testing.T) {
	m := &Message{ID: 1, Response: true, Question: Question{Name: "x.com", Type: TypeA}}
	wire, _ := m.Marshal()
	if _, _, err := ParseQuery(wire); err == nil {
		t.Error("ParseQuery accepted a response message")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 12), // QDCOUNT 0
	}
	for _, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("Unmarshal(%v) succeeded", c)
		}
	}
}

func TestUnmarshalFuzzNeverPanics(t *testing.T) {
	// Property: arbitrary bytes never panic the decoder.
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		_, _, _ = ParseQuery(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNameEncodingRoundTripProperty(t *testing.T) {
	// Property: names made of valid labels survive a marshal/unmarshal
	// round trip through a query message.
	f := func(a, b uint8) bool {
		name := "host" + string(rune('a'+a%26)) + ".zone" + string(rune('a'+b%26)) + ".example.com"
		m := &Message{ID: 9, Question: Question{Name: name, Type: TypeA}}
		wire, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(wire)
		return err == nil && got.Question.Name == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// simEnv builds a client + DNS server world.
type simEnv struct {
	n      *netsim.Network
	client *netsim.Host
	server *netsim.Host
}

func newSimEnv(t *testing.T) *simEnv {
	t.Helper()
	n := netsim.New(5)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 70 * time.Millisecond})
	client := n.AddHost("client", "10.0.0.2", cn, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	server := n.AddHost("dns", "8.8.8.8", us, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	return &simEnv{n: n, client: client, server: server}
}

func (e *simEnv) startDNS(t *testing.T, records map[string]string) *Server {
	t.Helper()
	srv := NewServer(records)
	pc, err := e.server.ListenPacket(53)
	if err != nil {
		t.Fatal(err)
	}
	e.n.Scheduler().Go(func() { srv.Serve(pc) })
	return srv
}

func (e *simEnv) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	e.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestResolverLookup(t *testing.T) {
	e := newSimEnv(t)
	e.startDNS(t, map[string]string{"scholar.google.com": "172.217.6.78"})
	r := NewResolver(e.client, e.n.Clock(), "8.8.8.8:53")
	e.run(t, func() error {
		ip, err := r.Lookup("scholar.google.com")
		if err != nil {
			return err
		}
		if ip != "172.217.6.78" {
			t.Errorf("ip = %q", ip)
		}
		return nil
	})
}

func TestResolverCacheAvoidsSecondQuery(t *testing.T) {
	e := newSimEnv(t)
	e.startDNS(t, map[string]string{"a.com": "1.2.3.4"})
	r := NewResolver(e.client, e.n.Clock(), "8.8.8.8:53")
	e.run(t, func() error {
		if _, err := r.Lookup("a.com"); err != nil {
			return err
		}
		start := e.n.Scheduler().Elapsed()
		if _, err := r.Lookup("a.com"); err != nil {
			return err
		}
		if d := e.n.Scheduler().Elapsed() - start; d != 0 {
			t.Errorf("cached lookup took %v, want 0", d)
		}
		if q := r.UpstreamQueries(); q != 1 {
			t.Errorf("upstream queries = %d, want 1", q)
		}
		return nil
	})
}

func TestResolverCacheExpires(t *testing.T) {
	e := newSimEnv(t)
	e.startDNS(t, map[string]string{"a.com": "1.2.3.4"})
	r := NewResolver(e.client, e.n.Clock(), "8.8.8.8:53")
	e.run(t, func() error {
		if _, err := r.Lookup("a.com"); err != nil {
			return err
		}
		e.n.Scheduler().Sleep(301 * time.Second) // past the 300s TTL
		if _, err := r.Lookup("a.com"); err != nil {
			return err
		}
		if q := r.UpstreamQueries(); q != 2 {
			t.Errorf("upstream queries = %d, want 2 after TTL expiry", q)
		}
		return nil
	})
}

func TestResolverNXDomain(t *testing.T) {
	e := newSimEnv(t)
	e.startDNS(t, map[string]string{"a.com": "1.2.3.4"})
	r := NewResolver(e.client, e.n.Clock(), "8.8.8.8:53")
	e.run(t, func() error {
		_, err := r.Lookup("nope.example")
		if !errors.Is(err, ErrNXDomain) {
			t.Errorf("err = %v, want ErrNXDomain", err)
		}
		return nil
	})
}

func TestResolverTimesOutWithoutServer(t *testing.T) {
	e := newSimEnv(t)
	r := NewResolver(e.client, e.n.Clock(), "8.8.8.8:53") // nothing listening
	e.run(t, func() error {
		_, err := r.Lookup("a.com")
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		return nil
	})
}

func TestResolverFlushCacheForcesRequery(t *testing.T) {
	e := newSimEnv(t)
	e.startDNS(t, map[string]string{"a.com": "1.2.3.4"})
	r := NewResolver(e.client, e.n.Clock(), "8.8.8.8:53")
	e.run(t, func() error {
		if _, err := r.Lookup("a.com"); err != nil {
			return err
		}
		r.FlushCache()
		if _, err := r.Lookup("a.com"); err != nil {
			return err
		}
		if q := r.UpstreamQueries(); q != 2 {
			t.Errorf("upstream queries = %d, want 2 after flush", q)
		}
		return nil
	})
}

func TestServerSetRecordTakesEffect(t *testing.T) {
	e := newSimEnv(t)
	srv := e.startDNS(t, map[string]string{"a.com": "1.2.3.4"})
	r := NewResolver(e.client, e.n.Clock(), "8.8.8.8:53")
	e.run(t, func() error {
		srv.SetRecord("b.com", "5.6.7.8")
		ip, err := r.Lookup("b.com")
		if err != nil {
			return err
		}
		if ip != "5.6.7.8" {
			t.Errorf("ip = %q", ip)
		}
		return nil
	})
}
