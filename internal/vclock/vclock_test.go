package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New()
	defer s.Stop()

	var elapsed time.Duration
	done := make(chan struct{})
	s.Go(func() {
		defer close(done)
		s.Sleep(15 * time.Second)
		elapsed = s.Elapsed()
	})
	<-done
	if elapsed != 15*time.Second {
		t.Fatalf("elapsed = %v, want 15s", elapsed)
	}
}

func TestSleepZeroReturnsImmediately(t *testing.T) {
	s := New()
	defer s.Stop()
	done := make(chan struct{})
	s.Go(func() {
		defer close(done)
		s.Sleep(0)
		s.Sleep(-time.Second)
	})
	<-done
	if got := s.Elapsed(); got != 0 {
		t.Fatalf("elapsed = %v, want 0", got)
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	s := New()
	defer s.Stop()

	var mu sync.Mutex
	var order []int
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		i, d := i, d
		s.Event(d, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	s.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimestampEventsRunInScheduleOrder(t *testing.T) {
	s := New()
	defer s.Stop()

	var mu sync.Mutex
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		s.Event(time.Millisecond, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	s.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 50 {
		t.Fatalf("ran %d events, want 50", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestAfterFuncFiresAndMayBlock(t *testing.T) {
	s := New()
	defer s.Stop()

	done := make(chan time.Duration, 1)
	s.AfterFunc(100*time.Millisecond, func() {
		// AfterFunc callbacks run managed, so they may Sleep.
		s.Sleep(50 * time.Millisecond)
		done <- s.Elapsed()
	})
	s.Wait()
	got := <-done
	if got != 150*time.Millisecond {
		t.Fatalf("callback finished at %v, want 150ms", got)
	}
}

func TestTimerStopPreventsCallback(t *testing.T) {
	s := New()
	defer s.Stop()

	var fired atomic.Bool
	tm := s.AfterFunc(10*time.Millisecond, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	// Later event to force time past the cancelled one.
	s.Event(20*time.Millisecond, func() {})
	s.Wait()
	if fired.Load() {
		t.Fatal("cancelled timer fired")
	}
}

func TestCondSignalWakesWaiterWithoutTimeSkew(t *testing.T) {
	s := New()
	defer s.Stop()

	var mu sync.Mutex
	cond := NewCond(s, &mu)
	ready := false
	var wokeAt time.Duration

	done := make(chan struct{})
	s.Go(func() {
		defer close(done)
		mu.Lock()
		for !ready {
			cond.Wait()
		}
		wokeAt = s.Elapsed()
		mu.Unlock()
	})
	s.Event(250*time.Millisecond, func() {
		mu.Lock()
		ready = true
		cond.Signal()
		mu.Unlock()
	})
	<-done
	if wokeAt != 250*time.Millisecond {
		t.Fatalf("waiter woke at %v, want 250ms", wokeAt)
	}
}

func TestCondBroadcastWakesAllWaiters(t *testing.T) {
	s := New()
	defer s.Stop()

	var mu sync.Mutex
	cond := NewCond(s, &mu)
	ready := false
	var wg sync.WaitGroup
	var woke atomic.Int32
	for i := 0; i < 10; i++ {
		wg.Add(1)
		s.Go(func() {
			defer wg.Done()
			mu.Lock()
			for !ready {
				cond.Wait()
			}
			mu.Unlock()
			woke.Add(1)
		})
	}
	s.Event(time.Millisecond, func() {
		mu.Lock()
		ready = true
		cond.Broadcast()
		mu.Unlock()
	})
	wg.Wait()
	if woke.Load() != 10 {
		t.Fatalf("woke %d waiters, want 10", woke.Load())
	}
}

func TestParkedGoroutineDoesNotBlockTime(t *testing.T) {
	s := New()
	defer s.Stop()

	var mu sync.Mutex
	cond := NewCond(s, &mu)
	// A "server" parked forever must not stop the clock.
	s.Go(func() {
		mu.Lock()
		for {
			cond.Wait()
		}
	})
	done := make(chan struct{})
	s.Go(func() {
		defer close(done)
		s.Sleep(time.Hour)
	})
	<-done
	if got := s.Elapsed(); got != time.Hour {
		t.Fatalf("elapsed = %v, want 1h", got)
	}
}

func TestWaitReturnsOnQuiescence(t *testing.T) {
	s := New()
	defer s.Stop()

	var n atomic.Int32
	for i := 0; i < 20; i++ {
		d := time.Duration(i) * time.Millisecond
		s.Event(d, func() { n.Add(1) })
	}
	s.Wait()
	if n.Load() != 20 {
		t.Fatalf("ran %d events before Wait returned, want 20", n.Load())
	}
}

func TestNestedSpawnsComplete(t *testing.T) {
	s := New()
	defer s.Stop()

	var n atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	s.Go(func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			wg.Add(1)
			s.Go(func() {
				defer wg.Done()
				s.Sleep(10 * time.Millisecond)
				n.Add(1)
			})
		}
		s.Sleep(time.Second)
	})
	wg.Wait()
	if n.Load() != 5 {
		t.Fatalf("children ran %d, want 5", n.Load())
	}
	if got := s.Elapsed(); got != time.Second {
		t.Fatalf("elapsed = %v, want 1s", got)
	}
}

func TestNowTracksEpoch(t *testing.T) {
	s := New()
	defer s.Stop()
	if !s.Now().Equal(Epoch) {
		t.Fatalf("Now = %v, want %v", s.Now(), Epoch)
	}
	done := make(chan struct{})
	s.Go(func() {
		defer close(done)
		s.Sleep(time.Minute)
	})
	<-done
	if want := Epoch.Add(time.Minute); !s.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", s.Now(), want)
	}
}

func TestManyConcurrentSleepersDeterministic(t *testing.T) {
	// Stress the busy accounting: many goroutines sleeping interleaved
	// durations must all observe exact virtual timestamps.
	s := New()
	defer s.Stop()

	const n = 100
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		s.Go(func() {
			defer wg.Done()
			total := time.Duration(0)
			for j := 0; j < 5; j++ {
				d := time.Duration((i+j)%7+1) * time.Millisecond
				s.Sleep(d)
				total += d
			}
			_ = total
			errs <- nil
		})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestHeapPopReleasesSlot(t *testing.T) {
	// Regression: the pending-event containers must nil out vacated tail
	// slots when shrinking, or the backing arrays retain popped *event
	// values for the life of the world — a leak that grows with exactly
	// the long, event-heavy runs the flow-level mode introduces.
	var h []*event
	for i := 0; i < 8; i++ {
		h = heapPush(h, &event{at: time.Duration(i), seq: uint64(i)})
	}
	backing := h[:cap(h)]
	for len(h) > 0 {
		h, _ = heapPop(h)
	}
	for i, ev := range backing {
		if ev != nil {
			t.Fatalf("backing[%d] still references a popped event", i)
		}
	}
}

func TestTimerStopAfterRecycleIsNoop(t *testing.T) {
	// Event structs are recycled through a freelist. A Timer handle held
	// across its event firing must not be able to cancel the unrelated
	// timer that later reuses the struct.
	s := New()
	defer s.Stop()

	var fired [2]bool
	t0 := s.Event(time.Millisecond, func() { fired[0] = true })
	s.Wait()
	// t0's event has fired and its struct returned to the freelist; the
	// next Event reuses it.
	s.Event(2*time.Millisecond, func() { fired[1] = true })
	if t0.Stop() {
		t.Fatal("Stop on a fired timer reported true")
	}
	s.Wait()
	if !fired[0] || !fired[1] {
		t.Fatalf("fired = %v, want both", fired)
	}
}

func TestWheelOverflowOrdering(t *testing.T) {
	// Events beyond the wheel horizon live in the overflow heap; events
	// inside it live in the wheel. They must still fire in global
	// timestamp order, including ties across the boundary as the clock
	// advances into the far event's horizon.
	s := New()
	defer s.Stop()

	var order []int
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	add := func(i int) { <-mu; order = append(order, i); mu <- struct{}{} }
	s.Event(10*time.Second, func() { add(2) }) // far beyond the horizon
	s.Event(time.Millisecond, func() { add(0) })
	s.Event(5*time.Second, func() { add(1) }) // just past the horizon
	s.Event(10*time.Second, func() { add(3) })
	s.Wait()
	if len(order) != 4 || order[0] != 0 || order[1] != 1 || order[2] != 2 || order[3] != 3 {
		t.Fatalf("order = %v, want [0 1 2 3]", order)
	}
	if got := s.Elapsed(); got != 10*time.Second {
		t.Fatalf("elapsed = %v, want 10s", got)
	}
}

func TestStopCancelledEventInDrainedBatch(t *testing.T) {
	// An event callback may Stop a timer that shares its instant and has
	// already been drained into the batch; the cancelled callback must
	// not run.
	s := New()
	defer s.Stop()

	var ran bool
	var victim *Timer
	s.Event(time.Millisecond, func() { victim.Stop() })
	victim = s.Event(time.Millisecond, func() { ran = true })
	s.Wait()
	if ran {
		t.Fatal("cancelled same-instant event still ran")
	}
}
