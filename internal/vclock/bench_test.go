package vclock

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw scheduler event processing.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	defer s.Stop()
	for i := 0; i < b.N; i++ {
		s.Event(time.Duration(i), func() {})
	}
	s.Wait()
}

// BenchmarkSleepSwitch measures the managed-goroutine park/resume cycle.
func BenchmarkSleepSwitch(b *testing.B) {
	s := New()
	defer s.Stop()
	done := make(chan struct{})
	s.Go(func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			s.Sleep(time.Microsecond)
		}
	})
	<-done
}
