// Package vclock implements a deterministic virtual-time scheduler for
// discrete-event simulation.
//
// The scheduler tracks a set of managed goroutines and a heap of timed
// events, and it runs the managed world SERIALIZED: exactly one managed
// goroutine (or event callback) executes at a time, holding the run token.
// Runnable goroutines queue FIFO; when the running goroutine blocks on a
// scheduler-aware primitive (Sleep, Cond.Wait, or exit), the token passes
// to the queue head, and only when the queue is empty does the driver pop
// the earliest pending event and jump the clock to its timestamp. A
// simulated 15-second page load therefore completes in microseconds of
// wall time, and — because every interleaving decision is made by the
// FIFO queue and the event heap rather than the OS scheduler — a world's
// entire execution is a deterministic function of its inputs, even when
// hundreds of simulated clients run "concurrently". That property is what
// lets the experiment harness fan worlds out across OS threads and still
// produce byte-identical figures for any worker count: parallelism lives
// BETWEEN worlds, never inside one.
//
// The cardinal rule for code running under a Scheduler is that every
// blocking operation must be scheduler-aware. Blocking on a bare channel
// or sync primitive from a managed goroutine stalls virtual time forever,
// because the goroutine holds the run token and the scheduler will not
// advance the clock past it.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Epoch is the virtual time origin. A fixed, recognizable epoch makes
// simulated timestamps stable across runs and obvious in logs.
var Epoch = time.Date(2017, time.February, 1, 0, 0, 0, 0, time.UTC)

// Scheduler is a deterministic discrete-event scheduler. The zero value is
// not usable; call New.
type Scheduler struct {
	mu     sync.Mutex
	driver *sync.Cond // wakes the driver loop when the token frees or events arrive

	now     time.Duration // virtual time elapsed since Epoch
	events  eventHeap
	seq     uint64          // tie-breaker so same-timestamp events run in schedule order
	running bool            // the run token: a managed goroutine or event callback executes
	ready   []chan struct{} // FIFO of runnable goroutines awaiting the token
	stopped bool

	idle *sync.Cond // wakes Wait() callers when the world quiesces
}

// New returns a running Scheduler with virtual time at Epoch.
func New() *Scheduler {
	s := &Scheduler{}
	s.driver = sync.NewCond(&s.mu)
	s.idle = sync.NewCond(&s.mu)
	go s.run()
	return s
}

type event struct {
	at     time.Duration
	seq    uint64
	fn     func() // runs on the driver goroutine; must not block
	cancel bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Epoch.Add(s.now)
}

// Elapsed returns the virtual time elapsed since Epoch.
func (s *Scheduler) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Go spawns fn as a managed goroutine. It joins the back of the run queue
// and executes once the token reaches it; the scheduler will not advance
// virtual time while it is runnable.
func (s *Scheduler) Go(fn func()) {
	ch := make(chan struct{})
	s.mu.Lock()
	s.ready = append(s.ready, ch)
	s.driver.Signal()
	s.mu.Unlock()
	go func() {
		<-ch
		fn()
		s.release()
	}()
}

// Sleep blocks the calling managed goroutine for d of virtual time.
// Non-positive durations return immediately.
func (s *Scheduler) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	s.mu.Lock()
	s.scheduleLocked(s.now+d, func() { s.readyCh(ch) })
	s.releaseLocked()
	s.mu.Unlock()
	<-ch
}

// Timer is a handle to a pending AfterFunc callback.
type Timer struct {
	s  *Scheduler
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the
// callback from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.ev.cancel || t.ev.fn == nil {
		return false
	}
	t.ev.cancel = true
	return true
}

// AfterFunc schedules fn to run after d of virtual time. The callback runs
// on a new managed goroutine, so it may itself block on scheduler-aware
// primitives (mirroring time.AfterFunc semantics).
func (s *Scheduler) AfterFunc(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := s.scheduleLocked(s.now+d, func() { s.Go(fn) })
	return &Timer{s: s, ev: ev}
}

// Event schedules fn to run on the driver goroutine after d of virtual
// time. fn must not block; it is intended for lightweight bookkeeping such
// as packet delivery. The returned Timer can cancel it.
func (s *Scheduler) Event(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := s.scheduleLocked(s.now+d, fn)
	return &Timer{s: s, ev: ev}
}

func (s *Scheduler) scheduleLocked(at time.Duration, fn func()) *event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	ev := &event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	s.driver.Signal()
	return ev
}

// readyCh puts a parked goroutine's wake channel at the back of the run
// queue; the driver closes it when the token reaches it.
func (s *Scheduler) readyCh(ch chan struct{}) {
	s.mu.Lock()
	s.ready = append(s.ready, ch)
	s.driver.Signal()
	s.mu.Unlock()
}

// release gives up the run token on behalf of the calling managed
// goroutine (it is blocking or exiting).
func (s *Scheduler) release() {
	s.mu.Lock()
	s.releaseLocked()
	s.mu.Unlock()
}

func (s *Scheduler) releaseLocked() {
	s.running = false
	s.driver.Signal()
}

// run is the driver loop: pass the token FIFO through the run queue; when
// the queue drains, pop the earliest event, advance the clock, and execute
// it (holding the token so time cannot advance underneath it).
func (s *Scheduler) run() {
	s.mu.Lock()
	for {
		if s.stopped {
			s.mu.Unlock()
			return
		}
		if s.running {
			s.driver.Wait()
			continue
		}
		if len(s.ready) > 0 {
			ch := s.ready[0]
			s.ready = s.ready[1:]
			s.running = true
			close(ch)
			continue
		}
		if s.events.Len() == 0 {
			s.idle.Broadcast()
			s.driver.Wait()
			continue
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.cancel {
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		s.running = true
		s.mu.Unlock()
		fn()
		s.mu.Lock()
		s.running = false
	}
}

// Wait blocks the caller (an unmanaged goroutine, typically a test) until
// the simulation quiesces: no running or runnable managed goroutines and
// no pending events. Goroutines parked on Conds (e.g. servers in Accept)
// do not prevent quiescence.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !(!s.running && len(s.ready) == 0 && pendingLocked(&s.events) == 0) && !s.stopped {
		s.idle.Wait()
	}
}

func pendingLocked(h *eventHeap) int {
	n := 0
	for _, ev := range *h {
		if !ev.cancel {
			n++
		}
	}
	return n
}

// Stop halts the driver loop. Pending events never fire and parked
// goroutines are abandoned; callers should close their resources first.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.driver.Broadcast()
	s.idle.Broadcast()
	s.mu.Unlock()
}

// Cond is a scheduler-aware condition variable. It mirrors sync.Cond but
// hands the run token back to the scheduler across Wait, so virtual time
// can advance while goroutines are parked; signaled waiters rejoin the run
// queue in wake order.
type Cond struct {
	S *Scheduler
	L sync.Locker

	waiters []chan struct{}
}

// NewCond returns a Cond bound to scheduler s and locker l.
func NewCond(s *Scheduler, l sync.Locker) *Cond {
	return &Cond{S: s, L: l}
}

// Wait atomically unlocks c.L, parks the calling managed goroutine, and
// re-locks c.L before returning. Like sync.Cond, callers must re-check
// their predicate in a loop.
func (c *Cond) Wait() {
	ch := make(chan struct{})
	c.waiters = append(c.waiters, ch)
	c.L.Unlock()
	c.S.release()
	<-ch
	c.L.Lock()
}

// Signal wakes one parked waiter, if any. The caller must hold c.L.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	ch := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.S.readyCh(ch)
}

// Broadcast wakes all parked waiters. The caller must hold c.L.
func (c *Cond) Broadcast() {
	for _, ch := range c.waiters {
		c.S.readyCh(ch)
	}
	c.waiters = nil
}
