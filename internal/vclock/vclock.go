// Package vclock implements a deterministic virtual-time scheduler for
// discrete-event simulation.
//
// The scheduler tracks a set of managed goroutines and a set of timed
// events, and it runs the managed world SERIALIZED: exactly one managed
// goroutine (or event callback) executes at a time, holding the run token.
// Runnable goroutines queue FIFO; when the running goroutine blocks on a
// scheduler-aware primitive (Sleep, Cond.Wait, or exit), the token passes
// to the queue head, and only when the queue is empty does the driver pop
// the earliest pending event and jump the clock to its timestamp. A
// simulated 15-second page load therefore completes in microseconds of
// wall time, and — because every interleaving decision is made by the
// FIFO queue and the event order rather than the OS scheduler — a world's
// entire execution is a deterministic function of its inputs, even when
// hundreds of simulated clients run "concurrently". That property is what
// lets the experiment harness fan worlds out across OS threads and still
// produce byte-identical figures for any worker count: parallelism lives
// BETWEEN worlds, never inside one.
//
// Hot-path design. Pending events live in a two-level structure: a
// hashed timing wheel (wheelSlots slots of wheelTick each, each slot a
// small binary min-heap) absorbs the dominant short-deadline timers —
// packet deliveries, delayed ACKs, RTOs — and an overflow heap holds
// everything beyond the wheel horizon. Events are never migrated between
// the two; the driver takes the (at, seq) minimum of the wheel head and
// the heap top, which reproduces exactly the order a single global heap
// would produce, while each insert/remove sifts through a per-slot heap
// (tens of entries) instead of the whole pending set (tens of thousands
// in large worlds). Event structs are recycled through a freelist (Timer
// handles carry a generation number so a stale Stop on a recycled event
// is a no-op), and all events sharing the earliest virtual instant are
// drained in one pass into a reusable batch buffer instead of one heap
// operation per event. None of this changes execution order: within an
// instant events still run in schedule (seq) order, and goroutines woken
// by an event still preempt the rest of the batch, exactly as they
// preempted the heap before.
//
// The cardinal rule for code running under a Scheduler is that every
// blocking operation must be scheduler-aware. Blocking on a bare channel
// or sync primitive from a managed goroutine stalls virtual time forever,
// because the goroutine holds the run token and the scheduler will not
// advance the clock past it.
package vclock

import (
	"math/bits"
	"sync"
	"time"
)

// Epoch is the virtual time origin. A fixed, recognizable epoch makes
// simulated timestamps stable across runs and obvious in logs.
var Epoch = time.Date(2017, time.February, 1, 0, 0, 0, 0, time.UTC)

const (
	// wheelTick is the granularity of the timing wheel. One millisecond
	// keeps per-slot lists short (a saturated border link transmits
	// ~80 MTU packets per virtual millisecond) while letting the wheel
	// cover every RTT/RTO-scale timer the TCP model arms.
	wheelTick = time.Millisecond
	// wheelSlots is the number of wheel slots; wheelTick*wheelSlots is
	// the horizon (≈4s). Timers beyond the horizon — keepalives, fault
	// scripts, sweep cadences — go to the overflow heap.
	wheelSlots = 4096
	wheelWords = wheelSlots / 64
)

// Scheduler is a deterministic discrete-event scheduler. The zero value is
// not usable; call New.
type Scheduler struct {
	mu     sync.Mutex
	driver *sync.Cond // wakes the driver loop when the token frees or events arrive

	now     time.Duration   // virtual time elapsed since Epoch
	seq     uint64          // tie-breaker so same-timestamp events run in schedule order
	running bool            // the run token: a managed goroutine or event callback executes
	ready   []chan struct{} // FIFO of runnable goroutines awaiting the token
	stopped bool

	// Pending-event storage: timing wheel for short deadlines (each slot
	// its own (at, seq) min-heap), heap for the overflow, and a
	// live-event counter so Wait is O(1).
	wheel    [wheelSlots][]*event
	occupied [wheelWords]uint64 // bitmap of non-empty wheel slots
	nwheel   int                // events resident in the wheel (incl. cancelled)
	events   []*event           // overflow min-heap beyond the wheel horizon
	npending int                // scheduled, not yet executed or cancelled

	// Same-instant batch: all events sharing the earliest timestamp,
	// drained in one pass and executed in seq order.
	batch    []*event
	batchPos int

	free []*event // event freelist; structs are recycled via generations

	idle *sync.Cond // wakes Wait() callers when the world quiesces
}

// New returns a running Scheduler with virtual time at Epoch.
func New() *Scheduler {
	s := &Scheduler{}
	s.driver = sync.NewCond(&s.mu)
	s.idle = sync.NewCond(&s.mu)
	go s.run()
	return s
}

type event struct {
	at     time.Duration
	seq    uint64
	gen    uint64 // bumped on recycle; stale Timer handles stop matching
	fn     func() // runs on the driver goroutine; must not block
	cancel bool
}

func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush/heapPop implement a plain binary min-heap over (at, seq) with
// direct slice access — no container/heap interface dispatch or interface
// boxing on the hot path. heapPop nils the vacated tail slot so the
// backing array never retains a popped *event.
func heapPush(h []*event, ev *event) []*event {
	h = append(h, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPop(h []*event) ([]*event, *event) {
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil // release the slot so the backing array doesn't retain the event
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && evLess(h[r], h[l]) {
			min = r
		}
		if !evLess(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return h, ev
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Epoch.Add(s.now)
}

// Elapsed returns the virtual time elapsed since Epoch.
func (s *Scheduler) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Go spawns fn as a managed goroutine. It joins the back of the run queue
// and executes once the token reaches it; the scheduler will not advance
// virtual time while it is runnable.
func (s *Scheduler) Go(fn func()) {
	ch := make(chan struct{})
	s.mu.Lock()
	s.ready = append(s.ready, ch)
	s.driver.Signal()
	s.mu.Unlock()
	go func() {
		<-ch
		fn()
		s.release()
	}()
}

// Sleep blocks the calling managed goroutine for d of virtual time.
// Non-positive durations return immediately.
func (s *Scheduler) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	s.mu.Lock()
	s.scheduleLocked(s.now+d, func() { s.readyCh(ch) })
	s.releaseLocked()
	s.mu.Unlock()
	<-ch
}

// Timer is a handle to a pending AfterFunc/Event callback. The handle
// snapshots the event's generation, so it stays valid (as a no-op) after
// the event fires and its struct is recycled for a later timer.
type Timer struct {
	s   *Scheduler
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the call prevented the
// callback from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.ev.gen != t.gen || t.ev.cancel || t.ev.fn == nil {
		return false
	}
	t.ev.cancel = true
	t.s.npending--
	return true
}

// AfterFunc schedules fn to run after d of virtual time. The callback runs
// on a new managed goroutine, so it may itself block on scheduler-aware
// primitives (mirroring time.AfterFunc semantics).
func (s *Scheduler) AfterFunc(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := s.scheduleLocked(s.now+d, func() { s.Go(fn) })
	return &Timer{s: s, ev: ev, gen: ev.gen}
}

// Event schedules fn to run on the driver goroutine after d of virtual
// time. fn must not block; it is intended for lightweight bookkeeping such
// as packet delivery. The returned Timer can cancel it.
func (s *Scheduler) Event(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := s.scheduleLocked(s.now+d, fn)
	return &Timer{s: s, ev: ev, gen: ev.gen}
}

func (s *Scheduler) scheduleLocked(at time.Duration, fn func()) *event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	ev := s.allocEventLocked()
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	ev.cancel = false
	s.npending++
	if slot := at / wheelTick; slot-s.now/wheelTick < wheelSlots {
		idx := int(slot % wheelSlots)
		s.wheel[idx] = heapPush(s.wheel[idx], ev)
		s.occupied[idx/64] |= 1 << uint(idx%64)
		s.nwheel++
	} else {
		s.events = heapPush(s.events, ev)
	}
	s.driver.Signal()
	return ev
}

func (s *Scheduler) allocEventLocked() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// freeEventLocked returns a dead event to the freelist. Bumping the
// generation invalidates every outstanding Timer handle to it.
func (s *Scheduler) freeEventLocked(ev *event) {
	ev.gen++
	ev.fn = nil
	s.free = append(s.free, ev)
}

// wheelScanLocked returns the index of the first occupied slot in the
// horizon starting at the slot containing virtual now, or -1. Cancelled
// stragglers from a previous wheel lap (at < now) are purged as it scans,
// so a returned slot's head is a live or same-lap event.
func (s *Scheduler) wheelScanLocked() int {
	if s.nwheel == 0 {
		return -1
	}
	cur := int(s.now / wheelTick % wheelSlots)
	for scanned := 0; scanned < wheelSlots; {
		word := cur / 64
		w := s.occupied[word] >> uint(cur%64)
		if w == 0 {
			step := 64 - cur%64
			cur = (cur + step) % wheelSlots
			scanned += step
			continue
		}
		step := bits.TrailingZeros64(w)
		idx := (cur + step) % wheelSlots
		if s.purgeSlotLocked(idx) {
			return idx
		}
		cur = (idx + 1) % wheelSlots
		scanned += step + 1
	}
	return -1
}

// purgeSlotLocked pops cancelled events off the head of slot idx's heap,
// clearing the occupancy bit if the slot empties. It reports whether a
// live event remains at the head.
func (s *Scheduler) purgeSlotLocked(idx int) bool {
	list := s.wheel[idx]
	for len(list) > 0 && list[0].cancel {
		var dead *event
		list, dead = heapPop(list)
		s.freeEventLocked(dead)
		s.nwheel--
	}
	s.wheel[idx] = list
	if len(list) == 0 {
		s.occupied[idx/64] &^= 1 << uint(idx%64)
		return false
	}
	return true
}

// popMinLocked removes and returns the earliest live event across the
// wheel and the overflow heap (cancelled heap entries are freed in
// passing), or nil when none is pending.
func (s *Scheduler) popMinLocked() *event {
	for {
		idx := s.wheelScanLocked()
		var wev *event
		if idx >= 0 {
			wev = s.wheel[idx][0]
		}
		if len(s.events) == 0 {
			if wev == nil {
				return nil
			}
			s.wheelPopLocked(idx)
			return wev
		}
		hev := s.events[0]
		if wev != nil && evLess(wev, hev) {
			s.wheelPopLocked(idx)
			return wev
		}
		s.events, _ = heapPop(s.events)
		if hev.cancel {
			s.freeEventLocked(hev)
			continue
		}
		return hev
	}
}

func (s *Scheduler) wheelPopLocked(idx int) {
	list, _ := heapPop(s.wheel[idx])
	s.wheel[idx] = list
	s.nwheel--
	if len(list) == 0 {
		s.occupied[idx/64] &^= 1 << uint(idx%64)
	}
}

// drainBatchLocked fills s.batch with every live event at the earliest
// pending instant, advancing the clock to it. It reports whether any
// event was found.
func (s *Scheduler) drainBatchLocked() bool {
	first := s.popMinLocked()
	if first == nil {
		return false
	}
	s.now = first.at
	s.batch = append(s.batch, first)
	// Pull the rest of the instant. Same-at events can only live in the
	// instant's own wheel slot or atop the overflow heap, so no bitmap
	// scan is needed. Events scheduled later at this same instant carry
	// larger seq values than anything drained here, so they sort after
	// the batch exactly as they would in a single heap.
	idx := int(first.at / wheelTick % wheelSlots)
	for {
		var next *event
		if s.nwheel > 0 && s.purgeSlotLocked(idx) && s.wheel[idx][0].at == first.at {
			next = s.wheel[idx][0]
			s.wheelPopLocked(idx)
		} else if len(s.events) > 0 && s.events[0].at == first.at {
			s.events, next = heapPop(s.events)
			if next.cancel {
				s.freeEventLocked(next)
				continue
			}
		} else {
			return true
		}
		s.batch = append(s.batch, next)
	}
}

// readyCh puts a parked goroutine's wake channel at the back of the run
// queue; the driver closes it when the token reaches it.
func (s *Scheduler) readyCh(ch chan struct{}) {
	s.mu.Lock()
	s.ready = append(s.ready, ch)
	s.driver.Signal()
	s.mu.Unlock()
}

// release gives up the run token on behalf of the calling managed
// goroutine (it is blocking or exiting).
func (s *Scheduler) release() {
	s.mu.Lock()
	s.releaseLocked()
	s.mu.Unlock()
}

func (s *Scheduler) releaseLocked() {
	s.running = false
	s.driver.Signal()
}

// run is the driver loop: pass the token FIFO through the run queue; when
// the queue drains, execute the next event of the current same-instant
// batch (refilling the batch from the wheel/heap when it empties), holding
// the token so time cannot advance underneath it. Goroutines made runnable
// by an event callback run before the rest of the batch, preserving the
// exact interleaving of the one-pop-per-iteration driver this replaces.
func (s *Scheduler) run() {
	s.mu.Lock()
	for {
		if s.stopped {
			s.mu.Unlock()
			return
		}
		if s.running {
			s.driver.Wait()
			continue
		}
		if len(s.ready) > 0 {
			ch := s.ready[0]
			s.ready = s.ready[1:]
			s.running = true
			close(ch)
			continue
		}
		if s.batchPos < len(s.batch) {
			ev := s.batch[s.batchPos]
			s.batch[s.batchPos] = nil
			s.batchPos++
			if ev.cancel {
				// Cancelled after the drain, by an earlier event in
				// this same batch.
				s.freeEventLocked(ev)
				continue
			}
			fn := ev.fn
			s.npending--
			s.freeEventLocked(ev)
			s.running = true
			s.mu.Unlock()
			fn()
			s.mu.Lock()
			s.running = false
			continue
		}
		s.batch = s.batch[:0]
		s.batchPos = 0
		if !s.drainBatchLocked() {
			s.idle.Broadcast()
			s.driver.Wait()
		}
	}
}

// Wait blocks the caller (an unmanaged goroutine, typically a test) until
// the simulation quiesces: no running or runnable managed goroutines and
// no pending events. Goroutines parked on Conds (e.g. servers in Accept)
// do not prevent quiescence.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !(!s.running && len(s.ready) == 0 && s.npending == 0) && !s.stopped {
		s.idle.Wait()
	}
}

// Stop halts the driver loop. Pending events never fire and parked
// goroutines are abandoned; callers should close their resources first.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.driver.Broadcast()
	s.idle.Broadcast()
	s.mu.Unlock()
}

// Cond is a scheduler-aware condition variable. It mirrors sync.Cond but
// hands the run token back to the scheduler across Wait, so virtual time
// can advance while goroutines are parked; signaled waiters rejoin the run
// queue in wake order.
type Cond struct {
	S *Scheduler
	L sync.Locker

	waiters []chan struct{}
}

// NewCond returns a Cond bound to scheduler s and locker l.
func NewCond(s *Scheduler, l sync.Locker) *Cond {
	return &Cond{S: s, L: l}
}

// Wait atomically unlocks c.L, parks the calling managed goroutine, and
// re-locks c.L before returning. Like sync.Cond, callers must re-check
// their predicate in a loop.
func (c *Cond) Wait() {
	ch := make(chan struct{})
	c.waiters = append(c.waiters, ch)
	c.L.Unlock()
	c.S.release()
	<-ch
	c.L.Lock()
}

// Signal wakes one parked waiter, if any. The caller must hold c.L.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	ch := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.S.readyCh(ch)
}

// Broadcast wakes all parked waiters. The caller must hold c.L.
func (c *Cond) Broadcast() {
	for _, ch := range c.waiters {
		c.S.readyCh(ch)
	}
	c.waiters = nil
}
