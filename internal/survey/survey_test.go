package survey

import (
	"math"
	"strings"
	"testing"
)

func TestPublishedDistributionSumsToOne(t *testing.T) {
	total := 0.0
	for _, p := range Published() {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("distribution sums to %v", total)
	}
}

func TestPublishedMarginals(t *testing.T) {
	d := Published()
	if math.Abs(d[MethodNone]-0.74) > 1e-9 {
		t.Errorf("no-bypass = %v, want 0.74", d[MethodNone])
	}
	// Among bypassers: VPN 43%, Tor 2%, SS 21%, other 34%.
	bypass := 1 - d[MethodNone]
	vpn := (d[MethodNativeVPN] + d[MethodOpenVPN]) / bypass
	if math.Abs(vpn-0.43) > 1e-9 {
		t.Errorf("VPN share of bypassers = %v, want 0.43", vpn)
	}
	if math.Abs(d[MethodTor]/bypass-0.02) > 1e-9 {
		t.Errorf("Tor share = %v, want 0.02", d[MethodTor]/bypass)
	}
	// Within VPN users: 93% native, 7% OpenVPN.
	if native := d[MethodNativeVPN] / (d[MethodNativeVPN] + d[MethodOpenVPN]); math.Abs(native-0.93) > 1e-9 {
		t.Errorf("native share of VPN users = %v, want 0.93", native)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Respondents, 7)
	b := Generate(Respondents, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed generated different populations")
		}
	}
}

func TestGenerateConvergesToPublished(t *testing.T) {
	const n = 200000
	rs := Generate(n, 99)
	tally := Tally(rs)
	for method, want := range Published() {
		got := float64(tally[method]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s: generated share %v, published %v", method, got, want)
		}
	}
}

func TestBypassShareNearPublished(t *testing.T) {
	rs := Generate(Respondents, 1)
	share := BypassShare(rs)
	if share < 0.18 || share > 0.34 { // 26% ± sampling noise at n=371
		t.Errorf("bypass share = %v", share)
	}
}

func TestFormatFigure3(t *testing.T) {
	out := FormatFigure3(Generate(Respondents, 1))
	for _, want := range []string{"371", "bypass the GFW", "native VPN", "Shadowsocks", "Tor"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestTallyCountsEveryone(t *testing.T) {
	rs := Generate(1000, 3)
	total := 0
	for _, c := range Tally(rs) {
		total += c
	}
	if total != 1000 {
		t.Errorf("tally total = %d", total)
	}
}
