// Package survey reproduces Fig. 3: the July-2015 BBS survey of 371
// Tsinghua faculty and students on how they access Google Scholar. The
// published marginals are encoded as data; a deterministic resampler
// regenerates a synthetic respondent population whose distribution
// converges to the published one, which is what the Fig. 3 bench prints.
package survey

import (
	"fmt"
	"sort"
)

// Respondents is the survey's sample size.
const Respondents = 371

// Method labels as the figure reports them.
const (
	MethodNone        = "no-bypass"
	MethodNativeVPN   = "native-vpn"
	MethodOpenVPN     = "openvpn"
	MethodTor         = "tor"
	MethodShadowsocks = "shadowsocks"
	MethodOther       = "other" // Free Gate, hosts-file edits, web proxies
)

// Published is the distribution reported in the paper: 26% of scholars
// bypass the GFW; of those, 43% use VPNs (93% native, 7% OpenVPN), 2%
// Tor, 21% Shadowsocks, and 34% other methods.
func Published() map[string]float64 {
	const bypass = 0.26
	return map[string]float64{
		MethodNone:        1 - bypass,
		MethodNativeVPN:   bypass * 0.43 * 0.93,
		MethodOpenVPN:     bypass * 0.43 * 0.07,
		MethodTor:         bypass * 0.02,
		MethodShadowsocks: bypass * 0.21,
		MethodOther:       bypass * 0.34,
	}
}

// Respondent is one synthetic survey answer.
type Respondent struct {
	ID     int
	Method string
}

// Generate resamples n respondents from the published distribution with
// a deterministic low-discrepancy sequence seeded by seed, so repeated
// runs regenerate the same population.
func Generate(n int, seed uint64) []Respondent {
	dist := Published()
	methods := make([]string, 0, len(dist))
	for m := range dist {
		methods = append(methods, m)
	}
	sort.Strings(methods)

	// Cumulative distribution.
	cum := make([]float64, len(methods))
	total := 0.0
	for i, m := range methods {
		total += dist[m]
		cum[i] = total
	}

	out := make([]Respondent, n)
	x := seed | 1
	for i := 0; i < n; i++ {
		// splitmix64 stream for reproducible draws.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		u := float64(z>>11) / float64(uint64(1)<<53) * total
		idx := sort.SearchFloat64s(cum, u)
		if idx >= len(methods) {
			idx = len(methods) - 1
		}
		out[i] = Respondent{ID: i + 1, Method: methods[idx]}
	}
	return out
}

// Tally counts methods over a respondent set.
func Tally(rs []Respondent) map[string]int {
	t := make(map[string]int)
	for _, r := range rs {
		t[r.Method]++
	}
	return t
}

// BypassShare returns the fraction of respondents using any bypass
// method.
func BypassShare(rs []Respondent) float64 {
	n := 0
	for _, r := range rs {
		if r.Method != MethodNone {
			n++
		}
	}
	return float64(n) / float64(len(rs))
}

// FormatFigure3 renders the tally in the layout of the paper's pie chart
// annotations.
func FormatFigure3(rs []Respondent) string {
	t := Tally(rs)
	n := len(rs)
	bypass := 0
	for m, c := range t {
		if m != MethodNone {
			bypass += c
		}
	}
	line := func(label string, c int) string {
		return fmt.Sprintf("  %-13s %4d  (%5.1f%% of bypassers, %4.1f%% overall)\n",
			label, c, 100*float64(c)/float64(maxInt(bypass, 1)), 100*float64(c)/float64(n))
	}
	out := fmt.Sprintf("Figure 3 — access methods among %d scholars\n", n)
	out += fmt.Sprintf("  bypass the GFW: %d (%.0f%%)\n", bypass, 100*float64(bypass)/float64(n))
	vpn := t[MethodNativeVPN] + t[MethodOpenVPN]
	out += line("VPN (all)", vpn)
	out += line("  native VPN", t[MethodNativeVPN])
	out += line("  OpenVPN", t[MethodOpenVPN])
	out += line("Tor", t[MethodTor])
	out += line("Shadowsocks", t[MethodShadowsocks])
	out += line("Other", t[MethodOther])
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
