// Package obs is the repo's observability layer: a named-metrics registry
// built on the lock-free primitives in internal/metrics, plus a structured
// per-hop flow tracer (trace.go) that records span events on the virtual
// clock.
//
// Design constraints, in order:
//
//  1. Zero allocation on the hot path. Counter/Gauge/Histogram handles are
//     resolved by name ONCE at component construction; after that every
//     Inc/Observe is a plain atomic add. Snapshot() is the only operation
//     that allocates, and it runs off the measurement hot path.
//  2. Nil-safe. Every component accepts a nil *Registry (and a nil *Trace)
//     and keeps working untraced, so the simulator's deterministic figures
//     and the real-socket deployment share the exact same code paths.
//  3. Additive registration. Components that already own their counters
//     (fleet pick counts, domestic request counts, GFW stats) register
//     read-closures instead of migrating storage; Snapshot sums every
//     source registered under the same name, so two core.Remote instances
//     both publishing "core.remote.streams_opened" aggregate naturally.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"scholarcloud/internal/metrics"
)

// Registry is a named collection of counters, gauges and histograms.
// The zero value is not usable; call NewRegistry. All methods are safe for
// concurrent use, and every method is a no-op (returning detached metrics
// where a return value is needed) when the receiver is nil.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*metrics.Counter
	gauges       map[string]*metrics.Gauge
	hists        map[string]*Histogram
	counterFuncs map[string][]func() int64
	gaugeFuncs   map[string][]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*metrics.Counter),
		gauges:       make(map[string]*metrics.Gauge),
		hists:        make(map[string]*Histogram),
		counterFuncs: make(map[string][]func() int64),
		gaugeFuncs:   make(map[string][]func() int64),
	}
}

// Counter returns the registry-owned counter with the given name, creating
// it on first use. Calling Counter twice with the same name returns the
// same handle. On a nil registry it returns a detached counter that is
// never snapshotted, so callers can instrument unconditionally.
func (r *Registry) Counter(name string) *metrics.Counter {
	if r == nil {
		return new(metrics.Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(metrics.Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the registry-owned gauge with the given name, creating it
// on first use. Nil-safe like Counter.
func (r *Registry) Gauge(name string) *metrics.Gauge {
	if r == nil {
		return new(metrics.Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(metrics.Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the registry-owned histogram with the given name,
// creating it (with the default latency bucket bounds) on first use.
// Nil-safe like Counter.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return newHistogram(defaultBounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(defaultBounds)
		r.hists[name] = h
	}
	return h
}

// RegisterCounter publishes a component-owned counter under name. Multiple
// registrations under the same name are summed at snapshot time.
func (r *Registry) RegisterCounter(name string, c *metrics.Counter) {
	r.RegisterFunc(name, c.Value)
}

// RegisterGauge publishes a component-owned gauge under name. Multiple
// registrations under the same name are summed at snapshot time.
func (r *Registry) RegisterGauge(name string, g *metrics.Gauge) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = append(r.gaugeFuncs[name], g.Value)
}

// RegisterFunc publishes an arbitrary int64 reader as a counter source
// under name. The function is called (off the hot path) on every Snapshot;
// it must not call back into the registry.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[name] = append(r.counterFuncs[name], fn)
}

// RegisterGaugeFunc publishes an arbitrary int64 reader as a gauge source
// under name — for point-in-time readings (ring membership, active shard
// counts, rebalance timestamps) that a settled-snapshot Sub must carry
// through at face value instead of differencing like counters. Like
// RegisterFunc, fn is called on every Snapshot and must not call back
// into the registry.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = append(r.gaugeFuncs[name], fn)
}

// Snapshot captures the current value of every registered metric. The
// result is a plain value type safe to retain, diff and render after the
// registry keeps moving. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] += c.Value()
	}
	for name, fns := range r.counterFuncs {
		for _, fn := range fns {
			s.Counters[name] += fn()
		}
	}
	for name, g := range r.gauges {
		s.Gauges[name] += g.Value()
	}
	for name, fns := range r.gaugeFuncs {
		for _, fn := range fns {
			s.Gauges[name] += fn()
		}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a Registry's metrics.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Counter returns the captured value of the named counter (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the captured value of the named gauge (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Sub returns the delta snapshot s - prev: counters and histogram counts
// are subtracted (a counter absent from prev is treated as 0); gauges keep
// their current value, since a gauge delta is rarely meaningful.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h.sub(prev.Histograms[name])
	}
	return out
}

// Merge returns the element-wise sum of s and other: counters, gauges and
// histograms present in either snapshot are added together. It is how the
// parallel experiment harness folds many per-world registries into one
// cross-world aggregate; merging in any order yields the same result, so
// a worker pool can combine shards deterministically by folding them in
// job order.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(other.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)+len(other.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(other.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] += v
	}
	for name, v := range other.Counters {
		out.Counters[name] += v
	}
	for name, v := range s.Gauges {
		out.Gauges[name] += v
	}
	for name, v := range other.Gauges {
		out.Gauges[name] += v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h
	}
	for name, h := range other.Histograms {
		out.Histograms[name] = out.Histograms[name].merge(h)
	}
	return out
}

// WriteText renders the snapshot as sorted "name=value" lines, one metric
// per line — the wire format served on the deployment's /metrics endpoint.
// Histograms expand to _count, _sum_seconds and per-bucket _le_* lines.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+4*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s=%d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s=%d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s_count=%d", name, h.Count))
		lines = append(lines, fmt.Sprintf("%s_sum_seconds=%.6f", name, h.Sum))
		for i, b := range h.Bounds {
			lines = append(lines, fmt.Sprintf("%s_le_%g=%d", name, b, h.Buckets[i]))
		}
		lines = append(lines, fmt.Sprintf("%s_le_inf=%d", name, h.Buckets[len(h.Buckets)-1]))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// defaultBounds are exponential latency buckets from 1 ms to ~64 s,
// covering everything from a LAN hop to a censored-path page load.
var defaultBounds = []float64{
	0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128,
	0.256, 0.512, 1, 2, 4, 8, 16, 32, 64,
}

// Histogram is a fixed-bucket latency histogram. Observe is a few atomic
// adds — no locks, no allocation — so it is safe on packet-rate paths.
type Histogram struct {
	bounds []float64
	// buckets[i] counts observations <= bounds[i]; the final extra bucket
	// counts observations above every bound.
	buckets []metrics.Counter
	count   metrics.Counter
	// sum is kept in integer microseconds so it stays a single atomic add.
	sumMicros metrics.Counter
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  bounds,
		buckets: make([]metrics.Counter, len(bounds)+1),
	}
}

// Observe records a value in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.buckets[i].Inc()
	h.count.Inc()
	h.sumMicros.Add(int64(seconds * 1e6))
}

// ObserveDuration records a duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Value(),
		Sum:     float64(h.sumMicros.Value()) / 1e6,
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Value()
	}
	return s
}

// HistogramSnapshot is the captured state of a Histogram. Buckets has one
// more entry than Bounds: the overflow bucket.
type HistogramSnapshot struct {
	Bounds  []float64
	Buckets []int64
	Count   int64
	Sum     float64 // seconds
}

// merge returns the bucket-wise sum of h and other. An empty (zero-value)
// side passes the other through unchanged, so folding shards into a zero
// Snapshot works without special-casing the first histogram seen.
func (h HistogramSnapshot) merge(other HistogramSnapshot) HistogramSnapshot {
	if h.Count == 0 && len(h.Buckets) == 0 {
		return other
	}
	if other.Count == 0 && len(other.Buckets) == 0 {
		return h
	}
	out := HistogramSnapshot{
		Bounds:  h.Bounds,
		Buckets: make([]int64, len(h.Buckets)),
		Count:   h.Count + other.Count,
		Sum:     h.Sum + other.Sum,
	}
	copy(out.Buckets, h.Buckets)
	for i, v := range other.Buckets {
		if i < len(out.Buckets) {
			out.Buckets[i] += v
		}
	}
	return out
}

func (h HistogramSnapshot) sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds:  h.Bounds,
		Buckets: make([]int64, len(h.Buckets)),
		Count:   h.Count - prev.Count,
		Sum:     h.Sum - prev.Sum,
	}
	for i := range h.Buckets {
		v := h.Buckets[i]
		if i < len(prev.Buckets) {
			v -= prev.Buckets[i]
		}
		out.Buckets[i] = v
	}
	return out
}
