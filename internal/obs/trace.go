package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"scholarcloud/internal/netx"
)

// Span is one event on a traced flow: a timestamped (virtual-clock) record
// of something a layer did to the page load — a stream opened, a GFW
// verdict, a dropped packet, a fleet pick, a retransmission, an origin
// response.
type Span struct {
	// At is the offset from the trace's start on the trace's clock.
	At time.Duration
	// Layer names the subsystem that emitted the span: "http", "core",
	// "fleet", "gfw", "netsim", "mux".
	Layer string
	// Event is the short machine-stable event name, e.g. "classify",
	// "stream-open", "drop", "retransmit".
	Event string
	// Detail is free-form human text: addresses, classes, byte counts.
	Detail string
}

// Trace collects spans for one flow (typically one page load). All methods
// are safe for concurrent use and are no-ops on a nil receiver, so
// instrumented layers can call Add unconditionally through an
// atomic.Pointer that is usually nil.
type Trace struct {
	clock netx.Clock
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts an empty trace whose span offsets are measured on clock
// from now.
func NewTrace(clock netx.Clock) *Trace {
	return &Trace{clock: clock, start: clock.Now()}
}

// Add records a span. Nil-safe: a nil trace discards the event without
// touching its arguments, so callers on hot paths pay only a nil check.
func (t *Trace) Add(layer, event, detail string) {
	if t == nil {
		return
	}
	at := t.clock.Now().Sub(t.start)
	t.mu.Lock()
	t.spans = append(t.spans, Span{At: at, Layer: layer, Event: event, Detail: detail})
	t.mu.Unlock()
}

// Addf is Add with a format string. The formatting happens only when the
// trace is live, so disabled call sites allocate nothing.
func (t *Trace) Addf(layer, event, format string, args ...any) {
	if t == nil {
		return
	}
	t.Add(layer, event, fmt.Sprintf(format, args...))
}

// Spans returns a copy of the recorded spans in arrival order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Count returns how many spans match the given layer and event. An empty
// layer or event matches everything.
func (t *Trace) Count(layer, event string) int {
	n := 0
	for _, s := range t.Spans() {
		if (layer == "" || s.Layer == layer) && (event == "" || s.Event == event) {
			n++
		}
	}
	return n
}

// Render formats the trace as a per-hop text table: one line per span with
// the virtual-clock offset, layer, event and detail, followed by a footer
// summarizing span counts per layer.
func (t *Trace) Render(title string) string {
	spans := t.Spans()
	var b strings.Builder
	fmt.Fprintf(&b, "== flow trace: %s (%d spans) ==\n", title, len(spans))
	layerW, eventW := 5, 5
	for _, s := range spans {
		if len(s.Layer) > layerW {
			layerW = len(s.Layer)
		}
		if len(s.Event) > eventW {
			eventW = len(s.Event)
		}
	}
	perLayer := map[string]int{}
	for _, s := range spans {
		fmt.Fprintf(&b, "  +%11.6fs  %-*s  %-*s  %s\n",
			s.At.Seconds(), layerW, s.Layer, eventW, s.Event, s.Detail)
		perLayer[s.Layer]++
	}
	layers := make([]string, 0, len(perLayer))
	for l := range perLayer {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	parts := make([]string, 0, len(layers))
	for _, l := range layers {
		parts = append(parts, fmt.Sprintf("%s=%d", l, perLayer[l]))
	}
	fmt.Fprintf(&b, "  -- spans by layer: %s\n", strings.Join(parts, " "))
	return b.String()
}
