package obs

import (
	"strings"
	"testing"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netx"
)

type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time                             { return c.now }
func (c *fakeClock) Sleep(d time.Duration)                      { c.now = c.now.Add(d) }
func (c *fakeClock) AfterFunc(time.Duration, func()) netx.Timer { return nil }
func (c *fakeClock) advance(d time.Duration)                    { c.now = c.now.Add(d) }

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("layer.hits")
	if r.Counter("layer.hits") != c {
		t.Fatalf("Counter is not idempotent per name")
	}
	c.Add(3)
	r.Gauge("layer.inflight").Set(7)

	var external metrics.Counter
	external.Add(5)
	r.RegisterCounter("layer.hits", &external) // summed with the owned counter
	r.RegisterFunc("layer.derived", func() int64 { return 11 })

	s := r.Snapshot()
	if got := s.Counter("layer.hits"); got != 8 {
		t.Fatalf("layer.hits = %d, want 8 (owned 3 + registered 5)", got)
	}
	if got := s.Counter("layer.derived"); got != 11 {
		t.Fatalf("layer.derived = %d, want 11", got)
	}
	if got := s.Gauge("layer.inflight"); got != 7 {
		t.Fatalf("layer.inflight = %d, want 7", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("lat")
	c.Add(2)
	h.Observe(0.5)
	before := r.Snapshot()
	c.Add(5)
	h.Observe(1.5)
	h.Observe(2.5)
	delta := r.Snapshot().Sub(before)
	if got := delta.Counter("x"); got != 5 {
		t.Fatalf("delta x = %d, want 5", got)
	}
	hs := delta.Histograms["lat"]
	if hs.Count != 2 {
		t.Fatalf("delta histogram count = %d, want 2", hs.Count)
	}
	if hs.Sum < 3.9 || hs.Sum > 4.1 {
		t.Fatalf("delta histogram sum = %v, want ~4.0", hs.Sum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.1, 1})
	h.Observe(0.05) // bucket 0
	h.Observe(0.5)  // bucket 1
	h.Observe(5)    // overflow bucket
	s := h.snapshot()
	want := []int64{1, 1, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(1)
	r.RegisterFunc("d", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if got != "a.count=1\nb.count=2\n" {
		t.Fatalf("WriteText = %q, want sorted key=value lines", got)
	}
}

func TestTraceRecordsAndRenders(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	tr := NewTrace(clk)
	tr.Add("http", "visit-start", "http://scholar.google.com/")
	clk.advance(40 * time.Millisecond)
	tr.Addf("gfw", "classify", "class=%s verdict=%s", "encrypted", "pass")
	clk.advance(10 * time.Millisecond)
	tr.Add("core", "stream-open", "S scholar.google.com:443")

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[1].At != 40*time.Millisecond {
		t.Fatalf("span 1 at %v, want 40ms", spans[1].At)
	}
	if got := tr.Count("gfw", "classify"); got != 1 {
		t.Fatalf("Count(gfw, classify) = %d, want 1", got)
	}
	if got := tr.Count("", ""); got != 3 {
		t.Fatalf("Count wildcard = %d, want 3", got)
	}
	out := tr.Render("test load")
	for _, want := range []string{"3 spans", "classify", "class=encrypted verdict=pass", "spans by layer: core=1 gfw=1 http=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Add("x", "y", "z")
	tr.Addf("x", "y", "%d", 1)
	if tr.Spans() != nil || tr.Count("", "") != 0 {
		t.Fatal("nil trace should record nothing")
	}
}

func BenchmarkCounterHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.hits")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench.lat")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

func BenchmarkNilTraceAdd(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Addf("gfw", "classify", "class=%s", "encrypted")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("visits").Add(3)
	a.Gauge("depth").Set(2)
	a.Histogram("plt").Observe(0.5)
	a.Histogram("plt").Observe(4)
	a.Counter("only_a").Inc()

	b := NewRegistry()
	b.Counter("visits").Add(4)
	b.Gauge("depth").Set(5)
	b.Histogram("plt").Observe(0.5)
	b.Counter("only_b").Inc()
	b.Histogram("only_b_hist").Observe(1)

	m := a.Snapshot().Merge(b.Snapshot())
	if got := m.Counter("visits"); got != 7 {
		t.Errorf("merged visits = %d, want 7", got)
	}
	if m.Counter("only_a") != 1 || m.Counter("only_b") != 1 {
		t.Errorf("one-sided counters = %d/%d, want 1/1", m.Counter("only_a"), m.Counter("only_b"))
	}
	if got := m.Gauge("depth"); got != 7 {
		t.Errorf("merged depth gauge = %d, want 7", got)
	}
	h := m.Histograms["plt"]
	if h.Count != 3 || h.Sum != 5 {
		t.Errorf("merged plt histogram count=%d sum=%v, want 3/5", h.Count, h.Sum)
	}
	var buckets int64
	for _, v := range h.Buckets {
		buckets += v
	}
	if buckets != 3 {
		t.Errorf("merged plt bucket total = %d, want 3", buckets)
	}
	if m.Histograms["only_b_hist"].Count != 1 {
		t.Errorf("one-sided histogram lost: %+v", m.Histograms["only_b_hist"])
	}

	// Folding shards in any order yields the same aggregate.
	m2 := b.Snapshot().Merge(a.Snapshot())
	if m2.Counter("visits") != m.Counter("visits") || m2.Histograms["plt"].Count != m.Histograms["plt"].Count {
		t.Error("Merge is not commutative")
	}
	// Folding into a zero snapshot works (the harness starts from one).
	z := Snapshot{}.Merge(a.Snapshot())
	if z.Counter("visits") != 3 || z.Histograms["plt"].Count != 2 {
		t.Errorf("zero-base merge = %+v", z)
	}
}
