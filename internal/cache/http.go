package cache

// HTTP-aware freshness and admission. The simulator speaks a compact
// HTTP/1.1 subset (internal/httpsim), so this intentionally implements
// the load-bearing sliver of RFC 9111: Cache-Control max-age / no-store /
// no-cache / private, Etag-based revalidation, and a heuristic default
// TTL for responses that carry no explicit metadata.

import (
	"strconv"
	"strings"
	"time"

	"scholarcloud/internal/httpsim"
)

// perEntryOverhead approximates bookkeeping cost (key, list element, map
// slot) charged against the byte budget in addition to the payload.
const perEntryOverhead = 64

// responseCost is the budget charge for storing resp.
func responseCost(resp *httpsim.Response) int64 {
	n := int64(len(resp.Body)) + perEntryOverhead
	for k, v := range resp.Header {
		n += int64(len(k) + len(v))
	}
	return n
}

// admit reports whether resp may be stored in a shared cache. Only
// complete 200 responses are cached; responses that set cookies or
// declare themselves no-store/private are per-user by definition and
// must never be shared. Request cookies are deliberately NOT consulted:
// a shared cache keys on the resource, and the origin's response headers
// are what decide whether the representation is user-specific.
func admit(resp *httpsim.Response, cost, maxObjectBytes int64) bool {
	if resp.StatusCode != 200 {
		return false
	}
	if cost > maxObjectBytes {
		return false
	}
	if _, ok := resp.Header["Set-Cookie"]; ok {
		return false
	}
	cc := parseCacheControl(resp.Header["Cache-Control"])
	if cc.noStore || cc.private {
		return false
	}
	return true
}

// freshnessTTL returns how long a response may be served without
// revalidation: an explicit max-age wins, no-cache forces immediate
// revalidation, and anything else gets the heuristic default.
func freshnessTTL(header map[string]string, def time.Duration) time.Duration {
	cc := parseCacheControl(header["Cache-Control"])
	if cc.noCache {
		return 0
	}
	if cc.hasMaxAge {
		return time.Duration(cc.maxAge) * time.Second
	}
	return def
}

type cacheControl struct {
	noStore   bool
	noCache   bool
	private   bool
	hasMaxAge bool
	maxAge    int64
}

func parseCacheControl(v string) cacheControl {
	var cc cacheControl
	for _, part := range strings.Split(v, ",") {
		part = strings.ToLower(strings.TrimSpace(part))
		switch {
		case part == "no-store":
			cc.noStore = true
		case part == "no-cache":
			cc.noCache = true
		case part == "private":
			cc.private = true
		case strings.HasPrefix(part, "max-age="):
			if n, err := strconv.ParseInt(part[len("max-age="):], 10, 64); err == nil && n >= 0 {
				cc.hasMaxAge = true
				cc.maxAge = n
			}
		}
	}
	return cc
}
