// Package cache is the domestic proxy's shared content cache: a
// byte-budgeted sharded LRU store with HTTP-aware freshness, singleflight
// request coalescing, and admission control.
//
// The paper's deployment served every user's Scholar accesses through one
// domestic VM, so N concurrent clients re-fetched the identical static
// objects across the border link N times. Placing a shared, whitelist-
// scoped cache at the domestic proxy removes that redundancy: a fresh hit
// is served without touching the border link (or the GFW) at all, a stale
// entry is revalidated with a conditional request (a 304 refreshes it
// without re-shipping the body), and concurrent identical misses collapse
// into a single upstream fetch whose response fans out to every waiter.
//
// Everything is deterministic under the virtual clock: time comes from
// netx.Env.Clock, blocking uses netx.Env.Sync condition variables, the
// only entropy is the injectable shard-hash seed, and eviction order is
// the LRU core's deterministic order.
package cache

import (
	"fmt"
	"sync"
	"time"

	"scholarcloud/internal/cache/lru"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
)

// Options configures a Cache. The zero value selects every default.
type Options struct {
	// Capacity is the total byte budget across all shards (default 64 MiB).
	Capacity int64
	// Shards is the number of independently locked LRU shards; it must be a
	// power of two (default 8).
	Shards int
	// MaxObjectBytes caps a single admitted response (default Capacity/64),
	// so one huge object cannot flush the working set.
	MaxObjectBytes int64
	// DefaultTTL is the heuristic freshness lifetime for responses without
	// explicit cache metadata (default 60 s).
	DefaultTTL time.Duration
	// Seed salts the shard hash — the cache's only entropy, injected so a
	// simulated world is a pure function of its seed.
	Seed uint64
}

// Validate rejects nonsensical configurations.
func (o Options) Validate() error {
	if o.Capacity < 0 {
		return fmt.Errorf("cache: Capacity is negative (%d)", o.Capacity)
	}
	if o.Shards < 0 || (o.Shards > 0 && o.Shards&(o.Shards-1) != 0) {
		return fmt.Errorf("cache: Shards must be a power of two (got %d)", o.Shards)
	}
	if o.MaxObjectBytes < 0 {
		return fmt.Errorf("cache: MaxObjectBytes is negative (%d)", o.MaxObjectBytes)
	}
	if o.DefaultTTL < 0 {
		return fmt.Errorf("cache: DefaultTTL is negative (%v)", o.DefaultTTL)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Capacity == 0 {
		o.Capacity = 64 << 20
	}
	if o.Shards == 0 {
		o.Shards = 8
	}
	if o.MaxObjectBytes == 0 {
		o.MaxObjectBytes = o.Capacity / 64
	}
	if o.DefaultTTL == 0 {
		o.DefaultTTL = 60 * time.Second
	}
	return o
}

// Outcome classifies how a Fetch was served.
type Outcome int

// Outcomes.
const (
	// Hit: a fresh stored response was served locally.
	Hit Outcome = iota
	// Revalidated: a stale entry was refreshed by an upstream 304 and its
	// stored body served (no body crossed the link).
	Revalidated
	// Coalesced: this caller waited on another caller's in-flight fetch of
	// the same key and shares its response.
	Coalesced
	// Miss: fetched upstream and stored.
	Miss
	// Bypass: fetched upstream; admission control refused to store it.
	Bypass
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Revalidated:
		return "revalidated"
	case Coalesced:
		return "coalesced"
	case Miss:
		return "miss"
	case Bypass:
		return "bypass"
	default:
		return "unknown"
	}
}

// Fetcher performs the upstream fetch on a miss. cond carries conditional
// headers (If-None-Match) to merge into the upstream request when the
// cache holds a revalidatable stale entry; it is nil on a cold miss.
type Fetcher func(cond map[string]string) (*httpsim.Response, error)

// object is one stored response.
type object struct {
	resp    *httpsim.Response
	etag    string
	expires time.Time
	cost    int64
}

// flight is one in-progress upstream fetch that later identical requests
// coalesce onto.
type flight struct {
	cond netx.Cond // bound to the shard mutex
	done bool
	resp *httpsim.Response
	err  error
}

// Cache is the shared content cache. All methods are safe for concurrent
// use.
type Cache struct {
	opts   Options
	env    netx.Env
	mask   uint64
	salt   uint64
	shards []*shard

	hits        metrics.Counter
	misses      metrics.Counter
	revalidated metrics.Counter
	bypass      metrics.Counter
	coalesced   metrics.Counter
	evictions   metrics.Counter

	hitSeconds *obs.Histogram // nil until Instrument
}

type shard struct {
	mu       sync.Mutex
	store    *lru.Cache
	inflight map[string]*flight
}

// New creates a cache on env. The environment decides the clock (virtual
// in simulation, wall elsewhere) and the scheduler-aware condition
// variables coalesced waiters block on.
func New(env netx.Env, opts Options) (*Cache, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	c := &Cache{
		opts: opts,
		env:  env,
		mask: uint64(opts.Shards - 1),
		salt: splitmix64(opts.Seed ^ 0x5ca1ab1ecac4e000),
	}
	perShard := opts.Capacity / int64(opts.Shards)
	if perShard < 1 {
		perShard = 1
	}
	for i := 0; i < opts.Shards; i++ {
		s := &shard{inflight: make(map[string]*flight)}
		s.store = lru.New(perShard, func(string, any, int64) { c.evictions.Inc() })
		c.shards = append(c.shards, s)
	}
	return c, nil
}

// Instrument publishes the cache's counters, occupancy gauges, and
// hit-latency histogram on reg (they surface on the deployment's admin
// /metrics endpoint through the same registry).
func (c *Cache) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("cache.hits", &c.hits)
	reg.RegisterCounter("cache.misses", &c.misses)
	reg.RegisterCounter("cache.revalidated", &c.revalidated)
	reg.RegisterCounter("cache.bypass", &c.bypass)
	reg.RegisterCounter("cache.coalesced_waiters", &c.coalesced)
	reg.RegisterCounter("cache.evictions", &c.evictions)
	reg.RegisterFunc("cache.bytes", c.Bytes)
	reg.RegisterFunc("cache.entries", c.Entries)
	c.hitSeconds = reg.Histogram("cache.hit_seconds")
}

// Stats is a point-in-time summary of cache activity.
type Stats struct {
	Hits, Misses, Revalidated int64
	Bypass, Coalesced         int64
	Evictions, Entries, Bytes int64
}

// Snapshot returns current counter values.
func (c *Cache) Snapshot() Stats {
	return Stats{
		Hits:        c.hits.Value(),
		Misses:      c.misses.Value(),
		Revalidated: c.revalidated.Value(),
		Bypass:      c.bypass.Value(),
		Coalesced:   c.coalesced.Value(),
		Evictions:   c.evictions.Value(),
		Entries:     c.Entries(),
		Bytes:       c.Bytes(),
	}
}

// Bytes returns the total stored cost across shards.
func (c *Cache) Bytes() int64 {
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.store.Used()
		s.mu.Unlock()
	}
	return n
}

// Entries returns the resident entry count across shards.
func (c *Cache) Entries() int64 {
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += int64(s.store.Len())
		s.mu.Unlock()
	}
	return n
}

// Fetch serves key from the cache, coalescing concurrent misses: a fresh
// entry is returned immediately; a stale-or-absent entry makes the first
// caller the fetch leader (stale entries add an If-None-Match conditional)
// while every concurrent caller for the same key blocks until the
// leader's response fans out. The returned response is the caller's own
// shallow copy (shared body bytes, private header map).
func (c *Cache) Fetch(key string, fetch Fetcher) (*httpsim.Response, Outcome, error) {
	start := c.env.Clock.Now()
	s := c.shards[c.shardIndex(key)]
	s.mu.Lock()
	if obj := s.lookup(key); obj != nil && start.Before(obj.expires) {
		resp := cloneResponse(obj.resp)
		s.mu.Unlock()
		c.hits.Inc()
		if h := c.hitSeconds; h != nil {
			h.ObserveDuration(c.env.Clock.Now().Sub(start))
		}
		return resp, Hit, nil
	}
	if f, ok := s.inflight[key]; ok {
		c.coalesced.Inc()
		for !f.done {
			f.cond.Wait()
		}
		resp, err := f.resp, f.err
		s.mu.Unlock()
		if err != nil {
			return nil, Coalesced, err
		}
		return cloneResponse(resp), Coalesced, nil
	}

	// This caller leads the upstream fetch.
	f := &flight{cond: c.env.Sync.NewCond(&s.mu)}
	s.inflight[key] = f
	stale := s.lookup(key)
	var cond map[string]string
	if stale != nil && stale.etag != "" {
		cond = map[string]string{"If-None-Match": stale.etag}
	}
	s.mu.Unlock()

	resp, err := fetch(cond)

	s.mu.Lock()
	outcome := Miss
	switch {
	case err != nil:
		f.err = err
	case resp.StatusCode == 304 && stale != nil:
		stale.expires = c.env.Clock.Now().Add(freshnessTTL(resp.Header, c.opts.DefaultTTL))
		// Re-admit: promotes the entry and restores it if a concurrent
		// insertion evicted it while the revalidation was in flight.
		s.store.Add(key, stale, stale.cost)
		f.resp = stale.resp
		outcome = Revalidated
		c.revalidated.Inc()
	default:
		cost := responseCost(resp)
		if admit(resp, cost, c.opts.MaxObjectBytes) {
			s.store.Add(key, &object{
				resp:    resp,
				etag:    resp.Header["Etag"],
				expires: c.env.Clock.Now().Add(freshnessTTL(resp.Header, c.opts.DefaultTTL)),
				cost:    cost,
			}, cost)
			c.misses.Inc()
		} else {
			// A non-cacheable response invalidates whatever was stored: the
			// origin is telling us the representation is per-user or gone.
			s.store.Remove(key)
			outcome = Bypass
			c.bypass.Inc()
		}
		f.resp = resp
	}
	f.done = true
	f.cond.Broadcast()
	delete(s.inflight, key)
	s.mu.Unlock()

	if err != nil {
		return nil, outcome, err
	}
	return cloneResponse(f.resp), outcome, nil
}

// lookup returns the stored object for key (promoting it) or nil.
func (s *shard) lookup(key string) *object {
	v, ok := s.store.Get(key)
	if !ok {
		return nil
	}
	return v.(*object)
}

// shardIndex hashes key (salted) onto a shard.
func (c *Cache) shardIndex(key string) uint64 {
	// FNV-1a, salted with the injected seed.
	h := uint64(14695981039346656037) ^ c.salt
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h & c.mask
}

// cloneResponse gives each caller a private header map over the shared
// body bytes, so one waiter mutating headers cannot corrupt another's
// view of the stored entry.
func cloneResponse(r *httpsim.Response) *httpsim.Response {
	h := make(map[string]string, len(r.Header))
	for k, v := range r.Header {
		h[k] = v
	}
	return &httpsim.Response{
		StatusCode: r.StatusCode,
		Status:     r.Status,
		Header:     h,
		Body:       r.Body,
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
