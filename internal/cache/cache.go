// Package cache is the domestic proxy's shared content cache: a
// byte-budgeted sharded LRU store with HTTP-aware freshness, singleflight
// request coalescing, and admission control.
//
// The paper's deployment served every user's Scholar accesses through one
// domestic VM, so N concurrent clients re-fetched the identical static
// objects across the border link N times. Placing a shared, whitelist-
// scoped cache at the domestic proxy removes that redundancy: a fresh hit
// is served without touching the border link (or the GFW) at all, a stale
// entry is revalidated with a conditional request (a 304 refreshes it
// without re-shipping the body), and concurrent identical misses collapse
// into a single upstream fetch whose response fans out to every waiter —
// but only when admission accepts it: a per-user response (Set-Cookie,
// private, no-store) is never fanned out or remembered as shareable, and
// the cache stands aside (Uncacheable) so each user fetches with their
// own credentials.
//
// Everything is deterministic under the virtual clock: time comes from
// netx.Env.Clock, blocking uses netx.Env.Sync condition variables, the
// only entropy is the injectable shard-hash seed, and eviction order is
// the LRU core's deterministic order.
package cache

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scholarcloud/internal/cache/lru"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
)

// Options configures a Cache. The zero value selects every default.
type Options struct {
	// Capacity is the total byte budget across all shards (default 64 MiB).
	Capacity int64
	// Shards is the number of independently locked LRU shards; it must be a
	// power of two (default 8).
	Shards int
	// MaxObjectBytes caps a single admitted response (default Capacity/64),
	// so one huge object cannot flush the working set.
	MaxObjectBytes int64
	// DefaultTTL is the heuristic freshness lifetime for responses without
	// explicit cache metadata (default 60 s).
	DefaultTTL time.Duration
	// Seed salts the shard hash — the cache's only entropy, injected so a
	// simulated world is a pure function of its seed.
	Seed uint64
}

// Validate rejects nonsensical configurations.
func (o Options) Validate() error {
	if o.Capacity < 0 {
		return fmt.Errorf("cache: Capacity is negative (%d)", o.Capacity)
	}
	if o.Shards < 0 || (o.Shards > 0 && o.Shards&(o.Shards-1) != 0) {
		return fmt.Errorf("cache: Shards must be a power of two (got %d)", o.Shards)
	}
	if o.MaxObjectBytes < 0 {
		return fmt.Errorf("cache: MaxObjectBytes is negative (%d)", o.MaxObjectBytes)
	}
	if o.DefaultTTL < 0 {
		return fmt.Errorf("cache: DefaultTTL is negative (%v)", o.DefaultTTL)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Capacity == 0 {
		o.Capacity = 64 << 20
	}
	if o.Shards == 0 {
		o.Shards = 8
	}
	if o.MaxObjectBytes == 0 {
		o.MaxObjectBytes = o.Capacity / 64
	}
	if o.DefaultTTL == 0 {
		o.DefaultTTL = 60 * time.Second
	}
	return o
}

// Outcome classifies how a Fetch was served.
type Outcome int

// Outcomes.
const (
	// Hit: a fresh stored response was served locally.
	Hit Outcome = iota
	// Revalidated: a stale entry was refreshed by an upstream 304 and its
	// stored body served (no body crossed the link).
	Revalidated
	// Coalesced: this caller waited on another caller's in-flight fetch of
	// the same key and shares its response.
	Coalesced
	// Miss: fetched upstream and stored.
	Miss
	// Bypass: fetched upstream; admission control refused to store it.
	Bypass
	// Uncacheable: the key is known non-shareable (this fetch coalesced
	// onto a flight whose response was refused admission, or a recent
	// fetch of the key was), so the cache stood aside without fetching.
	// Fetch returns a nil response for this outcome: the caller must
	// perform its own upstream fetch with its own credentials — sharing
	// the flight's response would hand one user's content to another.
	Uncacheable
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Revalidated:
		return "revalidated"
	case Coalesced:
		return "coalesced"
	case Miss:
		return "miss"
	case Bypass:
		return "bypass"
	case Uncacheable:
		return "uncacheable"
	default:
		return "unknown"
	}
}

// Fetcher performs the upstream fetch on a miss. cond carries conditional
// headers (If-None-Match) to merge into the upstream request when the
// cache holds a revalidatable stale entry; it is nil on a cold miss.
type Fetcher func(cond map[string]string) (*httpsim.Response, error)

// SiblingFetcher fetches key through peer (the owning shard) instead of
// across the border. It requests the full object (the owner manages its
// own revalidation state); an error means the peer is unreachable or
// declined, and the caller falls back to its own border fetch.
type SiblingFetcher func(peer, key string) (*httpsim.Response, error)

// Peers makes the cache fleet-aware: in a sharded domestic tier every key
// has one owning shard (consistent-hash ownership), and a local miss on a
// non-owning shard asks the owner first — an ICP/CARP-style sibling fetch
// that stays inside the domestic network — before crossing the censored
// border. Combined with the owner's own singleflight, K shards fetch each
// shared object across the border exactly once.
type Peers struct {
	// Self is this shard's name (its proxy "host:port").
	Self string
	// Owner maps a cache key to the name of the shard owning it.
	Owner func(key string) string
	// Fetch performs the sibling fetch against the owning peer.
	Fetch SiblingFetcher
}

// object is one stored response.
type object struct {
	resp    *httpsim.Response
	etag    string
	expires time.Time
	cost    int64
}

// flight is one in-progress upstream fetch that later identical requests
// coalesce onto.
type flight struct {
	cond netx.Cond // bound to the shard mutex
	done bool
	// shared reports whether resp may fan out to coalesced waiters: true
	// only when admission accepted (or revalidation refreshed) it. A
	// response that admission refused is per-user by definition, and
	// waiters must not consume it.
	shared bool
	resp   *httpsim.Response
	err    error
}

// negativeEntries bounds each shard's memory of recently-bypassed keys
// (cost 1 per key in the LRU core).
const negativeEntries = 1024

// Cache is the shared content cache. All methods are safe for concurrent
// use.
type Cache struct {
	opts   Options
	env    netx.Env
	mask   uint64
	salt   uint64
	shards []*shard

	peersMu sync.RWMutex
	peers   *Peers

	hits        metrics.Counter
	misses      metrics.Counter
	revalidated metrics.Counter
	bypass      metrics.Counter
	coalesced   metrics.Counter
	uncacheable metrics.Counter
	evictions   metrics.Counter

	siblingFetches metrics.Counter
	siblingErrors  metrics.Counter
	borderFetches  metrics.Counter

	hitSeconds *obs.Histogram // nil until Instrument
}

type shard struct {
	mu       sync.Mutex
	store    *lru.Cache
	inflight map[string]*flight
	// neg remembers keys whose last response was refused admission
	// (value: the expiry of that memory). Requests for a remembered key
	// neither coalesce nor populate — the cache stands aside so each
	// user's fetch carries its own credentials.
	neg *lru.Cache
}

// New creates a cache on env. The environment decides the clock (virtual
// in simulation, wall elsewhere) and the scheduler-aware condition
// variables coalesced waiters block on.
func New(env netx.Env, opts Options) (*Cache, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	c := &Cache{
		opts: opts,
		env:  env,
		mask: uint64(opts.Shards - 1),
		salt: splitmix64(opts.Seed ^ 0x5ca1ab1ecac4e000),
	}
	perShard := opts.Capacity / int64(opts.Shards)
	if perShard < 1 {
		perShard = 1
	}
	for i := 0; i < opts.Shards; i++ {
		s := &shard{inflight: make(map[string]*flight)}
		s.store = lru.New(perShard, func(string, any, int64) { c.evictions.Inc() })
		s.neg = lru.New(negativeEntries, nil)
		c.shards = append(c.shards, s)
	}
	return c, nil
}

// Instrument publishes the cache's counters, occupancy gauges, and
// hit-latency histogram on reg (they surface on the deployment's admin
// /metrics endpoint through the same registry).
func (c *Cache) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("cache.hits", &c.hits)
	reg.RegisterCounter("cache.misses", &c.misses)
	reg.RegisterCounter("cache.revalidated", &c.revalidated)
	reg.RegisterCounter("cache.bypass", &c.bypass)
	reg.RegisterCounter("cache.coalesced_waiters", &c.coalesced)
	reg.RegisterCounter("cache.uncacheable", &c.uncacheable)
	reg.RegisterCounter("cache.evictions", &c.evictions)
	reg.RegisterCounter("cache.sibling_fetches", &c.siblingFetches)
	reg.RegisterCounter("cache.sibling_errors", &c.siblingErrors)
	reg.RegisterCounter("cache.border_fetches", &c.borderFetches)
	reg.RegisterFunc("cache.bytes", c.Bytes)
	reg.RegisterFunc("cache.entries", c.Entries)
	c.hitSeconds = reg.Histogram("cache.hit_seconds")
}

// Stats is a point-in-time summary of cache activity.
type Stats struct {
	Hits, Misses, Revalidated int64
	Bypass, Coalesced         int64
	Uncacheable               int64
	Evictions, Entries, Bytes int64
	// SiblingFetches counts leader fetches routed to an owning peer,
	// SiblingErrors the subset that failed and fell back to the border,
	// and BorderFetches the leader fetches that crossed the border.
	SiblingFetches, SiblingErrors, BorderFetches int64
}

// Snapshot returns current counter values.
func (c *Cache) Snapshot() Stats {
	return Stats{
		Hits:           c.hits.Value(),
		Misses:         c.misses.Value(),
		Revalidated:    c.revalidated.Value(),
		Bypass:         c.bypass.Value(),
		Coalesced:      c.coalesced.Value(),
		Uncacheable:    c.uncacheable.Value(),
		Evictions:      c.evictions.Value(),
		Entries:        c.Entries(),
		Bytes:          c.Bytes(),
		SiblingFetches: c.siblingFetches.Value(),
		SiblingErrors:  c.siblingErrors.Value(),
		BorderFetches:  c.borderFetches.Value(),
	}
}

// SetPeers joins (or leaves, with nil) the cache peering mesh. Safe to
// call while fetches are in flight; in-progress leaders keep the peer
// view they started with.
func (c *Cache) SetPeers(p *Peers) {
	c.peersMu.Lock()
	defer c.peersMu.Unlock()
	c.peers = p
}

func (c *Cache) peerView() *Peers {
	c.peersMu.RLock()
	defer c.peersMu.RUnlock()
	return c.peers
}

// Bytes returns the total stored cost across shards.
func (c *Cache) Bytes() int64 {
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.store.Used()
		s.mu.Unlock()
	}
	return n
}

// Entries returns the resident entry count across shards.
func (c *Cache) Entries() int64 {
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += int64(s.store.Len())
		s.mu.Unlock()
	}
	return n
}

// Keys returns the keys of every entry still fresh at the call instant,
// sorted, across all shards. This is the enumeration the autoscale
// warm-up and drain paths walk when a proxy joins or leaves the tier;
// sorting makes the result independent of the salted shard hash, so a
// pre-seed or handoff sweep visits keys in the same order in every run.
func (c *Cache) Keys() []string {
	now := c.env.Clock.Now()
	var keys []string
	for _, s := range c.shards {
		s.mu.Lock()
		for _, k := range s.store.Keys() {
			if v, ok := s.store.Peek(k); ok {
				if obj := v.(*object); now.Before(obj.expires) {
					keys = append(keys, k)
				}
			}
		}
		s.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}

// Fetch serves key from the cache, coalescing concurrent misses: a fresh
// entry is returned immediately; a stale-or-absent entry makes the first
// caller the fetch leader (stale entries add an If-None-Match conditional)
// while every concurrent caller for the same key blocks until the
// leader's response fans out. Only an admitted (or revalidated) response
// fans out: when admission refuses the leader's response it is per-user,
// and every waiter — like every later caller inside the negative-memory
// window — gets (nil, Uncacheable, nil) and must fetch upstream itself.
// The returned response is the caller's own shallow copy (shared body
// bytes, private header map).
//
// When peering is configured (SetPeers) and another shard owns key, the
// leader's fetch is routed to the owning peer instead of across the
// border; the peer's response goes through normal admission so the local
// shard keeps a replica. A sibling failure falls back to the border
// fetch — peer death degrades cost, never availability.
func (c *Cache) Fetch(key string, fetch Fetcher) (*httpsim.Response, Outcome, error) {
	return c.fetchShared(key, fetch, true)
}

// FetchLocal is Fetch without peer forwarding: the path a sibling request
// takes at the owning shard, so a rehash race or ownership disagreement
// degrades to one extra border fetch instead of a forwarding loop.
func (c *Cache) FetchLocal(key string, fetch Fetcher) (*httpsim.Response, Outcome, error) {
	return c.fetchShared(key, fetch, false)
}

func (c *Cache) fetchShared(key string, fetch Fetcher, peering bool) (*httpsim.Response, Outcome, error) {
	start := c.env.Clock.Now()
	s := c.shards[c.shardIndex(key)]
	s.mu.Lock()
	if obj := s.lookup(key); obj != nil && start.Before(obj.expires) {
		resp := cloneResponse(obj.resp)
		s.mu.Unlock()
		c.hits.Inc()
		if h := c.hitSeconds; h != nil {
			h.ObserveDuration(c.env.Clock.Now().Sub(start))
		}
		return resp, Hit, nil
	}
	if exp, ok := s.neg.Peek(key); ok {
		if start.Before(exp.(time.Time)) {
			s.mu.Unlock()
			c.uncacheable.Inc()
			return nil, Uncacheable, nil
		}
		// The memory expired: re-probe cacheability below.
		s.neg.Remove(key)
	}
	if f, ok := s.inflight[key]; ok {
		c.coalesced.Inc()
		for !f.done {
			f.cond.Wait()
		}
		resp, err, shared := f.resp, f.err, f.shared
		s.mu.Unlock()
		if err != nil {
			return nil, Coalesced, err
		}
		if !shared {
			c.uncacheable.Inc()
			return nil, Uncacheable, nil
		}
		return cloneResponse(resp), Coalesced, nil
	}

	// This caller leads the upstream fetch.
	f := &flight{cond: c.env.Sync.NewCond(&s.mu)}
	s.inflight[key] = f
	stale := s.lookup(key)
	var cond map[string]string
	if stale != nil && stale.etag != "" {
		cond = map[string]string{"If-None-Match": stale.etag}
	}
	s.mu.Unlock()

	var resp *httpsim.Response
	var err error
	fetched := false
	if peers := c.peerView(); peering && peers != nil && peers.Owner != nil && peers.Fetch != nil {
		if owner := peers.Owner(key); owner != "" && owner != peers.Self {
			c.siblingFetches.Inc()
			if resp, err = peers.Fetch(owner, key); err == nil && resp != nil {
				fetched = true
			} else {
				// The owner is unreachable (mid-takedown, rehash race):
				// fall back to our own border fetch.
				c.siblingErrors.Inc()
				resp, err = nil, nil
			}
		}
	}
	if !fetched {
		c.borderFetches.Inc()
		resp, err = fetch(cond)
	}

	s.mu.Lock()
	outcome := Miss
	switch {
	case err != nil:
		f.err = err
	case resp.StatusCode == 304 && stale != nil:
		// RFC 9111 §4.3.4: the 304's refreshed metadata updates the stored
		// entry's. Merge into a copy (outstanding clones of the old
		// response must not observe the mutation) and recompute freshness
		// from the merged headers, so metadata the 304 omits persists.
		merged := cloneResponse(stale.resp)
		for k, v := range resp.Header {
			merged.Header[k] = v
		}
		stale.resp = merged
		if et := merged.Header["Etag"]; et != "" {
			stale.etag = et
		}
		stale.cost = responseCost(merged)
		stale.expires = c.env.Clock.Now().Add(freshnessTTL(merged.Header, c.opts.DefaultTTL))
		// Re-admit: charges the refreshed cost, promotes the entry, and
		// restores it if a concurrent insertion evicted it while the
		// revalidation was in flight.
		s.store.Add(key, stale, stale.cost)
		s.neg.Remove(key)
		f.resp = stale.resp
		f.shared = true
		outcome = Revalidated
		c.revalidated.Inc()
	default:
		cost := responseCost(resp)
		if admit(resp, cost, c.opts.MaxObjectBytes) {
			s.store.Add(key, &object{
				resp:    resp,
				etag:    resp.Header["Etag"],
				expires: c.env.Clock.Now().Add(freshnessTTL(resp.Header, c.opts.DefaultTTL)),
				cost:    cost,
			}, cost)
			s.neg.Remove(key)
			f.shared = true
			c.misses.Inc()
		} else {
			// A non-cacheable response invalidates whatever was stored: the
			// origin is telling us the representation is per-user or gone.
			s.store.Remove(key)
			// Remember per-user keys (a complete response that admission
			// refused) so later callers stand aside instead of coalescing;
			// transient non-200s are not remembered.
			if resp.StatusCode == 200 {
				s.neg.Add(key, c.env.Clock.Now().Add(c.opts.DefaultTTL), 1)
			}
			outcome = Bypass
			c.bypass.Inc()
		}
		f.resp = resp
	}
	f.done = true
	f.cond.Broadcast()
	delete(s.inflight, key)
	s.mu.Unlock()

	if err != nil {
		return nil, outcome, err
	}
	return cloneResponse(f.resp), outcome, nil
}

// lookup returns the stored object for key (promoting it) or nil.
func (s *shard) lookup(key string) *object {
	v, ok := s.store.Get(key)
	if !ok {
		return nil
	}
	return v.(*object)
}

// shardIndex hashes key (salted) onto a shard.
func (c *Cache) shardIndex(key string) uint64 {
	// FNV-1a, salted with the injected seed.
	h := uint64(14695981039346656037) ^ c.salt
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h & c.mask
}

// cloneResponse gives each caller a private header map over the shared
// body bytes, so one waiter mutating headers cannot corrupt another's
// view of the stored entry.
func cloneResponse(r *httpsim.Response) *httpsim.Response {
	h := make(map[string]string, len(r.Header))
	for k, v := range r.Header {
		h[k] = v
	}
	return &httpsim.Response{
		StatusCode: r.StatusCode,
		Status:     r.Status,
		Header:     h,
		Body:       r.Body,
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
