// Package lru implements a cost-budgeted least-recently-used store: the
// eviction core shared by the domestic proxy's content cache (costs are
// response bytes) and the simulated browser's content cache (cost 1 per
// URL, bounding what was previously an unbounded map).
//
// The package is dependency-free and fully deterministic: eviction order
// is a pure function of the sequence of Get/Add calls, never of map
// iteration or clock readings. A Cache is not safe for concurrent use;
// callers guard it with their own lock (the sharded content cache holds a
// per-shard mutex, the browser its own).
package lru

import "container/list"

// EvictFunc observes an entry evicted to make room for a newer one. It is
// not called for explicit Remove or Clear.
type EvictFunc func(key string, value any, cost int64)

type entry struct {
	key   string
	value any
	cost  int64
}

// Cache is a cost-budgeted LRU map.
type Cache struct {
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	onEvict EvictFunc
}

// New creates a cache holding at most budget total cost. onEvict may be
// nil.
func New(budget int64, onEvict EvictFunc) *Cache {
	if budget <= 0 {
		panic("lru: budget must be positive")
	}
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		onEvict: onEvict,
	}
}

// Get returns the value for key and promotes it to most recently used.
func (c *Cache) Get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Peek returns the value for key without promoting it.
func (c *Cache) Peek(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*entry).value, true
}

// Add inserts (or replaces) key, evicting least-recently-used entries
// until the budget holds. It reports whether the entry was admitted: an
// entry costing more than the whole budget is rejected rather than
// allowed to flush everything else.
func (c *Cache) Add(key string, value any, cost int64) bool {
	if cost < 0 {
		panic("lru: negative cost")
	}
	if cost > c.budget {
		// Too big to ever fit; also drop any stale version under this key.
		c.Remove(key)
		return false
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.used += cost - e.cost
		e.value, e.cost = value, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, value: value, cost: cost})
		c.used += cost
	}
	for c.used > c.budget {
		c.evictOldest()
	}
	return true
}

// Remove deletes key, reporting whether it was present.
func (c *Cache) Remove(key string) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, key)
	c.used -= e.cost
	return true
}

// Clear drops every entry without running the eviction callback.
func (c *Cache) Clear() {
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}

// Keys returns the resident keys, most recently used first. The order is
// deterministic: a pure function of the preceding Get/Add/Remove
// sequence, never of map iteration.
func (c *Cache) Keys() []string {
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}

// Len returns the number of entries.
func (c *Cache) Len() int { return c.ll.Len() }

// Used returns the total cost of resident entries.
func (c *Cache) Used() int64 { return c.used }

// Budget returns the configured capacity.
func (c *Cache) Budget() int64 { return c.budget }

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= e.cost
	if c.onEvict != nil {
		c.onEvict(e.key, e.value, e.cost)
	}
}
