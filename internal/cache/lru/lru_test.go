package lru

import (
	"fmt"
	"testing"
)

func TestAddGetRemove(t *testing.T) {
	c := New(100, nil)
	if !c.Add("a", 1, 10) {
		t.Fatal("Add rejected an in-budget entry")
	}
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if c.Len() != 1 || c.Used() != 10 {
		t.Fatalf("Len/Used = %d/%d", c.Len(), c.Used())
	}
	if !c.Remove("a") {
		t.Fatal("Remove(a) reported absent")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived Remove")
	}
	if c.Used() != 0 {
		t.Fatalf("Used = %d after Remove", c.Used())
	}
}

func TestEvictionIsLRUOrdered(t *testing.T) {
	var evicted []string
	c := New(3, func(key string, _ any, _ int64) { evicted = append(evicted, key) })
	c.Add("a", nil, 1)
	c.Add("b", nil, 1)
	c.Add("c", nil, 1)
	c.Get("a") // promote: eviction order becomes b, c, a
	c.Add("d", nil, 1)
	c.Add("e", nil, 1)
	if fmt.Sprint(evicted) != "[b c]" {
		t.Fatalf("evicted = %v, want [b c]", evicted)
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("promoted entry was evicted")
	}
}

func TestCostBudget(t *testing.T) {
	var evicted []string
	c := New(100, func(key string, _ any, _ int64) { evicted = append(evicted, key) })
	c.Add("big1", nil, 60)
	c.Add("big2", nil, 60) // must evict big1
	if len(evicted) != 1 || evicted[0] != "big1" {
		t.Fatalf("evicted = %v", evicted)
	}
	if c.Used() != 60 {
		t.Fatalf("Used = %d", c.Used())
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New(10, nil)
	c.Add("a", nil, 5)
	if c.Add("huge", nil, 11) {
		t.Fatal("entry larger than the budget was admitted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("rejected oversized entry flushed resident entries")
	}
	// A stale resident version under the same key must not survive a
	// now-oversized replacement.
	c.Add("grow", nil, 2)
	c.Add("grow", nil, 11)
	if _, ok := c.Peek("grow"); ok {
		t.Fatal("stale version survived oversized replacement")
	}
}

func TestReplaceAdjustsCost(t *testing.T) {
	c := New(10, nil)
	c.Add("a", 1, 4)
	c.Add("a", 2, 7)
	if c.Used() != 7 || c.Len() != 1 {
		t.Fatalf("Used/Len = %d/%d", c.Used(), c.Len())
	}
	v, _ := c.Get("a")
	if v.(int) != 2 {
		t.Fatalf("value = %v", v)
	}
}

func TestClear(t *testing.T) {
	calls := 0
	c := New(10, func(string, any, int64) { calls++ })
	c.Add("a", nil, 1)
	c.Add("b", nil, 1)
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("Len/Used = %d/%d after Clear", c.Len(), c.Used())
	}
	if calls != 0 {
		t.Fatal("Clear ran the eviction callback")
	}
}

func TestDeterministicEvictionSequence(t *testing.T) {
	run := func() []string {
		var evicted []string
		c := New(5, func(key string, _ any, _ int64) { evicted = append(evicted, key) })
		for i := 0; i < 20; i++ {
			c.Add(fmt.Sprintf("k%d", i), nil, 1)
			c.Get(fmt.Sprintf("k%d", i/2))
		}
		return evicted
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("eviction sequence not deterministic:\n%v\n%v", a, b)
	}
}
