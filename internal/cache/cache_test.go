package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
)

func newTestCache(t *testing.T, opts Options) *Cache {
	t.Helper()
	c, err := New(netx.RealEnv(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func okResponse(body string, header map[string]string) *httpsim.Response {
	resp := httpsim.NewResponse(200, []byte(body))
	for k, v := range header {
		resp.Header[k] = v
	}
	return resp
}

func fetchOK(body string, header map[string]string) Fetcher {
	return func(map[string]string) (*httpsim.Response, error) {
		return okResponse(body, header), nil
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Capacity: -1},
		{Shards: 3},
		{MaxObjectBytes: -1},
		{DefaultTTL: -time.Second},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a bad config", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero Options rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := newTestCache(t, Options{})
	resp, out, err := c.Fetch("k", fetchOK("body", nil))
	if err != nil || out != Miss || string(resp.Body) != "body" {
		t.Fatalf("first Fetch = %v, %v, %v", resp, out, err)
	}
	calls := 0
	resp, out, err = c.Fetch("k", func(map[string]string) (*httpsim.Response, error) {
		calls++
		return okResponse("fresh", nil), nil
	})
	if err != nil || out != Hit || string(resp.Body) != "body" || calls != 0 {
		t.Fatalf("second Fetch = %v, %v, %v (calls=%d)", resp, out, err, calls)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHitReturnsPrivateHeaderCopy(t *testing.T) {
	c := newTestCache(t, Options{})
	c.Fetch("k", fetchOK("body", map[string]string{"X-A": "1"}))
	r1, _, _ := c.Fetch("k", nil)
	r1.Header["X-A"] = "mutated"
	r2, _, _ := c.Fetch("k", nil)
	if r2.Header["X-A"] != "1" {
		t.Fatalf("stored entry corrupted by caller mutation: %v", r2.Header)
	}
}

func TestExpiryForcesRefetch(t *testing.T) {
	c := newTestCache(t, Options{DefaultTTL: time.Millisecond})
	c.Fetch("k", fetchOK("v1", nil))
	time.Sleep(5 * time.Millisecond)
	_, out, _ := c.Fetch("k", fetchOK("v2", nil))
	if out != Miss {
		t.Fatalf("expired entry served as %v", out)
	}
}

func TestMaxAgeOverridesDefaultTTL(t *testing.T) {
	c := newTestCache(t, Options{DefaultTTL: time.Hour})
	c.Fetch("k", fetchOK("v1", map[string]string{"Cache-Control": "public, max-age=0"}))
	_, out, _ := c.Fetch("k", fetchOK("v2", nil))
	if out != Miss {
		t.Fatalf("max-age=0 entry served as %v", out)
	}
}

func TestRevalidation(t *testing.T) {
	c := newTestCache(t, Options{DefaultTTL: time.Millisecond})
	c.Fetch("k", fetchOK("body", map[string]string{"Etag": `"v1"`}))
	time.Sleep(5 * time.Millisecond)

	var gotCond map[string]string
	resp, out, err := c.Fetch("k", func(cond map[string]string) (*httpsim.Response, error) {
		gotCond = cond
		r := httpsim.NewResponse(304, nil)
		r.Header["Etag"] = `"v1"`
		return r, nil
	})
	if err != nil || out != Revalidated {
		t.Fatalf("Fetch = %v, %v", out, err)
	}
	if gotCond["If-None-Match"] != `"v1"` {
		t.Fatalf("conditional headers = %v", gotCond)
	}
	if string(resp.Body) != "body" || resp.StatusCode != 200 {
		t.Fatalf("revalidated response = %d %q", resp.StatusCode, resp.Body)
	}
	// The refreshed entry serves hits again without upstream contact.
	if _, out, _ := c.Fetch("k", nil); out != Hit {
		t.Fatalf("post-revalidation Fetch = %v", out)
	}
}

func TestAdmissionControl(t *testing.T) {
	cases := []struct {
		name string
		resp *httpsim.Response
		// remembered: a complete-but-refused (per-user) response leaves a
		// negative memory, so the next fetch stands aside (Uncacheable)
		// without touching upstream; transient non-200s are retried.
		remembered bool
	}{
		{"set-cookie", okResponse("b", map[string]string{"Set-Cookie": "GSP=x"}), true},
		{"no-store", okResponse("b", map[string]string{"Cache-Control": "no-store"}), true},
		{"private", okResponse("b", map[string]string{"Cache-Control": "private"}), true},
		{"redirect", httpsim.NewResponse(302, nil), false},
		{"error", httpsim.NewResponse(503, []byte("down")), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCache(t, Options{})
			_, out, err := c.Fetch("k", func(map[string]string) (*httpsim.Response, error) {
				return tc.resp, nil
			})
			if err != nil || out != Bypass {
				t.Fatalf("Fetch = %v, %v", out, err)
			}
			if n := c.Entries(); n != 0 {
				t.Fatalf("uncacheable response stored (entries=%d)", n)
			}
			calls := 0
			resp, out, err := c.Fetch("k", func(map[string]string) (*httpsim.Response, error) {
				calls++
				return tc.resp, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if tc.remembered {
				if out != Uncacheable || resp != nil || calls != 0 {
					t.Fatalf("refetch of per-user key = %v (resp=%v calls=%d), want stand-aside", out, resp, calls)
				}
			} else if out != Bypass || calls != 1 {
				t.Fatalf("refetch after transient bypass = %v (calls=%d), want fresh attempt", out, calls)
			}
		})
	}
}

// TestNegativeMemoryExpires checks that a per-user verdict is re-probed
// after DefaultTTL: origins can turn a resource cacheable later.
func TestNegativeMemoryExpires(t *testing.T) {
	c := newTestCache(t, Options{DefaultTTL: time.Millisecond})
	c.Fetch("k", fetchOK("mine", map[string]string{"Set-Cookie": "GSP=x"}))
	time.Sleep(5 * time.Millisecond)
	resp, out, err := c.Fetch("k", fetchOK("generic", nil))
	if err != nil || out != Miss || string(resp.Body) != "generic" {
		t.Fatalf("Fetch after memory expiry = %v, %v, %v", resp, out, err)
	}
}

func TestOversizedObjectBypasses(t *testing.T) {
	c := newTestCache(t, Options{MaxObjectBytes: 16})
	_, out, _ := c.Fetch("k", fetchOK("this body is larger than sixteen bytes", nil))
	if out != Bypass || c.Entries() != 0 {
		t.Fatalf("oversized object: outcome=%v entries=%d", out, c.Entries())
	}
}

func TestBypassInvalidatesStaleEntry(t *testing.T) {
	c := newTestCache(t, Options{DefaultTTL: time.Millisecond})
	c.Fetch("k", fetchOK("cacheable", nil))
	time.Sleep(5 * time.Millisecond)
	c.Fetch("k", fetchOK("now per-user", map[string]string{"Set-Cookie": "GSP=x"}))
	if n := c.Entries(); n != 0 {
		t.Fatalf("stale entry survived a non-cacheable refetch (entries=%d)", n)
	}
}

func TestFetchErrorPropagates(t *testing.T) {
	c := newTestCache(t, Options{})
	boom := errors.New("upstream down")
	_, _, err := c.Fetch("k", func(map[string]string) (*httpsim.Response, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// A failed flight must not wedge the key.
	_, out, err := c.Fetch("k", fetchOK("ok", nil))
	if err != nil || out != Miss {
		t.Fatalf("Fetch after error = %v, %v", out, err)
	}
}

func TestEvictionUnderBudget(t *testing.T) {
	// Single shard so the budget applies to one LRU list.
	c := newTestCache(t, Options{Capacity: 2048, Shards: 1, MaxObjectBytes: 1024})
	for i := 0; i < 10; i++ {
		body := make([]byte, 256)
		c.Fetch(fmt.Sprintf("k%d", i), func(map[string]string) (*httpsim.Response, error) {
			return httpsim.NewResponse(200, body), nil
		})
	}
	st := c.Snapshot()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the byte budget")
	}
	if st.Bytes > 2048 {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
}

// TestCoalescing is the acceptance-criteria test: K concurrent identical
// misses must produce exactly one upstream fetch, with every other caller
// coalescing onto the leader's flight and sharing its response.
func TestCoalescing(t *testing.T) {
	const K = 8
	c := newTestCache(t, Options{})
	reg := obs.NewRegistry()
	c.Instrument(reg)

	var fetches atomic.Int64
	release := make(chan struct{})
	fetcher := func(map[string]string) (*httpsim.Response, error) {
		fetches.Add(1)
		<-release
		return okResponse("shared", nil), nil
	}

	var (
		mu       sync.Mutex
		outcomes = map[Outcome]int{}
		bodies   = map[string]int{}
		wg       sync.WaitGroup
	)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out, err := c.Fetch("k", fetcher)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			outcomes[out]++
			bodies[string(resp.Body)]++
			mu.Unlock()
		}()
	}

	// Wait until all K-1 followers are parked on the leader's flight, then
	// release the upstream fetch.
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Coalesced != K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", c.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := fetches.Load(); n != 1 {
		t.Fatalf("upstream fetches = %d, want exactly 1", n)
	}
	if outcomes[Miss] != 1 || outcomes[Coalesced] != K-1 {
		t.Fatalf("outcomes = %v, want 1 miss + %d coalesced", outcomes, K-1)
	}
	if bodies["shared"] != K {
		t.Fatalf("bodies = %v, want all %d identical", bodies, K)
	}
	if got := reg.Snapshot().Counter("cache.coalesced_waiters"); got != K-1 {
		t.Fatalf("cache.coalesced_waiters = %d, want %d", got, K-1)
	}
}

// TestCoalescedPerUserResponseNotShared is the counterpart of
// TestCoalescing for a non-shareable response: when the leader's fetch
// comes back per-user (Set-Cookie), waiters must NOT receive the
// leader's response — one user's personalized page and cookie must never
// fan out to others. Instead each waiter is told the key is uncacheable
// and performs its own upstream fetch with its own credentials.
func TestCoalescedPerUserResponseNotShared(t *testing.T) {
	const K = 8
	c := newTestCache(t, Options{})

	var fetches atomic.Int64
	release := make(chan struct{})
	fetcher := func(map[string]string) (*httpsim.Response, error) {
		n := fetches.Add(1)
		<-release
		return okResponse(fmt.Sprintf("user-%d", n),
			map[string]string{"Set-Cookie": fmt.Sprintf("GSP=u%d", n)}), nil
	}

	var (
		mu       sync.Mutex
		outcomes = map[Outcome]int{}
		leaked   int
		wg       sync.WaitGroup
	)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out, err := c.Fetch("k", fetcher)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			outcomes[out]++
			// Any waiter holding the leader's body or cookie is a leak.
			if out != Bypass && resp != nil {
				leaked++
			}
			mu.Unlock()
		}()
	}

	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Coalesced != K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", c.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := fetches.Load(); n != 1 {
		t.Fatalf("upstream fetches = %d, want exactly 1 (only the leader)", n)
	}
	if leaked != 0 {
		t.Fatalf("%d waiters received the leader's per-user response", leaked)
	}
	if outcomes[Bypass] != 1 || outcomes[Uncacheable] != K-1 {
		t.Fatalf("outcomes = %v, want 1 bypass + %d uncacheable", outcomes, K-1)
	}
	if n := c.Entries(); n != 0 {
		t.Fatalf("per-user response stored (entries=%d)", n)
	}
	if st := c.Snapshot(); st.Uncacheable != K-1 {
		t.Fatalf("stats = %+v, want %d uncacheable", st, K-1)
	}
}

func TestRevalidationMergesRefreshedHeaders(t *testing.T) {
	c := newTestCache(t, Options{DefaultTTL: time.Millisecond})
	c.Fetch("k", fetchOK("body", map[string]string{
		"Etag":          `"v1"`,
		"Cache-Control": "public, max-age=0",
		"X-Keep":        "original",
	}))
	time.Sleep(2 * time.Millisecond)

	// The 304 refreshes Etag and Cache-Control; X-Keep is omitted and
	// must persist from the stored entry (RFC 9111 §4.3.4).
	resp, out, err := c.Fetch("k", func(map[string]string) (*httpsim.Response, error) {
		r := httpsim.NewResponse(304, nil)
		r.Header["Etag"] = `"v2"`
		r.Header["Cache-Control"] = "public, max-age=600"
		return r, nil
	})
	if err != nil || out != Revalidated {
		t.Fatalf("Fetch = %v, %v", out, err)
	}
	if resp.Header["Etag"] != `"v2"` || resp.Header["Cache-Control"] != "public, max-age=600" {
		t.Fatalf("304 metadata not merged: %v", resp.Header)
	}
	if resp.Header["X-Keep"] != "original" || string(resp.Body) != "body" {
		t.Fatalf("stored fields lost in merge: %v %q", resp.Header, resp.Body)
	}
	// The refreshed max-age governs, and the next revalidation sends the
	// refreshed validator.
	if _, out, _ := c.Fetch("k", nil); out != Hit {
		t.Fatalf("post-merge Fetch = %v, want hit under refreshed max-age", out)
	}
}

func TestShardingIsSeedStable(t *testing.T) {
	a := newTestCache(t, Options{Seed: 42})
	b := newTestCache(t, Options{Seed: 42})
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("http://scholar.google.com/static/r%d", i)
		if a.shardIndex(k) != b.shardIndex(k) {
			t.Fatalf("shard index for %q differs across identically seeded caches", k)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	want := map[Outcome]string{Hit: "hit", Revalidated: "revalidated", Coalesced: "coalesced", Miss: "miss", Bypass: "bypass", Uncacheable: "uncacheable", Outcome(99): "unknown"}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
}
