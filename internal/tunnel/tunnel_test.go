package tunnel

import (
	"errors"
	"io"
	"testing"
	"time"

	"scholarcloud/internal/dnssim"
	"scholarcloud/internal/netsim"
)

func TestDirectResolvesAndDials(t *testing.T) {
	n := netsim.New(61)
	t.Cleanup(n.Stop)
	z := n.AddZone("z")
	client := n.AddHost("client", "10.0.0.2", z, netsim.LinkConfig{Delay: time.Millisecond})
	server := n.AddHost("server", "203.0.113.10", z, netsim.LinkConfig{Delay: time.Millisecond})
	dnsHost := n.AddHost("dns", "8.8.8.8", z, netsim.LinkConfig{Delay: time.Millisecond})

	dns := dnssim.NewServer(map[string]string{"origin.example": "203.0.113.10"})
	pc, err := dnsHost.ListenPacket(53)
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { dns.Serve(pc) })

	ln, err := server.Listen("tcp", ":80")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("hi"))
		conn.Close()
	})

	d := &Direct{Dialer: client, Resolver: dnssim.NewResolver(client, n.Clock(), "8.8.8.8:53")}
	if d.Name() != "direct" {
		t.Errorf("name = %q", d.Name())
	}
	done := make(chan error, 1)
	n.Scheduler().Go(func() {
		conn, err := d.DialHost("origin.example", 80)
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 2)
		if _, err := io.ReadFull(conn, buf); err != nil {
			done <- err
			return
		}
		if string(buf) != "hi" {
			done <- errors.New("bad payload " + string(buf))
			return
		}
		done <- d.Close()
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("deadlock")
	}
}

func TestDirectUnresolvableName(t *testing.T) {
	n := netsim.New(62)
	t.Cleanup(n.Stop)
	z := n.AddZone("z")
	client := n.AddHost("client", "10.0.0.2", z, netsim.LinkConfig{Delay: time.Millisecond})
	d := &Direct{Dialer: client, Resolver: dnssim.NewResolver(client, n.Clock(), "8.8.8.8:53")}
	done := make(chan error, 1)
	n.Scheduler().Go(func() {
		_, err := d.DialHost("nowhere.example", 80)
		done <- err
	})
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dial of unresolvable name succeeded")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock")
	}
}
