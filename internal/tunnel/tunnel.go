// Package tunnel defines the common interface every access method under
// study implements, plus the no-circumvention baseline. The browser
// (httpsim.Browser) is written against Method, so swapping "direct" for
// "native VPN" for "ScholarCloud" is a one-line change in experiments.
package tunnel

import (
	"fmt"
	"net"

	"scholarcloud/internal/dnssim"
	"scholarcloud/internal/httpsim"
)

// Method is an access method: a browser-facing network stack with a
// lifecycle. It subsumes httpsim.NetStack.
type Method interface {
	httpsim.NetStack
	// Close releases the method's resources (tunnel sessions, local
	// proxies).
	Close() error
}

// Direct is the no-circumvention baseline: resolve with the local (GFW-
// poisonable) resolver and dial straight from the client. Under
// censorship, visits to blocked services fail here — which is the
// motivating observation of the paper.
type Direct struct {
	Dialer interface {
		Dial(network, address string) (net.Conn, error)
	}
	Resolver *dnssim.Resolver
}

// Name implements Method.
func (d *Direct) Name() string { return "direct" }

// DialHost implements Method.
func (d *Direct) DialHost(host string, port int) (net.Conn, error) {
	ip, err := d.Resolver.Lookup(host)
	if err != nil {
		return nil, fmt.Errorf("direct: resolve %s: %w", host, err)
	}
	return d.Dialer.Dial("tcp", fmt.Sprintf("%s:%d", ip, port))
}

// Close implements Method.
func (d *Direct) Close() error { return nil }

// HostsFile is the "other methods" entry from the paper's survey (Fig. 3:
// 34% of bypassers used tricks like editing the system hosts file to
// point blocked names at IPs the GFW had not yet blacklisted). It
// bypasses DNS poisoning completely — and nothing else: the moment the
// hardcoded IP lands on the blocklist, the method dies, which is exactly
// the fragility that pushed users toward tunnels.
type HostsFile struct {
	Dialer interface {
		Dial(network, address string) (net.Conn, error)
	}
	// Entries maps hostnames to hardcoded IPs (the hosts-file content).
	Entries map[string]string
	// Fallback resolves names not in the file (nil means such dials fail).
	Fallback *dnssim.Resolver
}

// Name implements Method.
func (h *HostsFile) Name() string { return "hosts-file" }

// DialHost implements Method.
func (h *HostsFile) DialHost(host string, port int) (net.Conn, error) {
	if ip, ok := h.Entries[host]; ok {
		return h.Dialer.Dial("tcp", fmt.Sprintf("%s:%d", ip, port))
	}
	if h.Fallback == nil {
		return nil, fmt.Errorf("hosts-file: no entry for %s", host)
	}
	ip, err := h.Fallback.Lookup(host)
	if err != nil {
		return nil, err
	}
	return h.Dialer.Dial("tcp", fmt.Sprintf("%s:%d", ip, port))
}

// Close implements Method.
func (h *HostsFile) Close() error { return nil }
