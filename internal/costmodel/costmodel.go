// Package costmodel estimates client-side CPU and memory for the paper's
// Fig. 6b/6c. The paper measured a Chrome/Tor Browser process on a
// Windows ThinkPad — hardware this reproduction cannot run — so the model
// substitutes a calibrated cost function driven by quantities the
// simulation *does* measure mechanically: bytes moved through the client
// NIC per access (every tunneled byte is encrypted/decrypted on the
// client) and connections opened. The per-method base footprints are
// documented constants taken from the paper's reported values; the
// traffic-dependent terms make the model respond to workload changes
// (ablations that alter page size or tunnel overhead shift CPU/memory the
// way a real client would).
package costmodel

// Method base footprints. CPU percentages are of one core during active
// browsing (paper Fig. 6b runs 3.07%–3.62%); memory is resident MB for
// browser + client software (Fig. 6c).
type methodProfile struct {
	browserCPU  float64 // browser process CPU%, before traffic term
	extraCPU    float64 // helper-process CPU% (OpenVPN/SS client, Tor)
	memBeforeMB float64 // browser at rest ("Before" bars)
	memExtraMB  float64 // added while actively loading ("After" delta)
}

// profiles holds the documented per-method constants. The "Before" value
// for Tor reflects the Tor Browser bundle consuming ≈70% more memory than
// Chrome at rest; "After" deltas follow the paper's 30–90 MB range.
var profiles = map[string]methodProfile{
	"direct":          {browserCPU: 2.95, extraCPU: 0, memBeforeMB: 120, memExtraMB: 25},
	"native-vpn-pptp": {browserCPU: 3.00, extraCPU: 0, memBeforeMB: 120, memExtraMB: 30},
	"native-vpn-l2tp": {browserCPU: 3.01, extraCPU: 0, memBeforeMB: 120, memExtraMB: 31},
	"openvpn":         {browserCPU: 3.02, extraCPU: 0.08, memBeforeMB: 124, memExtraMB: 38},
	"tor-meek":        {browserCPU: 3.30, extraCPU: 0.22, memBeforeMB: 204, memExtraMB: 90},
	"shadowsocks":     {browserCPU: 3.10, extraCPU: 0.10, memBeforeMB: 123, memExtraMB: 45},
	"scholarcloud":    {browserCPU: 3.02, extraCPU: 0, memBeforeMB: 120, memExtraMB: 33},
}

// cpuPerExtraKB converts measured tunnel traffic above the direct
// baseline into browser CPU%: every overhead byte is framed, encrypted,
// and copied once more on the client.
const cpuPerExtraKB = 0.012

// memPerConnMB charges working-set for each connection a page load opens.
const memPerConnMB = 0.35

// directBaselineKB is the uncensored access's client traffic (Fig. 6a's
// dotted line). Estimates treat traffic above it as tunnel overhead.
const directBaselineKB = 19.0

// Estimate is the modeled client cost of one access method.
type Estimate struct {
	Method      string
	BrowserCPU  float64 // percent of one core
	ExtraCPU    float64 // helper process percent
	TotalCPU    float64
	MemBeforeMB float64
	MemAfterMB  float64
}

// ForMethod computes the estimate for a method given its measured
// per-access client traffic (bytes) and connections opened.
func ForMethod(method string, trafficBytes float64, conns int) Estimate {
	p, ok := profiles[method]
	if !ok {
		p = profiles["direct"]
	}
	extraKB := trafficBytes/1024 - directBaselineKB
	if extraKB < 0 {
		extraKB = 0
	}
	browser := p.browserCPU + cpuPerExtraKB*extraKB
	return Estimate{
		Method:      method,
		BrowserCPU:  browser,
		ExtraCPU:    p.extraCPU,
		TotalCPU:    browser + p.extraCPU,
		MemBeforeMB: p.memBeforeMB,
		MemAfterMB:  p.memBeforeMB + p.memExtraMB + memPerConnMB*float64(conns),
	}
}

// Methods lists the methods the model knows, in the paper's figure order.
func Methods() []string {
	return []string{"native-vpn-pptp", "openvpn", "tor-meek", "shadowsocks", "scholarcloud"}
}
