package costmodel

import "testing"

func TestBaselineTrafficAddsNoCPU(t *testing.T) {
	e := ForMethod("scholarcloud", 19*1024, 3)
	if e.BrowserCPU != profiles["scholarcloud"].browserCPU {
		t.Errorf("browser CPU = %v with baseline traffic", e.BrowserCPU)
	}
}

func TestOverheadTrafficRaisesCPU(t *testing.T) {
	light := ForMethod("native-vpn-pptp", 19*1024, 3)
	heavy := ForMethod("native-vpn-pptp", 33*1024, 3)
	if heavy.BrowserCPU <= light.BrowserCPU {
		t.Errorf("heavier traffic did not raise CPU: %v vs %v", heavy.BrowserCPU, light.BrowserCPU)
	}
}

func TestPaperOrderings(t *testing.T) {
	// Fig. 6b: native VPN increases CPU the least, Tor the most.
	vpn := ForMethod("native-vpn-pptp", 33*1024, 3)
	tor := ForMethod("tor-meek", 43*1024, 3)
	sc := ForMethod("scholarcloud", 19*1024+200, 3)
	if tor.TotalCPU <= vpn.TotalCPU {
		t.Errorf("Tor CPU (%v) not above native VPN (%v)", tor.TotalCPU, vpn.TotalCPU)
	}
	if tor.TotalCPU <= sc.TotalCPU {
		t.Errorf("Tor CPU (%v) not above ScholarCloud (%v)", tor.TotalCPU, sc.TotalCPU)
	}
	// CPU stays within the paper's 2.8–4.2%% plot range for plausible
	// traffic levels.
	for _, e := range []Estimate{vpn, tor, sc} {
		if e.TotalCPU < 2.8 || e.TotalCPU > 4.2 {
			t.Errorf("%s CPU %v outside the figure's range", e.Method, e.TotalCPU)
		}
	}
}

func TestMemoryOrderings(t *testing.T) {
	// Fig. 6c: Tor Browser idles ~70%% above Chrome; native VPN adds the
	// least while loading, Tor the most.
	vpn := ForMethod("native-vpn-pptp", 33*1024, 3)
	tor := ForMethod("tor-meek", 43*1024, 3)
	if ratio := tor.MemBeforeMB / vpn.MemBeforeMB; ratio < 1.6 || ratio > 1.8 {
		t.Errorf("Tor idle memory ratio = %v, want ~1.7", ratio)
	}
	vpnDelta := vpn.MemAfterMB - vpn.MemBeforeMB
	torDelta := tor.MemAfterMB - tor.MemBeforeMB
	if vpnDelta >= torDelta {
		t.Errorf("VPN loading delta (%v) not below Tor (%v)", vpnDelta, torDelta)
	}
	if vpnDelta < 25 || vpnDelta > 40 {
		t.Errorf("VPN loading delta = %v MB, want ≈30", vpnDelta)
	}
	if torDelta < 80 || torDelta > 100 {
		t.Errorf("Tor loading delta = %v MB, want ≈90", torDelta)
	}
}

func TestUnknownMethodFallsBack(t *testing.T) {
	e := ForMethod("mystery", 19*1024, 0)
	if e.MemBeforeMB != profiles["direct"].memBeforeMB {
		t.Errorf("fallback profile not used: %+v", e)
	}
}

func TestConnectionsCostMemory(t *testing.T) {
	few := ForMethod("openvpn", 20*1024, 1)
	many := ForMethod("openvpn", 20*1024, 10)
	if many.MemAfterMB <= few.MemAfterMB {
		t.Error("more connections did not cost memory")
	}
}

func TestMethodsListsFigureOrder(t *testing.T) {
	ms := Methods()
	if len(ms) != 5 || ms[0] != "native-vpn-pptp" || ms[4] != "scholarcloud" {
		t.Errorf("methods = %v", ms)
	}
}
