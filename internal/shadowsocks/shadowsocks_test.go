package shadowsocks

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/socks"
)

func TestKeyDerivation(t *testing.T) {
	k1 := Key("password")
	k2 := Key("password")
	k3 := Key("different")
	if len(k1) != 32 {
		t.Fatalf("key length = %d", len(k1))
	}
	if !bytes.Equal(k1, k2) {
		t.Error("same password gave different keys")
	}
	if bytes.Equal(k1, k3) {
		t.Error("different passwords gave the same key")
	}
}

func TestStreamConnRoundTrip(t *testing.T) {
	key := Key("k")
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		ca := newStreamConn(a, key, netx.RealEnv().Entropy())
		cb := newStreamConn(b, key, netx.RealEnv().Entropy())
		go ca.Write(data)
		got := make([]byte, len(data))
		if _, err := io.ReadFull(cb, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamConnCiphertextDiffers(t *testing.T) {
	key := Key("k")
	a, b := net.Pipe()
	defer b.Close()
	ca := newStreamConn(a, key, netx.RealEnv().Entropy())
	msg := []byte("GET / HTTP/1.1 plaintext marker")
	go ca.Write(msg)
	wire := make([]byte, ivSize+len(msg))
	if _, err := io.ReadFull(b, wire); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(wire, []byte("HTTP")) {
		t.Error("ciphertext leaks plaintext")
	}
}

// world sets up client/server hosts and an origin echo.
type ssWorld struct {
	n      *netsim.Network
	env    netx.Env
	client *netsim.Host
	server *netsim.Host
	origin *netsim.Host
	srv    *Server
}

func newSSWorld(t *testing.T) *ssWorld {
	t.Helper()
	n := netsim.New(21)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 70 * time.Millisecond})
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}
	w := &ssWorld{
		n:      n,
		env:    n.Env(),
		client: n.AddHost("client", "10.0.0.2", cn, acc),
		server: n.AddHost("ss", "198.51.100.12", us, acc),
		origin: n.AddHost("origin", "203.0.113.10", us, acc),
	}
	// Echo origin.
	ln, err := w.origin.Listen("tcp", ":80")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() {
				defer conn.Close()
				io.Copy(conn, conn)
			})
		}
	})
	// Shadowsocks server.
	w.srv = &Server{
		Env: w.env,
		DialHost: func(host string, port int) (net.Conn, error) {
			if host == "origin.example" {
				host = "203.0.113.10"
			}
			return w.server.DialTCP(fmt.Sprintf("%s:%d", host, port))
		},
		Password: "pw",
		Users:    map[string]bool{"u:p": true},
	}
	sln, err := w.server.Listen("tcp", ":8388")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { w.srv.Serve(sln) })
	return w
}

func (w *ssWorld) newClient() *Client {
	return &Client{
		Env:        w.env,
		Dial:       w.client.Dial,
		Server:     "198.51.100.12:8388",
		Password:   "pw",
		Credential: "u:p",
	}
}

func (w *ssWorld) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	w.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestDialThroughProxyByDomain(t *testing.T) {
	w := newSSWorld(t)
	c := w.newClient()
	w.run(t, func() error {
		conn, err := c.DialHost("origin.example", 80)
		if err != nil {
			return err
		}
		defer conn.Close()
		msg := []byte("through shadowsocks")
		conn.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("echo = %q", got)
		}
		return nil
	})
	if st := w.srv.Stats(); st.Relays != 1 || st.AuthConns != 1 {
		t.Errorf("server stats = %+v", st)
	}
}

func TestAuthOncePerSession(t *testing.T) {
	w := newSSWorld(t)
	c := w.newClient()
	w.run(t, func() error {
		for i := 0; i < 3; i++ {
			conn, err := c.DialHost("203.0.113.10", 80)
			if err != nil {
				return err
			}
			conn.Write([]byte("x"))
			buf := make([]byte, 1)
			io.ReadFull(conn, buf)
			conn.Close()
		}
		return nil
	})
	// All three dials within the keep-alive: one auth connection.
	if got := c.Stats().AuthConns; got != 1 {
		t.Errorf("auth conns = %d, want 1", got)
	}
}

func TestKeepAliveExpiryForcesReauth(t *testing.T) {
	w := newSSWorld(t)
	c := w.newClient()
	w.run(t, func() error {
		if _, err := c.DialHost("203.0.113.10", 80); err != nil {
			return err
		}
		w.n.Scheduler().Sleep(11 * time.Second) // past the 10s keep-alive
		if _, err := c.DialHost("203.0.113.10", 80); err != nil {
			return err
		}
		return nil
	})
	if got := c.Stats().AuthConns; got != 2 {
		t.Errorf("auth conns = %d, want 2 after keep-alive expiry", got)
	}
}

func TestBadCredentialRejected(t *testing.T) {
	w := newSSWorld(t)
	c := w.newClient()
	c.Credential = "wrong:creds"
	w.run(t, func() error {
		_, err := c.DialHost("203.0.113.10", 80)
		if err == nil {
			t.Error("dial succeeded with bad credentials")
		}
		return nil
	})
}

func TestServerSilentlyHoldsGarbage(t *testing.T) {
	// The probe vulnerability: bytes that do not decrypt to a valid
	// header are drained silently with no reply.
	w := newSSWorld(t)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("198.51.100.12:8388")
		if err != nil {
			return err
		}
		defer conn.Close()
		garbage := make([]byte, 64)
		for i := range garbage {
			garbage[i] = byte(i*37 + 1)
		}
		conn.Write(garbage)
		conn.SetReadDeadline(w.env.Clock.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		_, err = conn.Read(buf)
		if err == nil {
			t.Error("server answered garbage")
		}
		if nerr, ok := err.(net.Error); !ok || !nerr.Timeout() {
			t.Errorf("expected silent hold (timeout), got %v", err)
		}
		return nil
	})
	if w.srv.Stats().SilentHolds != 1 {
		t.Errorf("stats = %+v, want one silent hold", w.srv.Stats())
	}
}

func TestLocalSOCKSProxy(t *testing.T) {
	w := newSSWorld(t)
	c := w.newClient()
	lp := &LocalProxy{Client: c, Env: w.env}
	// The local proxy listens on the client host itself (127.0.0.1-like).
	ln, err := w.client.Listen("tcp", ":1080")
	if err != nil {
		t.Fatal(err)
	}
	w.n.Scheduler().Go(func() { lp.Serve(ln) })

	w.run(t, func() error {
		conn, err := w.client.DialTCP("10.0.0.2:1080")
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := socks.ClientConnect(conn, "203.0.113.10:80"); err != nil {
			return err
		}
		msg := []byte("via local socks")
		conn.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("echo = %q", got)
		}
		return nil
	})
}
