package shadowsocks

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/netx"
)

// Address header types (SOCKS-style), plus the authentication marker for
// the paper's per-session user/password connection.
const (
	atypIPv4   = 0x01
	atypDomain = 0x03
	atypAuth   = 0xF0
)

// silentHoldTimeout is how long the server keeps an undecodable
// connection open while silently draining it — the probe-confirmable
// behaviour.
const silentHoldTimeout = 30 * time.Second

// Server is the remote Shadowsocks proxy.
type Server struct {
	Env netx.Env
	// DialHost reaches origins (the server resolves domain-form
	// addresses itself, outside the censored network).
	DialHost func(host string, port int) (net.Conn, error)
	Password string
	// Users are the accepted "user:password" credentials for the
	// session-authentication connection.
	Users map[string]bool
	// OnAuth, if set, runs for every authentication connection before it
	// is answered — experiments charge the server CPU here (password
	// verification and session setup are the expensive part of the
	// paper's Fig. 7 scalability story).
	OnAuth func()
	// OnRelay, if set, runs for every data connection before the origin
	// dial.
	OnRelay func()

	key []byte

	mu          sync.Mutex
	lns         []net.Listener
	auths       int64
	relays      int64
	silentHolds int64
}

// Stats reports server-side connection counts.
type Stats struct {
	AuthConns   int64
	Relays      int64
	SilentHolds int64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{AuthConns: s.auths, Relays: s.relays, SilentHolds: s.silentHolds}
}

// Serve accepts encrypted client connections from ln.
func (s *Server) Serve(ln net.Listener) {
	if s.key == nil {
		s.key = Key(s.Password)
	}
	s.mu.Lock()
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.Env.Spawn.Go(func() { s.handle(conn) })
	}
}

// Close shuts down the server's listeners.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ln := range s.lns {
		ln.Close()
	}
	s.lns = nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := newStreamConn(conn, s.key, s.Env.Entropy())

	host, port, authUser, err := readHeader(sc)
	if err != nil {
		// Undecodable header: the documented vulnerability. Read and
		// discard silently; never answer; hold until idle timeout.
		s.mu.Lock()
		s.silentHolds++
		s.mu.Unlock()
		s.silentHold(conn)
		return
	}
	if authUser != "" {
		s.mu.Lock()
		s.auths++
		ok := s.Users == nil || s.Users[authUser]
		s.mu.Unlock()
		if s.OnAuth != nil {
			s.OnAuth()
		}
		if ok {
			sc.Write([]byte("OK"))
		}
		// Deny silently on bad credentials (no oracle for probes).
		return
	}

	if s.OnRelay != nil {
		s.OnRelay()
	}
	upstream, err := s.DialHost(host, port)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.relays++
	s.mu.Unlock()
	defer upstream.Close()
	s.Env.Spawn.Go(func() {
		io.Copy(sc, upstream)
		conn.Close()
		upstream.Close()
	})
	io.Copy(upstream, sc)
}

// silentHold drains conn without ever writing, for up to
// silentHoldTimeout of inactivity.
func (s *Server) silentHold(conn net.Conn) {
	buf := make([]byte, 2048)
	for {
		conn.SetReadDeadline(s.Env.Clock.Now().Add(silentHoldTimeout))
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// readHeader parses the decrypted address header. It returns either a
// target (host, port) or an authentication user string.
func readHeader(r io.Reader) (host string, port int, authUser string, err error) {
	var atyp [1]byte
	if _, err := io.ReadFull(r, atyp[:]); err != nil {
		return "", 0, "", err
	}
	switch atyp[0] {
	case atypIPv4:
		var b [6]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return "", 0, "", err
		}
		ip := net.IPv4(b[0], b[1], b[2], b[3]).String()
		return ip, int(binary.BigEndian.Uint16(b[4:])), "", nil
	case atypDomain:
		var l [1]byte
		if _, err := io.ReadFull(r, l[:]); err != nil {
			return "", 0, "", err
		}
		if l[0] == 0 {
			return "", 0, "", errors.New("shadowsocks: empty domain")
		}
		name := make([]byte, l[0])
		if _, err := io.ReadFull(r, name); err != nil {
			return "", 0, "", err
		}
		if !plausibleDomain(name) {
			return "", 0, "", fmt.Errorf("shadowsocks: implausible domain %q", name)
		}
		var p [2]byte
		if _, err := io.ReadFull(r, p[:]); err != nil {
			return "", 0, "", err
		}
		return string(name), int(binary.BigEndian.Uint16(p[:])), "", nil
	case atypAuth:
		var l [1]byte
		if _, err := io.ReadFull(r, l[:]); err != nil {
			return "", 0, "", err
		}
		cred := make([]byte, l[0])
		if _, err := io.ReadFull(r, cred); err != nil {
			return "", 0, "", err
		}
		return "", 0, string(cred), nil
	default:
		return "", 0, "", fmt.Errorf("shadowsocks: bad address type %#x", atyp[0])
	}
}

// plausibleDomain rejects decrypted garbage that happened to hit the
// domain branch: real targets are printable hostnames.
func plausibleDomain(b []byte) bool {
	for _, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}
