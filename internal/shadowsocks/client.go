package shadowsocks

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/netx"
	"scholarcloud/internal/socks"
)

// DefaultKeepAlive is the session keep-alive the paper found at source
// level: if no request passes for 10 seconds, the client re-runs the
// authentication procedure (§4.3).
const DefaultKeepAlive = 10 * time.Second

// Client is the Shadowsocks proxy client (the per-device component).
// It implements tunnel.Method.
type Client struct {
	Env netx.Env
	// Dial opens raw connections from the client device.
	Dial func(network, address string) (net.Conn, error)
	// Server is the remote proxy "ip:port".
	Server   string
	Password string
	// Credential is the "user:password" sent on the per-session
	// authentication connection (TCP-1 in the paper's Fig. 4).
	Credential string
	// KeepAlive overrides DefaultKeepAlive when positive.
	KeepAlive time.Duration

	key []byte

	mu            sync.Mutex
	authenticated bool
	lastUse       time.Time
	authConns     int64
	dataConns     int64
}

// ClientStats counts the client's connection activity.
type ClientStats struct {
	AuthConns int64
	DataConns int64
}

// Stats returns a snapshot of connection counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{AuthConns: c.authConns, DataConns: c.dataConns}
}

// Name implements tunnel.Method.
func (c *Client) Name() string { return "shadowsocks" }

// Close implements tunnel.Method.
func (c *Client) Close() error { return nil }

func (c *Client) keepAlive() time.Duration {
	if c.KeepAlive > 0 {
		return c.KeepAlive
	}
	return DefaultKeepAlive
}

// ensureSession runs the user/password authentication connection if the
// session is fresh or has idled past the keep-alive.
func (c *Client) ensureSession() error {
	now := c.Env.Clock.Now()
	c.mu.Lock()
	if c.key == nil {
		c.key = Key(c.Password)
	}
	if c.authenticated && now.Sub(c.lastUse) <= c.keepAlive() {
		c.mu.Unlock()
		return nil
	}
	c.authConns++
	c.mu.Unlock()

	conn, err := c.Dial("tcp", c.Server)
	if err != nil {
		return fmt.Errorf("shadowsocks: auth dial: %w", err)
	}
	defer conn.Close()
	sc := newStreamConn(conn, c.key, c.Env.Entropy())

	cred := c.Credential
	if cred == "" {
		cred = "user:" + c.Password
	}
	header := make([]byte, 0, 2+len(cred))
	header = append(header, atypAuth, byte(len(cred)))
	header = append(header, cred...)
	if _, err := sc.Write(header); err != nil {
		return fmt.Errorf("shadowsocks: auth write: %w", err)
	}
	reply := make([]byte, 2)
	if _, err := io.ReadFull(sc, reply); err != nil {
		return fmt.Errorf("shadowsocks: auth read: %w", err)
	}
	if string(reply) != "OK" {
		return errors.New("shadowsocks: authentication rejected")
	}
	c.mu.Lock()
	c.authenticated = true
	c.lastUse = c.Env.Clock.Now()
	c.mu.Unlock()
	return nil
}

// DialHost implements tunnel.Method: authenticate the session if needed,
// then open an encrypted connection carrying the target address header.
// Name resolution happens at the remote proxy.
func (c *Client) DialHost(host string, port int) (net.Conn, error) {
	if err := c.ensureSession(); err != nil {
		return nil, err
	}
	conn, err := c.Dial("tcp", c.Server)
	if err != nil {
		return nil, fmt.Errorf("shadowsocks: dial: %w", err)
	}
	sc := newStreamConn(conn, c.key, c.Env.Entropy())

	header := make([]byte, 0, 4+len(host))
	if ip := net.ParseIP(host); ip != nil && ip.To4() != nil {
		header = append(header, atypIPv4)
		header = append(header, ip.To4()...)
	} else {
		if len(host) > 255 {
			conn.Close()
			return nil, fmt.Errorf("shadowsocks: hostname too long")
		}
		header = append(header, atypDomain, byte(len(host)))
		header = append(header, host...)
	}
	header = binary.BigEndian.AppendUint16(header, uint16(port))
	if _, err := sc.Write(header); err != nil {
		conn.Close()
		return nil, fmt.Errorf("shadowsocks: header write: %w", err)
	}
	c.mu.Lock()
	c.dataConns++
	c.lastUse = c.Env.Clock.Now()
	c.mu.Unlock()
	return sc, nil
}

// LocalProxy is the SOCKS5 front end real browsers configure
// ("127.0.0.1:1080"); it forwards every CONNECT through the Client. The
// simulated browser uses the Client directly (the localhost hop is
// negligible); cmd/ uses LocalProxy for real deployments.
type LocalProxy struct {
	Client *Client
	Env    netx.Env
}

// Serve accepts SOCKS5 clients from ln.
func (p *LocalProxy) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		p.Env.Spawn.Go(func() { p.handle(conn) })
	}
}

func (p *LocalProxy) handle(conn net.Conn) {
	defer conn.Close()
	target, err := socks.ReadRequest(conn)
	if err != nil {
		return
	}
	host, portStr, ok := cutLast(target, ':')
	if !ok {
		socks.Deny(conn)
		return
	}
	port := 0
	for _, ch := range portStr {
		if ch < '0' || ch > '9' {
			socks.Deny(conn)
			return
		}
		port = port*10 + int(ch-'0')
	}
	upstream, err := p.Client.DialHost(host, port)
	if err != nil {
		socks.Deny(conn)
		return
	}
	defer upstream.Close()
	if err := socks.Grant(conn); err != nil {
		return
	}
	p.Env.Spawn.Go(func() {
		io.Copy(conn, upstream)
		conn.Close()
		upstream.Close()
	})
	io.Copy(upstream, conn)
}

func cutLast(s string, sep byte) (string, string, bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}
