// Package shadowsocks implements the Shadowsocks protocol as the paper
// measured it (§4.2–4.3): a local SOCKS5 proxy on the client device, an
// AES-256-CFB encrypted connection to a remote proxy server, an extra TCP
// connection for user/password authentication at the start of each HTTP
// session, and a 10-second keep-alive after which the authentication is
// repeated. The server exhibits the documented probe vulnerability: fed
// bytes that do not decrypt to a valid address header, it reads silently
// and holds the connection — the behavioural fingerprint the GFW's active
// prober confirms.
package shadowsocks

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/md5"
	"io"
	"net"
	"sync"
)

const ivSize = aes.BlockSize

// Key derives a 32-byte key from a password using the OpenSSL
// EVP_BytesToKey construction (MD5 chaining), as shadowsocks-libev does.
func Key(password string) []byte {
	const keyLen = 32
	var key []byte
	var prev []byte
	for len(key) < keyLen {
		h := md5.New()
		h.Write(prev)
		h.Write([]byte(password))
		prev = h.Sum(nil)
		key = append(key, prev...)
	}
	return key[:keyLen]
}

// streamConn encrypts a connection with AES-256-CFB. A random IV drawn
// from rnd prefixes the first write in each direction. Writes are
// serialized; reads must come from a single goroutine.
type streamConn struct {
	net.Conn
	key []byte
	rnd io.Reader

	wmu sync.Mutex
	enc cipher.Stream
	dec cipher.Stream
}

// newStreamConn wraps conn with the shadowsocks stream cipher, drawing the
// IV from rnd (the environment's entropy source).
func newStreamConn(conn net.Conn, key []byte, rnd io.Reader) *streamConn {
	return &streamConn{Conn: conn, key: key, rnd: rnd}
}

func (c *streamConn) Write(b []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.enc == nil {
		iv := make([]byte, ivSize)
		if _, err := io.ReadFull(c.rnd, iv); err != nil {
			return 0, err
		}
		block, err := aes.NewCipher(c.key)
		if err != nil {
			return 0, err
		}
		c.enc = cipher.NewCFBEncrypter(block, iv)
		ct := make([]byte, ivSize+len(b))
		copy(ct, iv)
		c.enc.XORKeyStream(ct[ivSize:], b)
		if _, err := c.Conn.Write(ct); err != nil {
			return 0, err
		}
		return len(b), nil
	}
	ct := make([]byte, len(b))
	c.enc.XORKeyStream(ct, b)
	if _, err := c.Conn.Write(ct); err != nil {
		return 0, err
	}
	return len(b), nil
}

func (c *streamConn) Read(b []byte) (int, error) {
	if c.dec == nil {
		iv := make([]byte, ivSize)
		if _, err := io.ReadFull(c.Conn, iv); err != nil {
			return 0, err
		}
		block, err := aes.NewCipher(c.key)
		if err != nil {
			return 0, err
		}
		c.dec = cipher.NewCFBDecrypter(block, iv)
	}
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.dec.XORKeyStream(b[:n], b[:n])
	}
	return n, err
}
