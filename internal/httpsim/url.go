package httpsim

import (
	"fmt"
	"strings"
)

// URL is a minimal parsed form of http:// and https:// URLs.
type URL struct {
	Scheme string // "http" or "https"
	Host   string // hostname without port
	Port   int    // always explicit (80/443 default applied at parse)
	Path   string // begins with "/"
}

// ParseURL parses an absolute http(s) URL.
func ParseURL(raw string) (*URL, error) {
	u := &URL{}
	switch {
	case strings.HasPrefix(raw, "http://"):
		u.Scheme = "http"
		u.Port = 80
		raw = raw[len("http://"):]
	case strings.HasPrefix(raw, "https://"):
		u.Scheme = "https"
		u.Port = 443
		raw = raw[len("https://"):]
	default:
		return nil, fmt.Errorf("httpsim: unsupported URL %q", raw)
	}
	hostport := raw
	if i := strings.IndexByte(raw, '/'); i >= 0 {
		hostport = raw[:i]
		u.Path = raw[i:]
	} else {
		u.Path = "/"
	}
	if i := strings.LastIndexByte(hostport, ':'); i >= 0 {
		u.Host = hostport[:i]
		var port int
		if _, err := fmt.Sscanf(hostport[i+1:], "%d", &port); err != nil || port <= 0 || port > 65535 {
			return nil, fmt.Errorf("httpsim: bad port in %q", hostport)
		}
		u.Port = port
	} else {
		u.Host = hostport
	}
	if u.Host == "" {
		return nil, fmt.Errorf("httpsim: empty host in URL %q", raw)
	}
	return u, nil
}

// HostPort returns "host:port".
func (u *URL) HostPort() string { return fmt.Sprintf("%s:%d", u.Host, u.Port) }

// String reassembles the URL.
func (u *URL) String() string {
	defaultPort := 80
	if u.Scheme == "https" {
		defaultPort = 443
	}
	if u.Port == defaultPort {
		return fmt.Sprintf("%s://%s%s", u.Scheme, u.Host, u.Path)
	}
	return fmt.Sprintf("%s://%s:%d%s", u.Scheme, u.Host, u.Port, u.Path)
}
