package httpsim

import (
	"fmt"
	"net"
	"testing"
	"time"

	"scholarcloud/internal/dnssim"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/tlssim"
)

// directStack resolves locally and dials straight from the client host —
// the "no circumvention" baseline.
type directStack struct {
	host     *netsim.Host
	resolver *dnssim.Resolver
}

func (s *directStack) Name() string { return "direct" }

func (s *directStack) DialHost(host string, port int) (net.Conn, error) {
	ip, err := s.resolver.Lookup(host)
	if err != nil {
		return nil, err
	}
	return s.host.DialTCP(fmt.Sprintf("%s:%d", ip, port))
}

// scholarWorld wires a client, DNS, and the Scholar + accounts origins.
type scholarWorld struct {
	n       *netsim.Network
	client  *netsim.Host
	origin  *ScholarOrigin
	stack   *directStack
	browser *Browser
}

func newScholarWorld(t *testing.T) *scholarWorld {
	t.Helper()
	n := netsim.New(11)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 75 * time.Millisecond})
	access := netsim.LinkConfig{Delay: 2 * time.Millisecond, Bandwidth: 12.5e6}

	client := n.AddHost("client", "10.1.0.2", cn, access)
	scholarHost := n.AddHost("scholar", "172.217.6.78", us, access)
	accountsHost := n.AddHost("accounts", "172.217.6.79", us, access)
	dnsHost := n.AddHost("dns", "8.8.8.8", us, access)

	origin := NewScholarOrigin("scholar.google.com", "accounts.google.com", DefaultPage())
	spawn := n.Scheduler()

	// DNS.
	dnsServer := dnssim.NewServer(map[string]string{
		"scholar.google.com":  "172.217.6.78",
		"accounts.google.com": "172.217.6.79",
	})
	pc, err := dnsHost.ListenPacket(53)
	if err != nil {
		t.Fatal(err)
	}
	spawn.Go(func() { dnsServer.Serve(pc) })

	// Scholar HTTP redirect (:80) and HTTPS site (:443).
	ln80, err := scholarHost.Listen("tcp", ":80")
	if err != nil {
		t.Fatal(err)
	}
	redirectSrv := &Server{Handler: origin.RedirectHandler(), Spawn: spawn}
	spawn.Go(func() { redirectSrv.Serve(ln80) })

	ln443, err := scholarHost.Listen("tcp", ":443")
	if err != nil {
		t.Fatal(err)
	}
	mainSrv := &Server{Handler: origin.Handler(), Spawn: spawn}
	spawn.Go(func() {
		mainSrv.Serve(tlssim.NewListener(ln443, tlssim.Config{Certificate: []byte("scholar-cert")}))
	})

	// Accounts HTTPS (:443).
	lnAcct, err := accountsHost.Listen("tcp", ":443")
	if err != nil {
		t.Fatal(err)
	}
	acctSrv := &Server{Handler: origin.AccountsHandler(), Spawn: spawn}
	spawn.Go(func() {
		acctSrv.Serve(tlssim.NewListener(lnAcct, tlssim.Config{Certificate: []byte("accounts-cert")}))
	})

	stack := &directStack{host: client, resolver: dnssim.NewResolver(client, n.Clock(), "8.8.8.8:53")}
	return &scholarWorld{
		n:       n,
		client:  client,
		origin:  origin,
		stack:   stack,
		browser: NewBrowser(stack, n.Clock()),
	}
}

func (w *scholarWorld) visit(t *testing.T, url string) *VisitStats {
	t.Helper()
	ch := make(chan *VisitStats, 1)
	w.n.Scheduler().Go(func() { ch <- w.browser.Visit(url) })
	select {
	case st := <-ch:
		return st
	case <-time.After(30 * time.Second):
		t.Fatal("visit deadlocked")
		return nil
	}
}

func TestFirstVisitFollowsFig4Structure(t *testing.T) {
	w := newScholarWorld(t)
	st := w.visit(t, "http://scholar.google.com/")
	if st.Failed {
		t.Fatalf("visit failed: %v", st.Err)
	}
	if st.Redirects != 1 {
		t.Errorf("redirects = %d, want 1 (TCP-2 HTTPS redirection)", st.Redirects)
	}
	if !st.AccountRecorded {
		t.Error("first visit did not hit the account-recording endpoint (TCP-4)")
	}
	if st.Resources != len(DefaultPage().Resources) {
		t.Errorf("resources = %d, want %d", st.Resources, len(DefaultPage().Resources))
	}
	if st.CacheHits != 0 {
		t.Errorf("cache hits on first visit = %d", st.CacheHits)
	}
	// Connections: :80 redirect, :443 scholar, :443 accounts.
	if st.NewConns != 3 {
		t.Errorf("new connections = %d, want 3", st.NewConns)
	}
	if got := w.origin.AccountRecordings(); got != 1 {
		t.Errorf("origin recorded %d accounts, want 1", got)
	}
}

func TestSubsequentVisitIsLighterAndFaster(t *testing.T) {
	w := newScholarWorld(t)
	first := w.visit(t, "http://scholar.google.com/")
	if first.Failed {
		t.Fatalf("first visit failed: %v", first.Err)
	}
	second := w.visit(t, "https://scholar.google.com/")
	if second.Failed {
		t.Fatalf("second visit failed: %v", second.Err)
	}
	if second.AccountRecorded {
		t.Error("second visit repeated account recording (cookie not honored)")
	}
	if second.CacheHits != len(DefaultPage().Resources) {
		t.Errorf("cache hits = %d, want %d", second.CacheHits, len(DefaultPage().Resources))
	}
	if second.PLT >= first.PLT {
		t.Errorf("subsequent PLT %v not shorter than first-time PLT %v", second.PLT, first.PLT)
	}
	if first.PLT <= 0 || second.PLT <= 0 {
		t.Errorf("non-positive PLTs: %v %v", first.PLT, second.PLT)
	}
}

func TestVisitToUnresolvableHostFails(t *testing.T) {
	w := newScholarWorld(t)
	st := w.visit(t, "https://nonexistent.example.com/")
	if !st.Failed {
		t.Error("visit to unresolvable host succeeded")
	}
}

func TestPLTIncludesAllResources(t *testing.T) {
	w := newScholarWorld(t)
	st := w.visit(t, "https://scholar.google.com/")
	if st.Failed {
		t.Fatalf("visit failed: %v", st.Err)
	}
	wantBytes := int64(DefaultPage().MainDocSize)
	for _, r := range DefaultPage().Resources {
		wantBytes += int64(r.Size)
	}
	// Plus the account recording response.
	if st.BytesFetched < wantBytes {
		t.Errorf("bytes fetched = %d, want >= %d", st.BytesFetched, wantBytes)
	}
}

func TestClearCachesRestoresFirstVisitBehavior(t *testing.T) {
	w := newScholarWorld(t)
	w.visit(t, "https://scholar.google.com/")
	w.browser.ClearCaches()
	st := w.visit(t, "https://scholar.google.com/")
	if !st.AccountRecorded {
		t.Error("after cache clear, account recording did not reoccur")
	}
	if st.CacheHits != 0 {
		t.Errorf("cache hits after clear = %d", st.CacheHits)
	}
}
