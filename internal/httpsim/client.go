package httpsim

import (
	"bufio"
	"net"
)

// ClientConn wraps a transport connection for issuing sequential HTTP
// requests with keep-alive.
type ClientConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// NewClientConn wraps conn.
func NewClientConn(conn net.Conn) *ClientConn {
	return &ClientConn{conn: conn, br: bufio.NewReader(conn)}
}

// RoundTrip writes req and reads its response.
func (cc *ClientConn) RoundTrip(req *Request) (*Response, error) {
	if err := req.Encode(cc.conn); err != nil {
		return nil, err
	}
	return ReadResponse(cc.br)
}

// Conn exposes the underlying connection.
func (cc *ClientConn) Conn() net.Conn { return cc.conn }

// Close closes the underlying connection.
func (cc *ClientConn) Close() error { return cc.conn.Close() }
