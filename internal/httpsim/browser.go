package httpsim

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scholarcloud/internal/cache/lru"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/tlssim"
)

// NetStack is how a browser reaches the network: directly, or through one
// of the access methods under study. DialHost receives the hostname (not
// an IP) because proxy-style methods resolve names remotely — which is
// precisely why they dodge local DNS poisoning.
type NetStack interface {
	// Name identifies the method ("direct", "shadowsocks", ...).
	Name() string
	// DialHost opens a stream to host:port through the method.
	DialHost(host string, port int) (net.Conn, error)
}

// HTTPProxier is an optional NetStack refinement for methods that proxy
// plain HTTP via absolute-URI requests (PAC-configured proxies). The
// browser sends "GET http://host/path" over a connection to the proxy
// instead of dialing the origin.
type HTTPProxier interface {
	// HTTPProxy reports the proxy to use for plain-HTTP requests to host,
	// and whether one applies.
	HTTPProxy(host string) (proxyHostPort string, ok bool)
}

// HTTPSProxier is an optional NetStack refinement for methods whose
// proxy terminates HTTPS as a gateway: the browser sends
// "GET https://host/path" in absolute-URI form over its proxy
// connection instead of opening an end-to-end CONNECT tunnel. This is
// what lets the domestic proxy's shared content cache see (and serve)
// requests that a CONNECT tunnel would carry opaquely.
type HTTPSProxier interface {
	// HTTPSProxy reports the gateway proxy for HTTPS requests to host,
	// and whether one applies.
	HTTPSProxy(host string) (proxyHostPort string, ok bool)
}

// VisitStats summarizes one page load.
type VisitStats struct {
	URL             string
	PLT             time.Duration
	Redirects       int
	NewConns        int
	TLSHandshakes   int
	Resources       int
	CacheHits       int
	BytesFetched    int64
	FirstVisit      bool
	AccountRecorded bool
	Failed          bool
	Err             error
}

// Browser models the measurement client: it loads a page (main document,
// redirects, subresources, and Google's first-visit account-recording
// call), maintains cookie and content caches, and reports PLT.
//
// Subresources are fetched over one keep-alive connection per host with
// pipelined requests — a deliberate simplification of Chrome's six
// parallel connections that preserves the latency structure (one request
// wave, responses streaming back) without requiring parallel goroutine
// coordination inside the virtual-time scheduler.
type Browser struct {
	stack NetStack
	clock netx.Clock

	mu      sync.Mutex
	cookies map[string]string // host -> cookie
	cache   *lru.Cache        // URL -> cached (bounded; cost 1 per entry)
	visited map[string]bool   // host -> seen before (per-browser "account known")

	flowTrace atomic.Pointer[obs.Trace]
	om        *browserObs
}

// browserObs holds the browser's resolved metric handles (PLT phase
// breakdown); nil when uninstrumented.
type browserObs struct {
	visits, visitFailures, fetches  *metrics.Counter
	redirects, conns, tlsHandshakes *metrics.Counter
	cacheHits, accountRecords       *metrics.Counter
	pltSeconds, fetchSeconds        *obs.Histogram
}

// Instrument publishes the browser's visit/fetch counters and PLT phase
// histograms on reg. Call before the first Visit.
func (b *Browser) Instrument(reg *obs.Registry) {
	b.om = &browserObs{
		visits:         reg.Counter("http.visits"),
		visitFailures:  reg.Counter("http.visit_failures"),
		fetches:        reg.Counter("http.fetches"),
		redirects:      reg.Counter("http.redirects"),
		conns:          reg.Counter("http.conns"),
		tlsHandshakes:  reg.Counter("http.tls_handshakes"),
		cacheHits:      reg.Counter("http.cache_hits"),
		accountRecords: reg.Counter("http.account_records"),
		pltSeconds:     reg.Histogram("http.plt_seconds"),
		fetchSeconds:   reg.Histogram("http.fetch_seconds"),
	}
}

// SetTrace installs (or, with nil, removes) a flow tracer receiving spans
// for each phase of a page load.
func (b *Browser) SetTrace(t *obs.Trace) { b.flowTrace.Store(t) }

// browserCacheEntries bounds the browser's content cache. Entries cost 1
// each (the simulated cache stores only "have it" bits, not bodies), so
// this is a URL-count budget: day-long Fig-5a loops stay O(1) in memory
// instead of growing a map without limit.
const browserCacheEntries = 4096

// NewBrowser creates a browser with empty caches on the given stack.
func NewBrowser(stack NetStack, clock netx.Clock) *Browser {
	return &Browser{
		stack:   stack,
		clock:   clock,
		cookies: make(map[string]string),
		cache:   lru.New(browserCacheEntries, nil),
		visited: make(map[string]bool),
	}
}

// ClearContentCache drops only the content cache, keeping cookies and
// DNS state — the configuration traffic measurements use so every access
// fetches the full page (as the paper's per-access traffic figure does)
// without re-triggering first-visit account recording.
func (b *Browser) ClearContentCache() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cache.Clear()
}

// ClearCaches drops cookie and content caches (used to measure first-time
// loads).
func (b *Browser) ClearCaches() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cookies = make(map[string]string)
	b.cache.Clear()
	b.visited = make(map[string]bool)
}

// visitConn is one pooled connection during a page load.
type visitConn struct {
	cc    *ClientConn
	https bool
}

// Visit loads the page at rawURL and returns its statistics.
func (b *Browser) Visit(rawURL string) *VisitStats {
	stats := &VisitStats{URL: rawURL}
	start := b.clock.Now()
	b.flowTrace.Load().Addf("http", "visit-start", "%s", rawURL)
	defer func() {
		stats.PLT = b.clock.Now().Sub(start)
		if b.om != nil {
			b.om.visits.Inc()
			if stats.Failed {
				b.om.visitFailures.Inc()
			} else {
				b.om.pltSeconds.ObserveDuration(stats.PLT)
			}
		}
		b.flowTrace.Load().Addf("http", "visit-done",
			"plt=%v resources=%d redirects=%d conns=%d bytes=%d failed=%v",
			stats.PLT, stats.Resources, stats.Redirects, stats.NewConns,
			stats.BytesFetched, stats.Failed)
	}()

	u, err := ParseURL(rawURL)
	if err != nil {
		stats.Failed = true
		stats.Err = err
		return stats
	}
	b.mu.Lock()
	stats.FirstVisit = !b.visited[u.Host]
	b.mu.Unlock()

	pool := make(map[string]*visitConn)
	defer func() {
		// Close in sorted key order: map iteration order would randomize
		// the FIN sequence and with it every downstream packet ID.
		keys := make([]string, 0, len(pool))
		for k := range pool {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pool[k].cc.Close()
		}
	}()

	body, err := b.fetch(pool, u, stats, 0)
	if err != nil {
		stats.Failed = true
		stats.Err = err
		return stats
	}

	// Parse directives from the document and load the page's parts.
	resources, acct := parseDirectives(body, u)
	for _, res := range resources {
		stats.Resources++
		b.mu.Lock()
		_, cached := b.cache.Get(res.String())
		b.mu.Unlock()
		if cached {
			stats.CacheHits++
			if b.om != nil {
				b.om.cacheHits.Inc()
			}
			continue
		}
		if _, err := b.fetch(pool, res, stats, 0); err != nil {
			stats.Failed = true
			stats.Err = fmt.Errorf("subresource %s: %w", res, err)
			return stats
		}
		b.mu.Lock()
		b.cache.Add(res.String(), true, 1)
		b.mu.Unlock()
	}

	// TCP-4: first-visit account recording uses its own connection to the
	// accounts host (Fig. 4 of the paper).
	if acct != nil {
		if _, err := b.fetch(pool, acct, stats, 0); err != nil {
			stats.Failed = true
			stats.Err = fmt.Errorf("account recording: %w", err)
			return stats
		}
		stats.AccountRecorded = true
		if b.om != nil {
			b.om.accountRecords.Inc()
		}
		b.flowTrace.Load().Addf("http", "account", "%s", acct)
	}

	b.mu.Lock()
	b.visited[u.Host] = true
	b.mu.Unlock()
	return stats
}

const maxRedirects = 5

// fetch retrieves one URL, following redirects, reusing pooled
// connections keyed by scheme+hostport.
func (b *Browser) fetch(pool map[string]*visitConn, u *URL, stats *VisitStats, depth int) ([]byte, error) {
	if depth > maxRedirects {
		return nil, fmt.Errorf("httpsim: too many redirects at %s", u)
	}

	// Plain HTTP through a PAC-configured proxy uses absolute-URI form.
	if u.Scheme == "http" {
		if hp, ok := b.stack.(HTTPProxier); ok {
			if proxyAddr, use := hp.HTTPProxy(u.Host); use {
				return b.fetchViaHTTPProxy(pool, proxyAddr, u, stats, depth)
			}
		}
	}
	// HTTPS through a gateway-mode proxy likewise goes absolute-URI: the
	// proxy terminates TLS toward the origin itself, which is what lets
	// its shared content cache see and serve the request (a CONNECT
	// tunnel would be opaque to it).
	if u.Scheme == "https" {
		if hp, ok := b.stack.(HTTPSProxier); ok {
			if proxyAddr, use := hp.HTTPSProxy(u.Host); use {
				return b.fetchViaHTTPProxy(pool, proxyAddr, u, stats, depth)
			}
		}
	}

	key := u.Scheme + "://" + u.HostPort()
	vc, ok := pool[key]
	if !ok {
		raw, err := b.stack.DialHost(u.Host, u.Port)
		if err != nil {
			return nil, err
		}
		stats.NewConns++
		if b.om != nil {
			b.om.conns.Inc()
		}
		b.flowTrace.Load().Addf("http", "connect", "%s", key)
		if u.Scheme == "https" {
			tconn := tlssim.Client(raw, tlssim.Config{ServerName: u.Host})
			if err := tconn.Handshake(); err != nil {
				tconn.Close()
				return nil, err
			}
			stats.TLSHandshakes++
			if b.om != nil {
				b.om.tlsHandshakes.Inc()
			}
			b.flowTrace.Load().Addf("http", "tls-handshake", "%s", u.Host)
			vc = &visitConn{cc: NewClientConn(tconn), https: true}
		} else {
			vc = &visitConn{cc: NewClientConn(raw)}
		}
		pool[key] = vc
	}

	req := &Request{Method: "GET", Target: u.Path, Host: u.Host, Header: map[string]string{}}
	b.attachCookie(req, u.Host)
	t0 := b.clock.Now()
	resp, err := vc.cc.RoundTrip(req)
	if err == nil && b.om != nil {
		b.om.fetches.Inc()
		b.om.fetchSeconds.ObserveDuration(b.clock.Now().Sub(t0))
	}
	if err != nil {
		// The pooled connection may have died (keep-alive teardown,
		// censor reset); retry once on a fresh one.
		vc.cc.Close()
		delete(pool, key)
		if depth < maxRedirects {
			return b.fetch(pool, u, stats, depth+1)
		}
		return nil, err
	}
	return b.finishResponse(pool, u, resp, stats, depth)
}

func (b *Browser) fetchViaHTTPProxy(pool map[string]*visitConn, proxyAddr string, u *URL, stats *VisitStats, depth int) ([]byte, error) {
	key := "proxy://" + proxyAddr
	vc, ok := pool[key]
	if !ok {
		host, portStr, found := strings.Cut(proxyAddr, ":")
		if !found {
			return nil, fmt.Errorf("httpsim: bad proxy address %q", proxyAddr)
		}
		port, err := strconv.Atoi(portStr)
		if err != nil {
			return nil, fmt.Errorf("httpsim: bad proxy port %q", portStr)
		}
		raw, err := b.stack.DialHost(host, port)
		if err != nil {
			return nil, err
		}
		stats.NewConns++
		if b.om != nil {
			b.om.conns.Inc()
		}
		b.flowTrace.Load().Addf("http", "connect", "%s", key)
		vc = &visitConn{cc: NewClientConn(raw)}
		pool[key] = vc
	}
	req := &Request{Method: "GET", Target: u.String(), Host: u.Host, Header: map[string]string{}}
	b.attachCookie(req, u.Host)
	t0 := b.clock.Now()
	resp, err := vc.cc.RoundTrip(req)
	if err != nil {
		vc.cc.Close()
		delete(pool, key)
		return nil, err
	}
	if b.om != nil {
		b.om.fetches.Inc()
		b.om.fetchSeconds.ObserveDuration(b.clock.Now().Sub(t0))
	}
	return b.finishResponse(pool, u, resp, stats, depth)
}

func (b *Browser) finishResponse(pool map[string]*visitConn, u *URL, resp *Response, stats *VisitStats, depth int) ([]byte, error) {
	stats.BytesFetched += int64(len(resp.Body))
	b.flowTrace.Load().Addf("http", "response", "%s %d (%d bytes)", u, resp.StatusCode, len(resp.Body))
	if resp.StatusCode == 301 || resp.StatusCode == 302 {
		loc := resp.Header["Location"]
		nu, err := ParseURL(loc)
		if err != nil {
			return nil, fmt.Errorf("httpsim: bad redirect %q: %w", loc, err)
		}
		stats.Redirects++
		if b.om != nil {
			b.om.redirects.Inc()
		}
		b.flowTrace.Load().Addf("http", "redirect", "%s -> %s", u, loc)
		return b.fetch(pool, nu, stats, depth+1)
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("httpsim: %s returned %d %s", u, resp.StatusCode, resp.Status)
	}
	if sc := resp.Header["Set-Cookie"]; sc != "" {
		b.mu.Lock()
		b.cookies[u.Host] = sc
		b.mu.Unlock()
	}
	return resp.Body, nil
}

func (b *Browser) attachCookie(req *Request, host string) {
	b.mu.Lock()
	if c, ok := b.cookies[host]; ok {
		req.Header["Cookie"] = c
	}
	b.mu.Unlock()
}

// resource directives embedded in documents:
//
//	RES <absolute-url> <size>     subresource to fetch
//	ACCT <absolute-url>           first-visit account recording endpoint
func parseDirectives(body []byte, base *URL) (resources []*URL, acct *URL) {
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "RES "):
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if u, err := ParseURL(fields[1]); err == nil {
					resources = append(resources, u)
				}
			}
		case strings.HasPrefix(line, "ACCT "):
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if u, err := ParseURL(fields[1]); err == nil {
					acct = u
				}
			}
		}
	}
	return resources, acct
}
