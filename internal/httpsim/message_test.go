package httpsim

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method: "GET",
		Target: "/scholar?q=middleware",
		Host:   "scholar.google.com",
		Header: map[string]string{"Cookie": "GSP=1", "Accept": "text/html"},
		Body:   []byte("hello"),
	}
	var buf bytes.Buffer
	if err := req.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Target != req.Target || got.Host != req.Host {
		t.Errorf("request line mismatch: %+v", got)
	}
	if got.Header["Cookie"] != "GSP=1" || got.Header["Accept"] != "text/html" {
		t.Errorf("headers = %v", got.Header)
	}
	if string(got.Body) != "hello" {
		t.Errorf("body = %q", got.Body)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := NewResponse(302, nil)
	resp.Header["Location"] = "https://scholar.google.com/"
	var buf bytes.Buffer
	if err := resp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 302 || got.Header["Location"] != resp.Header["Location"] {
		t.Errorf("response = %+v", got)
	}
}

func TestResponseBodyLength(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 10000)
	resp := NewResponse(200, body)
	var buf bytes.Buffer
	resp.Encode(&buf)
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, body) {
		t.Error("body mismatch")
	}
}

func TestKeepAliveSequentialMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		req := &Request{Method: "GET", Target: "/", Host: "a", Header: map[string]string{}}
		req.Encode(&buf)
	}
	br := bufio.NewReader(&buf)
	for i := 0; i < 3; i++ {
		if _, err := ReadRequest(br); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestHeaderCanonicalization(t *testing.T) {
	raw := "GET / HTTP/1.1\r\nhost: x\r\ncontent-type: text/plain\r\nX-CUSTOM-THING: v\r\n\r\n"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if req.Host != "x" {
		t.Errorf("host = %q", req.Host)
	}
	if req.Header["Content-Type"] != "text/plain" {
		t.Errorf("headers = %v", req.Header)
	}
	if req.Header["X-Custom-Thing"] != "v" {
		t.Errorf("headers = %v", req.Header)
	}
}

func TestMalformedRequests(t *testing.T) {
	cases := []string{
		"\r\n",
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n",
		"GET / HTTP/1.1\r\nBadHeader\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: zzz\r\n\r\n",
	}
	for _, c := range cases {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(c))); err == nil {
			t.Errorf("ReadRequest(%q) succeeded", c)
		}
	}
}

func TestTruncatedBody(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestParseURL(t *testing.T) {
	cases := []struct {
		in   string
		host string
		port int
		path string
	}{
		{"http://scholar.google.com/", "scholar.google.com", 80, "/"},
		{"https://scholar.google.com/scholar?q=x", "scholar.google.com", 443, "/scholar?q=x"},
		{"http://proxy.thucloud.com:8118/pac", "proxy.thucloud.com", 8118, "/pac"},
		{"https://a.b", "a.b", 443, "/"},
	}
	for _, c := range cases {
		u, err := ParseURL(c.in)
		if err != nil {
			t.Errorf("ParseURL(%q): %v", c.in, err)
			continue
		}
		if u.Host != c.host || u.Port != c.port || u.Path != c.path {
			t.Errorf("ParseURL(%q) = %+v", c.in, u)
		}
	}
}

func TestParseURLErrors(t *testing.T) {
	for _, in := range []string{"", "ftp://x/", "http://", "http://host:0/", "http://host:99999/"} {
		if _, err := ParseURL(in); err == nil {
			t.Errorf("ParseURL(%q) succeeded", in)
		}
	}
}

func TestURLStringRoundTripProperty(t *testing.T) {
	f := func(host uint8, port uint16, https bool) bool {
		h := "host" + string(rune('a'+host%26)) + ".example.com"
		p := int(port)
		if p == 0 {
			p = 1
		}
		scheme := "http"
		if https {
			scheme = "https"
		}
		u := &URL{Scheme: scheme, Host: h, Port: p, Path: "/x"}
		again, err := ParseURL(u.String())
		return err == nil && again.Host == u.Host && again.Port == u.Port && again.Scheme == u.Scheme
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadRequestFuzzNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		ReadRequest(bufio.NewReader(bytes.NewReader(b)))
		ReadResponse(bufio.NewReader(bytes.NewReader(b)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMuxRoutingAndFallback(t *testing.T) {
	m := NewMux()
	m.HandleFunc("/a", func(_ *Request, _ net.Addr) *Response {
		return NewResponse(200, []byte("A"))
	})
	req := func(target string) *Request {
		return &Request{Method: "GET", Target: target, Host: "x", Header: map[string]string{}}
	}
	if resp := m.ServeHTTP(req("/a"), nil); string(resp.Body) != "A" {
		t.Errorf("route /a -> %q", resp.Body)
	}
	if resp := m.ServeHTTP(req("/a?q=1"), nil); string(resp.Body) != "A" {
		t.Errorf("query string not stripped: %q", resp.Body)
	}
	if resp := m.ServeHTTP(req("/missing"), nil); resp.StatusCode != 404 {
		t.Errorf("missing route -> %d", resp.StatusCode)
	}
	m.SetFallback(HandlerFunc(func(_ *Request, _ net.Addr) *Response {
		return NewResponse(200, []byte("FB"))
	}))
	if resp := m.ServeHTTP(req("/missing"), nil); string(resp.Body) != "FB" {
		t.Errorf("fallback -> %q", resp.Body)
	}
}

func TestStatusTexts(t *testing.T) {
	for code, want := range map[int]string{
		200: "OK", 302: "Found", 403: "Forbidden", 404: "Not Found",
		502: "Bad Gateway", 599: "Status 599",
	} {
		if got := statusText(code); got != want {
			t.Errorf("statusText(%d) = %q, want %q", code, got, want)
		}
	}
}
