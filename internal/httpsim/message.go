// Package httpsim implements a compact HTTP/1.1 subsystem — wire format,
// server, client, and forward proxy — plus a browser model that measures
// page load time (PLT) the way the paper's methodology does.
//
// The implementation is deliberately independent of net/http so that every
// blocking operation goes through scheduler-aware netsim connections; this
// is what lets a simulated day of page loads run deterministically in
// milliseconds. The message grammar is a faithful subset of HTTP/1.1
// (request line / status line, headers, Content-Length bodies, keep-alive
// connections, absolute-URI proxying, and CONNECT tunnels).
package httpsim

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// maxHeaderBytes bounds a message head to keep malformed peers from
// ballooning memory.
const maxHeaderBytes = 64 * 1024

// maxBodyBytes bounds a message body.
const maxBodyBytes = 16 << 20

// Errors returned by the message layer.
var (
	ErrMalformed = errors.New("httpsim: malformed message")
	ErrTooLarge  = errors.New("httpsim: message too large")
)

// Request is an HTTP request.
type Request struct {
	Method string
	// Target is the request-target: a path ("/scholar"), an absolute URI
	// (proxy form), or "host:port" for CONNECT.
	Target string
	Host   string
	Header map[string]string
	Body   []byte
}

// Response is an HTTP response.
type Response struct {
	StatusCode int
	Status     string
	Header     map[string]string
	Body       []byte
}

// NewResponse builds a response with the conventional reason phrase.
func NewResponse(code int, body []byte) *Response {
	return &Response{
		StatusCode: code,
		Status:     statusText(code),
		Header:     map[string]string{},
		Body:       body,
	}
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 407:
		return "Proxy Authentication Required"
	case 502:
		return "Bad Gateway"
	case 504:
		return "Gateway Timeout"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// WriteTo serializes the request.
func (r *Request) Encode(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", r.Method, r.Target)
	if r.Host != "" {
		fmt.Fprintf(&b, "Host: %s\r\n", r.Host)
	}
	writeHeaders(&b, r.Header)
	if len(r.Body) > 0 {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	}
	b.WriteString("\r\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if len(r.Body) > 0 {
		if _, err := w.Write(r.Body); err != nil {
			return err
		}
	}
	return nil
}

// WriteTo serializes the response.
func (r *Response) Encode(w io.Writer) error {
	var b strings.Builder
	status := r.Status
	if status == "" {
		status = statusText(r.StatusCode)
	}
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.StatusCode, status)
	writeHeaders(&b, r.Header)
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", len(r.Body))
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if len(r.Body) > 0 {
		if _, err := w.Write(r.Body); err != nil {
			return err
		}
	}
	return nil
}

func writeHeaders(b *strings.Builder, h map[string]string) {
	keys := make([]string, 0, len(h))
	for k := range h {
		if strings.EqualFold(k, "Content-Length") || strings.EqualFold(k, "Host") {
			continue // written explicitly
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", k, h[k])
	}
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Header: map[string]string{}}
	if err := readHeaders(br, req.Header); err != nil {
		return nil, err
	}
	req.Host = req.Header["Host"]
	delete(req.Header, "Host")
	body, err := readBody(br, req.Header)
	if err != nil {
		return nil, err
	}
	req.Body = body
	return req, nil
}

// ReadResponse parses one response from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformed, parts[1])
	}
	resp := &Response{StatusCode: code, Header: map[string]string{}}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	if err := readHeaders(br, resp.Header); err != nil {
		return nil, err
	}
	body, err := readBody(br, resp.Header)
	if err != nil {
		return nil, err
	}
	resp.Body = body
	return resp, nil
}

func readLine(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		frag, err := br.ReadString('\n')
		sb.WriteString(frag)
		if err != nil {
			if sb.Len() > 0 && err == io.EOF {
				return "", io.ErrUnexpectedEOF
			}
			return "", err
		}
		if strings.HasSuffix(sb.String(), "\n") {
			break
		}
		if sb.Len() > maxHeaderBytes {
			return "", ErrTooLarge
		}
	}
	return strings.TrimRight(sb.String(), "\r\n"), nil
}

func readHeaders(br *bufio.Reader, h map[string]string) error {
	total := 0
	for {
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if line == "" {
			return nil
		}
		total += len(line)
		if total > maxHeaderBytes {
			return ErrTooLarge
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return fmt.Errorf("%w: bad header %q", ErrMalformed, line)
		}
		key := canonicalKey(strings.TrimSpace(line[:i]))
		h[key] = strings.TrimSpace(line[i+1:])
	}
}

// canonicalKey normalizes header names to Canonical-Dash-Case.
func canonicalKey(k string) string {
	parts := strings.Split(k, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

func readBody(br *bufio.Reader, h map[string]string) ([]byte, error) {
	cl, ok := h["Content-Length"]
	if !ok {
		return nil, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
	}
	if n > maxBodyBytes {
		return nil, ErrTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}
