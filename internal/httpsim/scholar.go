package httpsim

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
)

// ResourceSpec is one static subresource of a page.
type ResourceSpec struct {
	Path string
	Size int
}

// PageSpec describes the composition of the Scholar home page. Sizes are
// application-layer bytes; the defaults in internal/experiments are
// calibrated so a direct page load transfers ≈19 KB, the figure the paper
// reports for an uncensored US access (Fig. 6a).
type PageSpec struct {
	MainDocSize int
	Resources   []ResourceSpec
}

// DefaultPage is a scholar.google.com-like page: one dynamic document and
// a handful of static assets.
func DefaultPage() PageSpec {
	return PageSpec{
		MainDocSize: 8 * 1024,
		Resources: []ResourceSpec{
			{Path: "/static/scholar.js", Size: 4 * 1024},
			{Path: "/static/scholar.css", Size: 2 * 1024},
			{Path: "/static/logo.png", Size: 3 * 1024},
			{Path: "/static/sprite.png", Size: 1 * 1024},
		},
	}
}

// ScholarOrigin reproduces the client–server session structure of Fig. 4:
//
//	TCP-2: plain-HTTP requests are redirected to HTTPS.
//	TCP-3: the real data exchange (main document + subresources).
//	TCP-4: on a first visit (no session cookie) the page directs the
//	       browser to the accounts host, which records the client's IP and
//	       "Google account" and sets the session cookie.
type ScholarOrigin struct {
	Host         string // e.g. "scholar.google.com"
	AccountsHost string // e.g. "accounts.google.com"
	Page         PageSpec

	mu        sync.Mutex
	recorded  map[string]bool // client IP -> recorded
	accesses  int64
	firstHits int64
}

// NewScholarOrigin creates the origin with the given page composition.
func NewScholarOrigin(host, accountsHost string, page PageSpec) *ScholarOrigin {
	return &ScholarOrigin{
		Host:         host,
		AccountsHost: accountsHost,
		Page:         page,
		recorded:     make(map[string]bool),
	}
}

// sessionCookie is the cookie Scholar sets after account recording.
const sessionCookie = "GSP=ID=8c19b0f3f1d7"

// Accesses returns how many main-document requests were served.
func (o *ScholarOrigin) Accesses() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.accesses
}

// AccountRecordings returns how many first-visit recordings happened.
func (o *ScholarOrigin) AccountRecordings() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.firstHits
}

// RedirectHandler answers plain-HTTP requests with a 302 to HTTPS
// (the paper's TCP-2 connection).
func (o *ScholarOrigin) RedirectHandler() Handler {
	return HandlerFunc(func(req *Request, _ net.Addr) *Response {
		resp := NewResponse(302, nil)
		resp.Header["Location"] = "https://" + o.Host + req.Target
		return resp
	})
}

// Handler serves the HTTPS site: the main document and its static
// resources.
func (o *ScholarOrigin) Handler() Handler {
	mux := NewMux()
	mux.HandleFunc("/", o.serveMain)
	mux.HandleFunc("/scholar", o.serveMain)
	for i, res := range o.Page.Resources {
		size := res.Size
		// Static assets are immutable per world: a synthetic strong ETag
		// plus an explicit freshness lifetime lets a shared downstream
		// cache store them and revalidate with If-None-Match (a 304 ships
		// no body across the border link).
		etag := fmt.Sprintf("%q", fmt.Sprintf("r%d-%d", i, size))
		mux.HandleFunc(res.Path, func(req *Request, _ net.Addr) *Response {
			var resp *Response
			if req.Header["If-None-Match"] == etag {
				resp = NewResponse(304, nil)
			} else {
				resp = NewResponse(200, filler(size))
			}
			resp.Header["Etag"] = etag
			resp.Header["Cache-Control"] = "public, max-age=600"
			return resp
		})
	}
	return mux
}

func (o *ScholarOrigin) serveMain(req *Request, remote net.Addr) *Response {
	o.mu.Lock()
	o.accesses++
	o.mu.Unlock()

	var doc bytes.Buffer
	doc.WriteString("<!-- scholar home -->\n")
	for _, res := range o.Page.Resources {
		fmt.Fprintf(&doc, "RES https://%s%s %d\n", o.Host, res.Path, res.Size)
	}
	// A client without the session cookie is a first visit: direct it to
	// the account-recording endpoint (TCP-4).
	if !strings.Contains(req.Header["Cookie"], "GSP=") {
		fmt.Fprintf(&doc, "ACCT https://%s/recordlogin\n", o.AccountsHost)
	}
	if pad := o.Page.MainDocSize - doc.Len(); pad > 0 {
		doc.Write(filler(pad))
	}
	resp := NewResponse(200, doc.Bytes())
	resp.Header["Set-Cookie"] = sessionCookie
	return resp
}

// CombinedHandler serves the site and the account-recording endpoint on
// one host, for origins whose accounts service is not split out (the
// uncensored mirror and domestic sites).
func (o *ScholarOrigin) CombinedHandler() Handler {
	mux := o.Handler().(*Mux)
	mux.HandleFunc("/recordlogin", func(req *Request, remote net.Addr) *Response {
		return o.AccountsHandler().ServeHTTP(req, remote)
	})
	return mux
}

// AccountsHandler serves the accounts host: /recordlogin notes the
// client's IP and account identity.
func (o *ScholarOrigin) AccountsHandler() Handler {
	mux := NewMux()
	mux.HandleFunc("/recordlogin", func(req *Request, remote net.Addr) *Response {
		ip := remote.String()
		if i := strings.LastIndexByte(ip, ':'); i >= 0 {
			ip = ip[:i]
		}
		o.mu.Lock()
		if !o.recorded[ip] {
			o.recorded[ip] = true
		}
		o.firstHits++
		o.mu.Unlock()
		resp := NewResponse(200, []byte("recorded\n"))
		resp.Header["Set-Cookie"] = sessionCookie
		return resp
	})
	return mux
}

// filler produces n bytes of page-like content: markup interleaved with
// already-compressed asset bytes (images, minified bundles), so that
// tunnel-level compression (OpenVPN's LZO stand-in) saves a realistic
// fraction rather than collapsing the page.
func filler(n int) []byte {
	const chunk = "<div class=\"gs_r\">scholarly result item with metadata</div>\n"
	b := make([]byte, 0, n+64)
	x := uint64(0x5ca1ab1e)
	for len(b) < n {
		b = append(b, chunk...)
		// An equal run of incompressible bytes.
		for i := 0; i < len(chunk); i++ {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			b = append(b, byte(z^(z>>31)))
		}
	}
	return b[:n]
}
