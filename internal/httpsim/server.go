package httpsim

import (
	"bufio"
	"net"
	"strings"
	"sync"

	"scholarcloud/internal/netx"
)

// Handler responds to one HTTP request.
type Handler interface {
	ServeHTTP(req *Request, remote net.Addr) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request, remote net.Addr) *Response

// ServeHTTP implements Handler.
func (f HandlerFunc) ServeHTTP(req *Request, remote net.Addr) *Response {
	return f(req, remote)
}

// Server serves HTTP/1.1 with keep-alive connections.
type Server struct {
	Handler Handler
	Spawn   netx.Spawner
	// OnRequest, if set, runs before the handler for every request —
	// experiments hook per-request CPU cost (Host.Compute) here.
	OnRequest func(req *Request)

	mu     sync.Mutex
	closed bool
	lns    []net.Listener
}

// Serve accepts connections from ln until ln is closed.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.Spawn.Go(func() { s.serveConn(conn) })
	}
}

// Close shuts down all listeners passed to Serve.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, ln := range s.lns {
		ln.Close()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		req, err := ReadRequest(br)
		if err != nil {
			return
		}
		if s.OnRequest != nil {
			s.OnRequest(req)
		}
		resp := s.Handler.ServeHTTP(req, conn.RemoteAddr())
		if resp == nil {
			resp = NewResponse(404, nil)
		}
		if err := resp.Encode(conn); err != nil {
			return
		}
		if strings.EqualFold(req.Header["Connection"], "close") ||
			strings.EqualFold(resp.Header["Connection"], "close") {
			return
		}
	}
}

// Mux routes requests by exact path, with a fallback.
type Mux struct {
	mu       sync.Mutex
	routes   map[string]Handler
	fallback Handler
}

// NewMux returns an empty Mux that answers 404 by default.
func NewMux() *Mux {
	return &Mux{routes: make(map[string]Handler)}
}

// Handle registers h for the exact path.
func (m *Mux) Handle(path string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes[path] = h
}

// HandleFunc registers f for the exact path.
func (m *Mux) HandleFunc(path string, f HandlerFunc) { m.Handle(path, f) }

// SetFallback registers the handler used when no route matches.
func (m *Mux) SetFallback(h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fallback = h
}

// ServeHTTP implements Handler.
func (m *Mux) ServeHTTP(req *Request, remote net.Addr) *Response {
	path := req.Target
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	m.mu.Lock()
	h := m.routes[path]
	if h == nil {
		h = m.fallback
	}
	m.mu.Unlock()
	if h == nil {
		return NewResponse(404, []byte("not found: "+path))
	}
	return h.ServeHTTP(req, remote)
}
