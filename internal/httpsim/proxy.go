package httpsim

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"scholarcloud/internal/netx"
)

// Proxy is a forward HTTP proxy supporting absolute-URI requests and
// CONNECT tunnels. Both ScholarCloud proxies (domestic and remote) are
// built on it: the domestic proxy's Dial reaches origins through the
// blinded inter-proxy tunnel, while the remote proxy's Dial goes straight
// to the origin.
type Proxy struct {
	// Dial reaches the upstream target ("host:port"). Required. Used for
	// CONNECT tunnels.
	Dial func(address string) (net.Conn, error)
	// DialPlain, if set, is used for absolute-URI (cleartext HTTP)
	// requests instead of Dial — ScholarCloud routes those through a
	// proxy-to-proxy encrypted channel (the paper's no-double-encryption
	// rule). Defaults to Dial.
	DialPlain func(address string) (net.Conn, error)
	// Spawn runs the relay goroutines. Required.
	Spawn netx.Spawner
	// Authorize, if set, is consulted with the target host (no port) for
	// every request; an error yields 403 and the request is not proxied.
	Authorize func(host string) error
	// OnRequest, if set, observes every proxied target (metrics,
	// per-request CPU cost).
	OnRequest func(target string)
	// RoundTrip, if set, takes over upstream fetching for absolute-URI
	// requests (after Authorize/OnRequest). The domestic proxy installs
	// its shared content cache here: cache hits answer without any
	// upstream dial, misses go through the cache's coalesced fetch path.
	RoundTrip func(u *URL, req *Request) (*Response, error)

	mu     sync.Mutex
	closed bool
	lns    []net.Listener
}

// Serve accepts proxy clients from ln until it is closed.
func (p *Proxy) Serve(ln net.Listener) {
	p.mu.Lock()
	p.lns = append(p.lns, ln)
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		p.Spawn.Go(func() { p.ServeConn(conn) })
	}
}

// Close shuts down all listeners passed to Serve.
func (p *Proxy) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, ln := range p.lns {
		ln.Close()
	}
}

// ServeConn handles one proxy client connection.
func (p *Proxy) ServeConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		req, err := ReadRequest(br)
		if err != nil {
			return
		}
		if req.Method == "CONNECT" {
			p.handleConnect(conn, br, req)
			return // the connection is now a raw tunnel (or dead)
		}
		if !p.handleAbsolute(conn, req) {
			return
		}
	}
}

func (p *Proxy) handleConnect(conn net.Conn, br *bufio.Reader, req *Request) {
	target := req.Target
	host := target
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	if p.Authorize != nil {
		if err := p.Authorize(host); err != nil {
			resp := NewResponse(403, []byte(err.Error()))
			resp.Encode(conn)
			return
		}
	}
	if p.OnRequest != nil {
		p.OnRequest(target)
	}
	upstream, err := p.Dial(target)
	if err != nil {
		resp := NewResponse(502, []byte(fmt.Sprintf("dial %s: %v", target, err)))
		resp.Encode(conn)
		return
	}
	if err := NewResponse(200, nil).Encode(conn); err != nil {
		upstream.Close()
		return
	}
	// Bytes the client pipelined behind the CONNECT head.
	if n := br.Buffered(); n > 0 {
		buffered, _ := br.Peek(n)
		if _, err := upstream.Write(buffered); err != nil {
			upstream.Close()
			return
		}
		br.Discard(n)
	}
	Relay(p.Spawn, conn, upstream)
}

// handleAbsolute proxies one absolute-URI request and reports whether the
// client connection can be reused.
func (p *Proxy) handleAbsolute(conn net.Conn, req *Request) bool {
	u, err := ParseURL(req.Target)
	if err != nil {
		NewResponse(400, []byte(err.Error())).Encode(conn)
		return false
	}
	if p.Authorize != nil {
		if err := p.Authorize(u.Host); err != nil {
			NewResponse(403, []byte(err.Error())).Encode(conn)
			return true
		}
	}
	if p.OnRequest != nil {
		p.OnRequest(u.HostPort())
	}
	if p.RoundTrip != nil {
		resp, err := p.RoundTrip(u, req)
		if err != nil {
			NewResponse(502, []byte(err.Error())).Encode(conn)
			return true
		}
		return resp.Encode(conn) == nil
	}
	dial := p.Dial
	if p.DialPlain != nil {
		dial = p.DialPlain
	}
	upstream, err := dial(u.HostPort())
	if err != nil {
		NewResponse(502, []byte(fmt.Sprintf("dial %s: %v", u.HostPort(), err))).Encode(conn)
		return true
	}
	defer upstream.Close()

	// Rewrite to origin-form.
	originReq := &Request{
		Method: req.Method,
		Target: u.Path,
		Host:   u.Host,
		Header: req.Header,
		Body:   req.Body,
	}
	cc := NewClientConn(upstream)
	resp, err := cc.RoundTrip(originReq)
	if err != nil {
		NewResponse(502, []byte(err.Error())).Encode(conn)
		return true
	}
	return resp.Encode(conn) == nil
}

// Relay copies bytes in both directions until either side closes, then
// closes both. It returns when the a→b direction ends; the b→a copy
// finishes on its own goroutine.
func Relay(spawn netx.Spawner, a, b net.Conn) {
	spawn.Go(func() {
		io.Copy(a, b)
		a.Close()
		b.Close()
	})
	io.Copy(b, a)
	a.Close()
	b.Close()
}
