package httpsim

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"scholarcloud/internal/netsim"
)

// proxyWorld: client -> proxy host -> origin host.
type proxyWorld struct {
	n      *netsim.Network
	client *netsim.Host
	proxyH *netsim.Host
	origin *netsim.Host
	proxy  *Proxy
}

func newProxyWorld(t *testing.T, authorize func(string) error) *proxyWorld {
	t.Helper()
	n := netsim.New(81)
	t.Cleanup(n.Stop)
	z := n.AddZone("z")
	acc := netsim.LinkConfig{Delay: time.Millisecond}
	w := &proxyWorld{
		n:      n,
		client: n.AddHost("client", "10.0.0.2", z, acc),
		proxyH: n.AddHost("proxy", "10.0.0.3", z, acc),
		origin: n.AddHost("origin", "10.0.0.4", z, acc),
	}
	// Origin: echo on :7, HTTP on :80.
	eln, err := w.origin.Listen("tcp", ":7")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := eln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() { defer conn.Close(); io.Copy(conn, conn) })
		}
	})
	hln, err := w.origin.Listen("tcp", ":80")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{
		Handler: HandlerFunc(func(req *Request, _ net.Addr) *Response {
			return NewResponse(200, []byte("origin:"+req.Target))
		}),
		Spawn: n.Scheduler(),
	}
	n.Scheduler().Go(func() { srv.Serve(hln) })

	w.proxy = &Proxy{
		Dial: func(address string) (net.Conn, error) {
			// Resolve test names to the origin.
			address = strings.Replace(address, "origin.example", "10.0.0.4", 1)
			return w.proxyH.DialTCP(address)
		},
		Spawn:     n.Scheduler(),
		Authorize: authorize,
	}
	pln, err := w.proxyH.Listen("tcp", ":8118")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { w.proxy.Serve(pln) })
	return w
}

func (w *proxyWorld) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	w.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestProxyConnectTunnel(t *testing.T) {
	w := newProxyWorld(t, nil)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("10.0.0.3:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		req := &Request{Method: "CONNECT", Target: "origin.example:7", Host: "origin.example:7", Header: map[string]string{}}
		if err := req.Encode(conn); err != nil {
			return err
		}
		br := bufio.NewReader(conn)
		resp, err := ReadResponse(br)
		if err != nil {
			return err
		}
		if resp.StatusCode != 200 {
			return fmt.Errorf("CONNECT status %d", resp.StatusCode)
		}
		conn.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		if string(buf) != "ping" {
			t.Errorf("echo = %q", buf)
		}
		return nil
	})
}

func TestProxyAbsoluteURI(t *testing.T) {
	w := newProxyWorld(t, nil)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("10.0.0.3:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		cc := NewClientConn(conn)
		resp, err := cc.RoundTrip(&Request{
			Method: "GET",
			Target: "http://origin.example/page",
			Host:   "origin.example",
			Header: map[string]string{},
		})
		if err != nil {
			return err
		}
		if resp.StatusCode != 200 || string(resp.Body) != "origin:/page" {
			t.Errorf("response = %d %q", resp.StatusCode, resp.Body)
		}
		// Keep-alive: a second request on the same proxy connection.
		resp, err = cc.RoundTrip(&Request{
			Method: "GET",
			Target: "http://origin.example/second",
			Host:   "origin.example",
			Header: map[string]string{},
		})
		if err != nil {
			return err
		}
		if string(resp.Body) != "origin:/second" {
			t.Errorf("second response = %q", resp.Body)
		}
		return nil
	})
}

func TestProxyAuthorizeDenies(t *testing.T) {
	w := newProxyWorld(t, func(host string) error {
		if host != "origin.example" {
			return errors.New("not whitelisted")
		}
		return nil
	})
	w.run(t, func() error {
		conn, err := w.client.DialTCP("10.0.0.3:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		cc := NewClientConn(conn)
		resp, err := cc.RoundTrip(&Request{
			Method: "GET",
			Target: "http://evil.example/",
			Host:   "evil.example",
			Header: map[string]string{},
		})
		if err != nil {
			return err
		}
		if resp.StatusCode != 403 {
			t.Errorf("status = %d, want 403", resp.StatusCode)
		}
		return nil
	})
}

func TestProxyBadTarget(t *testing.T) {
	w := newProxyWorld(t, nil)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("10.0.0.3:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		cc := NewClientConn(conn)
		resp, err := cc.RoundTrip(&Request{
			Method: "GET",
			Target: "/not-absolute",
			Host:   "x",
			Header: map[string]string{},
		})
		if err != nil {
			return err
		}
		if resp.StatusCode != 400 {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
		return nil
	})
}

func TestProxyUpstreamFailure(t *testing.T) {
	w := newProxyWorld(t, nil)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("10.0.0.3:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		cc := NewClientConn(conn)
		resp, err := cc.RoundTrip(&Request{
			Method: "GET",
			Target: "http://10.0.0.4:9999/", // closed port
			Host:   "10.0.0.4:9999",
			Header: map[string]string{},
		})
		if err != nil {
			return err
		}
		if resp.StatusCode != 502 {
			t.Errorf("status = %d, want 502", resp.StatusCode)
		}
		return nil
	})
}
