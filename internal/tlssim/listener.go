package tlssim

import "net"

// listener wraps accepted connections as server-side tlssim Conns.
type listener struct {
	net.Listener
	cfg Config
}

// NewListener returns a listener whose Accept wraps connections in
// server-side tlssim Conns. The handshake runs lazily on first I/O.
func NewListener(ln net.Listener, cfg Config) net.Listener {
	return &listener{Listener: ln, cfg: cfg}
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Server(conn, l.cfg), nil
}
