// Package tlssim implements a lightweight TLS-like protocol with the
// structural properties censorship middleboxes key on: a record layer with
// recognizable headers, a cleartext ClientHello carrying the server name
// (SNI), an ECDHE key exchange (X25519), and AES-256-CTR + HMAC-SHA256
// protected application records.
//
// It is not TLS and offers no interoperability with real stacks; the point
// is that the Great Firewall simulator can fingerprint it exactly the way
// the real GFW fingerprints TLS — match the record header, parse the SNI
// out of the ClientHello, and apply keyword filtering — while the payload
// remains confidential. ScholarCloud's message blinding wraps this layer
// in a byte-mapping codec, which destroys the record structure the DPI
// matches on; that interplay is the core of the paper's §3.
package tlssim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Record layer constants. The header deliberately mirrors TLS 1.2
// (type, version 0x0303, length) so DPI fingerprinting is realistic.
const (
	RecordHandshake   = 0x16
	RecordApplication = 0x17
	RecordAlert       = 0x15

	Version = 0x0303

	// MaxRecordPayload bounds one record's body.
	MaxRecordPayload = 16 * 1024
)

// Handshake message types, carried as the first byte of a handshake
// record's body.
const (
	msgClientHello    = 0x01
	msgServerHello    = 0x02
	msgClientKeyShare = 0x03
	msgFinished       = 0x14
)

// ErrRecordTooLarge is returned when a peer announces an oversized record.
var ErrRecordTooLarge = errors.New("tlssim: record too large")

// writeRecord frames and writes one record.
func writeRecord(w io.Writer, typ byte, body []byte) error {
	if len(body) > MaxRecordPayload+64 { // +64 leaves room for the MAC
		return ErrRecordTooLarge
	}
	hdr := make([]byte, 5, 5+len(body))
	hdr[0] = typ
	binary.BigEndian.PutUint16(hdr[1:], Version)
	binary.BigEndian.PutUint16(hdr[3:], uint16(len(body)))
	_, err := w.Write(append(hdr, body...))
	return err
}

// readRecord reads one record, returning its type and body.
func readRecord(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if v := binary.BigEndian.Uint16(hdr[1:]); v != Version {
		return 0, nil, fmt.Errorf("tlssim: bad record version %#x", v)
	}
	n := int(binary.BigEndian.Uint16(hdr[3:]))
	if n > MaxRecordPayload+64 {
		return 0, nil, ErrRecordTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[0], body, nil
}

// LooksLikeRecordHeader reports whether b begins with a plausible tlssim
// (and TLS 1.2) record header. Censorship DPI uses this as its first-pass
// protocol classifier.
func LooksLikeRecordHeader(b []byte) bool {
	if len(b) < 5 {
		return false
	}
	switch b[0] {
	case RecordHandshake, RecordApplication, RecordAlert:
	default:
		return false
	}
	return binary.BigEndian.Uint16(b[1:]) == Version
}

// ParseClientHelloSNI extracts the server name from the initial bytes of
// a client→server stream, if they contain a complete ClientHello record.
// This is the exact parse the GFW's keyword filter performs.
func ParseClientHelloSNI(b []byte) (sni string, ok bool) {
	if !LooksLikeRecordHeader(b) || b[0] != RecordHandshake {
		return "", false
	}
	n := int(binary.BigEndian.Uint16(b[3:]))
	if len(b) < 5+n {
		return "", false
	}
	body := b[5 : 5+n]
	if len(body) < 1+32+2 || body[0] != msgClientHello {
		return "", false
	}
	sniLen := int(binary.BigEndian.Uint16(body[33:]))
	if len(body) < 35+sniLen {
		return "", false
	}
	return string(body[35 : 35+sniLen]), true
}
