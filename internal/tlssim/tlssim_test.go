package tlssim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
)

// pipePair returns two ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func handshakePair(t *testing.T, clientCfg, serverCfg Config) (*Conn, *Conn) {
	t.Helper()
	rawC, rawS := pipePair()
	client := Client(rawC, clientCfg)
	server := Server(rawS, serverCfg)
	errs := make(chan error, 1)
	go func() { errs <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	return client, server
}

func TestHandshakeAndEcho(t *testing.T) {
	client, server := handshakePair(t,
		Config{ServerName: "scholar.google.com"},
		Config{Certificate: []byte("cert-blob")},
	)
	go func() {
		buf := make([]byte, 1024)
		n, _ := server.Read(buf)
		server.Write(buf[:n])
	}()
	msg := []byte("confidential query")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q, want %q", got, msg)
	}
}

func TestServerSeesSNI(t *testing.T) {
	_, server := handshakePair(t,
		Config{ServerName: "scholar.google.com"},
		Config{},
	)
	if got := server.ServerName(); got != "scholar.google.com" {
		t.Errorf("server SNI = %q", got)
	}
}

func TestClientSeesCertificate(t *testing.T) {
	client, _ := handshakePair(t,
		Config{ServerName: "x"},
		Config{Certificate: []byte("identity")},
	)
	if got := client.PeerCertificate(); string(got) != "identity" {
		t.Errorf("peer cert = %q", got)
	}
}

func TestVerifyPeerRejectionAborts(t *testing.T) {
	rawC, rawS := pipePair()
	client := Client(rawC, Config{
		ServerName: "x",
		VerifyPeer: func(cert []byte, name string) error {
			return errors.New("untrusted")
		},
	})
	server := Server(rawS, Config{Certificate: []byte("evil")})
	go server.Handshake()
	err := client.Handshake()
	if !errors.Is(err, ErrHandshake) {
		t.Errorf("handshake err = %v, want ErrHandshake", err)
	}
}

func TestLargeTransfer(t *testing.T) {
	client, server := handshakePair(t, Config{ServerName: "x"}, Config{})
	payload := make([]byte, 200*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	go func() {
		io.Copy(io.Discard, server)
	}()
	done := make(chan error, 1)
	go func() {
		_, err := client.Write(payload)
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	client, server := handshakePair(t, Config{ServerName: "x"}, Config{})
	payload := make([]byte, 100*1024)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	got := make([]byte, len(payload))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(server, got)
		done <- err
	}()
	if _, err := client.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted")
	}
}

// tamperConn flips a bit in the nth record's ciphertext.
func TestTamperedRecordRejected(t *testing.T) {
	rawC, rawS := pipePair()
	client := Client(rawC, Config{ServerName: "x"})
	server := Server(rawS, Config{})
	go server.Handshake()
	if err := client.Handshake(); err != nil {
		t.Fatal(err)
	}

	// Intercept one application record and corrupt it.
	go func() {
		client.Write([]byte("attack at dawn"))
	}()
	typ, body, err := readRecord(rawS)
	_ = typ
	if err != nil {
		t.Fatal(err)
	}
	body[0] ^= 0x80
	if _, err := server.open(body); !errors.Is(err, ErrBadMAC) {
		t.Errorf("open(tampered) err = %v, want ErrBadMAC", err)
	}
}

func TestParseClientHelloSNI(t *testing.T) {
	rawC, rawS := pipePair()
	client := Client(rawC, Config{ServerName: "scholar.google.com"})
	go client.Handshake() // will block mid-handshake; we only need flight 1

	buf := make([]byte, 4096)
	n, err := rawS.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	sni, ok := ParseClientHelloSNI(buf[:n])
	if !ok || sni != "scholar.google.com" {
		t.Errorf("ParseClientHelloSNI = (%q, %v)", sni, ok)
	}
	rawS.Close()
	rawC.Close()
}

func TestParseClientHelloSNIRejectsNonTLS(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("GET / HTTP/1.1\r\n"),
		{0x16, 0x03, 0x01, 0x00, 0x05}, // wrong version
		bytes.Repeat([]byte{0xAA}, 64), // random high bytes
	}
	for _, c := range cases {
		if _, ok := ParseClientHelloSNI(c); ok {
			t.Errorf("ParseClientHelloSNI(%v) = ok", c[:min(8, len(c))])
		}
	}
}

func TestLooksLikeRecordHeader(t *testing.T) {
	if !LooksLikeRecordHeader([]byte{0x16, 0x03, 0x03, 0x00, 0x10}) {
		t.Error("valid handshake header not recognized")
	}
	if !LooksLikeRecordHeader([]byte{0x17, 0x03, 0x03, 0xFF, 0x00}) {
		t.Error("valid appdata header not recognized")
	}
	if LooksLikeRecordHeader([]byte{0x99, 0x03, 0x03, 0x00, 0x10}) {
		t.Error("bad type accepted")
	}
	if LooksLikeRecordHeader([]byte{0x16, 0x02, 0x03, 0x00, 0x10}) {
		t.Error("bad version accepted")
	}
}

func TestSNIParserNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = ParseClientHelloSNI(b)
		_ = LooksLikeRecordHeader(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSealOpenRoundTripProperty(t *testing.T) {
	client, server := handshakePair(t, Config{ServerName: "x"}, Config{})
	f := func(data []byte) bool {
		if len(data) == 0 || len(data) > MaxRecordPayload {
			return true
		}
		sealed, err := client.seal(data)
		if err != nil {
			return false
		}
		opened, err := server.open(sealed)
		return err == nil && bytes.Equal(opened, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
