package tlssim

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

const macSize = 16

// Errors returned by the handshake and record processing.
var (
	ErrBadMAC       = errors.New("tlssim: record authentication failed")
	ErrHandshake    = errors.New("tlssim: handshake failed")
	ErrNotHandshook = errors.New("tlssim: connection not established")
)

// Config configures a client or server connection.
type Config struct {
	// ServerName is sent in the clear in the ClientHello (client side).
	ServerName string
	// Certificate is the server's identity blob, delivered during the
	// handshake (server side). The simulator treats it as opaque; pair it
	// with VerifyPeer for authentication.
	Certificate []byte
	// VerifyPeer, if set on a client, is called with the server's
	// certificate and the configured ServerName; returning an error
	// aborts the handshake.
	VerifyPeer func(cert []byte, serverName string) error
	// Rand supplies handshake randomness (hello randoms, ECDH keys). Nil
	// uses crypto/rand; the simulator injects its seeded source so wire
	// bytes are a deterministic function of the world's seed.
	Rand io.Reader
}

func (cfg *Config) rand() io.Reader {
	if cfg.Rand != nil {
		return cfg.Rand
	}
	return rand.Reader
}

// Conn is an encrypted connection over an underlying net.Conn.
// Writes are safe for concurrent use (the record layer serializes them);
// reads must come from a single goroutine.
type Conn struct {
	raw      net.Conn
	cfg      Config
	isClient bool
	wmu      sync.Mutex

	handshook bool
	peerCert  []byte

	wKey, rKey   []byte // AES-256 keys
	wMac, rMac   []byte
	wIV, rIV     []byte
	wSeq, rSeq   uint64
	readBuf      []byte
	handshakeErr error
}

// Client wraps conn as the initiating side.
func Client(conn net.Conn, cfg Config) *Conn {
	return &Conn{raw: conn, cfg: cfg, isClient: true}
}

// Server wraps conn as the accepting side.
func Server(conn net.Conn, cfg Config) *Conn {
	return &Conn{raw: conn, cfg: cfg}
}

// Handshake performs the key exchange. It is called implicitly by the
// first Read or Write.
func (c *Conn) Handshake() error {
	if c.handshook || c.handshakeErr != nil {
		return c.handshakeErr
	}
	var err error
	if c.isClient {
		err = c.clientHandshake()
	} else {
		err = c.serverHandshake()
	}
	if err != nil {
		c.handshakeErr = fmt.Errorf("%w: %v", ErrHandshake, err)
		return c.handshakeErr
	}
	c.handshook = true
	return nil
}

func randBytes(r io.Reader, n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func (c *Conn) clientHandshake() error {
	clientRandom, err := randBytes(c.cfg.rand(), 32)
	if err != nil {
		return err
	}
	// ClientHello: [0x01][random 32][sniLen u16][sni]
	hello := make([]byte, 0, 35+len(c.cfg.ServerName))
	hello = append(hello, msgClientHello)
	hello = append(hello, clientRandom...)
	hello = binary.BigEndian.AppendUint16(hello, uint16(len(c.cfg.ServerName)))
	hello = append(hello, c.cfg.ServerName...)
	if err := writeRecord(c.raw, RecordHandshake, hello); err != nil {
		return err
	}

	// ServerHello: [0x02][random 32][pub 32][certLen u16][cert]
	typ, body, err := readRecord(c.raw)
	if err != nil {
		return err
	}
	if typ != RecordHandshake || len(body) < 1+32+32+2 || body[0] != msgServerHello {
		return errors.New("expected ServerHello")
	}
	serverRandom := body[1:33]
	serverPub := body[33:65]
	certLen := int(binary.BigEndian.Uint16(body[65:]))
	if len(body) < 67+certLen {
		return errors.New("truncated certificate")
	}
	c.peerCert = append([]byte(nil), body[67:67+certLen]...)
	if c.cfg.VerifyPeer != nil {
		if err := c.cfg.VerifyPeer(c.peerCert, c.cfg.ServerName); err != nil {
			return fmt.Errorf("certificate rejected: %w", err)
		}
	}

	priv, err := ecdh.X25519().GenerateKey(c.cfg.rand())
	if err != nil {
		return err
	}
	peer, err := ecdh.X25519().NewPublicKey(serverPub)
	if err != nil {
		return err
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return err
	}

	// ClientKeyShare: [0x03][pub 32]
	share := append([]byte{msgClientKeyShare}, priv.PublicKey().Bytes()...)
	if err := writeRecord(c.raw, RecordHandshake, share); err != nil {
		return err
	}

	c.deriveKeys(secret, clientRandom, serverRandom)

	// Finished exchange under the new keys proves both sides derived the
	// same secret.
	master := masterSecret(secret, clientRandom, serverRandom)
	if err := c.writeEncryptedHandshake(finishedPayload(master, "client")); err != nil {
		return err
	}
	fin, err := c.readEncryptedHandshake()
	if err != nil {
		return err
	}
	if !hmac.Equal(fin, finishedPayload(master, "server")) {
		return errors.New("bad server Finished")
	}
	return nil
}

func (c *Conn) serverHandshake() error {
	typ, body, err := readRecord(c.raw)
	if err != nil {
		return err
	}
	if typ != RecordHandshake || len(body) < 35 || body[0] != msgClientHello {
		return errors.New("expected ClientHello")
	}
	clientRandom := body[1:33]
	sniLen := int(binary.BigEndian.Uint16(body[33:]))
	if len(body) < 35+sniLen {
		return errors.New("truncated SNI")
	}
	c.cfg.ServerName = string(body[35 : 35+sniLen])

	serverRandom, err := randBytes(c.cfg.rand(), 32)
	if err != nil {
		return err
	}
	priv, err := ecdh.X25519().GenerateKey(c.cfg.rand())
	if err != nil {
		return err
	}

	hello := make([]byte, 0, 67+len(c.cfg.Certificate))
	hello = append(hello, msgServerHello)
	hello = append(hello, serverRandom...)
	hello = append(hello, priv.PublicKey().Bytes()...)
	hello = binary.BigEndian.AppendUint16(hello, uint16(len(c.cfg.Certificate)))
	hello = append(hello, c.cfg.Certificate...)
	if err := writeRecord(c.raw, RecordHandshake, hello); err != nil {
		return err
	}

	typ, body, err = readRecord(c.raw)
	if err != nil {
		return err
	}
	if typ != RecordHandshake || len(body) != 33 || body[0] != msgClientKeyShare {
		return errors.New("expected ClientKeyShare")
	}
	peer, err := ecdh.X25519().NewPublicKey(body[1:33])
	if err != nil {
		return err
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return err
	}
	c.deriveKeys(secret, clientRandom, serverRandom)

	master := masterSecret(secret, clientRandom, serverRandom)
	fin, err := c.readEncryptedHandshake()
	if err != nil {
		return err
	}
	if !hmac.Equal(fin, finishedPayload(master, "client")) {
		return errors.New("bad client Finished")
	}
	return c.writeEncryptedHandshake(finishedPayload(master, "server"))
}

func masterSecret(secret, clientRandom, serverRandom []byte) []byte {
	h := sha256.New()
	h.Write(secret)
	h.Write(clientRandom)
	h.Write(serverRandom)
	return h.Sum(nil)
}

func finishedPayload(master []byte, side string) []byte {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte(side + " finished"))
	return append([]byte{msgFinished}, mac.Sum(nil)[:12]...)
}

func expand(master []byte, label string, n int) []byte {
	out := make([]byte, 0, n)
	counter := byte(0)
	for len(out) < n {
		h := sha256.New()
		h.Write(master)
		h.Write([]byte(label))
		h.Write([]byte{counter})
		out = append(out, h.Sum(nil)...)
		counter++
	}
	return out[:n]
}

func (c *Conn) deriveKeys(secret, clientRandom, serverRandom []byte) {
	master := masterSecret(secret, clientRandom, serverRandom)
	cKey := expand(master, "client key", 32)
	sKey := expand(master, "server key", 32)
	cMac := expand(master, "client mac", 32)
	sMac := expand(master, "server mac", 32)
	cIV := expand(master, "client iv", 16)
	sIV := expand(master, "server iv", 16)
	if c.isClient {
		c.wKey, c.rKey = cKey, sKey
		c.wMac, c.rMac = cMac, sMac
		c.wIV, c.rIV = cIV, sIV
	} else {
		c.wKey, c.rKey = sKey, cKey
		c.wMac, c.rMac = sMac, cMac
		c.wIV, c.rIV = sIV, cIV
	}
}

// seal encrypts and authenticates plaintext as one record body.
func (c *Conn) seal(plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(c.wKey)
	if err != nil {
		return nil, err
	}
	iv := make([]byte, 16)
	copy(iv, c.wIV)
	binary.BigEndian.PutUint64(iv[8:], binary.BigEndian.Uint64(iv[8:])^c.wSeq)
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)

	mac := hmac.New(sha256.New, c.wMac)
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], c.wSeq)
	mac.Write(seq[:])
	mac.Write(ct)
	c.wSeq++
	return append(ct, mac.Sum(nil)[:macSize]...), nil
}

// open verifies and decrypts one record body.
func (c *Conn) open(body []byte) ([]byte, error) {
	if len(body) < macSize {
		return nil, ErrBadMAC
	}
	ct, tag := body[:len(body)-macSize], body[len(body)-macSize:]
	mac := hmac.New(sha256.New, c.rMac)
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], c.rSeq)
	mac.Write(seq[:])
	mac.Write(ct)
	if !hmac.Equal(tag, mac.Sum(nil)[:macSize]) {
		return nil, ErrBadMAC
	}
	block, err := aes.NewCipher(c.rKey)
	if err != nil {
		return nil, err
	}
	iv := make([]byte, 16)
	copy(iv, c.rIV)
	binary.BigEndian.PutUint64(iv[8:], binary.BigEndian.Uint64(iv[8:])^c.rSeq)
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	c.rSeq++
	return pt, nil
}

func (c *Conn) writeEncryptedHandshake(payload []byte) error {
	body, err := c.seal(payload)
	if err != nil {
		return err
	}
	return writeRecord(c.raw, RecordHandshake, body)
}

func (c *Conn) readEncryptedHandshake() ([]byte, error) {
	typ, body, err := readRecord(c.raw)
	if err != nil {
		return nil, err
	}
	if typ != RecordHandshake {
		return nil, errors.New("tlssim: expected handshake record")
	}
	return c.open(body)
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	if err := c.Handshake(); err != nil {
		return 0, err
	}
	for len(c.readBuf) == 0 {
		typ, body, err := readRecord(c.raw)
		if err != nil {
			return 0, err
		}
		switch typ {
		case RecordApplication:
			pt, err := c.open(body)
			if err != nil {
				return 0, err
			}
			c.readBuf = pt
		case RecordAlert:
			return 0, net.ErrClosed
		default:
			return 0, fmt.Errorf("tlssim: unexpected record type %#x", typ)
		}
	}
	n := copy(b, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) {
	if err := c.Handshake(); err != nil {
		return 0, err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > MaxRecordPayload {
			n = MaxRecordPayload
		}
		body, err := c.seal(b[:n])
		if err != nil {
			return total, err
		}
		if err := writeRecord(c.raw, RecordApplication, body); err != nil {
			return total, err
		}
		b = b[n:]
		total += n
	}
	return total, nil
}

// PeerCertificate returns the certificate blob the server presented
// (client side, after the handshake).
func (c *Conn) PeerCertificate() []byte { return c.peerCert }

// ServerName returns the SNI: as configured on clients, as received on
// servers (after the handshake).
func (c *Conn) ServerName() string { return c.cfg.ServerName }

// Close implements net.Conn.
func (c *Conn) Close() error { return c.raw.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }
