// Package faults is a scriptable fault injector for the simulated world.
// A Scheduler executes a script of timed impairment events on the virtual
// clock: loss bursts, latency spikes, bandwidth collapses and full flaps
// on a netsim link; "reset storm" and throttling episodes on the GFW; and
// crash/restart events targeted at fleet remote proxies.
//
// Windowed link impairments compose as overlays on the link's base
// configuration (captured once, at injection start): concurrent loss
// bursts combine multiplicatively, latency spikes add, bandwidth factors
// multiply, and a flap forces total loss. When an event's window closes
// the overlay is removed and the effective configuration recomputed, so
// overlapping windows of different kinds behave independently.
//
// Everything runs on netx primitives over the virtual clock, so a given
// (seed, script) pair perturbs the world at exactly the same virtual
// instants run after run — fault experiments stay byte-reproducible under
// any `-parallel N`.
package faults

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scholarcloud/internal/gfw"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
)

// Kind identifies what an Event impairs.
type Kind int

// Event kinds.
const (
	// LossBurst raises the link's loss probability by Loss for Duration.
	LossBurst Kind = iota
	// LatencySpike adds Delay and Jitter to the link for Duration.
	LatencySpike
	// BandwidthCollapse multiplies the link's bandwidth by Factor for
	// Duration.
	BandwidthCollapse
	// LinkFlap partitions the link completely (every packet lost) for
	// Duration.
	LinkFlap
	// ResetStorm makes the GFW answer a Rate fraction of tracked TCP
	// packets with forged RSTs for Duration.
	ResetStorm
	// Throttle makes the GFW drop an extra Rate fraction of tracked TCP
	// packets for Duration.
	Throttle
	// RemoteCrash kills fleet remote Target at onset; if Duration is
	// positive the remote is restarted when the window closes.
	RemoteCrash
)

// String names the kind for traces and errors.
func (k Kind) String() string {
	switch k {
	case LossBurst:
		return "loss-burst"
	case LatencySpike:
		return "latency-spike"
	case BandwidthCollapse:
		return "bandwidth-collapse"
	case LinkFlap:
		return "link-flap"
	case ResetStorm:
		return "reset-storm"
	case Throttle:
		return "throttle"
	case RemoteCrash:
		return "remote-crash"
	default:
		return fmt.Sprintf("kind-%d", int(k))
	}
}

// Event is one scripted impairment.
type Event struct {
	// At is the event's onset, as a virtual-time offset from Inject.
	At time.Duration
	// Duration is the impairment window. Link and GFW impairments revert
	// when it closes; a RemoteCrash with positive Duration restarts the
	// remote then (zero leaves it down).
	Duration time.Duration
	Kind     Kind

	Loss   float64       // LossBurst: extra loss probability
	Delay  time.Duration // LatencySpike: added one-way delay
	Jitter time.Duration // LatencySpike: added jitter
	Factor float64       // BandwidthCollapse: bandwidth multiplier
	Rate   float64       // ResetStorm / Throttle: episode intensity
	Target int           // RemoteCrash: fleet member index (0 = primary)
}

// Config wires a Scheduler to the world it impairs. Link, GFW and the
// remote callbacks are each optional; events targeting an absent facility
// are counted as skipped rather than failing the run.
type Config struct {
	Env netx.Env
	// Link is the impaired link (the border link in the study world).
	Link *netsim.LinkHandle
	// GFW receives reset-storm and throttle episodes.
	GFW *gfw.GFW
	// CrashRemote kills fleet remote i.
	CrashRemote func(i int)
	// RestartRemote brings fleet remote i back up.
	RestartRemote func(i int)
	// Seed derives the deterministic onset jitter stream.
	Seed uint64
	// OnsetJitter spreads each event's onset by a deterministic
	// pseudo-random offset in [0, OnsetJitter), so repeated scenarios
	// don't phase-lock with periodic client traffic. Zero disables it.
	OnsetJitter time.Duration
}

// Scheduler executes a fault script. Create with New, then call Inject
// once the world is running.
type Scheduler struct {
	cfg    Config
	script []Event

	mu      sync.Mutex
	started bool
	base    netsim.LinkConfig
	gfwBase gfw.Policy    // GFW posture at injection start; episodes overlay it
	active  map[int]Event // windowed events currently applied, by index

	applied  metrics.Counter
	reverted metrics.Counter
	crashes  metrics.Counter
	restarts metrics.Counter
	skipped  metrics.Counter

	flowTrace *obs.Trace
}

// New builds a scheduler for script. Events are executed in onset order;
// the script is copied and may be reused by the caller.
func New(cfg Config, script []Event) *Scheduler {
	s := &Scheduler{
		cfg:    cfg,
		script: append([]Event(nil), script...),
		active: make(map[int]Event),
	}
	sort.SliceStable(s.script, func(i, j int) bool { return s.script[i].At < s.script[j].At })
	return s
}

// Instrument publishes the scheduler's event counters on reg. Call once,
// before Inject.
func (s *Scheduler) Instrument(reg *obs.Registry) {
	if s == nil {
		return
	}
	reg.RegisterCounter("faults.events_applied", &s.applied)
	reg.RegisterCounter("faults.events_reverted", &s.reverted)
	reg.RegisterCounter("faults.remote_crashes", &s.crashes)
	reg.RegisterCounter("faults.remote_restarts", &s.restarts)
	reg.RegisterCounter("faults.events_skipped", &s.skipped)
}

// SetTrace installs (or, with nil, removes) a flow tracer that records
// every applied and reverted fault event.
func (s *Scheduler) SetTrace(t *obs.Trace) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flowTrace = t
}

// Script returns the scheduler's events in execution order.
func (s *Scheduler) Script() []Event { return append([]Event(nil), s.script...) }

// Inject starts executing the script on the virtual clock. Offsets are
// relative to the moment Inject is called. Safe to call on a nil
// scheduler (no-op) and idempotent on a live one, so measurement runners
// can arm faults unconditionally.
func (s *Scheduler) Inject() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	if s.cfg.Link != nil {
		s.base = s.cfg.Link.Config()
	}
	if s.cfg.GFW != nil {
		s.gfwBase = s.cfg.GFW.ActivePolicy()
	}
	s.mu.Unlock()
	for i, e := range s.script {
		i, e := i, e
		onset := e.At + s.onsetJitter(i)
		s.cfg.Env.Spawn.Go(func() {
			s.cfg.Env.Clock.Sleep(onset)
			if !s.apply(i, e) {
				return
			}
			if e.Duration > 0 {
				s.cfg.Env.Clock.Sleep(e.Duration)
				s.revert(i, e)
			}
		})
	}
}

// apply activates event i and reports whether it took effect.
func (s *Scheduler) apply(i int, e Event) bool {
	switch e.Kind {
	case RemoteCrash:
		if s.cfg.CrashRemote == nil {
			s.skipped.Inc()
			return false
		}
		s.cfg.CrashRemote(e.Target)
		s.crashes.Inc()
		s.trace("apply", e)
		// The "revert" of a crash is the restart.
		return e.Duration > 0 && s.cfg.RestartRemote != nil
	case ResetStorm, Throttle:
		if s.cfg.GFW == nil {
			s.skipped.Inc()
			return false
		}
	default:
		if s.cfg.Link == nil {
			s.skipped.Inc()
			return false
		}
	}
	s.mu.Lock()
	s.active[i] = e
	s.recomputeLocked()
	s.mu.Unlock()
	s.applied.Inc()
	s.trace("apply", e)
	return true
}

// revert deactivates event i when its window closes.
func (s *Scheduler) revert(i int, e Event) {
	if e.Kind == RemoteCrash {
		s.cfg.RestartRemote(e.Target)
		s.restarts.Inc()
		s.trace("restart", e)
		return
	}
	s.mu.Lock()
	delete(s.active, i)
	s.recomputeLocked()
	s.mu.Unlock()
	s.reverted.Inc()
	s.trace("revert", e)
}

// recomputeLocked folds every active overlay onto the base link config
// and the GFW's episode state. Overlays are folded in script order so
// floating-point composition is identical run to run.
func (s *Scheduler) recomputeLocked() {
	cfg := s.base
	storm, throttle := 0.0, 0.0
	idx := make([]int, 0, len(s.active))
	for i := range s.active {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		e := s.active[i]
		switch e.Kind {
		case LossBurst:
			cfg.BaseLoss = 1 - (1-cfg.BaseLoss)*(1-e.Loss)
		case LatencySpike:
			cfg.Delay += e.Delay
			cfg.Jitter += e.Jitter
		case BandwidthCollapse:
			if cfg.Bandwidth > 0 && e.Factor > 0 {
				cfg.Bandwidth *= e.Factor
			}
		case LinkFlap:
			cfg.BaseLoss = 1
		case ResetStorm:
			if e.Rate > storm {
				storm = e.Rate
			}
		case Throttle:
			if e.Rate > throttle {
				throttle = e.Rate
			}
		}
	}
	if s.cfg.Link != nil {
		s.cfg.Link.SetConfig(cfg)
	}
	if s.cfg.GFW != nil {
		// Overlay the episode intensities on the posture captured at
		// injection start, so an armed crackdown or blackhole list
		// survives the episode's start and end.
		p := s.gfwBase
		p.ResetStorm = storm
		p.Throttle = throttle
		s.cfg.GFW.Apply(p)
	}
}

func (s *Scheduler) trace(phase string, e Event) {
	s.mu.Lock()
	t := s.flowTrace
	s.mu.Unlock()
	t.Addf("faults", phase, "%s target=%d dur=%v", e.Kind, e.Target, e.Duration)
}

// onsetJitter draws the deterministic onset offset for event i.
func (s *Scheduler) onsetJitter(i int) time.Duration {
	if s.cfg.OnsetJitter <= 0 {
		return 0
	}
	x := (s.cfg.Seed ^ 0xFA017) + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return time.Duration(float64(x>>11) / float64(1<<53) * float64(s.cfg.OnsetJitter))
}
