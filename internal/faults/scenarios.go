package faults

import "time"

// Named scenarios. Each is a script sized for the faults figure's
// measurement window (clients staggered over ~20s, three visit rounds,
// ~90s of virtual time): impairments open after the first round is in
// flight and close before the run settles, so every scenario exercises
// both degradation and recovery.
var scenarios = map[string][]Event{
	// A congestion episode on the border path: two overlapping loss
	// bursts peaking at ~28% total loss.
	"loss-burst": {
		{At: 15 * time.Second, Duration: 30 * time.Second, Kind: LossBurst, Loss: 0.20},
		{At: 25 * time.Second, Duration: 15 * time.Second, Kind: LossBurst, Loss: 0.10},
	},
	// A routing change adds 250ms of one-way delay and 40ms of jitter.
	"latency-spike": {
		{At: 15 * time.Second, Duration: 30 * time.Second, Kind: LatencySpike, Delay: 250 * time.Millisecond, Jitter: 40 * time.Millisecond},
	},
	// The border link collapses to 5% of its provisioned bandwidth.
	"bandwidth-collapse": {
		{At: 15 * time.Second, Duration: 30 * time.Second, Kind: BandwidthCollapse, Factor: 0.05},
	},
	// Two full partitions of the border link, 6 seconds each.
	"link-flap": {
		{At: 18 * time.Second, Duration: 6 * time.Second, Kind: LinkFlap},
		{At: 38 * time.Second, Duration: 6 * time.Second, Kind: LinkFlap},
	},
	// The GFW answers 8% of tracked cross-border packets with forged
	// RSTs for half a minute.
	"reset-storm": {
		{At: 15 * time.Second, Duration: 30 * time.Second, Kind: ResetStorm, Rate: 0.08},
	},
	// An episodic throttling campaign drops 30% of cross-border packets.
	"throttle": {
		{At: 15 * time.Second, Duration: 30 * time.Second, Kind: Throttle, Rate: 0.30},
	},
	// The primary remote proxy is taken down mid-run and restarted 35
	// seconds later.
	"remote-crash": {
		{At: 25 * time.Second, Duration: 35 * time.Second, Kind: RemoteCrash, Target: 0},
	},
	// The acceptance scenario: a loss burst on the border plus a primary
	// remote takedown (no restart) while page loads are in flight.
	"burst-loss+crash": {
		{At: 10 * time.Second, Duration: 40 * time.Second, Kind: LossBurst, Loss: 0.25},
		{At: 25 * time.Second, Kind: RemoteCrash, Target: 0},
	},
}

// scenarioOrder fixes the presentation order (mildest link impairments
// first, then censor episodes, then takedowns).
var scenarioOrder = []string{
	"loss-burst",
	"latency-spike",
	"bandwidth-collapse",
	"link-flap",
	"reset-storm",
	"throttle",
	"remote-crash",
	"burst-loss+crash",
}

// Scenarios lists the built-in scenario names in presentation order.
func Scenarios() []string { return append([]string(nil), scenarioOrder...) }

// Script returns the named scenario's event script.
func Script(name string) ([]Event, bool) {
	s, ok := scenarios[name]
	if !ok {
		return nil, false
	}
	return append([]Event(nil), s...), true
}
