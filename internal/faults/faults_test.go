package faults

import (
	"testing"
	"time"
)

// TestScenarioTable pins the built-in scenario catalogue: every listed
// name resolves to a non-empty script whose events carry the intensity
// field their kind reads, so a typo in the table fails here instead of
// silently injecting a no-op impairment.
func TestScenarioTable(t *testing.T) {
	names := Scenarios()
	if len(names) != len(scenarios) {
		t.Fatalf("Scenarios() lists %d names, table has %d", len(names), len(scenarios))
	}
	for _, name := range names {
		script, ok := Script(name)
		if !ok || len(script) == 0 {
			t.Errorf("scenario %q: ok=%v, %d events", name, ok, len(script))
			continue
		}
		for i, e := range script {
			if e.At < 0 {
				t.Errorf("%s[%d]: negative onset %v", name, i, e.At)
			}
			switch e.Kind {
			case LossBurst:
				if e.Loss <= 0 || e.Loss >= 1 {
					t.Errorf("%s[%d]: LossBurst loss %v outside (0,1)", name, i, e.Loss)
				}
			case LatencySpike:
				if e.Delay <= 0 {
					t.Errorf("%s[%d]: LatencySpike without delay", name, i)
				}
			case BandwidthCollapse:
				if e.Factor <= 0 || e.Factor >= 1 {
					t.Errorf("%s[%d]: BandwidthCollapse factor %v outside (0,1)", name, i, e.Factor)
				}
			case ResetStorm, Throttle:
				if e.Rate <= 0 || e.Rate >= 1 {
					t.Errorf("%s[%d]: %v rate %v outside (0,1)", name, i, e.Kind, e.Rate)
				}
			}
			if e.Kind != RemoteCrash && e.Duration <= 0 {
				t.Errorf("%s[%d]: %v event never reverts (duration %v)", name, i, e.Kind, e.Duration)
			}
		}
	}
	if _, ok := Script("no-such-scenario"); ok {
		t.Error(`Script("no-such-scenario") resolved`)
	}
}

// TestNewSortsAndCopiesScript checks the scheduler orders events by onset
// and detaches its copy from the caller's slice.
func TestNewSortsAndCopiesScript(t *testing.T) {
	in := []Event{
		{At: 30 * time.Second, Kind: Throttle, Rate: 0.1, Duration: time.Second},
		{At: 10 * time.Second, Kind: LossBurst, Loss: 0.2, Duration: time.Second},
	}
	s := New(Config{}, in)
	in[0].Rate = 0.99
	got := s.Script()
	if len(got) != 2 || got[0].Kind != LossBurst || got[1].Kind != Throttle {
		t.Fatalf("script not sorted by onset: %+v", got)
	}
	if got[1].Rate != 0.1 {
		t.Errorf("scheduler shares the caller's slice: rate = %v", got[1].Rate)
	}
	got[0].Loss = 0.5
	if s.Script()[0].Loss != 0.2 {
		t.Error("Script() exposes the scheduler's internal slice")
	}
}

// TestApplySkipsAbsentFacilities checks events targeting a facility the
// config doesn't wire are counted as skipped instead of panicking.
func TestApplySkipsAbsentFacilities(t *testing.T) {
	s := New(Config{}, nil)
	for i, e := range []Event{
		{Kind: LossBurst, Loss: 0.1},                // no Link
		{Kind: ResetStorm, Rate: 0.1},               // no GFW
		{Kind: RemoteCrash, Target: 0},              // no CrashRemote
		{Kind: LinkFlap, Duration: 5 * time.Second}, // no Link
	} {
		if s.apply(i, e) {
			t.Errorf("event %d (%v) applied with no facility wired", i, e.Kind)
		}
	}
	if got := s.skipped.Value(); got != 4 {
		t.Errorf("skipped counter = %d, want 4", got)
	}
	if got := s.applied.Value(); got != 0 {
		t.Errorf("applied counter = %d, want 0", got)
	}
}

// TestOnsetJitterDeterministic checks the jitter stream is a pure
// function of (seed, index) and stays inside its window.
func TestOnsetJitterDeterministic(t *testing.T) {
	a := New(Config{Seed: 42, OnsetJitter: 3 * time.Second}, nil)
	b := New(Config{Seed: 42, OnsetJitter: 3 * time.Second}, nil)
	c := New(Config{Seed: 43, OnsetJitter: 3 * time.Second}, nil)
	var differs bool
	for i := 0; i < 16; i++ {
		ja := a.onsetJitter(i)
		if jb := b.onsetJitter(i); ja != jb {
			t.Fatalf("same seed, index %d: %v vs %v", i, ja, jb)
		}
		if ja < 0 || ja >= 3*time.Second {
			t.Fatalf("index %d: jitter %v outside [0, 3s)", i, ja)
		}
		if ja != c.onsetJitter(i) {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 42 and 43 produced identical jitter streams")
	}
	if j := New(Config{Seed: 42}, nil).onsetJitter(5); j != 0 {
		t.Errorf("zero OnsetJitter drew %v", j)
	}
}
