// Package pki is an Easy-RSA equivalent: it builds an X.509 certificate
// authority and issues server and client certificates from it, exactly the
// workflow the paper's OpenVPN methodology describes ("use the Easy-RSA
// tool to create the PKI certificates and keys", §4.2). Certificates are
// real crypto/x509 artifacts signed with Ed25519, so verification
// failures are genuine signature failures, not simulated flags. Ed25519
// is used (rather than ECDSA) because both its key generation and its
// signatures are pure functions of the entropy stream — with a seeded
// Rand every certificate byte is reproducible, which the simulator's
// byte-identical-figures guarantee depends on.
package pki

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"io"
	"math/big"
	"time"
)

// Identity is a certificate plus its private key.
type Identity struct {
	Cert *x509.Certificate
	Key  ed25519.PrivateKey
	// DER is the raw certificate, convenient for embedding in handshakes.
	DER []byte
}

// CA is a certificate authority.
type CA struct {
	Identity
	serial int64
	now    func() time.Time
	rnd    io.Reader
}

// NewCA creates a self-signed CA. now supplies certificate validity
// timestamps and rnd the key material; pass the simulation clock's Now
// and the simulation environment's Rand for fully deterministic
// certificates. Nil arguments select the wall clock and crypto/rand.
func NewCA(commonName string, now func() time.Time, rnd io.Reader) (*CA, error) {
	if now == nil {
		now = time.Now
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	pub, key, err := ed25519.GenerateKey(rnd)
	if err != nil {
		return nil, fmt.Errorf("pki: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"ScholarCloud PKI"}},
		NotBefore:             now().Add(-time.Hour),
		NotAfter:              now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rnd, tmpl, tmpl, pub, key)
	if err != nil {
		return nil, fmt.Errorf("pki: self-sign CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Identity: Identity{Cert: cert, Key: key, DER: der}, serial: 1, now: now, rnd: rnd}, nil
}

// Issue signs a leaf certificate for commonName. server selects the
// extended key usage (server vs client authentication).
func (ca *CA) Issue(commonName string, server bool) (*Identity, error) {
	pub, key, err := ed25519.GenerateKey(ca.rnd)
	if err != nil {
		return nil, fmt.Errorf("pki: generate leaf key: %w", err)
	}
	ca.serial++
	eku := x509.ExtKeyUsageClientAuth
	if server {
		eku = x509.ExtKeyUsageServerAuth
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(ca.serial),
		Subject:      pkix.Name{CommonName: commonName},
		DNSNames:     []string{commonName},
		NotBefore:    ca.now().Add(-time.Hour),
		NotAfter:     ca.now().Add(2 * 365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{eku},
	}
	der, err := x509.CreateCertificate(ca.rnd, tmpl, ca.Cert, pub, ca.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: sign leaf: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Identity{Cert: cert, Key: key, DER: der}, nil
}

// Verifier returns a verification callback (suitable for
// tlssim.Config.VerifyPeer and the OpenVPN control channel) that checks
// the DER certificate chains to this CA and matches the expected name.
func (ca *CA) Verifier() func(der []byte, name string) error {
	roots := x509.NewCertPool()
	roots.AddCert(ca.Cert)
	nowFn := ca.now
	return func(der []byte, name string) error {
		if len(der) == 0 {
			return errors.New("pki: no certificate presented")
		}
		cert, err := x509.ParseCertificate(der)
		if err != nil {
			return fmt.Errorf("pki: parse peer certificate: %w", err)
		}
		opts := x509.VerifyOptions{
			Roots:       roots,
			CurrentTime: nowFn(),
			KeyUsages:   []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
		}
		if _, err := cert.Verify(opts); err != nil {
			return fmt.Errorf("pki: chain verification failed: %w", err)
		}
		if name != "" {
			if err := cert.VerifyHostname(name); err != nil {
				return fmt.Errorf("pki: name mismatch: %w", err)
			}
		}
		return nil
	}
}
