package pki

import (
	"testing"
	"time"
)

func fixedNow() time.Time {
	return time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC)
}

func TestIssueAndVerify(t *testing.T) {
	ca, err := NewCA("ScholarCloud Root CA", fixedNow, nil)
	if err != nil {
		t.Fatal(err)
	}
	server, err := ca.Issue("remote.scholarcloud.example", true)
	if err != nil {
		t.Fatal(err)
	}
	verify := ca.Verifier()
	if err := verify(server.DER, "remote.scholarcloud.example"); err != nil {
		t.Errorf("verification failed: %v", err)
	}
}

func TestVerifyRejectsWrongName(t *testing.T) {
	ca, _ := NewCA("root", fixedNow, nil)
	leaf, _ := ca.Issue("good.example", true)
	verify := ca.Verifier()
	if err := verify(leaf.DER, "evil.example"); err == nil {
		t.Error("wrong name accepted")
	}
}

func TestVerifyRejectsForeignCA(t *testing.T) {
	ca1, _ := NewCA("root-1", fixedNow, nil)
	ca2, _ := NewCA("root-2", fixedNow, nil)
	leaf, _ := ca2.Issue("host.example", true)
	verify := ca1.Verifier()
	if err := verify(leaf.DER, "host.example"); err == nil {
		t.Error("certificate from a different CA accepted")
	}
}

func TestVerifyRejectsGarbage(t *testing.T) {
	ca, _ := NewCA("root", fixedNow, nil)
	verify := ca.Verifier()
	if err := verify(nil, "x"); err == nil {
		t.Error("empty certificate accepted")
	}
	if err := verify([]byte("not-der"), "x"); err == nil {
		t.Error("garbage certificate accepted")
	}
}

func TestClientAndServerEKU(t *testing.T) {
	ca, _ := NewCA("root", fixedNow, nil)
	server, _ := ca.Issue("s.example", true)
	client, _ := ca.Issue("c.example", false)
	if len(server.Cert.ExtKeyUsage) != 1 || len(client.Cert.ExtKeyUsage) != 1 {
		t.Fatal("missing EKU")
	}
	if server.Cert.ExtKeyUsage[0] == client.Cert.ExtKeyUsage[0] {
		t.Error("server and client EKUs identical")
	}
}

func TestSerialNumbersIncrease(t *testing.T) {
	ca, _ := NewCA("root", fixedNow, nil)
	a, _ := ca.Issue("a", true)
	b, _ := ca.Issue("b", true)
	if a.Cert.SerialNumber.Cmp(b.Cert.SerialNumber) >= 0 {
		t.Error("serial numbers not increasing")
	}
}
