// Package registry models the non-technical half of China's bilateral
// censorship ecosystem described in §2 of the paper: the government
// agencies that regulate Internet Content Providers (ICPs).
//
//   - TCA (Telecommunication Administration) agencies accept service
//     registrations in each city. Registration is a manual process that
//     verifies service name, type, domain, responsible person, and
//     supporting documents, taking weeks to months.
//   - MIIT maintains the centralized database of registered ICPs.
//   - MPS/MSS investigate and shut down illegal services — conservatively,
//     after evidence collection, unlike the GFW's aggressive technical
//     blocking.
//
// The two halves do not operate synchronously: the GFW (internal/gfw)
// never consults this registry when filtering packets, which is exactly
// how a legal service like Google Scholar ends up incidentally blocked,
// and how a registered service like ScholarCloud can coexist with the
// GFW. What the registry *does* control is enforcement: an unregistered
// proxy service that attracts an investigation is taken down; a
// registered one with an auditable whitelist survives.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"scholarcloud/internal/netx"
)

// ServiceType classifies a registered service.
type ServiceType string

// Service types relevant to the study.
const (
	ServiceWebProxy      ServiceType = "web-proxy"
	ServiceVPN           ServiceType = "vpn"
	ServiceContentPortal ServiceType = "content-portal"
)

// Document names required by the TCA registration workflow (§3,
// "Service legalization").
const (
	DocBiometric  = "biometric-of-legal-representative"
	DocServiceDoc = "service-documentation" // text, screenshots, usage videos
	DocUserGuide  = "workable-user-guide"
)

// Status of a registration.
type Status string

// Registration states.
const (
	StatusPending    Status = "pending"
	StatusRegistered Status = "registered"
	StatusRevoked    Status = "revoked"
)

// Errors returned by the workflow.
var (
	ErrMissingDocuments = errors.New("registry: registration requires biometric, service documentation, and user guide")
	ErrNotFound         = errors.New("registry: no such registration")
	ErrNotRegistered    = errors.New("registry: service is not registered")
)

// Application is what an ICP submits to a TCA agency.
type Application struct {
	ServiceName       string
	ServiceType       ServiceType
	Domain            string
	ResponsiblePerson string
	Documents         []string
	// Whitelist is the visible list of domains the service forwards —
	// auditable by the agencies, alterable on demand.
	Whitelist []string
	// EndpointIPs are the service's servers (domestic and remote).
	EndpointIPs []string
}

// Registration is a record in the MIIT database.
type Registration struct {
	ICPNumber string
	Status    Status
	App       Application

	SubmittedAt  time.Time
	RegisteredAt time.Time
	RevokedAt    time.Time
	RevokedFor   string
}

// Database is the centralized MIIT registration database
// (the paper cites miitbeian.gov.cn).
type Database struct {
	mu       sync.Mutex
	byNumber map[string]*Registration
	byIP     map[string]*Registration
	serial   int
}

// NewDatabase creates an empty MIIT database.
func NewDatabase() *Database {
	return &Database{
		byNumber: make(map[string]*Registration),
		byIP:     make(map[string]*Registration),
		serial:   15063436, // ScholarCloud's real number was 15063437
	}
}

// Lookup returns the registration covering an endpoint IP, if any.
func (db *Database) Lookup(ip string) (*Registration, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.byIP[ip]
	return r, ok
}

// LookupNumber returns the registration with the given ICP number.
func (db *Database) LookupNumber(icp string) (*Registration, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.byNumber[icp]
	return r, ok
}

// AuditWhitelist returns the visible whitelist of a registered service —
// what government agencies examine, and may request changes to.
func (db *Database) AuditWhitelist(icp string) ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.byNumber[icp]
	if !ok {
		return nil, ErrNotFound
	}
	if r.Status != StatusRegistered {
		return nil, ErrNotRegistered
	}
	wl := append([]string(nil), r.App.Whitelist...)
	sort.Strings(wl)
	return wl, nil
}

func (db *Database) add(r *Registration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.serial++
	r.ICPNumber = fmt.Sprintf("ICP-%d", db.serial)
	db.byNumber[r.ICPNumber] = r
	for _, ip := range r.App.EndpointIPs {
		db.byIP[ip] = r
	}
}

// TCA is a city Telecommunication Administration agency.
type TCA struct {
	City  string
	db    *Database
	clock netx.Clock
	// VerificationDelay models the manual recording-and-verification
	// process ("typically takes weeks to months").
	VerificationDelay time.Duration
}

// NewTCA creates a TCA agency feeding the given MIIT database.
func NewTCA(city string, db *Database, clock netx.Clock, verificationDelay time.Duration) *TCA {
	return &TCA{City: city, db: db, clock: clock, VerificationDelay: verificationDelay}
}

// Submit files an application. It validates the document set immediately
// and returns a pending registration; Await blocks through the manual
// verification period and returns the completed record.
func (t *TCA) Submit(app Application) (*Pending, error) {
	required := map[string]bool{DocBiometric: false, DocServiceDoc: false, DocUserGuide: false}
	for _, d := range app.Documents {
		if _, ok := required[d]; ok {
			required[d] = true
		}
	}
	for _, have := range required {
		if !have {
			return nil, ErrMissingDocuments
		}
	}
	if strings.TrimSpace(app.ResponsiblePerson) == "" {
		return nil, errors.New("registry: a responsible person is required")
	}
	reg := &Registration{
		Status:      StatusPending,
		App:         app,
		SubmittedAt: t.clock.Now(),
	}
	return &Pending{tca: t, reg: reg}, nil
}

// Pending is a submitted application awaiting manual verification.
type Pending struct {
	tca  *TCA
	reg  *Registration
	once sync.Once
}

// Await blocks for the verification period, then records the registration
// in the MIIT database and returns it.
func (p *Pending) Await() *Registration {
	p.once.Do(func() {
		p.tca.clock.Sleep(p.tca.VerificationDelay)
		p.reg.Status = StatusRegistered
		p.reg.RegisteredAt = p.tca.clock.Now()
		p.tca.db.add(p.reg)
	})
	return p.reg
}

// Enforcement models MPS/MSS: conservative, investigation-driven
// takedowns of illegal (unregistered) services.
type Enforcement struct {
	db    *Database
	clock netx.Clock
	// InvestigationDelay models evidence collection before action.
	InvestigationDelay time.Duration

	mu        sync.Mutex
	takedowns []Takedown
	onBlock   func(ip string)
}

// Takedown records an enforcement action.
type Takedown struct {
	IP     string
	ICP    string // empty if the service was unregistered
	Reason string
	At     time.Time
}

// NewEnforcement creates the MPS/MSS model.
func NewEnforcement(db *Database, clock netx.Clock, investigationDelay time.Duration) *Enforcement {
	return &Enforcement{db: db, clock: clock, InvestigationDelay: investigationDelay}
}

// OnBlock registers a callback invoked with each blocked IP (wired to the
// GFW's IP blocklist in experiments: domain blocking is implemented
// technically).
func (e *Enforcement) OnBlock(fn func(ip string)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onBlock = fn
}

// Report files a complaint that ip runs an internet service. The
// investigation runs synchronously on the caller's (virtual) time:
// registered services with an auditable whitelist are left alone;
// unregistered services are shut down.
func (e *Enforcement) Report(ip, allegation string) *Takedown {
	e.clock.Sleep(e.InvestigationDelay)
	if reg, ok := e.db.Lookup(ip); ok && reg.Status == StatusRegistered {
		return nil // legal service: no action
	}
	td := e.takedown(ip, "", "unregistered service: "+allegation)
	return &td
}

// Revoke shuts down a registered service (e.g. after a policy change),
// blocking its endpoints.
func (e *Enforcement) Revoke(icp, reason string) error {
	reg, ok := e.db.LookupNumber(icp)
	if !ok {
		return ErrNotFound
	}
	e.db.mu.Lock()
	reg.Status = StatusRevoked
	reg.RevokedAt = e.clock.Now()
	reg.RevokedFor = reason
	ips := append([]string(nil), reg.App.EndpointIPs...)
	e.db.mu.Unlock()
	for _, ip := range ips {
		e.takedown(ip, icp, reason)
	}
	return nil
}

func (e *Enforcement) takedown(ip, icp, reason string) Takedown {
	td := Takedown{IP: ip, ICP: icp, Reason: reason, At: e.clock.Now()}
	e.mu.Lock()
	e.takedowns = append(e.takedowns, td)
	fn := e.onBlock
	e.mu.Unlock()
	if fn != nil {
		fn(ip)
	}
	return td
}

// Takedowns returns all enforcement actions so far.
func (e *Enforcement) Takedowns() []Takedown {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Takedown(nil), e.takedowns...)
}
