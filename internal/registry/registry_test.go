package registry

import (
	"errors"
	"testing"
	"time"

	"scholarcloud/internal/netx"
	"scholarcloud/internal/vclock"
)

type simClock struct{ s *vclock.Scheduler }

func (c simClock) Now() time.Time        { return c.s.Now() }
func (c simClock) Sleep(d time.Duration) { c.s.Sleep(d) }
func (c simClock) AfterFunc(d time.Duration, fn func()) netx.Timer {
	return c.s.AfterFunc(d, fn)
}

func runSim(t *testing.T, s *vclock.Scheduler, fn func()) {
	t.Helper()
	done := make(chan struct{})
	s.Go(func() {
		defer close(done)
		fn()
	})
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func fullApplication() Application {
	return Application{
		ServiceName:       "ScholarCloud",
		ServiceType:       ServiceWebProxy,
		Domain:            "scholar.thucloud.com",
		ResponsiblePerson: "Zhang San",
		Documents:         []string{DocBiometric, DocServiceDoc, DocUserGuide},
		Whitelist:         []string{"scholar.google.com", "accounts.google.com"},
		EndpointIPs:       []string{"101.6.6.6", "198.51.100.7"},
	}
}

func TestRegistrationWorkflow(t *testing.T) {
	s := vclock.New()
	defer s.Stop()
	clock := simClock{s}
	db := NewDatabase()
	tca := NewTCA("Beijing", db, clock, 30*24*time.Hour)

	runSim(t, s, func() {
		pending, err := tca.Submit(fullApplication())
		if err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		start := s.Elapsed()
		reg := pending.Await()
		if d := s.Elapsed() - start; d != 30*24*time.Hour {
			t.Errorf("verification took %v, want 30 days", d)
		}
		if reg.Status != StatusRegistered || reg.ICPNumber == "" {
			t.Errorf("registration = %+v", reg)
		}
		if _, ok := db.Lookup("101.6.6.6"); !ok {
			t.Error("domestic endpoint not in MIIT database")
		}
		if _, ok := db.Lookup("198.51.100.7"); !ok {
			t.Error("remote endpoint not in MIIT database")
		}
	})
}

func TestSubmitRequiresDocuments(t *testing.T) {
	s := vclock.New()
	defer s.Stop()
	tca := NewTCA("Beijing", NewDatabase(), simClock{s}, time.Hour)

	app := fullApplication()
	app.Documents = []string{DocBiometric} // missing two
	if _, err := tca.Submit(app); !errors.Is(err, ErrMissingDocuments) {
		t.Errorf("err = %v, want ErrMissingDocuments", err)
	}

	app = fullApplication()
	app.ResponsiblePerson = "  "
	if _, err := tca.Submit(app); err == nil {
		t.Error("application without responsible person accepted")
	}
}

func TestAuditWhitelist(t *testing.T) {
	s := vclock.New()
	defer s.Stop()
	db := NewDatabase()
	tca := NewTCA("Beijing", db, simClock{s}, time.Hour)
	runSim(t, s, func() {
		pending, _ := tca.Submit(fullApplication())
		reg := pending.Await()
		wl, err := db.AuditWhitelist(reg.ICPNumber)
		if err != nil {
			t.Errorf("audit: %v", err)
			return
		}
		if len(wl) != 2 || wl[0] != "accounts.google.com" {
			t.Errorf("whitelist = %v", wl)
		}
	})
	if _, err := db.AuditWhitelist("ICP-0"); !errors.Is(err, ErrNotFound) {
		t.Errorf("audit unknown: err = %v", err)
	}
}

func TestEnforcementSparesRegisteredService(t *testing.T) {
	s := vclock.New()
	defer s.Stop()
	db := NewDatabase()
	tca := NewTCA("Beijing", db, simClock{s}, time.Hour)
	enf := NewEnforcement(db, simClock{s}, 24*time.Hour)

	var blocked []string
	enf.OnBlock(func(ip string) { blocked = append(blocked, ip) })

	runSim(t, s, func() {
		pending, _ := tca.Submit(fullApplication())
		pending.Await()
		if td := enf.Report("101.6.6.6", "operates a proxy"); td != nil {
			t.Errorf("registered service taken down: %+v", td)
		}
	})
	if len(blocked) != 0 {
		t.Errorf("blocked = %v", blocked)
	}
}

func TestEnforcementShutsDownUnregisteredService(t *testing.T) {
	s := vclock.New()
	defer s.Stop()
	db := NewDatabase()
	enf := NewEnforcement(db, simClock{s}, 24*time.Hour)

	var blocked []string
	enf.OnBlock(func(ip string) { blocked = append(blocked, ip) })

	runSim(t, s, func() {
		start := s.Elapsed()
		td := enf.Report("203.0.113.99", "unregistered VPN")
		if td == nil {
			t.Error("unregistered service not taken down")
			return
		}
		if d := s.Elapsed() - start; d != 24*time.Hour {
			t.Errorf("investigation took %v, want 24h (conservative, evidence-driven)", d)
		}
	})
	if len(blocked) != 1 || blocked[0] != "203.0.113.99" {
		t.Errorf("blocked = %v", blocked)
	}
	if n := len(enf.Takedowns()); n != 1 {
		t.Errorf("takedowns = %d", n)
	}
}

func TestRevokeBlocksAllEndpoints(t *testing.T) {
	s := vclock.New()
	defer s.Stop()
	db := NewDatabase()
	tca := NewTCA("Beijing", db, simClock{s}, time.Hour)
	enf := NewEnforcement(db, simClock{s}, time.Hour)

	var blocked []string
	enf.OnBlock(func(ip string) { blocked = append(blocked, ip) })

	runSim(t, s, func() {
		pending, _ := tca.Submit(fullApplication())
		reg := pending.Await()
		if err := enf.Revoke(reg.ICPNumber, "policy change"); err != nil {
			t.Errorf("revoke: %v", err)
		}
		if r, _ := db.LookupNumber(reg.ICPNumber); r.Status != StatusRevoked {
			t.Errorf("status = %v", r.Status)
		}
		if _, err := db.AuditWhitelist(reg.ICPNumber); !errors.Is(err, ErrNotRegistered) {
			t.Errorf("audit revoked: err = %v", err)
		}
	})
	if len(blocked) != 2 {
		t.Errorf("blocked = %v, want both endpoints", blocked)
	}
	if err := enf.Revoke("ICP-0", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("revoke unknown: err = %v", err)
	}
}

func TestICPNumbersAreUnique(t *testing.T) {
	s := vclock.New()
	defer s.Stop()
	db := NewDatabase()
	tca := NewTCA("Beijing", db, simClock{s}, time.Millisecond)
	runSim(t, s, func() {
		seen := map[string]bool{}
		for i := 0; i < 5; i++ {
			app := fullApplication()
			app.EndpointIPs = nil
			pending, _ := tca.Submit(app)
			reg := pending.Await()
			if seen[reg.ICPNumber] {
				t.Errorf("duplicate ICP number %s", reg.ICPNumber)
			}
			seen[reg.ICPNumber] = true
		}
	})
}
