package shard

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// jsHash32 mirrors Hash32 exactly the way the generated PAC JavaScript
// computes it: charCodeAt, ^ and << on signed 32-bit integers, + in
// float64 (exact here — the sum of six < 2^31 terms fits well inside the
// 53-bit mantissa), and a trailing >>> 0. If this mirror and Hash32 ever
// disagree, a real browser would route users to different shards than
// the simulator does.
func jsHash32(s string) uint32 {
	var h int64 = 2166136261
	for i := 0; i < len(s); i++ {
		// JS: h = h ^ s.charCodeAt(i) — operands coerced to int32.
		h = int64(int32(uint32(h)) ^ int32(s[i]))
		x := int32(uint32(h))
		// JS: (h + (h<<1) + (h<<4) + (h<<7) + (h<<8) + (h<<24)) >>> 0,
		// each shift an int32 op, the sum exact in float64.
		sum := int64(x) + int64(x<<1) + int64(x<<4) + int64(x<<7) + int64(x<<8) + int64(x<<24)
		h = int64(uint32(sum)) // >>> 0
	}
	return uint32(h)
}

func TestHash32MatchesJavaScriptSemantics(t *testing.T) {
	inputs := []string{
		"", "a", "10.3.0.2", "10.3.1.7|101.6.6.6:8118",
		"2001:db8::2|101.6.6.11:8118",
		"https://scholar.google.com:443/static/logo.png",
		"fe80::1%25en0", "255.255.255.255",
	}
	for i := 0; i < 200; i++ {
		inputs = append(inputs, fmt.Sprintf("10.3.%d.%d|101.6.6.%d:8118", i/200+2, i%200+1, 10+i%8))
	}
	for _, in := range inputs {
		if got, want := Hash32(in), jsHash32(in); got != want {
			t.Errorf("Hash32(%q) = %d, JS mirror = %d", in, got, want)
		}
	}
}

func TestHash32IsFNV1a(t *testing.T) {
	// Spot-check against the reference multiply form: the shift-add
	// decomposition must equal h * 16777619 mod 2^32.
	ref := func(s string) uint32 {
		h := uint32(2166136261)
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= 16777619
		}
		return h
	}
	for _, in := range []string{"", "a", "foobar", "10.3.0.2|x"} {
		if Hash32(in) != ref(in) {
			t.Errorf("Hash32(%q) = %d, FNV-1a reference = %d", in, Hash32(in), ref(in))
		}
	}
}

func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("101.6.6.%d:8118", 10+i)
	}
	return names
}

func TestOwnerIsStableAndBalanced(t *testing.T) {
	r := NewRing(shardNames(4))
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("https://scholar.google.com:443/doc/%d", i)
		o1, o2 := r.Owner(key), r.Owner(key)
		if o1 != o2 || o1 == "" {
			t.Fatalf("Owner(%q) unstable: %q then %q", key, o1, o2)
		}
		counts[o1]++
	}
	for _, n := range r.Names() {
		if counts[n] < 400/4/3 {
			t.Errorf("shard %s owns only %d/400 keys — rendezvous spread collapsed: %v", n, counts[n], counts)
		}
	}
}

// TestDeathRemapsOnlyTheDeadShardsKeys is the rendezvous property the
// cache tier depends on: marking one shard down must not move any key
// whose owner survives.
func TestDeathRemapsOnlyTheDeadShardsKeys(t *testing.T) {
	r := NewRing(shardNames(4))
	keys := make([]string, 500)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		before[i] = r.Owner(keys[i])
	}
	victim := r.Names()[1]
	r.MarkDown(victim)
	moved, orphans := 0, 0
	for i, k := range keys {
		after := r.Owner(k)
		if after == victim {
			t.Fatalf("key %q still owned by the dead shard", k)
		}
		if before[i] != after {
			moved++
			if before[i] != victim {
				t.Errorf("key %q moved from live shard %s to %s", k, before[i], after)
			}
		}
		if before[i] == victim {
			orphans++
		}
	}
	if moved != orphans {
		t.Errorf("%d keys moved, but the dead shard owned %d", moved, orphans)
	}
	r.MarkUp(victim)
	for i, k := range keys {
		if r.Owner(k) != before[i] {
			t.Errorf("key %q did not return to %s after MarkUp", k, before[i])
		}
	}
}

func TestRehashOnDeathOff(t *testing.T) {
	r := NewRing(shardNames(3))
	r.SetRehashOnDeath(false)
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	before := make(map[string]string)
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.MarkDown(r.Names()[0])
	for _, k := range keys {
		if r.Owner(k) != before[k] {
			t.Errorf("ownership of %q changed with rehash-on-death off", k)
		}
	}
}

func TestAssignOrdersByScoreAndSkipsDown(t *testing.T) {
	r := NewRing(shardNames(4))
	user := "10.3.1.7"
	order := r.Assign(user)
	if len(order) != 4 {
		t.Fatalf("Assign returned %d shards", len(order))
	}
	if order[0] != r.Owner(user) {
		t.Errorf("Assign[0] = %s, Owner = %s", order[0], r.Owner(user))
	}
	for i := 1; i < len(order); i++ {
		if Score(user, order[i-1]) < Score(user, order[i]) {
			t.Errorf("Assign not in descending score order at %d: %v", i, order)
		}
	}
	r.MarkDown(order[0])
	next := r.Assign(user)
	if len(next) != 3 || next[0] != order[1] {
		t.Errorf("after death, Assign = %v (want %v promoted)", next, order[1])
	}
}

func TestDirectorNotifiesAndCounts(t *testing.T) {
	r := NewRing(shardNames(3))
	d := NewDirector(r)
	var got [][]string
	d.OnChange(func(up []string) { got = append(got, up) })
	victim := r.Names()[2]
	d.MarkDown(victim)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("after MarkDown, notifications = %v", got)
	}
	if !r.IsDown(victim) {
		t.Error("ring did not record the MarkDown")
	}
	d.MarkUp(victim)
	if len(got) != 2 || len(got[1]) != 3 {
		t.Fatalf("after MarkUp, notifications = %v", got)
	}
}

// TestDirectorFanOutIsAtomicAcrossSubscribers is the regression test for
// the autoscaler's ordering requirement: every subscriber (PAC republish,
// cache-peer updates) must observe the identical sequence of up-sets, and
// each delivered up-set must be the one produced by the transition that
// triggered it — never a later transition's state leaking in because the
// ring was re-read outside the transition's critical section.
func TestDirectorFanOutIsAtomicAcrossSubscribers(t *testing.T) {
	names := shardNames(4)
	r := NewRing(names)
	d := NewDirector(r)
	var mu sync.Mutex
	var seqA, seqB []string
	record := func(seq *[]string) func(up []string) {
		return func(up []string) {
			mu.Lock()
			*seq = append(*seq, strings.Join(up, ","))
			mu.Unlock()
		}
	}
	d.OnChange(record(&seqA))
	d.OnChange(record(&seqB))

	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		victim := names[g+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				d.MarkDown(victim)
				d.MarkUp(victim)
			}
		}()
	}
	wg.Wait()

	if len(seqA) != 3*2*rounds || len(seqB) != len(seqA) {
		t.Fatalf("notification counts: subscriber A %d, B %d, want %d each", len(seqA), len(seqB), 3*2*rounds)
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("subscribers diverged at event %d: A saw %q, B saw %q", i, seqA[i], seqB[i])
		}
	}
	// Each delivered up-set must be the immediate successor of the
	// previous one: exactly one shard toggled, and shard 0 (never touched)
	// always live. A fan-out that re-reads the ring outside its
	// transition's critical section delivers duplicate or skipped states
	// here.
	prev := strings.Join(names, ",")
	for i, s := range seqA {
		if !strings.Contains(s, names[0]) {
			t.Fatalf("event %d (%q) lost always-up shard %s", i, s, names[0])
		}
		if d := upSetDiff(prev, s); d != 1 {
			t.Fatalf("event %d: %d shards toggled between %q and %q, want exactly 1", i, d, prev, s)
		}
		prev = s
	}
	if prev != strings.Join(names, ",") {
		t.Fatalf("final delivered up-set %q, want all shards live", prev)
	}
}

// upSetDiff counts the shards present in exactly one of two comma-joined
// up-sets.
func upSetDiff(a, b string) int {
	in := map[string]int{}
	for _, n := range strings.Split(a, ",") {
		in[n]++
	}
	for _, n := range strings.Split(b, ",") {
		in[n]--
	}
	d := 0
	for _, v := range in {
		if v != 0 {
			d++
		}
	}
	return d
}

func TestDirectorStampsRebalanceOnItsClock(t *testing.T) {
	r := NewRing(shardNames(2))
	d := NewDirector(r)
	if !d.LastRebalance().IsZero() {
		t.Fatal("LastRebalance non-zero before any transition")
	}
	now := time.Unix(1000, 0)
	d.SetClock(func() time.Time { return now })
	d.MarkDown(r.Names()[1])
	if got := d.LastRebalance(); !got.Equal(now) {
		t.Fatalf("LastRebalance = %v, want %v", got, now)
	}
	now = now.Add(90 * time.Second)
	d.MarkUp(r.Names()[1])
	if got := d.LastRebalance(); !got.Equal(now) {
		t.Fatalf("LastRebalance after MarkUp = %v, want %v", got, now)
	}
}
