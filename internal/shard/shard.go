// Package shard assigns users and cache keys onto a horizontally sharded
// domestic-proxy tier by rendezvous (highest-random-weight) hashing.
//
// One domestic proxy fronting the whole user base is a bottleneck and a
// single point of failure. This package is the tier's routing brain: a
// Ring of shard names (proxy "host:port" endpoints) scores every
// (key, shard) pair with a deterministic hash and routes the key to the
// highest score. Rendezvous hashing was chosen over a token ring for two
// properties the tier depends on:
//
//   - Minimal disruption: removing a dead shard remaps only the keys that
//     shard owned — every other key keeps its owner, so survivors' caches
//     stay warm through a takedown.
//   - Browser parity: the scoring function is plain 32-bit FNV-1a in
//     JS-safe arithmetic, so the generated PAC file (internal/pac) can
//     reproduce the exact assignment inside a real browser's
//     FindProxyForURL — the simulator and a stock browser route a user to
//     the same shard.
//
// The Director is the tier's coordinated health/takedown control plane:
// marking a shard down rehashes its key range to survivors (unless the
// rehash-on-death ablation is off) and notifies subscribers (PAC refresh,
// routing tables) in registration order.
package shard

import (
	"sort"
	"sync"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/obs"
)

// Hash32 is 32-bit FNV-1a over s, written so that a JavaScript mirror
// using only ^, <<, + and >>> 0 produces bit-identical values (see
// pac.Config.JavaScript). The FNV prime 16777619 is decomposed into
// shift-adds (2^24+2^8+2^7+2^4+2^1+2^0) because JS bitwise ops work on
// 32-bit integers while * would go through 53-bit floats and lose the
// high bits.
func Hash32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h = h + h<<1 + h<<4 + h<<7 + h<<8 + h<<24
	}
	return h
}

// Score is the rendezvous weight of key on shard name: the hash of
// "key|name". Routing picks the shard maximizing it.
func Score(key, name string) uint32 {
	return Hash32(key + "|" + name)
}

// Ring is a rendezvous-hash view of the shard tier. All methods are safe
// for concurrent use.
type Ring struct {
	mu    sync.RWMutex
	names []string        // all shards, in configured order
	down  map[string]bool // shards currently routed around
	// rehashOnDeath controls whether Owner skips down shards. True is the
	// production behaviour (a dead shard's key range rehashes to
	// survivors); false is the ablation where ownership stays pinned and
	// peers fall back to border fetches for orphaned keys.
	rehashOnDeath bool
}

// NewRing builds a ring over the shard names (proxy "host:port"
// endpoints), all up, with rehash-on-death enabled.
func NewRing(names []string) *Ring {
	return &Ring{
		names:         append([]string(nil), names...),
		down:          make(map[string]bool),
		rehashOnDeath: true,
	}
}

// SetRehashOnDeath toggles whether Owner routes around down shards.
func (r *Ring) SetRehashOnDeath(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rehashOnDeath = on
}

// Names returns all configured shards, up or down.
func (r *Ring) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// Up returns the live shards, in configured order.
func (r *Ring) Up() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	up := make([]string, 0, len(r.names))
	for _, n := range r.names {
		if !r.down[n] {
			up = append(up, n)
		}
	}
	return up
}

// MarkDown routes around shard name. Unknown names are ignored.
func (r *Ring) MarkDown(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.down[name] = true
}

// MarkUp readmits shard name.
func (r *Ring) MarkUp(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.down, name)
}

// IsDown reports whether shard name is currently routed around.
func (r *Ring) IsDown(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.down[name]
}

// Owner returns the shard owning key: the highest rendezvous score among
// live shards (or among all shards when rehash-on-death is off). Ties
// break toward the lexicographically smaller name so every peer computes
// the same owner. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	owner, best, have := "", uint32(0), false
	for _, n := range r.names {
		if r.rehashOnDeath && r.down[n] {
			continue
		}
		s := Score(key, n)
		if !have || s > best || (s == best && n < owner) {
			owner, best, have = n, s, true
		}
	}
	return owner
}

// Assign returns key's live shards in rendezvous preference order —
// Owner first, then each fallback. This is the per-user failover list the
// PAC file renders ("PROXY a; PROXY b; ...").
func (r *Ring) Assign(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	up := make([]string, 0, len(r.names))
	for _, n := range r.names {
		if !r.down[n] {
			up = append(up, n)
		}
	}
	sort.SliceStable(up, func(i, j int) bool {
		si, sj := Score(key, up[i]), Score(key, up[j])
		if si != sj {
			return si > sj
		}
		return up[i] < up[j]
	})
	return up
}

// Director is the shard tier's control plane: it owns the Ring's health
// state and fans every transition out to subscribers — the PAC policy
// (refresh the proxy list real browsers download), the experiment
// harness, the admin surface — in registration order, under one lock, so
// no subscriber ever observes a half-applied transition.
type Director struct {
	ring *Ring

	mu       sync.Mutex
	onChange []func(up []string)
	downs    metrics.Counter
	ups      metrics.Counter
	// now stamps transitions: the virtual clock in simulated worlds,
	// time.Now in deployment, nil to leave transitions unstamped.
	now           func() time.Time
	lastRebalance time.Time
}

// NewDirector wraps ring in a control plane.
func NewDirector(ring *Ring) *Director {
	return &Director{ring: ring}
}

// Ring returns the underlying rendezvous ring.
func (d *Director) Ring() *Ring { return d.ring }

// OnChange registers fn to run (with the post-transition live set) after
// every MarkDown/MarkUp. Callbacks run synchronously in registration
// order.
func (d *Director) OnChange(fn func(up []string)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onChange = append(d.onChange, fn)
}

// SetClock installs the time source transitions are stamped with (the
// virtual clock in simulated worlds, time.Now in deployment). A nil
// clock leaves LastRebalance at its zero value.
func (d *Director) SetClock(now func() time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = now
}

// LastRebalance returns the clock reading of the most recent
// MarkDown/MarkUp, or the zero time before the first transition (or when
// no clock is installed).
func (d *Director) LastRebalance() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastRebalance
}

// MarkDown takes shard name out of service: its key range rehashes to
// survivors (ring policy permitting) and every subscriber is notified so
// users get a refreshed PAC and the tier stops routing to it.
func (d *Director) MarkDown(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ring.MarkDown(name)
	d.downs.Inc()
	d.notifyLocked()
}

// MarkUp returns shard name to service and notifies subscribers.
func (d *Director) MarkUp(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ring.MarkUp(name)
	d.ups.Inc()
	d.notifyLocked()
}

// notifyLocked stamps the transition and fans it out while d.mu is still
// held, so concurrent transitions cannot interleave: every subscriber
// sees the same sequence of up-sets, each read atomically with the ring
// mutation that produced it. Subscribers must not call back into the
// Director.
func (d *Director) notifyLocked() {
	if d.now != nil {
		d.lastRebalance = d.now()
	}
	up := d.ring.Up()
	for _, fn := range d.onChange {
		fn(up)
	}
}

// Instrument publishes the control plane's transition counters and
// membership gauges on reg: configured members, live shard count, and
// the last-rebalance timestamp (milliseconds since the Unix epoch on the
// Director's clock; 0 before the first transition).
func (d *Director) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("shard.director.mark_down", &d.downs)
	reg.RegisterCounter("shard.director.mark_up", &d.ups)
	reg.RegisterGaugeFunc("shard.director.live", func() int64 {
		return int64(len(d.ring.Up()))
	})
	reg.RegisterGaugeFunc("shard.director.members", func() int64 {
		return int64(len(d.ring.Names()))
	})
	reg.RegisterGaugeFunc("shard.director.last_rebalance_ms", func() int64 {
		t := d.LastRebalance()
		if t.IsZero() {
			return 0
		}
		return t.UnixMilli()
	})
}
