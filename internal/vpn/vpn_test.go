package vpn

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
)

// vpnWorld wires a client, VPN server, and echo origin across a border.
type vpnWorld struct {
	n      *netsim.Network
	env    netx.Env
	client *netsim.Host
	server *netsim.Host
	origin *netsim.Host
}

func newVPNWorld(t *testing.T, variant Variant, secret string) (*vpnWorld, *Server) {
	t.Helper()
	n := netsim.New(31)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 70 * time.Millisecond})
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}
	w := &vpnWorld{
		n:      n,
		env:    n.Env(),
		client: n.AddHost("client", "10.0.0.2", cn, acc),
		server: n.AddHost("vpn", "198.51.100.10", us, acc),
		origin: n.AddHost("origin", "203.0.113.10", us, acc),
	}
	ln, err := w.origin.Listen("tcp", ":80")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() {
				defer conn.Close()
				io.Copy(conn, conn)
			})
		}
	})
	srv := &Server{
		Env: w.env,
		DialHost: func(host string, port int) (net.Conn, error) {
			return w.server.DialTCP(fmt.Sprintf("%s:%d", host, port))
		},
		Secret:  secret,
		Variant: variant,
	}
	sln, err := w.server.Listen("tcp", ":1723")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { srv.Serve(sln) })
	return w, srv
}

func (w *vpnWorld) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	w.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func (w *vpnWorld) client1(variant Variant, secret string) *Client {
	return &Client{
		Env:     w.env,
		Dial:    w.client.Dial,
		Server:  "198.51.100.10:1723",
		Secret:  secret,
		Variant: variant,
	}
}

func testEchoThroughTunnel(t *testing.T, variant Variant) {
	w, _ := newVPNWorld(t, variant, "s3cret")
	c := w.client1(variant, "s3cret")
	defer c.Close()
	w.run(t, func() error {
		conn, err := c.DialHost("203.0.113.10", 80)
		if err != nil {
			return err
		}
		defer conn.Close()
		msg := []byte("tunneled payload " + variant.String())
		conn.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("echo = %q", got)
		}
		return nil
	})
}

func TestPPTPEcho(t *testing.T) { testEchoThroughTunnel(t, PPTP) }
func TestL2TPEcho(t *testing.T) { testEchoThroughTunnel(t, L2TP) }

func TestWrongSecretRejected(t *testing.T) {
	w, _ := newVPNWorld(t, PPTP, "right")
	c := w.client1(PPTP, "wrong")
	defer c.Close()
	w.run(t, func() error {
		if err := c.Connect(); err == nil {
			t.Error("connect with wrong secret succeeded")
		}
		return nil
	})
}

func TestMultipleCallsShareOneSession(t *testing.T) {
	w, _ := newVPNWorld(t, PPTP, "s")
	c := w.client1(PPTP, "s")
	defer c.Close()
	w.run(t, func() error {
		before := w.client.Stats()
		_ = before
		for i := 0; i < 4; i++ {
			conn, err := c.DialHost("203.0.113.10", 80)
			if err != nil {
				return err
			}
			conn.Write([]byte{1})
			buf := make([]byte, 1)
			io.ReadFull(conn, buf)
			conn.Close()
		}
		return nil
	})
}

func TestWireIsEncrypted(t *testing.T) {
	w, _ := newVPNWorld(t, PPTP, "s")
	c := w.client1(PPTP, "s")
	defer c.Close()
	// Observe wire bytes with a trace; the plaintext marker must never
	// appear after the control handshake.
	// Only the client↔server leg is tunneled; the server↔origin leg is
	// plaintext by design (the tunnel terminates at the concentrator).
	var leaked bool
	marker := []byte("PLAINTEXT-MARKER")
	w.n.SetTrace(func(pkt *netsim.Packet) {
		onTunnelLeg := pkt.Src.IP == "10.0.0.2" || pkt.Dst.IP == "10.0.0.2"
		if onTunnelLeg && bytes.Contains(pkt.Payload, marker) {
			leaked = true
		}
	})
	defer w.n.SetTrace(nil)
	w.run(t, func() error {
		conn, err := c.DialHost("203.0.113.10", 80)
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.Write(marker)
		buf := make([]byte, len(marker))
		_, err = io.ReadFull(conn, buf)
		return err
	})
	if leaked {
		t.Error("tunnel payload crossed the wire in cleartext")
	}
}

func TestFirstBytesCarryMagic(t *testing.T) {
	// The GFW classifies native VPN by its magic cookie; verify the
	// client's first packet leads with it.
	w, _ := newVPNWorld(t, PPTP, "s")
	c := w.client1(PPTP, "s")
	defer c.Close()
	var first []byte
	w.n.SetTrace(func(pkt *netsim.Packet) {
		if first == nil && len(pkt.Payload) > 0 && pkt.Src.IP == "10.0.0.2" {
			first = append([]byte(nil), pkt.Payload...)
		}
	})
	defer w.n.SetTrace(nil)
	w.run(t, func() error { return c.Connect() })
	if len(first) < 4 || !bytes.Equal(first[:4], pptpMagic) {
		t.Errorf("first bytes = %x, want PPTP magic prefix", first)
	}
}

func TestDialUnreachableTarget(t *testing.T) {
	w, _ := newVPNWorld(t, PPTP, "s")
	c := w.client1(PPTP, "s")
	defer c.Close()
	w.run(t, func() error {
		_, err := c.DialHost("203.0.113.10", 9999) // closed port at origin
		if err == nil {
			t.Error("dial to closed origin port succeeded")
		}
		return nil
	})
}

func TestBadCallTargetMeta(t *testing.T) {
	for _, meta := range []string{"noport", "host:bad", "host:0", "host:999999", ""} {
		if _, _, err := splitHostPortMeta(meta); err == nil {
			t.Errorf("splitHostPortMeta(%q) succeeded", meta)
		}
	}
	host, port, err := splitHostPortMeta("a.example:443")
	if err != nil || host != "a.example" || port != 443 {
		t.Errorf("splitHostPortMeta = %q %d %v", host, port, err)
	}
}

func TestVariantString(t *testing.T) {
	if PPTP.String() != "pptp" || L2TP.String() != "l2tp" {
		t.Error("variant names wrong")
	}
}

func TestKeepaliveGeneratesTraffic(t *testing.T) {
	w, _ := newVPNWorld(t, PPTP, "s")
	c := w.client1(PPTP, "s")
	c.EchoInterval = 100 * time.Millisecond
	c.EchoSize = 64
	defer c.Close()
	w.run(t, func() error {
		if err := c.Connect(); err != nil {
			return err
		}
		w.client.ResetStats()
		w.n.Scheduler().Sleep(2 * time.Second)
		st := w.client.Stats()
		if st.TxBytes == 0 {
			t.Error("no keepalive traffic on an idle tunnel")
		}
		return nil
	})
}
