// Package vpn implements the paper's "native VPN": layer-2-style tunnels
// speaking PPTP (RFC 2637-flavoured control messages with the real
// 0x1A2B3C4D magic cookie, GRE-style data framing) or L2TP, with MPPE-
// style RC4 payload encryption. Most operating systems ship these stacks
// natively, which is why 93% of the paper's VPN users ran them (§4.1).
//
// The tunnel is "full": every connection the client opens — including
// name resolution, which happens at the far end — goes through the remote
// VPN server. That is what gives native VPN its clean robustness numbers
// (the GFW classifies the flow as a legal, registered VPN protocol and
// leaves it alone) and also its domestic-latency penalty (paper §1:
// "it significantly increases access latency to domestic Internet
// services"), reproduced by the DomesticPenalty experiment.
package vpn

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rc4"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
)

// Variant selects the tunneling protocol.
type Variant int

// Supported native VPN variants.
const (
	PPTP Variant = iota
	L2TP
)

// String names the variant.
func (v Variant) String() string {
	if v == L2TP {
		return "l2tp"
	}
	return "pptp"
}

// Control-message types.
const (
	msgSCCRQ byte = 1 // start-control-connection request
	msgSCCRP byte = 2 // start-control-connection reply
	msgOCRQ  byte = 3 // outgoing-call request (carries authenticator)
	msgOCRP  byte = 4 // outgoing-call reply
	msgSARQ  byte = 5 // L2TP/IPSec security-association request
	msgSARP  byte = 6 // L2TP/IPSec security-association reply
)

// pptpMagic is the real PPTP magic cookie (RFC 2637); the GFW's DPI keys
// on it to classify the flow as a VPN.
var pptpMagic = []byte{0x1A, 0x2B, 0x3C, 0x4D}

// l2tpMagic is the first-bytes fingerprint of the L2TP variant.
var l2tpMagic = []byte{0xC8, 0x02}

const nonceSize = 16

// Errors.
var (
	ErrBadSecret    = errors.New("vpn: authentication failed")
	ErrBadHandshake = errors.New("vpn: malformed control message")
)

func magicFor(v Variant) []byte {
	if v == L2TP {
		return l2tpMagic
	}
	return pptpMagic
}

func writeControl(w io.Writer, v Variant, typ byte, body []byte) error {
	msg := append(append([]byte{}, magicFor(v)...), typ)
	msg = append(msg, body...)
	_, err := w.Write(msg)
	return err
}

func readControl(r io.Reader, v Variant, wantType byte, bodyLen int) ([]byte, error) {
	head := make([]byte, len(magicFor(v))+1)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	if !bytes.Equal(head[:len(head)-1], magicFor(v)) || head[len(head)-1] != wantType {
		return nil, ErrBadHandshake
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

func authTag(secret string, nonceC, nonceS []byte) []byte {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(nonceC)
	mac.Write(nonceS)
	return mac.Sum(nil)[:16]
}

// sessionKeys derives per-direction RC4 (MPPE stand-in) keys.
func sessionKeys(secret string, nonceC, nonceS []byte) (c2s, s2c []byte) {
	derive := func(label string) []byte {
		h := sha256.New()
		h.Write([]byte(secret))
		h.Write(nonceC)
		h.Write(nonceS)
		h.Write([]byte(label))
		return h.Sum(nil)[:16]
	}
	return derive("c2s"), derive("s2c")
}

// rc4Conn applies MPPE-style RC4 stream encryption over a connection.
// Writes are serialized; reads must come from a single goroutine.
type rc4Conn struct {
	net.Conn
	wmu sync.Mutex
	enc *rc4.Cipher
	dec *rc4.Cipher
}

func newRC4Conn(conn net.Conn, encKey, decKey []byte) (*rc4Conn, error) {
	enc, err := rc4.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	dec, err := rc4.NewCipher(decKey)
	if err != nil {
		return nil, err
	}
	return &rc4Conn{Conn: conn, enc: enc, dec: dec}, nil
}

func (c *rc4Conn) Write(b []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	ct := make([]byte, len(b))
	c.enc.XORKeyStream(ct, b)
	if _, err := c.Conn.Write(ct); err != nil {
		return 0, err
	}
	return len(b), nil
}

func (c *rc4Conn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.dec.XORKeyStream(b[:n], b[:n])
	}
	return n, err
}

// Client is the VPN client. It implements tunnel.Method.
type Client struct {
	Env netx.Env
	// Dial opens raw connections from the client device.
	Dial func(network, address string) (net.Conn, error)
	// Server is the VPN server "ip:port".
	Server  string
	Secret  string
	Variant Variant
	// EchoInterval/EchoSize model PPTP's GRE echo keepalives, the link-
	// maintenance chatter that makes native VPN the heaviest method in
	// the paper's client-traffic comparison (Fig. 6a). Zero disables.
	EchoInterval time.Duration
	EchoSize     int

	mu   sync.Mutex
	sess *mux.Session
}

// Name implements tunnel.Method.
func (c *Client) Name() string { return "native-vpn-" + c.Variant.String() }

// Connect establishes the control connection and tunnel session. It is
// called lazily by DialHost; calling it eagerly mirrors the OS dialing
// the VPN at login.
func (c *Client) Connect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connectLocked()
}

func (c *Client) connectLocked() error {
	if c.sess != nil && c.sess.Err() == nil {
		return nil
	}
	conn, err := c.Dial("tcp", c.Server)
	if err != nil {
		return fmt.Errorf("vpn: dial server: %w", err)
	}

	nonceC := make([]byte, nonceSize)
	if _, err := rand.Read(nonceC); err != nil {
		conn.Close()
		return err
	}
	// SCCRQ -> SCCRP: exchange nonces.
	if err := writeControl(conn, c.Variant, msgSCCRQ, nonceC); err != nil {
		conn.Close()
		return err
	}
	nonceS, err := readControl(conn, c.Variant, msgSCCRP, nonceSize)
	if err != nil {
		conn.Close()
		return err
	}
	// OCRQ -> OCRP: prove knowledge of the shared secret.
	if err := writeControl(conn, c.Variant, msgOCRQ, authTag(c.Secret, nonceC, nonceS)); err != nil {
		conn.Close()
		return err
	}
	if _, err := readControl(conn, c.Variant, msgOCRP, 2); err != nil {
		conn.Close()
		return err
	}
	// L2TP adds an IPSec-style security-association round trip.
	if c.Variant == L2TP {
		if err := writeControl(conn, c.Variant, msgSARQ, nonceC); err != nil {
			conn.Close()
			return err
		}
		if _, err := readControl(conn, c.Variant, msgSARP, nonceSize); err != nil {
			conn.Close()
			return err
		}
	}

	c2s, s2c := sessionKeys(c.Secret, nonceC, nonceS)
	enc, err := newRC4Conn(conn, c2s, s2c)
	if err != nil {
		conn.Close()
		return err
	}
	c.sess = mux.NewSession(enc, c.Env, nil)
	if c.EchoInterval > 0 && c.EchoSize > 0 {
		sess := c.sess
		c.Env.Spawn.Go(func() {
			for {
				c.Env.Clock.Sleep(c.EchoInterval)
				if sess.Err() != nil {
					return
				}
				if err := sess.Ping(c.EchoSize); err != nil {
					return
				}
			}
		})
	}
	return nil
}

// DialHost implements tunnel.Method: open a tunneled call to host:port.
// The VPN server resolves names, so local DNS poisoning is bypassed.
func (c *Client) DialHost(host string, port int) (net.Conn, error) {
	c.mu.Lock()
	if err := c.connectLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	sess := c.sess
	c.mu.Unlock()
	return sess.Open([]byte(fmt.Sprintf("%s:%d", host, port)))
}

// Close implements tunnel.Method.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess != nil {
		c.sess.Close()
		c.sess = nil
	}
	return nil
}

// Server is the remote VPN concentrator.
type Server struct {
	Env netx.Env
	// DialHost reaches origins from the server's vantage point.
	DialHost func(host string, port int) (net.Conn, error)
	Secret   string
	Variant  Variant

	mu  sync.Mutex
	lns []net.Listener
}

// Serve accepts VPN clients from ln.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.Env.Spawn.Go(func() { s.handle(conn) })
	}
}

// Close shuts down the server's listeners.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ln := range s.lns {
		ln.Close()
	}
	s.lns = nil
}

func (s *Server) handle(conn net.Conn) {
	nonceC, err := readControl(conn, s.Variant, msgSCCRQ, nonceSize)
	if err != nil {
		conn.Close()
		return
	}
	nonceS := make([]byte, nonceSize)
	if _, err := rand.Read(nonceS); err != nil {
		conn.Close()
		return
	}
	if err := writeControl(conn, s.Variant, msgSCCRP, nonceS); err != nil {
		conn.Close()
		return
	}
	tag, err := readControl(conn, s.Variant, msgOCRQ, 16)
	if err != nil {
		conn.Close()
		return
	}
	if !hmac.Equal(tag, authTag(s.Secret, nonceC, nonceS)) {
		conn.Close() // bad secret: drop the call
		return
	}
	if err := writeControl(conn, s.Variant, msgOCRP, []byte{0, 1}); err != nil {
		conn.Close()
		return
	}
	if s.Variant == L2TP {
		if _, err := readControl(conn, s.Variant, msgSARQ, nonceSize); err != nil {
			conn.Close()
			return
		}
		if err := writeControl(conn, s.Variant, msgSARP, nonceS); err != nil {
			conn.Close()
			return
		}
	}

	c2s, s2c := sessionKeys(s.Secret, nonceC, nonceS)
	enc, err := newRC4Conn(conn, s2c, c2s) // server encrypts s2c, decrypts c2s
	if err != nil {
		conn.Close()
		return
	}
	mux.NewSession(enc, s.Env, func(meta []byte) (net.Conn, error) {
		host, port, err := splitHostPortMeta(string(meta))
		if err != nil {
			return nil, err
		}
		return s.DialHost(host, port)
	})
}

func splitHostPortMeta(meta string) (string, int, error) {
	for i := len(meta) - 1; i >= 0; i-- {
		if meta[i] == ':' {
			port := 0
			for _, ch := range meta[i+1:] {
				if ch < '0' || ch > '9' {
					return "", 0, fmt.Errorf("vpn: bad call target %q", meta)
				}
				port = port*10 + int(ch-'0')
			}
			if port == 0 || port > 65535 {
				return "", 0, fmt.Errorf("vpn: bad call target %q", meta)
			}
			return meta[:i], port, nil
		}
	}
	return "", 0, fmt.Errorf("vpn: bad call target %q", meta)
}
