package autoscale

import (
	"errors"
	"testing"
	"time"

	"scholarcloud/internal/obs"
	"scholarcloud/internal/opscost"
)

func testPolicy() Policy {
	return Policy{
		MinShards:           1,
		MaxShards:           8,
		TargetUtilization:   0.5,
		ShardSessionsPerSec: 10, // one shard targets 5 sessions/sec
		UpAfter:             2,
		DownAfter:           3,
		UpCooldown:          time.Minute,
		DownCooldown:        2 * time.Minute,
	}
}

func newTestController(t *testing.T, p Policy) *Controller {
	t.Helper()
	c, err := New(Config{
		Policy: p,
		Sample: func() Sample { return Sample{} },
		Apply:  func(from, to int) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPolicyValidateRejectsNonsense(t *testing.T) {
	cases := []Policy{
		{MinShards: -1},
		{MinShards: 4, MaxShards: 2},
		{TargetUtilization: 1.5},
		{TargetUtilization: -0.1},
		{ShardSessionsPerSec: -1},
		{UpAfter: -1},
		{UpCooldown: -time.Second},
		{UpP99: -time.Second},
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	if err := (Policy{}).Validate(); err != nil {
		t.Errorf("zero policy (all defaults) rejected: %v", err)
	}
}

func TestDesiredTracksDemand(t *testing.T) {
	p := testPolicy() // 5 sessions/sec per shard at target
	for _, tc := range []struct {
		demand float64
		want   int
	}{
		{0, 1}, {4.9, 1}, {5.1, 2}, {24, 5}, {1000, 8},
	} {
		if got := p.desired(tc.demand); got != tc.want {
			t.Errorf("desired(%g) = %d, want %d", tc.demand, got, tc.want)
		}
	}
}

func TestTickScalesUpAfterHysteresisAndJumpsToDesired(t *testing.T) {
	c := newTestController(t, testPolicy())
	now := time.Unix(0, 0)
	s := Sample{ActiveShards: 1, SessionsPerSec: 24} // desired = 5
	if d := c.Tick(now, s); d != nil {
		t.Fatalf("first pressure sample produced %+v, want hold (UpAfter=2)", d)
	}
	d := c.Tick(now.Add(15*time.Second), s)
	if d == nil {
		t.Fatal("second pressure sample produced no decision")
	}
	if d.From != 1 || d.To != 5 || d.Reason != "demand" {
		t.Fatalf("decision = %+v, want 1→5 on demand", d)
	}
	if d.DeltaUSD <= 0 || d.VMPerDayUSD <= d.DeltaUSD {
		t.Errorf("decision pricing inconsistent: %+v", d)
	}
}

func TestTickUpCooldownSpacesEvents(t *testing.T) {
	c := newTestController(t, testPolicy())
	now := time.Unix(0, 0)
	s := Sample{ActiveShards: 1, SessionsPerSec: 8} // desired = 2
	c.Tick(now, s)
	if d := c.Tick(now.Add(15*time.Second), s); d == nil {
		t.Fatal("expected initial scale-up")
	}
	// Pretend Apply was a no-op: demand pressure continues at 1 shard.
	for i := 2; i < 5; i++ {
		if d := c.Tick(now.Add(time.Duration(i)*15*time.Second), s); d != nil {
			t.Fatalf("decision %+v inside the 1m up-cooldown", d)
		}
	}
	if d := c.Tick(now.Add(15*time.Second+time.Minute), s); d == nil {
		t.Fatal("no decision after the cooldown elapsed")
	}
}

func TestTickScaleDownStepsByOne(t *testing.T) {
	c := newTestController(t, testPolicy())
	now := time.Unix(0, 0)
	s := Sample{ActiveShards: 5, SessionsPerSec: 1} // desired = 1
	var d *Decision
	for i := 0; i < 3; i++ {
		d = c.Tick(now.Add(time.Duration(i)*15*time.Second), s)
	}
	if d == nil {
		t.Fatal("no decision after DownAfter=3 idle samples")
	}
	if d.From != 5 || d.To != 4 || d.Reason != "idle" {
		t.Fatalf("decision = %+v, want one-step 5→4", d)
	}
	if d.DeltaUSD >= 0 {
		t.Errorf("scale-down DeltaUSD = %g, want negative", d.DeltaUSD)
	}
}

func TestTickHysteresisStopsBoundaryFlapping(t *testing.T) {
	c := newTestController(t, testPolicy())
	now := time.Unix(0, 0)
	// Demand oscillates around the 1↔2 boundary every sample; neither
	// streak ever reaches its threshold, so the tier must hold.
	for i := 0; i < 40; i++ {
		demand := 4.0 // desired 1
		if i%2 == 0 {
			demand = 6.0 // desired 2
		}
		if d := c.Tick(now.Add(time.Duration(i)*15*time.Second), Sample{ActiveShards: 1, SessionsPerSec: demand}); d != nil {
			t.Fatalf("boundary flapping produced decision %+v at sample %d", d, i)
		}
	}
}

func TestTickLatencyGuard(t *testing.T) {
	p := testPolicy()
	p.UpP99 = 5 * time.Second
	c := newTestController(t, p)
	now := time.Unix(0, 0)
	// Demand says 1 shard is plenty, but p99 is breached.
	s := Sample{ActiveShards: 1, SessionsPerSec: 1, P99PLT: 8 * time.Second}
	c.Tick(now, s)
	d := c.Tick(now.Add(15*time.Second), s)
	if d == nil || d.To != 2 || d.Reason != "p99-latency" {
		t.Fatalf("latency guard decision = %+v, want 1→2 on p99-latency", d)
	}
}

func TestStepAppliesAndLogsDecisions(t *testing.T) {
	var applied [][2]int
	demand := 24.0
	c, err := New(Config{
		Policy:  testPolicy(),
		Pricing: opscost.DefaultPricing(),
		Sample: func() Sample {
			return Sample{ActiveShards: 1 + len(applied)*4, SessionsPerSec: demand}
		},
		Apply: func(from, to int) error {
			applied = append(applied, [2]int{from, to})
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	c.Step(now)
	d := c.Step(now.Add(15 * time.Second))
	if d == nil || len(applied) != 1 || applied[0] != [2]int{1, 5} {
		t.Fatalf("Step applied %v (decision %+v), want [1 5]", applied, d)
	}
	log := c.Decisions()
	if len(log) != 1 || log[0].From != 1 || log[0].To != 5 || log[0].Err != nil {
		t.Fatalf("decision log = %+v", log)
	}
}

func TestStepRecordsApplyErrors(t *testing.T) {
	boom := errors.New("ring jammed")
	c, err := New(Config{
		Policy: testPolicy(),
		Sample: func() Sample { return Sample{ActiveShards: 1, SessionsPerSec: 24} },
		Apply:  func(from, to int) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	c.Step(now)
	d := c.Step(now.Add(15 * time.Second))
	if d == nil || !errors.Is(d.Err, boom) {
		t.Fatalf("decision = %+v, want recorded apply error", d)
	}
	log := c.Decisions()
	if len(log) != 1 || !errors.Is(log[0].Err, boom) {
		t.Fatalf("decision log = %+v, want the failed decision", log)
	}
}

func TestInstrumentPublishesGauges(t *testing.T) {
	c := newTestController(t, testPolicy())
	reg := obs.NewRegistry()
	c.Instrument(reg)
	c.Tick(time.Unix(0, 0), Sample{ActiveShards: 2, SessionsPerSec: 24})
	snap := reg.Snapshot()
	if got := snap.Gauges["autoscale.active_shards"]; got != 2 {
		t.Errorf("autoscale.active_shards = %d, want 2", got)
	}
	if got := snap.Gauges["autoscale.desired_shards"]; got != 5 {
		t.Errorf("autoscale.desired_shards = %d, want 5", got)
	}
	if got := snap.Counters["autoscale.ticks"]; got != 1 {
		t.Errorf("autoscale.ticks = %d, want 1", got)
	}
}

// BenchmarkAutoscaleLoop measures the pure control loop: one sampled
// tick of the policy state machine, the per-interval cost every world
// (and the deployed tier) pays while the autoscaler runs.
func BenchmarkAutoscaleLoop(b *testing.B) {
	c, err := New(Config{
		Policy: testPolicy(),
		Sample: func() Sample { return Sample{} },
		Apply:  func(from, to int) error { return nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Sweep demand so the streak/cooldown state machine exercises all
		// branches instead of settling into the hold path.
		s := Sample{ActiveShards: 1 + i%8, SessionsPerSec: float64(i % 64)}
		now = now.Add(15 * time.Second)
		c.Tick(now, s)
	}
}
