// Package autoscale drives the sharded domestic tier's size from load.
//
// PR 7 built the tier with a static shard count; the paper's economics
// (two small VMs, 2.2 USD/day) only survive growth if capacity tracks
// demand instead of being provisioned for the worst hour. This package
// is the control loop: it samples the tier's observable state — demand
// (sessions/sec), page-load p99, cache hit rate, host utilization — and
// grows or shrinks the active shard set through the shard Director,
// which republishes the PAC and rewires cache peering atomically.
//
// The policy is target tracking with hysteresis: the desired shard count
// is the demand divided by one shard's calibrated capacity at a target
// utilization, and a transition fires only after the pressure persists
// for a configured number of consecutive samples and the direction's
// cooldown has elapsed. Scale-ups jump straight to the desired count
// (a flash crowd must not climb one shard per cooldown); scale-downs
// step one shard at a time so each leaver can drain. Every decision is
// priced through opscost, so a run reports the cost/latency frontier it
// walked.
//
// The controller is clock-agnostic: Tick is a pure state machine fed
// explicit times, and Run loops it on a netx.Env — the virtual clock in
// simulated worlds (deterministic: ticks fire only while the world
// runs), the wall clock in deployment.
package autoscale

import (
	"fmt"
	"math"
	"sync"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/opscost"
)

// Sample is one observation of the tier, taken by the controller at each
// tick.
type Sample struct {
	// ActiveShards is the current live shard count.
	ActiveShards int
	// SessionsPerSec is the demand arriving at the tier.
	SessionsPerSec float64
	// P99PLT is the recent page-load-time p99 (0 = unknown; only the
	// latency guard reads it).
	P99PLT time.Duration
	// HitRate is the tier cache hit rate in [0,1] (negative = unknown).
	HitRate float64
	// HostUtilization is the hottest shard's utilization in [0,1]
	// (negative = unknown).
	HostUtilization float64
}

// Policy is the target-tracking scaling policy.
type Policy struct {
	// MinShards and MaxShards bound the active set (defaults 1 and 8).
	MinShards int
	MaxShards int
	// TargetUtilization is the fraction of one shard's capacity the
	// controller steers each shard toward (default 0.6) — headroom below
	// 1.0 absorbs the sampling lag of a flash crowd.
	TargetUtilization float64
	// ShardSessionsPerSec is one shard's calibrated session capacity
	// (default 50). desired = ceil(demand / (TargetUtilization × this)).
	ShardSessionsPerSec float64
	// UpP99 is the latency guard: a sampled p99 above it counts as
	// scale-up pressure even when the demand arithmetic is satisfied
	// (0 disables the guard).
	UpP99 time.Duration
	// UpAfter and DownAfter are the consecutive pressure samples required
	// before acting (defaults 2 and 4) — the hysteresis that keeps a
	// noisy boundary sample from flapping the tier.
	UpAfter   int
	DownAfter int
	// UpCooldown and DownCooldown are the minimum spacing between
	// scale-ups resp. scale-downs (defaults 1m and 5m).
	UpCooldown   time.Duration
	DownCooldown time.Duration
}

// WithDefaults fills unset fields.
func (p Policy) WithDefaults() Policy {
	if p.MinShards == 0 {
		p.MinShards = 1
	}
	if p.MaxShards == 0 {
		p.MaxShards = 8
	}
	if p.TargetUtilization == 0 {
		p.TargetUtilization = 0.6
	}
	if p.ShardSessionsPerSec == 0 {
		p.ShardSessionsPerSec = 50
	}
	if p.UpAfter == 0 {
		p.UpAfter = 2
	}
	if p.DownAfter == 0 {
		p.DownAfter = 4
	}
	if p.UpCooldown == 0 {
		p.UpCooldown = time.Minute
	}
	if p.DownCooldown == 0 {
		p.DownCooldown = 5 * time.Minute
	}
	return p
}

// Validate rejects nonsensical policies (after defaulting).
func (p Policy) Validate() error {
	p = p.WithDefaults()
	if p.MinShards < 1 {
		return fmt.Errorf("autoscale: MinShards must be >= 1 (got %d)", p.MinShards)
	}
	if p.MaxShards < p.MinShards {
		return fmt.Errorf("autoscale: MaxShards (%d) below MinShards (%d)", p.MaxShards, p.MinShards)
	}
	if p.TargetUtilization <= 0 || p.TargetUtilization > 1 {
		return fmt.Errorf("autoscale: TargetUtilization must be in (0,1] (got %g)", p.TargetUtilization)
	}
	if p.ShardSessionsPerSec <= 0 {
		return fmt.Errorf("autoscale: ShardSessionsPerSec must be positive (got %g)", p.ShardSessionsPerSec)
	}
	if p.UpAfter < 1 || p.DownAfter < 1 {
		return fmt.Errorf("autoscale: UpAfter/DownAfter must be >= 1 (got %d/%d)", p.UpAfter, p.DownAfter)
	}
	if p.UpCooldown < 0 || p.DownCooldown < 0 {
		return fmt.Errorf("autoscale: cooldowns must be non-negative (got %v/%v)", p.UpCooldown, p.DownCooldown)
	}
	if p.UpP99 < 0 {
		return fmt.Errorf("autoscale: UpP99 must be non-negative (got %v)", p.UpP99)
	}
	return nil
}

// desired is the target-tracking core: the shard count that serves
// demand at the target per-shard utilization, clamped to the policy
// bounds.
func (p Policy) desired(sessionsPerSec float64) int {
	perShard := p.TargetUtilization * p.ShardSessionsPerSec
	d := int(math.Ceil(sessionsPerSec / perShard))
	if d < p.MinShards {
		d = p.MinShards
	}
	if d > p.MaxShards {
		d = p.MaxShards
	}
	return d
}

// Decision records one scaling action and its price.
type Decision struct {
	// At is the controller clock reading when the decision fired.
	At time.Time
	// From and To are the active shard counts around the transition.
	From, To int
	// Reason is what tripped it: "demand", "p99-latency", or "idle".
	Reason string
	// VMPerDayUSD is the daily VM bill at To shards (tier plus the remote
	// proxy), priced through opscost.
	VMPerDayUSD float64
	// DeltaUSD is the daily cost change this decision causes (positive
	// for scale-ups).
	DeltaUSD float64
	// Err records an Apply failure; the tier stays at From when non-nil.
	Err error
}

// Config wires a Controller to a tier.
type Config struct {
	// Policy is the scaling policy (zero fields defaulted).
	Policy Policy
	// Pricing prices decisions (zero value = opscost.DefaultPricing; its
	// VMs field is ignored — the controller prices To+1 boxes).
	Pricing opscost.Pricing
	// Sample reads the tier's current state at each tick.
	Sample func() Sample
	// Apply transitions the tier from from to to active shards: admit
	// (with cache warm-up) or retire (with drain) one shard at a time.
	Apply func(from, to int) error
}

// Controller runs the scaling policy against a tier.
type Controller struct {
	cfg Config

	mu          sync.Mutex
	upStreak    int
	downStreak  int
	lastUp      time.Time
	lastDown    time.Time
	haveUp      bool
	haveDown    bool
	decisions   []Decision
	lastActive  int64
	lastDesired int64
	stopped     bool

	ticks       metrics.Counter
	ups         metrics.Counter
	downs       metrics.Counter
	applyErrors metrics.Counter
}

// New builds a controller. cfg.Sample and cfg.Apply must be set.
func New(cfg Config) (*Controller, error) {
	cfg.Policy = cfg.Policy.WithDefaults()
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sample == nil || cfg.Apply == nil {
		return nil, fmt.Errorf("autoscale: Config.Sample and Config.Apply are required")
	}
	if cfg.Pricing == (opscost.Pricing{}) {
		cfg.Pricing = opscost.DefaultPricing()
	}
	return &Controller{cfg: cfg}, nil
}

// Policy returns the defaulted policy in force.
func (c *Controller) Policy() Policy { return c.cfg.Policy }

// vmPerDay prices n active shards plus the remote proxy.
func (c *Controller) vmPerDay(n int) float64 {
	p := c.cfg.Pricing
	p.VMs = n + 1
	return opscost.Estimate(opscost.Workload{}, p).TotalUSD
}

// Tick advances the pure policy state machine one control interval and
// returns the decision it would take (nil = hold). It updates hysteresis
// and cooldown state but does not touch the tier; Step is Tick plus
// Apply. Exposed so tests and benchmarks can drive the policy without a
// tier behind it.
func (c *Controller) Tick(now time.Time, s Sample) *Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tickLocked(now, s)
}

func (c *Controller) tickLocked(now time.Time, s Sample) *Decision {
	c.ticks.Inc()
	p := c.cfg.Policy
	desired := p.desired(s.SessionsPerSec)
	reason := "demand"
	if p.UpP99 > 0 && s.P99PLT > p.UpP99 && desired <= s.ActiveShards && s.ActiveShards < p.MaxShards {
		// Demand arithmetic says hold, but users are hurting: treat the
		// latency breach as pressure for one more shard.
		desired = s.ActiveShards + 1
		reason = "p99-latency"
	}
	c.lastActive, c.lastDesired = int64(s.ActiveShards), int64(desired)

	switch {
	case desired > s.ActiveShards:
		c.upStreak++
		c.downStreak = 0
		if c.upStreak < p.UpAfter {
			return nil
		}
		if c.haveUp && now.Sub(c.lastUp) < p.UpCooldown {
			return nil
		}
		c.upStreak = 0
		c.lastUp, c.haveUp = now, true
		return &Decision{
			At: now, From: s.ActiveShards, To: desired, Reason: reason,
			VMPerDayUSD: c.vmPerDay(desired),
			DeltaUSD:    c.vmPerDay(desired) - c.vmPerDay(s.ActiveShards),
		}
	case desired < s.ActiveShards:
		c.downStreak++
		c.upStreak = 0
		if c.downStreak < p.DownAfter {
			return nil
		}
		if c.haveDown && now.Sub(c.lastDown) < p.DownCooldown {
			return nil
		}
		// Scale down one shard at a time so the leaver drains cleanly;
		// the next cooldown window takes the next step if the surplus
		// persists.
		to := s.ActiveShards - 1
		c.downStreak = 0
		c.lastDown, c.haveDown = now, true
		return &Decision{
			At: now, From: s.ActiveShards, To: to, Reason: "idle",
			VMPerDayUSD: c.vmPerDay(to),
			DeltaUSD:    c.vmPerDay(to) - c.vmPerDay(s.ActiveShards),
		}
	default:
		c.upStreak, c.downStreak = 0, 0
		return nil
	}
}

// Step samples the tier, ticks the policy, and applies any decision,
// recording it (and any Apply error) in the decision log.
func (c *Controller) Step(now time.Time) *Decision {
	s := c.cfg.Sample()
	c.mu.Lock()
	d := c.tickLocked(now, s)
	c.mu.Unlock()
	if d == nil {
		return nil
	}
	if err := c.cfg.Apply(d.From, d.To); err != nil {
		d.Err = err
		c.applyErrors.Inc()
	} else if d.To > d.From {
		c.ups.Inc()
	} else {
		c.downs.Inc()
	}
	c.mu.Lock()
	c.decisions = append(c.decisions, *d)
	c.mu.Unlock()
	return d
}

// Run loops Step every interval on env's clock until Stop. It blocks;
// callers spawn it on env.Spawn. On the virtual clock the loop only
// advances while the world runs, so a simulated tier scales at exactly
// the same virtual instants in every run.
func (c *Controller) Run(env netx.Env, interval time.Duration) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	for {
		env.Clock.Sleep(interval)
		c.mu.Lock()
		stopped := c.stopped
		c.mu.Unlock()
		if stopped {
			return
		}
		c.Step(env.Clock.Now())
	}
}

// Stop makes Run return at its next wakeup.
func (c *Controller) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
}

// Decisions returns a copy of the decision log in firing order.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decisions...)
}

// Instrument publishes the controller's counters and gauges on reg; they
// surface on the deployment's admin /metrics endpoint alongside the
// Director's membership gauges.
func (c *Controller) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("autoscale.ticks", &c.ticks)
	reg.RegisterCounter("autoscale.scale_up", &c.ups)
	reg.RegisterCounter("autoscale.scale_down", &c.downs)
	reg.RegisterCounter("autoscale.apply_errors", &c.applyErrors)
	reg.RegisterGaugeFunc("autoscale.active_shards", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.lastActive
	})
	reg.RegisterGaugeFunc("autoscale.desired_shards", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.lastDesired
	})
}
