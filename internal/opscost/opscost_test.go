package opscost

import "testing"

func TestPaperDeploymentCost(t *testing.T) {
	// With the measured ~19.3 KB per access (Fig. 6a, ScholarCloud), the
	// paper's 700-users-per-day deployment must land near its reported
	// 2.2 USD/day.
	b := Estimate(PaperWorkload(19.3*1024), DefaultPricing())
	if b.TotalUSD < 1.9 || b.TotalUSD > 2.5 {
		t.Errorf("daily cost = %.2f USD, paper reports 2.2", b.TotalUSD)
	}
	if b.VMCostUSD <= b.TrafficCostUSD {
		t.Error("VM cost should dominate at this scale")
	}
}

func TestCostScalesWithUsers(t *testing.T) {
	small := Estimate(Workload{DailyUsers: 700, AccessesPerUser: 20, BytesPerAccess: 20000}, DefaultPricing())
	big := Estimate(Workload{DailyUsers: 70000, AccessesPerUser: 20, BytesPerAccess: 20000}, DefaultPricing())
	if big.TotalUSD <= small.TotalUSD {
		t.Error("more users did not cost more")
	}
	if big.PerUserUSD >= small.PerUserUSD {
		t.Error("per-user cost did not amortize")
	}
}

func TestZeroUsers(t *testing.T) {
	b := Estimate(Workload{}, DefaultPricing())
	if b.TotalUSD != DefaultPricing().VMPerDay*2 {
		t.Errorf("idle cost = %v", b.TotalUSD)
	}
	if b.PerUserUSD != 0 {
		t.Errorf("per-user with zero users = %v", b.PerUserUSD)
	}
}
