// Package opscost models ScholarCloud's operating economics. The paper's
// deployment claim (§1): the service runs on two regular VM servers, has
// served more than 2,000 registered users with ~700 online per day, and
// costs 2.2 USD per day to operate. This model reproduces that figure
// from its components — two small cloud VMs plus metered egress — and
// lets the examples explore how cost scales with the user base.
package opscost

// Pricing holds the unit costs. Defaults approximate 2016-era entry
// cloud pricing (the paper rented Aliyun ECS single-core instances).
type Pricing struct {
	// VMPerDay is the daily cost of one small VM instance, USD.
	VMPerDay float64
	// EgressPerGB is the metered traffic cost, USD per GB.
	EgressPerGB float64
	// VMs is the instance count (domestic + remote in the paper).
	VMs int
	// InvocationUSD is the metered price of one serverless rendezvous
	// invocation (CensorLess-style ephemeral endpoints). Zero — the
	// default, and the paper's VM-only deployment — adds nothing.
	InvocationUSD float64
}

// DefaultPricing reflects the paper's deployment.
func DefaultPricing() Pricing {
	return Pricing{VMPerDay: 1.05, EgressPerGB: 0.08, VMs: 2}
}

// Workload describes the served population.
type Workload struct {
	// DailyUsers is how many users are online per day (paper: ~700).
	DailyUsers int
	// AccessesPerUser per day (the study's cadence suggests dozens).
	AccessesPerUser int
	// BytesPerAccess at the proxy, both legs (client side + origin side).
	BytesPerAccess float64
	// InvocationsPerAccess is how many serverless rendezvous endpoints
	// one access invokes when the deployment runs on the rendezvous
	// carrier. Zero (the default) models the VM-only transports.
	InvocationsPerAccess float64
}

// PaperWorkload is the deployment §1 describes, with per-access traffic
// from the Fig. 6a measurement.
func PaperWorkload(bytesPerAccess float64) Workload {
	return Workload{DailyUsers: 700, AccessesPerUser: 20, BytesPerAccess: bytesPerAccess}
}

// Breakdown is the daily cost decomposition.
type Breakdown struct {
	VMCostUSD         float64
	TrafficGB         float64
	TrafficCostUSD    float64
	InvocationCostUSD float64
	TotalUSD          float64
	PerUserUSD        float64
}

// Estimate computes the daily cost of serving w under p.
func Estimate(w Workload, p Pricing) Breakdown {
	b := Breakdown{
		VMCostUSD: float64(p.VMs) * p.VMPerDay,
	}
	// Each access traverses the proxy twice (in and out) on each box.
	b.TrafficGB = float64(w.DailyUsers) * float64(w.AccessesPerUser) * w.BytesPerAccess * 2 / 1e9
	b.TrafficCostUSD = b.TrafficGB * p.EgressPerGB
	b.InvocationCostUSD = float64(w.DailyUsers) * float64(w.AccessesPerUser) * w.InvocationsPerAccess * p.InvocationUSD
	b.TotalUSD = b.VMCostUSD + b.TrafficCostUSD + b.InvocationCostUSD
	if w.DailyUsers > 0 {
		b.PerUserUSD = b.TotalUSD / float64(w.DailyUsers)
	}
	return b
}
