package experiments

import (
	"strings"
	"testing"
	"time"

	"scholarcloud/internal/gfw"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/tunnel"
)

// newTestWorld builds a world with a small seed; tests share it where
// possible because construction starts a dozen servers.
func newTestWorld(t *testing.T, cfg Config) *World {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	w := NewWorld(cfg)
	t.Cleanup(w.Close)
	return w
}

func visitOnce(t *testing.T, w *World, m tunnel.Method, url string) *httpsim.VisitStats {
	t.Helper()
	var stats *httpsim.VisitStats
	err := w.Run(func() error {
		browser := httpsim.NewBrowser(m, w.Env.Clock)
		stats = browser.Visit(url)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestDirectAccessToScholarIsBlocked(t *testing.T) {
	w := newTestWorld(t, Config{})
	st := visitOnce(t, w, w.Direct(w.Client), scholarURL)
	if !st.Failed {
		t.Fatal("direct access to scholar.google.com succeeded under censorship")
	}
}

func TestDirectAccessToUnblockedMirrorWorks(t *testing.T) {
	w := newTestWorld(t, Config{})
	st := visitOnce(t, w, w.Direct(w.Client), mirrorURL)
	if st.Failed {
		t.Fatalf("direct access to the unblocked mirror failed: %v", st.Err)
	}
	if st.PLT <= 0 || st.PLT > 5*time.Second {
		t.Errorf("mirror PLT = %v", st.PLT)
	}
}

func TestNativeVPNReachesScholar(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.NativeVPN(w.Client)
	defer m.Close()
	st := visitOnce(t, w, m, scholarURL)
	if st.Failed {
		t.Fatalf("native VPN visit failed: %v", st.Err)
	}
	if !st.AccountRecorded || st.Redirects != 1 {
		t.Errorf("visit stats = %+v", st)
	}
}

func TestL2TPVariantReachesScholar(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.NativeVPNL2TP(w.Client)
	defer m.Close()
	st := visitOnce(t, w, m, scholarURL)
	if st.Failed {
		t.Fatalf("L2TP visit failed: %v", st.Err)
	}
}

func TestOpenVPNReachesScholar(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.OpenVPN(w.Client)
	defer m.Close()
	st := visitOnce(t, w, m, scholarURL)
	if st.Failed {
		t.Fatalf("OpenVPN visit failed: %v", st.Err)
	}
}

func TestShadowsocksReachesScholar(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.Shadowsocks(w.Client)
	defer m.Close()
	st := visitOnce(t, w, m, scholarURL)
	if st.Failed {
		t.Fatalf("Shadowsocks visit failed: %v", st.Err)
	}
	if got := m.Stats().AuthConns; got != 1 {
		t.Errorf("auth connections = %d, want 1 (TCP-1)", got)
	}
}

func TestTorReachesScholar(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.Tor(w.Client)
	defer m.Close()
	st := visitOnce(t, w, m, scholarURL)
	if st.Failed {
		t.Fatalf("Tor visit failed: %v", st.Err)
	}
	if m.CircuitBuildTime <= 0 {
		t.Error("circuit build time not recorded")
	}
	if st.PLT < 2*time.Second {
		t.Errorf("Tor first-time PLT = %v, implausibly fast for 3 hops + meek", st.PLT)
	}
}

func TestScholarCloudReachesScholar(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.ScholarCloud(w.Client)
	defer m.Close()
	st := visitOnce(t, w, m, scholarURL)
	if st.Failed {
		t.Fatalf("ScholarCloud visit failed: %v", st.Err)
	}
	if w.Remote.Stats().StreamsOpened == 0 {
		t.Error("no streams crossed the blinded tunnel")
	}
	if w.Domestic.Stats().Requests == 0 {
		t.Error("domestic proxy saw no requests")
	}
}

func TestScholarCloudSubsequentVisitFaster(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.ScholarCloud(w.Client)
	defer m.Close()
	var first, second *httpsim.VisitStats
	err := w.Run(func() error {
		browser := httpsim.NewBrowser(m, w.Env.Clock)
		first = browser.Visit(scholarURL)
		w.Env.Clock.Sleep(visitInterval)
		second = browser.Visit(scholarURL)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Failed || second.Failed {
		t.Fatalf("visits failed: %v / %v", first.Err, second.Err)
	}
	if second.PLT >= first.PLT {
		t.Errorf("subsequent PLT %v not faster than first %v", second.PLT, first.PLT)
	}
}

func TestScholarCloudRefusesNonWhitelisted(t *testing.T) {
	w := newTestWorld(t, Config{})
	err := w.Run(func() error {
		// Dial the domestic proxy directly and CONNECT to a host outside
		// the whitelist.
		conn, err := w.Client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.Write([]byte("CONNECT www.baidu.com:443 HTTP/1.1\r\nHost: www.baidu.com:443\r\n\r\n"))
		buf := make([]byte, 256)
		n, err := conn.Read(buf)
		if err != nil {
			return err
		}
		if !strings.Contains(string(buf[:n]), "403") {
			t.Errorf("proxy response to off-whitelist CONNECT: %q", buf[:n])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPACServedByDomesticProxy(t *testing.T) {
	w := newTestWorld(t, Config{})
	err := w.Run(func() error {
		conn, err := w.Client.DialTCP("101.6.6.6:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		cc := httpsim.NewClientConn(conn)
		resp, err := cc.RoundTrip(&httpsim.Request{
			Method: "GET", Target: "/pac", Host: "proxy.thucloud.com",
			Header: map[string]string{},
		})
		if err != nil {
			return err
		}
		body := string(resp.Body)
		if !strings.Contains(body, "FindProxyForURL") || !strings.Contains(body, "scholar.google.com") {
			t.Errorf("PAC body = %q", body)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGFWProbesScholarCloudWithoutConfirming(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.ScholarCloud(w.Client)
	defer m.Close()
	if st := visitOnce(t, w, m, scholarURL); st.Failed {
		t.Fatalf("visit failed: %v", st.Err)
	}
	// Let the prober fire.
	if err := w.Run(func() error { w.Env.Clock.Sleep(30 * time.Second); return nil }); err != nil {
		t.Fatal(err)
	}
	st := w.GFW.Stats()
	if st.ProbesLaunched == 0 {
		t.Error("the GFW never probed the blinded tunnel")
	}
	for _, ep := range w.GFW.ConfirmedServers() {
		if strings.HasPrefix(ep, "198.51.100.7:") {
			t.Error("ScholarCloud's remote proxy was confirmed by probing")
		}
	}
}

func TestGFWConfirmsShadowsocksServer(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.Shadowsocks(w.Client)
	defer m.Close()
	if st := visitOnce(t, w, m, scholarURL); st.Failed {
		t.Fatalf("visit failed: %v", st.Err)
	}
	if err := w.Run(func() error { w.Env.Clock.Sleep(60 * time.Second); return nil }); err != nil {
		t.Fatal(err)
	}
	confirmed := false
	for _, ep := range w.GFW.ConfirmedServers() {
		if ep == "198.51.100.12:8388" {
			confirmed = true
		}
	}
	if !confirmed {
		t.Errorf("Shadowsocks server not confirmed; confirmed set = %v, stats = %+v",
			w.GFW.ConfirmedServers(), w.GFW.Stats())
	}
}

func TestBlindingRotationKeepsWorking(t *testing.T) {
	w := newTestWorld(t, Config{})
	m := w.ScholarCloud(w.Client)
	defer m.Close()
	if st := visitOnce(t, w, m, scholarURL); st.Failed {
		t.Fatalf("epoch 0 visit failed: %v", st.Err)
	}
	w.RotateBlinding(1)
	if st := visitOnce(t, w, m, scholarURL); st.Failed {
		t.Fatalf("epoch 1 visit failed: %v", st.Err)
	}
	w.RotateBlinding(2)
	if st := visitOnce(t, w, m, scholarURL); st.Failed {
		t.Fatalf("epoch 2 visit failed: %v", st.Err)
	}
}

func TestMismatchedEpochFailsClosed(t *testing.T) {
	w := newTestWorld(t, Config{})
	// Rotate only the domestic side: the remote cannot decode the carrier
	// and must drop it (fail closed, never fall back to cleartext).
	w.Domestic.Rotate(9)
	m := w.ScholarCloud(w.Client)
	defer m.Close()
	st := visitOnce(t, w, m, scholarURL)
	if !st.Failed {
		t.Error("visit succeeded across mismatched blinding epochs")
	}
}

func TestDomesticPenalty(t *testing.T) {
	w := newTestWorld(t, Config{})
	direct, viaVPN, err := w.DomesticPenalty()
	if err != nil {
		t.Fatal(err)
	}
	// The domestic site is milliseconds away directly, but a full tunnel
	// drags the traffic across the border twice.
	if viaVPN < 4*direct {
		t.Errorf("domestic penalty too small: direct %v, via VPN %v", direct, viaVPN)
	}
}

func TestClientHostFactoryDistinctIPs(t *testing.T) {
	w := newTestWorld(t, Config{})
	a := w.NewClientHost()
	b := w.NewClientHost()
	if a.IP() == b.IP() {
		t.Error("client hosts share an IP")
	}
}

var _ = netsim.MSS // keep the import for documentation references

func TestNoBlindingAblationGetsKeywordFiltered(t *testing.T) {
	// Without message blinding, the inter-proxy tunnel's stream metadata
	// crosses the border in cleartext; the GFW's raw keyword filter sees
	// "scholar.google.com" and resets the carrier — the mechanism that
	// makes blinding necessary (§3).
	w := newTestWorld(t, Config{ScholarCloudNoBlinding: true})
	m := w.ScholarCloud(w.Client)
	defer m.Close()
	st := visitOnce(t, w, m, scholarURL)
	if !st.Failed {
		t.Fatal("unblinded ScholarCloud tunnel survived the keyword filter")
	}
	if w.GFW.Stats().KeywordResets == 0 {
		t.Error("no keyword resets recorded against the cleartext tunnel")
	}
}

func TestBlindingDefeatsKeywordFilter(t *testing.T) {
	// The identical flow with blinding enabled sails through.
	w := newTestWorld(t, Config{})
	m := w.ScholarCloud(w.Client)
	defer m.Close()
	st := visitOnce(t, w, m, scholarURL)
	if st.Failed {
		t.Fatalf("blinded tunnel failed: %v", st.Err)
	}
	if w.GFW.Stats().KeywordResets != 0 {
		t.Error("keyword resets fired against the blinded tunnel")
	}
}

func TestHostsFileMethodWorksUntilIPBlocked(t *testing.T) {
	// The survey's "other methods" (Fig. 3): a hosts-file entry pointing
	// a volunteer mirror's innocuous name at an unblocked IP works —
	// until the GFW blacklists that IP too (whack-a-mole).
	w := newTestWorld(t, Config{})
	m := w.HostsFile(w.Client)
	defer m.Close()
	const mirror = "http://xueshu-mirror.example/"
	st := visitOnce(t, w, m, mirror)
	if st.Failed {
		t.Fatalf("mirror access failed while unblocked: %v", st.Err)
	}
	w.GFW.Apply(gfw.Policy{BlockIPs: []string{"64.233.189.19"}})
	st = visitOnce(t, w, m, mirror)
	if !st.Failed {
		t.Fatal("mirror access survived IP blacklisting")
	}
}

func TestHostsFileCannotBeatKeywordFilter(t *testing.T) {
	// Pointing scholar.google.com itself at an unblocked IP is futile:
	// the Host/SNI keyword filter matches the *name*, wherever it
	// resolves — why simple hosts tricks were already dying in the
	// study's era.
	w := newTestWorld(t, Config{})
	m := &tunnel.HostsFile{
		Dialer:  w.Client,
		Entries: map[string]string{"scholar.google.com": "64.233.189.19"},
	}
	st := visitOnce(t, w, m, scholarURL)
	if !st.Failed {
		t.Fatal("keyword-filtered name loaded via hosts file")
	}
	if w.GFW.Stats().KeywordResets == 0 {
		t.Error("no keyword reset recorded")
	}
}
