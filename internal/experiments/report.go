package experiments

import (
	"fmt"
	"strings"

	"scholarcloud/internal/costmodel"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/opscost"
	"scholarcloud/internal/survey"
)

// Quality controls sample counts: quick for tests, full for the bench
// harness (a simulated day of accesses, as in the paper).
type Quality struct {
	FirstRuns     int // independent first-time loads per method
	Subsequent    int // subsequent loads per method
	RTTProbes     int
	PLRVisits     int
	TrafficVisits int
	ScaleRounds   int
	ScaleSweep    []int
	// FlowSweep is the scale figure's cohort-size axis (flow-level client
	// mode); FlowSampled is how many packet-level clients each cohort
	// samples.
	FlowSweep   []int
	FlowSampled int
}

// Quick is a fast configuration for tests and demos.
func Quick() Quality {
	return Quality{
		FirstRuns:     3,
		Subsequent:    8,
		RTTProbes:     10,
		PLRVisits:     20,
		TrafficVisits: 5,
		ScaleRounds:   2,
		ScaleSweep:    []int{5, 30, 60, 120},
		FlowSweep:     []int{500, 5000},
		FlowSampled:   3,
	}
}

// Full approximates the paper's day-long runs.
func Full() Quality {
	return Quality{
		FirstRuns:     5,
		Subsequent:    60,
		RTTProbes:     50,
		PLRVisits:     60,
		TrafficVisits: 20,
		ScaleRounds:   3,
		ScaleSweep:    ScalabilitySweep,
		FlowSweep:     []int{1_000, 10_000, 100_000, 1_000_000},
		FlowSampled:   3,
	}
}

// ReportFig3 regenerates the survey distribution.
func ReportFig3(seed uint64) string {
	return survey.FormatFigure3(survey.Generate(survey.Respondents, seed))
}

// ReportFig4 prints the per-method session structure.
func (w *World) ReportFig4() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — TCP connections in one Scholar access\n")
	fmt.Fprintf(&b, "  %-13s %-6s %-6s %-6s %-6s %s\n", "method", "TCP-1", "TCP-2", "TCP-3", "TCP-4", "TCP-4 on revisit")
	for _, f := range w.Methods() {
		ss, err := w.MeasureSessionStructure(f)
		if err != nil {
			return "", err
		}
		mark := func(v bool) string {
			if v {
				return "yes"
			}
			return "-"
		}
		fmt.Fprintf(&b, "  %-13s %-6s %-6s %-6s %-6s %s\n",
			ss.Method, mark(ss.TCP1), mark(ss.TCP2), mark(ss.TCP3), mark(ss.TCP4), mark(ss.SubsequentTCP4))
	}
	b.WriteString("  (TCP-1: proxy auth; TCP-2: HTTPS redirect; TCP-3: data; TCP-4: first-visit account recording)\n")
	return b.String(), nil
}

// ReportFig5a prints first-time and subsequent PLTs per method.
func (w *World) ReportFig5a(q Quality) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5a — page load time (first-time / subsequent)\n")
	fmt.Fprintf(&b, "  %-13s %-26s %s\n", "method", "first-time mean [min,max]", "subsequent mean [min,max]")
	for _, f := range w.Methods() {
		r, err := w.MeasurePLT(f, q.FirstRuns, q.Subsequent)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-13s %-26s %s\n", r.Method,
			fmtSummary(r.FirstTime), fmtSummary(r.Subsequent))
	}
	return b.String(), nil
}

func fmtSummary(s metrics.Summary) string {
	return fmt.Sprintf("%s [%s, %s]",
		metrics.FormatSeconds(s.Mean), metrics.FormatSeconds(s.Min), metrics.FormatSeconds(s.Max))
}

// ReportFig5b prints tunneled RTTs per method.
func (w *World) ReportFig5b(q Quality) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5b — round-trip time through each method\n")
	fmt.Fprintf(&b, "  %-13s %s\n", "method", "RTT mean [min,max]")
	for _, f := range w.Methods() {
		r, err := w.MeasureRTT(f, q.RTTProbes)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-13s %s\n", r.Method, fmtSummary(r.RTT))
	}
	return b.String(), nil
}

// ReportFig5c prints packet loss rates per method plus the uncensored
// baseline.
func (w *World) ReportFig5c(q Quality) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5c — packet loss rate (robustness to censorship)\n")
	fmt.Fprintf(&b, "  %-13s %-8s %s\n", "method", "PLR", "packets")
	fs := append(w.Methods(), w.DirectBaseline())
	for _, f := range fs {
		r, err := w.MeasurePLR(f, q.PLRVisits)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-13s %-8s %d\n", r.Method, metrics.FormatPercent(r.PLR), r.Packets)
	}
	return b.String(), nil
}

// ReportFig6a prints per-access client traffic, with the uncensored
// baseline first (the dotted line of the figure).
func (w *World) ReportFig6a(q Quality) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6a — client network traffic per access\n")
	fs := append([]Factory{w.DirectBaseline()}, w.Methods()...)
	baseline := 0.0
	for _, f := range fs {
		r, err := w.MeasureTraffic(f, q.TrafficVisits)
		if err != nil {
			return "", err
		}
		if f.Name == "direct-us" {
			baseline = r.BytesPerAccess
			fmt.Fprintf(&b, "  %-13s %-9s (baseline)\n", r.Method, metrics.FormatKB(r.BytesPerAccess))
			continue
		}
		fmt.Fprintf(&b, "  %-13s %-9s (+%s overhead)\n", r.Method,
			metrics.FormatKB(r.BytesPerAccess), metrics.FormatKB(r.BytesPerAccess-baseline))
	}
	return b.String(), nil
}

// ReportFig6bc prints the modeled client CPU and memory costs, driven by
// the measured traffic.
func (w *World) ReportFig6bc(q Quality) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6b/6c — client CPU%% and memory (cost model over measured traffic)\n")
	fmt.Fprintf(&b, "  %-13s %-12s %-10s %-12s %s\n", "method", "browser CPU", "extra CPU", "mem before", "mem after")
	for _, f := range w.Methods() {
		r, err := w.MeasureTraffic(f, q.TrafficVisits)
		if err != nil {
			return "", err
		}
		name := f.Name
		if name == "native-vpn" {
			name = "native-vpn-pptp"
		}
		if name == "tor" {
			name = "tor-meek"
		}
		est := costmodel.ForMethod(name, r.BytesPerAccess, 3)
		fmt.Fprintf(&b, "  %-13s %-12s %-10s %-12s %s\n", f.Name,
			fmt.Sprintf("%.2f%%", est.BrowserCPU),
			fmt.Sprintf("%.2f%%", est.ExtraCPU),
			fmt.Sprintf("%.0f MB", est.MemBeforeMB),
			fmt.Sprintf("%.0f MB", est.MemAfterMB))
	}
	return b.String(), nil
}

// ReportDeployment reproduces the paper's §1 deployment economics: the
// service ran on two VMs at 2.2 USD/day for ~700 daily users.
func (w *World) ReportDeployment(q Quality) (string, error) {
	var sc Factory
	for _, f := range w.Methods() {
		if f.Name == "scholarcloud" {
			sc = f
		}
	}
	tr, err := w.MeasureTraffic(sc, q.TrafficVisits)
	if err != nil {
		return "", err
	}
	b := opscost.Estimate(opscost.PaperWorkload(tr.BytesPerAccess), opscost.DefaultPricing())
	var out strings.Builder
	fmt.Fprintf(&out, "Deployment economics (paper §1: two VMs, ~700 daily users, 2.2 USD/day)\n")
	fmt.Fprintf(&out, "  measured traffic/access  %s\n", metrics.FormatKB(tr.BytesPerAccess))
	fmt.Fprintf(&out, "  VM cost                  $%.2f/day (2 instances)\n", b.VMCostUSD)
	fmt.Fprintf(&out, "  egress                   %.2f GB -> $%.2f/day\n", b.TrafficGB, b.TrafficCostUSD)
	fmt.Fprintf(&out, "  total                    $%.2f/day ($%.4f per user)\n", b.TotalUSD, b.PerUserUSD)
	return out.String(), nil
}

// ReportFig7 prints the scalability sweep. Tor is excluded, as in the
// paper (its servers are not under the operator's control).
func (w *World) ReportFig7(q Quality) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — mean PLT vs concurrent clients\n")
	methods := []Factory{}
	for _, f := range w.Methods() {
		if f.Name != "tor" {
			methods = append(methods, f)
		}
	}
	fmt.Fprintf(&b, "  %-9s", "clients")
	for _, f := range methods {
		fmt.Fprintf(&b, " %-13s", f.Name)
	}
	b.WriteString("\n")
	for _, n := range q.ScaleSweep {
		fmt.Fprintf(&b, "  %-9d", n)
		for _, f := range methods {
			p, err := w.MeasureScalability(f, n, q.ScaleRounds)
			if err != nil {
				return "", err
			}
			cell := metrics.FormatSeconds(p.PLT.Mean)
			if p.Failed > 0 {
				cell += fmt.Sprintf("(%df)", p.Failed)
			}
			fmt.Fprintf(&b, " %-13s", cell)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
