// Package experiments assembles the censored world of the paper's
// methodology (§4.2) — a client at Tsinghua inside CERNET, origin and
// proxy servers in the US, a Tor middle relay in Europe, and the GFW on
// the border — and provides one runner per figure of the evaluation.
package experiments

import (
	"fmt"
	"time"

	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netsim"
)

// Calibration constants. Each value targets a quantity the paper reports;
// mechanisms (retransmission, queueing, handshakes, polling) do the rest.
const (
	// accessDelay/accessBW model campus LAN access (CERNET) and
	// datacenter NICs: a couple of milliseconds, 100 Mbps.
	accessDelay = 2 * time.Millisecond
	accessBW    = 12.5e6

	// borderDelay is the one-way Beijing↔San-Mateo propagation, chosen so
	// the end-to-end RTT lands near 160 ms — consistent with the paper's
	// Fig. 5b range for single-tunnel methods (150–250 ms).
	borderDelay = 73 * time.Millisecond

	// borderJitter is per-packet delay variance on the international
	// path; it produces the min/max whiskers the paper's figures show.
	borderJitter = 6 * time.Millisecond

	// borderLoss is the cross-border congestion loss with no censorship
	// involvement. The paper measures ≈0.2% PLR for VPNs and for
	// non-blocked US sites (Amazon) — that is this constant, observed
	// through the client's flows.
	borderLoss = 0.002

	// euDelay is the US↔EU leg a Tor circuit's middle hop adds.
	euDelay = 25 * time.Millisecond

	// cnBackboneDelay separates CERNET from the Chinese commodity
	// internet where the ScholarCloud domestic proxy lives.
	cnBackboneDelay = 3 * time.Millisecond

	// gfwMeekLoss is the interference rate the GFW applies to flows whose
	// TLS fronts match Tor's meek bundle. With borderLoss on top, the
	// client observes ≈4.4% (Fig. 5c: Tor).
	gfwMeekLoss = 0.042

	// gfwShadowsocksLoss is applied to flows whose server an active probe
	// confirmed. With borderLoss on top, ≈0.77% (Fig. 5c: Shadowsocks).
	gfwShadowsocksLoss = 0.0057

	// gfwProbeDelay is how long after suspicion the prober fires; the
	// real GFW probes within seconds to minutes.
	gfwProbeDelay = 2 * time.Second

	// meekPollInterval is meek's polling cadence (the real client's
	// adaptive floor is 100 ms).
	meekPollInterval = 100 * time.Millisecond

	// vpnEchoInterval/Size model PPTP GRE echo + OS background chatter
	// that full-tunnel routing forces through the measured interface;
	// calibrated so native VPN's per-access client traffic exceeds the
	// direct baseline by ≈14 KB (Fig. 6a's largest overhead).
	vpnEchoInterval = 1500 * time.Millisecond
	vpnEchoSize     = 72

	// openvpnPingInterval/Size model OpenVPN's --ping keepalive;
	// compression offsets most of its framing, leaving the smallest
	// overhead (+≈8 KB in Fig. 6a).
	openvpnPingInterval = 2 * time.Second
	openvpnPingSize     = 48

	// Server-side CPU costs (single-core VM, 2.3 GHz in the paper). The
	// scalability experiment (Fig. 7) emerges from these: Shadowsocks
	// pays a large per-session authentication/initialization cost (the
	// paper's root cause: user/password authentication plus session
	// re-initialization after the 10 s keep-alive), so server utilization
	// approaches 1 near 60 concurrent clients — the knee of Fig. 7 —
	// and queueing delays beyond the keep-alive trigger re-auth cascades.
	// The other methods' per-stream costs are an order of magnitude
	// smaller, so their PLT grows gently and linearly.
	ssAuthCost     = 900 * time.Millisecond
	ssRelayCost    = 12 * time.Millisecond
	vpnStreamCost  = 22 * time.Millisecond
	ovpnStreamCost = 10 * time.Millisecond
	scStreamCost   = 9 * time.Millisecond
)

// scholarPage is the Scholar home page composition: the application-layer
// payload plus transport overheads put a direct access at ≈19 KB of
// client NIC traffic (Fig. 6a's dotted baseline).
func scholarPage() httpsim.PageSpec {
	return httpsim.PageSpec{
		MainDocSize: 7 * 1024,
		Resources: []httpsim.ResourceSpec{
			{Path: "/static/scholar.js", Size: 3 * 1024},
			{Path: "/static/scholar.css", Size: 1536},
			{Path: "/static/logo.png", Size: 2560},
			{Path: "/static/sprite.png", Size: 1024},
		},
	}
}

// Host addresses of the simulated world.
const (
	ipClient   = "10.3.0.2"
	ipProber   = "10.255.0.1"
	ipDomestic = "101.6.6.6"
	// shardIPBase prefixes the extra domestic shards: shard i (i ≥ 1)
	// lives at shardIPBase+(10+i); shard 0 is ipDomestic itself.
	shardIPBase = "101.6.6."
	ipTsinghua  = "166.111.4.100"
	ipDNS       = "8.8.8.8"
	ipScholar   = "172.217.6.78"
	ipAccounts  = "172.217.6.79"
	ipMirror    = "198.51.100.99"
	// ipUnblockedGoogle is an IP the GFW has not blacklisted (yet) — a
	// volunteer mirror of Scholar, the kind of address hosts-file and
	// Free-Gate-style users hunted for.
	ipUnblockedGoogle = "64.233.189.19"
	// mirrorAltName is the mirror's innocuous hostname (absent from both
	// public DNS and the keyword blacklist).
	mirrorAltName = "xueshu-mirror.example"
	ipVPN         = "198.51.100.10"
	ipOpenVPN     = "198.51.100.11"
	ipSS          = "198.51.100.12"
	ipSCRemote    = "198.51.100.7"
	ipMeekFront   = "13.107.246.10"
	ipTorMiddle   = "185.220.101.5"
	ipTorExit     = "204.13.164.118"
	meekFrontSNI  = "ajax.aspnetcdn.com"

	portVPN      = 1723
	portOpenVPN  = 1194
	portSS       = 8388
	portSCRemote = 8443
	portProxy    = 8118
	portPACWeb   = 8080
	portEcho     = 7

	// fleetRemoteIPBase prefixes the extra fleet remotes: remote i lives
	// at fleetRemoteIPBase+(70+i), e.g. 198.51.100.71 for i=1. The block
	// runs out at i=28 (.99 is the mirror), so larger fleets — the scale
	// figure's provisioning ladder — overflow into fleetRemoteIPBase2
	// (see fleetRemoteIP). Keeping the small-fleet addresses unchanged
	// keeps every historical fleet figure byte-identical.
	fleetRemoteIPBase  = "198.51.100."
	fleetRemoteIPBase2 = "198.51.101."
)

// fleetRemoteIP returns extra fleet remote i's address (i ≥ 1).
func fleetRemoteIP(i int) string {
	if i <= 28 {
		return fmt.Sprintf("%s%d", fleetRemoteIPBase, 70+i)
	}
	return fmt.Sprintf("%s%d", fleetRemoteIPBase2, i-28)
}

// Fleet control-plane cadence (Config.FleetRemotes > 0). Probes ride the
// existing carriers, so a tight cadence costs one tiny frame exchange;
// the numbers bound how long a silent takedown can go unnoticed:
// detection takes at most 2 probe rounds (EjectAfter is the fleet
// default of 2), i.e. ~2*fleetProbeInterval.
const (
	fleetProbeInterval  = 2 * time.Second
	fleetProbeTimeout   = 1 * time.Second
	fleetReadmitBackoff = 15 * time.Second
	// fleetDialTimeout bounds one carrier dial when Config.Resilience is
	// on (a dead remote's SYNs otherwise stall the dialer for the full
	// TCP handshake-retry schedule).
	fleetDialTimeout = 3 * time.Second
)

// Transport-ladder infrastructure (Config.Transports non-empty). The
// blinded rung reuses the primary remote; the other rungs get their own
// cover infrastructure in the US zone.
const (
	// tunnelDomain is the DNS tunnel's innocuous zone — absent from the
	// GFW's keyword blacklist, so its queries recurse unmolested.
	tunnelDomain = "cdn-sync.example"
	// ipTunnelAuth hosts the tunnel's authoritative server (the remote
	// proxy's DNS face).
	ipTunnelAuth = "198.51.100.53"
	// Public recursive resolvers the tunnel rotates through. They relay
	// to the authority; the censor sees only resolver traffic.
	tunnelRelays = 3
	// ipGatewayBase prefixes the rendezvous gateway pool: gateway i
	// lives at ipGatewayBase+(10+i):443 — a slice of a cloud provider's
	// ephemeral address space.
	ipGatewayBase   = "203.0.113."
	gatewayPoolSize = 8
	// rendezvousSNI is the innocuous cloud-front server name rendezvous
	// connections present in the clear.
	rendezvousSNI = "fn.cloudapi.example"
	// rendezvousInvocationUSD is the metered per-invocation price the
	// cost model charges for rendezvous endpoints (2016-era serverless
	// pricing, request fee plus API-gateway share).
	rendezvousInvocationUSD = 0.4e-6

	// transportsProbeInterval/Timeout slow the fleet's health cadence in
	// ladder worlds: an RTT echo over the DNS tunnel takes several
	// hundred milliseconds even when healthy, so the single-remote
	// cadence would misread load as death.
	transportsProbeInterval = 5 * time.Second
	transportsProbeTimeout  = 3 * time.Second
	// transportsDialTimeout bounds one carrier dial across the slowest
	// rung: a rendezvous dial retries several cold starts, a tunnel dial
	// retransmits its SYN exchange.
	transportsDialTimeout = 12 * time.Second
	// transportsHedgeAfter/RequestTimeout relax the resilience policy
	// for ladder worlds: the DNS-tunnel rung is legitimately slow, and
	// the default 2 s hedge trigger would double its load permanently.
	transportsHedgeAfter     = 8 * time.Second
	transportsRequestTimeout = 90 * time.Second
)

// tunnelRelayIPs returns the resolver-pool addresses ("ip" only).
func tunnelRelayIPs() []string {
	return []string{"9.9.9.9", "1.1.1.1", "208.67.222.222"}[:tunnelRelays]
}

// accessLink returns the standard access-link configuration.
func accessLink() netsim.LinkConfig {
	return netsim.LinkConfig{Delay: accessDelay, Bandwidth: accessBW}
}
