package experiments

import (
	"testing"
	"time"

	"scholarcloud/internal/httpsim"
)

// TestCacheHitGeneratesZeroBorderTraffic is the tentpole's regression
// guarantee: serving a cached object must not put a single packet on the
// border link (and therefore nothing in front of the GFW). The world has
// no fleet, so nothing else generates recurring cross-border traffic and
// the link-counter delta across the hit must be exactly zero.
func TestCacheHitGeneratesZeroBorderTraffic(t *testing.T) {
	w := newTestWorld(t, Config{CacheMB: 16})
	err := w.Run(func() error {
		conn, err := w.Client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		cc := httpsim.NewClientConn(conn)
		req := func() (*httpsim.Response, error) {
			return cc.RoundTrip(&httpsim.Request{
				Method: "GET",
				Target: "https://scholar.google.com/static/logo.png",
				Host:   "scholar.google.com",
				Header: map[string]string{},
			})
		}

		// Miss: fetched across the border and stored.
		first, err := req()
		if err != nil {
			return err
		}
		if first.StatusCode != 200 || len(first.Body) == 0 {
			t.Fatalf("miss response: %d (%d bytes)", first.StatusCode, len(first.Body))
		}
		// Let the upstream stream's teardown (FIN/ACK exchange) finish so
		// it cannot leak into the hit's measurement window.
		w.Env.Clock.Sleep(5 * time.Second)

		before := w.Border.Stats()
		second, err := req()
		if err != nil {
			return err
		}
		after := w.Border.Stats()

		if second.StatusCode != 200 || string(second.Body) != string(first.Body) {
			t.Fatalf("hit response: %d (%d bytes)", second.StatusCode, len(second.Body))
		}
		if after != before {
			t.Fatalf("cache hit crossed the border: %+v -> %+v", before, after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Cache.Snapshot(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit + 1 miss", st)
	}
}

// TestGatewayModePreservesFirstVisitSemantics checks that the shared
// cache does not flatten per-user state: the main document sets a cookie
// (never cacheable), so each new browser behind the caching proxy still
// performs its own first-visit account recording, while the page's
// static subresources are served from the shared cache.
func TestGatewayModePreservesFirstVisitSemantics(t *testing.T) {
	w := newTestWorld(t, Config{CacheMB: 16})
	m := w.ScholarCloud(w.Client)
	defer m.Close()

	var visits []*httpsim.VisitStats
	err := w.Run(func() error {
		for i := 0; i < 2; i++ {
			browser := httpsim.NewBrowser(m, w.Env.Clock)
			visits = append(visits, browser.Visit(scholarURL))
			w.Env.Clock.Sleep(time.Minute)
			// Revisit with a warm cookie jar: no account recording.
			visits = append(visits, browser.Visit(scholarURL))
			w.Env.Clock.Sleep(time.Minute)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range visits {
		if st.Failed {
			t.Fatalf("visit %d failed: %v", i, st.Err)
		}
	}
	if !visits[0].AccountRecorded || !visits[2].AccountRecorded {
		t.Error("first visits skipped account recording behind the cache")
	}
	if visits[1].AccountRecorded || visits[3].AccountRecorded {
		t.Error("revisit re-recorded the account")
	}
	if got := w.Origin.AccountRecordings(); got != 2 {
		t.Errorf("account recordings = %d, want 2 (one per browser)", got)
	}
	if st := w.Cache.Snapshot(); st.Hits == 0 {
		t.Errorf("shared cache saw no hits across browsers: %+v", st)
	}
}

// TestCacheLoadSweepSeparation is a miniature of the -fig cache claim:
// at equal load, cache-on must beat cache-off on both PLT and border
// bytes.
func TestCacheLoadSweepSeparation(t *testing.T) {
	measure := func(mb int) *CachePoint {
		w := NewWorld(Config{Seed: 11, CacheMB: mb})
		defer w.Close()
		p, err := w.MeasureCacheLoad(10, 2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	off := measure(0)
	on := measure(cacheSweepMB)
	if off.Failed > 0 || on.Failed > 0 {
		t.Fatalf("failures: off=%d on=%d", off.Failed, on.Failed)
	}
	if on.BorderBytes >= off.BorderBytes {
		t.Errorf("border bytes with cache (%d) not below without (%d)", on.BorderBytes, off.BorderBytes)
	}
	if on.PLT.Mean >= off.PLT.Mean {
		t.Errorf("mean PLT with cache (%v) not below without (%v)", on.PLT.Mean, off.PLT.Mean)
	}
	if on.Hits == 0 || on.Misses == 0 {
		t.Errorf("cache-on sweep recorded no activity: %+v", on)
	}
	if off.Hits != 0 || off.Coalesced != 0 {
		t.Errorf("cache-off sweep reported cache activity: %+v", off)
	}
}
