package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"scholarcloud/internal/carrier"
	"scholarcloud/internal/gfw"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/opscost"
)

// transportsStressInterval is the per-client revisit cadence of the
// transport-ladder figure — the same continuous-browsing pressure as the
// faults sweep.
const transportsStressInterval = 20 * time.Second

// transportsClients is the concurrent-client load each censor stage runs
// under. Modest on purpose: the crackdown stages drive every page load
// through the DNS tunnel, whose lock-step exchanges serialize.
const transportsClients = 12

// TransportStage is one escalation step of the censor: which carrier
// fingerprints it blocks and how much of the rendezvous gateway pool it
// has blacklisted.
type TransportStage struct {
	Name string
	// Classes are the traffic-classifier verdicts the censor resets at
	// the border at this stage.
	Classes []gfw.Class
	// BlockGateways is how many rendezvous gateway addresses the censor
	// has blacklisted (a prefix of the pool).
	BlockGateways int
}

// nonWhitelisted are the classifier verdicts a protocol-whitelist
// crackdown resets: high-entropy streams, unrecognized cleartext, and
// the native VPN protocols the GFW has blocked for years. Only
// HTTP/TLS/DNS survive. The full set matters because a byte-substitution
// blinding epoch leaves roughly half the wire image printable — its
// flows land on either side of the printable-fraction heuristic (or on
// a loose VPN prefix match) depending on payload, and every landing
// spot must be blocked for the fingerprint to hold.
var nonWhitelisted = []gfw.Class{
	gfw.ClassEncrypted, gfw.ClassLowEntropy,
	gfw.ClassOpenVPN, gfw.ClassPPTP, gfw.ClassL2TP,
}

// TransportStages returns the censor's escalation script, mildest first:
// no interference, then whitelist-blocking every unrecognized protocol
// (which fingerprints out the blinded carrier), then additionally
// blacklisting half the rendezvous pool, then also resetting TLS
// cross-border TCP flows — the stage only a covert channel survives.
func TransportStages() []TransportStage {
	return []TransportStage{
		{Name: "open"},
		{Name: "fingerprint", Classes: nonWhitelisted},
		{Name: "fingerprint+ip", Classes: nonWhitelisted,
			BlockGateways: gatewayPoolSize / 2},
		{Name: "tcp-crackdown", Classes: append([]gfw.Class{gfw.ClassTLS}, nonWhitelisted...)},
	}
}

// TransportStageByName resolves one censor stage by name.
func TransportStageByName(name string) (TransportStage, bool) {
	for _, s := range TransportStages() {
		if s.Name == name {
			return s, true
		}
	}
	return TransportStage{}, false
}

// TransportStageNames lists the censor stages in escalation order.
func TransportStageNames() []string {
	stages := TransportStages()
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name
	}
	return names
}

// ApplyTransportStage arms stage s on the world's censor. Stages are
// cumulative in spirit but each figure cell runs a fresh world, so the
// stage carries its full block set.
func (w *World) ApplyTransportStage(s TransportStage) error {
	return w.Run(func() error {
		if w.GFW == nil {
			return nil
		}
		p := w.GFW.ActivePolicy()
		p.BlockClasses = append([]gfw.Class(nil), s.Classes...)
		n := s.BlockGateways
		if n > len(w.gatewayIPs) {
			n = len(w.gatewayIPs)
		}
		p.BlockIPs = append(p.BlockIPs, w.gatewayIPs[:n]...)
		w.GFW.Apply(p)
		return nil
	})
}

// TransportsResult is one censor-stage cell of the transport-ladder
// figure.
type TransportsResult struct {
	Stage   string
	Clients int
	// FinalRung is the ladder's active transport once the stage's load
	// completes — where the escalation walk settled.
	FinalRung   string
	Escalations int64
	// Invocations is how many rendezvous endpoint invocations (cold
	// starts) the stage's load paid for.
	Invocations int64
	PLT         metrics.Summary // seconds, successful visits only
	Visits      int
	Failed      int
}

// SuccessRate is the fraction of page loads that completed.
func (r *TransportsResult) SuccessRate() float64 {
	if r.Visits == 0 {
		return 0
	}
	return 1 - float64(r.Failed)/float64(r.Visits)
}

// InvocationCostUSD extrapolates the measured invocation rate to the
// paper's daily workload (§1: ~700 users, ~20 accesses each) under
// metered serverless pricing — the opscost hook that prices the
// rendezvous rung against the 2.2 USD/day VM deployment.
func (r *TransportsResult) InvocationCostUSD() float64 {
	if r.Visits == 0 || r.Invocations == 0 {
		return 0
	}
	wk := opscost.PaperWorkload(0)
	wk.InvocationsPerAccess = float64(r.Invocations) / float64(r.Visits)
	p := opscost.DefaultPricing()
	p.InvocationUSD = rendezvousInvocationUSD
	return opscost.Estimate(wk, p).InvocationCostUSD
}

// MeasureTransports arms censor stage s, then runs n concurrent
// ScholarCloud clients for `rounds` visit rounds against the world's
// transport ladder and reports where the escalation walk settled. The
// world must have been built with Config.Transports.
func (w *World) MeasureTransports(s TransportStage, n, rounds int) (*TransportsResult, error) {
	if w.Ladder == nil {
		return nil, errors.New("experiments: world has no transport ladder (set Config.Transports)")
	}
	if err := w.ApplyTransportStage(s); err != nil {
		return nil, err
	}
	p, err := w.measureScalabilityAt(w.Methods()[4], n, rounds, transportsStressInterval, false)
	if err != nil {
		return nil, err
	}
	r := &TransportsResult{
		Stage:       s.Name,
		Clients:     n,
		FinalRung:   w.Ladder.ActiveName(),
		Escalations: w.Ladder.Escalations(),
		PLT:         p.PLT,
		Visits:      p.PLT.N + p.Failed,
		Failed:      p.Failed,
	}
	if w.RendezvousCarrier != nil {
		r.Invocations = w.RendezvousCarrier.Invocations()
	}
	return r, nil
}

// transportsRow formats one censor-stage row.
func transportsRow(r *TransportsResult) string {
	return fmt.Sprintf("  %-16s %-12s %-10s %-10s %-8d %-8d %-9s %-7d %-9d %.2f\n",
		r.Stage, r.FinalRung,
		metrics.FormatSeconds(r.PLT.Mean), metrics.FormatSeconds(r.PLT.P95),
		r.Visits, r.Failed, fmt.Sprintf("%.1f%%", 100*r.SuccessRate()),
		r.Escalations, r.Invocations, r.InvocationCostUSD())
}

// transportsHeader formats the figure's preamble and column header.
func transportsHeader(rounds int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transport ladder (%d clients, %d rounds at %s cadence; rungs: %s)\n",
		transportsClients, rounds,
		metrics.FormatSeconds(transportsStressInterval.Seconds()),
		strings.Join(carrier.Known(), " -> "))
	fmt.Fprintf(&b, "  %-16s %-12s %-10s %-10s %-8s %-8s %-9s %-7s %-9s %s\n",
		"censor stage", "final rung", "plt(mean)", "plt(p95)",
		"visits", "failed", "success", "escal", "invokes", "usd/day")
	return b.String()
}

// ReportTransports renders the transport-ladder figure sequentially (the
// single-process counterpart of transportsPlan, used by the Report*
// path).
func ReportTransports(seed uint64, q Quality) (string, error) {
	rounds := q.ScaleRounds + 1
	var b strings.Builder
	b.WriteString(transportsHeader(rounds))
	for _, stage := range TransportStages() {
		w := NewWorld(Config{
			Seed:       seed,
			Transports: carrier.Known(),
			Resilience: true,
		})
		r, err := w.MeasureTransports(stage, transportsClients, rounds)
		if err != nil {
			w.Close()
			return "", err
		}
		b.WriteString(transportsRow(r))
		w.Close()
	}
	return b.String(), nil
}

// transportsPlan decomposes the transport-ladder figure for the parallel
// harness: one world per censor stage, every cell deterministic, merged
// in declaration order.
func transportsPlan(q Quality) figurePlan {
	rounds := q.ScaleRounds + 1
	var cells []cell
	cells = append(cells, cell{
		Label: "header",
		Run: func(uint64) (cellResult, error) {
			return cellResult{Row: transportsHeader(rounds)}, nil
		},
	})
	for _, stage := range TransportStages() {
		stage := stage
		cells = append(cells, cell{
			Label:  stage.Name,
			Worlds: 1,
			Weight: 100 + transportsClients,
			Run: func(seed uint64) (cellResult, error) {
				w := NewWorld(Config{
					Seed:       seed,
					Transports: carrier.Known(),
					Resilience: true,
					RunGuard:   sweepRunGuard,
				})
				defer w.Close()
				r, err := w.MeasureTransports(stage, transportsClients, rounds)
				if err != nil {
					return cellResult{}, err
				}
				return settledResult(w, transportsRow(r),
					namedValue{Name: "success", Value: 100 * r.SuccessRate(), Unit: "%"},
					namedValue{Name: "plt", Value: r.PLT.Mean, Unit: "s"})
			},
		})
	}
	return figurePlan{
		Name:   "transports",
		Title:  "Carrier transports & escalation ladder",
		Cells:  cells,
		Render: concatRows,
	}
}
