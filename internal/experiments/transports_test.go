package experiments

import (
	"testing"

	"scholarcloud/internal/carrier"
)

func transportsWorld(seed uint64) *World {
	return NewWorld(Config{
		Seed:       seed,
		Transports: carrier.Known(),
		Resilience: true,
	})
}

// TestLadderIdlesOnBlindedWhenOpen checks the no-censorship baseline:
// with nothing blocked, every page load rides the fast blinded carrier
// and the ladder never escalates.
func TestLadderIdlesOnBlindedWhenOpen(t *testing.T) {
	w := transportsWorld(2017)
	defer w.Close()
	r, err := w.MeasureTransports(TransportStages()[0], 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalRung != carrier.Blinded {
		t.Errorf("final rung = %s, want %s", r.FinalRung, carrier.Blinded)
	}
	if r.Escalations != 0 {
		t.Errorf("escalations = %d, want 0", r.Escalations)
	}
	if r.Failed != 0 {
		t.Errorf("%d/%d page loads failed in the open stage", r.Failed, r.Visits)
	}
}

// TestFallbackSurvivesFingerprintBlocking is the transport figure's
// acceptance criterion: when the GFW fingerprint-blocks the blinded
// carrier, the escalation ladder walks off it and at least 99% of page
// loads still complete — through the rendezvous rung — with graceful
// (not catastrophic) PLT degradation.
func TestFallbackSurvivesFingerprintBlocking(t *testing.T) {
	stage := TransportStages()[1]
	if stage.Name != "fingerprint" {
		t.Fatalf("stage[1] = %s, want fingerprint", stage.Name)
	}
	w := transportsWorld(2017)
	defer w.Close()
	r, err := w.MeasureTransports(stage, transportsClients, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.SuccessRate() < 0.99 {
		t.Errorf("success rate = %.1f%% (%d/%d failed), want >= 99%%",
			100*r.SuccessRate(), r.Failed, r.Visits)
	}
	if r.FinalRung == carrier.Blinded {
		t.Error("ladder still on the blinded rung under fingerprint blocking")
	}
	if r.Escalations == 0 {
		t.Error("no escalations recorded")
	}
	if r.Invocations == 0 {
		t.Error("no rendezvous invocations metered — fallback did not pay for endpoints")
	}
	if r.PLT.Mean > 30 {
		t.Errorf("mean PLT %.1fs after fallback — degradation is not graceful", r.PLT.Mean)
	}
}

// TestCrackdownFallsBackToTunnel drives the censor to its harshest
// stage — every unrecognized or TLS cross-border TCP flow reset — and
// checks the walk settles on the covert DNS tunnel, slow but alive.
func TestCrackdownFallsBackToTunnel(t *testing.T) {
	w := transportsWorld(2017)
	defer w.Close()
	r, err := w.MeasureTransports(TransportStages()[3], 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalRung != carrier.DNSTunnel {
		t.Errorf("final rung = %s, want %s", r.FinalRung, carrier.DNSTunnel)
	}
	if r.SuccessRate() < 0.9 {
		t.Errorf("success rate = %.1f%% (%d/%d failed) on the tunnel rung",
			100*r.SuccessRate(), r.Failed, r.Visits)
	}
}
