package experiments

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"scholarcloud/internal/autoscale"
	"scholarcloud/internal/blinding"
	"scholarcloud/internal/cache"
	"scholarcloud/internal/carrier"
	"scholarcloud/internal/censor"
	"scholarcloud/internal/core"
	"scholarcloud/internal/dnssim"
	"scholarcloud/internal/faults"
	"scholarcloud/internal/fleet"
	"scholarcloud/internal/gfw"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/openvpn"
	"scholarcloud/internal/pac"
	"scholarcloud/internal/pki"
	"scholarcloud/internal/registry"
	"scholarcloud/internal/shadowsocks"
	"scholarcloud/internal/shard"
	"scholarcloud/internal/tlssim"
	"scholarcloud/internal/tor"
	"scholarcloud/internal/tunnel"
	"scholarcloud/internal/vpn"
)

// Config adjusts the world for ablations; the zero value (plus a seed)
// reproduces the paper's setting.
type Config struct {
	Seed uint64
	// DisableGFW removes the censor entirely (an uncensored baseline).
	DisableGFW bool
	// BlindingEpoch selects ScholarCloud's blinding scheme; rotation
	// ablations change it on the fly via RotateBlinding.
	BlindingEpoch uint64
	// ScholarCloudNoBlinding disables message blinding on the inter-proxy
	// tunnel (the ablation showing why blinding matters).
	ScholarCloudNoBlinding bool
	// SSKeepAlive overrides Shadowsocks' 10 s keep-alive.
	SSKeepAlive time.Duration
	// DisableServerCosts zeroes the per-request server CPU model (used
	// by unit tests that only care about protocol correctness).
	DisableServerCosts bool
	// FleetRemotes, when > 0, runs ScholarCloud's domestic proxy against a
	// fleet of that many remote proxies managed by internal/fleet (health
	// probing, load balancing, takedown-aware rotation). Zero keeps the
	// paper's single-remote deployment; either way the world stays
	// deterministic (probe timers only fire inside Run windows).
	FleetRemotes int
	// FleetSessionsPerRemote sizes each remote's pre-dialed carrier pool
	// (zero selects the fleet package default).
	FleetSessionsPerRemote int
	// RunGuard overrides Run's wall-clock deadlock guard (default 120 s).
	// The parallel experiment harness raises it: a heavy cell sharing a
	// core with other worlds can exceed the default without being stuck.
	RunGuard time.Duration
	// CacheMB, when > 0, gives ScholarCloud's domestic proxy a shared
	// content cache with that byte budget (internal/cache) and switches
	// its clients to HTTPS-gateway mode so cacheable traffic is visible
	// to it. Zero keeps the paper's cacheless deployment.
	CacheMB int
	// CacheTTL overrides the cache's heuristic freshness lifetime (zero
	// selects the cache package default).
	CacheTTL time.Duration
	// FaultScenario, when non-empty, arms a scripted fault scheduler
	// (internal/faults) against the border link, the GFW's episode state,
	// and the fleet remotes. The name must be a faults.Script scenario;
	// the script executes on the virtual clock once a measurement calls
	// World.InjectFaults. Empty keeps the healthy world — and every
	// historical figure — byte-identical.
	FaultScenario string
	// Resilience enables the domestic proxy's client-path resilience
	// layer (per-dial and per-request deadlines, reconnect backoff with
	// deterministic jitter, hedged retry on a second carrier) and bounds
	// fleet carrier dials. Off by default: the historical fail-fast
	// behaviour is the resilience-off baseline the faults figure measures
	// against.
	Resilience bool
	// Transports, when non-empty, replaces the domestic proxy's
	// single-carrier dial path with an escalation ladder
	// (internal/carrier) over the named transports, in ladder order —
	// fastest and most blockable first. Valid names are carrier.Blinded,
	// carrier.Rendezvous, and carrier.DNSTunnel; each gets its own cover
	// infrastructure in the US zone and a transport-labeled fleet
	// endpoint. Mutually exclusive with FleetRemotes. Empty keeps the
	// paper's single blinded carrier — and every historical figure —
	// byte-identical.
	Transports []string
	// Shards, when > 1, runs the domestic tier as that many proxy shards
	// (shard 0 on the classic SCDomestic host, the rest on their own
	// CNNet hosts) behind a multi-proxy PAC that rendezvous-hashes each
	// user onto a shard. Requires CacheMB > 0 (the peering tier is a
	// cache tier) and is mutually exclusive with FleetRemotes and
	// Transports. Zero or one keeps the paper's single proxy — and every
	// historical figure — byte-identical.
	Shards int
	// ShardSiblingFetch wires the shards' caches into a peering mesh:
	// consistent-hash key ownership, with a local miss fetched from the
	// owning peer (one border crossing per object for the whole tier)
	// instead of across the border. Off: each shard fetches for itself.
	ShardSiblingFetch bool
	// ShardRehashOnDeath controls the takedown policy: on, a dead
	// shard's key range rehashes to survivors; off (the ablation), key
	// ownership stays pinned and orphaned keys fall back to border
	// fetches.
	ShardRehashOnDeath bool
	// AutoscaleInitial, when > 0, starts the shard tier with only the
	// first AutoscaleInitial shards active: the remaining Shards-
	// AutoscaleInitial are fully provisioned (host, proxy, cache,
	// listener) but marked down in the ring — standbys the autoscale
	// controller admits mid-run with cache warm-up, and retires again
	// with key handoff. Requires Shards > 1, ShardSiblingFetch (warm-up
	// and drain move keys over the sibling path), and ShardRehashOnDeath
	// (a standby must own no keys). Zero disables autoscaling and keeps
	// every historical figure byte-identical.
	AutoscaleInitial int
	// AutoscalePolicy tunes the controller when AutoscaleInitial > 0.
	// Zero fields default: MinShards to AutoscaleInitial, MaxShards to
	// Shards, the rest to the autoscale package defaults.
	AutoscalePolicy autoscale.Policy
	// AutoscaleInterval is the control loop's sampling cadence (default
	// 15 s — virtual seconds, so ticks land at seed-determined instants).
	AutoscaleInterval time.Duration
	// Censor, when non-nil, builds a multi-border world: each border in
	// the policy gets its own client region, its own border link into the
	// US zone, its own gfw.GFW instance (seeded independently), and its
	// own domestic proxy with a full carrier escalation ladder. The
	// policy's scripted stages and adaptive controllers run on the
	// virtual clock once a measurement calls ArmCensor. Mutually
	// exclusive with Transports, FleetRemotes, Shards, CacheMB and
	// FaultScenario. Nil keeps the single-border world — and every
	// historical figure — byte-identical.
	Censor *censor.Policy
}

// World is the assembled simulated internet of §4.2.
type World struct {
	Cfg Config
	Net *netsim.Network
	Env netx.Env
	GFW *gfw.GFW

	// Obs aggregates every layer's counters (network, censor, tunnel,
	// fleet, browser); snapshot it before/after a measurement to attribute
	// activity to that measurement.
	Obs *obs.Registry

	Cernet, CNNet, US, EU *netsim.Zone

	Client *netsim.Host

	ScholarHost  *netsim.Host
	AccountsHost *netsim.Host
	MirrorHost   *netsim.Host
	DNSHost      *netsim.Host
	TsinghuaHost *netsim.Host

	VPNHost      *netsim.Host
	OpenVPNHost  *netsim.Host
	SSHost       *netsim.Host
	SCRemoteHost *netsim.Host
	SCDomestic   *netsim.Host
	FrontHost    *netsim.Host
	MiddleHost   *netsim.Host
	ExitHost     *netsim.Host

	Origin    *httpsim.ScholarOrigin
	CA        *pki.CA
	SSServer  *shadowsocks.Server
	Remote    *core.Remote
	Domestic  *core.Domestic
	Whitelist *pac.Config

	// Border is the CNNet↔US link every cross-border packet traverses;
	// its Stats isolate border traffic (what the GFW sees and what the
	// shared cache is meant to eliminate).
	Border *netsim.LinkHandle
	// Cache is the domestic proxy's shared content cache when
	// Cfg.CacheMB > 0 (nil otherwise).
	Cache *cache.Cache

	// Fleet is the remote-proxy pool when Cfg.FleetRemotes > 0 (nil
	// otherwise). FleetRemoteProxies holds the extra remotes beyond the
	// primary, indexed 1..FleetRemotes-1 by their takedown index.
	Fleet              *fleet.Pool
	FleetRemoteProxies []*core.Remote
	fleetRemoteHosts   []*netsim.Host
	fleetNameByIP      map[string]string

	// Ladder is the carrier escalation policy when Cfg.Transports is
	// non-empty (nil otherwise). TunnelCarrier/RendezvousCarrier hold
	// the corresponding transports when configured; gatewayIPs lists the
	// rendezvous gateway pool addresses in order (the censor-stage knobs
	// block prefixes of it).
	Ladder            *carrier.Ladder
	TunnelCarrier     *carrier.Tunnel
	RendezvousCarrier *carrier.RendezvousPool
	gatewayIPs        []string

	// Shard tier state when Cfg.Shards > 1 (nil/empty otherwise). Index i
	// is shard i: ShardHosts[0] == SCDomestic, ShardDomestics[0] ==
	// Domestic, ShardCaches[0] == Cache. ShardAddrs are the proxy
	// "ip:port" endpoints — the shard names the Ring hashes over and the
	// PAC file renders.
	ShardHosts     []*netsim.Host
	ShardDomestics []*core.Domestic
	ShardCaches    []*cache.Cache
	ShardAddrs     []string
	ShardRing      *shard.Ring
	ShardDirector  *shard.Director
	shardProxies   []*httpsim.Proxy

	// Autoscaler is the tier's scaling control loop when
	// Cfg.AutoscaleInitial > 0 (nil otherwise). Measurements feed it the
	// offered-load signal through SetDemand.
	Autoscaler *autoscale.Controller

	demandMu       sync.Mutex
	demandSessions float64 // sessions/sec offered to the tier
	demandP99      time.Duration

	// Faults is the armed fault scheduler when Cfg.FaultScenario is set
	// (nil otherwise). Measurements start it with InjectFaults.
	Faults *faults.Scheduler

	// Regions holds the per-border deployments when Cfg.Censor is set
	// (nil otherwise), in policy order. Measurements arm the policy's
	// schedules and controllers with ArmCensor.
	Regions         []*Region
	censorArmed     bool
	tunnelResolvers []string

	// Registry models the non-technical agencies; ScholarCloud is
	// registered at world construction (instantly — the weeks-long
	// verification is exercised separately in registry tests).
	Registry    *registry.Database
	Enforcement *registry.Enforcement

	clientSerial int
	taKey        []byte
	ssPassword   string
	vpnSecret    string
	scSecret     []byte
	serverIDs    map[string]*pki.Identity

	// runCh feeds the gate goroutine (see NewWorld). While no Run is in
	// flight the gate holds the scheduler's run token blocked on this
	// channel, freezing virtual time, so recurring timers (fleet probes)
	// only ever fire inside Run windows — at virtual instants that are a
	// pure function of the world's inputs, never of wall-clock scheduling.
	runCh     chan runReq
	closeOnce sync.Once
}

type runReq struct {
	fn   func() error
	done chan error
}

// NewWorld builds the topology, starts every server, and returns the
// ready world. Call Close when done.
func NewWorld(cfg Config) *World {
	if cfg.Seed == 0 {
		cfg.Seed = 2017
	}
	w := &World{
		Cfg:        cfg,
		taKey:      []byte("scholarcloud-ta-static-key"),
		ssPassword: "barfoo!2016",
		vpnSecret:  "campus-vpn-secret",
		scSecret:   []byte("scholarcloud-blinding-secret"),
		serverIDs:  make(map[string]*pki.Identity),
	}
	w.Obs = obs.NewRegistry()
	w.Net = netsim.New(cfg.Seed)
	w.Net.Observe(w.Obs)
	w.Env = w.Net.Env()

	// The gate is the world's very first managed goroutine, so the FIFO
	// run queue hands it the token before anything started below can run.
	// It idles blocked on runCh while HOLDING the token, which freezes
	// virtual time between Run calls: everything the constructors spawn
	// (servers, fleet warmers, probe loops) queues up and executes only
	// inside Run windows, in enqueue order. That makes the entire world —
	// including fleet worlds with recurring probe timers — a deterministic
	// function of (seed, sequence of Run calls).
	w.runCh = make(chan runReq)
	w.Net.Scheduler().Go(func() {
		for req := range w.runCh {
			req.done <- req.fn()
		}
	})

	// --- Topology -------------------------------------------------------
	w.Cernet = w.Net.AddZone("cernet")
	w.CNNet = w.Net.AddZone("cn-net")
	w.US = w.Net.AddZone("us-west")
	w.EU = w.Net.AddZone("eu")

	w.Net.Connect(w.Cernet, w.CNNet, netsim.LinkConfig{Delay: cnBackboneDelay, Bandwidth: 10 * accessBW})
	border := w.Net.Connect(w.CNNet, w.US, netsim.LinkConfig{
		Delay:     borderDelay,
		Bandwidth: 10 * accessBW,
		BaseLoss:  borderLoss,
		Jitter:    borderJitter,
	})
	w.Net.Connect(w.US, w.EU, netsim.LinkConfig{Delay: euDelay, Bandwidth: 10 * accessBW, BaseLoss: 0.0005, Jitter: borderJitter / 2})
	w.Border = border
	w.Obs.RegisterFunc("netsim.border.packets", func() int64 { return border.Stats().Packets })
	w.Obs.RegisterFunc("netsim.border.bytes", func() int64 { return border.Stats().Bytes })

	// --- Hosts -----------------------------------------------------------
	add := func(name, ip string, z *netsim.Zone) *netsim.Host {
		return w.Net.AddHost(name, ip, z, accessLink())
	}
	w.Client = add("client", ipClient, w.Cernet)
	w.TsinghuaHost = add("tsinghua-web", ipTsinghua, w.Cernet)
	w.SCDomestic = add("sc-domestic", ipDomestic, w.CNNet)
	prober := add("gfw-prober", ipProber, w.CNNet)

	w.DNSHost = add("dns", ipDNS, w.US)
	w.ScholarHost = add("scholar", ipScholar, w.US)
	w.AccountsHost = add("accounts", ipAccounts, w.US)
	w.MirrorHost = add("scholar-mirror", ipMirror, w.US)
	w.VPNHost = add("vpn-server", ipVPN, w.US)
	w.OpenVPNHost = add("openvpn-server", ipOpenVPN, w.US)
	w.SSHost = add("ss-server", ipSS, w.US)
	w.SCRemoteHost = add("sc-remote", ipSCRemote, w.US)
	w.FrontHost = add("meek-front", ipMeekFront, w.US)
	w.ExitHost = add("tor-exit", ipTorExit, w.US)
	w.MiddleHost = add("tor-middle", ipTorMiddle, w.EU)

	// --- The GFW ---------------------------------------------------------
	if !cfg.DisableGFW {
		w.GFW = gfw.New(gfw.Config{
			Network:             w.Net,
			Zone:                w.CNNet,
			Clock:               w.Env.Clock,
			Spawn:               w.Env.Spawn,
			BlockedDomains:      []string{"google.com", "facebook.com", "twitter.com", "youtube.com"},
			BlockedIPs:          []string{ipScholar, ipAccounts},
			PoisonIP:            "37.61.54.158",
			MeekFronts:          []string{meekFrontSNI},
			MeekLossRate:        gfwMeekLoss,
			ShadowsocksLossRate: gfwShadowsocksLoss,
			ProbeDelay:          gfwProbeDelay,
			ProbeFrom:           prober,
			Seed:                cfg.Seed ^ 0x6F57AA11,
		})
		w.GFW.Instrument(w.Obs)
		border.SetInspector(w.GFW)
	}

	// --- PKI -------------------------------------------------------------
	ca, err := pki.NewCA("ScholarCloud Reproduction Root CA", w.Env.Clock.Now, w.Env.Rand)
	if err != nil {
		panic(err)
	}
	w.CA = ca
	for _, name := range []string{"openvpn.example", "remote.scholarcloud.example"} {
		id, err := ca.Issue(name, true)
		if err != nil {
			panic(err)
		}
		w.serverIDs[name] = id
	}

	w.startDNS()
	w.startOrigins()
	w.startVPN()
	w.startOpenVPN()
	w.startShadowsocks()
	w.startTor()
	w.startScholarCloud()
	w.registerScholarCloud()

	if cfg.FaultScenario != "" {
		script, ok := faults.Script(cfg.FaultScenario)
		if !ok {
			panic(fmt.Errorf("experiments: unknown fault scenario %q (known: %v)",
				cfg.FaultScenario, faults.Scenarios()))
		}
		w.Faults = faults.New(faults.Config{
			Env:  w.Env,
			Link: w.Border,
			GFW:  w.GFW,
			CrashRemote: func(i int) {
				if i == 0 || i-1 < len(w.FleetRemoteProxies) {
					w.TakedownFleetRemote(i)
				}
			},
			RestartRemote: func(i int) {
				if i == 0 || i-1 < len(w.FleetRemoteProxies) {
					w.RestartFleetRemote(i)
				}
			},
			Seed: cfg.Seed ^ 0xFA0175,
		}, script)
		w.Faults.Instrument(w.Obs)
	}
	return w
}

// InjectFaults starts the configured fault script on the virtual clock,
// with event offsets measured from now. No-op without a FaultScenario;
// idempotent, so a measurement can arm faults unconditionally at its
// start.
func (w *World) InjectFaults() { w.Faults.Inject() }

// Close stops the simulation. It retires the gate goroutine first so the
// scheduler is not stopped out from under a token holder.
func (w *World) Close() {
	w.closeOnce.Do(func() {
		close(w.runCh)
		w.Net.Stop()
	})
}

// Run executes fn on the world's gate goroutine and waits for it (with a
// wall-clock guard against simulation deadlock). Runs are serialized;
// virtual time only advances while one is in flight.
func (w *World) Run(fn func() error) error {
	guard := w.Cfg.RunGuard
	if guard <= 0 {
		guard = 120 * time.Second
	}
	t := time.NewTimer(guard)
	defer t.Stop()
	done := make(chan error, 1)
	select {
	case w.runCh <- runReq{fn: fn, done: done}:
	case <-t.C:
		// The gate never came back from a previous Run — the world is
		// wedged; callers must Close it, not retry.
		return fmt.Errorf("experiments: simulation did not complete (wall-clock guard)")
	}
	select {
	case err := <-done:
		return err
	case <-t.C:
		return fmt.Errorf("experiments: simulation did not complete (wall-clock guard)")
	}
}

// snapshotSettle is how much virtual time SnapshotSettled lets pass before
// reading the registry. Every event a measurement left in flight (GFW
// active probes, connection teardown, keep-alive expiry) is scheduled
// within a few virtual seconds, so a generous window drains them all.
const snapshotSettle = 60 * time.Second

// SnapshotSettled captures the world's metrics at a deterministic virtual
// instant: it sleeps out a settle window inside a Run — letting every
// event the preceding measurement left pending fire in virtual-clock
// order — and snapshots at its end. Because virtual time is frozen
// outside Run windows (see the gate in NewWorld), the result depends only
// on the seed and the sequence of Runs so far, never on wall-clock
// scheduling — even for fleet worlds with recurring probe timers. That
// property is what lets the parallel harness merge per-world snapshots
// into a worker-count-independent aggregate.
func (w *World) SnapshotSettled() (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := w.Run(func() error {
		w.Env.Clock.Sleep(snapshotSettle)
		snap = w.Obs.Snapshot()
		return nil
	})
	return snap, err
}

// newBrowser builds a browser on method m wired into the world's metrics
// registry, so every figure's page loads feed the http.* counters and
// histograms.
func (w *World) newBrowser(m tunnel.Method) *httpsim.Browser {
	b := httpsim.NewBrowser(m, w.Env.Clock)
	b.Instrument(w.Obs)
	return b
}

// installTrace points every instrumented layer at t (nil detaches).
func (w *World) installTrace(t *obs.Trace) {
	w.Net.SetFlowTrace(t)
	if w.GFW != nil {
		w.GFW.SetTrace(t)
	}
	w.Domestic.SetTrace(t)
	w.Remote.SetTrace(t)
	for _, r := range w.FleetRemoteProxies {
		r.SetTrace(t)
	}
	if w.Fleet != nil {
		w.Fleet.SetTrace(t)
	}
	w.Faults.SetTrace(t)
}

// TracePageLoad performs one first-time page load through f with a flow
// tracer attached to every layer — network, censor, tunnel core, fleet,
// browser — and returns the recorded spans alongside the visit stats.
// The tracer is detached afterwards so later measurements run untraced.
func (w *World) TracePageLoad(f Factory) (*obs.Trace, *httpsim.VisitStats, error) {
	tr := obs.NewTrace(w.Env.Clock)
	w.installTrace(tr)
	defer w.installTrace(nil)
	var stats *httpsim.VisitStats
	err := w.Run(func() error {
		method := f.New(w.Client)
		defer method.Close()
		if err := prepare(method); err != nil {
			return fmt.Errorf("%s prepare: %w", f.Name, err)
		}
		b := w.newBrowser(method)
		b.SetTrace(tr)
		stats = b.Visit(f.URL)
		if stats.Failed {
			return fmt.Errorf("%s traced visit: %w", f.Name, stats.Err)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return tr, stats, nil
}

// NewClientHost creates an additional client machine in CERNET for
// concurrency experiments.
func (w *World) NewClientHost() *netsim.Host {
	w.clientSerial++
	return w.Net.AddHost(
		fmt.Sprintf("client-%d", w.clientSerial),
		fmt.Sprintf("10.3.1.%d", w.clientSerial%250+1),
		w.Cernet, accessLink())
}

// resolverFor builds a caching resolver on a host pointed at the public
// DNS server.
func (w *World) resolverFor(h *netsim.Host) *dnssim.Resolver {
	return dnssim.NewResolver(h, w.Env.Clock, ipDNS+":53")
}

// dialHostFrom returns a DialHost that resolves names on h (used by all
// the *servers*, which live outside the censored network).
func (w *World) dialHostFrom(h *netsim.Host) func(string, int) (net.Conn, error) {
	resolver := w.resolverFor(h)
	return func(host string, port int) (net.Conn, error) {
		ip := host
		if net.ParseIP(host) == nil {
			r, err := resolver.Lookup(host)
			if err != nil {
				return nil, err
			}
			ip = r
		}
		return h.DialTCP(fmt.Sprintf("%s:%d", ip, port))
	}
}

func (w *World) startDNS() {
	server := dnssim.NewServer(map[string]string{
		"scholar.google.com":          ipScholar,
		"accounts.google.com":         ipAccounts,
		"scholar-mirror.example":      ipMirror,
		"www.tsinghua.edu.cn":         ipTsinghua,
		meekFrontSNI:                  ipMeekFront,
		"vpn.example":                 ipVPN,
		"openvpn.example":             ipOpenVPN,
		"ss.example":                  ipSS,
		"remote.scholarcloud.example": ipSCRemote,
		"proxy.thucloud.com":          ipDomestic,
	})
	pc, err := w.DNSHost.ListenPacket(53)
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { server.Serve(pc) })
}

// startOrigins launches Scholar (with Fig. 4 semantics), its accounts
// host, an uncensored mirror (the paper's US-vantage baseline), the
// domestic Tsinghua site, and echo services for RTT measurement.
func (w *World) startOrigins() {
	w.Origin = httpsim.NewScholarOrigin("scholar.google.com", "accounts.google.com", scholarPage())

	serveHTTP := func(h *netsim.Host, port int, handler httpsim.Handler) {
		ln, err := h.Listen("tcp", fmt.Sprintf(":%d", port))
		if err != nil {
			panic(err)
		}
		srv := &httpsim.Server{Handler: handler, Spawn: w.Env.Spawn}
		w.Env.Spawn.Go(func() { srv.Serve(ln) })
	}
	serveHTTPS := func(h *netsim.Host, port int, handler httpsim.Handler, cert string) {
		ln, err := h.Listen("tcp", fmt.Sprintf(":%d", port))
		if err != nil {
			panic(err)
		}
		srv := &httpsim.Server{Handler: handler, Spawn: w.Env.Spawn}
		w.Env.Spawn.Go(func() {
			srv.Serve(tlssim.NewListener(ln, tlssim.Config{Certificate: []byte(cert)}))
		})
	}

	serveHTTP(w.ScholarHost, 80, w.Origin.RedirectHandler())
	serveHTTPS(w.ScholarHost, 443, w.Origin.Handler(), "scholar-cert")
	serveHTTPS(w.AccountsHost, 443, w.Origin.AccountsHandler(), "accounts-cert")

	// A volunteer-run Scholar mirror under an innocuous name on an IP the
	// GFW has not blacklisted — the Free-Gate-style "other methods" of
	// Fig. 3. Its name dodges the keyword filter; its IP survives only
	// until someone reports it (whack-a-mole).
	mirrorAlt := httpsim.NewScholarOrigin(mirrorAltName, mirrorAltName, scholarPage())
	unblocked := w.Net.AddHost("volunteer-mirror", ipUnblockedGoogle, w.US, accessLink())
	serveHTTP(unblocked, 80, mirrorAlt.RedirectHandler())
	serveHTTPS(unblocked, 443, mirrorAlt.CombinedHandler(), "volunteer-cert")

	// The mirror serves the identical page without blocking: the paper's
	// "direct access from the US" baseline for traffic and PLR.
	mirror := httpsim.NewScholarOrigin("scholar-mirror.example", "scholar-mirror.example", scholarPage())
	serveHTTP(w.MirrorHost, 80, mirror.RedirectHandler())
	serveHTTPS(w.MirrorHost, 443, mirror.CombinedHandler(), "mirror-cert")

	// Domestic site for the full-tunnel latency-penalty experiment.
	tsinghua := httpsim.NewScholarOrigin("www.tsinghua.edu.cn", "www.tsinghua.edu.cn", scholarPage())
	serveHTTP(w.TsinghuaHost, 80, tsinghua.RedirectHandler())
	serveHTTPS(w.TsinghuaHost, 443, tsinghua.CombinedHandler(), "tsinghua-cert")

	// Echo services for tunnel RTT probes (Fig. 5b).
	for _, h := range []*netsim.Host{w.ScholarHost, w.MirrorHost, w.TsinghuaHost} {
		ln, err := h.Listen("tcp", fmt.Sprintf(":%d", portEcho))
		if err != nil {
			panic(err)
		}
		w.Env.Spawn.Go(func() { serveEcho(w.Env, ln) })
	}
}

func serveEcho(env netx.Env, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		env.Spawn.Go(func() {
			defer conn.Close()
			buf := make([]byte, 4096)
			for {
				n, err := conn.Read(buf)
				if n > 0 {
					if _, werr := conn.Write(buf[:n]); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		})
	}
}

// compute returns a per-request CPU charge on host h, or a no-op when the
// server cost model is disabled.
func (w *World) compute(h *netsim.Host, d time.Duration) func() {
	if w.Cfg.DisableServerCosts {
		return func() {}
	}
	return func() { h.Compute(d) }
}

func (w *World) startVPN() {
	dial := w.dialHostFrom(w.VPNHost)
	cost := w.compute(w.VPNHost, vpnStreamCost)
	srv := &vpn.Server{
		Env: w.Env,
		DialHost: func(host string, port int) (net.Conn, error) {
			cost()
			return dial(host, port)
		},
		Secret:  w.vpnSecret,
		Variant: vpn.PPTP,
	}
	ln, err := w.VPNHost.Listen("tcp", fmt.Sprintf(":%d", portVPN))
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { srv.Serve(ln) })

	// The L2TP variant listens one port up.
	srvL2TP := &vpn.Server{
		Env: w.Env,
		DialHost: func(host string, port int) (net.Conn, error) {
			cost()
			return dial(host, port)
		},
		Secret:  w.vpnSecret,
		Variant: vpn.L2TP,
	}
	lnL, err := w.VPNHost.Listen("tcp", fmt.Sprintf(":%d", portVPN+1))
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { srvL2TP.Serve(lnL) })
}

func (w *World) startOpenVPN() {
	dial := w.dialHostFrom(w.OpenVPNHost)
	cost := w.compute(w.OpenVPNHost, ovpnStreamCost)
	srv := &openvpn.Server{
		Env: w.Env,
		DialHost: func(host string, port int) (net.Conn, error) {
			cost()
			return dial(host, port)
		},
		TAKey:        w.taKey,
		Identity:     w.serverIDs["openvpn.example"],
		VerifyClient: w.CA.Verifier(),
	}
	ln, err := w.OpenVPNHost.Listen("tcp", fmt.Sprintf(":%d", portOpenVPN))
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { srv.Serve(ln) })
}

func (w *World) startShadowsocks() {
	dial := w.dialHostFrom(w.SSHost)
	w.SSServer = &shadowsocks.Server{
		Env:      w.Env,
		DialHost: dial,
		Password: w.ssPassword,
		Users:    map[string]bool{"scholar:pass2016": true},
		OnAuth:   w.compute(w.SSHost, ssAuthCost),
		OnRelay:  w.compute(w.SSHost, ssRelayCost),
	}
	ln, err := w.SSHost.Listen("tcp", fmt.Sprintf(":%d", portSS))
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { w.SSServer.Serve(ln) })
}

func (w *World) startTor() {
	exitDial := w.dialHostFrom(w.ExitHost)
	exit := &tor.Relay{
		Env:      w.Env,
		Name:     "exit",
		Dial:     w.ExitHost.Dial,
		DialHost: exitDial,
		Cert:     []byte("tor-exit-cert"),
	}
	lnExit, err := w.ExitHost.Listen("tcp", ":9001")
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { exit.Serve(lnExit) })

	middle := &tor.Relay{
		Env:  w.Env,
		Name: "middle",
		Dial: w.MiddleHost.Dial,
		Cert: []byte("tor-middle-cert"),
	}
	lnMiddle, err := w.MiddleHost.Listen("tcp", ":9001")
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { middle.Serve(lnMiddle) })

	bridge := &tor.Relay{
		Env:  w.Env,
		Name: "bridge",
		Dial: w.FrontHost.Dial,
		Directory: func() []byte {
			// Relay addresses followed by consensus bulk: the 2017-era
			// microdesc consensus was a multi-hundred-kilobyte download,
			// a large share of Tor's first-start latency.
			head := fmt.Sprintf("%s:9001 %s:9001\n", ipTorMiddle, ipTorExit)
			return append([]byte(head), make([]byte, 448*1024)...)
		},
		Cert: []byte("tor-bridge-cert"),
	}
	front := &tor.MeekServer{
		Env:   w.Env,
		Relay: bridge,
		Cert:  []byte("cdn-front-cert"),
	}
	lnFront, err := w.FrontHost.Listen("tcp", ":443")
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { front.Serve(lnFront) })
}

func (w *World) startScholarCloud() {
	if w.Cfg.Censor != nil {
		switch {
		case len(w.Cfg.Transports) > 0:
			panic("experiments: Censor is mutually exclusive with Transports — every censor region gets the full ladder")
		case w.Cfg.FleetRemotes > 0:
			panic("experiments: Censor is mutually exclusive with FleetRemotes")
		case w.Cfg.Shards > 1:
			panic("experiments: Censor is mutually exclusive with Shards")
		case w.Cfg.CacheMB > 0:
			panic("experiments: Censor worlds run the cacheless regional deployment (CacheMB must be 0)")
		case w.Cfg.FaultScenario != "":
			panic("experiments: Censor is mutually exclusive with FaultScenario — the policy owns the GFW episode state")
		}
		if err := w.Cfg.Censor.Validate(); err != nil {
			panic(err)
		}
	}
	if w.Cfg.Shards > 1 {
		if w.Cfg.FleetRemotes > 0 || len(w.Cfg.Transports) > 0 {
			panic("experiments: Shards is mutually exclusive with FleetRemotes and Transports")
		}
		if w.Cfg.CacheMB == 0 {
			panic("experiments: Shards needs CacheMB > 0 — the shard tier is a cache-peering tier")
		}
	}
	if w.Cfg.AutoscaleInitial > 0 {
		if w.Cfg.Shards <= 1 {
			panic("experiments: AutoscaleInitial needs Shards > 1 — the autoscaler grows a sharded tier")
		}
		if w.Cfg.AutoscaleInitial > w.Cfg.Shards {
			panic(fmt.Errorf("experiments: AutoscaleInitial (%d) exceeds provisioned Shards (%d)",
				w.Cfg.AutoscaleInitial, w.Cfg.Shards))
		}
		if !w.Cfg.ShardSiblingFetch {
			panic("experiments: AutoscaleInitial needs ShardSiblingFetch — warm-up and drain move keys over the sibling path")
		}
		if !w.Cfg.ShardRehashOnDeath {
			panic("experiments: AutoscaleInitial needs ShardRehashOnDeath — a standby shard must own no keys")
		}
	}

	w.Whitelist = pac.New(
		fmt.Sprintf("%s:%d", ipDomestic, portProxy),
		[]string{"scholar.google.com", "accounts.google.com"},
	)
	if w.Cfg.Shards > 1 {
		for i := 0; i < w.Cfg.Shards; i++ {
			w.ShardAddrs = append(w.ShardAddrs, w.ShardAddr(i))
		}
		w.Whitelist.SetProxies(w.ShardAddrs)
	}

	epoch := w.Cfg.BlindingEpoch
	secret := w.scSecret

	dial := w.dialHostFrom(w.SCRemoteHost)
	cost := w.compute(w.SCRemoteHost, scStreamCost)
	w.Remote = &core.Remote{
		Env: w.Env,
		DialHost: func(host string, port int) (net.Conn, error) {
			cost()
			return dial(host, port)
		},
		Secret:   secret,
		Epoch:    epoch,
		Identity: w.serverIDs["remote.scholarcloud.example"],
	}
	if w.Cfg.ScholarCloudNoBlinding {
		w.Remote.SchemeOverride = blinding.Identity{}
	}
	w.Remote.Instrument(w.Obs)
	lnRemote, err := w.SCRemoteHost.Listen("tcp", fmt.Sprintf(":%d", portSCRemote))
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { w.Remote.Serve(lnRemote) })

	shards := w.Cfg.Shards
	if shards < 1 {
		shards = 1
	}
	for i := 0; i < shards; i++ {
		w.startDomesticShard(i)
	}

	if w.Cfg.Shards > 1 {
		w.ShardRing = shard.NewRing(w.ShardAddrs)
		w.ShardRing.SetRehashOnDeath(w.Cfg.ShardRehashOnDeath)
		w.ShardDirector = shard.NewDirector(w.ShardRing)
		w.ShardDirector.SetClock(w.Env.Clock.Now)
		w.ShardDirector.Instrument(w.Obs)
		// The coordinated-takedown hook: every health transition republishes
		// the live shard set into the PAC policy, so users' next evaluation
		// (the refreshed PAC a real browser would re-download) routes only
		// to survivors.
		w.ShardDirector.OnChange(func(up []string) { w.Whitelist.SetProxies(up) })
		if w.Cfg.ShardSiblingFetch {
			for i, cc := range w.ShardCaches {
				cc.SetPeers(&cache.Peers{
					Self:  w.ShardAddrs[i],
					Owner: w.ShardRing.Owner,
					Fetch: core.SiblingFetcher(w.ShardHosts[i].Dial),
				})
			}
		}
		if w.Cfg.AutoscaleInitial > 0 {
			w.startAutoscaler()
		}
	}

	switch {
	case len(w.Cfg.Transports) > 0 && w.Cfg.FleetRemotes > 0:
		panic("experiments: Transports and FleetRemotes are mutually exclusive")
	case len(w.Cfg.Transports) > 0:
		w.startTransports()
	case w.Cfg.FleetRemotes > 0:
		w.startFleet()
	}

	if w.Cfg.Censor != nil {
		w.startCensorRegions()
	}
}

// ShardAddr returns domestic shard i's proxy endpoint ("ip:port") — its
// name in the rendezvous ring and in the rendered PAC.
func (w *World) ShardAddr(i int) string {
	if i == 0 {
		return fmt.Sprintf("%s:%d", ipDomestic, portProxy)
	}
	return fmt.Sprintf("%s%d:%d", shardIPBase, 10+i, portProxy)
}

// startDomesticShard builds domestic shard i: its own host (shard 0 is
// the classic SCDomestic), Domestic proxy, content cache, and proxy
// listener. Shard 0 also serves the PAC file and stays reachable as
// w.Domestic/w.Cache, so single-shard worlds are exactly the historical
// deployment.
func (w *World) startDomesticShard(i int) {
	host := w.SCDomestic
	if i > 0 {
		host = w.Net.AddHost(fmt.Sprintf("sc-domestic-%d", i),
			fmt.Sprintf("%s%d", shardIPBase, 10+i), w.CNNet, accessLink())
	}
	d := &core.Domestic{
		Env: w.Env,
		DialRemote: func() (net.Conn, error) {
			return host.DialTCP(fmt.Sprintf("%s:%d", ipSCRemote, portSCRemote))
		},
		Secret:       w.scSecret,
		Epoch:        w.Cfg.BlindingEpoch,
		Whitelist:    w.Whitelist,
		VerifyRemote: w.CA.Verifier(),
		RemoteName:   "remote.scholarcloud.example",
	}
	if w.Cfg.ScholarCloudNoBlinding {
		d.SchemeOverride = blinding.Identity{}
	}
	if w.Cfg.Resilience {
		d.Resil = &core.Resilience{Seed: w.Cfg.Seed ^ 0x4E51AE ^ uint64(i)<<40}
	}
	if w.Cfg.FaultScenario != "" || len(w.Cfg.Transports) > 0 {
		// Fault and transport-ladder worlds run clients in gateway mode
		// (see ScholarCloud); the proxy-side fetch path is what the
		// resilience layer retries and what the ladder reroutes.
		d.GatewayFetch = true
	}
	var cc *cache.Cache
	if w.Cfg.CacheMB > 0 {
		var err error
		cc, err = cache.New(w.Env, cache.Options{
			Capacity:   int64(w.Cfg.CacheMB) << 20,
			DefaultTTL: w.Cfg.CacheTTL,
			Seed:       w.Cfg.Seed ^ 0xCAC4E ^ uint64(i)*0x9E3779B97F4A7C15,
		})
		if err != nil {
			panic(err)
		}
		d.Cache = cc
	}
	if i == 0 {
		w.Domestic = d
		w.Cache = cc
	}
	d.Instrument(w.Obs)
	lnProxy, err := host.Listen("tcp", fmt.Sprintf(":%d", portProxy))
	if err != nil {
		panic(err)
	}
	proxy := d.Proxy()
	w.Env.Spawn.Go(func() { proxy.Serve(lnProxy) })

	if i == 0 {
		lnPAC, err := host.Listen("tcp", fmt.Sprintf(":%d", portPACWeb))
		if err != nil {
			panic(err)
		}
		pacSrv := &httpsim.Server{Handler: d.PACHandler(), Spawn: w.Env.Spawn}
		w.Env.Spawn.Go(func() { pacSrv.Serve(lnPAC) })
	}

	if w.Cfg.Shards > 1 {
		w.ShardHosts = append(w.ShardHosts, host)
		w.ShardDomestics = append(w.ShardDomestics, d)
		w.ShardCaches = append(w.ShardCaches, cc)
		w.shardProxies = append(w.shardProxies, proxy)
		// Per-shard visibility: the shared cache.* counters sum across the
		// tier; these gauges break hits, sibling fetches, and border
		// fetches out per shard.
		pfx := fmt.Sprintf("shard.s%d.", i)
		w.Obs.RegisterFunc(pfx+"cache.hits", func() int64 { return cc.Snapshot().Hits })
		w.Obs.RegisterFunc(pfx+"cache.sibling_fetches", func() int64 { return cc.Snapshot().SiblingFetches })
		w.Obs.RegisterFunc(pfx+"cache.border_fetches", func() int64 { return cc.Snapshot().BorderFetches })
	}
}

// KillShard takes domestic shard i down: its proxy listener dies (new
// user and sibling dials fail) and the Director coordinates the takedown
// — the dead shard's key range rehashes to survivors (ring policy
// permitting) and the PAC policy republishes so users route elsewhere.
func (w *World) KillShard(i int) {
	w.shardProxies[i].Close()
	w.ShardDirector.MarkDown(w.ShardAddrs[i])
}

// errWarmupNoBorder makes a warm-up Fetch fail closed: when the sibling
// path cannot supply a key, the pre-seed skips it rather than crossing
// the border.
var errWarmupNoBorder = errors.New("experiments: warm-up fetch must not cross the border")

// startAutoscaler parks the standby shards (marked down in the ring, so
// the initial PAC and key ownership cover only the active prefix) and
// starts the control loop on the virtual clock.
func (w *World) startAutoscaler() {
	for i := w.Cfg.AutoscaleInitial; i < w.Cfg.Shards; i++ {
		w.ShardRing.MarkDown(w.ShardAddrs[i])
	}
	w.Whitelist.SetProxies(w.ShardRing.Up())

	pol := w.Cfg.AutoscalePolicy
	if pol.MinShards == 0 {
		pol.MinShards = w.Cfg.AutoscaleInitial
	}
	if pol.MaxShards == 0 {
		pol.MaxShards = w.Cfg.Shards
	}
	ctl, err := autoscale.New(autoscale.Config{
		Policy: pol,
		Sample: w.autoscaleSample,
		Apply:  w.applyScale,
	})
	if err != nil {
		panic(err)
	}
	ctl.Instrument(w.Obs)
	w.Autoscaler = ctl
	interval := w.Cfg.AutoscaleInterval
	if interval == 0 {
		interval = 15 * time.Second
	}
	w.Env.Spawn.Go(func() { ctl.Run(w.Env, interval) })
}

// SetDemand publishes the offered load the autoscaler samples: sessions
// per second arriving at the tier, plus the recent page-load p99 for the
// latency guard (0 = unknown). Measurements call it at load-phase
// boundaries; it is inert in non-autoscaled worlds.
func (w *World) SetDemand(sessionsPerSec float64, p99 time.Duration) {
	w.demandMu.Lock()
	w.demandSessions, w.demandP99 = sessionsPerSec, p99
	w.demandMu.Unlock()
}

// autoscaleSample assembles the controller's view of the tier: the
// measurement-fed demand signal plus live readings — active shard count
// from the ring, hit rate from the tier's cache counters.
func (w *World) autoscaleSample() autoscale.Sample {
	w.demandMu.Lock()
	demand, p99 := w.demandSessions, w.demandP99
	w.demandMu.Unlock()
	s := w.tierCacheStats()
	hitRate := -1.0
	if lookups := s.Hits + s.Misses; lookups > 0 {
		hitRate = float64(s.Hits) / float64(lookups)
	}
	return autoscale.Sample{
		ActiveShards:    len(w.ShardRing.Up()),
		SessionsPerSec:  demand,
		P99PLT:          p99,
		HitRate:         hitRate,
		HostUtilization: -1,
	}
}

// applyScale is the controller's actuator: grow to `to` active shards by
// admitting standbys (lowest index first, each warmed up before joining
// the ring), shrink by retiring actives (highest index first, each
// drained with key handoff). Shard 0 — the PAC host — never retires.
func (w *World) applyScale(from, to int) error {
	for len(w.ShardRing.Up()) < to {
		i := w.lowestStandby()
		if i < 0 {
			break
		}
		w.AdmitShard(i)
	}
	for len(w.ShardRing.Up()) > to {
		i := w.highestActive()
		if i <= 0 {
			break
		}
		w.RetireShard(i)
	}
	return nil
}

func (w *World) lowestStandby() int {
	for i, a := range w.ShardAddrs {
		if w.ShardRing.IsDown(a) {
			return i
		}
	}
	return -1
}

func (w *World) highestActive() int {
	for i := len(w.ShardAddrs) - 1; i >= 0; i-- {
		if !w.ShardRing.IsDown(w.ShardAddrs[i]) {
			return i
		}
	}
	return -1
}

// activeTierKeys is the union of fresh cache keys across live shards,
// sorted so warm-up and drain sweeps visit keys in the same order in
// every run.
func (w *World) activeTierKeys() []string {
	seen := make(map[string]bool)
	var keys []string
	for j, cc := range w.ShardCaches {
		if cc == nil || w.ShardRing.IsDown(w.ShardAddrs[j]) {
			continue
		}
		for _, k := range cc.Keys() {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// AdmitShard warms up standby shard i and admits it to the ring. Before
// the Director announces the join, the shard pre-seeds every fresh key
// it is about to own — ownership computed on a candidate ring that
// includes it — from the key's current owner over the sibling-fetch
// path: the joiner is still outside the live ring, so its peered Fetch
// routes to the owner, and the border fetcher refuses, so a scale-up
// moves only domestic bytes. Returns the number of keys pre-seeded.
// Must be called inside a Run window (it drives simulated dials).
func (w *World) AdmitShard(i int) int {
	addr := w.ShardAddrs[i]
	if !w.ShardRing.IsDown(addr) {
		return 0
	}
	preseeded := 0
	if w.Cfg.ShardSiblingFetch && w.ShardCaches[i] != nil {
		cand := shard.NewRing(append(w.ShardRing.Up(), addr))
		noBorder := func(map[string]string) (*httpsim.Response, error) {
			return nil, errWarmupNoBorder
		}
		for _, key := range w.activeTierKeys() {
			if cand.Owner(key) != addr {
				continue
			}
			if _, _, err := w.ShardCaches[i].Fetch(key, noBorder); err == nil {
				preseeded++
			}
		}
	}
	w.ShardDirector.MarkUp(addr)
	return preseeded
}

// RetireShard drains active shard i out of the ring: the Director first
// rehashes its key range and republishes the PAC (new sessions route to
// survivors; the shard's listener stays open so in-flight sessions
// finish), then every fresh key the leaver held is pulled by its new
// owner over the sibling path — a domestic transfer, not a border
// refetch. Shard 0 (the PAC host) never retires. Returns the number of
// keys handed off. Must be called inside a Run window.
func (w *World) RetireShard(i int) int {
	addr := w.ShardAddrs[i]
	if i <= 0 || i >= len(w.ShardAddrs) || w.ShardRing.IsDown(addr) {
		return 0
	}
	var keys []string
	if w.Cfg.ShardSiblingFetch && w.ShardCaches[i] != nil {
		keys = w.ShardCaches[i].Keys()
	}
	w.ShardDirector.MarkDown(addr)
	handed := 0
	for _, key := range keys {
		oi := w.shardIndexOf(w.ShardRing.Owner(key))
		if oi < 0 || oi == i {
			continue
		}
		key := key
		fromLeaver := func(map[string]string) (*httpsim.Response, error) {
			return core.SiblingFetcher(w.ShardHosts[oi].Dial)(addr, key)
		}
		if _, _, err := w.ShardCaches[oi].FetchLocal(key, fromLeaver); err == nil {
			handed++
		}
	}
	return handed
}

func (w *World) shardIndexOf(addr string) int {
	for i, a := range w.ShardAddrs {
		if a == addr {
			return i
		}
	}
	return -1
}

// startTransports stands up the cover infrastructure for each configured
// carrier transport (blinded reuses the primary remote; the DNS tunnel
// and the rendezvous pool get their own US hosts fronting it), wires a
// carrier.Ladder over them as the fleet's escalation policy, and points
// the domestic proxy's hedge at the ladder's next rung.
func (w *World) startTransports() {
	primary := fmt.Sprintf("%s:%d", ipSCRemote, portSCRemote)
	wrap := w.Domestic.WrapCarrier

	var rungs []carrier.Transport
	for _, name := range w.Cfg.Transports {
		switch name {
		case carrier.Blinded:
			rungs = append(rungs, carrier.NewBlinded(
				func() (net.Conn, error) { return w.SCDomestic.DialTCP(primary) }, wrap))
		case carrier.Rendezvous:
			rungs = append(rungs, w.startRendezvous(wrap))
		case carrier.DNSTunnel:
			rungs = append(rungs, w.startDNSTunnel(wrap))
		default:
			panic(fmt.Errorf("experiments: unknown carrier transport %q (known: %v)",
				name, carrier.Known()))
		}
	}
	w.Ladder = carrier.NewLadder(carrier.LadderConfig{Env: w.Env}, rungs...)
	w.Ladder.Instrument(w.Obs)

	// One transport-labeled fleet endpoint per rung: the pool pre-dials
	// and health-probes every transport, pick() prefers the active rung,
	// and dial/open failures feed the ladder's escalation counter.
	eps := make([]fleet.Endpoint, 0, len(rungs))
	for _, tr := range rungs {
		eps = append(eps, fleet.Endpoint{Name: tr.Name(), Transport: tr.Name(), Dial: tr.Dial})
	}
	fcfg := fleet.Config{
		Env:               w.Env,
		NewSession:        wrap,
		SessionsPerRemote: w.Cfg.FleetSessionsPerRemote,
		ProbeInterval:     transportsProbeInterval,
		ProbeTimeout:      transportsProbeTimeout,
		ReadmitBackoff:    fleetReadmitBackoff,
		// Always bounded here: a censor-blackholed transport's dials
		// would otherwise hang the pool's warmer for the full TCP retry
		// schedule.
		DialTimeout: transportsDialTimeout,
		Seed:        w.Cfg.Seed ^ 0x7EA45,
		Escalate:    w.Ladder,
	}
	pool, err := fleet.New(fcfg, eps)
	if err != nil {
		panic(err)
	}
	pool.Instrument(w.Obs)
	w.Fleet = pool
	w.Domestic.Fleet = pool
	w.Domestic.NextTransport = w.Ladder.NextName
	w.Ladder.Start()

	if w.Domestic.Resil != nil {
		// The lower rungs are legitimately slow (a DNS-tunnel page load
		// takes seconds); the default 2 s hedge trigger would read that
		// as a stall and permanently double their load.
		w.Domestic.Resil.HedgeAfter = transportsHedgeAfter
		w.Domestic.Resil.RequestTimeout = transportsRequestTimeout
	}
}

// ensureGatewayPool stands up the rendezvous gateway pool — ephemeral
// TLS fronts in cloud space, each piping to the primary remote — the
// first time it is needed, and returns the pool's "ip:port" endpoints
// in order. The pool is US-side cover infrastructure shared by every
// consumer (the classic ladder, and each censor region's ladder).
func (w *World) ensureGatewayPool() []string {
	if len(w.gatewayIPs) == 0 {
		primary := fmt.Sprintf("%s:%d", ipSCRemote, portSCRemote)
		for i := 0; i < gatewayPoolSize; i++ {
			ip := fmt.Sprintf("%s%d", ipGatewayBase, 10+i)
			w.gatewayIPs = append(w.gatewayIPs, ip)
			host := w.Net.AddHost(fmt.Sprintf("rdv-gw-%d", i), ip, w.US, accessLink())
			ln, err := host.Listen("tcp", ":443")
			if err != nil {
				panic(err)
			}
			tln := tlssim.NewListener(ln, tlssim.Config{Certificate: []byte("rdv-gw-cert")})
			w.Env.Spawn.Go(func() {
				carrier.ServeGateway(w.Env, tln, func() (net.Conn, error) {
					return host.DialTCP(primary)
				})
			})
		}
	}
	endpoints := make([]string, len(w.gatewayIPs))
	for i, ip := range w.gatewayIPs {
		endpoints[i] = ip + ":443"
	}
	return endpoints
}

// newRendezvousRung builds a rendezvous transport dialing the shared
// gateway pool from h. salt separates the rotation streams of multiple
// consumers (zero for the classic single-ladder world, so its draws —
// and every historical figure — stay byte-identical).
func (w *World) newRendezvousRung(h *netsim.Host, wrap carrier.WrapFunc, salt uint64) *carrier.RendezvousPool {
	return carrier.NewRendezvous(carrier.RendezvousConfig{
		Env:       w.Env,
		Endpoints: w.ensureGatewayPool(),
		Dial:      func(addr string) (net.Conn, error) { return h.DialTCP(addr) },
		SNI:       rendezvousSNI,
		Wrap:      wrap,
		Seed:      w.Cfg.Seed ^ 0x4D5E2 ^ salt,
	})
}

// startRendezvous builds the serverless rendezvous rung for the classic
// single-border ladder — the CensorLess model, where blocking one
// address costs the censor nothing because the next invocation uses a
// fresh one.
func (w *World) startRendezvous(wrap carrier.WrapFunc) carrier.Transport {
	rdv := w.newRendezvousRung(w.SCDomestic, wrap, 0)
	rdv.Instrument(w.Obs)
	w.RendezvousCarrier = rdv
	return rdv
}

// ensureTunnelResolvers stands up the DNS tunnel's US-side cover
// infrastructure — an authoritative server for an innocuous zone
// fronting the primary remote, plus a pool of public recursive
// resolvers — the first time it is needed, and returns the resolver
// endpoints in order.
func (w *World) ensureTunnelResolvers() []string {
	if len(w.tunnelResolvers) == 0 {
		primary := fmt.Sprintf("%s:%d", ipSCRemote, portSCRemote)
		auth := w.Net.AddHost("tunnel-auth", ipTunnelAuth, w.US, accessLink())
		srv := carrier.NewTunnelServer(carrier.TunnelServerConfig{
			Env:     w.Env,
			Domain:  tunnelDomain,
			Backend: func() (net.Conn, error) { return auth.DialTCP(primary) },
		})
		apc, err := auth.ListenPacket(53)
		if err != nil {
			panic(err)
		}
		w.Env.Spawn.Go(func() { srv.Serve(apc) })

		for i, ip := range tunnelRelayIPs() {
			relay := w.Net.AddHost(fmt.Sprintf("resolver-%d", i), ip, w.US, accessLink())
			pc, err := relay.ListenPacket(53)
			if err != nil {
				panic(err)
			}
			w.Env.Spawn.Go(func() {
				carrier.ServeRelay(w.Env, pc, relay, ipTunnelAuth+":53", 3*time.Second)
			})
			w.tunnelResolvers = append(w.tunnelResolvers, ip+":53")
		}
	}
	return append([]string(nil), w.tunnelResolvers...)
}

// newTunnelRung builds a DNS-tunnel transport resolving through the
// shared relay pool from h. salt separates consumers' nonce streams
// (zero for the classic single-ladder world).
func (w *World) newTunnelRung(h *netsim.Host, wrap carrier.WrapFunc, salt uint64) *carrier.Tunnel {
	return carrier.NewTunnel(carrier.TunnelConfig{
		Env:       w.Env,
		Dialer:    h,
		Resolvers: w.ensureTunnelResolvers(),
		Domain:    tunnelDomain,
		Wrap:      wrap,
		Seed:      w.Cfg.Seed ^ 0xD4571 ^ salt,
	})
}

// startDNSTunnel builds the covert-channel rung for the classic
// single-border ladder: reached through public recursive resolvers the
// censor will not block wholesale.
func (w *World) startDNSTunnel(wrap carrier.WrapFunc) carrier.Transport {
	tun := w.newTunnelRung(w.SCDomestic, wrap, 0)
	tun.Instrument(w.Obs)
	w.TunnelCarrier = tun
	return tun
}

// startFleet stands up the extra remote proxies and hands the domestic
// proxy a managed pool over all of them (endpoint 0 is the primary
// remote already started by startScholarCloud).
func (w *World) startFleet() {
	w.fleetNameByIP = make(map[string]string)
	primary := fmt.Sprintf("%s:%d", ipSCRemote, portSCRemote)
	w.fleetNameByIP[ipSCRemote] = primary
	eps := []fleet.Endpoint{{
		Name: primary,
		Dial: func() (net.Conn, error) { return w.SCDomestic.DialTCP(primary) },
	}}

	for i := 1; i < w.Cfg.FleetRemotes; i++ {
		ip := fleetRemoteIP(i)
		addr := fmt.Sprintf("%s:%d", ip, portSCRemote)
		host := w.Net.AddHost(fmt.Sprintf("sc-remote-%d", i), ip, w.US, accessLink())
		w.fleetRemoteHosts = append(w.fleetRemoteHosts, host)
		dial := w.dialHostFrom(host)
		cost := w.compute(host, scStreamCost)
		r := &core.Remote{
			Env: w.Env,
			DialHost: func(h string, p int) (net.Conn, error) {
				cost()
				return dial(h, p)
			},
			Secret:   w.scSecret,
			Epoch:    w.Cfg.BlindingEpoch,
			Identity: w.serverIDs["remote.scholarcloud.example"],
		}
		if w.Cfg.ScholarCloudNoBlinding {
			r.SchemeOverride = blinding.Identity{}
		}
		r.Instrument(w.Obs)
		ln, err := host.Listen("tcp", fmt.Sprintf(":%d", portSCRemote))
		if err != nil {
			panic(err)
		}
		w.Env.Spawn.Go(func() { r.Serve(ln) })
		w.FleetRemoteProxies = append(w.FleetRemoteProxies, r)
		w.fleetNameByIP[ip] = addr
		eps = append(eps, fleet.Endpoint{
			Name: addr,
			Dial: func() (net.Conn, error) { return w.SCDomestic.DialTCP(addr) },
		})
	}

	fcfg := fleet.Config{
		Env:               w.Env,
		NewSession:        w.Domestic.WrapCarrier,
		SessionsPerRemote: w.Cfg.FleetSessionsPerRemote,
		ProbeInterval:     fleetProbeInterval,
		ProbeTimeout:      fleetProbeTimeout,
		ReadmitBackoff:    fleetReadmitBackoff,
		Seed:              w.Cfg.Seed ^ 0xF1EE7,
	}
	if w.Cfg.Resilience {
		fcfg.DialTimeout = fleetDialTimeout
	}
	pool, err := fleet.New(fcfg, eps)
	if err != nil {
		panic(err)
	}
	pool.Instrument(w.Obs)
	w.Fleet = pool
	w.Domestic.Fleet = pool
}

// FleetRemoteAddr returns fleet endpoint i's name ("ip:port").
func (w *World) FleetRemoteAddr(i int) string {
	if i == 0 {
		return fmt.Sprintf("%s:%d", ipSCRemote, portSCRemote)
	}
	return fmt.Sprintf("%s:%d", fleetRemoteIP(i), portSCRemote)
}

// TakedownFleetRemote models a physical seizure of fleet remote i: the
// listener and every established carrier die, and nothing notifies the
// domestic proxy — the pool's prober has to notice on its own. (The
// notified path — registry takedown or observed IP block — goes through
// Enforcement, which calls Fleet.MarkDown.)
func (w *World) TakedownFleetRemote(i int) {
	if i == 0 {
		w.Remote.Close()
		return
	}
	w.FleetRemoteProxies[i-1].Close()
}

// RestartFleetRemote brings a taken-down fleet remote back up: a fresh
// listener on the same address, served by the same Remote (whose old
// listener and carrier sessions the takedown killed). The domestic proxy
// is not notified — the pool's prober has to re-admit the endpoint on its
// own, exactly as it had to notice the crash.
func (w *World) RestartFleetRemote(i int) {
	host, r := w.SCRemoteHost, w.Remote
	if i > 0 {
		host, r = w.fleetRemoteHosts[i-1], w.FleetRemoteProxies[i-1]
	}
	ln, err := host.Listen("tcp", fmt.Sprintf(":%d", portSCRemote))
	if err != nil {
		panic(err)
	}
	w.Env.Spawn.Go(func() { r.Serve(ln) })
}

// registerScholarCloud records the service in the MIIT database — the
// "legal avenue" — and wires MPS/MSS takedowns to the GFW's IP blocklist.
func (w *World) registerScholarCloud() {
	w.Registry = registry.NewDatabase()
	w.Enforcement = registry.NewEnforcement(w.Registry, w.Env.Clock, 24*time.Hour)
	w.Enforcement.OnBlock(func(ip string) {
		if w.GFW != nil {
			w.GFW.Apply(gfw.Policy{BlockIPs: []string{ip}})
		}
		// An enforcement block against a fleet remote rotates traffic off
		// it immediately instead of leaving the pool to discover 15-second
		// blackhole hangs.
		if w.Fleet != nil {
			if name, ok := w.fleetNameByIP[ip]; ok {
				w.Fleet.MarkDown(name, "enforcement block of "+ip)
			}
		}
	})
	endpointIPs := []string{ipDomestic, ipSCRemote}
	for i := 1; i < w.Cfg.FleetRemotes; i++ {
		endpointIPs = append(endpointIPs, fleetRemoteIP(i))
	}
	for i := 1; i < w.Cfg.Shards; i++ {
		// Every domestic shard is a registered endpoint of the legal
		// service, like the fleet remotes.
		endpointIPs = append(endpointIPs, fmt.Sprintf("%s%d", shardIPBase, 10+i))
	}
	tca := registry.NewTCA("Beijing", w.Registry, w.Env.Clock, 0 /* verified before the study window */)
	pending, err := tca.Submit(registry.Application{
		ServiceName:       "ScholarCloud",
		ServiceType:       registry.ServiceWebProxy,
		Domain:            "scholar.thucloud.com",
		ResponsiblePerson: "legal representative",
		Documents:         []string{registry.DocBiometric, registry.DocServiceDoc, registry.DocUserGuide},
		Whitelist:         w.Whitelist.Domains(),
		EndpointIPs:       endpointIPs,
	})
	if err != nil {
		panic(err)
	}
	// Await through the gate so the verification wait — the only virtual
	// time that passes during construction — happens at a fixed point in
	// the world's Run sequence.
	if err := w.Run(func() error { pending.Await(); return nil }); err != nil {
		panic(err)
	}
}

// RotateBlinding rotates ScholarCloud's blinding scheme on both proxies —
// the paper's agility claim. With a fleet, every remote rotates and the
// pool's pre-dialed carriers are recycled under the new scheme.
func (w *World) RotateBlinding(epoch uint64) {
	w.Remote.SetEpoch(epoch)
	for _, r := range w.FleetRemoteProxies {
		r.SetEpoch(epoch)
	}
	w.Domestic.Rotate(epoch)
	for i, d := range w.ShardDomestics {
		if i > 0 { // shard 0 is w.Domestic, already rotated
			d.Rotate(epoch)
		}
	}
}

// --- Method factories ---------------------------------------------------

// Direct returns the no-circumvention baseline on host h.
func (w *World) Direct(h *netsim.Host) tunnel.Method {
	return &tunnel.Direct{Dialer: h, Resolver: w.resolverFor(h)}
}

// NativeVPN returns a connected PPTP client on host h.
func (w *World) NativeVPN(h *netsim.Host) tunnel.Method {
	return w.nativeVPN(h, vpn.PPTP, portVPN)
}

// NativeVPNL2TP returns a connected L2TP client on host h.
func (w *World) NativeVPNL2TP(h *netsim.Host) tunnel.Method {
	return w.nativeVPN(h, vpn.L2TP, portVPN+1)
}

func (w *World) nativeVPN(h *netsim.Host, variant vpn.Variant, port int) tunnel.Method {
	// Users keep the VPN connected before browsing; measurement code
	// calls Connect (via prepare) on a managed goroutine so the control
	// handshake is not part of any page's PLT.
	return &vpn.Client{
		Env:          w.Env,
		Dial:         h.Dial,
		Server:       fmt.Sprintf("%s:%d", ipVPN, port),
		Secret:       w.vpnSecret,
		Variant:      variant,
		EchoInterval: vpnEchoInterval,
		EchoSize:     vpnEchoSize,
	}
}

// OpenVPN returns a connected OpenVPN client on host h.
func (w *World) OpenVPN(h *netsim.Host) tunnel.Method {
	id, err := w.CA.Issue(fmt.Sprintf("client-%s", h.IP()), false)
	if err != nil {
		panic(err)
	}
	return &openvpn.Client{
		Env:          w.Env,
		Dial:         h.Dial,
		Server:       fmt.Sprintf("%s:%d", ipOpenVPN, portOpenVPN),
		ServerName:   "openvpn.example",
		TAKey:        w.taKey,
		Identity:     id,
		VerifyServer: w.CA.Verifier(),
		PingInterval: openvpnPingInterval,
		PingSize:     openvpnPingSize,
	}
}

// Tor returns a Tor client on host h. Bootstrap is lazy: the paper's
// first-time PLT includes circuit construction.
func (w *World) Tor(h *netsim.Host) *tor.Client {
	return &tor.Client{
		Env:          w.Env,
		Dial:         h.Dial,
		FrontAddr:    fmt.Sprintf("%s:443", ipMeekFront),
		FrontDomain:  meekFrontSNI,
		PollInterval: meekPollInterval,
	}
}

// Shadowsocks returns a Shadowsocks client on host h.
func (w *World) Shadowsocks(h *netsim.Host) *shadowsocks.Client {
	return &shadowsocks.Client{
		Env:        w.Env,
		Dial:       h.Dial,
		Server:     fmt.Sprintf("%s:%d", ipSS, portSS),
		Password:   w.ssPassword,
		Credential: "scholar:pass2016",
		KeepAlive:  w.Cfg.SSKeepAlive,
	}
}

// ScholarCloud returns the PAC-configured browser stack on host h. When
// the world's domestic proxy runs a shared cache, clients use HTTPS-
// gateway mode so the cache sees (and can serve) their requests. Fault
// worlds use gateway mode too: there the domestic proxy owns each
// upstream fetch, which is what lets the resilience layer retry or
// hedge it — and gives the resilience-off baseline the same fetch path
// to fail on.
func (w *World) ScholarCloud(h *netsim.Host) tunnel.Method {
	return &core.ClientStack{
		Env:          w.Env,
		Dial:         h.Dial,
		PAC:          w.Whitelist,
		Resolver:     w.resolverFor(h),
		GatewayHTTPS: w.Cfg.CacheMB > 0 || w.Cfg.FaultScenario != "" || len(w.Cfg.Transports) > 0,
		// The client's own address — what myIpAddress() reports to the
		// PAC file — selects its shard in a sharded tier.
		ClientIP: h.IP(),
	}
}

// HostsFile returns the survey's "other methods" representative: a hosts
// file pointing a volunteer mirror's name (absent from public DNS) at an
// IP the GFW has not yet blocked. Anything named *google.com* would die
// to the keyword filter no matter where it resolves, so the tricks that
// still worked in the study's era used innocuous aliases.
func (w *World) HostsFile(h *netsim.Host) tunnel.Method {
	return &tunnel.HostsFile{
		Dialer: h,
		Entries: map[string]string{
			mirrorAltName: ipUnblockedGoogle,
		},
		Fallback: w.resolverFor(h),
	}
}
