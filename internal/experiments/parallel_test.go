package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"scholarcloud/internal/obs"
)

// TestRunnerKeepsJobOrder checks results land in job slots (not
// completion slots) and stats are labeled per job.
func TestRunnerKeepsJobOrder(t *testing.T) {
	const n = 20
	out := make([]int, n)
	var jobs []Job
	for i := 0; i < n; i++ {
		i := i
		jobs = append(jobs, Job{
			Fig:  "f",
			Cell: fmt.Sprintf("c%d", i),
			Run:  func() error { out[i] = i * i; return nil },
		})
	}
	stats, err := Runner{Workers: 4}.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != n {
		t.Fatalf("stats len = %d, want %d", len(stats), n)
	}
	for i := 0; i < n; i++ {
		if out[i] != i*i {
			t.Errorf("job %d result = %d, want %d", i, out[i], i*i)
		}
		if want := fmt.Sprintf("c%d", i); stats[i].Cell != want {
			t.Errorf("stats[%d].Cell = %q, want %q", i, stats[i].Cell, want)
		}
	}
}

// TestRunnerFirstErrorInJobOrder checks the reported error is the first
// failing job's in JOB order, independent of completion order, and that
// later jobs still run.
func TestRunnerFirstErrorInJobOrder(t *testing.T) {
	errA := errors.New("job 3 failed")
	errB := errors.New("job 7 failed")
	var ran atomic.Int64
	var jobs []Job
	for i := 0; i < 10; i++ {
		i := i
		jobs = append(jobs, Job{Run: func() error {
			ran.Add(1)
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		}})
	}
	for _, workers := range []int{1, 4} {
		ran.Store(0)
		_, err := Runner{Workers: workers}.Run(jobs)
		if err != errA {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errA)
		}
		if ran.Load() != 10 {
			t.Errorf("workers=%d: ran %d jobs, want all 10 (errors must not short-circuit)", workers, ran.Load())
		}
	}
}

// TestFleetWorldSnapshotDeterministic checks the property that lets the
// sweep include fleet cells in its merged snapshot: two same-seed fleet
// worlds running the same measurement settle to identical metrics, probe
// timers and all.
func TestFleetWorldSnapshotDeterministic(t *testing.T) {
	run := func() obs.Snapshot {
		w := NewWorld(Config{Seed: 5, FleetRemotes: 2, RunGuard: sweepRunGuard})
		defer w.Close()
		if _, err := w.MeasureFleetScalability(10, 1); err != nil {
			t.Fatal(err)
		}
		snap, err := w.SnapshotSettled()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("same-seed fleet worlds settled to different snapshots")
	}
}

// TestSweepParallelDeterminism is the harness's core contract: the same
// (seeds, figures) sweep must produce byte-identical figure text AND an
// identical merged metrics snapshot no matter how many workers ran it.
// The figure subset crosses the interesting world types — a GFW/browser
// figure (5b), a traffic figure (6a), and the fleet sweep's nearest
// kin among cheap figures (4, session structure).
func TestSweepParallelDeterminism(t *testing.T) {
	opts := SweepOptions{
		Seed:    2017,
		Seeds:   2,
		Figures: []string{"4", "5b", "6a"},
	}
	workerCounts := []int{1, 2, runtime.NumCPU() + 1}
	var base *SweepResult
	for _, w := range workerCounts {
		opts.Workers = w
		res, err := RunSweep(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Output != base.Output {
			t.Errorf("workers=%d: output differs from workers=%d run", w, workerCounts[0])
		}
		if !reflect.DeepEqual(res.Obs, base.Obs) {
			t.Errorf("workers=%d: merged obs snapshot differs from workers=%d run", w, workerCounts[0])
		}
	}
	if base.Output == "" {
		t.Error("sweep produced empty output")
	}
}
