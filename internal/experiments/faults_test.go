package experiments

import (
	"fmt"
	"testing"
	"time"

	"scholarcloud/internal/httpsim"
)

// TestResilienceSurvivesBurstLossAndCrash is the faults figure's
// acceptance criterion: under the combined scenario — a 40 s 25% loss
// burst on the border link plus an unannounced primary-remote crash —
// the historical fail-fast client path loses page loads, while the
// resilience layer (deadlines, backoff, hedged failover onto the
// surviving remote) completes at least 99% of them.
func TestResilienceSurvivesBurstLossAndCrash(t *testing.T) {
	measure := func(resilience bool) *FaultsResult {
		t.Helper()
		w := NewWorld(Config{
			Seed:          2017,
			FleetRemotes:  faultsRemotes,
			FaultScenario: "burst-loss+crash",
			Resilience:    resilience,
		})
		defer w.Close()
		r, err := w.MeasureFaults(faultsClients, 3)
		if err != nil {
			t.Fatalf("resilience=%v: %v", resilience, err)
		}
		return r
	}

	off := measure(false)
	on := measure(true)

	if off.Failed == 0 {
		t.Errorf("resilience-off baseline lost no page loads (%d visits) — the scenario is not stressing the fail-fast path", off.Visits)
	}
	if off.SuccessRate() >= 0.99 {
		t.Errorf("resilience-off success rate = %.1f%%, expected visible failure", 100*off.SuccessRate())
	}
	if on.SuccessRate() < 0.99 {
		t.Errorf("resilience-on success rate = %.1f%% (%d/%d failed), want >= 99%%",
			100*on.SuccessRate(), on.Failed, on.Visits)
	}
}

// TestHedgedRetryCompletesPageLoadOnMidTransferCrash seizes the primary
// remote while a page load is in flight and checks the resilience layer
// finishes the load anyway — the retried/hedged fetch lands on the
// surviving remote — with its counters showing the rescue.
func TestHedgedRetryCompletesPageLoadOnMidTransferCrash(t *testing.T) {
	w := NewWorld(Config{
		Seed:          11,
		FleetRemotes:  2,
		FaultScenario: "remote-crash", // arms gateway mode; the script is never injected
		Resilience:    true,
	})
	defer w.Close()
	f := w.Methods()[4] // scholarcloud

	var st *httpsim.VisitStats
	err := w.Run(func() error {
		h := w.newScaleClient(0)
		m := f.New(h)
		defer m.Close()
		if err := prepare(m); err != nil {
			return err
		}
		browser := w.newBrowser(m)
		if warm := browser.Visit(f.URL); warm.Failed {
			return fmt.Errorf("warm-up visit failed")
		}
		// Seize the primary shortly after the next load starts, so its
		// in-flight fetches die mid-transfer.
		w.Env.Spawn.Go(func() {
			w.Env.Clock.Sleep(200 * time.Millisecond)
			w.TakedownFleetRemote(0)
		})
		st = browser.Visit(f.URL)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed {
		t.Fatal("page load failed despite the resilience layer")
	}
	snap := w.Obs.Snapshot()
	engaged := snap.Counter("core.domestic.retries") +
		snap.Counter("core.domestic.hedges") +
		snap.Counter("core.domestic.failovers") +
		snap.Counter("core.domestic.deadline_hits") +
		snap.Counter("fleet.dial_timeouts")
	if engaged == 0 {
		t.Error("no resilience counter moved — the load was never rescued")
	}
}

// TestFaultsFigureDeterministicAcrossWorkers re-runs the faults figure's
// sweep at different worker counts and requires byte-identical output —
// the guarantee `make determinism` enforces for the whole report.
func TestFaultsFigureDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world sweep")
	}
	run := func(workers int) string {
		t.Helper()
		res, err := RunSweep(SweepOptions{
			Workers: workers,
			Quality: Quick(),
			Figures: []string{"faults"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}
	p1 := run(1)
	p3 := run(3)
	if p1 != p3 {
		t.Errorf("faults figure differs between -parallel 1 and -parallel 3:\n--- p1\n%s\n--- p3\n%s", p1, p3)
	}
}
