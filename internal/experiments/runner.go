package experiments

// runner.go is the sharded multi-world job runner underneath the parallel
// figure harness (sweep.go). Worlds are embarrassingly parallel — each one
// owns its netsim.Network, vclock.Scheduler and obs.Registry — so the
// runner only has to fan independent jobs over a bounded worker pool and
// keep every observable output in job order. Determinism contract: a job's
// result may depend only on its own inputs (never on which worker ran it
// or in what order), and the runner merges results by job index, so output
// is byte-identical for any worker count.

import (
	"runtime"
	"sync"
	"time"
)

// Job is one independent unit of work: typically "build a world, run one
// figure cell, tear the world down". Run must be self-contained — it
// writes its result into state captured by its own closure and must not
// read another job's.
type Job struct {
	// Fig and Cell label the job in timing reports.
	Fig, Cell string
	Run       func() error
}

// JobStats records how one job ran (wall-clock, so it reflects contention
// with whatever shared the cores).
type JobStats struct {
	Fig, Cell string
	Elapsed   time.Duration
}

// Runner executes batches of independent jobs over a bounded worker pool.
type Runner struct {
	// Workers bounds concurrent jobs; <= 0 selects GOMAXPROCS.
	Workers int
}

// Run executes every job and returns per-job wall timings, indexed like
// jobs. Errors do not short-circuit the batch (the remaining jobs still
// run, keeping timing reports complete); the returned error is the first
// failing job's in job order — NOT completion order — so error reporting
// is as deterministic as the results themselves.
func (r Runner) Run(jobs []Job) ([]JobStats, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	stats := make([]JobStats, len(jobs))
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			start := time.Now()
			errs[i] = j.Run()
			stats[i] = JobStats{Fig: j.Fig, Cell: j.Cell, Elapsed: time.Since(start)}
		}
		return stats, firstError(errs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				errs[i] = jobs[i].Run()
				stats[i] = JobStats{Fig: jobs[i].Fig, Cell: jobs[i].Cell, Elapsed: time.Since(start)}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return stats, firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
