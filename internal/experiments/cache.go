package experiments

// Shared-cache experiment: what the domestic proxy's content cache
// (internal/cache) buys under concurrent load. Every one of N clients
// loads the same Scholar page, so without a cache the border link (and
// the GFW) carries the same static objects N times; with the cache only
// the first fetch of each object crosses the border and concurrent
// identical misses coalesce into one upstream fetch. The sweep reports
// both what users feel (PLT) and what the border link carries (bytes).

import (
	"fmt"
	"strings"
	"time"

	"scholarcloud/internal/metrics"
)

// cacheStressInterval is the cache sweep's visit cadence. Like the fleet
// sweep, continuous browsing (20 s per visit, client content caches
// cleared each round) is what makes the shared resources contended; at
// Fig. 7's 60 s think time the border link idles either way.
const cacheStressInterval = 20 * time.Second

// cacheSweepMB is the cache byte budget used by the sweep's cache-on rows.
const cacheSweepMB = 64

// CachePoint is one (clients, cache on/off) cell of the sweep.
type CachePoint struct {
	Clients int
	CacheMB int // 0 = cache off
	PLT     metrics.Summary
	Failed  int
	// BorderBytes is the traffic the border link carried during the sweep
	// (both directions: requests, responses, ACKs, handshakes).
	BorderBytes int64
	// Cache activity during the sweep (all zero with the cache off).
	Hits, Misses, Coalesced, Revalidated int64
}

// MeasureCacheLoad runs n concurrent ScholarCloud clients for `rounds`
// continuous-browsing visits (client content caches cleared before each
// visit, so proxy-side caching is the only dedup in play) and reports
// PLT together with the border-link traffic the sweep generated.
func (w *World) MeasureCacheLoad(n, rounds int) (*CachePoint, error) {
	borderBefore := w.Border.Stats()
	var before struct{ hits, misses, coalesced, revalidated int64 }
	if w.Cache != nil {
		s := w.Cache.Snapshot()
		before.hits, before.misses = s.Hits, s.Misses
		before.coalesced, before.revalidated = s.Coalesced, s.Revalidated
	}

	p, err := w.measureScalabilityAt(w.Methods()[4], n, rounds, cacheStressInterval, true)
	if err != nil {
		return nil, err
	}

	point := &CachePoint{
		Clients:     n,
		CacheMB:     w.Cfg.CacheMB,
		PLT:         p.PLT,
		Failed:      p.Failed,
		BorderBytes: w.Border.Stats().Bytes - borderBefore.Bytes,
	}
	if w.Cache != nil {
		s := w.Cache.Snapshot()
		point.Hits = s.Hits - before.hits
		point.Misses = s.Misses - before.misses
		point.Coalesced = s.Coalesced - before.coalesced
		point.Revalidated = s.Revalidated - before.revalidated
	}
	return point, nil
}

// cacheSweepLoads is the sweep's client axis: light, the paper-scale
// deployment, and the heavy end where the shared border path saturates.
var cacheSweepLoads = []int{15, 60, 120}

func cacheLabel(mb int) string {
	if mb == 0 {
		return "off"
	}
	return fmt.Sprintf("%d MB", mb)
}

func cacheRow(p *CachePoint) string {
	return fmt.Sprintf("  %-10d %-8s %-10s %-10s %-11d %-8d %-8d %-10d %d\n",
		p.Clients, cacheLabel(p.CacheMB),
		metrics.FormatSeconds(p.PLT.Mean), metrics.FormatSeconds(p.PLT.P95),
		p.BorderBytes/1024, p.Hits, p.Misses, p.Coalesced, p.Failed)
}

const cacheHeader = "  %-10s %-8s %-10s %-10s %-11s %-8s %-8s %-10s %s\n"

func cacheHeaderRow() string {
	return fmt.Sprintf(cacheHeader,
		"clients", "cache", "mean-PLT", "p95-PLT", "border-KB", "hits", "misses", "coalesced", "failed")
}

const cacheTitle = "Shared cache — domestic-proxy content cache (ScholarCloud, continuous browsing)\n"

// ReportCache renders the shared-cache sweep sequentially: each
// (load, cache) cell in its own world, cache off and on side by side.
func ReportCache(seed uint64, q Quality) (string, error) {
	var b strings.Builder
	b.WriteString(cacheTitle)
	b.WriteString(cacheHeaderRow())
	for _, load := range cacheSweepLoads {
		for _, mb := range []int{0, cacheSweepMB} {
			w := NewWorld(Config{Seed: seed, CacheMB: mb})
			p, err := w.MeasureCacheLoad(load, q.ScaleRounds)
			w.Close()
			if err != nil {
				return "", err
			}
			b.WriteString(cacheRow(p))
		}
	}
	return b.String(), nil
}

// cachePlan re-cells ReportCache for the parallel sweep runner: one world
// per (load, cache) cell.
func cachePlan(q Quality) figurePlan {
	var cells []cell
	for _, load := range cacheSweepLoads {
		for _, mb := range []int{0, cacheSweepMB} {
			load, mb := load, mb
			cells = append(cells, cell{
				Label:  fmt.Sprintf("cache=%s n=%d", cacheLabel(mb), load),
				Worlds: 1,
				Weight: 100 + load,
				Run: func(seed uint64) (cellResult, error) {
					w := NewWorld(Config{Seed: seed, CacheMB: mb, RunGuard: sweepRunGuard})
					defer w.Close()
					p, err := w.MeasureCacheLoad(load, q.ScaleRounds)
					if err != nil {
						return cellResult{}, err
					}
					return settledResult(w, cacheRow(p),
						namedValue{Name: "plt", Value: p.PLT.Mean, Unit: "s"},
						namedValue{Name: "border-kb", Value: float64(p.BorderBytes) / 1024, Unit: "KB"})
				},
			})
		}
	}
	return figurePlan{
		Name:  "cache",
		Title: "Shared cache — domestic-proxy content cache",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			b.WriteString(cacheTitle)
			b.WriteString(cacheHeaderRow())
			b.WriteString(concatRows(rs))
			return b.String()
		},
	}
}
