package experiments

import (
	"strings"
	"testing"
)

// The report functions drive cmd/scholarbench; smoke-test each against a
// minimal quality setting so their formatting and plumbing stay covered.
func TestReportsRun(t *testing.T) {
	w := newTestWorld(t, Config{})
	q := Quality{
		FirstRuns:     1,
		Subsequent:    2,
		RTTProbes:     3,
		PLRVisits:     2,
		TrafficVisits: 1,
		ScaleRounds:   1,
		ScaleSweep:    []int{3},
	}

	fig4, err := w.ReportFig4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig4, "shadowsocks") || !strings.Contains(fig4, "TCP-1") {
		t.Errorf("fig4 = %q", fig4)
	}

	fig5a, err := w.ReportFig5a(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"native-vpn", "openvpn", "tor", "shadowsocks", "scholarcloud"} {
		if !strings.Contains(fig5a, m) {
			t.Errorf("fig5a missing %s", m)
		}
	}

	fig5b, err := w.ReportFig5b(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig5b, "RTT") {
		t.Errorf("fig5b = %q", fig5b)
	}

	fig5c, err := w.ReportFig5c(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig5c, "direct-us") {
		t.Errorf("fig5c missing the uncensored baseline")
	}

	fig6a, err := w.ReportFig6a(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig6a, "baseline") {
		t.Errorf("fig6a = %q", fig6a)
	}

	fig6bc, err := w.ReportFig6bc(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig6bc, "mem before") {
		t.Errorf("fig6bc = %q", fig6bc)
	}

	fig7, err := w.ReportFig7(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fig7, "tor") {
		t.Error("fig7 includes tor (the paper excludes it)")
	}

	ops, err := w.ReportDeployment(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ops, "USD/day") {
		t.Errorf("ops = %q", ops)
	}

	fig3 := ReportFig3(1)
	if !strings.Contains(fig3, "371") {
		t.Errorf("fig3 = %q", fig3)
	}
}
