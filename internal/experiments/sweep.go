package experiments

// sweep.go decomposes every figure of the evaluation into independent
// (cell × seed) jobs for the runner: each cell builds its OWN world —
// network, scheduler, metrics registry — measures one datapoint, snapshots
// and tears down. That is what makes the harness parallel (worlds share no
// state) and deterministic (a cell's result depends only on its seed, so
// merging per-cell results in declaration order yields byte-identical
// output for any -parallel value).
//
// Replication: with Seeds > 1 every cell runs once per seed (base, base+1,
// ...) and numeric figures render mean ± 95% CI across seeds; structural
// figures (2, 3, 4) are seed-stable tables and render the base seed only.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"scholarcloud/internal/costmodel"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/opscost"
)

// sweepRunGuard replaces the default 120 s per-Run deadlock guard for
// harness-built worlds: with more workers than cores a heavy fleet cell
// legitimately runs long on wall clock while making steady virtual-time
// progress.
const sweepRunGuard = 10 * time.Minute

// namedValue is one numeric a cell exports for cross-seed aggregation.
type namedValue struct {
	Name  string // "" when the cell has a single obvious value
	Value float64
	Unit  string // "s", "KB", "%", "USD/day"
}

// cellResult is what one (cell, seed) job produced.
type cellResult struct {
	// Row is the cell's exact contribution to the single-seed rendering.
	Row string
	// Values feed the multi-seed mean ± CI tables.
	Values []namedValue
	// Obs is the cell's world-local metrics delta; HasObs is false only
	// for static cells (no world). Fleet-backed worlds are snapshotted
	// too: the world gate freezes virtual time between Run windows, so
	// even their recurring probe timers fire at seed-determined instants.
	Obs    obs.Snapshot
	HasObs bool
}

// cell is one independently runnable unit of a figure.
type cell struct {
	Label string
	// Worlds counts simulated worlds the cell builds (bench accounting).
	Worlds int
	// Weight orders job dispatch heaviest-first so stragglers start early;
	// it must not influence the result.
	Weight int
	Run    func(seed uint64) (cellResult, error)
}

// figurePlan is a figure decomposed into cells plus a renderer that
// reassembles the figure text from completed cells (in cell order).
type figurePlan struct {
	Name   string
	Title  string
	Cells  []cell
	Render func(rs []cellResult) string
}

// FigureOrder lists every figure name in presentation order — the valid
// values of scholarbench -fig besides "all".
var FigureOrder = []string{"2", "3", "4", "5a", "5b", "5c", "6a", "6bc", "7", "ops", "fleet", "cache", "faults", "transports", "censor", "shards", "autoscale", "scale"}

// KnownFigure reports whether name is a figure the sweep can run.
func KnownFigure(name string) bool {
	for _, f := range FigureOrder {
		if f == name {
			return true
		}
	}
	return false
}

// SweepOptions configures RunSweep.
type SweepOptions struct {
	// Seed is the base seed (0 selects the default 2017). Replicate i runs
	// on Seed+i.
	Seed uint64
	// Seeds is the replicate count; <= 1 runs each cell once.
	Seeds int
	// Workers bounds concurrent worlds; <= 0 selects GOMAXPROCS.
	Workers int
	Quality Quality
	// Figures selects a subset of FigureOrder; empty means all.
	Figures []string
}

// FigureTiming is one figure's row of the benchmark report.
type FigureTiming struct {
	Fig            string  `json:"fig"`
	Cells          int     `json:"cells"`
	Seconds        float64 `json:"seconds"`
	MaxCellSeconds float64 `json:"max_cell_seconds"`
}

// BenchReport is the machine-readable performance record emitted as
// BENCH_experiments.json. Seconds are wall-clock; Seconds per figure sum
// per-cell times, so with N workers their total exceeds WallSeconds.
type BenchReport struct {
	GeneratedAt  string         `json:"generated_at,omitempty"`
	GoMaxProcs   int            `json:"gomaxprocs"`
	Workers      int            `json:"workers"`
	Seed         uint64         `json:"seed"`
	Seeds        int            `json:"seeds"`
	Full         bool           `json:"full"`
	Worlds       int            `json:"worlds"`
	WallSeconds  float64        `json:"wall_seconds"`
	WorldsPerSec float64        `json:"worlds_per_sec"`
	Figures      []FigureTiming `json:"figures"`
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Output is the figure text, sections in FigureOrder, each followed by
	// a blank line — byte-identical for a given (Seed, Seeds, Quality,
	// Figures) regardless of Workers.
	Output string
	// Obs merges the per-world metrics deltas of every world-backed cell
	// (fleet cells included), folded in cell order.
	Obs   obs.Snapshot
	Bench BenchReport
}

// RunSweep runs the selected figures as a (cell × seed) job matrix over a
// bounded worker pool and reassembles the deterministic report.
func RunSweep(opts SweepOptions) (*SweepResult, error) {
	baseSeed := opts.Seed
	if baseSeed == 0 {
		baseSeed = 2017
	}
	seeds := opts.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	want := map[string]bool{}
	for _, f := range opts.Figures {
		if f == "all" {
			want = nil
			break
		}
		want[f] = true
	}
	plans := sweepPlans(opts.Quality)
	if want != nil {
		kept := plans[:0]
		for _, p := range plans {
			if want[p.Name] {
				kept = append(kept, p)
			}
		}
		plans = kept
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("experiments: no known figure selected (want one of %s)", strings.Join(FigureOrder, ","))
	}

	// results[plan][seed][cell], filled by the jobs below. Each job owns
	// exactly one slot, so workers never write the same memory.
	results := make([][][]cellResult, len(plans))
	var jobs []Job
	worlds := 0
	for pi, p := range plans {
		results[pi] = make([][]cellResult, seeds)
		for si := 0; si < seeds; si++ {
			results[pi][si] = make([]cellResult, len(p.Cells))
			seed := baseSeed + uint64(si)
			for ci, c := range p.Cells {
				pi, si, ci, c := pi, si, ci, c
				worlds += c.Worlds
				jobs = append(jobs, Job{
					Fig:  p.Name,
					Cell: fmt.Sprintf("%s seed=%d", c.Label, seed),
					Run: func() error {
						r, err := c.Run(seed)
						if err != nil {
							return fmt.Errorf("figure %s, %s (seed %d): %w", plans[pi].Name, c.Label, seed, err)
						}
						results[pi][si][ci] = r
						return nil
					},
				})
			}
		}
	}
	// Dispatch heaviest cells first so the long poles start immediately;
	// results land in fixed slots, so dispatch order cannot leak into the
	// output.
	weights := make([]int, len(jobs))
	{
		i := 0
		for _, p := range plans {
			for si := 0; si < seeds; si++ {
				for _, c := range p.Cells {
					weights[i] = c.Weight
					i++
				}
			}
		}
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	ordered := make([]Job, len(jobs))
	for i, j := range order {
		ordered[i] = jobs[j]
	}

	start := time.Now()
	stats, err := Runner{Workers: workers}.Run(ordered)
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}

	var out strings.Builder
	for pi, p := range plans {
		if seeds == 1 {
			out.WriteString(p.Render(results[pi][0]))
		} else {
			out.WriteString(renderReplicated(p, results[pi], baseSeed))
		}
		out.WriteString("\n")
	}

	merged := obs.Snapshot{}
	for pi := range plans {
		for si := 0; si < seeds; si++ {
			for _, r := range results[pi][si] {
				if r.HasObs {
					merged = merged.Merge(r.Obs)
				}
			}
		}
	}

	bench := BenchReport{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Workers:      workers,
		Seed:         baseSeed,
		Seeds:        seeds,
		Worlds:       worlds,
		WallSeconds:  wall.Seconds(),
		WorldsPerSec: float64(worlds) / wall.Seconds(),
	}
	perFig := map[string]*FigureTiming{}
	for _, st := range stats {
		ft := perFig[st.Fig]
		if ft == nil {
			ft = &FigureTiming{Fig: st.Fig}
			perFig[st.Fig] = ft
		}
		ft.Cells++
		ft.Seconds += st.Elapsed.Seconds()
		if s := st.Elapsed.Seconds(); s > ft.MaxCellSeconds {
			ft.MaxCellSeconds = s
		}
	}
	for _, p := range plans {
		if ft := perFig[p.Name]; ft != nil {
			bench.Figures = append(bench.Figures, *ft)
		}
	}

	return &SweepResult{Output: out.String(), Obs: merged, Bench: bench}, nil
}

// --- figure plans ----------------------------------------------------------

// methodNames is the per-method cell axis shared by most figures.
var methodNames = []string{"native-vpn", "openvpn", "tor", "shadowsocks", "scholarcloud"}

// newCellWorld builds a fresh world for one cell.
func newCellWorld(seed uint64, fleetRemotes int) *World {
	return NewWorld(Config{Seed: seed, FleetRemotes: fleetRemotes, RunGuard: sweepRunGuard})
}

// settledResult captures the cell's deterministic metrics delta after the
// world quiesces (non-fleet worlds only; see World.SnapshotSettled).
func settledResult(w *World, row string, values ...namedValue) (cellResult, error) {
	snap, err := w.SnapshotSettled()
	if err != nil {
		return cellResult{}, err
	}
	return cellResult{Row: row, Values: values, Obs: snap, HasObs: true}, nil
}

func sweepPlans(q Quality) []figurePlan {
	return []figurePlan{
		staticPlan("2", "Figure 1/2 — system architecture", func(uint64) string { return ReportArchitecture() }),
		staticPlan("3", "Figure 3 — survey", ReportFig3),
		fig4Plan(),
		fig5aPlan(q),
		fig5bPlan(q),
		fig5cPlan(q),
		fig6aPlan(q),
		fig6bcPlan(q),
		fig7Plan(q),
		opsPlan(q),
		fleetPlan(q),
		cachePlan(q),
		faultsPlan(q),
		transportsPlan(q),
		censorPlan(q),
		shardsPlan(q),
		autoscalePlan(q),
		scalePlan(q),
	}
}

// staticPlan wraps a figure that needs no world (still run as a job so its
// timing is recorded).
func staticPlan(name, title string, render func(seed uint64) string) figurePlan {
	return figurePlan{
		Name:  name,
		Title: title,
		Cells: []cell{{
			Label: "static",
			Run: func(seed uint64) (cellResult, error) {
				return cellResult{Row: render(seed)}, nil
			},
		}},
		Render: concatRows,
	}
}

func concatRows(rs []cellResult) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.Row)
	}
	return b.String()
}

func fig4Plan() figurePlan {
	cells := make([]cell, len(methodNames))
	for i, name := range methodNames {
		name := name
		cells[i] = cell{
			Label:  name,
			Worlds: 1,
			Weight: 1,
			Run: func(seed uint64) (cellResult, error) {
				w := newCellWorld(seed, 0)
				defer w.Close()
				f, _ := w.FactoryByName(name)
				ss, err := w.MeasureSessionStructure(f)
				if err != nil {
					return cellResult{}, err
				}
				mark := func(v bool) string {
					if v {
						return "yes"
					}
					return "-"
				}
				row := fmt.Sprintf("  %-13s %-6s %-6s %-6s %-6s %s\n",
					ss.Method, mark(ss.TCP1), mark(ss.TCP2), mark(ss.TCP3), mark(ss.TCP4), mark(ss.SubsequentTCP4))
				return settledResult(w, row)
			},
		}
	}
	return figurePlan{
		Name:  "4",
		Title: "Figure 4 — TCP connections in one Scholar access",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "Figure 4 — TCP connections in one Scholar access\n")
			fmt.Fprintf(&b, "  %-13s %-6s %-6s %-6s %-6s %s\n", "method", "TCP-1", "TCP-2", "TCP-3", "TCP-4", "TCP-4 on revisit")
			b.WriteString(concatRows(rs))
			b.WriteString("  (TCP-1: proxy auth; TCP-2: HTTPS redirect; TCP-3: data; TCP-4: first-visit account recording)\n")
			return b.String()
		},
	}
}

func fig5aPlan(q Quality) figurePlan {
	cells := make([]cell, len(methodNames))
	for i, name := range methodNames {
		name := name
		cells[i] = cell{
			Label:  name,
			Worlds: 1,
			Weight: 2,
			Run: func(seed uint64) (cellResult, error) {
				w := newCellWorld(seed, 0)
				defer w.Close()
				f, _ := w.FactoryByName(name)
				r, err := w.MeasurePLT(f, q.FirstRuns, q.Subsequent)
				if err != nil {
					return cellResult{}, err
				}
				row := fmt.Sprintf("  %-13s %-26s %s\n", r.Method, fmtSummary(r.FirstTime), fmtSummary(r.Subsequent))
				return settledResult(w, row,
					namedValue{Name: "first-time", Value: r.FirstTime.Mean, Unit: "s"},
					namedValue{Name: "subsequent", Value: r.Subsequent.Mean, Unit: "s"})
			},
		}
	}
	return figurePlan{
		Name:  "5a",
		Title: "Figure 5a — page load time (first-time / subsequent)",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "Figure 5a — page load time (first-time / subsequent)\n")
			fmt.Fprintf(&b, "  %-13s %-26s %s\n", "method", "first-time mean [min,max]", "subsequent mean [min,max]")
			b.WriteString(concatRows(rs))
			return b.String()
		},
	}
}

func fig5bPlan(q Quality) figurePlan {
	cells := make([]cell, len(methodNames))
	for i, name := range methodNames {
		name := name
		cells[i] = cell{
			Label:  name,
			Worlds: 1,
			Weight: 1,
			Run: func(seed uint64) (cellResult, error) {
				w := newCellWorld(seed, 0)
				defer w.Close()
				f, _ := w.FactoryByName(name)
				r, err := w.MeasureRTT(f, q.RTTProbes)
				if err != nil {
					return cellResult{}, err
				}
				row := fmt.Sprintf("  %-13s %s\n", r.Method, fmtSummary(r.RTT))
				return settledResult(w, row, namedValue{Name: "rtt", Value: r.RTT.Mean, Unit: "s"})
			},
		}
	}
	return figurePlan{
		Name:  "5b",
		Title: "Figure 5b — round-trip time through each method",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "Figure 5b — round-trip time through each method\n")
			fmt.Fprintf(&b, "  %-13s %s\n", "method", "RTT mean [min,max]")
			b.WriteString(concatRows(rs))
			return b.String()
		},
	}
}

func fig5cPlan(q Quality) figurePlan {
	names := append(append([]string{}, methodNames...), "direct-us")
	cells := make([]cell, len(names))
	for i, name := range names {
		name := name
		cells[i] = cell{
			Label:  name,
			Worlds: 1,
			Weight: 2,
			Run: func(seed uint64) (cellResult, error) {
				w := newCellWorld(seed, 0)
				defer w.Close()
				f, _ := w.FactoryByName(name)
				r, err := w.MeasurePLR(f, q.PLRVisits)
				if err != nil {
					return cellResult{}, err
				}
				row := fmt.Sprintf("  %-13s %-8s %d\n", r.Method, metrics.FormatPercent(r.PLR), r.Packets)
				return settledResult(w, row, namedValue{Name: "plr", Value: r.PLR * 100, Unit: "%"})
			},
		}
	}
	return figurePlan{
		Name:  "5c",
		Title: "Figure 5c — packet loss rate (robustness to censorship)",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "Figure 5c — packet loss rate (robustness to censorship)\n")
			fmt.Fprintf(&b, "  %-13s %-8s %s\n", "method", "PLR", "packets")
			b.WriteString(concatRows(rs))
			return b.String()
		},
	}
}

// fig6aPlan measures per-access traffic; the uncensored baseline is cell 0
// and the overhead column is computed at render time, once every cell is
// in (the one cross-cell dependency of the sweep).
func fig6aPlan(q Quality) figurePlan {
	names := append([]string{"direct-us"}, methodNames...)
	cells := make([]cell, len(names))
	for i, name := range names {
		name := name
		cells[i] = cell{
			Label:  name,
			Worlds: 1,
			Weight: 1,
			Run: func(seed uint64) (cellResult, error) {
				w := newCellWorld(seed, 0)
				defer w.Close()
				f, _ := w.FactoryByName(name)
				r, err := w.MeasureTraffic(f, q.TrafficVisits)
				if err != nil {
					return cellResult{}, err
				}
				return settledResult(w, "", namedValue{Name: "traffic", Value: r.BytesPerAccess, Unit: "KB"})
			},
		}
	}
	return figurePlan{
		Name:  "6a",
		Title: "Figure 6a — client network traffic per access",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "Figure 6a — client network traffic per access\n")
			baseline := rs[0].Values[0].Value
			fmt.Fprintf(&b, "  %-13s %-9s (baseline)\n", names[0], metrics.FormatKB(baseline))
			for i := 1; i < len(rs); i++ {
				v := rs[i].Values[0].Value
				fmt.Fprintf(&b, "  %-13s %-9s (+%s overhead)\n", names[i],
					metrics.FormatKB(v), metrics.FormatKB(v-baseline))
			}
			return b.String()
		},
	}
}

func fig6bcPlan(q Quality) figurePlan {
	cells := make([]cell, len(methodNames))
	for i, name := range methodNames {
		name := name
		cells[i] = cell{
			Label:  name,
			Worlds: 1,
			Weight: 1,
			Run: func(seed uint64) (cellResult, error) {
				w := newCellWorld(seed, 0)
				defer w.Close()
				f, _ := w.FactoryByName(name)
				r, err := w.MeasureTraffic(f, q.TrafficVisits)
				if err != nil {
					return cellResult{}, err
				}
				model := name
				if model == "native-vpn" {
					model = "native-vpn-pptp"
				}
				if model == "tor" {
					model = "tor-meek"
				}
				est := costmodel.ForMethod(model, r.BytesPerAccess, 3)
				row := fmt.Sprintf("  %-13s %-12s %-10s %-12s %s\n", name,
					fmt.Sprintf("%.2f%%", est.BrowserCPU),
					fmt.Sprintf("%.2f%%", est.ExtraCPU),
					fmt.Sprintf("%.0f MB", est.MemBeforeMB),
					fmt.Sprintf("%.0f MB", est.MemAfterMB))
				return settledResult(w, row,
					namedValue{Name: "browser-cpu", Value: est.BrowserCPU, Unit: "%"},
					namedValue{Name: "extra-cpu", Value: est.ExtraCPU, Unit: "%"})
			},
		}
	}
	return figurePlan{
		Name:  "6bc",
		Title: "Figure 6b/6c — client CPU% and memory",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "Figure 6b/6c — client CPU%% and memory (cost model over measured traffic)\n")
			fmt.Fprintf(&b, "  %-13s %-12s %-10s %-12s %s\n", "method", "browser CPU", "extra CPU", "mem before", "mem after")
			b.WriteString(concatRows(rs))
			return b.String()
		},
	}
}

// fig7Plan runs one cell per (clients, method) grid point. Tor is
// excluded, as in the paper.
func fig7Plan(q Quality) figurePlan {
	methods := []string{"native-vpn", "openvpn", "shadowsocks", "scholarcloud"}
	var cells []cell
	for _, n := range q.ScaleSweep {
		for _, name := range methods {
			n, name := n, name
			cells = append(cells, cell{
				Label:  fmt.Sprintf("%s n=%d", name, n),
				Worlds: 1,
				Weight: 2 + n,
				Run: func(seed uint64) (cellResult, error) {
					w := newCellWorld(seed, 0)
					defer w.Close()
					f, _ := w.FactoryByName(name)
					p, err := w.MeasureScalability(f, n, q.ScaleRounds)
					if err != nil {
						return cellResult{}, err
					}
					txt := metrics.FormatSeconds(p.PLT.Mean)
					if p.Failed > 0 {
						txt += fmt.Sprintf("(%df)", p.Failed)
					}
					return settledResult(w, txt, namedValue{Name: "plt", Value: p.PLT.Mean, Unit: "s"})
				},
			})
		}
	}
	return figurePlan{
		Name:  "7",
		Title: "Figure 7 — mean PLT vs concurrent clients",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "Figure 7 — mean PLT vs concurrent clients\n")
			fmt.Fprintf(&b, "  %-9s", "clients")
			for _, name := range methods {
				fmt.Fprintf(&b, " %-13s", name)
			}
			b.WriteString("\n")
			for ni, n := range q.ScaleSweep {
				fmt.Fprintf(&b, "  %-9d", n)
				for mi := range methods {
					fmt.Fprintf(&b, " %-13s", rs[ni*len(methods)+mi].Row)
				}
				b.WriteString("\n")
			}
			return b.String()
		},
	}
}

func opsPlan(q Quality) figurePlan {
	return figurePlan{
		Name:  "ops",
		Title: "Deployment economics",
		Cells: []cell{{
			Label:  "scholarcloud",
			Worlds: 1,
			Weight: 1,
			Run: func(seed uint64) (cellResult, error) {
				w := newCellWorld(seed, 0)
				defer w.Close()
				f, _ := w.FactoryByName("scholarcloud")
				tr, err := w.MeasureTraffic(f, q.TrafficVisits)
				if err != nil {
					return cellResult{}, err
				}
				bill := opscost.Estimate(opscost.PaperWorkload(tr.BytesPerAccess), opscost.DefaultPricing())
				var out strings.Builder
				fmt.Fprintf(&out, "Deployment economics (paper §1: two VMs, ~700 daily users, 2.2 USD/day)\n")
				fmt.Fprintf(&out, "  measured traffic/access  %s\n", metrics.FormatKB(tr.BytesPerAccess))
				fmt.Fprintf(&out, "  VM cost                  $%.2f/day (2 instances)\n", bill.VMCostUSD)
				fmt.Fprintf(&out, "  egress                   %.2f GB -> $%.2f/day\n", bill.TrafficGB, bill.TrafficCostUSD)
				fmt.Fprintf(&out, "  total                    $%.2f/day ($%.4f per user)\n", bill.TotalUSD, bill.PerUserUSD)
				return settledResult(w, out.String(), namedValue{Name: "total", Value: bill.TotalUSD, Unit: "USD/day"})
			},
		}},
		Render: concatRows,
	}
}

// fleetPlan re-cells ReportFleet: one world per (load, remotes) sweep
// point plus the takedown run. Fleet worlds never quiesce (the prober is a
// recurring timer), so these cells carry no obs snapshot; the rendered
// rows themselves are still deterministic, since every measurement
// happens on the virtual clock.
func fleetPlan(q Quality) figurePlan {
	const clients = 120
	label := func(remotes int) string {
		if remotes == 0 {
			return "single (legacy)"
		}
		return fmt.Sprintf("fleet, %d remote(s)", remotes)
	}
	var cells []cell
	for _, load := range []int{clients, 2 * clients, 4 * clients} {
		for _, remotes := range []int{0, 1, 2, 4} {
			load, remotes := load, remotes
			if remotes == 0 && load > clients {
				// Measured once, not per sweep: the lone carrier's queue
				// diverges and the run only ends at the wall-clock guard.
				cells = append(cells, cell{
					Label: fmt.Sprintf("single n=%d", load),
					Run: func(uint64) (cellResult, error) {
						return cellResult{Row: fmt.Sprintf("  %-10d %-18s %s\n", load, label(0),
							"(does not complete: single-carrier queue diverges)")}, nil
					},
				})
				continue
			}
			cells = append(cells, cell{
				Label:  fmt.Sprintf("remotes=%d n=%d", remotes, load),
				Worlds: 1,
				Weight: 100 + load,
				Run: func(seed uint64) (cellResult, error) {
					w := newCellWorld(seed, remotes)
					defer w.Close()
					p, err := w.MeasureFleetScalability(load, q.ScaleRounds)
					if err != nil {
						return cellResult{}, err
					}
					row := fmt.Sprintf("  %-10d %-18s %-10s %-10s %-8d %d\n", load, label(remotes),
						metrics.FormatSeconds(p.PLT.Mean), metrics.FormatSeconds(p.PLT.P95),
						p.Failed, p.PLT.N)
					return settledResult(w, row,
						namedValue{Name: "plt", Value: p.PLT.Mean, Unit: "s"})
				},
			})
		}
	}
	cells = append(cells, cell{
		Label:  "takedown",
		Worlds: 1,
		Weight: 100 + 60,
		Run: func(seed uint64) (cellResult, error) {
			w := NewWorld(Config{Seed: seed, FleetRemotes: 4, RunGuard: sweepRunGuard})
			defer w.Close()
			killAt := visitInterval / 2
			res, err := w.MeasureFleetTakedown(60, q.ScaleRounds+1, 0, killAt)
			if err != nil {
				return cellResult{}, err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "\nTakedown during load (%d clients, 4 remotes; primary seized at t=%s)\n",
				res.Clients, metrics.FormatSeconds(killAt.Seconds()))
			fmt.Fprintf(&b, "  %-28s %-8s %s\n", "visits started", "count", "failed")
			fmt.Fprintf(&b, "  %-28s %-8d %d\n", "before takedown", res.VisitsBefore, res.FailedBefore)
			fmt.Fprintf(&b, "  %-28s %-8d %d\n",
				fmt.Sprintf("within ejection window (%s)", metrics.FormatSeconds(res.Window.Seconds())),
				res.VisitsWindow, res.FailedWindow)
			fmt.Fprintf(&b, "  %-28s %-8d %d\n", "after ejection window", res.VisitsAfter, res.FailedAfter)
			if res.FailedAfter > 0 {
				fmt.Fprintf(&b, "  WARNING: failures persisted past the ejection window\n")
			}
			return settledResult(w, b.String(),
				namedValue{Name: "failed-after-window", Value: float64(res.FailedAfter), Unit: ""})
		},
	})
	return figurePlan{
		Name:  "fleet",
		Title: "Fleet — remote-proxy pool scalability",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "Fleet — remote-proxy pool scalability (ScholarCloud, continuous browsing)\n")
			fmt.Fprintf(&b, "  %-10s %-18s %-10s %-10s %-8s %s\n",
				"clients", "deployment", "mean-PLT", "p95-PLT", "failed", "visits")
			b.WriteString(concatRows(rs))
			return b.String()
		},
	}
}

// --- multi-seed rendering --------------------------------------------------

// renderReplicated renders a figure aggregated across seeds: every cell
// value becomes a mean ± 95% CI line. Figures without numeric values
// (architecture, survey, session structure) are seed-stable tables, so the
// base seed's rendering is shown with a note.
func renderReplicated(p figurePlan, perSeed [][]cellResult, baseSeed uint64) string {
	numeric := false
	for _, r := range perSeed[0] {
		if len(r.Values) > 0 {
			numeric = true
			break
		}
	}
	if !numeric {
		var b strings.Builder
		b.WriteString(p.Render(perSeed[0]))
		fmt.Fprintf(&b, "  (structural figure: seed %d shown; identical across the %d replicate seeds)\n",
			baseSeed, len(perSeed))
		return b.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d seeds (%d..%d), mean ± 95%% CI\n",
		p.Title, len(perSeed), baseSeed, baseSeed+uint64(len(perSeed))-1)
	for ci, c := range p.Cells {
		for vi := range perSeed[0][ci].Values {
			vals := make([]float64, len(perSeed))
			for si := range perSeed {
				vals[si] = perSeed[si][ci].Values[vi].Value
			}
			v := perSeed[0][ci].Values[vi]
			mean, ci95 := meanCI95(vals)
			label := c.Label
			if v.Name != "" {
				label += " " + v.Name
			}
			fmt.Fprintf(&b, "  %-28s %s ± %s\n", label,
				formatValue(mean, v.Unit), formatValue(ci95, v.Unit))
		}
	}
	return b.String()
}

// meanCI95 returns the sample mean and the half-width of the normal 95%
// confidence interval (1.96·s/√n; 0 for n < 2).
func meanCI95(vals []float64) (mean, ci float64) {
	n := float64(len(vals))
	for _, v := range vals {
		mean += v
	}
	mean /= n
	if len(vals) < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 1.96 * sd / math.Sqrt(n)
}

func formatValue(v float64, unit string) string {
	switch unit {
	case "s":
		return metrics.FormatSeconds(v)
	case "KB":
		return metrics.FormatKB(v)
	case "%":
		return fmt.Sprintf("%.2f%%", v)
	case "USD/day":
		return fmt.Sprintf("$%.2f/day", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
