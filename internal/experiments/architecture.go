package experiments

// ReportArchitecture renders the paper's Figures 1 and 2 as text: the
// bilateral censorship ecosystem and the realized data path of each
// access method in this world.
func ReportArchitecture() string {
	return `Figure 1 — the bilateral ecosystem (as implemented)
  technical blocking:     internal/gfw on the CN↔US border link
                          (DPI, DNS poisoning, IP blocking, keyword
                          filtering, active probing, interference)
  non-technical control:  internal/registry — TCA registration, the MIIT
                          database, MPS/MSS investigation and takedown
  The two halves never consult each other (the paper's key observation),
  which is why a legal service can be incidentally blocked and a
  registered proxy can coexist with the GFW.

Figure 2 — architecture of the studied solutions (realized paths)
  (a) native VPN:   browser → PPTP/L2TP client ══ RC4 tunnel ══ VPN server → origin
  (b) OpenVPN:      browser → openvpn client ══ TLS+LZO tunnel ══ OpenVPN server → origin
  (c) Tor:          browser → tor client ── meek (HTTPS polls to CDN front)
                      → bridge ── TLS ── middle (EU) ── TLS ── exit → origin
                      (payload onion-encrypted across all three hops)
  (d) Shadowsocks:  browser → local SOCKS5 ── AES-256-CFB ── SS server → origin
                      (plus the per-session authentication connection)
  (e) ScholarCloud: browser ── PAC ──> domestic proxy (CN)
                      ══ blinded multiplexed tunnel ══ remote proxy (US) → origin
                      (HTTPS passes through untouched; cleartext HTTP gets a
                       proxy-to-proxy encrypted channel)
  Every ══ crossing the border passes through the GFW inspector.
`
}
