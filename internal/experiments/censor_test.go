package experiments

import (
	"reflect"
	"testing"

	"scholarcloud/internal/censor"
)

func censorWorld(seed uint64, profile string) *World {
	p, ok := censor.ProfileByName(profile)
	if !ok {
		panic("unknown censor profile " + profile)
	}
	return NewWorld(Config{
		Seed:       seed,
		Censor:     &p,
		Resilience: true,
	})
}

func timelineHas(tl []censor.Event, kind string) bool {
	for _, e := range tl {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// TestAdaptiveCensorSurvival is the censor figure's acceptance
// criterion: with every border running the aggressive adaptive
// controller — all of them escalating to active probing and
// fingerprint blocking under the cohort's own traffic — the carrier
// ladder still completes at least 99% of page loads.
func TestAdaptiveCensorSurvival(t *testing.T) {
	w := censorWorld(2017, "adaptive")
	defer w.Close()
	p, err := w.MeasureCensorship(censorClients, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.SuccessRate() < 0.99 {
		t.Errorf("success rate = %.2f%%, want >= 99%%", 100*p.SuccessRate())
	}
	for _, b := range p.Borders {
		if !timelineHas(b.Timeline, "escalate") {
			t.Errorf("border %s never escalated — the survival claim is vacuous", b.Border)
		}
		if b.Escalations == 0 {
			t.Errorf("border %s ladder never rotated off the blinded rung", b.Border)
		}
		if b.Visits == 0 {
			t.Errorf("border %s saw no visits", b.Border)
		}
	}
}

// TestRegionalInconsistency pins the paper's §2 observation in one
// world: a lenient coastal border and a strict adaptive inland border
// coexist, and only the inland cohort pays for it. Coastal clients
// never rotate transports and keep their mean PLT under 2x the clean
// baseline (the cohort's own fastest load); inland clients live
// through the full crackdown.
func TestRegionalInconsistency(t *testing.T) {
	w := censorWorld(2017, "regional")
	defer w.Close()
	p, err := w.MeasureCensorship(censorClients, 10)
	if err != nil {
		t.Fatal(err)
	}
	var coastal, inland *BorderOutcome
	for i := range p.Borders {
		switch p.Borders[i].Border {
		case "coastal":
			coastal = &p.Borders[i]
		case "inland":
			inland = &p.Borders[i]
		}
	}
	if coastal == nil || inland == nil {
		t.Fatalf("missing borders in %+v", p.Borders)
	}

	if coastal.Escalations != 0 {
		t.Errorf("lenient coastal border rotated transports %d times, want 0", coastal.Escalations)
	}
	if coastal.Failed != 0 {
		t.Errorf("coastal cohort failed %d/%d visits behind a lenient border", coastal.Failed, coastal.Visits)
	}
	if coastal.PLT.Mean >= 2*coastal.PLT.Min {
		t.Errorf("coastal mean PLT %.2fs >= 2x clean baseline %.2fs — lenient border is not lenient",
			coastal.PLT.Mean, coastal.PLT.Min)
	}

	if !timelineHas(inland.Timeline, "escalate") {
		t.Error("strict inland border never escalated")
	}
	if inland.Escalations == 0 {
		t.Error("inland cohort never rotated transports under the crackdown")
	}
	if inland.PLT.Mean <= coastal.PLT.Mean {
		t.Errorf("inland mean PLT %.2fs <= coastal %.2fs — the crackdown cost nothing",
			inland.PLT.Mean, coastal.PLT.Mean)
	}
}

// TestCensorTimelinesReproducible pins determinism at the figure's
// grain: the same seed replays the same per-border escalation
// timelines event for event, while two borders under the *identical*
// adaptive policy diverge — each controller ticks at its own
// seed-derived phase, so the borders escalate independently.
func TestCensorTimelinesReproducible(t *testing.T) {
	run := func() map[string][]censor.Event {
		w := censorWorld(2017, "adaptive")
		defer w.Close()
		p, err := w.MeasureCensorship(censorClients, 10)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]censor.Event, len(p.Borders))
		for _, b := range p.Borders {
			out[b.Border] = b.Timeline
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different timelines:\n%+v\nvs\n%+v", a, b)
	}
	if len(a["north"]) == 0 || len(a["south"]) == 0 {
		t.Fatalf("empty timelines: north=%d south=%d events", len(a["north"]), len(a["south"]))
	}
	if reflect.DeepEqual(a["north"], a["south"]) {
		t.Error("identical-policy borders produced identical timelines — controllers are not phase-independent")
	}
}
