package experiments

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"scholarcloud/internal/carrier"
	"scholarcloud/internal/censor"
	"scholarcloud/internal/core"
	"scholarcloud/internal/fleet"
	"scholarcloud/internal/gfw"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/pac"
)

// censorClients is the per-border concurrent-client load of the censor
// figure. Modest on purpose: every border runs its own full deployment,
// and a fingerprint crackdown drives its cohort through the DNS tunnel.
const censorClients = 6

// Censor-region ladder and resilience tuning. Multi-border worlds live
// through an active crackdown rather than a fixed fault window, so the
// client side runs the censor package's survival tuning — the same
// numbers DomesticConfig.CensorProfile applies to a real-socket
// deployment, so the measured survival rates transfer.
const (
	censorTripAfter     = censor.SurvivalTripAfter
	censorProbeInterval = censor.SurvivalProbeInterval
	censorRetries       = censor.SurvivalRetries
)

// Region is one border's deployment in a multi-border censor world: its
// own client zone and border link, its own firewall with independent
// policy state, and its own domestic proxy with a full carrier
// escalation ladder — the regional unevenness of §2, built instead of
// assumed.
type Region struct {
	Name   string
	Zone   *netsim.Zone
	Border *netsim.LinkHandle
	GFW    *gfw.GFW
	Host   *netsim.Host

	Domestic  *core.Domestic
	Whitelist *pac.Config
	Ladder    *carrier.Ladder
	Fleet     *fleet.Pool
	// Controller is the border's adaptive escalation loop (nil for
	// scripted or static borders).
	Controller *censor.Controller

	policy censor.BorderPolicy
	index  int

	mu      sync.Mutex
	armed   bool
	armedAt time.Time
	events  []censor.Event
}

// record appends a timeline event stamped with the virtual-time offset
// since arming. Pre-arm activity (warm-up dials) is not censor-driven
// and is dropped.
func (r *Region) record(now time.Time, e censor.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.armed {
		return
	}
	e.At = now.Sub(r.armedAt)
	e.Border = r.Name
	r.events = append(r.events, e)
}

// Timeline merges the region's recorded events (stages, transport
// rotations) with its controller's escalation log, ordered by onset.
func (r *Region) Timeline() []censor.Event {
	r.mu.Lock()
	out := append([]censor.Event(nil), r.events...)
	r.mu.Unlock()
	if r.Controller != nil {
		out = append(out, r.Controller.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Level names the region's current escalation rung ("static" for
// borders without an adaptive controller).
func (r *Region) Level() string {
	if r.Controller == nil {
		return "static"
	}
	return r.Controller.Level().String()
}

// regionSalt decorrelates region i's seed streams from the classic
// world's and from its sibling regions'.
func regionSalt(i int) uint64 { return uint64(i+1) * 0x9E3779B97F4A7C15 }

// regionIP addresses region i's hosts: 10.(40+i).b.c.
func regionIP(i, b, c int) string { return fmt.Sprintf("10.%d.%d.%d", 40+i, b, c) }

// startCensorRegions builds one Region per border of Cfg.Censor. Shared
// US-side cover infrastructure (gateway pool, tunnel resolvers, the
// primary remote) is built once; everything Chinese-side is per-region.
func (w *World) startCensorRegions() {
	primary := fmt.Sprintf("%s:%d", ipSCRemote, portSCRemote)
	for i, bp := range w.Cfg.Censor.Borders {
		bp := bp
		r := &Region{Name: bp.Name, policy: bp, index: i}

		// --- The border: a client zone, its link, its firewall ---------
		r.Zone = w.Net.AddZone("region-" + bp.Name)
		r.Border = w.Net.Connect(r.Zone, w.US, netsim.LinkConfig{
			Delay:     borderDelay,
			Bandwidth: 10 * accessBW,
			BaseLoss:  borderLoss,
			Jitter:    borderJitter,
		})
		prober := w.Net.AddHost("censor-prober-"+bp.Name, regionIP(i, 255, 1), r.Zone, accessLink())
		r.GFW = gfw.New(gfw.Config{
			Network:             w.Net,
			Zone:                r.Zone,
			Clock:               w.Env.Clock,
			Spawn:               w.Env.Spawn,
			BlockedDomains:      []string{"google.com", "facebook.com", "twitter.com", "youtube.com"},
			BlockedIPs:          []string{ipScholar, ipAccounts},
			PoisonIP:            "37.61.54.158",
			MeekFronts:          []string{meekFrontSNI},
			MeekLossRate:        gfwMeekLoss,
			ShadowsocksLossRate: gfwShadowsocksLoss,
			ProbeDelay:          gfwProbeDelay,
			ProbeFrom:           prober,
			Seed:                w.Cfg.Seed ^ 0x6F57AA11 ^ regionSalt(i),
		})
		r.Border.SetInspector(r.GFW)

		// --- The region's domestic proxy with the full ladder ----------
		r.Host = w.Net.AddHost("sc-censor-"+bp.Name, regionIP(i, 0, 2), r.Zone, accessLink())
		r.Whitelist = pac.New(
			fmt.Sprintf("%s:%d", r.Host.IP(), portProxy),
			[]string{"scholar.google.com", "accounts.google.com"},
		)
		d := &core.Domestic{
			Env: w.Env,
			DialRemote: func() (net.Conn, error) {
				return r.Host.DialTCP(primary)
			},
			Secret:       w.scSecret,
			Epoch:        w.Cfg.BlindingEpoch,
			Whitelist:    r.Whitelist,
			VerifyRemote: w.CA.Verifier(),
			RemoteName:   "remote.scholarcloud.example",
			GatewayFetch: true,
		}
		if w.Cfg.Resilience {
			// Deeper retry budget than the single-border worlds: a visit
			// caught mid-crackdown must outlive the ladder's rotation, and
			// early attempts on a freshly fingerprinted rung fail in
			// milliseconds.
			d.Resil = &core.Resilience{
				Seed:           w.Cfg.Seed ^ 0x4E51AE ^ regionSalt(i),
				HedgeAfter:     transportsHedgeAfter,
				RequestTimeout: transportsRequestTimeout,
				Retries:        censorRetries,
			}
		}
		wrap := d.WrapCarrier
		rungs := []carrier.Transport{
			carrier.NewBlinded(
				func() (net.Conn, error) { return r.Host.DialTCP(primary) }, wrap),
			w.newRendezvousRung(r.Host, wrap, regionSalt(i)),
			w.newTunnelRung(r.Host, wrap, regionSalt(i)),
		}
		r.Ladder = carrier.NewLadder(carrier.LadderConfig{
			Env: w.Env,
			// Rotate on a hair trigger and probe back down lazily: during
			// an adaptive crackdown a recovery probe's handshake is too
			// short for the classifier, so an eager prober would keep
			// stepping the cohort back onto a fingerprinted rung.
			TripAfter:     censorTripAfter,
			ProbeInterval: censorProbeInterval,
			OnSwitch: func(from, to, reason string) {
				r.record(w.Env.Clock.Now(), censor.Event{
					Kind: "transport", From: from, To: to, Reason: reason,
				})
			},
		}, rungs...)

		eps := make([]fleet.Endpoint, 0, len(rungs))
		for _, tr := range rungs {
			eps = append(eps, fleet.Endpoint{Name: tr.Name(), Transport: tr.Name(), Dial: tr.Dial})
		}
		pool, err := fleet.New(fleet.Config{
			Env:            w.Env,
			NewSession:     wrap,
			ProbeInterval:  transportsProbeInterval,
			ProbeTimeout:   transportsProbeTimeout,
			ReadmitBackoff: fleetReadmitBackoff,
			DialTimeout:    transportsDialTimeout,
			Seed:           w.Cfg.Seed ^ 0x7EA45 ^ regionSalt(i),
			Escalate:       r.Ladder,
		}, eps)
		if err != nil {
			panic(err)
		}
		r.Fleet = pool
		d.Fleet = pool
		d.NextTransport = r.Ladder.NextName
		r.Ladder.Start()
		r.Domestic = d

		ln, err := r.Host.Listen("tcp", fmt.Sprintf(":%d", portProxy))
		if err != nil {
			panic(err)
		}
		proxy := d.Proxy()
		w.Env.Spawn.Go(func() { proxy.Serve(ln) })

		// --- The adaptive controller -----------------------------------
		if bp.Adaptive != nil {
			ctl, err := censor.NewController(censor.Config{
				Border: bp.Name,
				Policy: *bp.Adaptive,
				Base:   bp.Base,
				Sample: func() censor.Sample { return regionSample(r.GFW, r.Controller.Policy().Suspicious) },
				Apply:  r.GFW.Apply,
			})
			if err != nil {
				panic(err)
			}
			r.Controller = ctl
		}

		// --- Per-border observability ----------------------------------
		// The shared gfw.* names would sum across borders; each border
		// publishes its own prefixed view instead.
		pfx := fmt.Sprintf("censor.%s.", bp.Name)
		g := r.GFW
		w.Obs.RegisterFunc(pfx+"flows", func() int64 { return g.Stats().FlowsTracked })
		w.Obs.RegisterFunc(pfx+"class_resets", func() int64 { return g.Stats().ClassResets })
		w.Obs.RegisterFunc(pfx+"storm_resets", func() int64 { return g.Stats().StormResets })
		w.Obs.RegisterFunc(pfx+"ip_blocked", func() int64 { return g.Stats().IPBlocked })
		w.Obs.RegisterFunc(pfx+"servers_confirmed", func() int64 { return g.Stats().ServersConfirmed })
		w.Obs.RegisterFunc(pfx+"ladder_escalations", r.Ladder.Escalations)
		w.Obs.RegisterFunc(pfx+"ladder_recoveries", r.Ladder.Recoveries)
		if r.Controller != nil {
			r.Controller.Instrument(w.Obs, pfx)
		}
		d.Instrument(w.Obs)

		w.Regions = append(w.Regions, r)
	}
}

// describePosture summarizes a scripted posture for the timeline.
func describePosture(p gfw.Policy) string {
	var parts []string
	if p.ResetStorm > 0 {
		parts = append(parts, fmt.Sprintf("storm=%.2g", p.ResetStorm))
	}
	if p.Throttle > 0 {
		parts = append(parts, fmt.Sprintf("throttle=%.2g", p.Throttle))
	}
	if n := len(p.BlockClasses); n > 0 {
		parts = append(parts, fmt.Sprintf("%d classes blocked", n))
	}
	if n := len(p.BlockIPs); n > 0 {
		parts = append(parts, fmt.Sprintf("%d IPs blackholed", n))
	}
	if p.ScrutinizeCleartext {
		parts = append(parts, "scrutinize-cleartext")
	}
	if len(parts) == 0 {
		return "open"
	}
	return strings.Join(parts, " ")
}

// regionSample reads one border's firewall into a controller Sample.
func regionSample(g *gfw.GFW, suspicious []gfw.Class) censor.Sample {
	counts := g.ClassCounts()
	sus := make(map[gfw.Class]int64, len(suspicious))
	for _, cl := range suspicious {
		if n := counts[cl]; n > 0 {
			sus[cl] = n
		}
	}
	return censor.Sample{
		Suspicious: sus,
		Confirmed:  censor.SortedConfirmed(g.ConfirmedServers()),
	}
}

// armCensor applies every border's base posture and starts its scripted
// stages and adaptive controller on the virtual clock. Must run inside a
// Run window; idempotent. Each controller starts with a seed-derived
// phase offset, so identical-policy borders tick at independent but
// reproducible instants.
func (w *World) armCensor() {
	if w.censorArmed {
		return
	}
	w.censorArmed = true
	now := w.Env.Clock.Now()
	for _, r := range w.Regions {
		r := r
		r.mu.Lock()
		r.armed = true
		r.armedAt = now
		r.mu.Unlock()
		r.GFW.Apply(r.policy.Base)
		for si, st := range r.policy.Stages {
			si, st := si, st
			w.Env.Spawn.Go(func() {
				w.Env.Clock.Sleep(st.After)
				r.GFW.Apply(st.Posture)
				r.record(w.Env.Clock.Now(), censor.Event{
					Kind:   "stage",
					To:     fmt.Sprintf("stage-%d", si),
					Reason: describePosture(st.Posture),
				})
			})
		}
		if r.Controller != nil {
			phase := censor.Phase(w.Cfg.Seed, r.index, r.Controller.Policy().Interval)
			w.Env.Spawn.Go(func() { r.Controller.Run(w.Env, phase) })
		}
	}
}

// ArmCensor arms the configured censor policy: base postures now,
// scripted stages and adaptive controllers from now on the virtual
// clock. No-op without Config.Censor; idempotent, so measurements arm
// unconditionally at their start.
func (w *World) ArmCensor() error {
	if len(w.Regions) == 0 {
		return nil
	}
	return w.Run(func() error {
		w.armCensor()
		return nil
	})
}

// RungSurvival is one transport's share of a border's visits: how many
// page loads rode this rung while it was the ladder's active transport,
// and how many of those failed — the per-transport survival curve.
type RungSurvival struct {
	Rung   string
	Visits int
	Failed int
}

// SuccessRate is the fraction of this rung's visits that completed.
func (s RungSurvival) SuccessRate() float64 {
	if s.Visits == 0 {
		return 0
	}
	return 1 - float64(s.Failed)/float64(s.Visits)
}

// BorderOutcome is one border's cell of the censor figure.
type BorderOutcome struct {
	Border string
	// FinalLevel is the adaptive controller's final escalation rung
	// ("static" for scripted/lenient borders).
	FinalLevel string
	// FinalRung is the ladder's active transport when the load completed.
	FinalRung string
	// Escalations and Recoveries count the border cohort's ladder moves.
	Escalations int64
	Recoveries  int64
	PLT         metrics.Summary // seconds, successful visits only
	Visits      int
	Failed      int
	// Survival breaks the visits out per active transport, in ladder
	// order.
	Survival []RungSurvival
	// Timeline is the border's merged escalation history: scripted
	// stages, adaptive moves, blackholes, and transport rotations.
	Timeline []censor.Event
}

// SuccessRate is the fraction of the border's page loads that completed.
func (b *BorderOutcome) SuccessRate() float64 {
	if b.Visits == 0 {
		return 0
	}
	return 1 - float64(b.Failed)/float64(b.Visits)
}

// CensorPoint is one profile's result: every border measured under the
// same armed policy, in policy order.
type CensorPoint struct {
	Profile string
	// Clients is the per-border concurrent cohort size.
	Clients int
	Rounds  int
	Borders []BorderOutcome
}

// SuccessRate is the whole-world visit success fraction.
func (p *CensorPoint) SuccessRate() float64 {
	visits, failed := 0, 0
	for _, b := range p.Borders {
		visits += b.Visits
		failed += b.Failed
	}
	if visits == 0 {
		return 0
	}
	return 1 - float64(failed)/float64(visits)
}

// censorVisit is one page load's record inside a border cohort.
type censorVisit struct {
	region int
	rung   string
	plt    time.Duration
	failed bool
}

// newRegionClient reuses or creates client machine i of region r.
func (w *World) newRegionClient(r *Region, i int) *netsim.Host {
	ip := regionIP(r.index, 1, i+1)
	if h := w.Net.HostByIP(ip); h != nil {
		return h
	}
	return w.Net.AddHost(fmt.Sprintf("censor-%s-client-%d", r.Name, i),
		ip, r.Zone, accessLink())
}

// regionMethod builds a ScholarCloud client stack homed in region r.
func (w *World) regionMethod(r *Region, h *netsim.Host) *core.ClientStack {
	return &core.ClientStack{
		Env:          w.Env,
		Dial:         h.Dial,
		PAC:          r.Whitelist,
		Resolver:     w.resolverFor(h),
		GatewayHTTPS: true,
		ClientIP:     h.IP(),
	}
}

// MeasureCensorship arms the censor policy, then runs n concurrent
// clients per border for `rounds` visit rounds each and reports, per
// border, where the escalation war settled: the censor's final level,
// the cohort's final transport, per-transport survival, and the merged
// escalation timeline. The world must have been built with
// Config.Censor.
func (w *World) MeasureCensorship(n, rounds int) (*CensorPoint, error) {
	if len(w.Regions) == 0 {
		return nil, errors.New("experiments: world has no censor regions (set Config.Censor)")
	}
	cadence := transportsStressInterval
	var mu sync.Mutex
	var visits []censorVisit
	err := w.Run(func() error {
		w.armCensor()
		wg := w.Env.NewWaitGroup()
		for ri, r := range w.Regions {
			ri, r := ri, r
			for i := 0; i < n; i++ {
				i := i
				wg.Add(1)
				w.Env.Spawn.Go(func() {
					defer wg.Done()
					h := w.newRegionClient(r, i)
					method := w.regionMethod(r, h)
					defer method.Close()
					if err := prepare(method); err != nil {
						mu.Lock()
						visits = append(visits, censorVisit{region: ri, failed: true})
						mu.Unlock()
						return
					}
					browser := w.newBrowser(method)
					// Stagger arrivals: cohorts offset per region, clients
					// uniform across the cadence interval.
					offset := time.Duration(ri)*cadence/time.Duration(4*len(w.Regions)) +
						time.Duration(i)*cadence/time.Duration(n)
					w.Env.Clock.Sleep(offset)
					for round := 0; round < rounds; round++ {
						rung := r.Ladder.ActiveName()
						st := browser.Visit(scholarURL)
						mu.Lock()
						visits = append(visits, censorVisit{
							region: ri, rung: rung, plt: st.PLT, failed: st.Failed,
						})
						mu.Unlock()
						if sleep := cadence - st.PLT; sleep > 0 {
							w.Env.Clock.Sleep(sleep)
						}
					}
				})
			}
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		return nil, err
	}

	point := &CensorPoint{Profile: w.Cfg.Censor.Name, Clients: n, Rounds: rounds}
	for ri, r := range w.Regions {
		out := BorderOutcome{
			Border:      r.Name,
			FinalLevel:  r.Level(),
			FinalRung:   r.Ladder.ActiveName(),
			Escalations: r.Ladder.Escalations(),
			Recoveries:  r.Ladder.Recoveries(),
			Timeline:    r.Timeline(),
		}
		byRung := make(map[string]*RungSurvival)
		var plts []time.Duration
		for _, v := range visits {
			if v.region != ri {
				continue
			}
			out.Visits++
			s := byRung[v.rung]
			if s == nil {
				s = &RungSurvival{Rung: v.rung}
				byRung[v.rung] = s
			}
			s.Visits++
			if v.failed {
				out.Failed++
				s.Failed++
			} else {
				plts = append(plts, v.plt)
			}
		}
		for _, name := range carrier.Known() {
			if s := byRung[name]; s != nil {
				out.Survival = append(out.Survival, *s)
			}
		}
		out.PLT = metrics.SummarizeDurations(plts)
		point.Borders = append(point.Borders, out)
	}
	return point, nil
}

// censorRows formats one profile's border rows plus its timelines.
func censorRows(p *CensorPoint) string {
	var b strings.Builder
	for _, o := range p.Borders {
		var surv []string
		for _, s := range o.Survival {
			surv = append(surv, fmt.Sprintf("%s %.0f%%", s.Rung, 100*s.SuccessRate()))
		}
		fmt.Fprintf(&b, "  %-10s %-9s %-12s %-12s %-10s %-8d %-8d %-9s %-7d %s\n",
			p.Profile, o.Border, o.FinalLevel, o.FinalRung,
			metrics.FormatSeconds(o.PLT.Mean),
			o.Visits, o.Failed, fmt.Sprintf("%.1f%%", 100*o.SuccessRate()),
			o.Escalations, strings.Join(surv, ", "))
	}
	for _, o := range p.Borders {
		for _, e := range o.Timeline {
			switch e.Kind {
			case "escalate", "relax", "block-class", "stage":
				fmt.Fprintf(&b, "    [%s %7s] %-11s %s -> %s  (%s)\n",
					o.Border, metrics.FormatSeconds(e.At.Seconds()),
					e.Kind, e.From, e.To, e.Reason)
			}
		}
	}
	return b.String()
}

// censorHeader formats the figure's preamble and column header.
func censorHeader(rounds int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive multi-border censor (%d clients/border, %d rounds at %s cadence; profiles: %s)\n",
		censorClients, rounds,
		metrics.FormatSeconds(transportsStressInterval.Seconds()),
		strings.Join(censor.ProfileNames(), ", "))
	fmt.Fprintf(&b, "  %-10s %-9s %-12s %-12s %-10s %-8s %-8s %-9s %-7s %s\n",
		"profile", "border", "censor", "final rung", "plt(mean)",
		"visits", "failed", "success", "escal", "survival by rung")
	return b.String()
}

// censorPlan decomposes the censor figure for the parallel harness: one
// world per profile, every cell deterministic, merged in declaration
// order.
func censorPlan(q Quality) figurePlan {
	rounds := q.ScaleRounds + 2
	var cells []cell
	cells = append(cells, cell{
		Label: "header",
		Run: func(uint64) (cellResult, error) {
			return cellResult{Row: censorHeader(rounds)}, nil
		},
	})
	for _, name := range censor.ProfileNames() {
		name := name
		cells = append(cells, cell{
			Label:  name,
			Worlds: 1,
			Weight: 100 + 2*censorClients,
			Run: func(seed uint64) (cellResult, error) {
				profile, _ := censor.ProfileByName(name)
				w := NewWorld(Config{
					Seed:       seed,
					Censor:     &profile,
					Resilience: true,
					RunGuard:   sweepRunGuard,
				})
				defer w.Close()
				p, err := w.MeasureCensorship(censorClients, rounds)
				if err != nil {
					return cellResult{}, err
				}
				return settledResult(w, censorRows(p),
					namedValue{Name: "success", Value: 100 * p.SuccessRate(), Unit: "%"},
					namedValue{Name: "borders", Value: float64(len(p.Borders)), Unit: ""})
			},
		})
	}
	return figurePlan{
		Name:   "censor",
		Title:  "Adaptive multi-border censorship",
		Cells:  cells,
		Render: concatRows,
	}
}
