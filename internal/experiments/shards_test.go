package experiments

import (
	"fmt"
	"testing"
	"time"

	"scholarcloud/internal/httpsim"
)

// TestShardedTierFetchesSharedObjectOnceAcrossBorder is the tentpole's
// regression guarantee for cache peering: when every shard of a K-shard
// tier needs the same static object at once, exactly one fetch crosses
// the border — the key's owner fetches, the other K-1 shards fill from
// the owner — and a second wave is served tier-wide with zero border
// traffic.
func TestShardedTierFetchesSharedObjectOnceAcrossBorder(t *testing.T) {
	const shards = 4
	w := newTestWorld(t, Config{CacheMB: 16, Shards: shards, ShardSiblingFetch: true, ShardRehashOnDeath: true})

	fetchFromEveryShard := func() error {
		wg := w.Env.NewWaitGroup()
		errs := make([]error, shards)
		for i := 0; i < shards; i++ {
			i := i
			wg.Add(1)
			w.Env.Spawn.Go(func() {
				defer wg.Done()
				conn, err := w.Client.DialTCP(w.ShardAddrs[i])
				if err != nil {
					errs[i] = err
					return
				}
				defer conn.Close()
				resp, err := httpsim.NewClientConn(conn).RoundTrip(&httpsim.Request{
					Method: "GET",
					Target: "https://scholar.google.com/static/logo.png",
					Host:   "scholar.google.com",
					Header: map[string]string{},
				})
				if err != nil {
					errs[i] = err
					return
				}
				if resp.StatusCode != 200 || len(resp.Body) == 0 {
					errs[i] = fmt.Errorf("shard %d: %d (%d bytes)", i, resp.StatusCode, len(resp.Body))
				}
			})
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	err := w.Run(func() error {
		if err := fetchFromEveryShard(); err != nil {
			return err
		}
		st := w.tierCacheStats()
		if st.BorderFetches != 1 {
			t.Errorf("first wave crossed the border %d times, want exactly 1", st.BorderFetches)
		}
		if st.SiblingFetches != shards-1 {
			t.Errorf("sibling fetches = %d, want %d (one per non-owner)", st.SiblingFetches, shards-1)
		}
		if st.SiblingErrors != 0 {
			t.Errorf("sibling errors = %d, want 0", st.SiblingErrors)
		}

		// Let upstream teardown finish so it cannot leak into the second
		// wave's border measurement.
		w.Env.Clock.Sleep(5 * time.Second)
		before := w.Border.Stats()
		if err := fetchFromEveryShard(); err != nil {
			return err
		}
		if after := w.Border.Stats(); after != before {
			t.Errorf("second wave crossed the border: %+v -> %+v", before, after)
		}
		if st := w.tierCacheStats(); st.Hits < shards {
			t.Errorf("second wave hits = %d, want >= %d (every shard serves locally)", st.Hits, shards)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardKillRehashesAndRecovers seizes one shard of a four-shard tier
// mid-sweep and checks the coordinated response: the ring reassigns the
// dead shard's key range to survivors, the tier's PAC policy stops
// routing users at it, and visits after the seizure succeed at >= 99%.
func TestShardKillRehashesAndRecovers(t *testing.T) {
	w := NewWorld(shardCellConfig(42, 4, true))
	defer w.Close()

	victimAddr := w.ShardAddrs[1]
	var victimKeys []string
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("https://scholar.google.com:443/cite/%d", i)
		if w.ShardRing.Owner(key) == victimAddr {
			victimKeys = append(victimKeys, key)
		}
	}
	if len(victimKeys) == 0 {
		t.Fatal("victim shard owns none of the probe keys; widen the probe")
	}

	res, err := w.MeasureShardKill(12, 3, 1, cacheStressInterval)
	if err != nil {
		t.Fatal(err)
	}
	if res.VisitsAfter == 0 {
		t.Fatal("no visits started after the seizure")
	}
	if res.SuccessAfter() < 0.99 {
		t.Errorf("post-seizure success = %.3f, want >= 0.99 (failed %d of %d)",
			res.SuccessAfter(), res.FailedAfter, res.VisitsAfter)
	}

	if !w.ShardRing.IsDown(victimAddr) {
		t.Error("ring does not mark the seized shard down")
	}
	for _, key := range victimKeys {
		if o := w.ShardRing.Owner(key); o == victimAddr {
			t.Fatalf("key %q still owned by the dead shard", key)
		}
	}
	for _, addr := range w.Whitelist.Proxies() {
		if addr == victimAddr {
			t.Error("PAC policy still routes users at the seized shard")
		}
	}
}

// TestShardsSweepBorderParity is a miniature of the -fig shards claim:
// a K-shard tier's border traffic stays within ~1.1x of the single-proxy
// deployment, because cache peering keeps each shared object's border
// crossing unique tier-wide.
func TestShardsSweepBorderParity(t *testing.T) {
	measure := func(k int) *ShardsPoint {
		w := NewWorld(shardCellConfig(7, k, false))
		defer w.Close()
		p, err := w.MeasureShards(16, 2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	one := measure(1)
	four := measure(4)
	if one.Failed > 0 || four.Failed > 0 {
		t.Fatalf("failures: one=%d four=%d", one.Failed, four.Failed)
	}
	if limit := float64(one.BorderBytes) * 1.1; float64(four.BorderBytes) > limit {
		t.Errorf("4-shard border bytes %d exceed 1.1x the 1-shard baseline %d",
			four.BorderBytes, one.BorderBytes)
	}
	if four.SiblingFetches == 0 {
		t.Error("4-shard sweep recorded no sibling fetches")
	}
	if one.SiblingFetches != 0 {
		t.Errorf("single-proxy sweep recorded %d sibling fetches", one.SiblingFetches)
	}
}
