package experiments

// Autoscaled-domestic-tier experiment: the sharded tier's shard count
// becomes a control variable. A metrics-driven control loop
// (internal/autoscale) samples the tier — offered sessions/sec, page-load
// p99, cache hit rate — and grows or shrinks the active shard set through
// the Director mid-run: joins pre-seed their owned keys from peers over
// the sibling path (no border stampede), retirements drain keys to the
// survivors. Two schedules exercise it: a flash crowd (calm → 5× surge →
// calm) and a compressed diurnal curve. Each runs three ways — a
// single-shard static tier (under-provisioned at peak), a static tier
// provisioned for the peak (idle off-peak), and the autoscaled tier —
// and the figure reports the frontier both baselines miss: peak-worthy
// p99 at off-peak cost.

import (
	"fmt"
	"strings"
	"time"

	"scholarcloud/internal/autoscale"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/opscost"
)

// autoscaleCadence is the schedules' visit cadence: continuous browsing
// with client content caches cleared every round (as in the cache and
// shards sweeps), so the proxy tier — not the browser cache — absorbs
// the load swings.
const autoscaleCadence = cacheStressInterval

// autoscaleTickInterval is the control loop's sampling period in the
// figure's worlds.
const autoscaleTickInterval = 15 * time.Second

// autoscaleShards is the provisioned tier size: the ceiling the
// autoscaled cells may grow into, and the static peak-provisioned
// baseline's fixed size.
const autoscaleShards = 4

// LoadPhase is one segment of a load schedule: Clients concurrent
// browsers visiting every autoscaleCadence, Rounds visits each. Phases
// run back to back; the offered-load signal steps at each boundary.
type LoadPhase struct {
	Name    string
	Clients int
	Rounds  int
}

// FlashCrowdSchedule is a steady trickle, a sudden 5x surge (a viral
// link, a deadline day), then calm again.
func FlashCrowdSchedule(q Quality) []LoadPhase {
	return scaledPhases(q, []LoadPhase{
		{Name: "calm", Clients: 8, Rounds: 3},
		{Name: "flash", Clients: 40, Rounds: 6},
		{Name: "calm", Clients: 8, Rounds: 4},
	})
}

// DiurnalSchedule compresses a working day of the paper's ~700-user
// population into a ramp-up/peak/ramp-down curve.
func DiurnalSchedule(q Quality) []LoadPhase {
	return scaledPhases(q, []LoadPhase{
		{Name: "night", Clients: 4, Rounds: 2},
		{Name: "morning", Clients: 16, Rounds: 3},
		{Name: "midday", Clients: 32, Rounds: 4},
		{Name: "evening", Clients: 16, Rounds: 3},
		{Name: "night", Clients: 4, Rounds: 3},
	})
}

// scaledPhases stretches each phase's rounds with the quality knob
// (Quick leaves the base schedule, Full lengthens it 1.5x). Phases stay
// long enough for the controller's hysteresis to clear.
func scaledPhases(q Quality, base []LoadPhase) []LoadPhase {
	out := make([]LoadPhase, len(base))
	for i, ph := range base {
		if r := ph.Rounds * q.ScaleRounds / 2; r > ph.Rounds {
			ph.Rounds = r
		}
		out[i] = ph
	}
	return out
}

// autoscaleFigPolicy targets ~12 concurrent clients per shard: 0.75
// utilization of a shard's 16-client (0.8 sessions/sec at the sweep
// cadence) working capacity. Hysteresis and cooldowns are compressed to
// match the compressed schedules; a real deployment would use minutes.
func autoscaleFigPolicy() autoscale.Policy {
	return autoscale.Policy{
		MinShards:           1,
		TargetUtilization:   0.75,
		ShardSessionsPerSec: 16.0 / autoscaleCadence.Seconds(),
		UpAfter:             2,
		DownAfter:           3,
		UpCooldown:          30 * time.Second,
		DownCooldown:        45 * time.Second,
	}
}

// autoscaleCellConfig provisions a k-shard tier; initial > 0 turns the
// autoscaler on with that many shards active at start (the rest parked
// as warm standbys).
func autoscaleCellConfig(seed uint64, k, initial int) Config {
	cfg := shardCellConfig(seed, k, false)
	if initial > 0 {
		cfg.AutoscaleInitial = initial
		cfg.AutoscalePolicy = autoscaleFigPolicy()
		cfg.AutoscaleInterval = autoscaleTickInterval
	}
	return cfg
}

// AutoscalePoint is one (schedule x provisioning mode) cell of the
// autoscale figure.
type AutoscalePoint struct {
	Schedule string
	Mode     string // "static-K" or "autoscaled"
	Visits   int
	Failed   int
	PLT      metrics.Summary
	P99PLT   float64 // seconds
	// BorderBytes is the traffic the border link carried during the
	// schedule (both directions) — scale events included.
	BorderBytes int64
	// MeanShards is the time-weighted active shard count over the
	// schedule; with PeakShards it is the capacity story (a static tier
	// has MeanShards == PeakShards == K).
	MeanShards float64
	PeakShards int
	ScaleUps   int
	ScaleDowns int
	// PerUserUSD prices the day at the paper's workload with fractional
	// VM occupancy: the time-averaged tier size (plus the remote) at the
	// VM day rate, plus metered egress at the measured bytes/access.
	PerUserUSD float64
}

// MeasureAutoscale drives the load schedule against the world's domestic
// tier: each phase publishes its offered load to the autoscaler (inert
// on static worlds) and runs its staggered browsing cohort to
// completion. Reports user experience (PLT mean/p99), border traffic,
// the tier's capacity timeline, and the fractional-VM cost per user.
func (w *World) MeasureAutoscale(schedule string, phases []LoadPhase) (*AutoscalePoint, error) {
	mode := fmt.Sprintf("static-%d", w.shardCount())
	if w.Autoscaler != nil {
		mode = "autoscaled"
	}
	pt := &AutoscalePoint{Schedule: schedule, Mode: mode}
	borderBefore := w.Border.Stats().Bytes
	f := w.Methods()[4] // scholarcloud

	start := w.Env.Clock.Now()
	startActive := w.shardCount()
	if w.Autoscaler != nil {
		startActive = len(w.ShardRing.Up())
	}
	var plts []time.Duration
	for _, ph := range phases {
		w.SetDemand(float64(ph.Clients)/autoscaleCadence.Seconds(), 0)
		results, err := w.runStaggeredClients(f, ph.Clients, ph.Rounds, autoscaleCadence, true)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			pt.Visits++
			if r.failed {
				pt.Failed++
				continue
			}
			plts = append(plts, r.plt)
		}
	}
	w.SetDemand(0, 0)
	end := w.Env.Clock.Now()

	pt.PLT = metrics.SummarizeDurations(plts)
	secs := make([]float64, len(plts))
	for i, d := range plts {
		secs[i] = d.Seconds()
	}
	pt.P99PLT = metrics.Percentile(secs, 0.99)
	pt.BorderBytes = w.Border.Stats().Bytes - borderBefore
	pt.MeanShards, pt.PeakShards, pt.ScaleUps, pt.ScaleDowns = w.shardTimeline(start, end, startActive)

	// Price the day with fractional VM occupancy: a static tier pays K
	// VMs around the clock, the autoscaled tier pays its time-averaged
	// size. The remote VM is always on.
	pricing := opscost.DefaultPricing()
	pricing.VMs = 0
	var perAccess float64
	if pt.Visits > 0 {
		perAccess = float64(pt.BorderBytes) / float64(pt.Visits)
	}
	wl := opscost.PaperWorkload(perAccess)
	traffic := opscost.Estimate(wl, pricing).TotalUSD
	pt.PerUserUSD = (traffic + (pt.MeanShards+1)*pricing.VMPerDay) / float64(wl.DailyUsers)
	return pt, nil
}

// shardTimeline integrates the active shard count over [start, end] from
// the autoscaler's applied decisions (a static world is a constant
// line). Returns the time-weighted mean, the peak, and the event counts.
func (w *World) shardTimeline(start, end time.Time, startActive int) (mean float64, peak, ups, downs int) {
	peak = startActive
	if w.Autoscaler == nil || !end.After(start) {
		return float64(startActive), peak, 0, 0
	}
	prevT, prevK := start, startActive
	var acc float64
	for _, d := range w.Autoscaler.Decisions() {
		if d.Err != nil || d.At.Before(start) || d.At.After(end) {
			continue
		}
		acc += d.At.Sub(prevT).Seconds() * float64(prevK)
		prevT, prevK = d.At, d.To
		if d.To > peak {
			peak = d.To
		}
		if d.To > d.From {
			ups++
		} else {
			downs++
		}
	}
	acc += end.Sub(prevT).Seconds() * float64(prevK)
	return acc / end.Sub(start).Seconds(), peak, ups, downs
}

func autoscaleRow(p *AutoscalePoint) string {
	return fmt.Sprintf("  %-9s %-11s %-7d %-10s %-10s %-11d %-7s %-7d %-5d %-6d %-10s %d\n",
		p.Schedule, p.Mode, p.Visits,
		metrics.FormatSeconds(p.PLT.Mean), metrics.FormatSeconds(p.P99PLT),
		p.BorderBytes/1024,
		fmt.Sprintf("%.2f", p.MeanShards), p.PeakShards, p.ScaleUps, p.ScaleDowns,
		fmt.Sprintf("$%.4f", p.PerUserUSD), p.Failed)
}

func autoscaleHeaderRow() string {
	return fmt.Sprintf("  %-9s %-11s %-7s %-10s %-10s %-11s %-7s %-7s %-5s %-6s %-10s %s\n",
		"schedule", "mode", "visits", "mean-PLT", "p99-PLT", "border-KB", "avg-K", "peak-K", "ups", "downs", "$/user", "failed")
}

const autoscaleTitle = "Autoscaled domestic tier — metrics-driven shard scaling under time-varying load (ScholarCloud, continuous browsing)\n"

// autoscaleVariants is the provisioning axis each schedule runs under.
func autoscaleVariants() []struct {
	Label   string
	Shards  int
	Initial int // 0 = static tier, no controller
} {
	return []struct {
		Label   string
		Shards  int
		Initial int
	}{
		{"static-1", 1, 0},
		{fmt.Sprintf("static-%d", autoscaleShards), autoscaleShards, 0},
		{"autoscaled", autoscaleShards, 1},
	}
}

// ReportAutoscale renders the autoscale experiment sequentially: both
// schedules under each provisioning mode.
func ReportAutoscale(seed uint64, q Quality) (string, error) {
	var b strings.Builder
	b.WriteString(autoscaleTitle)
	b.WriteString(autoscaleHeaderRow())
	for _, sc := range []struct {
		name   string
		phases []LoadPhase
	}{{"flash", FlashCrowdSchedule(q)}, {"diurnal", DiurnalSchedule(q)}} {
		for _, v := range autoscaleVariants() {
			w := NewWorld(autoscaleCellConfig(seed, v.Shards, v.Initial))
			p, err := w.MeasureAutoscale(sc.name, sc.phases)
			w.Close()
			if err != nil {
				return "", err
			}
			b.WriteString(autoscaleRow(p))
		}
	}
	return b.String(), nil
}

// autoscalePlan re-cells ReportAutoscale for the parallel sweep runner:
// one world per (schedule, provisioning mode).
func autoscalePlan(q Quality) figurePlan {
	schedules := []struct {
		name   string
		phases []LoadPhase
	}{
		{"flash", FlashCrowdSchedule(q)},
		{"diurnal", DiurnalSchedule(q)},
	}
	var cells []cell
	for _, sc := range schedules {
		sc := sc
		load := 0
		for _, ph := range sc.phases {
			load += ph.Clients * ph.Rounds
		}
		for _, v := range autoscaleVariants() {
			v := v
			cells = append(cells, cell{
				Label:  fmt.Sprintf("%s %s", sc.name, v.Label),
				Worlds: 1,
				Weight: 100 + load + v.Shards,
				Run: func(seed uint64) (cellResult, error) {
					w := NewWorld(autoscaleCellConfig(seed, v.Shards, v.Initial))
					defer w.Close()
					p, err := w.MeasureAutoscale(sc.name, sc.phases)
					if err != nil {
						return cellResult{}, err
					}
					return settledResult(w, autoscaleRow(p),
						namedValue{Name: "p99-plt", Value: p.P99PLT, Unit: "s"},
						namedValue{Name: "avg-shards", Value: p.MeanShards, Unit: ""},
						namedValue{Name: "per-user", Value: p.PerUserUSD, Unit: ""})
				},
			})
		}
	}
	return figurePlan{
		Name:  "autoscale",
		Title: "Autoscaled domestic tier — metrics-driven shard scaling",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			b.WriteString(autoscaleTitle)
			b.WriteString(autoscaleHeaderRow())
			b.WriteString(concatRows(rs))
			return b.String()
		},
	}
}
