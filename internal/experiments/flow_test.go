package experiments

import (
	"math"
	"reflect"
	"testing"
)

// borderTotal sums both directions of a world's border traffic so far.
func borderTotal(w *World) int64 {
	st := w.Border.Stats()
	return st.DirBytes[0] + st.DirBytes[1]
}

// TestFlowMatchesPacketSmallN pins the flow-level approximation against
// the packet-level truth at sizes where both are affordable: for each
// cell, one world runs the full packet-mode cohort and a second world
// (same seed) runs the same cohort in flow mode. Mean PLT must agree
// within 10% and total border bytes within 5% — the validation contract
// that justifies trusting flow mode where packet mode is unaffordable.
func TestFlowMatchesPacketSmallN(t *testing.T) {
	const (
		rounds  = 2
		sampled = 4
		seed    = 2017
	)
	for _, n := range []int{16, 30, 48} {
		n := n
		t.Run(fmtClients(n), func(t *testing.T) {
			wp := NewWorld(Config{Seed: seed})
			defer wp.Close()
			fp, _ := wp.FactoryByName("scholarcloud")
			before := borderTotal(wp)
			packet, err := wp.MeasureScalability(fp, n, rounds)
			if err != nil {
				t.Fatalf("packet mode: %v", err)
			}
			packetBytes := borderTotal(wp) - before
			if packet.Failed > 0 {
				t.Fatalf("packet mode: %d failed visits", packet.Failed)
			}

			wf := NewWorld(Config{Seed: seed})
			defer wf.Close()
			ff, _ := wf.FactoryByName("scholarcloud")
			flow, err := wf.MeasureFlowScalability(ff, n, rounds, sampled)
			if err != nil {
				t.Fatalf("flow mode: %v", err)
			}
			if flow.Failed > 0 {
				t.Fatalf("flow mode: %d failed sampled visits", flow.Failed)
			}
			if flow.Saturated {
				t.Errorf("flow mode reports saturation at n=%d", n)
			}

			if rel := relDiff(flow.PLT.Mean, packet.PLT.Mean); rel > 0.10 {
				t.Errorf("mean PLT: flow %.3fs vs packet %.3fs (%.1f%% apart, want <=10%%)",
					flow.PLT.Mean, packet.PLT.Mean, 100*rel)
			}
			if rel := relDiff(float64(flow.BorderBytes), float64(packetBytes)); rel > 0.05 {
				t.Errorf("border bytes: flow %d vs packet %d (%.1f%% apart, want <=5%%)",
					flow.BorderBytes, packetBytes, 100*rel)
			}
		})
	}
}

func fmtClients(n int) string { return "n=" + itoa(n) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestFlowSaturationDetection checks the analytic overload report: a
// cohort far beyond a single remote's capacity must be flagged as
// saturated, with a required-remotes floor above the deployment's
// actual tier size, while the sampled clients still complete (slowly —
// the processor-sharing clamp, not a hang).
func TestFlowSaturationDetection(t *testing.T) {
	w := NewWorld(Config{Seed: 2017})
	defer w.Close()
	f, _ := w.FactoryByName("scholarcloud")
	p, err := w.MeasureFlowScalability(f, 50_000, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Saturated {
		t.Errorf("50k-client cohort on a single remote not flagged saturated (remote util %.2f)",
			p.RemoteUtilization)
	}
	if p.RemoteUtilization < 1 {
		t.Errorf("remote utilization = %.2f, want >= 1", p.RemoteUtilization)
	}
	if p.RequiredRemotes <= len(w.flowRemoteHosts()) {
		t.Errorf("RequiredRemotes = %d, want > deployed %d", p.RequiredRemotes, len(w.flowRemoteHosts()))
	}
	if p.Failed > 0 {
		t.Errorf("%d sampled visits failed under saturation clamp", p.Failed)
	}
	if p.PLT.Mean <= p.Demand.SubPLT.Seconds() {
		t.Errorf("saturated sampled PLT mean %.3fs not above unloaded calibration PLT %.3fs",
			p.PLT.Mean, p.Demand.SubPLT.Seconds())
	}

	// The load must be withdrawn after the measurement: a fresh visit
	// runs at unloaded speed again.
	if up, down := w.Border.BackgroundLoad(); up != 0 || down != 0 {
		t.Errorf("background border load not reset: up=%f down=%f", up, down)
	}
}

// TestFlowScaleDeterminism runs the scale figure at -parallel 1 and 3
// and requires byte-identical output and identical merged metrics — the
// same worker-count-independence contract every other figure honors.
func TestFlowScaleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full scale-figure sweeps")
	}
	var base *SweepResult
	for _, workers := range []int{1, 3} {
		res, err := RunSweep(SweepOptions{
			Seed:    2017,
			Workers: workers,
			Quality: Quick(),
			Figures: []string{"scale"},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Output != base.Output {
			t.Errorf("workers=3 scale output differs from workers=1:\n--- w1 ---\n%s\n--- w3 ---\n%s",
				base.Output, res.Output)
		}
		if !reflect.DeepEqual(res.Obs, base.Obs) {
			t.Error("workers=3 merged obs snapshot differs from workers=1")
		}
	}
}
