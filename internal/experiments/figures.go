package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/tunnel"
)

// scholarURL is the page the paper's workload requests every 60 seconds.
// It is the plain-HTTP form, so every access exercises the TCP-2 HTTPS
// redirection of Fig. 4 (§4.2: "send HTTP requests for the home page").
const scholarURL = "http://scholar.google.com/"

// mirrorURL is the identical page on the uncensored mirror, standing in
// for the paper's direct-from-the-US baseline.
const mirrorURL = "http://scholar-mirror.example/"

// visitInterval is the workload cadence.
const visitInterval = 60 * time.Second

// preconnector is implemented by methods whose users keep the tunnel
// established before browsing (VPNs); prepare connects them outside the
// measured page loads. Tor deliberately does not match: its circuit
// construction is part of the paper's first-time PLT.
type preconnector interface{ Connect() error }

// prepare pre-establishes a method's tunnel when that reflects real
// usage. It must run on a managed goroutine.
func prepare(m tunnel.Method) error {
	if c, ok := m.(preconnector); ok {
		return c.Connect()
	}
	return nil
}

// Factory builds one access method bound to a client host.
type Factory struct {
	Name string
	// URL is what the browser visits through this method (the mirror for
	// the direct baseline, Scholar for everything else).
	URL string
	// New creates a fresh method instance on host h.
	New func(h *netsim.Host) tunnel.Method
	// ExtraPLRHosts lists additional NICs where this method's censored
	// traffic is observed (ScholarCloud's tunnel terminates at the
	// domestic proxy, not the client).
	ExtraPLRHosts []*netsim.Host
}

// Methods returns the five studied access methods (Fig. 2), plus the
// uncensored direct baseline used by Figs. 5c and 6a.
func (w *World) Methods() []Factory {
	return []Factory{
		{
			Name: "native-vpn",
			URL:  scholarURL,
			New:  func(h *netsim.Host) tunnel.Method { return w.NativeVPN(h) },
		},
		{
			Name: "openvpn",
			URL:  scholarURL,
			New:  func(h *netsim.Host) tunnel.Method { return w.OpenVPN(h) },
		},
		{
			Name: "tor",
			URL:  scholarURL,
			New:  func(h *netsim.Host) tunnel.Method { return w.Tor(h) },
		},
		{
			Name: "shadowsocks",
			URL:  scholarURL,
			New:  func(h *netsim.Host) tunnel.Method { return w.Shadowsocks(h) },
		},
		{
			Name:          "scholarcloud",
			URL:           scholarURL,
			New:           func(h *netsim.Host) tunnel.Method { return w.ScholarCloud(h) },
			ExtraPLRHosts: []*netsim.Host{w.SCDomestic},
		},
	}
}

// FactoryByName resolves a method name to its factory, including the
// "direct-us" baseline. The second return is false for unknown names.
func (w *World) FactoryByName(name string) (Factory, bool) {
	if name == "direct-us" {
		return w.DirectBaseline(), true
	}
	for _, f := range w.Methods() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// DirectBaseline is the uncensored reference measurement.
func (w *World) DirectBaseline() Factory {
	return Factory{
		Name: "direct-us",
		URL:  mirrorURL,
		New:  func(h *netsim.Host) tunnel.Method { return w.Direct(h) },
	}
}

// --- Fig. 5a: page load time ---------------------------------------------

// PLTResult is one method's Fig. 5a datapoint.
type PLTResult struct {
	Method     string
	FirstTime  metrics.Summary // seconds
	Subsequent metrics.Summary // seconds
}

// MeasurePLT runs the paper's workload: firstRuns independent first-time
// loads (fresh caches, fresh tunnels where the method builds them
// lazily), then one stack performing subsequentSamples loads at the 60 s
// cadence.
func (w *World) MeasurePLT(f Factory, firstRuns, subsequentSamples int) (*PLTResult, error) {
	res := &PLTResult{Method: f.Name}
	var firsts, subs []time.Duration

	err := w.Run(func() error {
		for r := 0; r < firstRuns; r++ {
			method := f.New(w.Client)
			if err := prepare(method); err != nil {
				return fmt.Errorf("%s prepare: %w", f.Name, err)
			}
			browser := w.newBrowser(method)
			st := browser.Visit(f.URL)
			if st.Failed {
				method.Close()
				return fmt.Errorf("%s first visit: %w", f.Name, st.Err)
			}
			firsts = append(firsts, st.PLT)
			if r < firstRuns-1 {
				method.Close()
				w.Env.Clock.Sleep(visitInterval)
				continue
			}
			// Continue with this stack for the subsequent series.
			for i := 0; i < subsequentSamples; i++ {
				w.Env.Clock.Sleep(visitInterval - st.PLT)
				st = browser.Visit(f.URL)
				if st.Failed {
					method.Close()
					return fmt.Errorf("%s subsequent visit %d: %w", f.Name, i, st.Err)
				}
				subs = append(subs, st.PLT)
			}
			method.Close()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.FirstTime = metrics.SummarizeDurations(firsts)
	res.Subsequent = metrics.SummarizeDurations(subs)
	return res, nil
}

// --- Fig. 5b: round-trip time ---------------------------------------------

// RTTResult is one method's Fig. 5b datapoint.
type RTTResult struct {
	Method string
	RTT    metrics.Summary // seconds
}

// MeasureRTT opens one tunneled connection to the origin's echo service
// and measures application-level round trips (the network-efficiency
// metric of Fig. 5b).
func (w *World) MeasureRTT(f Factory, probes int) (*RTTResult, error) {
	res := &RTTResult{Method: f.Name}
	var rtts []time.Duration

	host := "scholar.google.com"
	if f.Name == "direct-us" {
		host = "scholar-mirror.example"
	}
	err := w.Run(func() error {
		method := f.New(w.Client)
		defer method.Close()
		if err := prepare(method); err != nil {
			return fmt.Errorf("%s prepare: %w", f.Name, err)
		}
		conn, err := method.DialHost(host, portEcho)
		if err != nil {
			return fmt.Errorf("%s echo dial: %w", f.Name, err)
		}
		defer conn.Close()
		buf := make([]byte, 32)
		for i := 0; i < probes; i++ {
			start := w.Env.Clock.Now()
			if _, err := conn.Write(buf); err != nil {
				return err
			}
			if _, err := io.ReadFull(conn, buf); err != nil {
				return err
			}
			rtt := w.Env.Clock.Now().Sub(start)
			if i > 0 { // skip the cold round (slow-start artifacts)
				rtts = append(rtts, rtt)
			}
			w.Env.Clock.Sleep(time.Second)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.RTT = metrics.SummarizeDurations(rtts)
	return res, nil
}

// --- Fig. 5c: packet loss rate ---------------------------------------------

// PLRResult is one method's Fig. 5c datapoint.
type PLRResult struct {
	Method string
	PLR    float64
	// Packets is the sample size behind the estimate.
	Packets int64
}

// MeasurePLR runs the visit workload while counting packets on the NICs
// that carry the method's censored traffic.
func (w *World) MeasurePLR(f Factory, visits int) (*PLRResult, error) {
	hosts := append([]*netsim.Host{w.Client}, f.ExtraPLRHosts...)
	err := w.Run(func() error {
		method := f.New(w.Client)
		defer method.Close()
		if err := prepare(method); err != nil {
			return fmt.Errorf("%s prepare: %w", f.Name, err)
		}
		browser := w.newBrowser(method)
		// Warm up (tunnel establishment, first-visit extras), then reset
		// counters so only steady-state traffic is sampled.
		if st := browser.Visit(f.URL); st.Failed {
			return fmt.Errorf("%s warmup: %w", f.Name, st.Err)
		}
		for _, h := range hosts {
			h.ResetStats()
		}
		for i := 0; i < visits; i++ {
			w.Env.Clock.Sleep(visitInterval)
			// Full-page fetches give the loss estimator a usable sample
			// size per visit.
			browser.ClearContentCache()
			if st := browser.Visit(f.URL); st.Failed {
				return fmt.Errorf("%s visit %d: %w", f.Name, i, st.Err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var lost, total int64
	for _, h := range hosts {
		st := h.Stats()
		lost += st.LostOutbound + st.LostInbound
		total += st.TxPackets + st.RxPackets + st.LostInbound
	}
	res := &PLRResult{Method: f.Name, Packets: total}
	if total > 0 {
		res.PLR = float64(lost) / float64(total)
	}
	return res, nil
}

// --- Fig. 6a: client traffic ------------------------------------------------

// TrafficResult is one method's Fig. 6a datapoint.
type TrafficResult struct {
	Method         string
	BytesPerAccess float64
	Accesses       int
}

// MeasureTraffic counts client NIC bytes (headers included, both
// directions) across full 60-second access windows, so keepalive and
// polling overheads are attributed the way a packet capture would.
func (w *World) MeasureTraffic(f Factory, visits int) (*TrafficResult, error) {
	err := w.Run(func() error {
		method := f.New(w.Client)
		defer method.Close()
		if err := prepare(method); err != nil {
			return fmt.Errorf("%s prepare: %w", f.Name, err)
		}
		browser := w.newBrowser(method)
		if st := browser.Visit(f.URL); st.Failed {
			return fmt.Errorf("%s warmup: %w", f.Name, st.Err)
		}
		w.Env.Clock.Sleep(visitInterval)
		w.Client.ResetStats()
		for i := 0; i < visits; i++ {
			// The paper's per-access traffic is for a full page fetch;
			// drop the content cache so each access transfers everything.
			browser.ClearContentCache()
			if st := browser.Visit(f.URL); st.Failed {
				return fmt.Errorf("%s visit %d: %w", f.Name, i, st.Err)
			}
			w.Env.Clock.Sleep(visitInterval)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	st := w.Client.Stats()
	return &TrafficResult{
		Method:         f.Name,
		BytesPerAccess: float64(st.TxBytes+st.RxBytes) / float64(visits),
		Accesses:       visits,
	}, nil
}

// --- Fig. 7: scalability ------------------------------------------------------

// ScalabilityPoint is one (method, concurrency) cell of Fig. 7.
type ScalabilityPoint struct {
	Method  string
	Clients int
	PLT     metrics.Summary // seconds
	Failed  int
}

// MeasureScalability runs n concurrent clients, each performing `rounds`
// visits at the 60-second cadence with staggered start offsets, and
// reports the mean PLT across all visits.
func (w *World) MeasureScalability(f Factory, n, rounds int) (*ScalabilityPoint, error) {
	return w.measureScalabilityAt(f, n, rounds, visitInterval, false)
}

// measureScalabilityAt is MeasureScalability with a configurable visit
// cadence; the fleet experiment uses a continuous-browsing cadence to
// expose remote-side capacity that Fig. 7's 60 s think time hides.
// clearCache drops each browser's content cache before every visit, so
// every round re-fetches the full page — the shared-cache experiment uses
// it to keep client-side caching from masking proxy-side caching.
func (w *World) measureScalabilityAt(f Factory, n, rounds int, cadence time.Duration, clearCache bool) (*ScalabilityPoint, error) {
	point := &ScalabilityPoint{Method: f.Name, Clients: n}
	results, err := w.runStaggeredClients(f, n, rounds, cadence, clearCache)
	if err != nil {
		return nil, err
	}
	var plts []time.Duration
	for _, r := range results {
		if r.failed {
			point.Failed++
			continue
		}
		plts = append(plts, r.plt)
	}
	point.PLT = metrics.SummarizeDurations(plts)
	return point, nil
}

// visitResult is one browser visit's outcome inside a staggered cohort.
type visitResult struct {
	plt    time.Duration
	failed bool
}

// runStaggeredClients runs n concurrent packet-level clients, each
// performing `rounds` visits at the given cadence with arrival offsets
// staggered uniformly across one cadence interval. It is the shared
// engine behind the packet-mode scalability figures and the sampled
// tracing clients of the flow-level mode.
func (w *World) runStaggeredClients(f Factory, n, rounds int, cadence time.Duration, clearCache bool) ([]visitResult, error) {
	var mu sync.Mutex
	var results []visitResult

	err := w.Run(func() error {
		wg := w.Env.NewWaitGroup()
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			w.Env.Spawn.Go(func() {
				defer wg.Done()
				h := w.newScaleClient(i)
				method := f.New(h)
				defer method.Close()
				if err := prepare(method); err != nil {
					mu.Lock()
					results = append(results, visitResult{failed: true})
					mu.Unlock()
					return
				}
				browser := w.newBrowser(method)
				// Stagger arrivals uniformly across the interval.
				w.Env.Clock.Sleep(time.Duration(i) * cadence / time.Duration(n))
				for r := 0; r < rounds; r++ {
					if clearCache {
						browser.ClearContentCache()
					}
					st := browser.Visit(f.URL)
					mu.Lock()
					results = append(results, visitResult{plt: st.PLT, failed: st.Failed})
					mu.Unlock()
					sleep := cadence - st.PLT
					if sleep > 0 {
						w.Env.Clock.Sleep(sleep)
					}
				}
			})
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// scaleClients caches client hosts across sweep points so repeated
// concurrency levels reuse machines.
func (w *World) newScaleClient(i int) *netsim.Host {
	ip := fmt.Sprintf("10.3.%d.%d", 2+i/200, i%200+1)
	if h := w.Net.HostByIP(ip); h != nil {
		return h
	}
	return w.Net.AddHost(fmt.Sprintf("scale-client-%d", i), ip, w.Cernet, accessLink())
}

// ScalabilitySweep is Fig. 7's x-axis.
var ScalabilitySweep = []int{5, 15, 30, 60, 90, 120, 150, 180}

// --- Fig. 4: session structure -----------------------------------------------

// SessionStructure is the per-method connection anatomy of Fig. 4.
type SessionStructure struct {
	Method string
	// TCP1 is the Shadowsocks-only authentication connection.
	TCP1 bool
	// TCP2 is the HTTP→HTTPS redirection connection.
	TCP2 bool
	// TCP3 is the data exchange (always present).
	TCP3 bool
	// TCP4 is the first-visit account recording connection.
	TCP4 bool
	// SubsequentTCP4 reports whether TCP-4 recurs on later visits
	// (it must not).
	SubsequentTCP4 bool
}

// MeasureSessionStructure performs a first and a subsequent visit and
// reports which of Fig. 4's connections appeared.
func (w *World) MeasureSessionStructure(f Factory) (*SessionStructure, error) {
	out := &SessionStructure{Method: f.Name, TCP3: true}
	err := w.Run(func() error {
		method := f.New(w.Client)
		defer method.Close()
		if err := prepare(method); err != nil {
			return fmt.Errorf("%s prepare: %w", f.Name, err)
		}

		authBefore := w.SSServer.Stats().AuthConns
		browser := w.newBrowser(method)
		first := browser.Visit(f.URL)
		if first.Failed {
			return fmt.Errorf("%s first visit: %w", f.Name, first.Err)
		}
		out.TCP1 = w.SSServer.Stats().AuthConns > authBefore
		out.TCP2 = first.Redirects > 0
		out.TCP4 = first.AccountRecorded

		w.Env.Clock.Sleep(visitInterval)
		second := browser.Visit(f.URL)
		if second.Failed {
			return fmt.Errorf("%s second visit: %w", f.Name, second.Err)
		}
		out.SubsequentTCP4 = second.AccountRecorded
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- Extension: the full-tunnel domestic-latency penalty (§1) -----------------

// DomesticPenalty compares PLT for a domestic site accessed directly
// versus through the full-tunnel native VPN, quantifying the paper's
// claim that VPNs "significantly increase access latency to domestic
// Internet services".
func (w *World) DomesticPenalty() (direct, viaVPN time.Duration, err error) {
	const url = "http://www.tsinghua.edu.cn/"
	err = w.Run(func() error {
		d := w.Direct(w.Client)
		b := w.newBrowser(d)
		if st := b.Visit(url); st.Failed {
			return fmt.Errorf("direct domestic visit: %w", st.Err)
		}
		st := b.Visit(url)
		if st.Failed {
			return fmt.Errorf("direct domestic revisit: %w", st.Err)
		}
		direct = st.PLT

		v := w.NativeVPN(w.Client)
		defer v.Close()
		if err := prepare(v); err != nil {
			return err
		}
		bv := w.newBrowser(v)
		if st := bv.Visit(url); st.Failed {
			return fmt.Errorf("vpn domestic visit: %w", st.Err)
		}
		st = bv.Visit(url)
		if st.Failed {
			return fmt.Errorf("vpn domestic revisit: %w", st.Err)
		}
		viaVPN = st.PLT
		return nil
	})
	return direct, viaVPN, err
}
