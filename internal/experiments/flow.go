package experiments

// flow.go is the flow-level client mode: a cohort of identical browsers
// modeled as fluid load (an arrival rate × a calibrated per-visit
// resource demand) plus a small set of real packet-level clients sampled
// from the cohort. The fluid share consumes border bandwidth and server
// CPU analytically — netsim serializes sampled packets at the residual
// bandwidth and inflates sampled compute by the processor-sharing factor
// — so a world can carry a million-client cohort for the cost of
// simulating a handful of packet clients. That is what lets the scale
// figure sweep 1k → 1M clients; the flow-vs-packet equivalence test
// pins the approximation against the packet-level truth at small N.

import (
	"fmt"
	"math"
	"strings"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netsim"
)

// FlowDemand is the calibrated per-visit resource demand of one marginal
// cohort member: border bytes by direction and server CPU by tier, split
// into the first (account setup, cold caches) and subsequent visit
// shapes of the paper's workload.
type FlowDemand struct {
	FirstBytesUp   int64 // CN→US border bytes, first visit
	FirstBytesDown int64 // US→CN border bytes, first visit
	SubBytesUp     int64
	SubBytesDown   int64
	FirstRemoteCPU time.Duration
	SubRemoteCPU   time.Duration
	FirstDomestic  time.Duration
	SubDomestic    time.Duration
	FirstPLT       time.Duration
	SubPLT         time.Duration
}

// avgBytes returns the cohort's per-visit border bytes (up, down)
// averaged over a `rounds`-visit session (one first visit, the rest
// subsequent).
func (d FlowDemand) avgBytes(rounds int) (up, down float64) {
	r := float64(rounds)
	up = (float64(d.FirstBytesUp) + (r-1)*float64(d.SubBytesUp)) / r
	down = (float64(d.FirstBytesDown) + (r-1)*float64(d.SubBytesDown)) / r
	return up, down
}

// avgCPU returns the cohort's per-visit CPU demand on a tier averaged
// over a `rounds`-visit session.
func avgCPU(first, sub time.Duration, rounds int) float64 {
	r := float64(rounds)
	return (first.Seconds() + (r-1)*sub.Seconds()) / r
}

// FlowPoint is one cell of the flow-level scalability figure.
type FlowPoint struct {
	Method  string
	Clients int // cohort size (fluid + sampled)
	Sampled int // packet-level clients sampled from the cohort
	Rounds  int

	// PLT and Failed summarize the sampled clients' visits, which ran
	// under the cohort's fluid load.
	PLT    metrics.Summary // seconds
	Failed int

	// Demand is the calibrated marginal per-visit demand the fluid share
	// was scaled from.
	Demand FlowDemand

	// Utilizations are the analytic offered-load fractions the cohort
	// imposes: border is the max over directions of fluid bytes/sec over
	// link capacity; the tier utilizations are per-host CPU demand
	// (arrival rate × per-visit CPU / tier size).
	BorderUtilization   float64
	RemoteUtilization   float64
	DomesticUtilization float64
	// RequiredRemotes is the analytic floor on remote-proxy count for the
	// remote tier to keep utilization under 1 at this cohort size.
	RequiredRemotes int
	// Saturated reports that some resource's offered load is ≥ 1: the
	// deployment cannot serve this cohort at the workload cadence, and
	// the sampled PLTs show the (clamped) overload response.
	Saturated bool

	// BorderBytes is the cohort's total border traffic for the session:
	// measured for the sampled clients, demand-scaled for the fluid rest.
	BorderBytes    int64
	BytesPerClient float64
}

// flowRemoteHosts is the remote-proxy CPU tier the fluid cohort loads.
func (w *World) flowRemoteHosts() []*netsim.Host {
	hosts := []*netsim.Host{w.SCRemoteHost}
	return append(hosts, w.fleetRemoteHosts...)
}

// flowDomesticHosts is the domestic-proxy CPU tier.
func (w *World) flowDomesticHosts() []*netsim.Host {
	if len(w.ShardHosts) > 0 {
		return w.ShardHosts
	}
	return []*netsim.Host{w.SCDomestic}
}

func sumCPUBusy(hosts []*netsim.Host) time.Duration {
	var total time.Duration
	for _, h := range hosts {
		total += h.Stats().CPUBusy
	}
	return total
}

func borderDelta(before, after netsim.LinkStats) (up, down int64) {
	return after.DirBytes[0] - before.DirBytes[0], after.DirBytes[1] - before.DirBytes[1]
}

// flowVisitPair runs one client session — a first visit and one
// subsequent visit at the workload cadence — on host h and, when d is
// non-nil, records the border-byte and tier-CPU deltas of each visit.
// Must run inside a Run window.
func (w *World) flowVisitPair(f Factory, h *netsim.Host, d *FlowDemand) error {
	remote, domestic := w.flowRemoteHosts(), w.flowDomesticHosts()
	method := f.New(h)
	defer method.Close()
	if err := prepare(method); err != nil {
		return fmt.Errorf("%s prepare: %w", f.Name, err)
	}
	browser := w.newBrowser(method)

	visit := func(up, down *int64, rcpu, dcpu, plt *time.Duration) error {
		b0 := w.Border.Stats()
		r0, d0 := sumCPUBusy(remote), sumCPUBusy(domestic)
		st := browser.Visit(f.URL)
		if st.Failed {
			return fmt.Errorf("%s calibration visit: %w", f.Name, st.Err)
		}
		if d != nil {
			*up, *down = borderDelta(b0, w.Border.Stats())
			*rcpu = sumCPUBusy(remote) - r0
			*dcpu = sumCPUBusy(domestic) - d0
			*plt = st.PLT
		}
		if sleep := visitInterval - st.PLT; sleep > 0 {
			w.Env.Clock.Sleep(sleep)
		}
		return nil
	}
	var sink FlowDemand
	if d == nil {
		d = &sink
	}
	if err := visit(&d.FirstBytesUp, &d.FirstBytesDown, &d.FirstRemoteCPU, &d.FirstDomestic, &d.FirstPLT); err != nil {
		return err
	}
	return visit(&d.SubBytesUp, &d.SubBytesDown, &d.SubRemoteCPU, &d.SubDomestic, &d.SubPLT)
}

// MeasureFlowScalability measures one cohort of n identical clients in
// flow mode: `sampled` of them run as real packet-level clients (the
// same staggered workload as MeasureScalability), the other n−sampled
// as fluid load calibrated from a marginal client's measured demand.
//
// The calibration runs two dedicated client sessions first: a warm-up
// session that pays the cohort's one-time costs (cache fill, account
// infrastructure), then a marginal session whose measured border bytes
// and tier CPU are the fluid per-client demand — in a cached world this
// is the warm-cache marginal cost, which is what every cohort member
// but the first actually pays. The fluid load is then imposed on the
// border link (residual-bandwidth sharing) and the proxy tiers
// (processor-sharing inflation) for the sampled phase, and removed
// afterwards.
func (w *World) MeasureFlowScalability(f Factory, n, rounds, sampled int) (*FlowPoint, error) {
	if rounds < 1 {
		rounds = 1
	}
	if sampled <= 0 {
		sampled = 3
	}
	if sampled > n {
		sampled = n
	}
	point := &FlowPoint{Method: f.Name, Clients: n, Sampled: sampled, Rounds: rounds}

	// Calibration. Client indices `sampled` and `sampled+1` keep the
	// calibration hosts disjoint from the sampled clients' hosts.
	err := w.Run(func() error {
		if err := w.flowVisitPair(f, w.newScaleClient(sampled), nil); err != nil {
			return fmt.Errorf("flow warm-up: %w", err)
		}
		if err := w.flowVisitPair(f, w.newScaleClient(sampled+1), &point.Demand); err != nil {
			return fmt.Errorf("flow calibration: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Fluid share: arrival rate × calibrated demand, spread over the
	// serving tiers.
	m := n - sampled
	lambda := float64(m) / visitInterval.Seconds()
	remote, domestic := w.flowRemoteHosts(), w.flowDomesticHosts()
	upBps, downBps := 0.0, 0.0
	if m > 0 {
		avgUp, avgDown := point.Demand.avgBytes(rounds)
		upBps, downBps = lambda*avgUp, lambda*avgDown
		if bw := w.Border.Config().Bandwidth; bw > 0 {
			point.BorderUtilization = math.Max(upBps, downBps) / bw
		}
		remoteCPU := avgCPU(point.Demand.FirstRemoteCPU, point.Demand.SubRemoteCPU, rounds)
		domesticCPU := avgCPU(point.Demand.FirstDomestic, point.Demand.SubDomestic, rounds)
		point.RemoteUtilization = lambda * remoteCPU / float64(len(remote))
		point.DomesticUtilization = lambda * domesticCPU / float64(len(domestic))
		point.RequiredRemotes = int(math.Ceil(lambda * remoteCPU))
		if point.RequiredRemotes < 1 {
			point.RequiredRemotes = 1
		}
	}
	point.Saturated = point.BorderUtilization >= 1 ||
		point.RemoteUtilization >= 1 || point.DomesticUtilization >= 1

	w.Border.SetBackgroundLoad(upBps, downBps)
	for _, h := range remote {
		h.SetBackgroundUtilization(point.RemoteUtilization)
	}
	for _, h := range domestic {
		h.SetBackgroundUtilization(point.DomesticUtilization)
	}
	defer func() {
		w.Border.SetBackgroundLoad(0, 0)
		for _, h := range remote {
			h.SetBackgroundUtilization(0)
		}
		for _, h := range domestic {
			h.SetBackgroundUtilization(0)
		}
	}()

	// Sampled phase: real packet-level clients riding the loaded world.
	before := w.Border.Stats()
	results, err := w.runStaggeredClients(f, sampled, rounds, visitInterval, false)
	if err != nil {
		return nil, err
	}
	up, down := borderDelta(before, w.Border.Stats())

	var plts []time.Duration
	for _, r := range results {
		if r.failed {
			point.Failed++
			continue
		}
		plts = append(plts, r.plt)
	}
	point.PLT = metrics.SummarizeDurations(plts)

	// Border accounting: measured bytes for the sampled clients plus
	// demand-scaled bytes for the fluid share.
	perFluid := float64(point.Demand.FirstBytesUp+point.Demand.FirstBytesDown) +
		float64(rounds-1)*float64(point.Demand.SubBytesUp+point.Demand.SubBytesDown)
	point.BorderBytes = up + down + int64(float64(m)*perFluid)
	if n > 0 {
		point.BytesPerClient = float64(point.BorderBytes) / float64(n)
	}
	return point, nil
}

// --- The scale figure ------------------------------------------------------

// flowDeployment is the deployment ladder the scale figure provisions per
// cohort size: the paper's single remote for small cohorts, then a
// remote fleet, then fleet plus shared cache (which moves repeat traffic
// off the border — without it no deployment fits a large cohort behind
// a 10×access border link).
func flowDeployment(n int) (fleetRemotes, cacheMB int, label string) {
	switch {
	case n <= 2_000:
		return 0, 0, "classic"
	case n <= 20_000:
		return 8, 0, "fleet-8"
	case n <= 200_000:
		return 32, 64, "fleet-32+cache"
	default:
		return 64, 64, "fleet-64+cache"
	}
}

// scalePlan is the flow-mode scalability figure: one cell per cohort
// size, each in its own world against the ladder's deployment for that
// size. Saturated rows are the figure's point, not a failure: the
// analytic utilizations say what the cohort demands (and how many
// remotes it would take), and the sampled clients show the overload
// response.
func scalePlan(q Quality) figurePlan {
	sweep := q.FlowSweep
	var cells []cell
	for _, n := range sweep {
		n := n
		remotes, cacheMB, label := flowDeployment(n)
		cells = append(cells, cell{
			Label:  fmt.Sprintf("n=%d %s", n, label),
			Worlds: 1,
			Weight: 100 + n/100,
			Run: func(seed uint64) (cellResult, error) {
				w := NewWorld(Config{
					Seed:         seed,
					FleetRemotes: remotes,
					CacheMB:      cacheMB,
					RunGuard:     sweepRunGuard,
				})
				defer w.Close()
				f, _ := w.FactoryByName("scholarcloud")
				p, err := w.MeasureFlowScalability(f, n, q.ScaleRounds, q.FlowSampled)
				if err != nil {
					return cellResult{}, err
				}
				plt := metrics.FormatSeconds(p.PLT.Mean)
				if p.Failed > 0 {
					plt += fmt.Sprintf("(%df)", p.Failed)
				}
				note := ""
				if p.Saturated {
					note = fmt.Sprintf("SATURATED (needs >=%d remotes)", p.RequiredRemotes)
				}
				row := fmt.Sprintf("  %-9d %-15s %-12s %-10s %6.1f%%  %6.1f%%  %-10s %s\n",
					p.Clients, label, plt, metrics.FormatSeconds(p.PLT.P95),
					100*p.BorderUtilization, 100*p.RemoteUtilization,
					metrics.FormatKB(p.BytesPerClient), note)
				return settledResult(w, row,
					namedValue{Name: "plt", Value: p.PLT.Mean, Unit: "s"},
					namedValue{Name: "kb-per-client", Value: p.BytesPerClient, Unit: "KB"},
					namedValue{Name: "remote-util", Value: 100 * p.RemoteUtilization, Unit: "%"})
			},
		})
	}
	return figurePlan{
		Name:  "scale",
		Title: "Scale — flow-level cohorts, 1k to 1M clients",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			fmt.Fprintf(&b, "Scale — flow-level client cohorts (ScholarCloud; %d sampled packet-level clients per cohort)\n",
				q.FlowSampled)
			fmt.Fprintf(&b, "  %-9s %-15s %-12s %-10s %-8s %-8s %-10s %s\n",
				"clients", "deployment", "mean-PLT", "p95-PLT", "border", "remote", "KB/client", "note")
			b.WriteString(concatRows(rs))
			return b.String()
		},
	}
}
