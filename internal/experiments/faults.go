package experiments

import (
	"fmt"
	"strings"
	"time"

	"scholarcloud/internal/faults"
	"scholarcloud/internal/metrics"
)

// faultsStressInterval is the per-client revisit cadence under fault
// injection — the same continuous-browsing pressure as the fleet and
// cache sweeps, compressed from the paper's 60 s so every fault window
// catches page loads in flight.
const faultsStressInterval = 20 * time.Second

// faultsClients is the concurrent-client load every fault scenario runs
// under.
const faultsClients = 24

// faultsRemotes sizes the remote fleet in fault worlds: two remotes, so a
// primary takedown leaves exactly one survivor for hedged failover.
const faultsRemotes = 2

// FaultsResult is one (scenario, resilience) cell of the faults figure.
type FaultsResult struct {
	Scenario   string
	Resilience bool
	Clients    int
	PLT        metrics.Summary // seconds, successful visits only
	Visits     int
	Failed     int
}

// SuccessRate is the fraction of page loads that completed.
func (r *FaultsResult) SuccessRate() float64 {
	if r.Visits == 0 {
		return 0
	}
	return 1 - float64(r.Failed)/float64(r.Visits)
}

// MeasureFaults runs n concurrent ScholarCloud clients for `rounds` visit
// rounds while the world's configured fault scenario executes on the
// virtual clock. The script is armed at the load's first virtual instant,
// so event offsets are relative to the start of the measurement window.
func (w *World) MeasureFaults(n, rounds int) (*FaultsResult, error) {
	if err := w.Run(func() error { w.InjectFaults(); return nil }); err != nil {
		return nil, err
	}
	p, err := w.measureScalabilityAt(w.Methods()[4], n, rounds, faultsStressInterval, false)
	if err != nil {
		return nil, err
	}
	return &FaultsResult{
		Scenario:   w.Cfg.FaultScenario,
		Resilience: w.Cfg.Resilience,
		Clients:    n,
		PLT:        p.PLT,
		Visits:     p.PLT.N + p.Failed,
		Failed:     p.Failed,
	}, nil
}

// faultsRow formats one scenario × resilience row.
func faultsRow(r *FaultsResult) string {
	mode := "off"
	if r.Resilience {
		mode = "on"
	}
	return fmt.Sprintf("  %-20s %-11s %-10s %-10s %-8d %-8d %.1f%%\n",
		r.Scenario, mode,
		metrics.FormatSeconds(r.PLT.Mean), metrics.FormatSeconds(r.PLT.P95),
		r.Visits, r.Failed, 100*r.SuccessRate())
}

// faultsHeader formats the figure's preamble and column header.
func faultsHeader(rounds int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Faults & resilience (%d clients, %d remotes, %d rounds at %s cadence)\n",
		faultsClients, faultsRemotes, rounds, metrics.FormatSeconds(faultsStressInterval.Seconds()))
	fmt.Fprintf(&b, "  %-20s %-11s %-10s %-10s %-8s %-8s %s\n",
		"scenario", "resilience", "plt(mean)", "plt(p95)", "visits", "failed", "success")
	return b.String()
}

// ReportFaults renders the faults figure sequentially (the single-process
// counterpart of faultsPlan, used by the Report* path).
func ReportFaults(seed uint64, q Quality) (string, error) {
	rounds := q.ScaleRounds + 1
	var b strings.Builder
	b.WriteString(faultsHeader(rounds))
	for _, scenario := range faults.Scenarios() {
		for _, resil := range []bool{false, true} {
			w := NewWorld(Config{
				Seed:          seed,
				FleetRemotes:  faultsRemotes,
				FaultScenario: scenario,
				Resilience:    resil,
			})
			r, err := w.MeasureFaults(faultsClients, rounds)
			if err != nil {
				w.Close()
				return "", err
			}
			b.WriteString(faultsRow(r))
			w.Close()
		}
	}
	return b.String(), nil
}

// faultsPlan decomposes the faults figure for the parallel harness: one
// world per (scenario, resilience) cell, every cell deterministic, merged
// in declaration order.
func faultsPlan(q Quality) figurePlan {
	rounds := q.ScaleRounds + 1
	var cells []cell
	cells = append(cells, cell{
		Label: "header",
		Run: func(uint64) (cellResult, error) {
			return cellResult{Row: faultsHeader(rounds)}, nil
		},
	})
	for _, scenario := range faults.Scenarios() {
		for _, resil := range []bool{false, true} {
			scenario, resil := scenario, resil
			mode := "off"
			if resil {
				mode = "on"
			}
			cells = append(cells, cell{
				Label:  fmt.Sprintf("%s resilience=%s", scenario, mode),
				Worlds: 1,
				Weight: 100 + faultsClients,
				Run: func(seed uint64) (cellResult, error) {
					w := NewWorld(Config{
						Seed:          seed,
						FleetRemotes:  faultsRemotes,
						FaultScenario: scenario,
						Resilience:    resil,
						RunGuard:      sweepRunGuard,
					})
					defer w.Close()
					r, err := w.MeasureFaults(faultsClients, rounds)
					if err != nil {
						return cellResult{}, err
					}
					return settledResult(w, faultsRow(r),
						namedValue{Name: "success", Value: 100 * r.SuccessRate(), Unit: "%"},
						namedValue{Name: "plt", Value: r.PLT.Mean, Unit: "s"})
				},
			})
		}
	}
	return figurePlan{
		Name:   "faults",
		Title:  "Fault injection & client resilience",
		Cells:  cells,
		Render: concatRows,
	}
}
