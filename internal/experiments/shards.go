package experiments

// Sharded-domestic-tier experiment: what happens when the single domestic
// proxy becomes K shards behind the PAC file's client-side assignment.
// Each user hashes onto one shard, so no shard sees every user — but a
// shard that misses on a static object asks the key's owning peer before
// crossing the border, so the tier as a whole still fetches each shared
// object across the border once. The sweep reports what users feel (PLT),
// what the border carries (bytes), and what the tier costs per served
// user at 1/2/4/8 shards; a separate episode seizes one shard mid-sweep
// and checks that its users land on the survivors.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"scholarcloud/internal/cache"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/opscost"
)

// shardSweepClients is the sweep's fixed load. The shard axis is the
// variable under study; 48 clients is enough that every shard of an
// 8-way tier still serves several users.
const shardSweepClients = 48

// shardSweepCounts is the shard axis of the sweep.
var shardSweepCounts = []int{1, 2, 4, 8}

// ShardsPoint is one shard-count cell of the sweep.
type ShardsPoint struct {
	Shards  int
	Clients int
	PLT     metrics.Summary
	Failed  int
	// BorderBytes is the traffic the border link carried during the
	// sweep (both directions).
	BorderBytes int64
	// Tier-wide cache activity during the sweep (summed over shards).
	Hits           int64
	SiblingFetches int64
	BorderFetches  int64
	// PerUserUSD prices the tier at the paper's workload (700 daily
	// users, 20 accesses each at the sweep's measured bytes/access)
	// on K domestic VMs plus the remote.
	PerUserUSD float64
}

// shardCount reports how many domestic shards the world runs (1 for the
// classic single-proxy worlds).
func (w *World) shardCount() int {
	if w.Cfg.Shards > 1 {
		return w.Cfg.Shards
	}
	return 1
}

// tierCacheStats sums cache counters across the domestic tier; on
// single-proxy worlds it is the lone cache's snapshot.
func (w *World) tierCacheStats() cache.Stats {
	if len(w.ShardCaches) > 0 {
		var total cache.Stats
		for _, cc := range w.ShardCaches {
			s := cc.Snapshot()
			total.Hits += s.Hits
			total.Misses += s.Misses
			total.Coalesced += s.Coalesced
			total.Revalidated += s.Revalidated
			total.SiblingFetches += s.SiblingFetches
			total.SiblingErrors += s.SiblingErrors
			total.BorderFetches += s.BorderFetches
		}
		return total
	}
	if w.Cache != nil {
		return w.Cache.Snapshot()
	}
	return cache.Stats{}
}

// MeasureShards runs n concurrent ScholarCloud clients for `rounds`
// continuous-browsing visits (client content caches cleared each round,
// as in MeasureCacheLoad) and reports PLT, border traffic, tier-wide
// cache activity, and the cost per served user at this shard count.
func (w *World) MeasureShards(n, rounds int) (*ShardsPoint, error) {
	borderBefore := w.Border.Stats()
	before := w.tierCacheStats()

	p, err := w.measureScalabilityAt(w.Methods()[4], n, rounds, cacheStressInterval, true)
	if err != nil {
		return nil, err
	}

	after := w.tierCacheStats()
	point := &ShardsPoint{
		Shards:         w.shardCount(),
		Clients:        n,
		PLT:            p.PLT,
		Failed:         p.Failed,
		BorderBytes:    w.Border.Stats().Bytes - borderBefore.Bytes,
		Hits:           after.Hits - before.Hits,
		SiblingFetches: after.SiblingFetches - before.SiblingFetches,
		BorderFetches:  after.BorderFetches - before.BorderFetches,
	}

	// Price the tier: K domestic VMs plus the one remote, at the paper's
	// population browsing with the sweep's measured per-access border
	// traffic.
	pricing := opscost.DefaultPricing()
	pricing.VMs = point.Shards + 1
	visits := p.PLT.N + p.Failed
	var perAccess float64
	if visits > 0 {
		perAccess = float64(point.BorderBytes) / float64(visits)
	}
	point.PerUserUSD = opscost.Estimate(opscost.PaperWorkload(perAccess), pricing).PerUserUSD
	return point, nil
}

// ShardKillResult classifies a load sweep's visits around a mid-sweep
// shard seizure.
type ShardKillResult struct {
	Shards  int
	Clients int
	Victim  int
	KillAt  time.Duration // offset of the seizure from sweep start
	PLT     metrics.Summary

	// Visit/failure counts by when the visit started, relative to the
	// seizure. Unlike a fleet takedown there is no detection window: the
	// director marks the shard down the instant its listener dies, and
	// the next PAC evaluation routes its users to the survivors.
	VisitsBefore, FailedBefore int
	VisitsAfter, FailedAfter   int

	// SiblingErrors counts peer fetches that failed during the run —
	// mostly requests to the dead owner before the ring rehashed.
	SiblingErrors int64
}

// SuccessAfter is the post-seizure success rate in [0, 1].
func (r *ShardKillResult) SuccessAfter() float64 {
	if r.VisitsAfter == 0 {
		return 1
	}
	return float64(r.VisitsAfter-r.FailedAfter) / float64(r.VisitsAfter)
}

// MeasureShardKill runs n concurrent ScholarCloud clients for `rounds`
// continuous-browsing visits each and seizes domestic shard `victim` at
// killAt. The world must have been built with Cfg.Shards >= 2; the
// victim must not be shard 0 (it hosts the PAC web endpoint, which real
// deployments would serve from every shard or a separate box).
func (w *World) MeasureShardKill(n, rounds, victim int, killAt time.Duration) (*ShardKillResult, error) {
	if w.ShardDirector == nil {
		return nil, fmt.Errorf("experiments: world has no shard tier (Config.Shards < 2)")
	}
	if victim <= 0 || victim >= len(w.ShardAddrs) {
		return nil, fmt.Errorf("experiments: shard-kill victim %d out of range (want 1..%d)", victim, len(w.ShardAddrs)-1)
	}
	res := &ShardKillResult{
		Shards:  w.Cfg.Shards,
		Clients: n,
		Victim:  victim,
		KillAt:  killAt,
	}
	siblingErrBefore := w.tierCacheStats().SiblingErrors
	f := w.Methods()[4] // scholarcloud
	type visit struct {
		start  time.Duration // offset from sweep start
		plt    time.Duration
		failed bool
	}
	var mu sync.Mutex
	var visits []visit

	err := w.Run(func() error {
		t0 := w.Env.Clock.Now()
		w.Env.Spawn.Go(func() {
			w.Env.Clock.Sleep(killAt)
			w.KillShard(victim)
		})
		wg := w.Env.NewWaitGroup()
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			w.Env.Spawn.Go(func() {
				defer wg.Done()
				h := w.newScaleClient(i)
				method := f.New(h)
				defer method.Close()
				if err := prepare(method); err != nil {
					return
				}
				browser := w.newBrowser(method)
				w.Env.Clock.Sleep(time.Duration(i) * cacheStressInterval / time.Duration(n))
				for r := 0; r < rounds; r++ {
					browser.ClearContentCache()
					start := w.Env.Clock.Now().Sub(t0)
					st := browser.Visit(f.URL)
					mu.Lock()
					visits = append(visits, visit{start: start, plt: st.PLT, failed: st.Failed})
					mu.Unlock()
					if sleep := cacheStressInterval - st.PLT; sleep > 0 {
						w.Env.Clock.Sleep(sleep)
					}
				}
			})
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.SiblingErrors = w.tierCacheStats().SiblingErrors - siblingErrBefore
	var plts []time.Duration
	for _, v := range visits {
		if v.start < killAt {
			res.VisitsBefore++
			if v.failed {
				res.FailedBefore++
			}
		} else {
			res.VisitsAfter++
			if v.failed {
				res.FailedAfter++
			}
		}
		if !v.failed {
			plts = append(plts, v.plt)
		}
	}
	res.PLT = metrics.SummarizeDurations(plts)
	return res, nil
}

func shardsRow(p *ShardsPoint) string {
	return fmt.Sprintf("  %-8d %-10d %-10s %-10s %-11d %-8d %-9d %-9d %-10s %d\n",
		p.Shards, p.Clients,
		metrics.FormatSeconds(p.PLT.Mean), metrics.FormatSeconds(p.PLT.P95),
		p.BorderBytes/1024, p.Hits, p.SiblingFetches, p.BorderFetches,
		fmt.Sprintf("$%.4f", p.PerUserUSD), p.Failed)
}

func shardsHeaderRow() string {
	return fmt.Sprintf("  %-8s %-10s %-10s %-10s %-11s %-8s %-9s %-9s %-10s %s\n",
		"shards", "clients", "mean-PLT", "p95-PLT", "border-KB", "hits", "sibling", "border-f", "$/user", "failed")
}

const shardsTitle = "Sharded domestic tier — PAC-assigned shards with cache peering (ScholarCloud, continuous browsing)\n"

func shardKillSection(res *ShardKillResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nShard seized during load (%d clients, %d shards; shard %d seized at t=%s)\n",
		res.Clients, res.Shards, res.Victim, metrics.FormatSeconds(res.KillAt.Seconds()))
	fmt.Fprintf(&b, "  %-28s %-8s %s\n", "visits started", "count", "failed")
	fmt.Fprintf(&b, "  %-28s %-8d %d\n", "before seizure", res.VisitsBefore, res.FailedBefore)
	fmt.Fprintf(&b, "  %-28s %-8d %d\n", "after seizure", res.VisitsAfter, res.FailedAfter)
	fmt.Fprintf(&b, "  %-28s %.1f%%\n", "post-seizure success", 100*res.SuccessAfter())
	fmt.Fprintf(&b, "  %-28s %d\n", "sibling fetch errors", res.SiblingErrors)
	if res.SuccessAfter() < 0.99 {
		fmt.Fprintf(&b, "  WARNING: post-seizure success below 99%%\n")
	}
	return b.String()
}

// ReportShards renders the sharded-tier experiment sequentially: the
// 1/2/4/8-shard sweep at a fixed load, then the shard-seizure episode.
func ReportShards(seed uint64, q Quality) (string, error) {
	var b strings.Builder
	b.WriteString(shardsTitle)
	b.WriteString(shardsHeaderRow())
	for _, k := range shardSweepCounts {
		w := NewWorld(shardCellConfig(seed, k, false))
		p, err := w.MeasureShards(shardSweepClients, q.ScaleRounds)
		w.Close()
		if err != nil {
			return "", err
		}
		b.WriteString(shardsRow(p))
	}
	w := NewWorld(shardCellConfig(seed, 4, true))
	defer w.Close()
	res, err := w.MeasureShardKill(shardSweepClients, q.ScaleRounds+1, 1, cacheStressInterval)
	if err != nil {
		return "", err
	}
	b.WriteString(shardKillSection(res))
	return b.String(), nil
}

// shardCellConfig builds the sweep's world configuration for k shards.
// The cache is always on (the tier requires it); resilience rides along
// on the seizure episode so in-flight visits retry onto survivors.
func shardCellConfig(seed uint64, k int, resilience bool) Config {
	return Config{
		Seed:               seed,
		CacheMB:            cacheSweepMB,
		Shards:             k,
		ShardSiblingFetch:  k > 1,
		ShardRehashOnDeath: k > 1,
		Resilience:         resilience,
		RunGuard:           sweepRunGuard,
	}
}

// shardsPlan re-cells ReportShards for the parallel sweep runner: one
// world per shard count plus the seizure episode.
func shardsPlan(q Quality) figurePlan {
	var cells []cell
	for _, k := range shardSweepCounts {
		k := k
		cells = append(cells, cell{
			Label:  fmt.Sprintf("shards=%d n=%d", k, shardSweepClients),
			Worlds: 1,
			Weight: 100 + shardSweepClients + k,
			Run: func(seed uint64) (cellResult, error) {
				w := NewWorld(shardCellConfig(seed, k, false))
				defer w.Close()
				p, err := w.MeasureShards(shardSweepClients, q.ScaleRounds)
				if err != nil {
					return cellResult{}, err
				}
				return settledResult(w, shardsRow(p),
					namedValue{Name: "plt", Value: p.PLT.Mean, Unit: "s"},
					namedValue{Name: "border-kb", Value: float64(p.BorderBytes) / 1024, Unit: "KB"},
					namedValue{Name: "per-user", Value: p.PerUserUSD, Unit: ""})
			},
		})
	}
	cells = append(cells, cell{
		Label:  "shard-kill",
		Worlds: 1,
		Weight: 100 + shardSweepClients,
		Run: func(seed uint64) (cellResult, error) {
			w := NewWorld(shardCellConfig(seed, 4, true))
			defer w.Close()
			res, err := w.MeasureShardKill(shardSweepClients, q.ScaleRounds+1, 1, cacheStressInterval)
			if err != nil {
				return cellResult{}, err
			}
			return settledResult(w, shardKillSection(res),
				namedValue{Name: "success-after", Value: 100 * res.SuccessAfter(), Unit: "%"})
		},
	})
	return figurePlan{
		Name:  "shards",
		Title: "Sharded domestic tier — PAC-assigned shards with cache peering",
		Cells: cells,
		Render: func(rs []cellResult) string {
			var b strings.Builder
			b.WriteString(shardsTitle)
			b.WriteString(shardsHeaderRow())
			b.WriteString(concatRows(rs))
			return b.String()
		},
	}
}
