package experiments

import (
	"sync"
	"testing"
	"time"

	"scholarcloud/internal/cache"
	"scholarcloud/internal/httpsim"
)

// TestAutoscaleFlashCrowdWalksFrontier is the subsystem's acceptance
// gate: under a flash-crowd schedule the autoscaled tier must serve
// >= 99% of visits, keep p99 PLT within 1.5x of a statically
// over-provisioned tier, cost strictly less per user than it, and reach
// its peak without stampeding the border (<= 1.1x the bytes a single
// always-on proxy moves for the same schedule).
func TestAutoscaleFlashCrowdWalksFrontier(t *testing.T) {
	const seed = 2017
	phases := FlashCrowdSchedule(Quick())
	run := func(k, initial int) *AutoscalePoint {
		t.Helper()
		w := NewWorld(autoscaleCellConfig(seed, k, initial))
		defer w.Close()
		p, err := w.MeasureAutoscale("flash", phases)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	single := run(1, 0)
	static := run(autoscaleShards, 0)
	scaled := run(autoscaleShards, 1)

	if succ := float64(scaled.Visits-scaled.Failed) / float64(scaled.Visits); succ < 0.99 {
		t.Errorf("autoscaled success rate = %.3f, want >= 0.99", succ)
	}
	if scaled.ScaleUps == 0 {
		t.Error("flash crowd triggered no scale-up")
	}
	if scaled.PeakShards <= 1 {
		t.Errorf("autoscaled peak = %d shards, want > 1", scaled.PeakShards)
	}
	if scaled.P99PLT > 1.5*static.P99PLT {
		t.Errorf("autoscaled p99 PLT = %.2fs, want <= 1.5x the static-%d tier's %.2fs",
			scaled.P99PLT, autoscaleShards, static.P99PLT)
	}
	if scaled.PerUserUSD >= static.PerUserUSD {
		t.Errorf("autoscaled $/user = %.4f, want strictly below the static-%d tier's %.4f",
			scaled.PerUserUSD, autoscaleShards, static.PerUserUSD)
	}
	if limit := int64(1.1 * float64(single.BorderBytes)); scaled.BorderBytes > limit {
		t.Errorf("autoscaled border bytes = %d, want <= 1.1x the single-proxy %d",
			scaled.BorderBytes, single.BorderBytes)
	}
}

// TestAdmitShardPreseedsWithoutBorderStampede checks the warm-up
// contract: a standby joining the ring pulls every key it is about to
// own from the current owners over the sibling path, and the border
// link carries zero bytes for it.
func TestAdmitShardPreseedsWithoutBorderStampede(t *testing.T) {
	w := NewWorld(Config{
		Seed:               11,
		CacheMB:            cacheSweepMB,
		Shards:             3,
		ShardSiblingFetch:  true,
		ShardRehashOnDeath: true,
		AutoscaleInitial:   2,
		AutoscaleInterval:  time.Hour, // controller stays idle for this test
		RunGuard:           sweepRunGuard,
	})
	defer w.Close()
	if got := len(w.ShardRing.Up()); got != 2 {
		t.Fatalf("active shards at start = %d, want 2 (shard 2 parked as standby)", got)
	}

	// Populate the active shards' caches.
	f := w.Methods()[4]
	if _, err := w.runStaggeredClients(f, 12, 2, cacheStressInterval, true); err != nil {
		t.Fatal(err)
	}

	borderBefore := w.Border.Stats().Bytes
	var preseeded int
	if err := w.Run(func() error {
		preseeded = w.AdmitShard(2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if preseeded == 0 {
		t.Fatal("warm-up pre-seeded no keys")
	}
	if delta := w.Border.Stats().Bytes - borderBefore; delta != 0 {
		t.Errorf("warm-up moved %d bytes across the border, want 0", delta)
	}
	if got := len(w.ShardRing.Up()); got != 3 {
		t.Errorf("active shards after admit = %d, want 3", got)
	}
	if got := len(w.ShardCaches[2].Keys()); got < preseeded {
		t.Errorf("joiner holds %d fresh keys, want >= the %d pre-seeded", got, preseeded)
	}
}

// TestRetireShardDrainsWithoutBorderRefetch retires a shard in the
// middle of a browsing sweep: in-flight sessions must finish (the
// listener stays open), and afterwards every fresh key the leaver held
// must be a warm hit at its new owner — served without touching the
// border.
func TestRetireShardDrainsWithoutBorderRefetch(t *testing.T) {
	w := NewWorld(shardCellConfig(13, 3, false))
	defer w.Close()
	f := w.Methods()[4]
	if _, err := w.runStaggeredClients(f, 12, 2, cacheStressInterval, true); err != nil {
		t.Fatal(err)
	}
	if len(w.ShardCaches[2].Keys()) == 0 {
		t.Fatal("shard 2 holds no keys after the populate phase")
	}

	const clients, rounds = 12, 3
	var mu sync.Mutex
	visits, failed, handed := 0, 0, 0
	if err := w.Run(func() error {
		w.Env.Spawn.Go(func() {
			w.Env.Clock.Sleep(30 * time.Second)
			handed = w.RetireShard(2)
		})
		wg := w.Env.NewWaitGroup()
		for i := 0; i < clients; i++ {
			i := i
			wg.Add(1)
			w.Env.Spawn.Go(func() {
				defer wg.Done()
				h := w.newScaleClient(i)
				method := f.New(h)
				defer method.Close()
				if err := prepare(method); err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					return
				}
				browser := w.newBrowser(method)
				w.Env.Clock.Sleep(time.Duration(i) * cacheStressInterval / clients)
				for r := 0; r < rounds; r++ {
					browser.ClearContentCache()
					st := browser.Visit(f.URL)
					mu.Lock()
					visits++
					if st.Failed {
						failed++
					}
					mu.Unlock()
					if sleep := cacheStressInterval - st.PLT; sleep > 0 {
						w.Env.Clock.Sleep(sleep)
					}
				}
			})
		}
		wg.Wait()
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if failed > 0 {
		t.Errorf("%d of %d visits failed across the retirement; draining must let sessions finish", failed, visits)
	}
	if handed == 0 {
		t.Error("retirement handed no keys to the survivors")
	}
	if !w.ShardRing.IsDown(w.ShardAddrs[2]) {
		t.Error("shard 2 still live after retirement")
	}

	// Every key still fresh at the leaver was fresh when it retired, so
	// the drain must have copied it: its new owner serves it as a cache
	// hit with the border fetcher refusing to fire.
	leaverKeys := w.ShardCaches[2].Keys()
	if len(leaverKeys) == 0 {
		t.Fatal("no fresh keys left at the leaver to verify the handoff with")
	}
	if err := w.Run(func() error {
		for _, key := range leaverKeys {
			oi := w.shardIndexOf(w.ShardRing.Owner(key))
			if oi < 0 || oi == 2 {
				t.Fatalf("key %q still owned by the retired shard", key)
			}
			resp, outcome, err := w.ShardCaches[oi].FetchLocal(key, func(map[string]string) (*httpsim.Response, error) {
				return nil, errWarmupNoBorder
			})
			if err != nil || resp == nil || outcome != cache.Hit {
				t.Errorf("key %q at shard %d: outcome %v err %v, want a warm hit after the drain", key, oi, outcome, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
