package experiments

import (
	"testing"
	"time"
)

func TestFleetWorldServesScholar(t *testing.T) {
	w := newTestWorld(t, Config{FleetRemotes: 2})
	st := visitOnce(t, w, w.ScholarCloud(w.Client), scholarURL)
	if st.Failed {
		t.Fatalf("fleet-backed ScholarCloud visit failed: %v", st.Err)
	}
	if ep := w.Domestic.Stats().Endpoint; ep != "fleet" {
		t.Errorf("domestic endpoint = %q, want fleet", ep)
	}
	fs := w.Fleet.Stats()
	if len(fs.Endpoints) != 2 || fs.Healthy() != 2 {
		t.Errorf("fleet stats = %+v", fs)
	}
}

func TestFleetRotationKeepsWorking(t *testing.T) {
	w := newTestWorld(t, Config{FleetRemotes: 2})
	m := w.ScholarCloud(w.Client)
	if st := visitOnce(t, w, m, scholarURL); st.Failed {
		t.Fatalf("visit before rotation failed: %v", st.Err)
	}
	w.RotateBlinding(9)
	if st := visitOnce(t, w, m, scholarURL); st.Failed {
		t.Fatalf("visit after rotation failed: %v", st.Err)
	}
}

func TestFleetTakedownUnderLoad(t *testing.T) {
	w := newTestWorld(t, Config{FleetRemotes: 2})
	res, err := w.MeasureFleetTakedown(6, 3, 0, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.VisitsAfter == 0 {
		t.Fatalf("no visits observed after the ejection window: %+v", res)
	}
	if res.FailedAfter != 0 {
		t.Errorf("%d/%d visits failed after the ejection window", res.FailedAfter, res.VisitsAfter)
	}
	if st := w.Fleet.Stats(); st.Endpoints[0].Healthy {
		t.Error("seized remote still marked healthy after the sweep")
	}
}

func TestFleetTakedownRequiresFleet(t *testing.T) {
	w := newTestWorld(t, Config{})
	if _, err := w.MeasureFleetTakedown(1, 1, 0, time.Second); err == nil {
		t.Fatal("takedown measurement ran without a fleet")
	}
}

func TestEnforcementBlockMarksFleetEndpointsDown(t *testing.T) {
	w := newTestWorld(t, Config{FleetRemotes: 2})
	reg, ok := w.Registry.Lookup(ipDomestic)
	if !ok {
		t.Fatal("ScholarCloud is not registered")
	}
	err := w.Run(func() error {
		// A revocation blocks every registered endpoint IP; the OnBlock
		// chain must rotate the fleet off them immediately.
		return w.Enforcement.Revoke(reg.ICPNumber, "policy change")
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Fleet.Stats().Healthy(); n != 0 {
		t.Errorf("%d fleet endpoints still healthy after revocation", n)
	}
}
