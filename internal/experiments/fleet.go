package experiments

// Fleet-scalability experiment: what the paper's two-VM manual-standby
// deployment becomes when the domestic proxy runs against an
// internal/fleet pool of remote proxies. Two questions:
//
//  1. Capacity — does adding remotes buy page-load time at high client
//     concurrency? (Under continuous browsing the legacy deployment's
//     lone blinded carrier is the bottleneck: every user's streams share
//     one TCP connection, and its queue diverges past ~120 clients.)
//  2. Resilience — when a remote is seized mid-sweep (its listener and
//     carriers die without notice), do users see failures beyond the
//     prober's detection window?

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"scholarcloud/internal/metrics"
)

// fleetStressInterval is the fleet sweep's visit cadence. Fig. 7's 60 s
// think time leaves the remote side a few percent utilized even at 120
// clients (the paper's scalability claim), so pool capacity only shows
// at a heavier cadence: at 20 s per visit the legacy deployment's lone
// blinded carrier saturates near 120 clients (head-of-line queueing
// across every user's streams), and past that each remote's carrier
// pool becomes the limit, so added remotes lower PLT.
const fleetStressInterval = 20 * time.Second

// MeasureFleetScalability sweeps ScholarCloud under continuous browsing
// (every client revisits as soon as the cadence allows). Unlike
// MeasureFleetTakedown it runs on fleet-less worlds too, giving the
// single-remote baseline the fleet rows are compared against.
func (w *World) MeasureFleetScalability(n, rounds int) (*ScalabilityPoint, error) {
	return w.measureScalabilityAt(w.Methods()[4], n, rounds, fleetStressInterval, false)
}

// fleetEjectionWindow bounds how long a silent takedown can go unnoticed:
// EjectAfter (fleet default 2) probe rounds plus one probe timeout. Page
// loads that *start* inside the window may race the detection; anything
// after it must succeed.
const fleetEjectionWindow = 2*fleetProbeInterval + fleetProbeTimeout

// FleetTakedownResult classifies a load sweep's visits around a mid-sweep
// remote takedown.
type FleetTakedownResult struct {
	Remotes int
	Clients int
	KillAt  time.Duration // offset of the takedown from sweep start
	Window  time.Duration // ejection window after the takedown
	PLT     metrics.Summary

	// Visit/failure counts by when the visit started: before the
	// takedown, inside the ejection window, and after it.
	VisitsBefore, FailedBefore int
	VisitsWindow, FailedWindow int
	VisitsAfter, FailedAfter   int
}

// MeasureFleetTakedown runs n concurrent ScholarCloud clients for
// `rounds` visits each and seizes fleet remote `victim` at killAt.
// The world must have been built with Cfg.FleetRemotes >= 2.
func (w *World) MeasureFleetTakedown(n, rounds, victim int, killAt time.Duration) (*FleetTakedownResult, error) {
	if w.Fleet == nil {
		return nil, fmt.Errorf("experiments: world has no fleet (Config.FleetRemotes is 0)")
	}
	res := &FleetTakedownResult{
		Remotes: w.Cfg.FleetRemotes,
		Clients: n,
		KillAt:  killAt,
		Window:  fleetEjectionWindow,
	}
	f := w.Methods()[4] // scholarcloud
	type visit struct {
		start  time.Duration // offset from sweep start
		plt    time.Duration
		failed bool
	}
	var mu sync.Mutex
	var visits []visit

	err := w.Run(func() error {
		t0 := w.Env.Clock.Now()
		w.Env.Spawn.Go(func() {
			w.Env.Clock.Sleep(killAt)
			w.TakedownFleetRemote(victim)
		})
		wg := w.Env.NewWaitGroup()
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			w.Env.Spawn.Go(func() {
				defer wg.Done()
				h := w.newScaleClient(i)
				method := f.New(h)
				defer method.Close()
				if err := prepare(method); err != nil {
					return
				}
				browser := w.newBrowser(method)
				w.Env.Clock.Sleep(time.Duration(i) * visitInterval / time.Duration(n))
				for r := 0; r < rounds; r++ {
					start := w.Env.Clock.Now().Sub(t0)
					st := browser.Visit(f.URL)
					mu.Lock()
					visits = append(visits, visit{start: start, plt: st.PLT, failed: st.Failed})
					mu.Unlock()
					if sleep := visitInterval - st.PLT; sleep > 0 {
						w.Env.Clock.Sleep(sleep)
					}
				}
			})
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		return nil, err
	}

	var plts []time.Duration
	for _, v := range visits {
		switch {
		case v.start < killAt:
			res.VisitsBefore++
			if v.failed {
				res.FailedBefore++
			}
		case v.start < killAt+fleetEjectionWindow:
			res.VisitsWindow++
			if v.failed {
				res.FailedWindow++
			}
		default:
			res.VisitsAfter++
			if v.failed {
				res.FailedAfter++
			}
		}
		if !v.failed {
			plts = append(plts, v.plt)
		}
	}
	res.PLT = metrics.SummarizeDurations(plts)
	return res, nil
}

// ReportFleet renders the fleet-scalability experiment: a Fig. 7-style
// PLT-vs-clients sweep under continuous browsing at 1/2/4 fleet remotes
// plus the legacy single-session path as baseline, then a
// takedown-during-load run. Each point builds its own world so the
// fleets do not share state.
//
// The legacy deployment only appears at the base load: past it, the lone
// carrier's queue diverges and the sweep never completes (measured — it
// trips the simulation's wall-clock guard), which is itself the result.
func ReportFleet(seed uint64, q Quality) (string, error) {
	var b strings.Builder
	// Loads are fixed rather than quality-scaled: 120 clients is where the
	// legacy deployment saturates, and 4× that is where a one-remote fleet
	// visibly trails a four-remote one. Quality only sets rounds.
	const clients = 120

	measure := func(remotes, n int) (*ScalabilityPoint, error) {
		w := NewWorld(Config{Seed: seed, FleetRemotes: remotes})
		defer w.Close()
		return w.MeasureFleetScalability(n, q.ScaleRounds)
	}
	label := func(remotes int) string {
		if remotes == 0 {
			return "single (legacy)"
		}
		return fmt.Sprintf("fleet, %d remote(s)", remotes)
	}

	fmt.Fprintf(&b, "Fleet — remote-proxy pool scalability (ScholarCloud, continuous browsing)\n")
	fmt.Fprintf(&b, "  %-10s %-18s %-10s %-10s %-8s %s\n",
		"clients", "deployment", "mean-PLT", "p95-PLT", "failed", "visits")
	for _, load := range []int{clients, 2 * clients, 4 * clients} {
		for _, remotes := range []int{0, 1, 2, 4} {
			if remotes == 0 && load > clients {
				fmt.Fprintf(&b, "  %-10d %-18s %s\n", load, label(0),
					"(does not complete: single-carrier queue diverges)")
				continue
			}
			p, err := measure(remotes, load)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "  %-10d %-18s %-10s %-10s %-8d %d\n", load, label(remotes),
				metrics.FormatSeconds(p.PLT.Mean), metrics.FormatSeconds(p.PLT.P95),
				p.Failed, p.PLT.N)
		}
	}

	// Takedown under load: seize the primary remote mid-sweep.
	w := NewWorld(Config{Seed: seed, FleetRemotes: 4})
	defer w.Close()
	killAt := visitInterval / 2
	res, err := w.MeasureFleetTakedown(60, q.ScaleRounds+1, 0, killAt)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nTakedown during load (%d clients, 4 remotes; primary seized at t=%s)\n",
		res.Clients, metrics.FormatSeconds(killAt.Seconds()))
	fmt.Fprintf(&b, "  %-28s %-8s %s\n", "visits started", "count", "failed")
	fmt.Fprintf(&b, "  %-28s %-8d %d\n", "before takedown", res.VisitsBefore, res.FailedBefore)
	fmt.Fprintf(&b, "  %-28s %-8d %d\n",
		fmt.Sprintf("within ejection window (%s)", metrics.FormatSeconds(res.Window.Seconds())),
		res.VisitsWindow, res.FailedWindow)
	fmt.Fprintf(&b, "  %-28s %-8d %d\n", "after ejection window", res.VisitsAfter, res.FailedAfter)
	if res.FailedAfter > 0 {
		fmt.Fprintf(&b, "  WARNING: failures persisted past the ejection window\n")
	}
	return b.String(), nil
}
