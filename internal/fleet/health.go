package fleet

import (
	"time"

	"scholarcloud/internal/mux"
)

// probeLoop runs ep's active health checks on the environment clock. A
// healthy endpoint is probed every ProbeInterval; an ejected one at its
// current re-admission backoff.
func (p *Pool) probeLoop(ep *endpoint) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		interval := p.cfg.ProbeInterval
		if !ep.healthy && ep.backoff > interval {
			interval = ep.backoff
		}
		p.mu.Unlock()
		p.cfg.Env.Clock.Sleep(interval)
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		p.probe(ep)
	}
}

// probe performs one echo/latency check: a measured mux ping over a live
// carrier (dialing one if needed — which is itself the re-admission
// check for an ejected endpoint).
func (p *Pool) probe(ep *endpoint) {
	ep.probes.Inc()
	_, sess, err := p.sessionFor(ep)
	if err != nil {
		return // sessionFor already recorded the dial failure
	}
	rtt, err := sess.RTT(p.cfg.ProbeTimeout)
	if err != nil {
		p.flowTrace.Load().Addf("fleet", "probe", "%s failed: %v", ep.Name, err)
		p.recordFailure(ep, err)
		return
	}
	p.flowTrace.Load().Addf("fleet", "probe", "%s rtt=%v", ep.Name, rtt)
	p.recordSuccess(ep, rtt, true)
}

// recordFailure notes a carrier-level failure and ejects the endpoint
// once it crosses the consecutive-failure threshold. Labeled endpoints
// also feed the escalation ladder, which tracks sustained transport-wide
// failure independently of per-endpoint health.
func (p *Pool) recordFailure(ep *endpoint, err error) {
	if esc := p.cfg.Escalate; esc != nil && ep.Transport != "" {
		esc.RecordFailure(ep.Transport)
	}
	p.mu.Lock()
	ep.failures.Inc()
	ep.consecFails++
	ep.lastErr = err.Error()
	if !ep.healthy || ep.consecFails < p.cfg.EjectAfter {
		p.mu.Unlock()
		return
	}
	sessions := p.ejectLocked(ep, err.Error())
	p.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
}

// recordSuccess feeds the EWMA latency estimate (when the sample came
// from a measured probe or dial) and re-admits an ejected endpoint.
// transportOK marks samples that prove the transport end to end (a
// stream opened, an echo answered); only those clear the escalation
// ladder's failure streak — a bare TCP connect completes even under a
// fingerprint crackdown, because the censor resets on content, not on
// the handshake.
func (p *Pool) recordSuccess(ep *endpoint, rtt time.Duration, transportOK bool) {
	if esc := p.cfg.Escalate; esc != nil && transportOK && ep.Transport != "" {
		esc.RecordSuccess(ep.Transport)
	}
	var notify func(string, bool, string)
	p.mu.Lock()
	ep.consecFails = 0
	ep.lastErr = ""
	if rtt > 0 {
		if ep.ewmaRTT == 0 {
			ep.ewmaRTT = rtt
		} else {
			a := p.cfg.EWMAAlpha
			ep.ewmaRTT = time.Duration(a*float64(rtt) + (1-a)*float64(ep.ewmaRTT))
		}
	}
	if !ep.healthy {
		ep.healthy = true
		ep.backoff = 0
		notify = p.cfg.OnStateChange
	}
	p.mu.Unlock()
	if notify != nil {
		p.flowTrace.Load().Addf("fleet", "readmit", "%s", ep.Name)
		notify(ep.Name, true, "probe succeeded")
	}
}

// ejectLocked marks ep unhealthy, grows its re-admission backoff, and
// detaches its sessions for the caller to close outside the lock.
func (p *Pool) ejectLocked(ep *endpoint, reason string) []*mux.Session {
	ep.healthy = false
	ep.ejections.Inc()
	p.flowTrace.Load().Addf("fleet", "eject", "%s: %s", ep.Name, reason)
	if ep.backoff == 0 {
		ep.backoff = p.cfg.ReadmitBackoff
	} else if ep.backoff < p.cfg.BackoffMax {
		ep.backoff *= 2
		if ep.backoff > p.cfg.BackoffMax {
			ep.backoff = p.cfg.BackoffMax
		}
	}
	sessions := p.collectSessionsLocked(ep)
	if fn := p.cfg.OnStateChange; fn != nil {
		name := ep.Name
		p.cfg.Env.Spawn.Go(func() { fn(name, false, reason) })
	}
	return sessions
}

// MarkDown ejects the named endpoint immediately — the takedown hook: a
// registry takedown or observed GFW IP-block rotates traffic off the
// endpoint at once instead of waiting for the failure threshold. The
// endpoint stays under re-admission probing, so a block that is later
// lifted restores it automatically.
func (p *Pool) MarkDown(name, reason string) bool {
	p.mu.Lock()
	var target *endpoint
	for _, ep := range p.endpoints {
		if ep.Name == name {
			target = ep
			break
		}
	}
	if target == nil || !target.healthy {
		p.mu.Unlock()
		return target != nil
	}
	p.rotations.Inc()
	target.consecFails = p.cfg.EjectAfter
	target.lastErr = reason
	sessions := p.ejectLocked(target, reason)
	p.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
	return true
}

// EndpointStats is one endpoint's health snapshot.
type EndpointStats struct {
	Name          string
	Transport     string
	Healthy       bool
	EWMALatency   time.Duration
	ConsecFails   int
	Backoff       time.Duration
	LastError     string
	LiveSessions  int
	InFlight      int64
	StreamsOpened int64
	Failures      int64
	Probes        int64
	Ejections     int64
}

// Stats is a pool-wide snapshot.
type Stats struct {
	Endpoints []EndpointStats
	// Picks counts Open calls; Failovers counts extra endpoint attempts
	// beyond the first; Rotations counts MarkDown takedowns.
	Picks     int64
	Failovers int64
	Rotations int64
}

// Healthy counts currently admitted endpoints.
func (s Stats) Healthy() int {
	n := 0
	for _, ep := range s.Endpoints {
		if ep.Healthy {
			n++
		}
	}
	return n
}

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := Stats{
		Picks:     p.picks.Value(),
		Failovers: p.failovers.Value(),
		Rotations: p.rotations.Value(),
	}
	for _, ep := range p.endpoints {
		out.Endpoints = append(out.Endpoints, EndpointStats{
			Name:          ep.Name,
			Transport:     ep.Transport,
			Healthy:       ep.healthy,
			EWMALatency:   ep.ewmaRTT,
			ConsecFails:   ep.consecFails,
			Backoff:       ep.backoff,
			LastError:     ep.lastErr,
			LiveSessions:  ep.liveSlots(),
			InFlight:      ep.inflight(),
			StreamsOpened: ep.opened.Value(),
			Failures:      ep.failures.Value(),
			Probes:        ep.probes.Value(),
			Ejections:     ep.ejections.Value(),
		})
	}
	return out
}
