package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"scholarcloud/internal/obs"
)

// fakeEscalator is a hand-cranked escalation ladder: the test flips the
// active rung and inspects the outcome feed.
type fakeEscalator struct {
	mu        sync.Mutex
	active    string
	failures  map[string]int
	successes map[string]int
}

func newFakeEscalator(active string) *fakeEscalator {
	return &fakeEscalator{
		active:    active,
		failures:  map[string]int{},
		successes: map[string]int{},
	}
}

func (f *fakeEscalator) ActiveName() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active
}

func (f *fakeEscalator) SetActive(name string) {
	f.mu.Lock()
	f.active = name
	f.mu.Unlock()
}

func (f *fakeEscalator) RecordFailure(tr string) {
	f.mu.Lock()
	f.failures[tr]++
	f.mu.Unlock()
}

func (f *fakeEscalator) RecordSuccess(tr string) {
	f.mu.Lock()
	f.successes[tr]++
	f.mu.Unlock()
}

// labeled builds the world's endpoints with carrier-transport labels.
func labeled(w *fleetWorld, transports ...string) []Endpoint {
	var eps []Endpoint
	for i, tr := range transports {
		ep := w.endpoint(i)
		ep.Transport = tr
		eps = append(eps, ep)
	}
	return eps
}

func TestPickPrefersActiveTransportRung(t *testing.T) {
	w := newFleetWorld(t, 2)
	esc := newFakeEscalator("blinded")
	cfg := w.config()
	cfg.Escalate = esc
	p, err := New(cfg, labeled(w, "blinded", "rendezvous"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		for i := 0; i < 10; i++ {
			if err := echoOnce(p, "rung one"); err != nil {
				return err
			}
		}
		if st := p.Stats(); st.Endpoints[1].StreamsOpened != 0 {
			return fmt.Errorf("ladder preference ignored: fallback rung served %d streams",
				st.Endpoints[1].StreamsOpened)
		}
		// The ladder escalates; picks must follow the new active rung.
		esc.SetActive("rendezvous")
		for i := 0; i < 10; i++ {
			if err := echoOnce(p, "rung two"); err != nil {
				return err
			}
		}
		if st := p.Stats(); st.Endpoints[1].StreamsOpened != 10 {
			return fmt.Errorf("escalated rung served %d/10 streams", st.Endpoints[1].StreamsOpened)
		}
		return nil
	})
	esc.mu.Lock()
	defer esc.mu.Unlock()
	if esc.successes["blinded"] == 0 || esc.successes["rendezvous"] == 0 {
		t.Errorf("escalator never fed successes: %v", esc.successes)
	}
}

func TestOpenOnRestrictsToTransport(t *testing.T) {
	w := newFleetWorld(t, 2)
	esc := newFakeEscalator("blinded")
	cfg := w.config()
	cfg.Escalate = esc
	p, err := New(cfg, labeled(w, "blinded", "rendezvous"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		// A hedge aimed at the next rung must land there even while the
		// ladder still prefers the first.
		st, err := p.OpenOn("rendezvous", []byte("203.0.113.10:7"))
		if err != nil {
			return err
		}
		st.Close()
		stats := p.Stats()
		if stats.Endpoints[0].StreamsOpened != 0 || stats.Endpoints[1].StreamsOpened != 1 {
			return fmt.Errorf("OpenOn landed on the wrong rung: %+v", stats.Endpoints)
		}
		var down *DownError
		if _, err := p.OpenOn("dns-tunnel", []byte("203.0.113.10:7")); !errors.As(err, &down) {
			return fmt.Errorf("OpenOn unknown transport: err = %v, want DownError", err)
		}
		return nil
	})
}

func TestEscalatorFedOnTransportFailure(t *testing.T) {
	w := newFleetWorld(t, 2)
	esc := newFakeEscalator("blinded")
	cfg := w.config()
	cfg.Escalate = esc
	p, err := New(cfg, labeled(w, "blinded", "rendezvous"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		w.remotes[0].kill()
		// Opens fail over to the surviving rung; each dead-carrier failure
		// must reach the escalator labeled with its transport.
		for i := 0; i < 4; i++ {
			if err := echoOnce(p, "fed"); err != nil {
				return err
			}
		}
		return nil
	})
	esc.mu.Lock()
	defer esc.mu.Unlock()
	if esc.failures["blinded"] == 0 {
		t.Errorf("escalator saw no blinded failures: %v", esc.failures)
	}
	if esc.failures["rendezvous"] != 0 {
		t.Errorf("healthy rung charged with failures: %v", esc.failures)
	}
}

func TestInstrumentLabelsTransports(t *testing.T) {
	w := newFleetWorld(t, 2)
	p, err := New(w.config(), labeled(w, "blinded", "rendezvous"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	reg := obs.NewRegistry()
	p.Instrument(reg)
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		_, err := p.OpenOn("rendezvous", []byte("203.0.113.10:7"))
		return err
	})
	snap := reg.Snapshot()
	for _, name := range []string{
		"fleet.transport.blinded.streams_opened",
		"fleet.transport.rendezvous.streams_opened",
		"fleet.transport.blinded.healthy_endpoints",
		"fleet.transport.rendezvous.healthy_endpoints",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("per-transport counter %q not registered", name)
		}
	}
	if got := snap.Counters["fleet.transport.rendezvous.streams_opened"]; got != 1 {
		t.Errorf("rendezvous streams_opened = %d, want 1", got)
	}
	if got := snap.Counters["fleet.transport.blinded.streams_opened"]; got != 0 {
		t.Errorf("blinded streams_opened = %d, want 0", got)
	}

	// An unlabeled fleet must register no per-transport names at all.
	p2, err := New(w.config(), w.endpoints(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	reg2 := obs.NewRegistry()
	p2.Instrument(reg2)
	for name := range reg2.Snapshot().Counters {
		if len(name) > len("fleet.transport.") && name[:len("fleet.transport.")] == "fleet.transport." {
			t.Errorf("unlabeled fleet registered %q", name)
		}
	}
}
