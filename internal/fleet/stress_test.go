package fleet

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
)

// TestPoolConcurrentStress hammers a pool from many OS goroutines over
// real loopback sockets while health probes, takedowns, and stats
// polling run concurrently. The simulated worlds the other tests use are
// fully serialized by the virtual-time scheduler, so they cannot
// exercise the pool's locking under -race; this test runs on RealEnv
// precisely so the race detector sees genuine parallelism (notably
// around rng, which must only ever be used under p.mu).
func TestPoolConcurrentStress(t *testing.T) {
	env := netx.RealEnv()

	// Three stub remotes: each accepted carrier becomes a mux session
	// whose streams echo (the acceptor hands back one end of a pipe with
	// an echo pump on the other).
	const numRemotes = 3
	var eps []Endpoint
	for i := 0; i < numRemotes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				mux.NewSession(conn, env, func(meta []byte) (net.Conn, error) {
					a, b := net.Pipe()
					go io.Copy(b, b)
					return a, nil
				})
			}
		}()
		addr := ln.Addr().String()
		eps = append(eps, Endpoint{
			Name: addr,
			Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
		})
	}

	p, err := New(Config{
		Env:        env,
		NewSession: func(raw net.Conn) *mux.Session { return mux.NewSession(raw, env, nil) },
		// Aggressive cadences so probes and re-admissions overlap the
		// Open storm instead of idling behind it.
		ProbeInterval:  time.Millisecond,
		ProbeTimeout:   2 * time.Second,
		ReadmitBackoff: time.Millisecond,
		Seed:           7,
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Takedown churn: rotate endpoints down; the probers re-admit them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.MarkDown(eps[i%numRemotes].Name, "stress takedown")
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Stats polling races the health bookkeeping.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Stats().Healthy()
			time.Sleep(time.Millisecond)
		}
	}()

	// The Open storm itself. Individual opens may fail while every
	// endpoint happens to be ejected at once; what matters is that a
	// healthy majority of round-trips complete and nothing races.
	const goroutines, opensEach = 8, 40
	var ok int64
	var okMu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opensEach; i++ {
				st, err := p.Open([]byte("echo"))
				if err != nil {
					continue
				}
				msg := []byte("ping")
				if _, err := st.Write(msg); err == nil {
					buf := make([]byte, len(msg))
					if _, err := io.ReadFull(st, buf); err == nil {
						okMu.Lock()
						ok++
						okMu.Unlock()
					}
				}
				st.Close()
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let the storm run, then stop the churn goroutines.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress test deadlocked")
	}

	okMu.Lock()
	defer okMu.Unlock()
	if ok < goroutines*opensEach/2 {
		t.Errorf("only %d/%d concurrent echoes succeeded", ok, goroutines*opensEach)
	}
}
