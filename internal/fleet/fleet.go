// Package fleet is the remote-proxy control plane: it manages N remote
// endpoints for a domestic proxy, each with a small pool of pre-dialed
// blinded carrier sessions, continuously health-probed, and picks a
// carrier per stream with a load- and health-aware policy.
//
// The paper's deployment ran two VMs with a manual standby (reproduced
// here as a degenerate two-member fleet: the standby is just a second
// endpoint the pick policy fails over to). A
// production-scale ScholarCloud instead needs what CensorLess-style
// systems demonstrate — capacity from fanning out across many cheap,
// rotatable endpoints — and what ICLab measures — blocking that shifts
// over space and time, so per-remote health must be observed
// continuously, not assumed. The Pool provides:
//
//   - tunnel pooling: SessionsPerRemote pre-dialed carriers per endpoint,
//     so concurrent streams spread across carriers instead of
//     head-of-line-blocking one mux session;
//   - active health probing: an echo (mux RTT) check per endpoint on the
//     environment clock, feeding an EWMA latency estimate and a
//     consecutive-failure counter;
//   - pick policy: power-of-two-choices over in-flight streams, weighted
//     by each endpoint's health score;
//   - ejection and re-admission: endpoints past the failure threshold are
//     ejected with exponential backoff and re-admitted only after a
//     successful probe;
//   - takedown-aware rotation: MarkDown ejects an endpoint immediately
//     (wired to registry takedowns / GFW IP-blocks) and Add introduces a
//     replacement at runtime, so a takedown rotates traffic instead of
//     surfacing as user-visible failure.
//
// All blocking uses netx primitives, so a Pool runs unchanged over the
// real network and the virtual-time simulator.
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
)

// Endpoint is one remote proxy the pool can tunnel through.
type Endpoint struct {
	// Name identifies the endpoint in stats and takedown hooks
	// (conventionally the remote's "ip:port").
	Name string
	// Dial opens a raw carrier connection to the endpoint.
	Dial func() (net.Conn, error)
	// Transport labels the carrier transport behind Dial (one of the
	// carrier package's canonical names). Empty means the legacy
	// unlabeled blinded path; non-empty transports get per-transport obs
	// counters and participate in the escalation ladder's pick
	// preference.
	Transport string
}

// Escalator is the fleet's view of a transport escalation ladder
// (carrier.Ladder implements it): the pool prefers endpoints on the
// active rung and feeds carrier-level outcomes back so the ladder can
// escalate on sustained failure and recover via probes.
type Escalator interface {
	ActiveName() string
	RecordFailure(transport string)
	RecordSuccess(transport string)
}

// Config tunes the pool. The zero value of every field selects a
// sensible default.
type Config struct {
	Env netx.Env
	// NewSession wraps a freshly dialed raw carrier into a mux session —
	// the hook where the domestic proxy applies message blinding.
	NewSession func(raw net.Conn) *mux.Session
	// SessionsPerRemote is the carrier pool size per endpoint (default 2).
	SessionsPerRemote int
	// ProbeInterval is the health-check cadence (default 5s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one echo probe (default 2s).
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive-failure threshold (default 2).
	EjectAfter int
	// ReadmitBackoff is the first re-admission probe delay after an
	// ejection; it doubles per consecutive ejection (default 10s).
	ReadmitBackoff time.Duration
	// BackoffMax caps the re-admission backoff (default 2min).
	BackoffMax time.Duration
	// EWMAAlpha is the latency-estimate smoothing factor (default 0.3).
	EWMAAlpha float64
	// DialTimeout bounds one carrier dial (including the transport
	// handshake). Zero leaves dials unbounded — the historical behaviour —
	// so only resilience-enabled deployments pay the timer. A dial that
	// outlives the deadline is recorded as an endpoint failure; its late
	// connection, if any, is closed on arrival.
	DialTimeout time.Duration
	// Seed drives the pick policy's randomness deterministically.
	Seed uint64
	// OnStateChange, if set, observes ejections and re-admissions.
	OnStateChange func(name string, healthy bool, reason string)
	// Escalate, if set, is the transport escalation ladder: pick prefers
	// endpoints whose Transport matches the active rung, and every
	// carrier-level success or failure on a labeled endpoint is fed back
	// to it.
	Escalate Escalator
}

func (c Config) withDefaults() Config {
	if c.SessionsPerRemote <= 0 {
		c.SessionsPerRemote = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 5 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 2
	}
	if c.ReadmitBackoff <= 0 {
		c.ReadmitBackoff = 10 * time.Second
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Minute
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.3
	}
	return c
}

// Errors.
var (
	// ErrNoEndpoints reports a pool constructed with no endpoints.
	ErrNoEndpoints = errors.New("fleet: pool has no endpoints")
	// ErrPoolClosed reports use after Close.
	ErrPoolClosed = errors.New("fleet: pool closed")
	// ErrDialTimeout reports a carrier dial that outlived
	// Config.DialTimeout.
	ErrDialTimeout = errors.New("fleet: dial timed out")
)

// DownError reports that every endpoint was tried and none could carry
// the stream — the fleet equivalent of "all remotes down".
type DownError struct {
	Attempts int
	Last     error
}

// Error implements error.
func (e *DownError) Error() string {
	return fmt.Sprintf("fleet: all %d endpoints failed: %v", e.Attempts, e.Last)
}

// Unwrap exposes the last endpoint error.
func (e *DownError) Unwrap() error { return e.Last }

// slot is one carrier session of an endpoint's pool.
type slot struct {
	sess     *mux.Session
	dialing  bool
	inflight metrics.Gauge
}

// endpoint is the pool's view of one remote.
type endpoint struct {
	Endpoint
	slots []*slot

	// Health state, guarded by Pool.mu.
	healthy     bool
	consecFails int
	ewmaRTT     time.Duration
	backoff     time.Duration
	lastErr     string

	opened    metrics.Counter
	failures  metrics.Counter
	probes    metrics.Counter
	ejections metrics.Counter
}

func (ep *endpoint) inflight() int64 {
	var n int64
	for _, sl := range ep.slots {
		n += sl.inflight.Value()
	}
	return n
}

// liveSlots counts slots with a usable session (caller holds Pool.mu).
func (ep *endpoint) liveSlots() int {
	n := 0
	for _, sl := range ep.slots {
		if sl.sess != nil && sl.sess.Err() == nil {
			n++
		}
	}
	return n
}

// Pool is the fleet control plane.
type Pool struct {
	cfg Config

	mu        sync.Mutex
	cond      netx.Cond
	endpoints []*endpoint
	// rng drives the pick policy. *rand.Rand is not concurrency-safe:
	// every use must hold mu (today that is only pick, which runs with mu
	// held for its whole body).
	rng    *rand.Rand
	closed bool

	picks        metrics.Counter
	failovers    metrics.Counter
	rotations    metrics.Counter
	dialTimeouts metrics.Counter

	flowTrace atomic.Pointer[obs.Trace]
}

// Instrument publishes the pool's pick, failover, rotation and
// per-endpoint health counters on reg. Per-endpoint counters are summed
// across the fleet; use Stats for the per-endpoint breakdown.
func (p *Pool) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("fleet.picks", &p.picks)
	reg.RegisterCounter("fleet.failovers", &p.failovers)
	reg.RegisterCounter("fleet.rotations", &p.rotations)
	reg.RegisterCounter("fleet.dial_timeouts", &p.dialTimeouts)
	sum := func(read func(ep *endpoint) int64) func() int64 {
		return func() int64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			var n int64
			for _, ep := range p.endpoints {
				n += read(ep)
			}
			return n
		}
	}
	reg.RegisterFunc("fleet.streams_opened", sum(func(ep *endpoint) int64 { return ep.opened.Value() }))
	reg.RegisterFunc("fleet.failures", sum(func(ep *endpoint) int64 { return ep.failures.Value() }))
	reg.RegisterFunc("fleet.probes", sum(func(ep *endpoint) int64 { return ep.probes.Value() }))
	reg.RegisterFunc("fleet.ejections", sum(func(ep *endpoint) int64 { return ep.ejections.Value() }))
	reg.RegisterFunc("fleet.healthy_endpoints", sum(func(ep *endpoint) int64 {
		if ep.healthy {
			return 1
		}
		return 0
	}))
	// Per-transport breakdowns, only for endpoints labeled with a carrier
	// transport: the default unlabeled fleet registers nothing extra, so
	// its /metrics output is unchanged. Endpoints Added after Instrument
	// with a transport not seen here fold into the fleet-wide sums only.
	p.mu.Lock()
	seen := map[string]bool{}
	var transports []string
	for _, ep := range p.endpoints {
		if ep.Transport != "" && !seen[ep.Transport] {
			seen[ep.Transport] = true
			transports = append(transports, ep.Transport)
		}
	}
	p.mu.Unlock()
	sort.Strings(transports)
	for _, tr := range transports {
		only := func(read func(ep *endpoint) int64) func() int64 {
			return sum(func(ep *endpoint) int64 {
				if ep.Transport != tr {
					return 0
				}
				return read(ep)
			})
		}
		reg.RegisterFunc("fleet.transport."+tr+".streams_opened", only(func(ep *endpoint) int64 { return ep.opened.Value() }))
		reg.RegisterFunc("fleet.transport."+tr+".failures", only(func(ep *endpoint) int64 { return ep.failures.Value() }))
		reg.RegisterFunc("fleet.transport."+tr+".probes", only(func(ep *endpoint) int64 { return ep.probes.Value() }))
		reg.RegisterFunc("fleet.transport."+tr+".healthy_endpoints", only(func(ep *endpoint) int64 {
			if ep.healthy {
				return 1
			}
			return 0
		}))
	}
}

// SetTrace installs (or, with nil, removes) a flow tracer receiving a
// span for every carrier pick, failover, ejection, re-admission and probe
// outcome.
func (p *Pool) SetTrace(t *obs.Trace) { p.flowTrace.Store(t) }

// New builds a pool over the given endpoints, pre-dials each endpoint's
// carrier sessions in the background, and starts the health probers.
func New(cfg Config, eps []Endpoint) (*Pool, error) {
	if len(eps) == 0 {
		return nil, ErrNoEndpoints
	}
	cfg = cfg.withDefaults()
	if cfg.NewSession == nil {
		return nil, errors.New("fleet: Config.NewSession is required")
	}
	p := &Pool{
		cfg: cfg,
		rng: rand.New(rand.NewSource(int64(cfg.Seed) + 0x5EED)),
	}
	p.cond = cfg.Env.Sync.NewCond(&p.mu)
	for _, e := range eps {
		p.addLocked(e)
	}
	return p, nil
}

// Add introduces a new endpoint at runtime — the rotation half of
// takedown-aware rotation: when a remote is seized or IP-blocked, the
// operator stands up a replacement VM and Adds it without restarting the
// domestic proxy.
func (p *Pool) Add(e Endpoint) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.addLocked(e)
	p.mu.Unlock()
}

func (p *Pool) addLocked(e Endpoint) {
	ep := &endpoint{Endpoint: e, healthy: true}
	for i := 0; i < p.cfg.SessionsPerRemote; i++ {
		ep.slots = append(ep.slots, &slot{})
	}
	p.endpoints = append(p.endpoints, ep)
	p.cfg.Env.Spawn.Go(func() { p.warm(ep) })
	p.cfg.Env.Spawn.Go(func() { p.probeLoop(ep) })
}

// Close tears down every carrier session and stops the probers.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	sessions := p.collectSessionsLocked(nil)
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
}

// Recycle tears down every carrier session without touching health
// state, so the next streams (and the warm-up the probers trigger)
// re-dial fresh carriers. The domestic proxy calls this on a blinding
// epoch rotation: old-epoch carriers cannot outlive their scheme.
func (p *Pool) Recycle() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	sessions := p.collectSessionsLocked(nil)
	p.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
}

// collectSessionsLocked gathers (and detaches) live sessions, of one
// endpoint or, with ep == nil, of the whole pool.
func (p *Pool) collectSessionsLocked(ep *endpoint) []*mux.Session {
	var out []*mux.Session
	eps := p.endpoints
	if ep != nil {
		eps = []*endpoint{ep}
	}
	for _, e := range eps {
		for _, sl := range e.slots {
			if sl.sess != nil {
				out = append(out, sl.sess)
				sl.sess = nil
			}
		}
	}
	return out
}

// Open establishes a stream with the given metadata through the best
// available endpoint, failing over across endpoints transparently. The
// caller sees an error only when the stream itself is refused by a live
// remote (mux.ErrOpenRejected — e.g. the origin was unreachable) or when
// every endpoint is down.
func (p *Pool) Open(meta []byte) (net.Conn, error) {
	return p.open("", meta)
}

// OpenOn is Open restricted to endpoints labeled with the given carrier
// transport — the hook a transport-aware hedge uses to aim its backup
// request at a different escalation rung than the primary.
func (p *Pool) OpenOn(transport string, meta []byte) (net.Conn, error) {
	return p.open(transport, meta)
}

func (p *Pool) open(transport string, meta []byte) (net.Conn, error) {
	p.picks.Inc()
	var lastErr error
	tried := make(map[*endpoint]bool)
	for attempt := 0; ; attempt++ {
		ep := p.pick(tried, transport)
		if ep == nil {
			break
		}
		tried[ep] = true
		if attempt > 0 {
			p.failovers.Inc()
			p.flowTrace.Load().Addf("fleet", "failover", "attempt %d -> %s", attempt+1, ep.Name)
		} else {
			p.flowTrace.Load().Addf("fleet", "pick", "%s for %q", ep.Name, meta)
		}
		st, err := p.openOn(ep, meta)
		if err == nil {
			return st, nil
		}
		if errors.Is(err, mux.ErrOpenRejected) {
			// The endpoint is alive and answered: the refusal is about
			// this stream (bad target, origin down), not carrier health.
			return nil, err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrPoolClosed
		if transport != "" && len(tried) == 0 {
			lastErr = fmt.Errorf("fleet: no endpoints for transport %q", transport)
		}
	}
	return nil, &DownError{Attempts: len(tried), Last: lastErr}
}

// pick chooses the next endpoint to try: power-of-two-choices among
// healthy, untried endpoints, scored by in-flight load weighted with the
// EWMA latency and warm-carrier availability. When no healthy endpoint
// remains it falls back to ejected ones — a last resort that beats
// refusing outright. A non-empty transport restricts candidates to that
// carrier transport; otherwise, with an escalation ladder configured,
// healthy endpoints on the active rung are preferred over the rest.
func (p *Pool) pick(tried map[*endpoint]bool, transport string) *endpoint {
	preferred := transport
	if preferred == "" && p.cfg.Escalate != nil {
		preferred = p.cfg.Escalate.ActiveName()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	var active, healthy, rest []*endpoint
	for _, ep := range p.endpoints {
		if tried[ep] {
			continue
		}
		if transport != "" && ep.Transport != transport {
			continue
		}
		switch {
		case ep.healthy && preferred != "" && ep.Transport == preferred:
			active = append(active, ep)
		case ep.healthy:
			healthy = append(healthy, ep)
		default:
			rest = append(rest, ep)
		}
	}
	cands := active
	if len(cands) == 0 {
		cands = healthy
	}
	if len(cands) == 0 {
		cands = rest
	}
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	i := p.rng.Intn(len(cands))
	j := p.rng.Intn(len(cands) - 1)
	if j >= i {
		j++
	}
	a, b := cands[i], cands[j]
	if p.scoreLocked(b) < p.scoreLocked(a) {
		return b
	}
	return a
}

// scoreLocked is the pick policy's cost estimate: lower is better.
func (p *Pool) scoreLocked(ep *endpoint) float64 {
	score := float64(ep.inflight()+1) * (1 + ep.ewmaRTT.Seconds())
	if ep.liveSlots() == 0 {
		// A cold endpoint needs a carrier dial before it can serve;
		// prefer warm ones without forbidding cold ones.
		score *= 4
	}
	return score * float64(1+ep.consecFails)
}

// openOn opens one stream on ep, dialing a carrier if necessary.
func (p *Pool) openOn(ep *endpoint, meta []byte) (net.Conn, error) {
	sl, sess, err := p.sessionFor(ep)
	if err != nil {
		return nil, err
	}
	st, err := sess.Open(meta)
	if err != nil {
		if !errors.Is(err, mux.ErrOpenRejected) {
			p.recordFailure(ep, err)
		}
		return nil, err
	}
	ep.opened.Inc()
	sl.inflight.Inc()
	p.recordSuccess(ep, 0, true)
	return &trackedStream{Stream: st, slot: sl}, nil
}

// sessionFor returns a usable carrier session on ep: the least-loaded
// live slot when one exists, else it dials a fresh carrier into a free
// slot. Concurrent callers needing a dial coordinate through the pool's
// cond so one dial serves all waiters.
func (p *Pool) sessionFor(ep *endpoint) (*slot, *mux.Session, error) {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, nil, ErrPoolClosed
		}
		// Least-loaded live slot wins: streams spread across carriers.
		var best *slot
		for _, sl := range ep.slots {
			if sl.sess == nil || sl.sess.Err() != nil {
				continue
			}
			if best == nil || sl.inflight.Value() < best.inflight.Value() {
				best = sl
			}
		}
		if best != nil {
			sess := best.sess
			p.mu.Unlock()
			return best, sess, nil
		}
		var free *slot
		dialing := false
		for _, sl := range ep.slots {
			if sl.dialing {
				dialing = true
				continue
			}
			if free == nil {
				free = sl
			}
		}
		if free != nil {
			free.dialing = true
			p.mu.Unlock()
			return p.dialSlot(ep, free)
		}
		if !dialing {
			// Unreachable (every slot is either live, free, or dialing),
			// but never spin.
			p.mu.Unlock()
			return nil, nil, fmt.Errorf("fleet: endpoint %s has no usable slot", ep.Name)
		}
		p.cond.Wait()
	}
}

// dial runs ep.Dial, bounded by Config.DialTimeout when one is set. On
// timeout the dialing goroutine is disowned: if its connection lands
// later it is closed immediately, so a stalled dial can never leak a
// carrier into the pool.
func (p *Pool) dial(ep *endpoint) (net.Conn, error) {
	if p.cfg.DialTimeout <= 0 {
		return ep.Dial()
	}
	var (
		mu       sync.Mutex
		done     bool
		timedOut bool
		conn     net.Conn
		err      error
	)
	cond := p.cfg.Env.Sync.NewCond(&mu)
	p.cfg.Env.Spawn.Go(func() {
		c, e := ep.Dial()
		mu.Lock()
		if timedOut {
			mu.Unlock()
			// Guard on e, not c: a failed Dial may return a typed-nil
			// conn inside a non-nil interface.
			if e == nil && c != nil {
				c.Close()
			}
			return
		}
		conn, err, done = c, e, true
		cond.Broadcast()
		mu.Unlock()
	})
	timer := p.cfg.Env.Clock.AfterFunc(p.cfg.DialTimeout, func() {
		mu.Lock()
		if !done {
			timedOut = true
			cond.Broadcast()
		}
		mu.Unlock()
	})
	defer timer.Stop()
	mu.Lock()
	defer mu.Unlock()
	for !done && !timedOut {
		cond.Wait()
	}
	if timedOut {
		p.dialTimeouts.Inc()
		return nil, ErrDialTimeout
	}
	return conn, err
}

// dialSlot dials a carrier into sl (which the caller marked dialing).
func (p *Pool) dialSlot(ep *endpoint, sl *slot) (*slot, *mux.Session, error) {
	start := p.cfg.Env.Clock.Now()
	raw, err := p.dial(ep)
	var sess *mux.Session
	if err == nil {
		sess = p.cfg.NewSession(raw)
	}
	p.mu.Lock()
	sl.dialing = false
	if err != nil {
		p.cond.Broadcast()
		p.mu.Unlock()
		p.recordFailure(ep, err)
		return nil, nil, fmt.Errorf("fleet: dial %s: %w", ep.Name, err)
	}
	if p.closed {
		p.cond.Broadcast()
		p.mu.Unlock()
		sess.Close()
		return nil, nil, ErrPoolClosed
	}
	old := sl.sess
	sl.sess = sess
	p.cond.Broadcast()
	p.mu.Unlock()
	if old != nil {
		old.Close() // dead carrier being replaced
	}
	p.recordSuccess(ep, p.cfg.Env.Clock.Now().Sub(start), false)
	return sl, sess, nil
}

// warm pre-dials every carrier slot of ep (the "pre-dialed blinded
// carrier sessions" the pool keeps ready).
func (p *Pool) warm(ep *endpoint) {
	for _, sl := range ep.slots {
		p.mu.Lock()
		if p.closed || sl.dialing || (sl.sess != nil && sl.sess.Err() == nil) {
			p.mu.Unlock()
			continue
		}
		sl.dialing = true
		p.mu.Unlock()
		p.dialSlot(ep, sl)
	}
}

// trackedStream decorates a mux stream with in-flight accounting.
type trackedStream struct {
	*mux.Stream
	slot *slot
	once sync.Once
}

// Close implements net.Conn.
func (t *trackedStream) Close() error {
	t.once.Do(func() { t.slot.inflight.Dec() })
	return t.Stream.Close()
}
