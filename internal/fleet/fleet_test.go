package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"scholarcloud/internal/mux"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
)

// testRemote is a minimal tunnel endpoint: it accepts carrier conns,
// wraps each in a mux session whose acceptor dials the echo origin, and
// remembers enough to be killed and restarted mid-test.
type testRemote struct {
	w    *fleetWorld
	host *netsim.Host
	addr string

	mu       sync.Mutex
	ln       net.Listener
	conns    []net.Conn
	sessions []*mux.Session
	accepted int
}

func (r *testRemote) serve(t *testing.T) {
	ln, err := r.host.Listen("tcp", ":8443")
	if err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()
	r.w.n.Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			sess := mux.NewSession(conn, r.w.env, func(meta []byte) (net.Conn, error) {
				if string(meta) == "reject" {
					return nil, fmt.Errorf("refused by policy")
				}
				return r.host.DialTCP(string(meta))
			})
			r.mu.Lock()
			r.accepted++
			r.conns = append(r.conns, conn)
			r.sessions = append(r.sessions, sess)
			r.mu.Unlock()
		}
	})
}

// kill closes the listener and every live carrier — a seized VM.
func (r *testRemote) kill() {
	r.mu.Lock()
	ln := r.ln
	sessions := r.sessions
	conns := r.conns
	r.ln, r.sessions, r.conns = nil, nil, nil
	r.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range sessions {
		s.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

func (r *testRemote) carriersAccepted() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.accepted
}

type fleetWorld struct {
	n        *netsim.Network
	env      netx.Env
	domestic *netsim.Host
	origin   *netsim.Host
	remotes  []*testRemote
}

func newFleetWorld(t *testing.T, numRemotes int) *fleetWorld {
	t.Helper()
	n := netsim.New(17)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 70 * time.Millisecond})
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}
	w := &fleetWorld{
		n:        n,
		env:      n.Env(),
		domestic: n.AddHost("domestic", "101.6.6.6", cn, acc),
		origin:   n.AddHost("origin", "203.0.113.10", us, acc),
	}

	eln, err := w.origin.Listen("tcp", ":7")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := eln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() { defer conn.Close(); io.Copy(conn, conn) })
		}
	})

	for i := 0; i < numRemotes; i++ {
		ip := fmt.Sprintf("198.51.100.%d", 70+i)
		r := &testRemote{
			w:    w,
			host: n.AddHost(fmt.Sprintf("remote%d", i), ip, us, acc),
			addr: ip + ":8443",
		}
		r.serve(t)
		w.remotes = append(w.remotes, r)
	}
	return w
}

func (w *fleetWorld) endpoint(i int) Endpoint {
	addr := w.remotes[i].addr
	return Endpoint{
		Name: addr,
		Dial: func() (net.Conn, error) { return w.domestic.DialTCP(addr) },
	}
}

func (w *fleetWorld) endpoints(n int) []Endpoint {
	var eps []Endpoint
	for i := 0; i < n; i++ {
		eps = append(eps, w.endpoint(i))
	}
	return eps
}

func (w *fleetWorld) config() Config {
	return Config{
		Env:            w.env,
		NewSession:     func(raw net.Conn) *mux.Session { return mux.NewSession(raw, w.env, nil) },
		ProbeInterval:  200 * time.Millisecond,
		ProbeTimeout:   500 * time.Millisecond,
		ReadmitBackoff: 300 * time.Millisecond,
		Seed:           17,
	}
}

func (w *fleetWorld) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	w.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

// echoOnce opens a stream through the pool and round-trips one message.
func echoOnce(p *Pool, msg string) error {
	st, err := p.Open([]byte("203.0.113.10:7"))
	if err != nil {
		return err
	}
	defer st.Close()
	if _, err := st.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(st, buf); err != nil {
		return err
	}
	if !bytes.Equal(buf, []byte(msg)) {
		return fmt.Errorf("echo = %q, want %q", buf, msg)
	}
	return nil
}

func TestOpenEchoesThroughPool(t *testing.T) {
	w := newFleetWorld(t, 1)
	p, err := New(w.config(), w.endpoints(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error { return echoOnce(p, "through the fleet") })
	st := p.Stats()
	if st.Picks != 1 || len(st.Endpoints) != 1 || st.Endpoints[0].StreamsOpened != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStreamsSpreadAcrossCarrierPool(t *testing.T) {
	w := newFleetWorld(t, 1)
	cfg := w.config()
	cfg.SessionsPerRemote = 2
	p, err := New(cfg, w.endpoints(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		// Let warm() pre-dial both carriers, then hold 4 streams open.
		w.env.Clock.Sleep(time.Second)
		var streams []net.Conn
		for i := 0; i < 4; i++ {
			st, err := p.Open([]byte("203.0.113.10:7"))
			if err != nil {
				return err
			}
			streams = append(streams, st)
		}
		defer func() {
			for _, st := range streams {
				st.Close()
			}
		}()
		if got := w.remotes[0].carriersAccepted(); got != 2 {
			t.Errorf("carriers accepted = %d, want 2 (pre-dialed pool)", got)
		}
		// Least-loaded slot choice spreads the 4 streams 2/2.
		r := w.remotes[0]
		r.mu.Lock()
		defer r.mu.Unlock()
		for i, sess := range r.sessions {
			if n := sess.Streams(); n != 2 {
				t.Errorf("carrier %d holds %d streams, want 2", i, n)
			}
		}
		return nil
	})
	if got := p.Stats().Endpoints[0].InFlight; got != 0 {
		t.Errorf("inflight after close = %d, want 0", got)
	}
}

func TestPickBalancesAcrossEndpoints(t *testing.T) {
	w := newFleetWorld(t, 2)
	p, err := New(w.config(), w.endpoints(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		for i := 0; i < 40; i++ {
			if err := echoOnce(p, "balance"); err != nil {
				return err
			}
		}
		return nil
	})
	st := p.Stats()
	for i, ep := range st.Endpoints {
		if ep.StreamsOpened < 8 {
			t.Errorf("endpoint %d served only %d/40 streams", i, ep.StreamsOpened)
		}
		if ep.EWMALatency <= 0 {
			t.Errorf("endpoint %d has no latency estimate", i)
		}
	}
}

func TestFailoverOnDeadRemote(t *testing.T) {
	w := newFleetWorld(t, 2)
	p, err := New(w.config(), w.endpoints(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		w.remotes[0].kill()
		// Every open after the kill must still succeed: dead carriers
		// fail over to the surviving endpoint.
		for i := 0; i < 10; i++ {
			if err := echoOnce(p, "survivor"); err != nil {
				return fmt.Errorf("open %d after kill: %w", i, err)
			}
		}
		// The prober notices the corpse and ejects it.
		w.env.Clock.Sleep(2 * time.Second)
		return nil
	})
	st := p.Stats()
	if st.Endpoints[0].Healthy {
		t.Error("dead endpoint still marked healthy after probe window")
	}
	if !st.Endpoints[1].Healthy {
		t.Error("surviving endpoint was ejected")
	}
	if st.Endpoints[1].StreamsOpened < 10 {
		t.Errorf("survivor served %d streams, want >= 10", st.Endpoints[1].StreamsOpened)
	}
}

func TestProberEjectsAndReadmits(t *testing.T) {
	w := newFleetWorld(t, 2)
	var mu sync.Mutex
	var transitions []string
	cfg := w.config()
	cfg.OnStateChange = func(name string, healthy bool, reason string) {
		mu.Lock()
		transitions = append(transitions, fmt.Sprintf("%s healthy=%v", name, healthy))
		mu.Unlock()
	}
	p, err := New(cfg, w.endpoints(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		w.remotes[1].kill()
		// No user traffic at all: the active prober alone must notice.
		w.env.Clock.Sleep(3 * time.Second)
		if st := p.Stats(); st.Endpoints[1].Healthy {
			return fmt.Errorf("prober did not eject dead endpoint: %+v", st.Endpoints[1])
		}
		// The endpoint comes back; the re-admission probe restores it.
		w.remotes[1].serve(t)
		w.env.Clock.Sleep(5 * time.Second)
		if st := p.Stats(); !st.Endpoints[1].Healthy {
			return fmt.Errorf("recovered endpoint not re-admitted: %+v", st.Endpoints[1])
		}
		return nil
	})
	mu.Lock()
	defer mu.Unlock()
	want := []string{
		w.remotes[1].addr + " healthy=false",
		w.remotes[1].addr + " healthy=true",
	}
	if len(transitions) != 2 || transitions[0] != want[0] || transitions[1] != want[1] {
		t.Errorf("transitions = %v, want %v", transitions, want)
	}
}

func TestMarkDownRotatesTraffic(t *testing.T) {
	w := newFleetWorld(t, 3)
	p, err := New(w.config(), w.endpoints(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		// A takedown means the VM is gone; MarkDown routes around it
		// immediately instead of waiting for the failure threshold.
		w.remotes[0].kill()
		if !p.MarkDown(w.remotes[0].addr, "registry takedown") {
			return errors.New("MarkDown did not find the endpoint")
		}
		for i := 0; i < 8; i++ {
			if err := echoOnce(p, "rotated"); err != nil {
				return err
			}
		}
		st := p.Stats()
		if st.Endpoints[0].StreamsOpened != 0 {
			return fmt.Errorf("taken-down endpoint served %d streams", st.Endpoints[0].StreamsOpened)
		}
		if st.Rotations != 1 {
			return fmt.Errorf("rotations = %d, want 1", st.Rotations)
		}
		// Rotation: the operator stands up a replacement at runtime.
		p.Add(w.endpoint(2))
		w.remotes[1].kill()
		p.MarkDown(w.remotes[1].addr, "IP blocked")
		for i := 0; i < 8; i++ {
			if err := echoOnce(p, "replacement"); err != nil {
				return err
			}
		}
		if st := p.Stats(); st.Endpoints[2].StreamsOpened < 8 {
			return fmt.Errorf("replacement served %d streams, want 8", st.Endpoints[2].StreamsOpened)
		}
		return nil
	})
}

func TestMarkDownUnknownEndpoint(t *testing.T) {
	w := newFleetWorld(t, 1)
	p, err := New(w.config(), w.endpoints(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.MarkDown("203.0.113.99:1", "no such endpoint") {
		t.Error("MarkDown reported success for an unknown endpoint")
	}
}

func TestAllEndpointsDownReturnsDownError(t *testing.T) {
	w := newFleetWorld(t, 1)
	p, err := New(w.config(), w.endpoints(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		w.remotes[0].kill()
		var down *DownError
		for i := 0; i < 5; i++ {
			_, err := p.Open([]byte("203.0.113.10:7"))
			if err == nil {
				return errors.New("open through a dead fleet succeeded")
			}
			if errors.As(err, &down) {
				return nil
			}
		}
		return fmt.Errorf("never saw DownError; last err type %T", err)
	})
}

func TestOpenRejectedPassesThroughWithoutEjection(t *testing.T) {
	w := newFleetWorld(t, 1)
	p, err := New(w.config(), w.endpoints(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		if _, err := p.Open([]byte("reject")); !errors.Is(err, mux.ErrOpenRejected) {
			return fmt.Errorf("err = %v, want ErrOpenRejected", err)
		}
		// The refusal says nothing about carrier health.
		if st := p.Stats(); !st.Endpoints[0].Healthy || st.Endpoints[0].ConsecFails != 0 {
			return fmt.Errorf("stream refusal damaged endpoint health: %+v", st.Endpoints[0])
		}
		return echoOnce(p, "still serving")
	})
}

func TestNoEndpointsRejected(t *testing.T) {
	w := newFleetWorld(t, 0)
	if _, err := New(w.config(), nil); !errors.Is(err, ErrNoEndpoints) {
		t.Errorf("err = %v, want ErrNoEndpoints", err)
	}
}

func TestOpenAfterCloseFails(t *testing.T) {
	w := newFleetWorld(t, 1)
	p, err := New(w.config(), w.endpoints(1))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	w.run(t, func() error {
		if _, err := p.Open([]byte("203.0.113.10:7")); !errors.Is(err, ErrPoolClosed) {
			return fmt.Errorf("err = %v, want ErrPoolClosed", err)
		}
		return nil
	})
}

func TestRecycleForcesFreshCarriers(t *testing.T) {
	w := newFleetWorld(t, 1)
	p, err := New(w.config(), w.endpoints(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second)
		if err := echoOnce(p, "before recycle"); err != nil {
			return err
		}
		before := w.remotes[0].carriersAccepted()
		p.Recycle()
		if err := echoOnce(p, "after recycle"); err != nil {
			return err
		}
		if after := w.remotes[0].carriersAccepted(); after <= before {
			return fmt.Errorf("recycle reused old carriers: %d -> %d", before, after)
		}
		return nil
	})
}
