package mux

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
)

// realPair builds a client/server session pair over net.Pipe with the
// real environment.
func realPair(accept Acceptor) (*Session, *Session) {
	a, b := net.Pipe()
	env := netx.RealEnv()
	client := NewSession(a, env, nil)
	server := NewSession(b, env, accept)
	return client, server
}

// echoAcceptor grants every stream and echoes bytes back through a
// loopback pipe.
func echoAcceptor(meta []byte) (net.Conn, error) {
	a, b := net.Pipe()
	go func() {
		io.Copy(b, b) // echo
	}()
	_ = meta
	return a, nil
}

func TestOpenAndEcho(t *testing.T) {
	client, server := realPair(echoAcceptor)
	defer client.Close()
	defer server.Close()

	st, err := client.Open([]byte("echo.example:7"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello mux")
	if _, err := st.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("echo = %q", buf)
	}
}

func TestOpenRejected(t *testing.T) {
	client, server := realPair(func(meta []byte) (net.Conn, error) {
		return nil, fmt.Errorf("forbidden: %s", meta)
	})
	defer client.Close()
	defer server.Close()

	_, err := client.Open([]byte("evil.example:1"))
	if !errors.Is(err, ErrOpenRejected) {
		t.Errorf("err = %v, want ErrOpenRejected", err)
	}
}

func TestOpenWithoutAcceptorRejected(t *testing.T) {
	client, server := realPair(nil)
	defer client.Close()
	defer server.Close()
	if _, err := client.Open([]byte("x:1")); !errors.Is(err, ErrOpenRejected) {
		t.Errorf("err = %v, want ErrOpenRejected", err)
	}
}

func TestConcurrentStreamsAreIndependent(t *testing.T) {
	client, server := realPair(echoAcceptor)
	defer client.Close()
	defer server.Close()

	const streams = 8
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := client.Open([]byte("echo:7"))
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			msg := bytes.Repeat([]byte{byte('a' + i)}, 4096)
			go st.Write(msg)
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(st, buf); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf, msg) {
				errs <- fmt.Errorf("stream %d corrupted", i)
				return
			}
			errs <- nil
		}()
	}
	wg.Wait()
	for i := 0; i < streams; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestStreamCloseDeliversEOF(t *testing.T) {
	done := make(chan net.Conn, 1)
	client, server := realPair(func(meta []byte) (net.Conn, error) {
		a, b := net.Pipe()
		done <- b
		return a, nil
	})
	defer client.Close()
	defer server.Close()

	st, err := client.Open([]byte("x:1"))
	if err != nil {
		t.Fatal(err)
	}
	upstream := <-done
	go func() {
		upstream.Write([]byte("bye"))
		upstream.Close()
	}()
	data, err := io.ReadAll(st)
	if err != nil && !errors.Is(err, ErrStreamClosed) {
		t.Fatal(err)
	}
	if string(data) != "bye" {
		t.Errorf("data = %q", data)
	}
}

func TestSessionCloseFailsStreams(t *testing.T) {
	client, server := realPair(echoAcceptor)
	defer server.Close()
	st, err := client.Open([]byte("x:1"))
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := st.Read(make([]byte, 1)); err == nil {
		t.Error("read on closed session succeeded")
	}
	if _, err := client.Open([]byte("y:1")); err == nil {
		t.Error("open on closed session succeeded")
	}
}

func TestLargeTransferChunksFrames(t *testing.T) {
	client, server := realPair(echoAcceptor)
	defer client.Close()
	defer server.Close()

	st, err := client.Open([]byte("echo:7"))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 300*1024) // far above maxFramePayload
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	go st.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("large transfer corrupted")
	}
}

func TestMuxOverSimulatedNetwork(t *testing.T) {
	// The same session code must run under the virtual clock, with the
	// carrier crossing a high-latency border link.
	n := netsim.New(3)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 75 * time.Millisecond})
	client := n.AddHost("client", "10.0.0.2", cn, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	server := n.AddHost("server", "198.51.100.7", us, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	origin := n.AddHost("origin", "203.0.113.10", us, netsim.LinkConfig{Delay: 2 * time.Millisecond})

	// Echo origin.
	ln, err := origin.Listen("tcp", ":7")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					m, err := conn.Read(buf)
					if m > 0 {
						conn.Write(buf[:m])
					}
					if err != nil {
						return
					}
				}
			})
		}
	})

	// Tunnel server: accept carrier conns, dial meta as target.
	tln, err := server.Listen("tcp", ":9000")
	if err != nil {
		t.Fatal(err)
	}
	env := n.Env()
	n.Scheduler().Go(func() {
		for {
			conn, err := tln.Accept()
			if err != nil {
				return
			}
			NewSession(conn, env, func(meta []byte) (net.Conn, error) {
				return server.DialTCP(string(meta))
			})
		}
	})

	done := make(chan error, 1)
	n.Scheduler().Go(func() {
		carrier, err := client.DialTCP("198.51.100.7:9000")
		if err != nil {
			done <- err
			return
		}
		sess := NewSession(carrier, env, nil)
		defer sess.Close()
		st, err := sess.Open([]byte("203.0.113.10:7"))
		if err != nil {
			done <- err
			return
		}
		msg := []byte("through the tunnel")
		st.Write(msg)
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(st, buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, msg) {
			done <- fmt.Errorf("echo = %q", buf)
			return
		}
		done <- nil
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestReadDeadline(t *testing.T) {
	client, server := realPair(func(meta []byte) (net.Conn, error) {
		a, _ := net.Pipe() // never answers
		return a, nil
	})
	defer client.Close()
	defer server.Close()

	st, err := client.Open([]byte("x:1"))
	if err != nil {
		t.Fatal(err)
	}
	st.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	_, err = st.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestPingPong(t *testing.T) {
	client, server := realPair(echoAcceptor)
	defer client.Close()
	defer server.Close()
	// Ping is fire-and-forget; it must not disturb streams.
	if err := client.Ping(64); err != nil {
		t.Fatal(err)
	}
	st, err := client.Open([]byte("echo:7"))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Ping(1024); err != nil {
		t.Fatal(err)
	}
	msg := []byte("alongside pings")
	go st.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("echo = %q", buf)
	}
}

func TestPingOversizeClamped(t *testing.T) {
	client, server := realPair(nil)
	defer client.Close()
	defer server.Close()
	if err := client.Ping(maxFramePayload * 4); err != nil {
		t.Fatal(err)
	}
}

func TestRTTMeasuresRoundTrip(t *testing.T) {
	client, server := realPair(echoAcceptor)
	defer client.Close()
	defer server.Close()

	for i := 0; i < 3; i++ {
		rtt, err := client.RTT(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if rtt < 0 || rtt > time.Second {
			t.Errorf("rtt = %v, want a small positive duration", rtt)
		}
	}
}

func TestRTTTimesOutOnStalledCarrier(t *testing.T) {
	a, b := net.Pipe()
	go io.Copy(io.Discard, b) // peer accepts frames but never answers
	env := netx.RealEnv()
	client := NewSession(a, env, nil)
	defer client.Close()

	done := make(chan error, 1)
	go func() {
		_, err := client.RTT(50 * time.Millisecond)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("RTT succeeded with no peer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RTT did not return")
	}
}

func TestRTTFailsOnDeadSession(t *testing.T) {
	client, server := realPair(echoAcceptor)
	defer server.Close()
	client.Close()
	if _, err := client.RTT(time.Second); err == nil {
		t.Fatal("RTT on closed session succeeded")
	}
}

func TestStreamsCountsInFlight(t *testing.T) {
	client, server := realPair(echoAcceptor)
	defer client.Close()
	defer server.Close()

	if n := client.Streams(); n != 0 {
		t.Fatalf("fresh session has %d streams", n)
	}
	st, err := client.Open([]byte("x:7"))
	if err != nil {
		t.Fatal(err)
	}
	if n := client.Streams(); n != 1 {
		t.Errorf("after open: %d streams, want 1", n)
	}
	st.Close()
}
