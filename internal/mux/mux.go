// Package mux multiplexes independent byte streams over a single
// connection, the substrate under every tunnel in this repository:
// PPTP/L2TP "calls", OpenVPN's routed flows, and Tor's circuit streams are
// all mux sessions over their respective carriers.
//
// Wire format (all integers big-endian):
//
//	frame  := type(1) stream(4) length(4) payload(length)
//	type   := OPEN | OPENOK | OPENFAIL | DATA | CLOSE
//
// OPEN carries opaque metadata (typically "host:port"); the acceptor
// decides whether to grant the stream. Streams implement net.Conn.
//
// All blocking uses netx primitives, so sessions run unchanged over the
// real network and the virtual-time simulator.
package mux

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netx"
)

// Frame types.
const (
	frameOpen byte = iota + 1
	frameOpenOK
	frameOpenFail
	frameData
	frameClose
	framePing
	framePong
)

// maxFramePayload bounds one frame.
const maxFramePayload = 32 * 1024

// maxStreamBuffer bounds undelivered per-stream data before the session
// fails (no flow control; tunnels at this scale never approach it).
const maxStreamBuffer = 4 << 20

// Errors.
var (
	ErrSessionClosed = errors.New("mux: session closed")
	ErrStreamClosed  = errors.New("mux: stream closed")
	ErrOpenRejected  = errors.New("mux: open rejected by peer")
)

// Acceptor is called for each inbound OPEN on its own goroutine. It
// returns the upstream connection the new stream should be relayed to
// (typically by dialing the "host:port" in meta); returning an error
// rejects the stream. The session grants the stream only after the
// acceptor succeeds, so the opener's round trip includes the upstream
// dial — exactly like a CONNECT proxy.
type Acceptor func(meta []byte) (net.Conn, error)

// managedWriteConn marks carrier connections whose Write blocks on
// managed (virtual-clock) operations — the DNS-tunnel carrier runs whole
// query round trips inside Write. Serializing writes onto such a carrier
// with a bare OS mutex would freeze the virtual clock for every
// goroutine contending it, so the session serializes them with a managed
// write token instead.
type managedWriteConn interface{ WriteBlocksManaged() bool }

// Session multiplexes streams over conn.
type Session struct {
	conn net.Conn
	env  netx.Env

	wmu sync.Mutex // serializes frames onto the carrier

	// managedWrites switches frame serialization from wmu to a managed
	// write token (writing + cond). Set for carriers whose Write blocks
	// on managed operations — see managedWriteConn.
	managedWrites bool

	mu       sync.Mutex
	cond     netx.Cond
	streams  map[uint32]*Stream
	nextID   uint32
	err      error
	accept   Acceptor
	pings    map[uint32]*pingWait
	nextPing uint32
	writing  bool // the managed write token, used when managedWrites

	counters atomic.Pointer[Counters]
}

// Counters are shared frame-level counters a session reports into. The
// same Counters value is typically installed on every session of one
// tunnel endpoint, so the totals aggregate across carriers.
type Counters struct {
	FramesIn   *metrics.Counter
	FramesOut  *metrics.Counter
	Keepalives *metrics.Counter // ping+pong frames sent
}

// SetCounters installs (or, with nil, removes) frame counters. Safe to
// call at any time, including while the read loop is running.
func (s *Session) SetCounters(c *Counters) { s.counters.Store(c) }

// pingWait tracks one outstanding measured ping.
type pingWait struct {
	done bool
	at   time.Time
}

// NewSession wraps conn. If accept is non-nil the session also accepts
// inbound streams. The session's read loop runs on env.Spawn.
func NewSession(conn net.Conn, env netx.Env, accept Acceptor) *Session {
	s := &Session{
		conn:    conn,
		env:     env,
		streams: make(map[uint32]*Stream),
		accept:  accept,
		pings:   make(map[uint32]*pingWait),
	}
	if mc, ok := conn.(managedWriteConn); ok && mc.WriteBlocksManaged() {
		s.managedWrites = true
	}
	s.cond = env.Sync.NewCond(&s.mu)
	env.Spawn.Go(s.readLoop)
	return s
}

// Open establishes a new stream with the given metadata, blocking until
// the peer grants or rejects it.
func (s *Session) Open(meta []byte) (*Stream, error) {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return nil, err
	}
	s.nextID++
	id := s.nextID
	st := s.newStreamLocked(id)
	st.opening = true
	s.mu.Unlock()

	if err := s.writeFrame(frameOpen, id, meta); err != nil {
		s.fail(err)
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for st.opening && s.err == nil && st.err == nil {
		s.cond.Wait()
	}
	if s.err != nil {
		return nil, s.err
	}
	if st.err != nil {
		return nil, st.err
	}
	return st, nil
}

func (s *Session) newStreamLocked(id uint32) *Stream {
	st := &Stream{sess: s, id: id}
	st.cond = s.env.Sync.NewCond(&s.mu)
	s.streams[id] = st
	return st
}

// Close tears down the session and every stream.
func (s *Session) Close() error {
	s.fail(ErrSessionClosed)
	return nil
}

// Err returns the session's terminal error, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	// Fail streams in ID order: map iteration order would randomize the
	// wake order of their readers and, in the simulator, every packet the
	// woken goroutines subsequently send.
	ids := make([]uint32, 0, len(s.streams))
	for id := range s.streams {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		st := s.streams[id]
		if st.err == nil {
			st.err = err
		}
		st.cond.Broadcast()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
}

func (s *Session) writeFrame(typ byte, id uint32, payload []byte) error {
	if c := s.counters.Load(); c != nil {
		c.FramesOut.Inc()
		if typ == framePing || typ == framePong {
			c.Keepalives.Inc()
		}
	}
	if s.managedWrites {
		if err := s.acquireWriteToken(); err != nil {
			return err
		}
		defer s.releaseWriteToken()
	} else {
		s.wmu.Lock()
		defer s.wmu.Unlock()
	}
	hdr := make([]byte, 9, 9+len(payload))
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], id)
	binary.BigEndian.PutUint32(hdr[5:], uint32(len(payload)))
	_, err := s.conn.Write(append(hdr, payload...))
	return err
}

// acquireWriteToken serializes managed-carrier writes on the session
// cond, so a writer parked behind a slow carrier Write (a DNS-tunnel
// round trip) waits under the virtual clock instead of on an OS mutex.
func (s *Session) acquireWriteToken() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.writing && s.err == nil {
		s.cond.Wait()
	}
	if s.err != nil {
		return s.err
	}
	s.writing = true
	return nil
}

func (s *Session) releaseWriteToken() {
	s.mu.Lock()
	s.writing = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Session) readLoop() {
	defer s.fail(ErrSessionClosed)
	hdr := make([]byte, 9)
	for {
		if _, err := io.ReadFull(s.conn, hdr); err != nil {
			s.fail(fmt.Errorf("mux: carrier read: %w", err))
			return
		}
		typ := hdr[0]
		id := binary.BigEndian.Uint32(hdr[1:])
		n := binary.BigEndian.Uint32(hdr[5:])
		if typ < frameOpen || typ > framePong {
			// Not our protocol (e.g. a censor's probe): drop the carrier
			// immediately without answering.
			s.fail(fmt.Errorf("mux: unknown frame type %#x", typ))
			return
		}
		if n > maxFramePayload {
			s.fail(fmt.Errorf("mux: oversized frame (%d bytes)", n))
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(s.conn, payload); err != nil {
			s.fail(fmt.Errorf("mux: carrier read: %w", err))
			return
		}
		if c := s.counters.Load(); c != nil {
			c.FramesIn.Inc()
		}
		s.dispatch(typ, id, payload)
	}
}

func (s *Session) dispatch(typ byte, id uint32, payload []byte) {
	switch typ {
	case frameOpen:
		if s.accept == nil {
			s.writeFrame(frameOpenFail, id, []byte("no acceptor"))
			return
		}
		s.mu.Lock()
		st := s.newStreamLocked(id)
		s.mu.Unlock()
		meta := payload
		s.env.Spawn.Go(func() {
			upstream, err := s.accept(meta)
			if err != nil {
				s.writeFrame(frameOpenFail, id, []byte(err.Error()))
				s.mu.Lock()
				st.err = ErrStreamClosed
				delete(s.streams, id)
				st.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			if err := s.writeFrame(frameOpenOK, id, nil); err != nil {
				upstream.Close()
				return
			}
			s.relay(st, upstream)
		})
	case frameOpenOK:
		s.mu.Lock()
		if st := s.streams[id]; st != nil && st.opening {
			st.opening = false
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	case frameOpenFail:
		s.mu.Lock()
		if st := s.streams[id]; st != nil {
			st.err = fmt.Errorf("%w: %s", ErrOpenRejected, payload)
			st.opening = false
			delete(s.streams, id)
			s.cond.Broadcast()
			st.cond.Broadcast()
		}
		s.mu.Unlock()
	case frameData:
		s.mu.Lock()
		if st := s.streams[id]; st != nil {
			if len(st.buf)+len(payload) > maxStreamBuffer {
				s.mu.Unlock()
				s.fail(fmt.Errorf("mux: stream %d buffer overflow", id))
				return
			}
			st.buf = append(st.buf, payload...)
			st.cond.Broadcast()
		}
		s.mu.Unlock()
	case frameClose:
		s.mu.Lock()
		if st := s.streams[id]; st != nil {
			st.remoteClosed = true
			st.cond.Broadcast()
			if st.localClosed {
				delete(s.streams, id)
			}
		}
		s.mu.Unlock()
	case framePing:
		s.writeFrame(framePong, id, payload)
	case framePong:
		// Keepalive answer. Measured pings (RTT) wait on their id;
		// plain Ping echoes carry id 0 and need no delivery.
		s.mu.Lock()
		if pw := s.pings[id]; pw != nil {
			pw.done = true
			pw.at = s.env.Clock.Now()
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// Ping sends a keepalive frame of n padding bytes; the peer echoes it.
// Tunnels use it to model their link-maintenance traffic (PPTP echoes,
// OpenVPN pings).
func (s *Session) Ping(n int) error {
	if n > maxFramePayload {
		n = maxFramePayload
	}
	return s.writeFrame(framePing, 0, make([]byte, n))
}

// RTT sends a measured ping and blocks until the peer's pong returns,
// reporting the carrier round-trip time. A non-positive timeout waits
// indefinitely. Health probers use it as the echo/latency check: unlike
// Ping, the reply is awaited, so a stalled or dead carrier surfaces as a
// timeout rather than silence.
func (s *Session) RTT(timeout time.Duration) (time.Duration, error) {
	return s.rttEcho(timeout, nil)
}

// RTTPadded is RTT with pad bytes of ping payload, echoed back by the
// peer. Recovery probes use it so a probe's first flight carries about
// as much data as real carrier traffic — a bare 9-byte ping is too
// small for an on-path classifier to fingerprint, which would make a
// blocked transport look healthy.
func (s *Session) RTTPadded(timeout time.Duration, pad []byte) (time.Duration, error) {
	if len(pad) > maxFramePayload {
		pad = pad[:maxFramePayload]
	}
	return s.rttEcho(timeout, pad)
}

func (s *Session) rttEcho(timeout time.Duration, pad []byte) (time.Duration, error) {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return 0, err
	}
	s.nextPing++
	id := s.nextPing
	pw := &pingWait{}
	s.pings[id] = pw
	s.mu.Unlock()

	start := s.env.Clock.Now()
	if err := s.writeFrame(framePing, id, pad); err != nil {
		s.fail(err)
		s.mu.Lock()
		delete(s.pings, id)
		s.mu.Unlock()
		return 0, err
	}
	var deadline time.Time
	var timer netx.Timer
	if timeout > 0 {
		deadline = start.Add(timeout)
		timer = s.env.Clock.AfterFunc(timeout, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		defer timer.Stop()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for !pw.done && s.err == nil {
		if timeout > 0 && !s.env.Clock.Now().Before(deadline) {
			break
		}
		s.cond.Wait()
	}
	delete(s.pings, id)
	if pw.done {
		return pw.at.Sub(start), nil
	}
	if s.err != nil {
		return 0, s.err
	}
	return 0, timeoutError{}
}

// Streams reports how many streams are currently registered on the
// session — the in-flight load signal pick policies balance on.
func (s *Session) Streams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// relay copies between a granted stream and its upstream until either
// side finishes.
func (s *Session) relay(st *Stream, upstream net.Conn) {
	s.env.Spawn.Go(func() {
		io.Copy(st, upstream)
		st.Close()
		upstream.Close()
	})
	io.Copy(upstream, st)
	upstream.Close()
	st.Close()
}

// Stream is one multiplexed byte stream. It implements net.Conn.
type Stream struct {
	sess *Session
	id   uint32
	cond netx.Cond // bound to sess.mu

	opening      bool
	buf          []byte
	err          error
	localClosed  bool
	remoteClosed bool
	deadline     time.Time
	ddTimer      netx.Timer
}

// Read implements net.Conn.
func (st *Stream) Read(b []byte) (int, error) {
	s := st.sess
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(st.buf) > 0 {
			n := copy(b, st.buf)
			st.buf = st.buf[n:]
			if len(st.buf) == 0 {
				st.buf = nil
			}
			return n, nil
		}
		if st.err != nil {
			return 0, st.err
		}
		if st.localClosed {
			return 0, ErrStreamClosed
		}
		if st.remoteClosed {
			return 0, io.EOF
		}
		if !st.deadline.IsZero() && !s.env.Clock.Now().Before(st.deadline) {
			return 0, timeoutError{}
		}
		st.cond.Wait()
	}
}

// Write implements net.Conn.
func (st *Stream) Write(b []byte) (int, error) {
	s := st.sess
	s.mu.Lock()
	if st.err != nil {
		err := st.err
		s.mu.Unlock()
		return 0, err
	}
	if st.localClosed {
		s.mu.Unlock()
		return 0, ErrStreamClosed
	}
	s.mu.Unlock()

	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > maxFramePayload {
			n = maxFramePayload
		}
		if err := s.writeFrame(frameData, st.id, b[:n]); err != nil {
			s.fail(err)
			return total, err
		}
		b = b[n:]
		total += n
	}
	return total, nil
}

// Close implements net.Conn. It half-closes the local side; the peer
// observes EOF after draining.
func (st *Stream) Close() error {
	s := st.sess
	s.mu.Lock()
	if st.localClosed {
		s.mu.Unlock()
		return nil
	}
	st.localClosed = true
	if st.remoteClosed {
		delete(s.streams, st.id)
	}
	st.cond.Broadcast()
	s.mu.Unlock()
	return s.writeFrame(frameClose, st.id, nil)
}

// LocalAddr implements net.Conn.
func (st *Stream) LocalAddr() net.Addr { return muxAddr{st.id} }

// RemoteAddr implements net.Conn.
func (st *Stream) RemoteAddr() net.Addr { return muxAddr{st.id} }

// SetDeadline implements net.Conn (read side only; writes never block).
func (st *Stream) SetDeadline(t time.Time) error { return st.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (st *Stream) SetReadDeadline(t time.Time) error {
	s := st.sess
	s.mu.Lock()
	defer s.mu.Unlock()
	st.deadline = t
	if st.ddTimer != nil {
		st.ddTimer.Stop()
		st.ddTimer = nil
	}
	if !t.IsZero() {
		d := t.Sub(s.env.Clock.Now())
		st.ddTimer = s.env.Clock.AfterFunc(d, func() {
			s.mu.Lock()
			st.cond.Broadcast()
			s.mu.Unlock()
		})
	}
	return nil
}

// SetWriteDeadline implements net.Conn; writes do not block on the peer.
func (st *Stream) SetWriteDeadline(time.Time) error { return nil }

type muxAddr struct{ id uint32 }

func (a muxAddr) Network() string { return "mux" }
func (a muxAddr) String() string  { return fmt.Sprintf("stream-%d", a.id) }

type timeoutError struct{}

func (timeoutError) Error() string   { return "mux: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
