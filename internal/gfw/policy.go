package gfw

import (
	"fmt"
	"slices"
)

// Policy is the declarative description of the firewall's runtime
// posture. It replaces the old imperative setters (SetResetStorm,
// SetThrottle, SetClassBlock, BlockIP): callers describe the state they
// want and Apply makes it so. Being a plain serializable value, a Policy
// can live in a censor schedule file, cross an API boundary, or be
// diffed in a test — none of which a sequence of setter calls allowed.
type Policy struct {
	// ResetStorm is the probability that a tracked TCP packet crossing
	// the border is answered with forged RSTs to both endpoints — the
	// GFW's episodic "reset storm" behaviour. Zero means no storm.
	ResetStorm float64 `json:"reset_storm,omitempty"`

	// Throttle is an extra drop probability applied to every tracked
	// TCP packet, modeling an episodic bandwidth-throttling campaign
	// against cross-border traffic. Zero means no throttling.
	Throttle float64 `json:"throttle,omitempty"`

	// BlockClasses lists the DPI traffic classes under a fingerprint
	// crackdown: every packet of a classified flow in a listed class is
	// answered with forged RSTs. Blocking ClassEncrypted kills the
	// blinded carrier outright; adding ClassTLS escalates to a full
	// crackdown that only the DNS tunnel survives.
	BlockClasses []Class `json:"block_classes,omitempty"`

	// BlockIPs are addresses to blackhole. Blackholing is cumulative:
	// applying a policy adds its addresses to the blackhole list but
	// never removes earlier ones, matching how the real GFW's
	// IP blacklist only grows within an enforcement episode and letting
	// independent actors (takedown agencies, censor controllers)
	// compose without erasing each other's blocks.
	BlockIPs []string `json:"block_ips,omitempty"`

	// ScrutinizeCleartext keeps a small-sample cleartext DPI verdict
	// provisional even when no class crackdown is active: the firewall
	// keeps buffering until lowEntropyLatchBytes of the first flight
	// have crossed before latching a flow as cleartext. Without it (and
	// outside a crackdown) the verdict latches immediately — a couple
	// of 9-byte printable keepalive frames under a byte-substitution
	// cipher would leave the flow permanently classified ClassLowEntropy
	// and immune to any later encrypted-fingerprint crackdown. Adaptive
	// censors raise it when they start watching a border closely.
	ScrutinizeCleartext bool `json:"scrutinize_cleartext,omitempty"`
}

// Validate rejects out-of-range probabilities. Class names are not
// validated: a policy may name classes the DPI never assigns (they
// simply never match), which keeps schedule files forward-compatible.
func (p Policy) Validate() error {
	if p.ResetStorm < 0 || p.ResetStorm > 1 {
		return fmt.Errorf("gfw policy: reset storm rate %v is not a probability in [0, 1]", p.ResetStorm)
	}
	if p.Throttle < 0 || p.Throttle > 1 {
		return fmt.Errorf("gfw policy: throttle loss %v is not a probability in [0, 1]", p.Throttle)
	}
	return nil
}

// Apply installs p as the firewall's runtime posture. ResetStorm,
// Throttle, BlockClasses and ScrutinizeCleartext are absolute — the
// previous values are replaced wholesale, so applying a zero Policy
// ends every episode. BlockIPs is cumulative (see the field comment).
// Apply is the single mutation path for runtime censorship state.
func (g *GFW) Apply(p Policy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stormRate = p.ResetStorm
	g.throttleLoss = p.Throttle
	g.scrutinizeCleartext = p.ScrutinizeCleartext
	clear(g.blockedClass)
	for _, c := range p.BlockClasses {
		g.blockedClass[c] = true
	}
	for _, ip := range p.BlockIPs {
		g.blockedIP[ip] = true
	}
}

// ActivePolicy returns the firewall's current posture as a Policy.
// BlockIPs reflects the full blackhole list, including addresses seeded
// by Config.BlockedIPs; lists are sorted copies, safe to mutate.
// Feeding the result back to Apply is a no-op, which is what lets
// composing actors (fault schedulers layering an episode over an armed
// crackdown, enforcement takedowns mid-episode) read-modify-write the
// posture without clobbering each other.
func (g *GFW) ActivePolicy() Policy {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := Policy{
		ResetStorm:          g.stormRate,
		Throttle:            g.throttleLoss,
		ScrutinizeCleartext: g.scrutinizeCleartext,
	}
	for c := range g.blockedClass {
		p.BlockClasses = append(p.BlockClasses, c)
	}
	slices.Sort(p.BlockClasses)
	for ip := range g.blockedIP {
		p.BlockIPs = append(p.BlockIPs, ip)
	}
	slices.Sort(p.BlockIPs)
	return p
}
