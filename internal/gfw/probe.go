package gfw

import (
	"time"

	"scholarcloud/internal/tlssim"
)

// parseSNI wraps the TLS DPI parser.
func parseSNI(firstBytes []byte) (string, bool) {
	return tlssim.ParseClientHelloSNI(firstBytes)
}

// probeReadTimeout is how long the prober waits for the suspect server to
// react to replayed bytes.
const probeReadTimeout = 1 * time.Second

// scheduleProbeLocked arms an active probe against ep ("ip:port") using
// the captured first client bytes as replay material. Called with g.mu
// held.
//
// The probe reproduces the behaviour Ensafi et al. and Winter & Lindskog
// documented for the real GFW: connect to the suspected server, replay
// bytes captured from a genuine session, and watch how the server reacts.
// The decision table:
//
//	server answers with data      -> ordinary service, exonerated
//	server closes the connection  -> protocol rejected the garbage,
//	                                 exonerated (ScholarCloud's remote
//	                                 proxy drops unauthenticated peers)
//	server stays silent and holds -> Shadowsocks-style "read forever"
//	                                 behaviour, confirmed
func (g *GFW) scheduleProbeLocked(ep string, replay []byte) {
	g.stats.ProbesLaunched++
	g.flowTrace.Load().Addf("gfw", "probe-launch", "%s (%d replay bytes)", ep, len(replay))
	g.cfg.Clock.AfterFunc(g.cfg.ProbeDelay, func() {
		g.runProbe(ep, replay)
	})
}

func (g *GFW) runProbe(ep string, replay []byte) {
	conn, err := g.cfg.ProbeFrom.DialTCP(ep)
	if err != nil {
		// Unreachable: nothing to confirm.
		g.finishProbe(ep, false)
		return
	}
	defer conn.Close()
	if _, err := conn.Write(replay); err != nil {
		g.finishProbe(ep, false)
		return
	}
	conn.SetReadDeadline(g.cfg.Clock.Now().Add(probeReadTimeout))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	switch {
	case err == nil:
		// The server answered: some real protocol lives here.
		g.finishProbe(ep, false)
	case isTimeout(err):
		// Silent accept-and-hold: the Shadowsocks fingerprint.
		g.finishProbe(ep, true)
	default:
		// Connection closed or reset: the server rejected the replay.
		g.finishProbe(ep, false)
	}
}

func isTimeout(err error) bool {
	type timeouter interface{ Timeout() bool }
	t, ok := err.(timeouter)
	return ok && t.Timeout()
}

func (g *GFW) finishProbe(ep string, confirmed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.probing, ep)
	if confirmed {
		g.confirmed[ep] = true
		g.stats.ServersConfirmed++
		g.flowTrace.Load().Addf("gfw", "probe-verdict", "%s confirmed", ep)
	} else {
		g.cleared[ep] = true
		g.stats.ServersExonerated++
		g.flowTrace.Load().Addf("gfw", "probe-verdict", "%s exonerated", ep)
	}
}
