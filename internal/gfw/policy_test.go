package gfw

import (
	"encoding/json"
	"reflect"
	"testing"

	"scholarcloud/internal/netsim"
)

// bareGFW is a firewall with no network attached: the TCP inspection
// path never injects packets, so synthetic calls to Inspect exercise
// DPI and policy treatment directly.
func bareGFW() *GFW {
	return New(Config{Seed: 7})
}

// flowPacket builds the n-th client→server data packet of one flow.
func flowPacket(id uint64, payload []byte) *netsim.Packet {
	return &netsim.Packet{
		ID:      id,
		Proto:   netsim.ProtoTCP,
		Src:     netsim.AddrPort{IP: "10.1.0.2", Port: 40000},
		Dst:     netsim.AddrPort{IP: "203.0.113.10", Port: 443},
		Payload: payload,
		Wire:    len(payload) + 40,
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	p := Policy{
		ResetStorm:          0.25,
		Throttle:            0.1,
		BlockClasses:        []Class{ClassEncrypted, ClassTLS},
		BlockIPs:            []string{"203.0.113.10"},
		ScrutinizeCleartext: true,
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got Policy
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip: got %+v, want %+v", got, p)
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{ResetStorm: 0.5, Throttle: 0.5}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if err := (Policy{ResetStorm: 1.5}).Validate(); err == nil {
		t.Error("reset storm 1.5 accepted")
	}
	if err := (Policy{Throttle: -0.1}).Validate(); err == nil {
		t.Error("throttle -0.1 accepted")
	}
}

// TestApplySemantics pins Apply's contract: episode fields and class
// blocks are absolute, IP blackholes are cumulative, and feeding
// ActivePolicy back to Apply is a no-op.
func TestApplySemantics(t *testing.T) {
	g := bareGFW()
	g.Apply(Policy{
		ResetStorm:   0.2,
		Throttle:     0.05,
		BlockClasses: []Class{ClassEncrypted},
		BlockIPs:     []string{"198.51.100.1"},
	})
	g.Apply(Policy{BlockClasses: []Class{ClassTLS}, BlockIPs: []string{"198.51.100.2"}})

	got := g.ActivePolicy()
	if got.ResetStorm != 0 || got.Throttle != 0 {
		t.Errorf("episode fields not absolute: %+v", got)
	}
	if want := []Class{ClassTLS}; !reflect.DeepEqual(got.BlockClasses, want) {
		t.Errorf("class blocks = %v, want %v (absolute replace)", got.BlockClasses, want)
	}
	if want := []string{"198.51.100.1", "198.51.100.2"}; !reflect.DeepEqual(got.BlockIPs, want) {
		t.Errorf("blackhole list = %v, want %v (cumulative)", got.BlockIPs, want)
	}

	g.Apply(got) // read-modify-write identity
	if after := g.ActivePolicy(); !reflect.DeepEqual(after, got) {
		t.Errorf("Apply(ActivePolicy()) changed posture: %+v -> %+v", got, after)
	}
}

// straddle is a first flight whose opening frames look printable (as a
// byte-substitution cipher's short keepalives do) but whose full flight
// is clearly encrypted — the case the provisional cleartext verdict
// exists for.
func straddleFlight() (early, late []byte) {
	// 21 printable bytes: enough for DPI to commit a cleartext verdict
	// (>= minClassifyBytes) but well short of lowEntropyLatchBytes.
	early = []byte("ping ok keepalive 1\r\n")
	late = make([]byte, 160)
	for i := range late {
		late[i] = byte(i*167 + 13) // high entropy, mostly unprintable
	}
	return early, late
}

// TestScrutinizeCleartextStraddle exercises the straddle case directly:
// with ScrutinizeCleartext raised, a small printable prefix must not
// latch the flow as cleartext — the later encrypted bytes re-classify
// it and a subsequent encrypted-fingerprint crackdown resets it.
func TestScrutinizeCleartextStraddle(t *testing.T) {
	g := bareGFW()
	g.Apply(Policy{ScrutinizeCleartext: true})
	early, late := straddleFlight()

	if v := g.Inspect(flowPacket(1, early)); v != netsim.VerdictPass {
		t.Fatalf("early packet verdict = %v, want pass", v)
	}
	if v := g.Inspect(flowPacket(2, late)); v != netsim.VerdictPass {
		t.Fatalf("late packet verdict = %v, want pass (no crackdown yet)", v)
	}
	if n := g.ClassCounts()[ClassEncrypted]; n != 1 {
		t.Fatalf("encrypted flows = %d, want 1 (straddle flow re-classified)", n)
	}

	// The crackdown lands on the re-classified flow.
	g.Apply(Policy{ScrutinizeCleartext: true, BlockClasses: []Class{ClassEncrypted}})
	if v := g.Inspect(flowPacket(3, []byte{0x81, 0x9f, 0x44})); v != netsim.VerdictReset {
		t.Errorf("crackdown verdict = %v, want reset", v)
	}
}

// TestCleartextLatchesWithoutScrutiny pins the steady-state behaviour:
// outside a crackdown and without ScrutinizeCleartext, the same small
// printable prefix latches immediately, leaving the flow permanently
// ClassLowEntropy and immune to a later encrypted-class crackdown.
func TestCleartextLatchesWithoutScrutiny(t *testing.T) {
	g := bareGFW()
	early, late := straddleFlight()

	g.Inspect(flowPacket(1, early))
	g.Inspect(flowPacket(2, late))
	if n := g.ClassCounts()[ClassEncrypted]; n != 0 {
		t.Fatalf("encrypted flows = %d, want 0 (verdict latched on prefix)", n)
	}
	if n := g.ClassCounts()[ClassLowEntropy]; n != 1 {
		t.Fatalf("cleartext flows = %d, want 1", n)
	}

	g.Apply(Policy{BlockClasses: []Class{ClassEncrypted}})
	if v := g.Inspect(flowPacket(3, []byte{0x81, 0x9f, 0x44})); v != netsim.VerdictPass {
		t.Errorf("latched cleartext flow verdict = %v, want pass", v)
	}
}

// TestCrackdownKeepsSmallSampleProvisional covers the pre-existing
// crackdown-only branch of the same latch: an active class block alone
// (no ScrutinizeCleartext) also keeps the small-sample verdict open.
func TestCrackdownKeepsSmallSampleProvisional(t *testing.T) {
	g := bareGFW()
	g.Apply(Policy{BlockClasses: []Class{ClassEncrypted}})
	early, late := straddleFlight()

	if v := g.Inspect(flowPacket(1, early)); v != netsim.VerdictPass {
		t.Fatalf("early packet verdict = %v, want pass", v)
	}
	if v := g.Inspect(flowPacket(2, late)); v != netsim.VerdictReset {
		t.Errorf("late packet verdict = %v, want reset (re-classified mid-crackdown)", v)
	}
}
