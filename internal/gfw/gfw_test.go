package gfw

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"scholarcloud/internal/dnssim"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/tlssim"
)

// world is a censored two-zone internet with a GFW on the border.
type world struct {
	n      *netsim.Network
	cn, us *netsim.Zone
	client *netsim.Host
	server *netsim.Host // generic foreign server 203.0.113.10
	dns    *netsim.Host // 8.8.8.8
	prober *netsim.Host
	g      *GFW
}

func newWorld(t *testing.T, mutate func(*Config)) *world {
	t.Helper()
	n := netsim.New(1234)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	border := n.Connect(cn, us, netsim.LinkConfig{Delay: 75 * time.Millisecond, BaseLoss: 0.002})
	access := netsim.LinkConfig{Delay: 2 * time.Millisecond}

	w := &world{
		n: n, cn: cn, us: us,
		client: n.AddHost("client", "10.1.0.2", cn, access),
		server: n.AddHost("server", "203.0.113.10", us, access),
		dns:    n.AddHost("dns", "8.8.8.8", us, access),
		prober: n.AddHost("gfw-prober", "10.255.0.1", cn, access),
	}
	cfg := Config{
		Network:             n,
		Zone:                cn,
		Clock:               n.Clock(),
		Spawn:               n.Scheduler(),
		BlockedDomains:      []string{"google.com", "facebook.com"},
		BlockedIPs:          []string{"172.217.6.78"},
		PoisonIP:            "37.61.54.158",
		MeekFronts:          []string{"ajax.aspnetcdn.com"},
		MeekLossRate:        0.044,
		ShadowsocksLossRate: 0.01,
		ProbeDelay:          100 * time.Millisecond,
		ProbeFrom:           w.prober,
		Seed:                99,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	w.g = New(cfg)
	border.SetInspector(w.g)
	return w
}

func (w *world) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	w.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestDNSPoisoningForBlockedDomain(t *testing.T) {
	w := newWorld(t, nil)
	srv := dnssim.NewServer(map[string]string{"scholar.google.com": "172.217.6.78"})
	pc, err := w.dns.ListenPacket(53)
	if err != nil {
		t.Fatal(err)
	}
	w.n.Scheduler().Go(func() { srv.Serve(pc) })

	r := dnssim.NewResolver(w.client, w.n.Clock(), "8.8.8.8:53")
	w.run(t, func() error {
		ip, err := r.Lookup("scholar.google.com")
		if err != nil {
			return err
		}
		if ip != "37.61.54.158" {
			t.Errorf("resolved %q, want the poisoned address", ip)
		}
		return nil
	})
	if got := w.g.Stats().DNSPoisoned; got == 0 {
		t.Error("no poisoning recorded")
	}
}

func TestDNSCleanForUnblockedDomain(t *testing.T) {
	w := newWorld(t, nil)
	srv := dnssim.NewServer(map[string]string{"example.org": "203.0.113.10"})
	pc, _ := w.dns.ListenPacket(53)
	w.n.Scheduler().Go(func() { srv.Serve(pc) })

	r := dnssim.NewResolver(w.client, w.n.Clock(), "8.8.8.8:53")
	w.run(t, func() error {
		ip, err := r.Lookup("example.org")
		if err != nil {
			return err
		}
		if ip != "203.0.113.10" {
			t.Errorf("resolved %q, want genuine address", ip)
		}
		return nil
	})
}

func TestIPBlockingBlackholesDial(t *testing.T) {
	w := newWorld(t, nil)
	w.n.AddHost("blocked", "172.217.6.78", w.us, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	w.run(t, func() error {
		_, err := w.client.DialTCP("172.217.6.78:443")
		if !errors.Is(err, netsim.ErrDialTimeout) {
			t.Errorf("dial blocked IP: err = %v, want ErrDialTimeout (silent blackhole)", err)
		}
		return nil
	})
	if w.g.Stats().IPBlocked == 0 {
		t.Error("no IP-blocked packets recorded")
	}
}

func startRawServer(t *testing.T, h *netsim.Host, port int, handler func(net.Conn)) {
	t.Helper()
	ln, err := h.Listen("tcp", ":443")
	_ = port
	if err != nil {
		t.Fatal(err)
	}
	h.Network().Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			h.Network().Scheduler().Go(func() { handler(conn) })
		}
	})
}

func TestSNIKeywordFilteringResetsFlow(t *testing.T) {
	w := newWorld(t, nil)
	startRawServer(t, w.server, 443, func(conn net.Conn) {
		defer conn.Close()
		io.Copy(io.Discard, conn)
	})
	w.run(t, func() error {
		raw, err := w.client.DialTCP("203.0.113.10:443")
		if err != nil {
			return err
		}
		tc := tlssim.Client(raw, tlssim.Config{ServerName: "scholar.google.com"})
		err = tc.Handshake()
		if err == nil {
			t.Error("TLS handshake with blocked SNI succeeded through the GFW")
		}
		return nil
	})
	if w.g.Stats().KeywordResets == 0 {
		t.Error("no keyword resets recorded")
	}
}

func TestTLSWithInnocentSNIPasses(t *testing.T) {
	w := newWorld(t, nil)
	startRawServer(t, w.server, 443, func(conn net.Conn) {
		tc := tlssim.Server(conn, tlssim.Config{Certificate: []byte("cert")})
		defer tc.Close()
		buf := make([]byte, 64)
		n, err := tc.Read(buf)
		if err != nil {
			return
		}
		tc.Write(buf[:n])
	})
	w.run(t, func() error {
		raw, err := w.client.DialTCP("203.0.113.10:443")
		if err != nil {
			return err
		}
		tc := tlssim.Client(raw, tlssim.Config{ServerName: "en.wikipedia.org"})
		if _, err := tc.Write([]byte("harmless")); err != nil {
			return err
		}
		buf := make([]byte, 8)
		if _, err := io.ReadFull(tc, buf); err != nil {
			return err
		}
		if string(buf) != "harmless" {
			t.Errorf("echo = %q", buf)
		}
		return nil
	})
}

func TestHTTPHostKeywordFilteringResetsFlow(t *testing.T) {
	w := newWorld(t, nil)
	startRawServer(t, w.server, 443, func(conn net.Conn) {
		defer conn.Close()
		io.Copy(io.Discard, conn)
	})
	w.run(t, func() error {
		conn, err := w.client.DialTCP("203.0.113.10:443")
		if err != nil {
			return err
		}
		conn.Write([]byte("GET / HTTP/1.1\r\nHost: www.google.com\r\n\r\n"))
		buf := make([]byte, 1)
		_, err = conn.Read(buf)
		if !errors.Is(err, netsim.ErrReset) {
			t.Errorf("read after blocked Host: err = %v, want ErrReset", err)
		}
		return nil
	})
}

func TestActiveProbeConfirmsSilentServer(t *testing.T) {
	// A Shadowsocks-like server: accepts any bytes, never answers, holds
	// the connection. The GFW must probe and confirm it.
	w := newWorld(t, nil)
	startRawServer(t, w.server, 443, func(conn net.Conn) {
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				conn.Close()
				return
			}
			// Silent: never write.
		}
	})
	w.run(t, func() error {
		conn, err := w.client.DialTCP("203.0.113.10:443")
		if err != nil {
			return err
		}
		// High-entropy first flight, like a Shadowsocks IV + header.
		first := make([]byte, 64)
		for i := range first {
			first[i] = byte(i*37 + 129)
		}
		if _, err := conn.Write(first); err != nil {
			return err
		}
		// Give the probe time to run.
		w.n.Scheduler().Sleep(5 * time.Second)
		conn.Close()
		return nil
	})
	st := w.g.Stats()
	if st.ProbesLaunched == 0 {
		t.Fatal("no probe launched against suspicious encrypted flow")
	}
	if st.ServersConfirmed == 0 {
		t.Error("silent high-entropy server was not confirmed")
	}
	if got := w.g.ConfirmedServers(); len(got) != 1 || got[0] != "203.0.113.10:443" {
		t.Errorf("confirmed servers = %v", got)
	}
}

func TestActiveProbeExoneratesClosingServer(t *testing.T) {
	// A ScholarCloud-like server: drops connections that fail its
	// authentication immediately. The probe must not confirm it.
	w := newWorld(t, nil)
	var sawGenuine bool
	startRawServer(t, w.server, 443, func(conn net.Conn) {
		buf := make([]byte, 4096)
		n, err := conn.Read(buf)
		if err != nil || n < 8 || buf[0] != 0xEE {
			conn.Close() // authentication failed: drop instantly
			return
		}
		sawGenuine = true
		conn.Write([]byte("welcome"))
		io.Copy(io.Discard, conn)
		conn.Close()
	})
	w.run(t, func() error {
		conn, err := w.client.DialTCP("203.0.113.10:443")
		if err != nil {
			return err
		}
		// Genuine client knows the magic first byte; still high entropy.
		first := make([]byte, 64)
		first[0] = 0xEE
		for i := 1; i < len(first); i++ {
			first[i] = byte(i*41 + 200)
		}
		if _, err := conn.Write(first); err != nil {
			return err
		}
		buf := make([]byte, 7)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return err
		}
		w.n.Scheduler().Sleep(5 * time.Second)
		conn.Close()
		return nil
	})
	st := w.g.Stats()
	if st.ProbesLaunched == 0 {
		t.Fatal("no probe launched")
	}
	if st.ServersConfirmed != 0 {
		t.Error("fast-closing server was wrongly confirmed")
	}
	if st.ServersExonerated == 0 {
		t.Error("server not exonerated")
	}
	if !sawGenuine {
		t.Error("genuine client never reached the server")
	}
}

func TestConfirmedServerFlowsSufferInterference(t *testing.T) {
	w := newWorld(t, func(c *Config) {
		c.ShadowsocksLossRate = 0.30 // exaggerated for a short test
	})
	startRawServer(t, w.server, 443, func(conn net.Conn) {
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				conn.Close()
				return
			}
		}
	})
	w.run(t, func() error {
		conn, err := w.client.DialTCP("203.0.113.10:443")
		if err != nil {
			return err
		}
		first := make([]byte, 64)
		for i := range first {
			first[i] = byte(i*37 + 129)
		}
		conn.Write(first)
		w.n.Scheduler().Sleep(5 * time.Second) // probe confirms
		// Now push more data through the degraded flow.
		payload := make([]byte, 32*1024)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		conn.Write(payload)
		w.n.Scheduler().Sleep(10 * time.Second)
		conn.Close()
		return nil
	})
	if w.g.Stats().InterferenceDrops == 0 {
		t.Error("no interference drops on a confirmed server's flow")
	}
}

func TestMeekFrontsSufferInterference(t *testing.T) {
	w := newWorld(t, func(c *Config) {
		c.MeekLossRate = 0.30
	})
	startRawServer(t, w.server, 443, func(conn net.Conn) {
		tc := tlssim.Server(conn, tlssim.Config{Certificate: []byte("cdn-cert")})
		defer tc.Close()
		io.Copy(io.Discard, tc)
	})
	w.run(t, func() error {
		raw, err := w.client.DialTCP("203.0.113.10:443")
		if err != nil {
			return err
		}
		tc := tlssim.Client(raw, tlssim.Config{ServerName: "ajax.aspnetcdn.com"})
		payload := make([]byte, 64*1024)
		if _, err := tc.Write(payload); err != nil {
			return err
		}
		w.n.Scheduler().Sleep(10 * time.Second)
		raw.Close()
		return nil
	})
	if w.g.Stats().InterferenceDrops == 0 {
		t.Error("no interference against a meek-front flow")
	}
}

func TestClassifyFingerprints(t *testing.T) {
	fronts := map[string]bool{"ajax.aspnetcdn.com": true}
	cases := []struct {
		name  string
		bytes []byte
		want  Class
	}{
		{"http", []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"), ClassHTTP},
		{"connect", []byte("CONNECT scholar.google.com:443 HTTP/1.1\r\n\r\n"), ClassHTTP},
		{"pptp", append(append([]byte{}, pptpMagic...), bytes.Repeat([]byte{0}, 20)...), ClassPPTP},
		{"l2tp", append(append([]byte{}, l2tpMagic...), bytes.Repeat([]byte{1}, 20)...), ClassL2TP},
		{"openvpn", append([]byte{openVPNClientReset, 0x01}, bytes.Repeat([]byte{2}, 20)...), ClassOpenVPN},
		{"lowentropy", []byte("just some plain old text padding here....."), ClassLowEntropy},
	}
	for _, c := range cases {
		if got := classify(c.bytes, fronts); got != c.want {
			t.Errorf("%s: classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyTLSAndMeek(t *testing.T) {
	// Build a real ClientHello via the tlssim client over a pipe.
	hello := func(sni string) []byte {
		a, b := net.Pipe()
		go tlssim.Client(a, tlssim.Config{ServerName: sni}).Handshake()
		buf := make([]byte, 1024)
		n, _ := b.Read(buf)
		a.Close()
		b.Close()
		return buf[:n]
	}
	fronts := map[string]bool{"ajax.aspnetcdn.com": true}
	if got := classify(hello("en.wikipedia.org"), fronts); got != ClassTLS {
		t.Errorf("wikipedia hello classified as %v", got)
	}
	if got := classify(hello("ajax.aspnetcdn.com"), fronts); got != ClassMeek {
		t.Errorf("meek front hello classified as %v", got)
	}
}

func TestClassifyEncrypted(t *testing.T) {
	randomish := make([]byte, 256)
	for i := range randomish {
		randomish[i] = byte(i*167 + 13)
	}
	if got := classify(randomish, nil); got != ClassEncrypted {
		t.Errorf("high-entropy bytes classified as %v", got)
	}
}

func TestEntropyHelper(t *testing.T) {
	uniform := make([]byte, 4096)
	for i := range uniform {
		uniform[i] = byte(i)
	}
	if e := shannonEntropy(uniform); e < 7.9 {
		t.Errorf("uniform entropy = %v", e)
	}
	if e := shannonEntropy(bytes.Repeat([]byte{7}, 100)); e != 0 {
		t.Errorf("constant entropy = %v", e)
	}
}

func TestBlockIPAtRuntime(t *testing.T) {
	w := newWorld(t, nil)
	startRawServer(t, w.server, 443, func(conn net.Conn) {
		defer conn.Close()
		io.Copy(io.Discard, conn)
	})
	w.g.Apply(Policy{BlockIPs: []string{"203.0.113.10"}})
	w.run(t, func() error {
		_, err := w.client.DialTCP("203.0.113.10:443")
		if !errors.Is(err, netsim.ErrDialTimeout) {
			t.Errorf("err = %v, want blackhole timeout", err)
		}
		return nil
	})
}
