package gfw

import (
	"bufio"
	"bytes"
	"math"
	"strings"

	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/tlssim"
)

// Class is the GFW's protocol classification of a flow, assigned by deep
// packet inspection of the first client→server bytes.
type Class string

// Flow classes. The policy table in gfw.go maps classes to treatment.
const (
	ClassUnknown    Class = "unknown"   // not yet enough bytes
	ClassHTTP       Class = "http"      // cleartext HTTP
	ClassTLS        Class = "tls"       // TLS with a parseable ClientHello
	ClassMeek       Class = "meek"      // TLS to a known Tor meek front
	ClassPPTP       Class = "pptp"      // native VPN control channel
	ClassL2TP       Class = "l2tp"      // native VPN (L2TP variant)
	ClassOpenVPN    Class = "openvpn"   // OpenVPN handshake opcode
	ClassEncrypted  Class = "encrypted" // high-entropy, no known header
	ClassLowEntropy Class = "cleartext" // unrecognized but low entropy
)

// Protocol magics. PPTP's is the real magic cookie from RFC 2637; the
// OpenVPN opcode is P_CONTROL_HARD_RESET_CLIENT_V2 as in the real wire
// format — the GFW fingerprints both in practice.
var (
	pptpMagic = []byte{0x1A, 0x2B, 0x3C, 0x4D}
	l2tpMagic = []byte{0xC8, 0x02} // control flags+version pattern
)

const openVPNClientReset = 0x38

// minClassifyBytes is how much of the client's first flight DPI waits for
// before committing to ClassEncrypted/ClassLowEntropy.
const minClassifyBytes = 16

// lowEntropyLatchBytes is how much first-flight data a ClassLowEntropy
// verdict needs before it becomes final. Below it the verdict is
// provisional: the flow keeps buffering and may be re-classified — see
// inspectTCP.
const lowEntropyLatchBytes = 64

// classify fingerprints the first client→server bytes of a flow.
// meekFronts is the GFW's list of domain-fronting CDN hostnames associated
// with Tor's meek transport.
func classify(firstBytes []byte, meekFronts map[string]bool) Class {
	if len(firstBytes) == 0 {
		return ClassUnknown
	}
	if isHTTPPrefix(firstBytes) {
		return ClassHTTP
	}
	if tlssim.LooksLikeRecordHeader(firstBytes) {
		if sni, ok := tlssim.ParseClientHelloSNI(firstBytes); ok {
			if meekFronts[strings.ToLower(sni)] {
				return ClassMeek
			}
			return ClassTLS
		}
		if recLen := int(firstBytes[3])<<8 | int(firstBytes[4]); len(firstBytes) < 5+recLen {
			return ClassUnknown // incomplete ClientHello; keep buffering
		}
		return ClassTLS
	}
	if bytes.HasPrefix(firstBytes, pptpMagic) {
		return ClassPPTP
	}
	if bytes.HasPrefix(firstBytes, l2tpMagic) {
		return ClassL2TP
	}
	if firstBytes[0] == openVPNClientReset && len(firstBytes) >= 2 {
		return ClassOpenVPN
	}
	if len(firstBytes) < minClassifyBytes {
		return ClassUnknown
	}
	if shannonEntropy(firstBytes) >= 7.0 || looksUniformlyRandom(firstBytes) {
		return ClassEncrypted
	}
	return ClassLowEntropy
}

func isHTTPPrefix(b []byte) bool {
	for _, m := range []string{"GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "CONNECT ", "OPTIONS "} {
		if len(b) >= len(m) && string(b[:len(m)]) == m {
			return true
		}
		if len(b) < len(m) && m[:len(b)] == string(b) {
			return false // could still become HTTP; wait for more bytes
		}
	}
	return false
}

// httpHost extracts the Host (or absolute-URI authority) from a cleartext
// HTTP request head, the input to keyword filtering.
func httpHost(firstBytes []byte) (string, bool) {
	req, err := httpsim.ReadRequest(bufio.NewReader(bytes.NewReader(firstBytes)))
	if err != nil {
		// Fall back to a line scan when the body has not arrived yet.
		return scanHostHeader(firstBytes)
	}
	if req.Host != "" {
		return strings.ToLower(req.Host), true
	}
	if u, err := httpsim.ParseURL(req.Target); err == nil {
		return strings.ToLower(u.Host), true
	}
	if req.Method == "CONNECT" {
		host := req.Target
		if i := strings.LastIndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		return strings.ToLower(host), true
	}
	return "", false
}

func scanHostHeader(b []byte) (string, bool) {
	for _, line := range strings.Split(string(b), "\r\n") {
		if len(line) > 5 && strings.EqualFold(line[:5], "Host:") {
			return strings.ToLower(strings.TrimSpace(line[5:])), true
		}
	}
	// CONNECT target on the request line.
	if strings.HasPrefix(string(b), "CONNECT ") {
		fields := strings.Fields(string(b))
		if len(fields) >= 2 {
			host := fields[1]
			if i := strings.LastIndexByte(host, ':'); i >= 0 {
				host = host[:i]
			}
			return strings.ToLower(host), true
		}
	}
	return "", false
}

// shannonEntropy returns bits per byte over b.
func shannonEntropy(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	var counts [256]int
	for _, x := range b {
		counts[x]++
	}
	h := 0.0
	n := float64(len(b))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// looksUniformlyRandom applies the printable-ASCII heuristic the GFW uses
// for short first packets: encrypted streams have few printable bytes.
func looksUniformlyRandom(b []byte) bool {
	printable := 0
	for _, x := range b {
		if x >= 0x20 && x <= 0x7e {
			printable++
		}
	}
	return float64(printable)/float64(len(b)) < 0.5
}
