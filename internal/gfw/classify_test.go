package gfw

import (
	"testing"
	"testing/quick"
)

func TestHTTPHostExtraction(t *testing.T) {
	cases := []struct {
		name  string
		bytes string
		want  string
		ok    bool
	}{
		{"origin-form", "GET / HTTP/1.1\r\nHost: www.google.com\r\n\r\n", "www.google.com", true},
		{"absolute-uri", "GET http://scholar.google.com/x HTTP/1.1\r\n\r\n", "scholar.google.com", true},
		{"connect", "CONNECT scholar.google.com:443 HTTP/1.1\r\n\r\n", "scholar.google.com", true},
		{"case-insensitive", "GET / HTTP/1.1\r\nhOsT: MiXeD.Example\r\n\r\n", "mixed.example", true},
		{"partial-head", "GET / HTTP/1.1\r\nHost: partial.example\r\n", "partial.example", true},
		{"no-host", "GET / HTTP/1.1\r\n\r\n", "", false},
	}
	for _, c := range cases {
		got, ok := httpHost([]byte(c.bytes))
		if ok != c.ok || got != c.want {
			t.Errorf("%s: httpHost = (%q, %v), want (%q, %v)", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestScanForBlockedName(t *testing.T) {
	blocked := []string{"google.com", "facebook.com"}
	if _, ok := scanForBlockedName([]byte("S scholar.GOOGLE.com:443"), blocked); !ok {
		t.Error("mixed-case embedded name not found")
	}
	if _, ok := scanForBlockedName([]byte("innocent bytes"), blocked); ok {
		t.Error("false positive")
	}
	if _, ok := scanForBlockedName(nil, blocked); ok {
		t.Error("nil bytes matched")
	}
}

func TestClassifyNeverPanics(t *testing.T) {
	fronts := map[string]bool{"front.example": true}
	f := func(b []byte) bool {
		_ = classify(b, fronts)
		_, _ = httpHost(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyIncrementalHTTP(t *testing.T) {
	// Byte-by-byte delivery of an HTTP prefix must stay Unknown until
	// decidable, then become HTTP — never LowEntropy in between.
	full := []byte("GET / HTTP/1.1\r\nHost: x.example\r\n\r\n")
	for i := 1; i < len(full); i++ {
		c := classify(full[:i], nil)
		if c != ClassUnknown && c != ClassHTTP && i < minClassifyBytes {
			t.Fatalf("prefix %d classified %v", i, c)
		}
	}
	if c := classify(full, nil); c != ClassHTTP {
		t.Fatalf("full request classified %v", c)
	}
}
