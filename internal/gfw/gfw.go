// Package gfw implements the Great Firewall: a stateful censoring
// middlebox installed on the simulated border link between China and the
// rest of the internet.
//
// It reproduces the technical blocking mechanisms the paper (§1, §5) and
// the literature it cites attribute to the real GFW:
//
//   - DNS poisoning: queries for blacklisted names crossing the border are
//     answered with a forged A record that races (and beats) the genuine
//     answer.
//   - IP blocking: packets to or from blacklisted addresses are silently
//     dropped (blackholed).
//   - Keyword filtering / URL filtering: cleartext HTTP Hosts and TLS SNIs
//     matching the blacklist trigger forged RSTs to both endpoints.
//   - Deep packet inspection: the first client bytes of every flow are
//     fingerprinted (TLS, HTTP, PPTP, L2TP, OpenVPN, meek fronts,
//     unidentifiable-but-encrypted).
//   - Active probing: servers of unidentifiable encrypted flows are probed
//     by replaying captured bytes; servers that behave like Shadowsocks
//     (accept arbitrary high-entropy data, answer nothing, hold the
//     connection) are confirmed and their flows degraded. Servers that
//     drop the probe immediately — ScholarCloud's remote proxy — are not
//     confirmed.
//   - Interference: flows classified as circumvention (meek, confirmed
//     Shadowsocks) suffer deliberate packet loss, the paper's robustness
//     metric.
//
// The GFW never consults the ICP registry: technical blocking and
// non-technical regulation run asynchronously (§2), which is both why
// Google Scholar is incidentally blocked and why ScholarCloud's blinded,
// unconfirmable flows pass.
package gfw

import (
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scholarcloud/internal/dnssim"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
)

// Config parameterizes the firewall.
type Config struct {
	// Network and Zone locate the firewall: forged packets are injected
	// from Zone (the Chinese side of the border link).
	Network *netsim.Network
	Zone    *netsim.Zone
	// Clock and Spawn drive active probing.
	Clock netx.Clock
	Spawn netx.Spawner

	// BlockedDomains is the keyword blacklist (matches subdomains).
	BlockedDomains []string
	// BlockedIPs are blackholed addresses.
	BlockedIPs []string
	// PoisonIP is the address forged into poisoned DNS answers.
	PoisonIP string
	// MeekFronts are CDN hostnames the GFW associates with Tor's meek.
	MeekFronts []string

	// MeekLossRate is the deliberate drop probability applied to meek
	// flows (paper: Tor's measured PLR averaged 4.4%).
	MeekLossRate float64
	// ShadowsocksLossRate is applied to flows whose server has been
	// confirmed by active probing (paper: 0.77%).
	ShadowsocksLossRate float64

	// ProbeDelay is how long after suspicion the active probe launches.
	ProbeDelay time.Duration
	// ProbeFrom is the GFW-controlled host probes originate from. Its
	// own traffic is exempt from inspection. Nil disables probing.
	ProbeFrom *netsim.Host

	// Seed drives the deterministic interference-loss draws.
	Seed uint64
}

// Stats counts the firewall's actions.
type Stats struct {
	PacketsInspected  int64
	FlowsTracked      int64
	DNSPoisoned       int64
	IPBlocked         int64
	KeywordResets     int64
	ProbesLaunched    int64
	ServersConfirmed  int64
	ServersExonerated int64
	InterferenceDrops int64
	StormResets       int64
	ThrottleDrops     int64
	ClassResets       int64
}

type flowState struct {
	clientIP   string // initiator (first SYN seen)
	serverIP   string
	serverPort int
	firstBytes []byte // client→server prefix for DPI
	class      Class
	classified bool
	blockedKW  bool
}

// GFW is the firewall. It implements netsim.Inspector.
type GFW struct {
	cfg        Config
	meekFronts map[string]bool

	mu         sync.Mutex
	flows      map[netsim.FlowKey]*flowState
	blockedIP  map[string]bool
	confirmed  map[string]bool // "ip:port" -> confirmed circumvention server
	cleared    map[string]bool // probed and exonerated
	probing    map[string]bool // probe in flight
	classCount map[Class]int64
	stats      Stats

	// Episode state, set at runtime via Apply (zero = inactive).
	stormRate    float64 // prob. a tracked TCP packet draws forged RSTs
	throttleLoss float64 // extra drop prob. on every tracked TCP packet
	// scrutinizeCleartext keeps small-sample cleartext verdicts
	// provisional even outside a crackdown (Policy.ScrutinizeCleartext).
	scrutinizeCleartext bool

	// blockedClass marks traffic classes under a fingerprint crackdown:
	// every packet of a classified flow in a blocked class is answered
	// with forged RSTs. Set at runtime via Apply; the transport
	// escalation experiments use it to kill one carrier rung at a time.
	blockedClass map[Class]bool

	flowTrace atomic.Pointer[obs.Trace]
	// obsVerdicts counts Inspect outcomes, indexed by netsim.Verdict.
	// Resolved once in Instrument; nil entries mean unobserved.
	obsVerdicts [3]*metrics.Counter
}

// knownClasses is every class DPI can assign, for metric registration.
var knownClasses = []Class{
	ClassUnknown, ClassHTTP, ClassTLS, ClassMeek, ClassPPTP,
	ClassL2TP, ClassOpenVPN, ClassEncrypted, ClassLowEntropy,
}

// Instrument publishes the firewall's verdict, per-class and mechanism
// counters on reg. Call once, before traffic starts.
func (g *GFW) Instrument(reg *obs.Registry) {
	g.obsVerdicts[netsim.VerdictPass] = reg.Counter("gfw.verdicts.pass")
	g.obsVerdicts[netsim.VerdictDrop] = reg.Counter("gfw.verdicts.drop")
	g.obsVerdicts[netsim.VerdictReset] = reg.Counter("gfw.verdicts.reset")
	for _, c := range knownClasses {
		c := c
		reg.RegisterFunc("gfw.class."+string(c), func() int64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return g.classCount[c]
		})
	}
	for name, read := range map[string]func(Stats) int64{
		"gfw.packets_inspected":  func(s Stats) int64 { return s.PacketsInspected },
		"gfw.flows_tracked":      func(s Stats) int64 { return s.FlowsTracked },
		"gfw.dns_poisoned":       func(s Stats) int64 { return s.DNSPoisoned },
		"gfw.ip_blocked":         func(s Stats) int64 { return s.IPBlocked },
		"gfw.keyword_resets":     func(s Stats) int64 { return s.KeywordResets },
		"gfw.probes_launched":    func(s Stats) int64 { return s.ProbesLaunched },
		"gfw.servers_confirmed":  func(s Stats) int64 { return s.ServersConfirmed },
		"gfw.servers_exonerated": func(s Stats) int64 { return s.ServersExonerated },
		"gfw.interference_drops": func(s Stats) int64 { return s.InterferenceDrops },
		"gfw.storm_resets":       func(s Stats) int64 { return s.StormResets },
		"gfw.throttle_drops":     func(s Stats) int64 { return s.ThrottleDrops },
		"gfw.class_resets":       func(s Stats) int64 { return s.ClassResets },
	} {
		read := read
		reg.RegisterFunc(name, func() int64 { return read(g.Stats()) })
	}
}

// BlockedClasses reports the classes currently under a crackdown.
func (g *GFW) BlockedClasses() []Class {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Class, 0, len(g.blockedClass))
	for c := range g.blockedClass {
		out = append(out, c)
	}
	slices.Sort(out)
	return out
}

// SetTrace installs (or, with nil, removes) a flow tracer receiving a span
// for every classification, keyword reset, DNS poisoning, IP block,
// interference drop and active-probe event.
func (g *GFW) SetTrace(t *obs.Trace) { g.flowTrace.Store(t) }

// New creates a firewall from cfg.
func New(cfg Config) *GFW {
	g := &GFW{
		cfg:          cfg,
		meekFronts:   make(map[string]bool),
		flows:        make(map[netsim.FlowKey]*flowState),
		blockedIP:    make(map[string]bool),
		confirmed:    make(map[string]bool),
		cleared:      make(map[string]bool),
		probing:      make(map[string]bool),
		classCount:   make(map[Class]int64),
		blockedClass: make(map[Class]bool),
	}
	for _, f := range cfg.MeekFronts {
		g.meekFronts[strings.ToLower(f)] = true
	}
	for _, ip := range cfg.BlockedIPs {
		g.blockedIP[ip] = true
	}
	return g
}

// Stats returns a snapshot of the firewall's counters.
func (g *GFW) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// ClassCounts returns how many flows DPI assigned to each class.
func (g *GFW) ClassCounts() map[Class]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[Class]int64, len(g.classCount))
	for c, n := range g.classCount {
		out[c] = n
	}
	return out
}

// ConfirmedServers lists endpoints active probing has confirmed.
func (g *GFW) ConfirmedServers() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.confirmed))
	for ep := range g.confirmed {
		out = append(out, ep)
	}
	return out
}

// domainBlocked reports whether host matches the keyword blacklist.
func (g *GFW) domainBlocked(host string) bool {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	for _, d := range g.cfg.BlockedDomains {
		if host == d || strings.HasSuffix(host, "."+d) {
			return true
		}
	}
	return false
}

// Inspect implements netsim.Inspector. It runs on the simulator's driver
// goroutine for every packet crossing the border link, in both
// directions.
func (g *GFW) Inspect(pkt *netsim.Packet) netsim.Verdict {
	v := g.inspect(pkt)
	if c := g.obsVerdicts[v]; c != nil {
		c.Inc()
	}
	return v
}

// inspect is the single funnel behind Inspect so verdict accounting has
// one exit point.
func (g *GFW) inspect(pkt *netsim.Packet) netsim.Verdict {
	// The firewall's own probe traffic is exempt.
	if g.cfg.ProbeFrom != nil {
		ip := g.cfg.ProbeFrom.IP()
		if pkt.Src.IP == ip || pkt.Dst.IP == ip {
			return netsim.VerdictPass
		}
	}

	g.mu.Lock()
	g.stats.PacketsInspected++

	// IP blocking: silent blackhole, both directions.
	if g.blockedIP[pkt.Src.IP] || g.blockedIP[pkt.Dst.IP] {
		g.stats.IPBlocked++
		g.mu.Unlock()
		g.flowTrace.Load().Addf("gfw", "ip-block", "%s -> %s", pkt.Src, pkt.Dst)
		return netsim.VerdictDrop
	}

	switch pkt.Proto {
	case netsim.ProtoUDP:
		v := g.inspectUDPLocked(pkt)
		g.mu.Unlock()
		return v
	case netsim.ProtoTCP:
		return g.inspectTCP(pkt) // unlocks internally
	}
	g.mu.Unlock()
	return netsim.VerdictPass
}

// inspectUDPLocked handles datagrams; DNS poisoning lives here.
func (g *GFW) inspectUDPLocked(pkt *netsim.Packet) netsim.Verdict {
	if pkt.Dst.Port != 53 {
		return netsim.VerdictPass
	}
	id, name, err := dnssim.ParseQuery(pkt.Payload)
	if err != nil || !g.domainBlocked(name) {
		return netsim.VerdictPass
	}
	// Forge an answer that races the genuine one. The query itself is
	// passed through — the real GFW lets it go and wins the race because
	// it answers from the border.
	g.stats.DNSPoisoned++
	g.flowTrace.Load().Addf("gfw", "dns-poison", "%s -> %s", name, g.cfg.PoisonIP)
	forged := &dnssim.Message{
		ID:       id,
		Response: true,
		Question: dnssim.Question{Name: name, Type: dnssim.TypeA},
		Answers: []dnssim.RR{{
			Name: name,
			Type: dnssim.TypeA,
			TTL:  3600,
			Data: g.cfg.PoisonIP,
		}},
	}
	wire, err := forged.Marshal()
	if err == nil {
		g.cfg.Network.InjectToward(g.cfg.Zone, g.cfg.Network.NewPacket(netsim.Packet{
			Proto:   netsim.ProtoUDP,
			Src:     pkt.Dst, // spoofed: appears to come from the resolver
			Dst:     pkt.Src,
			Payload: wire,
			Wire:    len(wire) + 28,
		}))
	}
	return netsim.VerdictPass
}

// inspectTCP tracks flows, fingerprints first bytes, applies keyword
// resets and interference. Called with g.mu held; unlocks before
// returning.
func (g *GFW) inspectTCP(pkt *netsim.Packet) netsim.Verdict {
	key := pkt.FlowKey()
	fs, ok := g.flows[key]
	if !ok {
		if pkt.RST {
			g.mu.Unlock()
			return netsim.VerdictPass
		}
		fs = &flowState{}
		if pkt.SYN && !pkt.ACK {
			fs.clientIP = pkt.Src.IP
			fs.serverIP = pkt.Dst.IP
			fs.serverPort = pkt.Dst.Port
		} else {
			// Mid-flow pickup: assume the lower port is the server.
			if pkt.Src.Port < pkt.Dst.Port {
				fs.clientIP, fs.serverIP, fs.serverPort = pkt.Dst.IP, pkt.Src.IP, pkt.Src.Port
			} else {
				fs.clientIP, fs.serverIP, fs.serverPort = pkt.Src.IP, pkt.Dst.IP, pkt.Dst.Port
			}
		}
		g.flows[key] = fs
		g.stats.FlowsTracked++
	}
	if pkt.FIN || pkt.RST {
		// Flow ending; forget it once both sides are done. Approximation:
		// drop state on first FIN/RST — retransmissions re-create it as
		// mid-flow pickups, which is harmless.
		defer delete(g.flows, key)
	}

	// Buffer the client's first flight for DPI.
	if !fs.classified && pkt.Src.IP == fs.clientIP && len(pkt.Payload) > 0 {
		if len(fs.firstBytes) < 2048 {
			fs.firstBytes = append(fs.firstBytes, pkt.Payload...)
		}
		class := classify(fs.firstBytes, g.meekFronts)
		if class != ClassUnknown {
			// During a class crackdown — or whenever the policy raises
			// ScrutinizeCleartext — a cleartext verdict on a tiny sample
			// stays provisional: a couple of 9-byte keepalive frames look
			// printable under a byte-substitution cipher, and latching on
			// them would leave the flow permanently immune to an
			// encrypted-fingerprint crackdown. Keep buffering and
			// re-examine until enough of the first flight has crossed to
			// commit. Otherwise the verdict latches immediately
			// (steady-state DPI spends no extra scrutiny on a flow it has
			// no reason to reset).
			fs.classified = class != ClassLowEntropy ||
				len(fs.firstBytes) >= lowEntropyLatchBytes ||
				(len(g.blockedClass) == 0 && !g.scrutinizeCleartext)
			changed := class != fs.class
			if changed {
				fs.class = class
				g.classCount[fs.class]++
				g.onClassifiedLocked(fs)
			}
			if t := g.flowTrace.Load(); changed && t != nil {
				treatment := "pass"
				switch {
				case fs.blockedKW:
					treatment = "keyword-reset"
				case fs.class == ClassMeek && g.cfg.MeekLossRate > 0:
					treatment = "interfere"
				case fs.class == ClassEncrypted && g.confirmed[endpoint(fs.serverIP, fs.serverPort)]:
					treatment = "interfere"
				}
				t.Addf("gfw", "classify", "%s class=%s verdict=%s",
					endpoint(fs.serverIP, fs.serverPort), fs.class, treatment)
			}
		}
	}

	// Keyword filtering: blocked Host/SNI gets forged RSTs.
	if fs.blockedKW {
		g.stats.KeywordResets++
		g.mu.Unlock()
		g.flowTrace.Load().Addf("gfw", "keyword-reset", "%s -> %s", pkt.Src, pkt.Dst)
		return netsim.VerdictReset
	}

	// Fingerprint crackdown: flows whose class is under a block get
	// forged RSTs — the censor move the transport ladder escapes from.
	// A provisional verdict counts: during a crackdown the censor acts
	// on its best guess rather than waiting out DPI.
	if g.blockedClass[fs.class] {
		g.stats.ClassResets++
		class := fs.class
		g.mu.Unlock()
		g.flowTrace.Load().Addf("gfw", "class-reset", "%s %s -> %s", class, pkt.Src, pkt.Dst)
		return netsim.VerdictReset
	}

	// Episodic interference (fault-injected): a reset storm answers a
	// fraction of tracked flows' packets with forged RSTs; a throttling
	// episode drops an extra fraction of every packet crossing the border.
	if g.stormRate > 0 && g.lossDraw(pkt.ID^0x57072) < g.stormRate {
		g.stats.StormResets++
		g.mu.Unlock()
		g.flowTrace.Load().Addf("gfw", "storm-reset", "%s -> %s", pkt.Src, pkt.Dst)
		return netsim.VerdictReset
	}
	if g.throttleLoss > 0 && g.lossDraw(pkt.ID^0x7407713) < g.throttleLoss {
		g.stats.ThrottleDrops++
		g.mu.Unlock()
		g.flowTrace.Load().Addf("gfw", "throttle-drop", "%s -> %s", pkt.Src, pkt.Dst)
		return netsim.VerdictDrop
	}

	// Interference against classified circumvention flows.
	drop := 0.0
	switch fs.class {
	case ClassMeek:
		drop = g.cfg.MeekLossRate
	case ClassEncrypted:
		if g.confirmed[endpoint(fs.serverIP, fs.serverPort)] {
			drop = g.cfg.ShadowsocksLossRate
		}
	}
	if drop > 0 && g.lossDraw(pkt.ID) < drop {
		g.stats.InterferenceDrops++
		class := fs.class
		g.mu.Unlock()
		g.flowTrace.Load().Addf("gfw", "interference-drop", "%s %s -> %s",
			class, pkt.Src, pkt.Dst)
		return netsim.VerdictDrop
	}
	g.mu.Unlock()
	return netsim.VerdictPass
}

// onClassifiedLocked applies first-classification policy.
func (g *GFW) onClassifiedLocked(fs *flowState) {
	switch fs.class {
	case ClassHTTP:
		if host, ok := httpHost(fs.firstBytes); ok && g.domainBlocked(host) {
			fs.blockedKW = true
		}
	case ClassTLS:
		if sni, ok := sniOf(fs.firstBytes); ok && g.domainBlocked(sni) {
			fs.blockedKW = true
		}
	case ClassEncrypted:
		ep := endpoint(fs.serverIP, fs.serverPort)
		if !g.confirmed[ep] && !g.cleared[ep] && !g.probing[ep] && g.cfg.ProbeFrom != nil {
			g.probing[ep] = true
			g.scheduleProbeLocked(ep, append([]byte(nil), fs.firstBytes...))
		}
	case ClassLowEntropy:
		// Unrecognized cleartext: the GFW's keyword filter scans raw
		// payloads too (Crandall et al.'s ConceptDoppler measured this
		// backbone-level HTML/keyword filtering). An unblinded
		// ScholarCloud tunnel leaks its targets here — the mechanism that
		// makes message blinding necessary.
		if host, ok := scanForBlockedName(fs.firstBytes, g.cfg.BlockedDomains); ok {
			_ = host
			fs.blockedKW = true
		}
	}
}

// scanForBlockedName searches raw bytes for any blacklisted name.
func scanForBlockedName(b []byte, blocked []string) (string, bool) {
	lower := strings.ToLower(string(b))
	for _, d := range blocked {
		if strings.Contains(lower, d) {
			return d, true
		}
	}
	return "", false
}

func endpoint(ip string, port int) string {
	return ip + ":" + itoa(port)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// lossDraw returns a deterministic pseudo-random value in [0,1) per
// packet.
func (g *GFW) lossDraw(pktID uint64) float64 {
	x := g.cfg.Seed ^ (pktID * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func sniOf(b []byte) (string, bool) {
	return parseSNI(b)
}
