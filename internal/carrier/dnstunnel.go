// The DNS-tunnel carrier: mux frames chunked into DNS query/response
// records through ordinary recursive resolvers. Upstream bytes ride as
// base32 labels of TXT queries for an innocuous domain (~150-byte MTU);
// downstream bytes come back as raw TXT RDATA (~1.1 KB MTU). The
// protocol is lock-step half-duplex — one outstanding exchange per
// connection, retransmitted on timeout while rotating through the
// resolver pool — which keeps it correct over unreliable datagrams at
// the cost of being the slowest rung of the ladder. The censor sees only
// well-formed queries for a name nobody blacklists, on a port it cannot
// afford to close.
package carrier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/dnssim"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
)

// Tunnel frame layout: queries carry connID(4) seq(2) flags(1) data;
// responses carry seq(2) flags(1) data inside TXT RDATA.
const (
	tunnelHeaderLen     = 7
	tunnelRespHeaderLen = 3

	tunnelSYN byte = 1 << 0 // first frame: establish conn, dial backend
	tunnelFIN byte = 1 << 1 // client is done

	tunnelRespMore byte = 1 << 0 // server has more downstream data queued
	tunnelRespFIN  byte = 1 << 1 // backend closed
	tunnelRespErr  byte = 1 << 2 // unknown conn or backend failure
)

// Tunnel protocol defaults.
const (
	// DefaultTunnelPoll paces empty polls that give the server a channel
	// to push downstream data.
	DefaultTunnelPoll = 250 * time.Millisecond
	// DefaultTunnelRespTimeout bounds one query/response exchange before
	// the client retransmits via the next resolver.
	DefaultTunnelRespTimeout = 2 * time.Second
	// DefaultTunnelRetries is the retransmit budget per exchange.
	DefaultTunnelRetries = 5
	// DefaultTunnelDownMTU bounds downstream TXT RDATA so the whole
	// response fits a conventional-size datagram.
	DefaultTunnelDownMTU = 1100
)

// ErrTunnelDown reports an exchange that exhausted its retransmit budget.
var ErrTunnelDown = errors.New("carrier: dns tunnel unresponsive")

// TunnelConfig configures the client side of the DNS tunnel.
type TunnelConfig struct {
	Env netx.Env
	// Dialer opens the client's UDP sockets toward the resolvers.
	Dialer netx.Dialer
	// Resolvers is the pool of recursive resolvers ("ip:53") queries
	// rotate through.
	Resolvers []string
	// Domain is the innocuous tunnel zone.
	Domain string
	// Wrap layers the blinded mux session onto tunnel connections.
	Wrap WrapFunc
	// Seed derives connection IDs deterministically.
	Seed uint64
	// PollInterval, RespTimeout, Retries, and DownMTU default to the
	// DefaultTunnel* constants when zero.
	PollInterval time.Duration
	RespTimeout  time.Duration
	Retries      int
	DownMTU      int
}

// Tunnel is the client-side DNS-tunnel Transport.
type Tunnel struct {
	cfg   TunnelConfig
	upMTU int

	mu    sync.Mutex
	conns uint64

	queries     metrics.Counter
	retransmits metrics.Counter
}

// NewTunnel builds the tunnel transport. It panics on an empty resolver
// pool or a domain too long to carry any payload.
func NewTunnel(cfg TunnelConfig) *Tunnel {
	if len(cfg.Resolvers) == 0 {
		panic("carrier: dns tunnel needs at least one resolver")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultTunnelPoll
	}
	if cfg.RespTimeout <= 0 {
		cfg.RespTimeout = DefaultTunnelRespTimeout
	}
	if cfg.Retries <= 0 {
		cfg.Retries = DefaultTunnelRetries
	}
	if cfg.DownMTU <= 0 {
		cfg.DownMTU = DefaultTunnelDownMTU
	}
	up := dnssim.MaxTunnelPayload(cfg.Domain) - tunnelHeaderLen
	if up < 16 {
		panic(fmt.Sprintf("carrier: tunnel domain %q leaves a %d-byte MTU", cfg.Domain, up))
	}
	return &Tunnel{cfg: cfg, upMTU: up}
}

// Name implements Transport.
func (t *Tunnel) Name() string { return DNSTunnel }

// Wrap implements Transport.
func (t *Tunnel) Wrap(raw net.Conn) *mux.Session { return t.cfg.Wrap(raw) }

// UpMTU reports the per-query payload capacity under the tunnel domain.
func (t *Tunnel) UpMTU() int { return t.upMTU }

// Instrument registers the tunnel's client-side counters.
func (t *Tunnel) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("carrier.tunnel.queries", &t.queries)
	reg.RegisterCounter("carrier.tunnel.retransmits", &t.retransmits)
}

// Dial implements Transport: it establishes a tunnel connection with a
// SYN exchange and starts the downstream poll loop.
func (t *Tunnel) Dial() (net.Conn, error) {
	t.mu.Lock()
	t.conns++
	id := uint32(splitmix(t.cfg.Seed^0xD4157, t.conns))
	t.mu.Unlock()

	c := &tunnelConn{t: t, connID: id}
	c.cond = t.cfg.Env.Sync.NewCond(&c.mu)
	if err := c.exchange(tunnelSYN, nil); err != nil {
		return nil, err
	}
	t.cfg.Env.Spawn.Go(c.pollLoop)
	return c, nil
}

// tunnelConn is one lock-step tunnel connection. It implements net.Conn.
type tunnelConn struct {
	t      *Tunnel
	connID uint32

	// seq, qid, and rot belong to the busy-holder: the protocol allows
	// one outstanding exchange per connection, serialized below via the
	// busy flag (a plain mutex must never be held across the managed
	// blocking inside an exchange).
	seq uint16
	qid uint16
	rot int

	mu           sync.Mutex
	cond         netx.Cond
	busy         bool
	readBuf      []byte
	more         bool
	err          error
	closed       bool
	remoteClosed bool
	deadline     time.Time
	ddTimer      netx.Timer
}

// exchange performs one lock-step query/response round trip (plus any
// immediate follow-up polls while the server reports queued data),
// retransmitting through the resolver pool on loss.
func (c *tunnelConn) exchange(flags byte, data []byte) error {
	c.mu.Lock()
	for c.busy && c.err == nil {
		c.cond.Wait()
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.busy = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.busy = false
		c.cond.Broadcast()
		c.mu.Unlock()
	}()

	if err := c.roundTrip(flags, data); err != nil {
		return err
	}
	// Drain queued downstream data without waiting for the next poll
	// tick: the server's "more" bit invites an immediate empty poll.
	for c.pendingMore() {
		if err := c.roundTrip(0, nil); err != nil {
			return err
		}
	}
	return nil
}

func (c *tunnelConn) pendingMore() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.more && c.err == nil && !c.closed
}

func (c *tunnelConn) roundTrip(flags byte, data []byte) error {
	c.seq++
	payload := make([]byte, tunnelHeaderLen, tunnelHeaderLen+len(data))
	binary.BigEndian.PutUint32(payload[0:], c.connID)
	binary.BigEndian.PutUint16(payload[4:], c.seq)
	payload[6] = flags
	payload = append(payload, data...)

	for attempt := 0; attempt < c.t.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.t.retransmits.Inc()
		}
		resolver := c.t.cfg.Resolvers[c.rot%len(c.t.cfg.Resolvers)]
		c.rot++
		resp, err := c.query(resolver, payload)
		if err != nil {
			continue
		}
		if len(resp) < tunnelRespHeaderLen {
			continue
		}
		rseq := binary.BigEndian.Uint16(resp[0:])
		rflags := resp[2]
		if rseq != c.seq {
			continue // stale retransmit answer
		}
		if rflags&tunnelRespErr != 0 {
			err := fmt.Errorf("carrier: tunnel conn %08x rejected by server", c.connID)
			c.fail(err)
			return err
		}
		c.deliver(resp[tunnelRespHeaderLen:], rflags)
		return nil
	}
	err := fmt.Errorf("%w (conn %08x seq %d)", ErrTunnelDown, c.connID, c.seq)
	c.fail(err)
	return err
}

// query performs one DNS round trip via one resolver. Every attempt uses
// a fresh socket, so late answers to earlier attempts die with their
// ports.
func (c *tunnelConn) query(resolver string, payload []byte) ([]byte, error) {
	c.qid++
	qname, err := dnssim.EncodeTunnelName(payload, c.t.cfg.Domain)
	if err != nil {
		return nil, err
	}
	msg := &dnssim.Message{ID: c.qid, Question: dnssim.Question{Name: qname, Type: dnssim.TypeTXT}}
	wire, err := msg.Marshal()
	if err != nil {
		return nil, err
	}
	conn, err := c.t.cfg.Dialer.Dial("udp", resolver)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c.t.queries.Inc()
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	env := c.t.cfg.Env
	conn.SetReadDeadline(env.Clock.Now().Add(c.t.cfg.RespTimeout))
	buf := make([]byte, 2048)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := dnssim.Unmarshal(buf[:n])
		if err != nil || !resp.Response || resp.ID != c.qid {
			continue
		}
		for _, rr := range resp.Answers {
			if rr.Type == dnssim.TypeTXT {
				return rr.Raw, nil
			}
		}
		return nil, fmt.Errorf("carrier: tunnel answer without TXT record")
	}
}

func (c *tunnelConn) deliver(data []byte, rflags byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(data) > 0 {
		c.readBuf = append(c.readBuf, data...)
	}
	c.more = rflags&tunnelRespMore != 0
	if rflags&tunnelRespFIN != 0 {
		c.remoteClosed = true
	}
	c.cond.Broadcast()
}

// pollLoop gives the server a downstream channel: with no upstream
// traffic, periodic empty queries pick up whatever the backend sent.
func (c *tunnelConn) pollLoop() {
	for {
		c.t.cfg.Env.Clock.Sleep(c.t.cfg.PollInterval)
		c.mu.Lock()
		stop := c.closed || c.err != nil || c.remoteClosed
		c.mu.Unlock()
		if stop {
			return
		}
		if c.exchange(0, nil) != nil {
			return
		}
	}
}

func (c *tunnelConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Read implements net.Conn.
func (c *tunnelConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.readBuf) > 0 {
			n := copy(b, c.readBuf)
			c.readBuf = c.readBuf[n:]
			if len(c.readBuf) == 0 {
				c.readBuf = nil
			}
			return n, nil
		}
		if c.err != nil {
			return 0, c.err
		}
		if c.closed {
			return 0, net.ErrClosed
		}
		if c.remoteClosed {
			return 0, io.EOF
		}
		if !c.deadline.IsZero() && !c.t.cfg.Env.Clock.Now().Before(c.deadline) {
			return 0, &DialError{Transport: DNSTunnel}
		}
		c.cond.Wait()
	}
}

// Write implements net.Conn, chunking at the tunnel's upstream MTU.
func (c *tunnelConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.mu.Unlock()

	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > c.t.upMTU {
			n = c.t.upMTU
		}
		if err := c.exchange(0, b[:n]); err != nil {
			return total, err
		}
		b = b[n:]
		total += n
	}
	return total, nil
}

// Close implements net.Conn. The FIN exchange is best-effort: if the
// tunnel is already dead the server state ages out with the world.
func (c *tunnelConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	dead := c.err != nil
	c.cond.Broadcast()
	c.mu.Unlock()
	if !dead {
		c.exchange(tunnelFIN, nil)
	}
	return nil
}

// LocalAddr implements net.Conn.
func (c *tunnelConn) LocalAddr() net.Addr { return tunnelAddr{c.connID} }

// RemoteAddr implements net.Conn.
func (c *tunnelConn) RemoteAddr() net.Addr { return tunnelAddr{c.connID} }

// SetDeadline implements net.Conn (read side; writes block only on the
// lock-step exchange, which has its own retransmit budget).
func (c *tunnelConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *tunnelConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadline = t
	if c.ddTimer != nil {
		c.ddTimer.Stop()
		c.ddTimer = nil
	}
	if !t.IsZero() {
		d := t.Sub(c.t.cfg.Env.Clock.Now())
		c.ddTimer = c.t.cfg.Env.Clock.AfterFunc(d, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
	}
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *tunnelConn) SetWriteDeadline(time.Time) error { return nil }

// WriteBlocksManaged tells mux that Write runs whole DNS round trips
// under the virtual clock, so frame writes must be serialized with a
// managed token rather than an OS mutex (see mux.managedWriteConn).
func (c *tunnelConn) WriteBlocksManaged() bool { return true }

type tunnelAddr struct{ id uint32 }

func (a tunnelAddr) Network() string { return "dns-tunnel" }
func (a tunnelAddr) String() string  { return fmt.Sprintf("tunnel-%08x", a.id) }

// --- Server side -----------------------------------------------------------

// TunnelServerConfig configures the authoritative tunnel endpoint.
type TunnelServerConfig struct {
	Env netx.Env
	// Domain is the tunnel zone this server answers for.
	Domain string
	// Backend dials the upstream the decoded byte stream is piped to
	// (the remote proxy's carrier port).
	Backend func() (net.Conn, error)
	// DownMTU bounds downstream TXT RDATA (DefaultTunnelDownMTU when
	// zero).
	DownMTU int
}

// TunnelServer terminates the DNS tunnel: it decodes query names back
// into the upstream byte stream, pipes it to the backend, and returns
// downstream bytes as TXT answers.
type TunnelServer struct {
	cfg TunnelServerConfig

	mu    sync.Mutex
	conns map[uint32]*tunnelState
}

type tunnelState struct {
	mu       sync.Mutex
	backend  net.Conn
	lastSeq  uint16
	lastResp []byte
	buf      []byte
	eof      bool
	failed   bool
}

// NewTunnelServer builds the server.
func NewTunnelServer(cfg TunnelServerConfig) *TunnelServer {
	if cfg.DownMTU <= 0 {
		cfg.DownMTU = DefaultTunnelDownMTU
	}
	return &TunnelServer{cfg: cfg, conns: make(map[uint32]*tunnelState)}
}

// Serve answers tunnel queries on pc until pc closes. Run it on a
// managed goroutine. Queries are handled concurrently so one client's
// backend dial never stalls another's exchange.
func (s *TunnelServer) Serve(pc net.PacketConn) {
	buf := make([]byte, 2048)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		wire := append([]byte(nil), buf[:n]...)
		s.cfg.Env.Spawn.Go(func() {
			if resp := s.handleQuery(wire); resp != nil {
				pc.WriteTo(resp, addr)
			}
		})
	}
}

func (s *TunnelServer) handleQuery(wire []byte) []byte {
	q, err := dnssim.Unmarshal(wire)
	if err != nil || q.Response || q.Question.Type != dnssim.TypeTXT {
		return nil
	}
	payload, err := dnssim.DecodeTunnelName(q.Question.Name, s.cfg.Domain)
	if err != nil || len(payload) < tunnelHeaderLen {
		return nil
	}
	raw := s.handleFrame(payload)
	resp := &dnssim.Message{
		ID:       q.ID,
		Response: true,
		Question: q.Question,
		Answers: []dnssim.RR{
			// The short zone name keeps the whole answer inside a
			// conventional datagram even at full downstream MTU.
			{Name: s.cfg.Domain, Type: dnssim.TypeTXT, TTL: 0, Raw: raw},
		},
	}
	out, err := resp.Marshal()
	if err != nil {
		return nil
	}
	return out
}

func respHeader(seq uint16, flags byte) []byte {
	h := make([]byte, tunnelRespHeaderLen)
	binary.BigEndian.PutUint16(h[0:], seq)
	h[2] = flags
	return h
}

func (s *TunnelServer) handleFrame(payload []byte) []byte {
	connID := binary.BigEndian.Uint32(payload[0:])
	seq := binary.BigEndian.Uint16(payload[4:])
	flags := payload[6]
	data := payload[tunnelHeaderLen:]

	s.mu.Lock()
	st := s.conns[connID]
	if st == nil {
		if flags&tunnelSYN == 0 {
			s.mu.Unlock()
			return respHeader(seq, tunnelRespErr)
		}
		// Register before dialing so a retransmitted SYN replays the
		// cached answer instead of opening a second backend.
		st = &tunnelState{lastSeq: seq, lastResp: respHeader(seq, 0)}
		s.conns[connID] = st
		s.mu.Unlock()
		backend, err := s.cfg.Backend()
		st.mu.Lock()
		if err != nil {
			st.failed = true
			st.mu.Unlock()
			return respHeader(seq, tunnelRespErr)
		}
		st.backend = backend
		st.mu.Unlock()
		s.readBackend(st, backend)
		return respHeader(seq, 0)
	}
	s.mu.Unlock()

	st.mu.Lock()
	if st.failed {
		st.mu.Unlock()
		return respHeader(seq, tunnelRespErr)
	}
	if seq == st.lastSeq {
		resp := st.lastResp
		st.mu.Unlock()
		return resp // retransmit: replay the cached answer
	}
	if seq != st.lastSeq+1 {
		st.mu.Unlock()
		return respHeader(seq, tunnelRespErr)
	}
	st.lastSeq = seq
	backend := st.backend

	if flags&tunnelFIN != 0 {
		resp := respHeader(seq, tunnelRespFIN)
		st.lastResp = resp
		st.mu.Unlock()
		s.mu.Lock()
		delete(s.conns, connID)
		s.mu.Unlock()
		if backend != nil {
			backend.Close()
		}
		return resp
	}

	// Assemble the downstream slice and cache it before touching the
	// backend, so a racing retransmit replays a consistent answer.
	n := len(st.buf)
	if n > s.cfg.DownMTU {
		n = s.cfg.DownMTU
	}
	var rflags byte
	if len(st.buf) > n {
		rflags |= tunnelRespMore
	}
	if st.eof && len(st.buf) == n {
		rflags |= tunnelRespFIN
	}
	resp := append(respHeader(seq, rflags), st.buf[:n]...)
	st.buf = st.buf[n:]
	if len(st.buf) == 0 {
		st.buf = nil
	}
	st.lastResp = resp
	st.mu.Unlock()

	if len(data) > 0 && backend != nil {
		if _, err := backend.Write(data); err != nil {
			st.mu.Lock()
			st.eof = true
			st.mu.Unlock()
		}
	}
	return resp
}

// readBackend pumps downstream bytes into the per-connection buffer.
func (s *TunnelServer) readBackend(st *tunnelState, backend net.Conn) {
	s.cfg.Env.Spawn.Go(func() {
		buf := make([]byte, 4096)
		for {
			n, err := backend.Read(buf)
			st.mu.Lock()
			if n > 0 {
				st.buf = append(st.buf, buf[:n]...)
			}
			if err != nil {
				st.eof = true
				st.mu.Unlock()
				return
			}
			st.mu.Unlock()
		}
	})
}

// ServeRelay runs a recursive resolver reduced to the only behavior the
// tunnel needs: forward each query datagram upstream, relay the answer
// back. Run it on a managed goroutine; it returns when pc closes.
func ServeRelay(env netx.Env, pc net.PacketConn, dial netx.Dialer, upstream string, timeout time.Duration) {
	buf := make([]byte, 2048)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		q := append([]byte(nil), buf[:n]...)
		env.Spawn.Go(func() {
			uc, err := dial.Dial("udp", upstream)
			if err != nil {
				return
			}
			defer uc.Close()
			if _, err := uc.Write(q); err != nil {
				return
			}
			uc.SetReadDeadline(env.Clock.Now().Add(timeout))
			resp := make([]byte, 2048)
			rn, err := uc.Read(resp)
			if err != nil {
				return
			}
			pc.WriteTo(resp[:rn], addr)
		})
	}
}

// splitmix is the deterministic draw used for connection IDs and
// endpoint picks (splitmix64 over seed and a sequence number).
func splitmix(seed, n uint64) uint64 {
	x := seed ^ (n * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
