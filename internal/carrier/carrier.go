// Package carrier abstracts the domestic↔remote hop behind a pluggable
// transport interface. The paper's deployment survives because that hop
// looks innocuous; this package makes the disguise swappable so a censor
// that fingerprints one carrier does not win outright.
//
// Three transports implement the interface:
//
//   - Blinded (carrier.Blinded): the legacy path — a direct TCP
//     connection to the remote proxy carrying blinded mux frames. Fastest,
//     but its uniform high-entropy byte stream is fingerprintable.
//   - Rendezvous (carrier.Rendezvous): CensorLess-style serverless
//     rendezvous — each dial invokes an ephemeral endpoint drawn from a
//     large address pool and speaks ordinary TLS with an innocuous SNI, so
//     IP-blocklisting any one endpoint is useless. Costs a cold start per
//     invocation and a per-invocation fee (opscost).
//   - DNS tunnel (carrier.DNSTunnel): mux frames chunked into DNS
//     query/response records through a pool of recursive resolvers.
//     Slowest by far, but the censor sees only well-formed queries for a
//     name nobody blacklists.
//
// Every transport yields a raw net.Conn from Dial and the same blinded
// mux session from Wrap, so core.Domestic and fleet treat rungs
// uniformly. The escalation policy across transports lives in Ladder.
package carrier

import (
	"fmt"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
)

// Canonical transport names, used as obs labels and CLI tokens.
const (
	Blinded    = "blinded"
	Rendezvous = "rendezvous"
	DNSTunnel  = "dns-tunnel"
)

// Known lists the carrier transport names in default ladder order:
// fastest and most blockable first, the covert channel of last resort
// last.
func Known() []string { return []string{Blinded, Rendezvous, DNSTunnel} }

// WrapFunc layers the blinded mux session onto a raw carrier connection.
// core.Domestic.WrapCarrier is the production implementation.
type WrapFunc func(net.Conn) *mux.Session

// Transport is one rung of the escalation ladder: a way to reach the
// remote proxy. Dial produces the raw carrier connection; Wrap layers the
// session protocol on top; Name identifies the rung in obs labels,
// endpoint metadata, and CLI flags.
type Transport interface {
	Name() string
	Dial() (net.Conn, error)
	Wrap(raw net.Conn) *mux.Session
}

// static is a Transport from plain functions; the blinded legacy carrier
// is one of these.
type static struct {
	name string
	dial func() (net.Conn, error)
	wrap WrapFunc
}

// NewBlinded adapts the legacy blinded-TLS path — any dial function plus
// the blinding wrap — to the Transport interface.
func NewBlinded(dial func() (net.Conn, error), wrap WrapFunc) Transport {
	return &static{name: Blinded, dial: dial, wrap: wrap}
}

// NewStatic builds a named Transport from plain functions (tests and
// deployments with out-of-tree carriers).
func NewStatic(name string, dial func() (net.Conn, error), wrap WrapFunc) Transport {
	return &static{name: name, dial: dial, wrap: wrap}
}

func (t *static) Name() string                   { return t.name }
func (t *static) Dial() (net.Conn, error)        { return t.dial() }
func (t *static) Wrap(raw net.Conn) *mux.Session { return t.wrap(raw) }

// DialError is a timeout-flavored net.Error so resilience layers treat a
// bounded dial that expired like any other I/O timeout.
type DialError struct{ Transport string }

func (e *DialError) Error() string   { return fmt.Sprintf("carrier: %s dial timed out", e.Transport) }
func (e *DialError) Timeout() bool   { return true }
func (e *DialError) Temporary() bool { return true }

// DialBounded runs dial but gives up after timeout, disowning (and
// closing) a connection that completes late. A non-positive timeout
// dials unboundedly. All blocking uses env primitives so the bound works
// under the virtual-time scheduler.
func DialBounded(env netx.Env, name string, timeout time.Duration, dial func() (net.Conn, error)) (net.Conn, error) {
	if timeout <= 0 {
		return dial()
	}
	var (
		mu       sync.Mutex
		done     bool
		timedOut bool
		conn     net.Conn
		err      error
	)
	cond := env.Sync.NewCond(&mu)
	timer := env.Clock.AfterFunc(timeout, func() {
		mu.Lock()
		timedOut = true
		cond.Broadcast()
		mu.Unlock()
	})
	env.Spawn.Go(func() {
		c, e := dial()
		mu.Lock()
		if timedOut {
			mu.Unlock()
			if e == nil && c != nil {
				c.Close() // nobody is waiting for it anymore
			}
			return
		}
		done, conn, err = true, c, e
		cond.Broadcast()
		mu.Unlock()
	})
	mu.Lock()
	defer mu.Unlock()
	for !done && !timedOut {
		cond.Wait()
	}
	timer.Stop()
	if !done {
		return nil, &DialError{Transport: name}
	}
	return conn, err
}
