// The serverless rendezvous carrier, modeled on CensorLess: every dial
// invokes an ephemeral endpoint drawn from a large cloud address pool
// and speaks ordinary TLS with an innocuous SNI. The censor faces an
// unwinnable trade: the endpoints change per invocation, so
// IP-blocklisting any one of them is useless, and the traffic is
// indistinguishable from the cloud provider's own. The price is a cold
// start per invocation and a metered per-invocation fee, which the
// opscost hook accounts for.
package carrier

import (
	"errors"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/tlssim"
)

// Rendezvous defaults.
const (
	// DefaultColdStart is the per-invocation spin-up latency of an
	// ephemeral endpoint.
	DefaultColdStart = 350 * time.Millisecond
	// DefaultAttemptTimeout bounds one endpoint attempt (dial +
	// handshake), so a blackholed endpoint costs bounded time.
	DefaultAttemptTimeout = 1500 * time.Millisecond
	// DefaultAttempts is how many distinct endpoints one Dial tries
	// before giving up; a partially-blocked pool is survived internally
	// instead of tripping the ladder.
	DefaultAttempts = 3
)

// ErrRendezvousExhausted reports a Dial that failed on every attempted
// endpoint.
var ErrRendezvousExhausted = errors.New("carrier: rendezvous pool exhausted")

// RendezvousConfig configures the rendezvous transport.
type RendezvousConfig struct {
	Env netx.Env
	// Endpoints is the ephemeral address pool ("ip:port"). Real
	// deployments would refresh it from the provider; the model treats
	// it as large enough that per-invocation rotation defeats
	// blocklisting.
	Endpoints []string
	// Dial opens a TCP connection to one endpoint address.
	Dial func(address string) (net.Conn, error)
	// SNI is the innocuous server name sent in the clear — the cloud
	// front the censor would have to block wholesale.
	SNI string
	// Verify authenticates the endpoint's certificate (nil skips).
	Verify func(cert []byte, serverName string) error
	// Wrap layers the blinded mux session onto rendezvous connections.
	Wrap WrapFunc
	// Seed drives the deterministic endpoint rotation.
	Seed uint64
	// OnInvoke, if set, is called once per endpoint invocation — the
	// opscost metering hook.
	OnInvoke func()
	// ColdStart, AttemptTimeout, and Attempts default to the
	// Default* constants when zero.
	ColdStart      time.Duration
	AttemptTimeout time.Duration
	Attempts       int
}

// RendezvousPool is the rendezvous Transport.
type RendezvousPool struct {
	cfg RendezvousConfig

	mu    sync.Mutex
	draws uint64

	invocations metrics.Counter
	failures    metrics.Counter
}

// NewRendezvous builds the transport. It panics on an empty pool.
func NewRendezvous(cfg RendezvousConfig) *RendezvousPool {
	if len(cfg.Endpoints) == 0 {
		panic("carrier: rendezvous needs a non-empty endpoint pool")
	}
	if cfg.ColdStart <= 0 {
		cfg.ColdStart = DefaultColdStart
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = DefaultAttemptTimeout
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = DefaultAttempts
	}
	return &RendezvousPool{cfg: cfg}
}

// Name implements Transport.
func (p *RendezvousPool) Name() string { return Rendezvous }

// Wrap implements Transport.
func (p *RendezvousPool) Wrap(raw net.Conn) *mux.Session { return p.cfg.Wrap(raw) }

// Invocations reports how many endpoint invocations (cold starts) have
// been paid for — the quantity the opscost model meters.
func (p *RendezvousPool) Invocations() int64 { return p.invocations.Value() }

// Instrument registers the pool's counters.
func (p *RendezvousPool) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("carrier.rendezvous.invocations", &p.invocations)
	reg.RegisterCounter("carrier.rendezvous.failures", &p.failures)
}

// Dial implements Transport: invoke an ephemeral endpoint (cold start,
// bounded dial, TLS handshake), rotating to fresh addresses on failure.
func (p *RendezvousPool) Dial() (net.Conn, error) {
	p.mu.Lock()
	p.draws++
	base := splitmix(p.cfg.Seed^0x5E4DE2, p.draws)
	p.mu.Unlock()

	env := p.cfg.Env
	var lastErr error = ErrRendezvousExhausted
	for attempt := 0; attempt < p.cfg.Attempts; attempt++ {
		addr := p.cfg.Endpoints[int((base+uint64(attempt))%uint64(len(p.cfg.Endpoints)))]
		p.invocations.Inc()
		if p.cfg.OnInvoke != nil {
			p.cfg.OnInvoke()
		}
		// The provider spins the endpoint up from nothing.
		env.Clock.Sleep(p.cfg.ColdStart)
		raw, err := DialBounded(env, Rendezvous, p.cfg.AttemptTimeout, func() (net.Conn, error) {
			return p.cfg.Dial(addr)
		})
		if err != nil {
			p.failures.Inc()
			lastErr = err
			continue
		}
		tc := tlssim.Client(raw, tlssim.Config{
			ServerName: p.cfg.SNI,
			VerifyPeer: p.cfg.Verify,
			Rand:       env.Entropy(),
		})
		// Bound the handshake too: a censor that silently drops the
		// flow after classification must not hang the dial.
		raw.SetDeadline(env.Clock.Now().Add(p.cfg.AttemptTimeout))
		err = tc.Handshake()
		raw.SetDeadline(time.Time{})
		if err != nil {
			p.failures.Inc()
			raw.Close()
			lastErr = err
			continue
		}
		return tc, nil
	}
	return nil, lastErr
}

// ServeGateway accepts rendezvous connections on ln (typically a tlssim
// listener) and pipes each to a fresh backend connection — the whole
// body of a rendezvous endpoint function. Run it on a managed goroutine;
// it returns when ln closes.
func ServeGateway(env netx.Env, ln net.Listener, backend func() (net.Conn, error)) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		env.Spawn.Go(func() {
			up, err := backend()
			if err != nil {
				conn.Close()
				return
			}
			env.Spawn.Go(func() {
				pipeCopy(up, conn)
			})
			pipeCopy(conn, up)
		})
	}
}

func pipeCopy(dst, src net.Conn) {
	buf := make([]byte, 16*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	dst.Close()
	src.Close()
}
