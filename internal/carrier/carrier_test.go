package carrier

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"scholarcloud/internal/mux"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/tlssim"
)

const (
	testDomain  = "cdn-sync.example"
	testEchoIP  = "203.0.113.10"
	testAuthIP  = "203.0.113.20"
	testRelayIP = "203.0.113.3"
)

// carrierWorld is a small simulated internet: a domestic client, an echo
// origin, a DNS-tunnel authority plus relays, and rendezvous gateways.
type carrierWorld struct {
	n      *netsim.Network
	env    netx.Env
	us     *netsim.Zone
	client *netsim.Host
	echo   *netsim.Host
}

func newCarrierWorld(t *testing.T, loss float64) *carrierWorld {
	t.Helper()
	n := netsim.New(23)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 70 * time.Millisecond, BaseLoss: loss})
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}
	w := &carrierWorld{
		n:      n,
		env:    n.Env(),
		us:     us,
		client: n.AddHost("client", "101.6.6.6", cn, acc),
		echo:   n.AddHost("echo", testEchoIP, us, acc),
	}
	ln, err := w.echo.Listen("tcp", ":7")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() { defer conn.Close(); io.Copy(conn, conn) })
		}
	})
	return w
}

func (w *carrierWorld) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	w.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestTunnelEchoThroughRelays(t *testing.T) {
	w := newCarrierWorld(t, 0)
	tun := buildTunnel(t, w, 3, TunnelConfig{})
	w.run(t, func() error {
		conn, err := tun.Dial()
		if err != nil {
			return fmt.Errorf("dial: %w", err)
		}
		defer conn.Close()
		// Big enough to need several upstream chunks and several
		// downstream TXT answers.
		msg := bytes.Repeat([]byte("tunnel me \xff\x00"), 120)
		if _, err := conn.Write(msg); err != nil {
			return fmt.Errorf("write: %w", err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return fmt.Errorf("read: %w", err)
		}
		if !bytes.Equal(got, msg) {
			return fmt.Errorf("echo mismatch: %d/%d bytes differ", diffCount(got, msg), len(msg))
		}
		return nil
	})
	if tun.UpMTU() < 100 || tun.UpMTU() > 200 {
		t.Fatalf("upstream MTU %d outside the ~150-byte design point", tun.UpMTU())
	}
}

func TestTunnelSurvivesDatagramLoss(t *testing.T) {
	w := newCarrierWorld(t, 0.25) // heavy border loss: retransmits must save it
	tun := buildTunnel(t, w, 3, TunnelConfig{})
	w.run(t, func() error {
		conn, err := tun.Dial()
		if err != nil {
			return fmt.Errorf("dial: %w", err)
		}
		defer conn.Close()
		msg := bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 400)
		if _, err := conn.Write(msg); err != nil {
			return fmt.Errorf("write: %w", err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return fmt.Errorf("read: %w", err)
		}
		if !bytes.Equal(got, msg) {
			return fmt.Errorf("echo corrupted under loss")
		}
		return nil
	})
	if tun.retransmits.Value() == 0 {
		t.Fatal("expected retransmissions under heavy loss")
	}
}

// buildTunnel wires the authoritative server, nRelays relays, and the
// client transport into w.
func buildTunnel(t *testing.T, w *carrierWorld, nRelays int, cfg TunnelConfig) *Tunnel {
	t.Helper()
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}

	auth := w.n.AddHost("tunnel-auth", testAuthIP, w.us, acc)
	srv := NewTunnelServer(TunnelServerConfig{
		Env:     w.env,
		Domain:  testDomain,
		Backend: func() (net.Conn, error) { return auth.DialTCP(testEchoIP + ":7") },
	})
	apc, err := auth.ListenPacket(53)
	if err != nil {
		t.Fatal(err)
	}
	w.n.Scheduler().Go(func() { srv.Serve(apc) })

	var resolvers []string
	for i := 0; i < nRelays; i++ {
		ip := fmt.Sprintf("%s%d", testRelayIP, i)
		relay := w.n.AddHost(fmt.Sprintf("relay%d", i), ip, w.us, acc)
		pc, err := relay.ListenPacket(53)
		if err != nil {
			t.Fatal(err)
		}
		w.n.Scheduler().Go(func() {
			ServeRelay(w.env, pc, relay, testAuthIP+":53", 3*time.Second)
		})
		resolvers = append(resolvers, ip+":53")
	}

	cfg.Env = w.env
	cfg.Dialer = w.client
	cfg.Resolvers = resolvers
	cfg.Domain = testDomain
	cfg.Seed = 23
	return NewTunnel(cfg)
}

func diffCount(a, b []byte) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

func TestRendezvousRotatesPastDeadEndpoints(t *testing.T) {
	w := newCarrierWorld(t, 0)
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}

	// Four pool addresses; only the last one actually serves.
	var pool []string
	for i := 0; i < 4; i++ {
		ip := fmt.Sprintf("203.0.113.4%d", i)
		pool = append(pool, ip+":443")
		host := w.n.AddHost(fmt.Sprintf("gw%d", i), ip, w.us, acc)
		if i != 3 {
			continue
		}
		ln, err := host.Listen("tcp", ":443")
		if err != nil {
			t.Fatal(err)
		}
		tln := tlssim.NewListener(ln, tlssim.Config{Certificate: []byte("gw-cert")})
		w.n.Scheduler().Go(func() {
			ServeGateway(w.env, tln, func() (net.Conn, error) {
				return host.DialTCP(testEchoIP + ":7")
			})
		})
	}

	invoked := 0
	rdv := NewRendezvous(RendezvousConfig{
		Env:       w.env,
		Endpoints: pool,
		Dial:      func(addr string) (net.Conn, error) { return w.client.DialTCP(addr) },
		SNI:       "fn.cloudapi.example",
		Seed:      23,
		OnInvoke:  func() { invoked++ },
		ColdStart: 50 * time.Millisecond,
		Attempts:  4,
	})
	w.run(t, func() error {
		conn, err := rdv.Dial()
		if err != nil {
			return fmt.Errorf("dial: %w", err)
		}
		defer conn.Close()
		msg := []byte("rendezvous echo")
		if _, err := conn.Write(msg); err != nil {
			return err
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			return fmt.Errorf("echo = %q", got)
		}
		return nil
	})
	if invoked == 0 || rdv.Invocations() != int64(invoked) {
		t.Fatalf("invocation metering broken: hook=%d counter=%d", invoked, rdv.Invocations())
	}
	if rdv.Invocations() < 2 {
		t.Fatalf("expected rotation past dead endpoints, got %d invocations", rdv.Invocations())
	}
}

func TestLadderEscalatesAndRecovers(t *testing.T) {
	w := newCarrierWorld(t, 0)

	// A live mux peer so recovery probes can complete an RTT echo.
	ln, err := w.echo.Listen("tcp", ":8443")
	if err != nil {
		t.Fatal(err)
	}
	w.n.Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mux.NewSession(conn, w.env, nil)
		}
	})

	var mu sync.Mutex
	blocked := true
	wrap := func(raw net.Conn) *mux.Session { return mux.NewSession(raw, w.env, nil) }
	fast := NewStatic("fast", func() (net.Conn, error) {
		mu.Lock()
		defer mu.Unlock()
		if blocked {
			return nil, fmt.Errorf("reset by censor")
		}
		return w.client.DialTCP(testEchoIP + ":8443")
	}, wrap)
	slow := NewStatic("slow", func() (net.Conn, error) {
		return w.client.DialTCP(testEchoIP + ":8443")
	}, wrap)

	var switches []string
	l := NewLadder(LadderConfig{
		Env:           w.env,
		TripAfter:     3,
		ProbeInterval: 200 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		OnSwitch: func(from, to, reason string) {
			mu.Lock()
			switches = append(switches, from+"->"+to)
			mu.Unlock()
		},
	}, fast, slow)
	l.Start()
	defer l.Close()

	w.run(t, func() error {
		if l.ActiveName() != "fast" {
			return fmt.Errorf("start rung = %s", l.ActiveName())
		}
		// Failures against the wrong rung must not count.
		l.RecordFailure("slow")
		l.RecordFailure("slow")
		l.RecordFailure("slow")
		if l.ActiveName() != "fast" {
			return fmt.Errorf("foreign failures escalated the ladder")
		}
		// A success resets the streak.
		l.RecordFailure("fast")
		l.RecordFailure("fast")
		l.RecordSuccess("fast")
		l.RecordFailure("fast")
		l.RecordFailure("fast")
		if l.ActiveName() != "fast" {
			return fmt.Errorf("escalated before TripAfter consecutive failures")
		}
		l.RecordFailure("fast")
		if l.ActiveName() != "slow" {
			return fmt.Errorf("no escalation after sustained failure")
		}
		if l.NextName() != "slow" {
			return fmt.Errorf("NextName on last rung = %s", l.NextName())
		}

		// While blocked, probes must not step back down.
		w.env.Clock.Sleep(1 * time.Second)
		if l.ActiveName() != "slow" {
			return fmt.Errorf("recovered while rung still blocked")
		}

		mu.Lock()
		blocked = false
		mu.Unlock()
		w.env.Clock.Sleep(1 * time.Second)
		if l.ActiveName() != "fast" {
			return fmt.Errorf("no recovery after rung unblocked")
		}
		return nil
	})

	mu.Lock()
	defer mu.Unlock()
	want := []string{"fast->slow", "slow->fast"}
	if len(switches) != 2 || switches[0] != want[0] || switches[1] != want[1] {
		t.Fatalf("switches = %v, want %v", switches, want)
	}
}
