// The escalation ladder: prefer the fast-but-blockable carrier, detect
// sustained transport-level failure, climb to the next rung, and probe
// back down once the lower rung recovers — the GFW/Tor arms race
// (Winter & Lindskog) reduced to a policy object.
package carrier

import (
	"sync"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
)

// Ladder defaults.
const (
	// DefaultTripAfter is how many consecutive failures on the active
	// rung trigger escalation.
	DefaultTripAfter = 3
	// DefaultProbeInterval paces recovery probes toward the rung below.
	DefaultProbeInterval = 30 * time.Second
	// DefaultProbeTimeout bounds one recovery probe (dial + echo).
	DefaultProbeTimeout = 2 * time.Second
)

// LadderConfig configures the escalation policy.
type LadderConfig struct {
	Env netx.Env
	// TripAfter is the consecutive-failure threshold per rung
	// (DefaultTripAfter when zero).
	TripAfter int
	// ProbeInterval is the recovery-probe cadence
	// (DefaultProbeInterval when zero).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one recovery probe (DefaultProbeTimeout when
	// zero).
	ProbeTimeout time.Duration
	// OnSwitch, if set, is notified of every escalation and recovery.
	OnSwitch func(from, to, reason string)
}

func (cfg LadderConfig) withDefaults() LadderConfig {
	if cfg.TripAfter <= 0 {
		cfg.TripAfter = DefaultTripAfter
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	return cfg
}

// Ladder tracks which rung of the transport ladder is active. Rungs are
// ordered fastest (most blockable) first. Failure reports against the
// active rung escalate; a background prober steps back down when the
// rung below answers again.
//
// Ladder implements fleet.Escalator.
type Ladder struct {
	cfg   LadderConfig
	rungs []Transport

	mu      sync.Mutex
	active  int
	fails   int
	closed  bool
	probing bool

	escalations metrics.Counter
	recoveries  metrics.Counter
	probes      metrics.Counter
}

// NewLadder builds a ladder over rungs (fastest first). Call Start to
// enable recovery probing.
func NewLadder(cfg LadderConfig, rungs ...Transport) *Ladder {
	if len(rungs) == 0 {
		panic("carrier: ladder needs at least one rung")
	}
	return &Ladder{cfg: cfg.withDefaults(), rungs: rungs}
}

// Instrument registers the ladder's counters and the active-rung gauge.
func (l *Ladder) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("carrier.ladder.escalations", &l.escalations)
	reg.RegisterCounter("carrier.ladder.recoveries", &l.recoveries)
	reg.RegisterCounter("carrier.ladder.probes", &l.probes)
	reg.RegisterFunc("carrier.ladder.active_rung", func() int64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return int64(l.active)
	})
}

// Rungs returns the transports in ladder order.
func (l *Ladder) Rungs() []Transport { return l.rungs }

// Escalations reports how many times the ladder climbed a rung.
func (l *Ladder) Escalations() int64 { return l.escalations.Value() }

// Recoveries reports how many times the ladder stepped back down.
func (l *Ladder) Recoveries() int64 { return l.recoveries.Value() }

// Active returns the currently preferred transport.
func (l *Ladder) Active() Transport {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rungs[l.active]
}

// ActiveName returns the active rung's transport name.
func (l *Ladder) ActiveName() string { return l.Active().Name() }

// NextName returns the rung above the active one — where a hedged retry
// should land — or the active name when already on the last rung.
func (l *Ladder) NextName() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active+1 < len(l.rungs) {
		return l.rungs[l.active+1].Name()
	}
	return l.rungs[l.active].Name()
}

// RecordFailure reports a transport-level failure (dial timeout, carrier
// reset) on the named transport. Failures only count against the active
// rung; TripAfter consecutive ones escalate to the next rung.
func (l *Ladder) RecordFailure(transport string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || transport != l.rungs[l.active].Name() {
		return
	}
	l.fails++
	if l.fails < l.cfg.TripAfter || l.active+1 >= len(l.rungs) {
		return
	}
	from := l.rungs[l.active].Name()
	l.active++
	l.fails = 0
	l.escalations.Inc()
	l.notifyLocked(from, l.rungs[l.active].Name(), "sustained transport failure")
}

// RecordSuccess reports a successful use of the named transport, clearing
// the active rung's failure streak.
func (l *Ladder) RecordSuccess(transport string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if transport == l.rungs[l.active].Name() {
		l.fails = 0
	}
}

func (l *Ladder) notifyLocked(from, to, reason string) {
	if l.cfg.OnSwitch != nil {
		from, to, reason := from, to, reason
		l.cfg.Env.Spawn.Go(func() { l.cfg.OnSwitch(from, to, reason) })
	}
}

// Start launches the recovery prober on a managed goroutine: while
// escalated, it periodically redials the rung below and steps back down
// when that rung answers an echo again.
func (l *Ladder) Start() {
	l.mu.Lock()
	if l.probing || l.closed {
		l.mu.Unlock()
		return
	}
	l.probing = true
	l.mu.Unlock()
	l.cfg.Env.Spawn.Go(l.probeLoop)
}

// Close stops the recovery prober.
func (l *Ladder) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}

func (l *Ladder) probeLoop() {
	for {
		l.cfg.Env.Clock.Sleep(l.cfg.ProbeInterval)
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		if l.active == 0 {
			l.mu.Unlock()
			continue
		}
		below := l.rungs[l.active-1]
		l.mu.Unlock()

		l.probes.Inc()
		if !l.probe(below) {
			continue
		}

		l.mu.Lock()
		if l.closed || l.active == 0 || l.rungs[l.active-1] != below {
			l.mu.Unlock()
			continue
		}
		from := l.rungs[l.active].Name()
		l.active--
		l.fails = 0
		l.recoveries.Inc()
		l.notifyLocked(from, below.Name(), "recovery probe succeeded")
		l.mu.Unlock()
	}
}

// Recovery-probe shape. A bare 9-byte ping carries too little for an
// on-path DPI classifier to fingerprint, so it would sail through a
// crackdown and make a blocked rung look healthy. Each probe echo
// instead carries probePadBytes of high-entropy padding — about what a
// real request's first flight looks like on the wire — and the probe
// requires several round trips, so a censor resetting the transport's
// fingerprint kills it even if the first echo sneaks through.
const (
	probeEchoes   = 3
	probePadBytes = 128
)

// probePad builds the probe padding: fixed pseudorandom bytes
// (splitmix64), deterministic so probe traffic never perturbs
// reproducibility. High entropy matters — any blinding scheme maps a
// uniform plaintext to a uniform wire image, so the probe presents the
// transport's true fingerprint.
func probePad() []byte {
	pad := make([]byte, probePadBytes)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range pad {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		pad[i] = byte(z ^ (z >> 31))
	}
	return pad
}

// probe checks one rung end to end: dial, wrap, and await padded
// echoes. Any failure — including a censor reset mid-echo — leaves the
// ladder where it is.
func (l *Ladder) probe(t Transport) bool {
	raw, err := DialBounded(l.cfg.Env, t.Name(), l.cfg.ProbeTimeout, t.Dial)
	if err != nil {
		return false
	}
	sess := t.Wrap(raw)
	defer sess.Close()
	pad := probePad()
	for i := 0; i < probeEchoes; i++ {
		if _, err := sess.RTTPadded(l.cfg.ProbeTimeout, pad); err != nil {
			return false
		}
	}
	return true
}
