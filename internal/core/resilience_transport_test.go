package core

import (
	"fmt"
	"net"
	"testing"
	"time"

	"scholarcloud/internal/carrier"
	"scholarcloud/internal/fleet"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netsim"
)

// TestHedgeLandsOnDifferentRung is the transport-aware-hedge regression
// test: the active "blinded" rung stalls (a censor throttling the flow
// rather than resetting it), and the hedge fired after HedgeAfter must be
// issued on the next escalation rung — through the production wiring of
// carrier.Ladder as both the fleet's Escalator and the proxy's
// NextTransport hook — not on a second carrier of the stalled transport.
func TestHedgeLandsOnDifferentRung(t *testing.T) {
	w := newCoreWorld(t)
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}

	// The blinded rung's remote accepts the carrier TCP connection and
	// then says nothing: every mux open on it stalls forever.
	stallHost := w.n.AddHost("stall", "198.51.100.9", w.usZone, acc)
	sln, err := stallHost.Listen("tcp", ":8443")
	if err != nil {
		t.Fatal(err)
	}
	w.n.Scheduler().Go(func() {
		for {
			if _, err := sln.Accept(); err != nil {
				return
			}
		}
	})

	// The fallback rung is a live remote (the rendezvous gateway's role).
	standbyHost := w.n.AddHost("standby", "198.51.100.8", w.usZone, acc)
	id, err := w.ca.Issue("remote.scholarcloud.example", true)
	if err != nil {
		t.Fatal(err)
	}
	standby := &Remote{
		Env: w.env,
		DialHost: func(host string, port int) (net.Conn, error) {
			return standbyHost.DialTCP(fmt.Sprintf("%s:%d", host, port))
		},
		Secret:   []byte("tunnel-secret"),
		Identity: id,
	}
	rln, err := standbyHost.Listen("tcp", ":8443")
	if err != nil {
		t.Fatal(err)
	}
	w.n.Scheduler().Go(func() { standby.Serve(rln) })

	dialStall := func() (net.Conn, error) { return w.domestic.DialTCP("198.51.100.9:8443") }
	dialStandby := func() (net.Conn, error) { return w.domestic.DialTCP("198.51.100.8:8443") }
	ladder := carrier.NewLadder(carrier.LadderConfig{Env: w.env},
		carrier.NewBlinded(dialStall, w.dom.WrapCarrier),
		carrier.NewStatic(carrier.Rendezvous, dialStandby, w.dom.WrapCarrier),
	)
	pool, err := fleet.New(fleet.Config{
		Env:           w.env,
		NewSession:    w.dom.WrapCarrier,
		ProbeInterval: time.Hour, // no probe traffic: the hedge alone must switch rungs
		Seed:          7,
		Escalate:      ladder,
	}, []fleet.Endpoint{
		{Name: "stall", Transport: carrier.Blinded, Dial: dialStall},
		{Name: "standby", Transport: carrier.Rendezvous, Dial: dialStandby},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	w.dom.Fleet = pool
	w.dom.NextTransport = ladder.NextName
	w.dom.Resil = &Resilience{HedgeAfter: 500 * time.Millisecond, Seed: 7}

	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second) // let the pool pre-dial both rungs
		u, err := httpsim.ParseURL("http://203.0.113.10:80/")
		if err != nil {
			return err
		}
		resp, err := w.dom.fetchOrigin(u, &httpsim.Request{Method: "GET", Target: "/", Host: u.Host}, nil)
		if err != nil {
			return fmt.Errorf("fetch through stalled active rung: %w", err)
		}
		if string(resp.Body) != "hello" {
			return fmt.Errorf("body = %q", resp.Body)
		}
		return nil
	})

	if got := w.dom.hedges.Value(); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	for _, ep := range pool.Stats().Endpoints {
		switch ep.Transport {
		case carrier.Blinded:
			if ep.StreamsOpened != 0 {
				t.Errorf("stalled rung completed %d stream opens", ep.StreamsOpened)
			}
		case carrier.Rendezvous:
			if ep.StreamsOpened != 1 {
				t.Errorf("hedge rung opened %d streams, want 1", ep.StreamsOpened)
			}
		}
	}
	if got := w.dom.failovers.Value(); got != 1 {
		t.Errorf("failovers = %d, want 1 (hedge attempt won)", got)
	}
}
