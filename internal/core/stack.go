package core

import (
	"fmt"
	"net"

	"scholarcloud/internal/dnssim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/pac"
)

// ClientStack is the browser-side view of ScholarCloud; it implements
// tunnel.Method. There is deliberately almost nothing here — the paper's
// whole point is that the client needs no software beyond a PAC setting:
// whitelisted hosts go to the domestic proxy (CONNECT for HTTPS,
// absolute-URI for HTTP, both decided by the PAC policy), everything else
// is dialed directly.
type ClientStack struct {
	Env netx.Env
	// Dial opens raw connections from the client device.
	Dial func(network, address string) (net.Conn, error)
	// PAC is the policy fetched from the domestic proxy's /pac endpoint.
	PAC *pac.Config
	// Resolver handles DIRECT (non-whitelisted) name resolution — the
	// ordinary, poisonable path.
	Resolver *dnssim.Resolver
	// GatewayHTTPS routes whitelisted HTTPS requests to the domestic proxy
	// in absolute-URI form instead of CONNECT, letting the proxy's shared
	// content cache see and serve them. Off by default: CONNECT preserves
	// end-to-end TLS to the origin.
	GatewayHTTPS bool
	// ClientIP is this device's address as myIpAddress() would report it
	// to the PAC file. With a sharded domestic tier it selects the user's
	// shard (pac.EvaluateFor); empty keeps the tier-order evaluation.
	ClientIP string
}

// evaluate applies the PAC policy the way the real browser would: hashed
// onto this client's shard when the client knows its own address.
func (s *ClientStack) evaluate(host string) pac.Decision {
	if s.ClientIP != "" {
		return s.PAC.EvaluateFor(s.ClientIP, host)
	}
	return s.PAC.Evaluate(host)
}

// Name implements tunnel.Method.
func (s *ClientStack) Name() string { return "scholarcloud" }

// Close implements tunnel.Method.
func (s *ClientStack) Close() error { return nil }

// DialHost implements tunnel.Method. For whitelisted hosts the returned
// connection runs CONNECT through the domestic proxy; everything else is
// a direct dial.
func (s *ClientStack) DialHost(host string, port int) (net.Conn, error) {
	if d := s.evaluate(host); d.Proxy {
		// "PROXY a; PROXY b" failover, exactly as a browser walks the
		// PAC result: try the assigned shard, fall through the chain.
		var lastErr error
		for _, addr := range d.Addresses {
			conn, err := s.dialViaProxy(addr, host, port)
			if err == nil {
				return conn, nil
			}
			lastErr = err
		}
		return nil, lastErr
	}
	ip := host
	if net.ParseIP(host) == nil {
		resolved, err := s.Resolver.Lookup(host)
		if err != nil {
			return nil, fmt.Errorf("scholarcloud: resolve %s: %w", host, err)
		}
		ip = resolved
	}
	return s.Dial("tcp", fmt.Sprintf("%s:%d", ip, port))
}

// HTTPProxy implements httpsim.HTTPProxier: plain-HTTP requests for
// whitelisted hosts go to the domestic proxy in absolute-URI form.
func (s *ClientStack) HTTPProxy(host string) (string, bool) {
	if d := s.evaluate(host); d.Proxy {
		return d.Address, true
	}
	return "", false
}

// HTTPSProxy implements httpsim.HTTPSProxier: with GatewayHTTPS enabled,
// HTTPS requests for whitelisted hosts also go to the domestic proxy in
// absolute-URI form (the proxy terminates TLS toward the origin), which
// is what makes them visible to its shared content cache.
func (s *ClientStack) HTTPSProxy(host string) (string, bool) {
	if !s.GatewayHTTPS {
		return "", false
	}
	if d := s.evaluate(host); d.Proxy {
		return d.Address, true
	}
	return "", false
}

// dialViaProxy opens a CONNECT tunnel through the domestic proxy.
func (s *ClientStack) dialViaProxy(proxyAddr, host string, port int) (net.Conn, error) {
	conn, err := s.Dial("tcp", proxyAddr)
	if err != nil {
		return nil, fmt.Errorf("scholarcloud: dial domestic proxy: %w", err)
	}
	if err := connectThrough(conn, fmt.Sprintf("%s:%d", host, port)); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}
