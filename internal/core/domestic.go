package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scholarcloud/internal/blinding"
	"scholarcloud/internal/cache"
	"scholarcloud/internal/fleet"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/pac"
	"scholarcloud/internal/tlssim"
)

// ErrAllRemotesDown reports that no remote proxy — primary or fleet
// endpoint — could carry a stream.
var ErrAllRemotesDown = errors.New("core: all remote proxies are down")

// Domestic is the proxy inside the censored network: the single endpoint
// users' browsers talk to. It serves the PAC file, enforces the visible
// whitelist, and forwards whitelisted traffic through the blinded tunnel
// to the remote proxy.
type Domestic struct {
	Env netx.Env
	// DialRemote opens a raw connection to the remote proxy across the
	// border.
	DialRemote func() (net.Conn, error)
	// Fleet, if set, replaces the single cached tunnel with a managed pool
	// of remote endpoints (see internal/fleet). DialRemote is ignored for
	// tunnel traffic when Fleet is non-nil. Standby/fallback deployments
	// are expressed as a fleet whose extra endpoints are the standbys.
	Fleet *fleet.Pool
	// Secret and Epoch must match the remote proxy's blinding
	// configuration.
	Secret []byte
	Epoch  uint64
	// Whitelist is the PAC policy: whitelisted domains go through the
	// tunnel, everything else is refused (the browser's PAC sends
	// non-whitelisted traffic DIRECT, so refusal only guards misuse).
	Whitelist *pac.Config
	// VerifyRemote authenticates the remote proxy's per-stream channel
	// certificate for plain-HTTP forwarding.
	VerifyRemote func(der []byte, name string) error
	// RemoteName is the expected certificate name of the remote.
	RemoteName string
	// SchemeOverride, if set, replaces epoch-derived blinding.
	SchemeOverride blinding.Scheme
	// Cache, if set, is the shared content cache serving whitelisted GET
	// responses locally: hits never cross the border link, and the proxy
	// switches to HTTPS-gateway mode (absolute-URI requests instead of
	// opaque CONNECT tunnels) so cacheable HTTPS traffic is visible to it.
	Cache *cache.Cache
	// Resil, if set, enables the client-path resilience layer (deadlines,
	// reconnect backoff, hedged retry — see Resilience). Nil keeps the
	// historical fail-fast behaviour.
	Resil *Resilience
	// GatewayFetch forces the proxy to answer gateway-mode absolute-URI
	// requests through its own upstream fetch even without a Cache or a
	// Resil policy. Fault experiments set it on the resilience-off
	// baseline so both arms of the comparison share one fetch path.
	GatewayFetch bool
	// NextTransport, if set alongside a Fleet with transport-labeled
	// endpoints, names the escalation rung a hedged retry should aim at
	// (carrier.Ladder.NextName is the production hook). A hedge fired
	// because the active transport stalls is then issued on the next rung
	// instead of racing a second carrier of the same, possibly-blocked,
	// transport. Empty or nil keeps hedges transport-agnostic.
	NextTransport func() string

	mu        sync.Mutex
	sess      *mux.Session
	endpoint  string
	dialing   bool      // a goroutine is establishing the session
	dialCond  netx.Cond // wakes session() callers parked behind dialing
	dialFails int       // consecutive single-remote dial failures
	nextDial  time.Time // reconnect backoff gate (zero = none)

	requests metrics.Counter
	refused  metrics.Counter
	streams  metrics.Counter

	// Resilience counters (zero unless Resil is set).
	hedges       metrics.Counter
	retries      metrics.Counter
	deadlineHits metrics.Counter
	failovers    metrics.Counter
	jitterCtr    atomic.Uint64 // backoff jitter draw sequence

	flowTrace   atomic.Pointer[obs.Trace]
	muxCounters atomic.Pointer[mux.Counters]
}

// DomesticStats counts proxy activity.
type DomesticStats struct {
	Requests int64
	Refused  int64
	// Endpoint labels the carrier the current tunnel was dialed through:
	// "primary" or "fleet".
	Endpoint string
	// Streams counts tunnel streams opened on the user's behalf.
	Streams int64
}

// Stats returns a snapshot of the domestic proxy's counters.
func (d *Domestic) Stats() DomesticStats {
	d.mu.Lock()
	endpoint := d.endpoint
	d.mu.Unlock()
	return DomesticStats{
		Requests: d.requests.Value(),
		Refused:  d.refused.Value(),
		Endpoint: endpoint,
		Streams:  d.streams.Value(),
	}
}

// Instrument publishes the proxy's request/refusal/stream counters and
// its carriers' mux frame counters on reg. Call before serving traffic.
func (d *Domestic) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("core.domestic.requests", &d.requests)
	reg.RegisterCounter("core.domestic.refused", &d.refused)
	reg.RegisterCounter("core.domestic.streams", &d.streams)
	reg.RegisterCounter("core.domestic.hedges", &d.hedges)
	reg.RegisterCounter("core.domestic.retries", &d.retries)
	reg.RegisterCounter("core.domestic.deadline_hits", &d.deadlineHits)
	reg.RegisterCounter("core.domestic.failovers", &d.failovers)
	d.muxCounters.Store(&mux.Counters{
		FramesIn:   reg.Counter("mux.domestic.frames_in"),
		FramesOut:  reg.Counter("mux.domestic.frames_out"),
		Keepalives: reg.Counter("mux.domestic.keepalives"),
	})
	if d.Cache != nil {
		d.Cache.Instrument(reg)
	}
}

// SetTrace installs (or, with nil, removes) a flow tracer receiving a
// span for every tunnel stream opened or refused by this proxy.
func (d *Domestic) SetTrace(t *obs.Trace) { d.flowTrace.Store(t) }

// Rotate switches the blinding epoch: the current tunnel is torn down
// and the next stream re-dials with the new scheme. The remote proxy must
// be rotated to the same epoch (the operator controls both ends, §3).
func (d *Domestic) Rotate(epoch uint64) {
	d.mu.Lock()
	d.Epoch = epoch
	if d.sess != nil {
		d.sess.Close()
		d.sess = nil
	}
	pool := d.Fleet
	d.mu.Unlock()
	if pool != nil {
		// Old-epoch carriers cannot outlive their scheme: recycle the
		// fleet's pre-dialed sessions so they re-wrap under the new one.
		pool.Recycle()
	}
}

// WrapCarrier wraps a raw carrier connection in the current epoch's
// blinded mux session — the fleet.Config.NewSession hook for pools that
// tunnel on this proxy's behalf.
func (d *Domestic) WrapCarrier(raw net.Conn) *mux.Session {
	d.mu.Lock()
	scheme := d.SchemeOverride
	epoch := d.Epoch
	d.mu.Unlock()
	if scheme == nil {
		scheme = blinding.SchemeForEpoch(d.Secret, epoch)
	}
	sess := mux.NewSession(blinding.WrapConn(raw, scheme), d.Env, nil)
	sess.SetCounters(d.muxCounters.Load())
	return sess
}

// session returns the live tunnel session, dialing a fresh blinded
// carrier if needed. Used on the single-remote path (Fleet nil);
// standby remotes are handled by configuring a fleet instead.
func (d *Domestic) session() (*mux.Session, error) {
	d.mu.Lock()
	if d.dialCond == nil {
		d.dialCond = d.Env.Sync.NewCond(&d.mu)
	}
	// The dial crosses the border, so it blocks in (virtual) time; d.mu
	// must not be held across it — a second request parking on the bare
	// mutex would stall the scheduler. Concurrent callers park on the
	// scheduler-aware cond instead and re-check once the dialer finishes.
	for d.dialing {
		d.dialCond.Wait()
	}
	if d.sess != nil && d.sess.Err() == nil {
		sess := d.sess
		d.mu.Unlock()
		return sess, nil
	}
	if d.Resil != nil {
		if now := d.Env.Clock.Now(); now.Before(d.nextDial) {
			wait := d.nextDial.Sub(now)
			d.mu.Unlock()
			return nil, fmt.Errorf("%w: reconnect backing off for %v", ErrAllRemotesDown, wait)
		}
	}
	d.dialing = true
	d.mu.Unlock()

	var raw net.Conn
	var err error
	if d.Resil != nil {
		raw, err = d.dialRemoteBounded(d.Resil.withDefaults().DialTimeout)
	} else {
		raw, err = d.DialRemote()
	}

	d.mu.Lock()
	defer func() {
		d.dialing = false
		d.dialCond.Broadcast()
		d.mu.Unlock()
	}()
	if err != nil {
		if d.Resil != nil {
			// Exponential reconnect backoff with deterministic jitter: the
			// next dial is gated rather than hammered, so a downed remote
			// costs one timed-out dial per backoff window, not per request.
			r := d.Resil.withDefaults()
			d.dialFails++
			d.nextDial = d.Env.Clock.Now().Add(d.backoff(r, d.dialFails-1))
		}
		return nil, fmt.Errorf("%w: %v", ErrAllRemotesDown, err)
	}
	d.dialFails = 0
	d.nextDial = time.Time{}
	scheme := d.SchemeOverride
	if scheme == nil {
		scheme = blinding.SchemeForEpoch(d.Secret, d.Epoch)
	}
	d.sess = mux.NewSession(blinding.WrapConn(raw, scheme), d.Env, nil)
	d.sess.SetCounters(d.muxCounters.Load())
	d.endpoint = "primary"
	return d.sess, nil
}

// openStream opens a tunnel stream carrying meta, via the fleet pool
// when one is configured, else via the cached single session.
func (d *Domestic) openStream(meta []byte) (net.Conn, error) {
	return d.openStreamVia("", meta)
}

// openStreamVia is openStream pinned to a carrier transport: a non-empty
// via restricts the fleet pick to endpoints on that escalation rung (the
// transport-aware hedge path). The single-session path has one carrier
// and ignores via.
func (d *Domestic) openStreamVia(via string, meta []byte) (net.Conn, error) {
	if pool := d.Fleet; pool != nil {
		var st net.Conn
		var err error
		if via != "" {
			st, err = pool.OpenOn(via, meta)
		} else {
			st, err = pool.Open(meta)
		}
		if err != nil {
			var down *fleet.DownError
			if errors.As(err, &down) {
				return nil, fmt.Errorf("%w: %v", ErrAllRemotesDown, down.Last)
			}
			return nil, err
		}
		d.mu.Lock()
		d.endpoint = "fleet"
		d.mu.Unlock()
		d.streams.Inc()
		d.flowTrace.Load().Addf("core", "stream-open", "%s via fleet", meta)
		return st, nil
	}
	sess, err := d.session()
	if err != nil {
		return nil, err
	}
	st, err := sess.Open(meta)
	if err != nil {
		return nil, err
	}
	d.streams.Inc()
	d.flowTrace.Load().Addf("core", "stream-open", "%s via primary", meta)
	return st, nil
}

// openSecure opens an HTTPS-passthrough stream to host:port.
func (d *Domestic) openSecure(target string) (net.Conn, error) {
	return d.openSecureVia("", target)
}

func (d *Domestic) openSecureVia(via, target string) (net.Conn, error) {
	return d.openStreamVia(via, []byte(metaSecure+target))
}

// openPlain opens a cleartext-HTTP stream to host:port, wrapped in the
// proxy-to-proxy encrypted channel.
func (d *Domestic) openPlain(target string) (net.Conn, error) {
	return d.openPlainVia("", target)
}

func (d *Domestic) openPlainVia(via, target string) (net.Conn, error) {
	st, err := d.openStreamVia(via, []byte(metaPlain+target))
	if err != nil {
		return nil, err
	}
	tconn := tlssim.Client(st, tlssim.Config{
		ServerName: d.RemoteName,
		VerifyPeer: d.VerifyRemote,
		Rand:       d.Env.Rand,
	})
	if err := tconn.Handshake(); err != nil {
		st.Close()
		return nil, err
	}
	return tconn, nil
}

// authorize implements the whitelist check.
func (d *Domestic) authorize(host string) error {
	d.requests.Inc()
	if d.Whitelist.Match(host) {
		return nil
	}
	d.refused.Inc()
	d.flowTrace.Load().Addf("core", "refused", "%s not on whitelist", host)
	return fmt.Errorf("core: %s is not on the whitelist", host)
}

// Proxy returns the browser-facing forward proxy (CONNECT for HTTPS,
// absolute-URI for HTTP), enforcing the whitelist. With a Cache or a
// Resilience policy configured, absolute-URI requests (including
// gateway-mode HTTPS) are answered through the proxy's own upstream
// fetch, where both layers live.
func (d *Domestic) Proxy() *httpsim.Proxy {
	p := &httpsim.Proxy{
		Dial:      d.openSecure,
		DialPlain: d.openPlain,
		Spawn:     d.Env.Spawn,
		Authorize: d.authorize,
	}
	if d.Cache != nil || d.Resil != nil || d.GatewayFetch {
		p.RoundTrip = d.roundTrip
	}
	return p
}

// fetchOrigin performs one upstream request for u across the border
// tunnel: HTTPS targets get a passthrough stream plus a client TLS
// session terminated here (gateway mode), plain HTTP rides the
// proxy-to-proxy encrypted channel. extra headers (cache conditionals)
// are merged into a copy of the request's header map.
func (d *Domestic) fetchOrigin(u *httpsim.URL, req *httpsim.Request, extra map[string]string) (*httpsim.Response, error) {
	header := make(map[string]string, len(req.Header)+len(extra))
	for k, v := range req.Header {
		header[k] = v
	}
	for k, v := range extra {
		header[k] = v
	}
	if d.Resil != nil {
		return d.fetchResilient(u, req, header)
	}
	return d.fetchOriginOnce(u, req, header, time.Time{}, "")
}

// fetchOriginOnce performs a single upstream attempt. A non-zero deadline
// becomes the read deadline of the tunnel stream under the attempt, so a
// fetch stalled by a dead carrier or a partitioned border link surfaces
// as a timeout instead of hanging forever. A non-empty via pins the
// attempt's tunnel stream to that carrier transport.
func (d *Domestic) fetchOriginOnce(u *httpsim.URL, req *httpsim.Request, header map[string]string, deadline time.Time, via string) (*httpsim.Response, error) {
	var upstream net.Conn
	if u.Scheme == "https" {
		st, err := d.openSecureVia(via, u.HostPort())
		if err != nil {
			return nil, err
		}
		if !deadline.IsZero() {
			st.SetReadDeadline(deadline)
		}
		tconn := tlssim.Client(st, tlssim.Config{ServerName: u.Host, Rand: d.Env.Rand})
		if err := tconn.Handshake(); err != nil {
			st.Close()
			return nil, err
		}
		upstream = tconn
	} else {
		st, err := d.openPlainVia(via, u.HostPort())
		if err != nil {
			return nil, err
		}
		if !deadline.IsZero() {
			st.SetReadDeadline(deadline)
		}
		upstream = st
	}
	defer upstream.Close()

	originReq := &httpsim.Request{
		Method: req.Method,
		Target: u.Path,
		Host:   u.Host,
		Header: header,
		Body:   req.Body,
	}
	return httpsim.NewClientConn(upstream).RoundTrip(originReq)
}

// withoutCredentials returns a copy of req whose header carries no
// per-user credentials. Cache-populating fetches use it so nothing
// user-specific can enter the shared store, even from a mislabeled
// origin that marks a cookie-varying response cacheable.
func withoutCredentials(req *httpsim.Request) *httpsim.Request {
	header := make(map[string]string, len(req.Header))
	for k, v := range req.Header {
		if k == "Cookie" || k == "Authorization" {
			continue
		}
		header[k] = v
	}
	cp := *req
	cp.Header = header
	return &cp
}

// roundTrip is the proxy's absolute-URI fetch path when the cache is
// enabled. Only whitelisted GETs touch the cache — anything else (or any
// cache-internal bypass) still goes upstream, so correctness never
// depends on cacheability. Population fetches are credential-free; when
// the cache stands aside on a per-user key (Uncacheable), or a
// cookie-bearing request's population fetch turned out non-cacheable
// (Bypass), the user gets their own upstream fetch with their own
// credentials — per-user first-visit semantics never ride the cache.
func (d *Domestic) roundTrip(u *httpsim.URL, req *httpsim.Request) (*httpsim.Response, error) {
	if req.Header[SiblingHeader] != "" {
		return d.siblingRoundTrip(u, req)
	}
	if d.Cache == nil || req.Method != "GET" || !d.Whitelist.Match(u.Host) {
		return d.fetchOrigin(u, req, nil)
	}
	key := u.Scheme + "://" + u.HostPort() + u.Path
	resp, outcome, err := d.Cache.Fetch(key, func(cond map[string]string) (*httpsim.Response, error) {
		return d.fetchOrigin(u, withoutCredentials(req), cond)
	})
	if err != nil {
		return nil, err
	}
	if outcome == cache.Uncacheable || (outcome == cache.Bypass && req.Header["Cookie"] != "") {
		resp, err = d.fetchOrigin(u, req, nil)
		if err != nil {
			return nil, err
		}
	}
	d.flowTrace.Load().Addf("core", "cache", "%s %s", outcome, key)
	return resp, nil
}

// siblingRoundTrip answers a peer shard's cache-peering request: serve
// the key from the local cache via FetchLocal — never forwarding to
// another peer, so a rehash race cannot loop — populating on miss with a
// credential-free border fetch. When the cache stands aside (the key is
// known per-user), the peer still gets a credential-free fetch: exactly
// what it would have pulled across the border itself, so admission at the
// requesting shard replays the same per-user decision.
func (d *Domestic) siblingRoundTrip(u *httpsim.URL, req *httpsim.Request) (*httpsim.Response, error) {
	popReq := withoutCredentials(req)
	delete(popReq.Header, SiblingHeader)
	if d.Cache == nil || req.Method != "GET" || !d.Whitelist.Match(u.Host) {
		return d.fetchOrigin(u, popReq, nil)
	}
	key := u.Scheme + "://" + u.HostPort() + u.Path
	resp, outcome, err := d.Cache.FetchLocal(key, func(cond map[string]string) (*httpsim.Response, error) {
		return d.fetchOrigin(u, popReq, cond)
	})
	if err != nil {
		return nil, err
	}
	if resp == nil {
		// Uncacheable: the cache stood aside. The peer asked for a
		// shareable copy; a plain credential-free fetch is the closest
		// thing that exists for a per-user key.
		resp, err = d.fetchOrigin(u, popReq, nil)
		if err != nil {
			return nil, err
		}
	}
	d.flowTrace.Load().Addf("core", "sibling", "%s %s", outcome, key)
	return resp, nil
}

// PACHandler serves the proxy auto-config file at /pac — the one browser
// setting a ScholarCloud user touches.
func (d *Domestic) PACHandler() httpsim.Handler {
	mux := httpsim.NewMux()
	mux.HandleFunc("/pac", func(_ *httpsim.Request, _ net.Addr) *httpsim.Response {
		resp := httpsim.NewResponse(200, []byte(d.Whitelist.JavaScript()))
		resp.Header["Content-Type"] = "application/x-ns-proxy-autoconfig"
		return resp
	})
	mux.HandleFunc("/whitelist", func(_ *httpsim.Request, _ net.Addr) *httpsim.Response {
		// The auditable whitelist (§3, service legalization).
		var body []byte
		for _, dm := range d.Whitelist.Domains() {
			body = append(body, dm...)
			body = append(body, '\n')
		}
		return httpsim.NewResponse(200, body)
	})
	return mux
}
