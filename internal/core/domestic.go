package core

import (
	"fmt"
	"net"
	"sync"

	"scholarcloud/internal/blinding"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/pac"
	"scholarcloud/internal/tlssim"
)

// Domestic is the proxy inside the censored network: the single endpoint
// users' browsers talk to. It serves the PAC file, enforces the visible
// whitelist, and forwards whitelisted traffic through the blinded tunnel
// to the remote proxy.
type Domestic struct {
	Env netx.Env
	// DialRemote opens a raw connection to the remote proxy across the
	// border.
	DialRemote func() (net.Conn, error)
	// Fallbacks are tried in order when DialRemote fails — ScholarCloud
	// operators can run standby remote VMs and survive a takedown or
	// outage of the primary without user-visible reconfiguration.
	Fallbacks []func() (net.Conn, error)
	// Secret and Epoch must match the remote proxy's blinding
	// configuration.
	Secret []byte
	Epoch  uint64
	// Whitelist is the PAC policy: whitelisted domains go through the
	// tunnel, everything else is refused (the browser's PAC sends
	// non-whitelisted traffic DIRECT, so refusal only guards misuse).
	Whitelist *pac.Config
	// VerifyRemote authenticates the remote proxy's per-stream channel
	// certificate for plain-HTTP forwarding.
	VerifyRemote func(der []byte, name string) error
	// RemoteName is the expected certificate name of the remote.
	RemoteName string
	// SchemeOverride, if set, replaces epoch-derived blinding.
	SchemeOverride blinding.Scheme

	mu       sync.Mutex
	sess     *mux.Session
	requests int64
	refused  int64
}

// DomesticStats counts proxy activity.
type DomesticStats struct {
	Requests int64
	Refused  int64
}

// Stats returns a snapshot of the domestic proxy's counters.
func (d *Domestic) Stats() DomesticStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DomesticStats{Requests: d.requests, Refused: d.refused}
}

// Rotate switches the blinding epoch: the current tunnel is torn down
// and the next stream re-dials with the new scheme. The remote proxy must
// be rotated to the same epoch (the operator controls both ends, §3).
func (d *Domestic) Rotate(epoch uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Epoch = epoch
	if d.sess != nil {
		d.sess.Close()
		d.sess = nil
	}
}

// session returns the live tunnel session, dialing a fresh blinded
// carrier if needed.
func (d *Domestic) session() (*mux.Session, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sess != nil && d.sess.Err() == nil {
		return d.sess, nil
	}
	raw, err := d.DialRemote()
	if err != nil {
		for _, dial := range d.Fallbacks {
			if raw, err = dial(); err == nil {
				break
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: dial remote proxy: %w", err)
	}
	scheme := d.SchemeOverride
	if scheme == nil {
		scheme = blinding.SchemeForEpoch(d.Secret, d.Epoch)
	}
	d.sess = mux.NewSession(blinding.WrapConn(raw, scheme), d.Env, nil)
	return d.sess, nil
}

// openSecure opens an HTTPS-passthrough stream to host:port.
func (d *Domestic) openSecure(target string) (net.Conn, error) {
	sess, err := d.session()
	if err != nil {
		return nil, err
	}
	return sess.Open([]byte(metaSecure + target))
}

// openPlain opens a cleartext-HTTP stream to host:port, wrapped in the
// proxy-to-proxy encrypted channel.
func (d *Domestic) openPlain(target string) (net.Conn, error) {
	sess, err := d.session()
	if err != nil {
		return nil, err
	}
	st, err := sess.Open([]byte(metaPlain + target))
	if err != nil {
		return nil, err
	}
	tconn := tlssim.Client(st, tlssim.Config{
		ServerName: d.RemoteName,
		VerifyPeer: d.VerifyRemote,
	})
	if err := tconn.Handshake(); err != nil {
		st.Close()
		return nil, err
	}
	return tconn, nil
}

// authorize implements the whitelist check.
func (d *Domestic) authorize(host string) error {
	d.mu.Lock()
	d.requests++
	d.mu.Unlock()
	if d.Whitelist.Match(host) {
		return nil
	}
	d.mu.Lock()
	d.refused++
	d.mu.Unlock()
	return fmt.Errorf("core: %s is not on the whitelist", host)
}

// Proxy returns the browser-facing forward proxy (CONNECT for HTTPS,
// absolute-URI for HTTP), enforcing the whitelist.
func (d *Domestic) Proxy() *httpsim.Proxy {
	return &httpsim.Proxy{
		Dial:      d.openSecure,
		DialPlain: d.openPlain,
		Spawn:     d.Env.Spawn,
		Authorize: d.authorize,
	}
}

// PACHandler serves the proxy auto-config file at /pac — the one browser
// setting a ScholarCloud user touches.
func (d *Domestic) PACHandler() httpsim.Handler {
	mux := httpsim.NewMux()
	mux.HandleFunc("/pac", func(_ *httpsim.Request, _ net.Addr) *httpsim.Response {
		resp := httpsim.NewResponse(200, []byte(d.Whitelist.JavaScript()))
		resp.Header["Content-Type"] = "application/x-ns-proxy-autoconfig"
		return resp
	})
	mux.HandleFunc("/whitelist", func(_ *httpsim.Request, _ net.Addr) *httpsim.Response {
		// The auditable whitelist (§3, service legalization).
		var body []byte
		for _, dm := range d.Whitelist.Domains() {
			body = append(body, dm...)
			body = append(body, '\n')
		}
		return httpsim.NewResponse(200, body)
	})
	return mux
}
