package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"scholarcloud/internal/fleet"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/pac"
	"scholarcloud/internal/pki"
	"scholarcloud/internal/tlssim"
)

// coreWorld wires domestic + remote proxies and an origin across a
// border, without the GFW (censorship interplay is covered by
// internal/experiments; these tests pin the proxy mechanics).
type coreWorld struct {
	n        *netsim.Network
	env      netx.Env
	client   *netsim.Host
	domestic *netsim.Host
	remoteH  *netsim.Host
	origin   *netsim.Host
	usZone   *netsim.Zone

	remote    *Remote
	dom       *Domestic
	whitelist *pac.Config
	ca        *pki.CA
}

func newCoreWorld(t *testing.T) *coreWorld {
	t.Helper()
	n := netsim.New(71)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, netsim.LinkConfig{Delay: 70 * time.Millisecond})
	acc := netsim.LinkConfig{Delay: 2 * time.Millisecond}
	w := &coreWorld{
		n:        n,
		env:      n.Env(),
		client:   n.AddHost("client", "10.0.0.2", cn, acc),
		domestic: n.AddHost("domestic", "101.6.6.6", cn, acc),
		remoteH:  n.AddHost("remote", "198.51.100.7", us, acc),
		origin:   n.AddHost("origin", "203.0.113.10", us, acc),
		usZone:   us,
	}

	ca, err := pki.NewCA("core-test-ca", n.Clock().Now, n.Env().Rand)
	if err != nil {
		t.Fatal(err)
	}
	w.ca = ca
	id, err := ca.Issue("remote.scholarcloud.example", true)
	if err != nil {
		t.Fatal(err)
	}

	// Echo origin on :7 and a tiny HTTP responder on :80.
	eln, err := w.origin.Listen("tcp", ":7")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := eln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() { defer conn.Close(); io.Copy(conn, conn) })
		}
	})
	hln, err := w.origin.Listen("tcp", ":80")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := hln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				if _, err := conn.Read(buf); err != nil {
					return
				}
				conn.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"))
			})
		}
	})

	secret := []byte("tunnel-secret")
	w.remote = &Remote{
		Env: w.env,
		DialHost: func(host string, port int) (net.Conn, error) {
			return w.remoteH.DialTCP(fmt.Sprintf("%s:%d", host, port))
		},
		Secret:   secret,
		Identity: id,
	}
	rln, err := w.remoteH.Listen("tcp", ":8443")
	if err != nil {
		t.Fatal(err)
	}
	n.Scheduler().Go(func() { w.remote.Serve(rln) })

	w.whitelist = pac.New("101.6.6.6:8118", []string{"origin.example", "203.0.113.10"})
	w.dom = &Domestic{
		Env:          w.env,
		DialRemote:   func() (net.Conn, error) { return w.domestic.DialTCP("198.51.100.7:8443") },
		Secret:       secret,
		Whitelist:    w.whitelist,
		VerifyRemote: ca.Verifier(),
		RemoteName:   "remote.scholarcloud.example",
	}
	pln, err := w.domestic.Listen("tcp", ":8118")
	if err != nil {
		t.Fatal(err)
	}
	proxy := w.dom.Proxy()
	n.Scheduler().Go(func() { proxy.Serve(pln) })
	return w
}

func (w *coreWorld) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	w.n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked")
	}
}

func TestSecureStreamThroughBothProxies(t *testing.T) {
	w := newCoreWorld(t)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := connectThrough(conn, "203.0.113.10:7"); err != nil {
			return err
		}
		msg := []byte("end to end through the split proxy")
		conn.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("echo = %q", got)
		}
		return nil
	})
	if st := w.remote.Stats(); st.StreamsOpened != 1 {
		t.Errorf("remote stats = %+v", st)
	}
}

func TestPlainHTTPUsesPerStreamChannel(t *testing.T) {
	w := newCoreWorld(t)
	// Watch the border: the HTTP payload between the proxies must be
	// wrapped (blinded mux + per-stream TLS) — "hello" never in the clear
	// between domestic and remote.
	var leaked bool
	w.n.SetTrace(func(pkt *netsim.Packet) {
		interProxy := (pkt.Src.IP == "101.6.6.6" && pkt.Dst.IP == "198.51.100.7") ||
			(pkt.Src.IP == "198.51.100.7" && pkt.Dst.IP == "101.6.6.6")
		if interProxy && bytes.Contains(pkt.Payload, []byte("hello")) {
			leaked = true
		}
	})
	defer w.n.SetTrace(nil)

	w.run(t, func() error {
		conn, err := w.client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		// Absolute-URI plain-HTTP request through the proxy.
		fmt.Fprintf(conn, "GET http://203.0.113.10/ HTTP/1.1\r\nHost: 203.0.113.10\r\n\r\n")
		var got []byte
		buf := make([]byte, 512)
		for !strings.Contains(string(got), "hello") {
			n, err := conn.Read(buf)
			if err != nil {
				t.Errorf("response so far %q, read error: %v", got, err)
				return nil
			}
			got = append(got, buf[:n]...)
		}
		return nil
	})
	if leaked {
		t.Error("plain-HTTP payload crossed the inter-proxy link unprotected")
	}
}

func TestWhitelistRefusalBeforeTunnel(t *testing.T) {
	w := newCoreWorld(t)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		err = connectThrough(conn, "forbidden.example:443")
		if err == nil {
			t.Error("off-whitelist CONNECT granted")
		}
		return nil
	})
	if st := w.remote.Stats(); st.StreamsOpened != 0 {
		t.Error("refused request still crossed the tunnel")
	}
	if st := w.dom.Stats(); st.Refused != 1 {
		t.Errorf("domestic stats = %+v", st)
	}
}

func TestTunnelPersistsAcrossStreams(t *testing.T) {
	w := newCoreWorld(t)
	w.run(t, func() error {
		for i := 0; i < 3; i++ {
			conn, err := w.client.DialTCP("101.6.6.6:8118")
			if err != nil {
				return err
			}
			if err := connectThrough(conn, "203.0.113.10:7"); err != nil {
				return err
			}
			conn.Write([]byte{1})
			buf := make([]byte, 1)
			io.ReadFull(conn, buf)
			conn.Close()
		}
		return nil
	})
	// One carrier serves all three streams.
	if st := w.remote.Stats(); st.StreamsOpened != 3 {
		t.Errorf("streams = %d, want 3", st.StreamsOpened)
	}
}

func TestTunnelRecoversAfterCarrierLoss(t *testing.T) {
	w := newCoreWorld(t)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		if err := connectThrough(conn, "203.0.113.10:7"); err != nil {
			return err
		}
		conn.Close()

		// Kill the carrier (simulates a censor reset or remote restart).
		w.dom.Rotate(w.dom.Epoch) // tears the session down; same epoch

		conn2, err := w.client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		defer conn2.Close()
		if err := connectThrough(conn2, "203.0.113.10:7"); err != nil {
			return fmt.Errorf("proxy did not recover: %w", err)
		}
		msg := []byte("after recovery")
		conn2.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn2, got); err != nil {
			return err
		}
		return nil
	})
}

func TestRemoteDropsNonBlindedPeer(t *testing.T) {
	w := newCoreWorld(t)
	w.run(t, func() error {
		// Speak valid-looking TLS (not blinded) at the remote: it must
		// drop the connection without answering.
		raw, err := w.client.DialTCP("198.51.100.7:8443")
		if err != nil {
			return err
		}
		defer raw.Close()
		tc := tlssim.Client(raw, tlssim.Config{ServerName: "remote.scholarcloud.example"})
		if err := tc.Handshake(); err == nil {
			t.Error("non-blinded TLS handshake with the remote succeeded")
		}
		return nil
	})
}

func TestPACHandlerServesPolicy(t *testing.T) {
	w := newCoreWorld(t)
	h := w.dom.PACHandler()
	resp := h.ServeHTTP(reqFor("/pac"), netsim.Addr{Net: "tcp", AP: netsim.AddrPort{IP: "10.0.0.2", Port: 1}})
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "FindProxyForURL") {
		t.Errorf("pac response = %d %q", resp.StatusCode, resp.Body)
	}
	resp = h.ServeHTTP(reqFor("/whitelist"), netsim.Addr{Net: "tcp", AP: netsim.AddrPort{IP: "10.0.0.2", Port: 1}})
	if !strings.Contains(string(resp.Body), "origin.example") {
		t.Errorf("whitelist = %q", resp.Body)
	}
}

func TestSplitHostPortValidation(t *testing.T) {
	for _, bad := range []string{"nohost", "h:0", "h:-1", "h:99999", "h:"} {
		if _, _, err := splitHostPort(bad); err == nil {
			t.Errorf("splitHostPort(%q) succeeded", bad)
		}
	}
	h, p, err := splitHostPort("scholar.google.com:443")
	if err != nil || h != "scholar.google.com" || p != 443 {
		t.Errorf("splitHostPort = %q %d %v", h, p, err)
	}
}

func reqFor(path string) *httpsim.Request {
	return &httpsim.Request{Method: "GET", Target: path, Host: "x", Header: map[string]string{}}
}

func TestFailoverToStandbyRemote(t *testing.T) {
	w := newCoreWorld(t)
	// Stand up a standby remote on a second host in the same zone.
	standbyHost := w.n.AddHost("standby", "198.51.100.8", w.usZone, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	id, err := w.ca.Issue("remote.scholarcloud.example", true)
	if err != nil {
		t.Fatal(err)
	}
	standby := &Remote{
		Env: w.env,
		DialHost: func(host string, port int) (net.Conn, error) {
			return standbyHost.DialTCP(fmt.Sprintf("%s:%d", host, port))
		},
		Secret:   []byte("tunnel-secret"),
		Identity: id,
	}
	sln, err := standbyHost.Listen("tcp", ":8443")
	if err != nil {
		t.Fatal(err)
	}
	w.n.Scheduler().Go(func() { standby.Serve(sln) })

	// The paper's manual-standby deployment is now expressed as a
	// degenerate two-member fleet: dead primary, live standby.
	pool, err := fleet.New(fleet.Config{
		Env:           w.env,
		NewSession:    w.dom.WrapCarrier,
		ProbeInterval: time.Hour, // keep probe traffic out of this test
		Seed:          7,
	}, []fleet.Endpoint{
		{Name: "primary", Dial: func() (net.Conn, error) {
			return nil, fmt.Errorf("primary remote is down")
		}},
		{Name: "standby", Dial: func() (net.Conn, error) {
			return w.domestic.DialTCP("198.51.100.8:8443")
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	w.dom.Fleet = pool
	// Primary remote goes away entirely.
	w.remote.Close()

	w.run(t, func() error {
		conn, err := w.client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := connectThrough(conn, "203.0.113.10:7"); err != nil {
			return fmt.Errorf("failover did not engage: %w", err)
		}
		msg := []byte("served by the standby")
		conn.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		return nil
	})
	if standby.Stats().StreamsOpened == 0 {
		t.Error("standby remote never served a stream")
	}
	if st := w.dom.Stats(); st.Endpoint != "fleet" {
		t.Errorf("stats = %+v, want endpoint fleet", st)
	}
	for _, ep := range pool.Stats().Endpoints {
		if ep.Name == "standby" && ep.StreamsOpened == 0 {
			t.Error("pool never opened a stream on the standby endpoint")
		}
	}
}

func TestAllDialsFailReturnsTypedError(t *testing.T) {
	w := newCoreWorld(t)
	dead := func(name string) func() (net.Conn, error) {
		return func() (net.Conn, error) { return nil, fmt.Errorf("%s unreachable", name) }
	}
	pool, err := fleet.New(fleet.Config{
		Env:           w.env,
		NewSession:    w.dom.WrapCarrier,
		ProbeInterval: time.Hour,
		Seed:          7,
	}, []fleet.Endpoint{
		{Name: "primary", Dial: dead("primary")},
		{Name: "standby-1", Dial: dead("standby 1")},
		{Name: "standby-2", Dial: dead("standby 2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	w.dom.Fleet = pool

	_, err = w.dom.openSecure("203.0.113.10:7")
	if !errors.Is(err, ErrAllRemotesDown) {
		t.Errorf("err = %v, want ErrAllRemotesDown", err)
	}
}

func TestDeadCachedSessionRedials(t *testing.T) {
	w := newCoreWorld(t)
	w.run(t, func() error {
		conn, err := w.client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		if err := connectThrough(conn, "203.0.113.10:7"); err != nil {
			return err
		}
		conn.Close()

		// The carrier dies underneath the proxy (remote restart, censor
		// reset) without anyone calling Rotate.
		w.dom.mu.Lock()
		sess := w.dom.sess
		w.dom.mu.Unlock()
		if sess == nil {
			return fmt.Errorf("no cached session after first request")
		}
		sess.Close()

		// The next request must notice the dead session and re-dial.
		conn2, err := w.client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		defer conn2.Close()
		if err := connectThrough(conn2, "203.0.113.10:7"); err != nil {
			return fmt.Errorf("proxy stuck on dead cached session: %w", err)
		}
		msg := []byte("re-dialed")
		conn2.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn2, got); err != nil {
			return err
		}
		return nil
	})
	if st := w.dom.Stats(); st.Endpoint != "primary" {
		t.Errorf("endpoint = %q, want primary", st.Endpoint)
	}
}

func TestFleetDialPathThroughDomestic(t *testing.T) {
	w := newCoreWorld(t)
	// Second remote, same identity, on another host.
	standbyHost := w.n.AddHost("standby", "198.51.100.8", w.usZone, netsim.LinkConfig{Delay: 2 * time.Millisecond})
	id, err := w.ca.Issue("remote.scholarcloud.example", true)
	if err != nil {
		t.Fatal(err)
	}
	standby := &Remote{
		Env: w.env,
		DialHost: func(host string, port int) (net.Conn, error) {
			return standbyHost.DialTCP(fmt.Sprintf("%s:%d", host, port))
		},
		Secret:   []byte("tunnel-secret"),
		Identity: id,
	}
	sln, err := standbyHost.Listen("tcp", ":8443")
	if err != nil {
		t.Fatal(err)
	}
	w.n.Scheduler().Go(func() { standby.Serve(sln) })

	pool, err := fleet.New(fleet.Config{
		Env:           w.env,
		NewSession:    w.dom.WrapCarrier,
		ProbeInterval: 500 * time.Millisecond,
		Seed:          7,
	}, []fleet.Endpoint{
		{Name: "198.51.100.7:8443", Dial: func() (net.Conn, error) { return w.domestic.DialTCP("198.51.100.7:8443") }},
		{Name: "198.51.100.8:8443", Dial: func() (net.Conn, error) { return w.domestic.DialTCP("198.51.100.8:8443") }},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	w.dom.Fleet = pool

	visit := func() error {
		conn, err := w.client.DialTCP("101.6.6.6:8118")
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := connectThrough(conn, "203.0.113.10:7"); err != nil {
			return err
		}
		msg := []byte("via the fleet")
		conn.Write(msg)
		got := make([]byte, len(msg))
		_, err = io.ReadFull(conn, got)
		return err
	}
	w.run(t, func() error {
		w.env.Clock.Sleep(time.Second) // let the pool warm
		for i := 0; i < 6; i++ {
			if err := visit(); err != nil {
				return err
			}
		}
		// Takedown of one remote: requests keep flowing through the other.
		w.remote.Close()
		pool.MarkDown("198.51.100.7:8443", "takedown")
		for i := 0; i < 6; i++ {
			if err := visit(); err != nil {
				return fmt.Errorf("visit %d after takedown: %w", i, err)
			}
		}
		return nil
	})
	if st := w.dom.Stats(); st.Endpoint != "fleet" {
		t.Errorf("endpoint = %q, want fleet", st.Endpoint)
	}
	if standby.Stats().StreamsOpened < 6 {
		t.Errorf("standby served %d streams, want >= 6", standby.Stats().StreamsOpened)
	}
	if pool.Stats().Rotations != 1 {
		t.Errorf("rotations = %d, want 1", pool.Stats().Rotations)
	}
}
