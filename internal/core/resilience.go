package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/httpsim"
)

// Resilience tunes the domestic proxy's client-path fault tolerance:
// per-dial and per-request deadlines, exponential reconnect backoff with
// deterministic jitter, and hedged retry that re-issues a stalled
// in-flight fetch on a second carrier so one page load can survive a
// mid-flight remote takedown. A nil *Resilience on Domestic disables the
// whole layer — behaviour (and every deterministic figure) is then
// byte-identical to the pre-resilience proxy. The zero value of each
// field selects a default.
type Resilience struct {
	// DialTimeout bounds one carrier dial to the remote (default 3s).
	DialTimeout time.Duration
	// RequestTimeout bounds one upstream fetch end to end, across all of
	// its attempts (default 45s — loose enough that a fetch crawling
	// through a long loss burst finishes instead of being cut off).
	RequestTimeout time.Duration
	// HedgeAfter is how long the first attempt may stall before the fetch
	// is re-issued concurrently on a second carrier; first answer wins
	// (default 2s; hedging needs a fleet to supply the second carrier).
	HedgeAfter time.Duration
	// Retries is how many times a failed fetch is re-issued (default 4 —
	// the summed backoff then spans a fleet ejection window, so retries
	// against a freshly dead remote live to see it rotated out).
	Retries int
	// BackoffBase is the first retry delay; it doubles per retry (default
	// 500ms).
	BackoffBase time.Duration
	// BackoffMax caps the retry delay (default 8s).
	BackoffMax time.Duration
	// Seed derives the deterministic backoff jitter stream.
	Seed uint64
}

func (r Resilience) withDefaults() Resilience {
	if r.DialTimeout <= 0 {
		r.DialTimeout = 3 * time.Second
	}
	if r.RequestTimeout <= 0 {
		r.RequestTimeout = 45 * time.Second
	}
	if r.HedgeAfter <= 0 {
		r.HedgeAfter = 2 * time.Second
	}
	if r.Retries <= 0 {
		r.Retries = 4
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = 500 * time.Millisecond
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = 8 * time.Second
	}
	return r
}

// errRequestTimeout reports a fetch that exhausted its end-to-end
// deadline with no attempt outcome to blame.
var errRequestTimeout = errors.New("core: request deadline exceeded")

// isTimeout reports whether err is a deadline-style failure.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// backoff returns the k-th retry delay: exponential from BackoffBase,
// capped at BackoffMax, with deterministic full jitter in [d/2, d) drawn
// from the proxy's splitmix stream. Equal seeds and equal call orders
// reproduce equal delays, so resilience never costs determinism.
func (d *Domestic) backoff(r Resilience, k int) time.Duration {
	b := r.BackoffBase << uint(k)
	if b <= 0 || b > r.BackoffMax {
		b = r.BackoffMax
	}
	n := d.jitterCtr.Add(1)
	x := (r.Seed ^ 0xBACC0FF) + n*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := float64(x>>11) / float64(1<<53)
	return b/2 + time.Duration(frac*float64(b/2))
}

// dialRemoteBounded runs DialRemote under the resilience dial deadline.
// On timeout the dialing goroutine is disowned and its late connection,
// if any, closed on arrival.
func (d *Domestic) dialRemoteBounded(timeout time.Duration) (net.Conn, error) {
	var (
		mu       sync.Mutex
		done     bool
		timedOut bool
		conn     net.Conn
		err      error
	)
	cond := d.Env.Sync.NewCond(&mu)
	d.Env.Spawn.Go(func() {
		c, e := d.DialRemote()
		mu.Lock()
		if timedOut {
			mu.Unlock()
			// Guard on e, not c: a failed Dial may return a typed-nil
			// conn inside a non-nil interface.
			if e == nil && c != nil {
				c.Close()
			}
			return
		}
		conn, err, done = c, e, true
		cond.Broadcast()
		mu.Unlock()
	})
	timer := d.Env.Clock.AfterFunc(timeout, func() {
		mu.Lock()
		if !done {
			timedOut = true
			cond.Broadcast()
		}
		mu.Unlock()
	})
	defer timer.Stop()
	mu.Lock()
	defer mu.Unlock()
	for !done && !timedOut {
		cond.Wait()
	}
	if timedOut {
		d.deadlineHits.Inc()
		return nil, fmt.Errorf("core: dial remote: %w", errDialTimeout)
	}
	return conn, err
}

// errDialTimeout reports a remote dial that outlived its deadline.
var errDialTimeout = errors.New("core: dial timed out")

// fetchResilient is fetchOrigin under the resilience policy: the fetch is
// issued with a read deadline; if it stalls past HedgeAfter a hedge
// attempt races it on a second carrier (first answer wins); failed waves
// are re-issued with exponentially backed-off, deterministically jittered
// delays until the end-to-end RequestTimeout expires or Retries is
// exhausted. Graceful degradation is visible through the hedges, retries,
// deadline-hit and failover counters.
func (d *Domestic) fetchResilient(u *httpsim.URL, req *httpsim.Request, header map[string]string) (*httpsim.Response, error) {
	r := d.Resil.withDefaults()
	clock := d.Env.Clock
	deadline := clock.Now().Add(r.RequestTimeout)

	var mu sync.Mutex
	cond := d.Env.Sync.NewCond(&mu)
	var (
		winner   *httpsim.Response
		wonBy    = -1
		lastErr  error
		inflight int
		launched int
		hedged   bool
	)

	launch := func(via string) {
		mu.Lock()
		idx := launched
		launched++
		inflight++
		mu.Unlock()
		d.Env.Spawn.Go(func() {
			resp, err := d.fetchOriginOnce(u, req, header, deadline, via)
			mu.Lock()
			inflight--
			if err != nil {
				lastErr = err
				if isTimeout(err) {
					d.deadlineHits.Inc()
				}
			} else if winner == nil {
				winner = resp
				wonBy = idx
			}
			cond.Broadcast()
			mu.Unlock()
		})
	}
	launch("")

	if d.Fleet != nil {
		hedgeTimer := clock.AfterFunc(r.HedgeAfter, func() {
			mu.Lock()
			fire := winner == nil && inflight > 0 && !hedged
			if fire {
				hedged = true
			}
			mu.Unlock()
			if fire {
				d.hedges.Inc()
				// With an escalation ladder wired in, a stalled attempt
				// smells like the active transport being throttled or
				// blocked: aim the hedge at the next rung so the race is
				// between transports, not between two carriers of the same
				// one.
				via := ""
				if d.NextTransport != nil {
					via = d.NextTransport()
				}
				if via != "" {
					d.flowTrace.Load().Addf("core", "hedge", "%s re-issued via %s", u.HostPort(), via)
				} else {
					d.flowTrace.Load().Addf("core", "hedge", "%s re-issued on second carrier", u.HostPort())
				}
				launch(via)
			}
		})
		defer hedgeTimer.Stop()
	}
	// Wake the waiter when the end-to-end deadline lands even if every
	// attempt is still stalled.
	wake := clock.AfterFunc(r.RequestTimeout, func() {
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	})
	defer wake.Stop()

	retries := 0
	mu.Lock()
	for {
		if winner != nil {
			resp, idx := winner, wonBy
			mu.Unlock()
			if idx > 0 {
				d.failovers.Inc()
				d.flowTrace.Load().Addf("core", "failover", "%s completed by attempt %d", u.HostPort(), idx)
			}
			return resp, nil
		}
		if !clock.Now().Before(deadline) {
			err := lastErr
			mu.Unlock()
			d.deadlineHits.Inc()
			if err == nil {
				err = errRequestTimeout
			}
			return nil, fmt.Errorf("core: request deadline (%v) exceeded: %w", r.RequestTimeout, err)
		}
		if inflight == 0 {
			if retries >= r.Retries {
				err := lastErr
				mu.Unlock()
				return nil, err
			}
			k := retries
			retries++
			mu.Unlock()
			d.retries.Inc()
			clock.Sleep(d.backoff(r, k))
			launch("")
			mu.Lock()
			continue
		}
		cond.Wait()
	}
}
