package core

import (
	"bufio"
	"fmt"
	"net"

	"scholarcloud/internal/httpsim"
)

// connectThrough issues an HTTP CONNECT for target on conn and consumes
// the response head, leaving the connection as a raw tunnel.
func connectThrough(conn net.Conn, target string) error {
	req := &httpsim.Request{
		Method: "CONNECT",
		Target: target,
		Host:   target,
		Header: map[string]string{},
	}
	if err := req.Encode(conn); err != nil {
		return fmt.Errorf("core: CONNECT write: %w", err)
	}
	// The response head is tiny and arrives before any tunnel bytes, so
	// an unbuffered read path keeps the conn clean for the caller.
	resp, err := httpsim.ReadResponse(bufio.NewReaderSize(onlyReader{conn}, 1))
	if err != nil {
		return fmt.Errorf("core: CONNECT response: %w", err)
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("core: CONNECT refused: %d %s (%s)", resp.StatusCode, resp.Status, resp.Body)
	}
	return nil
}

// onlyReader hides conn's other methods so bufio cannot over-read via
// optimizations; with size-1 buffering every byte is consumed exactly
// when parsed.
type onlyReader struct{ net.Conn }

func (r onlyReader) Read(b []byte) (int, error) {
	// Read at most one byte at a time: CONNECT responses are followed
	// immediately by tunnel bytes that must not be swallowed by the
	// buffered reader.
	if len(b) > 1 {
		b = b[:1]
	}
	return r.Conn.Read(b)
}
