// Package core implements ScholarCloud, the paper's contribution (§3): a
// split-proxy system that gives non-technical users access to legal
// services incidentally blocked by the GFW.
//
// Architecture (paper Fig. 2e):
//
//	browser --PAC--> domestic proxy --blinded tunnel--> remote proxy --> origin
//
// The browser's only configuration is a PAC URL served by the domestic
// proxy; the PAC diverts just the visible whitelist of legal domains. The
// domestic proxy (inside the censored network) maintains a persistent
// multiplexed tunnel to the remote proxy (outside); the tunnel's carrier
// is message-blinded, so the GFW's DPI sees no known protocol, and the
// remote proxy drops unauthenticated peers instantly, so active probes
// never confirm anything.
//
// Per the paper's "data security and privacy" design, already-encrypted
// (HTTPS) browser traffic is carried with blinding only — it is not
// re-encrypted — while cleartext HTTP streams get a per-stream encrypted
// channel between the proxies.
package core

import (
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"scholarcloud/internal/blinding"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/mux"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/pki"
	"scholarcloud/internal/tlssim"
)

// Stream metadata prefixes on the inter-proxy tunnel.
const (
	metaSecure = "S " // payload already encrypted end-to-end (HTTPS)
	metaPlain  = "P " // cleartext HTTP: wrap in a proxy-to-proxy channel
)

// Remote is the proxy outside the censored network.
type Remote struct {
	Env netx.Env
	// DialHost resolves and dials origin servers.
	DialHost func(host string, port int) (net.Conn, error)
	// Secret is the shared key material for blinding-scheme derivation.
	Secret []byte
	// Epoch selects the current blinding scheme; must match the domestic
	// proxy (rotation is an operator action on both ends).
	Epoch uint64
	// Identity authenticates the remote to the domestic proxy on
	// plain-HTTP per-stream channels.
	Identity *pki.Identity
	// SchemeOverride, if set, replaces epoch-derived blinding (ablations
	// use blinding.Identity to disable blinding entirely).
	SchemeOverride blinding.Scheme

	mu    sync.Mutex
	lns   []net.Listener
	sess  []*mux.Session
	opens metrics.Counter
	dens  metrics.Counter

	flowTrace   atomic.Pointer[obs.Trace]
	muxCounters atomic.Pointer[mux.Counters]
}

// RemoteStats counts tunnel activity.
type RemoteStats struct {
	StreamsOpened int64
	StreamsDenied int64
}

// Stats returns a snapshot of the remote proxy's counters.
func (r *Remote) Stats() RemoteStats {
	return RemoteStats{StreamsOpened: r.opens.Value(), StreamsDenied: r.dens.Value()}
}

// Instrument publishes the remote's stream counters and its carriers' mux
// frame counters on reg. Multiple Remote instances registering on the
// same registry aggregate (snapshot sums same-name sources).
func (r *Remote) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("core.remote.streams_opened", &r.opens)
	reg.RegisterCounter("core.remote.streams_denied", &r.dens)
	r.muxCounters.Store(&mux.Counters{
		FramesIn:   reg.Counter("mux.remote.frames_in"),
		FramesOut:  reg.Counter("mux.remote.frames_out"),
		Keepalives: reg.Counter("mux.remote.keepalives"),
	})
}

// SetTrace installs (or, with nil, removes) a flow tracer receiving a
// span for every origin connection made on a tunneled stream's behalf.
func (r *Remote) SetTrace(t *obs.Trace) { r.flowTrace.Store(t) }

// SetEpoch rotates the blinding scheme for subsequently accepted tunnels.
func (r *Remote) SetEpoch(epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Epoch = epoch
}

func (r *Remote) scheme() blinding.Scheme {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.SchemeOverride != nil {
		return r.SchemeOverride
	}
	return blinding.SchemeForEpoch(r.Secret, r.Epoch)
}

// Serve accepts domestic-proxy tunnel connections from ln. Anything that
// does not speak the current epoch's blinded protocol is dropped at the
// first malformed frame — the probe-resistance property.
func (r *Remote) Serve(ln net.Listener) {
	r.mu.Lock()
	r.lns = append(r.lns, ln)
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		blinded := blinding.WrapConn(conn, r.scheme())
		sess := mux.NewSession(blinded, r.Env, r.acceptStream)
		sess.SetCounters(r.muxCounters.Load())
		r.mu.Lock()
		// Prune dead carriers so the list tracks live peers only.
		live := r.sess[:0]
		for _, s := range r.sess {
			if s.Err() == nil {
				live = append(live, s)
			}
		}
		r.sess = append(live, sess)
		r.mu.Unlock()
	}
}

// Close shuts down the remote proxy: listeners and every live carrier
// session. Killing the carriers matters for takedown modeling — a seized
// VM does not keep serving established tunnels.
func (r *Remote) Close() {
	r.mu.Lock()
	lns := r.lns
	sessions := r.sess
	r.lns, r.sess = nil, nil
	r.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, s := range sessions {
		s.Close()
	}
}

// acceptStream handles one tunneled stream open.
func (r *Remote) acceptStream(meta []byte) (net.Conn, error) {
	m := string(meta)
	secure := strings.HasPrefix(m, metaSecure)
	plain := strings.HasPrefix(m, metaPlain)
	if !secure && !plain {
		r.dens.Inc()
		return nil, fmt.Errorf("core: bad stream metadata")
	}
	host, port, err := splitHostPort(m[2:])
	if err != nil {
		r.dens.Inc()
		return nil, err
	}
	origin, err := r.DialHost(host, port)
	if err != nil {
		r.dens.Inc()
		r.flowTrace.Load().Addf("core", "origin-connect", "%s:%d failed: %v", host, port, err)
		return nil, err
	}
	r.opens.Inc()
	kind := "https passthrough"
	if plain {
		kind = "http via per-stream channel"
	}
	r.flowTrace.Load().Addf("core", "origin-connect", "%s:%d (%s)", host, port, kind)

	if secure {
		// HTTPS passthrough: the browser's TLS rides the blinded tunnel
		// untouched (no double encryption).
		return origin, nil
	}
	// Cleartext HTTP: terminate a proxy-to-proxy encrypted channel here,
	// forwarding plaintext to the origin.
	near, far := netx.Pipe(r.Env)
	r.Env.Spawn.Go(func() {
		tconn := tlssim.Server(far, tlssim.Config{Certificate: r.Identity.DER, Rand: r.Env.Rand})
		defer tconn.Close()
		defer origin.Close()
		r.Env.Spawn.Go(func() {
			io.Copy(tconn, origin)
			tconn.Close()
			origin.Close()
		})
		io.Copy(origin, tconn)
		origin.Close()
	})
	return near, nil
}

func splitHostPort(s string) (string, int, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("core: target %q missing port", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port <= 0 || port > 65535 {
		return "", 0, fmt.Errorf("core: bad port in %q", s)
	}
	return s[:i], port, nil
}
