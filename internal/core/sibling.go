package core

import (
	"fmt"
	"net"

	"scholarcloud/internal/cache"
	"scholarcloud/internal/httpsim"
)

// SiblingHeader marks a proxy-to-proxy cache peering request. A domestic
// shard receiving it serves the key from its local cache (FetchLocal —
// never forwarding onward, so ownership disagreements degrade to an extra
// border fetch instead of a loop) and never substitutes the requesting
// shard's users' credentials.
const SiblingHeader = "X-Scholarcloud-Sibling"

// SiblingFetcher returns the cache.SiblingFetcher for a shard in the
// domestic tier: it dials the owning peer's proxy endpoint on the
// domestic network and issues the cache key — an absolute URI — as a
// marked GET. The peer answers from its cache, fetching across the
// border at most once no matter how many shards ask.
func SiblingFetcher(dial func(network, address string) (net.Conn, error)) cache.SiblingFetcher {
	return func(peer, key string) (*httpsim.Response, error) {
		u, err := httpsim.ParseURL(key)
		if err != nil {
			return nil, fmt.Errorf("core: sibling fetch of unparsable key %q: %w", key, err)
		}
		conn, err := dial("tcp", peer)
		if err != nil {
			return nil, fmt.Errorf("core: dial sibling %s: %w", peer, err)
		}
		defer conn.Close()
		return httpsim.NewClientConn(conn).RoundTrip(&httpsim.Request{
			Method: "GET",
			Target: key,
			Host:   u.Host,
			Header: map[string]string{SiblingHeader: "1"},
		})
	}
}
