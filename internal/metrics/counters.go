package metrics

import "sync/atomic"

// Counter is a monotonically increasing, thread-safe event counter.
// Components that count on hot paths (proxy streams, fleet picks) use it
// instead of mutex-guarded int64 fields so the data path never contends
// with stats snapshots.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which may be negative for corrections, though counters
// are conventionally monotonic).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a thread-safe instantaneous value (e.g. in-flight streams).
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
