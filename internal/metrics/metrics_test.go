package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %v", s.P50)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.P50 != 7 || s.P95 != 7 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2 {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if p := Percentile(xs, 0); p != 10 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(xs, 1); p != 40 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(xs, 0.5); p != 25 {
		t.Errorf("p50 = %v", p)
	}
}

func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.Max &&
			s.P50 <= s.P95+1e-9 && s.N == len(xs) && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FormatSeconds(1.316), "1.32s"},
		{FormatSeconds(0.33), "330ms"},
		{FormatSeconds(0.00022), "0.22ms"},
		{FormatPercent(0.0022), "0.22%"},
		{FormatKB(19456), "19.0 KB"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestCounterAndGaugeConcurrency(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	c.Add(-1)
	g.Set(42)
	if c.Value() != 7999 || g.Value() != 42 {
		t.Errorf("after Add/Set: counter=%d gauge=%d", c.Value(), g.Value())
	}
}
