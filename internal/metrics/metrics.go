// Package metrics provides the small statistics toolkit the measurement
// study uses: summaries with mean and error bars (the paper's figures show
// max/min whiskers), percentiles, and rate helpers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample set.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
	Std  float64
}

// Summarize computes a Summary over xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	total := 0.0
	for _, x := range xs {
		total += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = total / float64(len(xs))
	var sq float64
	for _, x := range xs {
		sq += (x - s.Mean) * (x - s.Mean)
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentileSorted(sorted, 0.50)
	s.P95 = percentileSorted(sorted, 0.95)
	return s
}

// SummarizeDurations is Summarize over time.Durations, in seconds.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile computes the p-quantile (0..1) of xs.
func Percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// FormatSeconds renders a seconds value compactly ("1.32s", "330ms").
func FormatSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 0.001:
		return fmt.Sprintf("%.0fms", s*1000)
	default:
		return fmt.Sprintf("%.2fms", s*1000)
	}
}

// FormatPercent renders a fraction as a percentage ("0.22%").
func FormatPercent(f float64) string {
	return fmt.Sprintf("%.2f%%", f*100)
}

// FormatKB renders bytes as kilobytes ("19.0 KB").
func FormatKB(b float64) string {
	return fmt.Sprintf("%.1f KB", b/1024)
}
