package netx

import (
	"io"
	"net"
	"sync"
	"time"
)

// Pipe returns a connected pair of in-process duplex connections whose
// blocking is scheduler-aware (unlike net.Pipe, which would stall a
// virtual-time simulation). Writes never block; reads block until data or
// close.
func Pipe(env Env) (net.Conn, net.Conn) {
	var mu sync.Mutex
	a := &pipeEnd{mu: &mu}
	b := &pipeEnd{mu: &mu}
	a.cond = env.Sync.NewCond(&mu)
	b.cond = env.Sync.NewCond(&mu)
	a.peer, b.peer = b, a
	return a, b
}

type pipeEnd struct {
	mu   *sync.Mutex
	cond Cond
	peer *pipeEnd

	buf    []byte
	closed bool
}

// Read implements net.Conn.
func (p *pipeEnd) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if len(p.buf) > 0 {
			n := copy(b, p.buf)
			p.buf = p.buf[n:]
			return n, nil
		}
		if p.closed {
			return 0, net.ErrClosed
		}
		if p.peer.closed {
			return 0, io.EOF
		}
		p.cond.Wait()
	}
}

// Write implements net.Conn.
func (p *pipeEnd) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.peer.closed {
		return 0, net.ErrClosed
	}
	p.peer.buf = append(p.peer.buf, b...)
	p.peer.cond.Broadcast()
	return len(b), nil
}

// Close implements net.Conn.
func (p *pipeEnd) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
	p.peer.cond.Broadcast()
	return nil
}

// LocalAddr implements net.Conn.
func (p *pipeEnd) LocalAddr() net.Addr { return pipeAddr{} }

// RemoteAddr implements net.Conn.
func (p *pipeEnd) RemoteAddr() net.Addr { return pipeAddr{} }

// SetDeadline implements net.Conn (pipes do not support deadlines).
func (p *pipeEnd) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn.
func (p *pipeEnd) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn.
func (p *pipeEnd) SetWriteDeadline(time.Time) error { return nil }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
