// Package netx defines the transport and time abstractions that all
// protocol code in this repository is written against. The same tunnel
// implementations (VPN, OpenVPN, Tor, Shadowsocks, ScholarCloud) run both
// over the deterministic simulated internet (internal/netsim) for the
// paper's experiments and over real sockets for the deployable proxies in
// cmd/.
package netx

import (
	cryptorand "crypto/rand"
	"io"
	"net"
	"sync"
	"time"
)

// Clock abstracts time so simulated components run on virtual time.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks the caller for d.
	Sleep(d time.Duration)
	// AfterFunc runs fn after d on its own goroutine and returns a handle
	// that can cancel it.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the callback and reports whether it was still pending.
	Stop() bool
}

// Dialer opens client connections.
type Dialer interface {
	// Dial connects to address (host:port). network is "tcp" or "udp".
	Dial(network, address string) (net.Conn, error)
}

// Network is a bidirectional transport endpoint: it can both dial out and
// accept inbound connections.
type Network interface {
	Dialer
	// Listen announces on the local address (":port" or "host:port").
	Listen(network, address string) (net.Listener, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(network, address string) (net.Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(network, address string) (net.Conn, error) {
	return f(network, address)
}

// RealClock is a Clock backed by the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// AfterFunc implements Clock.
func (RealClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// RealNetwork is a Network backed by the operating system's sockets.
type RealNetwork struct{}

// Dial implements Network.
func (RealNetwork) Dial(network, address string) (net.Conn, error) {
	return net.Dial(network, address)
}

// Listen implements Network.
func (RealNetwork) Listen(network, address string) (net.Listener, error) {
	return net.Listen(network, address)
}

// Spawner abstracts goroutine creation so simulated components run under a
// virtual-time scheduler (which must know about every runnable goroutine)
// while real deployments just use the go statement.
type Spawner interface {
	// Go runs fn concurrently.
	Go(fn func())
}

// GoSpawner spawns plain goroutines.
type GoSpawner struct{}

// Go implements Spawner.
func (GoSpawner) Go(fn func()) { go fn() }

// Cond is a condition variable abstraction. Simulated components must use
// it instead of sync.Cond so the virtual-time scheduler can account for
// parked goroutines.
type Cond interface {
	// Wait atomically unlocks the associated locker, parks the caller,
	// and re-locks before returning.
	Wait()
	// Signal wakes one waiter. The caller must hold the locker.
	Signal()
	// Broadcast wakes all waiters. The caller must hold the locker.
	Broadcast()
}

// Sync creates synchronization primitives appropriate for the execution
// environment (real or simulated).
type Sync interface {
	// NewCond returns a condition variable bound to l.
	NewCond(l sync.Locker) Cond
}

// RealSync creates ordinary sync.Cond-backed primitives.
type RealSync struct{}

// NewCond implements Sync.
func (RealSync) NewCond(l sync.Locker) Cond { return sync.NewCond(l) }

// Env bundles the execution-environment dependencies protocol code needs:
// time, goroutines, synchronization, and entropy. Everything in
// internal/vpn, internal/openvpn, internal/tor, internal/shadowsocks, and
// internal/core runs identically over a real environment and the
// simulator.
type Env struct {
	Clock Clock
	Spawn Spawner
	Sync  Sync
	// Rand is the environment's entropy source for protocol nonces, IVs,
	// and handshake keys. The real environment uses crypto/rand; the
	// simulator substitutes a seeded stream so wire bytes — and therefore
	// everything the censor's entropy heuristics decide from them — are a
	// deterministic function of the world's seed. Nil falls back to
	// crypto/rand (see Entropy).
	Rand io.Reader
}

// Entropy returns Env.Rand, or crypto/rand when unset, so protocol code
// can draw randomness without nil checks.
func (e Env) Entropy() io.Reader {
	if e.Rand != nil {
		return e.Rand
	}
	return cryptorand.Reader
}

// RealEnv returns the environment backed by the operating system.
func RealEnv() Env {
	return Env{Clock: RealClock{}, Spawn: GoSpawner{}, Sync: RealSync{}, Rand: cryptorand.Reader}
}

// WaitGroup is a scheduler-aware counterpart of sync.WaitGroup. Managed
// goroutines must use it (via Env.NewWaitGroup) instead of sync.WaitGroup
// or channel joins, which would freeze a virtual-time scheduler.
type WaitGroup struct {
	mu   sync.Mutex
	cond Cond
	n    int
}

// NewWaitGroup creates a WaitGroup using this environment's primitives.
func (e Env) NewWaitGroup() *WaitGroup {
	wg := &WaitGroup{}
	wg.cond = e.Sync.NewCond(&wg.mu)
	return wg
}

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.mu.Lock()
	wg.n += delta
	if wg.n <= 0 {
		wg.cond.Broadcast()
	}
	wg.mu.Unlock()
}

// Done decrements the counter.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait() {
	wg.mu.Lock()
	for wg.n > 0 {
		wg.cond.Wait()
	}
	wg.mu.Unlock()
}
