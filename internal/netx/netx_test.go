package netx

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	c := RealClock{}
	a := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(a) {
		t.Error("clock did not advance")
	}
	fired := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Error("AfterFunc never fired")
	}
}

func TestRealTimerStop(t *testing.T) {
	c := RealClock{}
	tm := c.AfterFunc(time.Hour, func() { t.Error("cancelled timer fired") })
	if !tm.Stop() {
		t.Error("Stop returned false for pending timer")
	}
}

func TestGoSpawner(t *testing.T) {
	done := make(chan struct{})
	GoSpawner{}.Go(func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Error("spawned function never ran")
	}
}

func TestRealSyncCond(t *testing.T) {
	var mu sync.Mutex
	cond := RealSync{}.NewCond(&mu)
	ready := false
	done := make(chan struct{})
	go func() {
		mu.Lock()
		for !ready {
			cond.Wait()
		}
		mu.Unlock()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	ready = true
	cond.Signal()
	mu.Unlock()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Error("cond waiter never woke")
	}
}

func TestWaitGroup(t *testing.T) {
	env := RealEnv()
	wg := env.NewWaitGroup()
	var n int
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		wg.Add(1)
		env.Spawn.Go(func() {
			defer wg.Done()
			mu.Lock()
			n++
			mu.Unlock()
		})
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if n != 10 {
		t.Errorf("n = %d", n)
	}
}

func TestWaitGroupZeroReturnsImmediately(t *testing.T) {
	wg := RealEnv().NewWaitGroup()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Error("Wait on empty group blocked")
	}
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(RealEnv())
	msg := []byte("through the pipe")
	go a.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

func TestPipeCloseGivesEOF(t *testing.T) {
	a, b := Pipe(RealEnv())
	go func() {
		a.Write([]byte("tail"))
		a.Close()
	}()
	data, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "tail" {
		t.Errorf("data = %q", data)
	}
}

func TestPipeWriteAfterCloseFails(t *testing.T) {
	a, b := Pipe(RealEnv())
	b.Close()
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("write to closed pipe succeeded")
	}
}

func TestDialerFunc(t *testing.T) {
	called := false
	d := DialerFunc(func(network, address string) (net.Conn, error) {
		called = true
		return nil, nil
	})
	d.Dial("tcp", "x:1")
	if !called {
		t.Error("DialerFunc not invoked")
	}
}
