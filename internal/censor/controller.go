package censor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scholarcloud/internal/gfw"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
)

// Sample is one observation of a border, taken by its controller at each
// tick.
type Sample struct {
	// Suspicious is the border's cumulative flow count per suspicious
	// class (a filtered view of gfw.ClassCounts).
	Suspicious map[gfw.Class]int64
	// Confirmed lists the servers active probing has confirmed, sorted.
	Confirmed []string
}

// Config wires a Controller to one border.
type Config struct {
	// Border names the border in events and errors.
	Border string
	// Policy is the escalation policy (zero fields defaulted).
	Policy Adaptive
	// Base is the border's standing posture; every level overlays it.
	Base gfw.Policy
	// Sample reads the border's current state at each tick.
	Sample func() Sample
	// Apply installs a posture on the border's firewall.
	Apply func(gfw.Policy)
}

// Controller escalates one border region-by-region from what its own
// classifier sees. It is a pure state machine (Tick) looped on a
// netx.Env (Run) — deterministic on the virtual clock, live on the wall
// clock.
type Controller struct {
	cfg Config
	pol Adaptive

	mu        sync.Mutex
	level     Level
	streak    int // consecutive pressure ticks
	quiet     int // consecutive quiet ticks
	lastTotal int64
	nConfirm  int      // confirmed servers already blackholed
	blocked   []string // fingerprinted classes, in blocking order
	events    []Event
	stopped   bool

	ticks       metrics.Counter
	escalations metrics.Counter
	relaxes     metrics.Counter
}

// NewController builds a controller. cfg.Sample and cfg.Apply must be
// set.
func NewController(cfg Config) (*Controller, error) {
	pol := cfg.Policy.WithDefaults()
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sample == nil || cfg.Apply == nil {
		return nil, fmt.Errorf("censor: Config.Sample and Config.Apply are required")
	}
	return &Controller{cfg: cfg, pol: pol}, nil
}

// Policy returns the defaulted policy in force.
func (c *Controller) Policy() Adaptive { return c.pol }

// Level returns the border's current escalation rung.
func (c *Controller) Level() Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Events returns a copy of the border's escalation timeline so far.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// postureLocked composes the posture for the current level: the base,
// plus the disruption episode, plus cleartext scrutiny, plus the
// fingerprinted classes. Confirmed-server blackholes ride on gfw.Apply's
// cumulative BlockIPs semantics, so they need no carrying here.
func (c *Controller) postureLocked() gfw.Policy {
	p := c.cfg.Base
	p.BlockClasses = append([]gfw.Class(nil), c.cfg.Base.BlockClasses...)
	p.BlockIPs = nil
	if c.level >= LevelDisruption {
		p.ResetStorm = c.pol.Storm
		p.Throttle = c.pol.Throttle
	}
	if c.level >= LevelProbing {
		p.ScrutinizeCleartext = true
	}
	if c.level >= LevelFingerprint {
		for _, name := range c.blocked {
			p.BlockClasses = append(p.BlockClasses, gfw.Class(name))
		}
	}
	return p
}

// dominantLocked picks the not-yet-blocked suspicious class with the
// most flows — the fingerprint the censor writes next. Ties break in the
// policy's class order, so the choice is deterministic.
func (c *Controller) dominantLocked(s Sample) (gfw.Class, bool) {
	already := make(map[string]bool, len(c.blocked)+len(c.cfg.Base.BlockClasses))
	for _, name := range c.blocked {
		already[name] = true
	}
	for _, cl := range c.cfg.Base.BlockClasses {
		already[string(cl)] = true
	}
	var best gfw.Class
	bestN := int64(-1)
	for _, cl := range c.pol.Suspicious {
		if already[string(cl)] {
			continue
		}
		if n := s.Suspicious[cl]; n > bestN {
			best, bestN = cl, n
		}
	}
	return best, bestN > 0
}

// Tick advances the state machine one control interval. at is the
// virtual-time offset from arming; s is the border's current state.
// Exposed so tests can drive the policy without a firewall behind it.
func (c *Controller) Tick(at time.Duration, s Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks.Inc()

	var total int64
	for _, n := range s.Suspicious {
		total += n
	}
	delta := total - c.lastTotal
	c.lastTotal = total

	// Pressure: fresh suspicious flows this tick — or, at the filtering
	// level, any standing population above the trigger (pooled carrier
	// sessions stop producing fresh flows once established).
	pressure := delta >= c.pol.SuspiciousPerTick ||
		(c.level == LevelFiltering && total >= c.pol.Trigger)
	if pressure {
		c.streak++
		c.quiet = 0
	} else {
		c.streak = 0
		c.quiet++
	}

	// While probing or above, blackhole every server the probes have
	// newly confirmed. BlockIPs accumulate in the firewall, so only the
	// fresh tail is sent.
	if c.level >= LevelProbing && len(s.Confirmed) > c.nConfirm {
		fresh := append([]string(nil), s.Confirmed[c.nConfirm:]...)
		c.nConfirm = len(s.Confirmed)
		p := c.postureLocked()
		p.BlockIPs = fresh
		c.cfg.Apply(p)
		c.events = append(c.events, Event{
			At: at, Border: c.cfg.Border, Kind: "blackhole",
			To:     fmt.Sprintf("%d servers", c.nConfirm),
			Reason: fmt.Sprintf("active probing confirmed %d new servers", len(fresh)),
		})
	}

	switch {
	case pressure && c.streak >= c.pol.EscalateAfter:
		c.streak = 0
		switch {
		case c.level < c.pol.MaxLevel:
			from := c.level
			c.level++
			if c.level == LevelFingerprint {
				if cl, ok := c.dominantLocked(s); ok {
					c.blocked = append(c.blocked, string(cl))
				}
			}
			c.cfg.Apply(c.postureLocked())
			c.escalations.Inc()
			c.events = append(c.events, Event{
				At: at, Border: c.cfg.Border, Kind: "escalate",
				From: from.String(), To: c.level.String(),
				Reason: fmt.Sprintf("%d suspicious flows (+%d this tick)", total, delta),
			})
		case c.level == LevelFingerprint:
			// Already at the top: continued pressure means the blocked
			// fingerprint wasn't the whole story — block the next
			// dominant class.
			cl, ok := c.dominantLocked(s)
			if !ok {
				break
			}
			c.blocked = append(c.blocked, string(cl))
			c.cfg.Apply(c.postureLocked())
			c.events = append(c.events, Event{
				At: at, Border: c.cfg.Border, Kind: "block-class",
				To:     string(cl),
				Reason: fmt.Sprintf("dominant class under continued pressure (%d flows)", s.Suspicious[cl]),
			})
		}
	case !pressure && c.quiet >= c.pol.RelaxAfter && c.level > LevelFiltering:
		c.quiet = 0
		from := c.level
		c.level--
		if c.level < LevelFingerprint {
			c.blocked = nil
		}
		c.cfg.Apply(c.postureLocked())
		c.relaxes.Inc()
		c.events = append(c.events, Event{
			At: at, Border: c.cfg.Border, Kind: "relax",
			From: from.String(), To: c.level.String(),
			Reason: fmt.Sprintf("%d quiet ticks", c.pol.RelaxAfter),
		})
	}
}

// Run loops Tick every Interval on env's clock until Stop, after an
// initial phase delay. The phase staggers borders that share a policy:
// derived from each border's seed, it keeps their control loops from
// phase-locking while staying fully deterministic. Run blocks; callers
// spawn it on env.Spawn.
func (c *Controller) Run(env netx.Env, phase time.Duration) {
	start := env.Clock.Now()
	if phase > 0 {
		env.Clock.Sleep(phase)
	}
	for {
		env.Clock.Sleep(c.pol.Interval)
		c.mu.Lock()
		stopped := c.stopped
		c.mu.Unlock()
		if stopped {
			return
		}
		c.Tick(env.Clock.Now().Sub(start), c.cfg.Sample())
	}
}

// Stop makes Run return at its next wakeup.
func (c *Controller) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
}

// Instrument publishes the controller's counters and level gauge on reg
// under prefix (e.g. "censor.inland.").
func (c *Controller) Instrument(reg *obs.Registry, prefix string) {
	reg.RegisterCounter(prefix+"ticks", &c.ticks)
	reg.RegisterCounter(prefix+"escalations", &c.escalations)
	reg.RegisterCounter(prefix+"relaxes", &c.relaxes)
	reg.RegisterGaugeFunc(prefix+"level", func() int64 {
		return int64(c.Level())
	})
}

// Phase derives a border's deterministic control-loop offset in
// [0, interval) from the world seed and the border's index — a splitmix
// draw, so two borders with identical policies and different seeds tick
// at independent but reproducible instants.
func Phase(seed uint64, border int, interval time.Duration) time.Duration {
	x := seed ^ 0xC3A50E5C0FF5E7 ^ uint64(border+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return time.Duration(float64(x>>11) / float64(1<<53) * float64(interval))
}

// SortedConfirmed normalizes a firewall's confirmed-server list for a
// Sample: gfw.ConfirmedServers iterates a map, so the caller must sort
// before the controller diffs consecutive readings.
func SortedConfirmed(eps []string) []string {
	out := append([]string(nil), eps...)
	sort.Strings(out)
	return out
}
