package censor

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"scholarcloud/internal/gfw"
)

func TestPolicyJSONRoundTrip(t *testing.T) {
	p := Policy{
		Name: "custom",
		Borders: []BorderPolicy{
			{
				Name: "coastal",
				Base: gfw.Policy{BlockIPs: []string{"203.0.113.9"}},
				Stages: []Stage{
					{After: 30 * time.Second, Posture: gfw.Policy{ResetStorm: 0.1}},
				},
			},
			{
				Name:     "inland",
				Adaptive: &Adaptive{Trigger: 5, Storm: 0.03},
			},
		},
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got Policy
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip: got %+v, want %+v", got, p)
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		ok   bool
	}{
		{"empty", Policy{Name: "x"}, false},
		{"unnamed border", Policy{Borders: []BorderPolicy{{}}}, false},
		{"duplicate border", Policy{Borders: []BorderPolicy{{Name: "a"}, {Name: "a"}}}, false},
		{"stage out of order", Policy{Borders: []BorderPolicy{{
			Name: "a",
			Stages: []Stage{
				{After: time.Minute},
				{After: time.Second},
			},
		}}}, false},
		{"bad stage posture", Policy{Borders: []BorderPolicy{{
			Name:   "a",
			Stages: []Stage{{Posture: gfw.Policy{ResetStorm: 2}}},
		}}}, false},
		{"bad adaptive", Policy{Borders: []BorderPolicy{{
			Name:     "a",
			Adaptive: &Adaptive{EscalateAfter: -1},
		}}}, false},
		{"good", Policy{Borders: []BorderPolicy{
			{Name: "a", Stages: []Stage{{After: time.Second}, {After: time.Second}}},
			{Name: "b", Adaptive: &Adaptive{}},
		}}, true},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid policy accepted", c.name)
		}
	}
}

func TestProfilesValidate(t *testing.T) {
	if len(ProfileNames()) == 0 {
		t.Fatal("no profiles")
	}
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", p.Name, err)
		}
		got, ok := ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("ProfileByName(%q) = %+v, %v", p.Name, got, ok)
		}
	}
	if _, ok := ProfileByName("no-such-profile"); ok {
		t.Error("unknown profile resolved")
	}
}

// harness drives a controller against a recorded Apply, no firewall.
type harness struct {
	ctl     *Controller
	applied []gfw.Policy
	at      time.Duration
}

func newHarness(t *testing.T, pol Adaptive, base gfw.Policy) *harness {
	t.Helper()
	h := &harness{}
	ctl, err := NewController(Config{
		Border: "test",
		Policy: pol,
		Base:   base,
		Sample: func() Sample { return Sample{} },
		Apply:  func(p gfw.Policy) { h.applied = append(h.applied, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.ctl = ctl
	return h
}

func (h *harness) tick(s Sample) {
	h.at += 15 * time.Second
	h.ctl.Tick(h.at, s)
}

func (h *harness) last() gfw.Policy {
	if len(h.applied) == 0 {
		return gfw.Policy{}
	}
	return h.applied[len(h.applied)-1]
}

func suspicious(encrypted, cleartext int64) Sample {
	return Sample{Suspicious: map[gfw.Class]int64{
		gfw.ClassEncrypted:  encrypted,
		gfw.ClassLowEntropy: cleartext,
	}}
}

// TestControllerEscalatesOnAbsoluteCount pins the L0 trigger: a standing
// population of pooled carrier flows (no fresh flows per tick) must
// still move the border off the filtering level.
func TestControllerEscalatesOnAbsoluteCount(t *testing.T) {
	h := newHarness(t, Adaptive{}, gfw.Policy{})
	// Static population of 4 suspicious flows, above Trigger (3), with
	// zero delta after the first tick.
	h.tick(suspicious(4, 0))
	if got := h.ctl.Level(); got != LevelFiltering {
		t.Fatalf("level after 1 tick = %s, want filtering (EscalateAfter=2)", got)
	}
	h.tick(suspicious(4, 0))
	if got := h.ctl.Level(); got != LevelDisruption {
		t.Fatalf("level after 2 ticks = %s, want disruption", got)
	}
	p := h.last()
	if p.ResetStorm == 0 || p.Throttle == 0 {
		t.Errorf("disruption posture lacks episode: %+v", p)
	}
}

// TestControllerFullLadder walks the controller to the top under
// sustained fresh-flow pressure and checks each rung's posture.
func TestControllerFullLadder(t *testing.T) {
	h := newHarness(t, Adaptive{}, gfw.Policy{})
	n := int64(0)
	levels := []Level{}
	for i := 0; i < 8; i++ {
		n += 2 // two fresh encrypted flows per tick: constant pressure
		h.tick(suspicious(n, 1))
		levels = append(levels, h.ctl.Level())
	}
	want := []Level{
		LevelFiltering, LevelDisruption,
		LevelDisruption, LevelProbing,
		LevelProbing, LevelFingerprint,
		LevelFingerprint, LevelFingerprint,
	}
	if !reflect.DeepEqual(levels, want) {
		t.Fatalf("level walk = %v, want %v", levels, want)
	}

	p := h.last()
	if !p.ScrutinizeCleartext {
		t.Error("fingerprint posture lost cleartext scrutiny")
	}
	// Dominant class is encrypted (n >> 1 cleartext flow); under
	// continued pressure the runner-up gets fingerprinted too.
	hasClass := func(p gfw.Policy, c gfw.Class) bool {
		for _, x := range p.BlockClasses {
			if x == c {
				return true
			}
		}
		return false
	}
	if !hasClass(p, gfw.ClassEncrypted) {
		t.Errorf("dominant class not blocked: %+v", p.BlockClasses)
	}
	if !hasClass(p, gfw.ClassLowEntropy) {
		t.Errorf("runner-up class not blocked under continued pressure: %+v", p.BlockClasses)
	}

	events := h.ctl.Events()
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	wantKinds := []string{"escalate", "escalate", "escalate", "block-class"}
	if !reflect.DeepEqual(kinds, wantKinds) {
		t.Errorf("event kinds = %v, want %v", kinds, wantKinds)
	}
}

// TestControllerRelaxes pins the de-escalation path: quiet ticks walk
// the border back down and drop the fingerprints.
func TestControllerRelaxes(t *testing.T) {
	h := newHarness(t, Adaptive{}, gfw.Policy{})
	n := int64(0)
	for i := 0; i < 6; i++ {
		n += 2
		h.tick(suspicious(n, 0))
	}
	if got := h.ctl.Level(); got != LevelFingerprint {
		t.Fatalf("setup: level = %s, want fingerprint", got)
	}
	// Quiet: population frozen (the carrier rotated to an unsuspicious
	// rung), so deltas are zero and — above filtering — the absolute
	// trigger no longer applies.
	for i := 0; i < 4; i++ {
		h.tick(suspicious(n, 0))
	}
	if got := h.ctl.Level(); got != LevelProbing {
		t.Fatalf("level after %d quiet ticks = %s, want probing", 4, got)
	}
	if p := h.last(); len(p.BlockClasses) != 0 {
		t.Errorf("relaxed posture still fingerprints %v", p.BlockClasses)
	}
	for i := 0; i < 8; i++ {
		h.tick(suspicious(n, 0))
	}
	if got := h.ctl.Level(); got != LevelFiltering {
		t.Fatalf("level after full quiet run = %s, want filtering", got)
	}
	if p := h.last(); p.ResetStorm != 0 || p.Throttle != 0 || p.ScrutinizeCleartext {
		t.Errorf("filtering posture keeps episode state: %+v", p)
	}
}

// TestControllerBlackholesConfirmed pins the probing rung's blackhole
// path: newly confirmed servers are pushed exactly once.
func TestControllerBlackholesConfirmed(t *testing.T) {
	h := newHarness(t, Adaptive{}, gfw.Policy{})
	n := int64(0)
	for i := 0; i < 4; i++ {
		n += 2
		h.tick(suspicious(n, 0))
	}
	if got := h.ctl.Level(); got != LevelProbing {
		t.Fatalf("setup: level = %s, want probing", got)
	}
	s := suspicious(n, 0)
	s.Confirmed = []string{"203.0.113.7:443"}
	h.tick(s)
	found := 0
	for _, p := range h.applied {
		for _, ip := range p.BlockIPs {
			if ip == "203.0.113.7:443" {
				found++
			}
		}
	}
	if found != 1 {
		t.Fatalf("confirmed server blackholed %d times, want 1", found)
	}
	// Same confirmed list again: no re-push.
	h.tick(s)
	applied := len(h.applied)
	h.tick(s)
	for _, p := range h.applied[applied:] {
		if len(p.BlockIPs) != 0 {
			t.Errorf("stale confirmed list re-pushed: %+v", p)
		}
	}
}

// TestControllerBaseOverlay pins that every applied posture preserves
// the border's base blacklists.
func TestControllerBaseOverlay(t *testing.T) {
	base := gfw.Policy{BlockClasses: []gfw.Class{gfw.ClassPPTP}}
	h := newHarness(t, Adaptive{}, base)
	n := int64(0)
	for i := 0; i < 6; i++ {
		n += 2
		h.tick(suspicious(n, 0))
	}
	for i, p := range h.applied {
		if len(p.BlockClasses) == 0 || p.BlockClasses[0] != gfw.ClassPPTP {
			t.Errorf("apply %d dropped base class block: %+v", i, p.BlockClasses)
		}
	}
}

// TestPhaseDeterministicAndDistinct pins the stagger: same inputs, same
// offset; different seeds or borders, different offsets in [0,interval).
func TestPhaseDeterministicAndDistinct(t *testing.T) {
	iv := 15 * time.Second
	a := Phase(42, 0, iv)
	if a != Phase(42, 0, iv) {
		t.Error("Phase not deterministic")
	}
	if a < 0 || a >= iv {
		t.Errorf("Phase = %v, want in [0,%v)", a, iv)
	}
	if a == Phase(43, 0, iv) {
		t.Error("different seeds collide")
	}
	if a == Phase(42, 1, iv) {
		t.Error("different borders collide")
	}
}

func TestSortedConfirmed(t *testing.T) {
	in := []string{"b", "a", "c"}
	got := SortedConfirmed(in)
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("SortedConfirmed = %v", got)
	}
	if !reflect.DeepEqual(in, []string{"b", "a", "c"}) {
		t.Error("input mutated")
	}
}
