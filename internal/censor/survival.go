package censor

import "scholarcloud/internal/carrier"

// Survival tuning: the client-side counterpart of an armed censor
// Policy. A cohort living through an active crackdown — rather than a
// fixed fault window — needs its carrier ladder and retry budget tuned
// differently from the fail-fast paper deployment, and the multi-border
// experiments and the real-socket deployment (DomesticConfig's
// CensorProfile) must agree on the numbers or the measured survival
// rates say nothing about production.
const (
	// SurvivalTripAfter rotates the ladder to the next rung after two
	// consecutive transport failures instead of the default three: under
	// fingerprint blocking every attempt on the dominant rung dies in
	// milliseconds, and each extra strike is a failed page load.
	SurvivalTripAfter = 2

	// SurvivalProbeInterval halves the recovery-probe cadence. An eager
	// probe re-lands the cohort on a rung the censor just fingerprinted:
	// probe handshakes are too short for the classifier, so the probe
	// succeeds and the next real visit dies.
	SurvivalProbeInterval = 2 * carrier.DefaultProbeInterval

	// SurvivalRetries deepens the per-request retry budget from four to
	// six so a visit caught mid-crackdown can outlive the ladder
	// rotation its own failures trigger.
	SurvivalRetries = 6
)
